// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact; see DESIGN.md §4), plus ablation benchmarks for the design
// choices the reproduction makes. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks run the experiments in Quick mode at reduced scale so a full
// sweep stays in CI-friendly time; `cmd/experiments -run all` regenerates
// the full artifacts.
package episim_test

import (
	"io"
	"testing"

	episim "repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/splitloc"
)

// benchOpts are the reduced-scale options used by artifact benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 4000, AnalysisScale: 1500, Seed: 7, Quick: true}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact. ---

func BenchmarkTable1PopulationGen(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkTable2SplitLoc(b *testing.B)             { runExperiment(b, "table2") }
func BenchmarkFig2Partitioning(b *testing.B)           { runExperiment(b, "fig2") }
func BenchmarkFig3LoadModel(b *testing.B)              { runExperiment(b, "fig3") }
func BenchmarkFig4SpeedupBound(b *testing.B)           { runExperiment(b, "fig4") }
func BenchmarkFig5Scalability(b *testing.B)            { runExperiment(b, "fig5") }
func BenchmarkFig6SplitStrategies(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkFig7PostSplitDistributions(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8SpeedupBoundSplit(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9to11CommAblation(b *testing.B)       { runExperiment(b, "fig9_11") }
func BenchmarkFig12OptimizationGap(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13StrongScaling(b *testing.B)         { runExperiment(b, "fig13") }
func BenchmarkFig14EdgeCutBalance(b *testing.B)        { runExperiment(b, "fig14") }
func BenchmarkHeadlineSpeedup(b *testing.B)            { runExperiment(b, "headline") }

// --- End-to-end engine benchmarks. ---

// benchPlacement builds a mid-size placement once per benchmark.
func benchPlacement(b *testing.B, strat episim.Strategy, split bool, ranks int) *episim.Placement {
	b.Helper()
	pop := episim.Generate("bench", 20000, 5000, 1)
	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
		Strategy: strat, SplitLoc: split, Ranks: ranks, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

func BenchmarkSimulate30DaysRR(b *testing.B) {
	pl := benchPlacement(b, episim.RR, false, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := episim.Run(pl, episim.SimConfig{Days: 30, Seed: 1, InitialInfections: 20, AggBufferSize: 64})
		if err != nil || res.TotalInfections == 0 {
			b.Fatal("simulation failed")
		}
	}
}

func BenchmarkSimulate30DaysGPSplit(b *testing.B) {
	pl := benchPlacement(b, episim.GP, true, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := episim.Run(pl, episim.SimConfig{Days: 30, Seed: 1, InitialInfections: 20, AggBufferSize: 64})
		if err != nil || res.TotalInfections == 0 {
			b.Fatal("simulation failed")
		}
	}
}

func BenchmarkSimulateParallel(b *testing.B) {
	pl := benchPlacement(b, episim.GP, true, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := episim.Run(pl, episim.SimConfig{Days: 10, Seed: 1, InitialInfections: 20,
			AggBufferSize: 64, Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPlacementGP(b *testing.B) {
	pop := episim.Generate("bench", 20000, 5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := episim.BuildPlacement(pop, episim.PlacementOptions{
			Strategy: episim.GP, Ranks: 64, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelDayTime(b *testing.B) {
	pl := benchPlacement(b, episim.GP, true, 256)
	opt := episim.DefaultPerfOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := episim.ModelDayTime(pl, opt); c.Total <= 0 {
			b.Fatal("bad day cost")
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md). ---

// BenchmarkAblationAggBufferSize sweeps the aggregation buffer: reports
// modeled time/day as the custom metric for each size.
func BenchmarkAblationAggBufferSize(b *testing.B) {
	pl := benchPlacement(b, episim.RR, false, 256)
	for _, size := range []int{0, 8, 32, 64, 256, 2048} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			opt := episim.DefaultPerfOptions()
			opt.Aggregation = size
			var total float64
			for i := 0; i < b.N; i++ {
				total += episim.ModelDayTime(pl, opt).Total
			}
			b.ReportMetric(total/float64(b.N)*1e3, "model-ms/day")
		})
	}
}

func byteSizeName(n int) string {
	if n == 0 {
		return "off"
	}
	return "buf" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationSMPProcsPerNode sweeps the SMP process count k of
// Section IV-A: fewer processes = fewer comm threads but more offloading
// contention; more = more cores lost.
func BenchmarkAblationSMPProcsPerNode(b *testing.B) {
	pl := benchPlacement(b, episim.RR, false, 256)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run("k"+itoa(k), func(b *testing.B) {
			opt := episim.DefaultPerfOptions()
			opt.Machine.ProcsPerNode = k
			var total float64
			for i := 0; i < b.N; i++ {
				total += episim.ModelDayTime(pl, opt).Total
			}
			b.ReportMetric(total/float64(b.N)*1e3, "model-ms/day")
		})
	}
}

// BenchmarkAblationPartitioner compares the distribution strategies'
// build cost and quality at fixed ranks.
func BenchmarkAblationPartitioner(b *testing.B) {
	pop := episim.Generate("bench", 20000, 5000, 1)
	g := episim.BuildBipartiteGraph(pop)
	loads := make([]int64, g.NumVertices())
	for v := range loads {
		loads[v] = g.VertexWeight(v, 0) + g.VertexWeight(v, 1)
	}
	b.Run("RoundRobin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.RoundRobin(g.NumVertices(), 64)
		}
	})
	b.Run("LPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.LPT(loads, 64)
		}
	})
	b.Run("Multilevel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Multilevel(g, 64, partition.Options{Seed: uint64(i + 1)})
		}
	})
}

// BenchmarkAblationSplitThreshold sweeps the splitLoc MaxPartitions knob
// (which drives the split threshold): reports resulting l_max bound.
func BenchmarkAblationSplitThreshold(b *testing.B) {
	pop := episim.Generate("bench", 20000, 5000, 1)
	for _, maxParts := range []int{256, 4096, 65536} {
		b.Run("maxparts"+itoa(maxParts), func(b *testing.B) {
			var frags int
			for i := 0; i < b.N; i++ {
				_, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: maxParts})
				if err != nil {
					b.Fatal(err)
				}
				frags = st.NumFragments
			}
			b.ReportMetric(float64(frags), "fragments")
		})
	}
}

// BenchmarkAblationTorusMapping compares topology-aware (contiguous) vs
// oblivious (scattered) rank→node mapping on the Gemini torus model.
func BenchmarkAblationTorusMapping(b *testing.B) {
	pl := benchPlacement(b, episim.GP, true, 512)
	for _, m := range []episim.RankMapping{episim.MapContiguous, episim.MapScattered} {
		name := "contiguous"
		if m == episim.MapScattered {
			name = "scattered"
		}
		b.Run(name, func(b *testing.B) {
			opt := episim.DefaultPerfOptions()
			opt.Mapping = m
			var total float64
			for i := 0; i < b.N; i++ {
				total += episim.ModelDayTime(pl, opt).Total
			}
			b.ReportMetric(total/float64(b.N)*1e3, "model-ms/day")
		})
	}
}

// BenchmarkAblationRoute2D compares direct vs TRAM-style 2D-routed
// aggregation in the real runtime at a rank count where buffers underfill.
func BenchmarkAblationRoute2D(b *testing.B) {
	pop := episim.Generate("bench", 20000, 5000, 1)
	for _, route := range []bool{false, true} {
		name := "direct"
		if route {
			name = "route2d"
		}
		b.Run(name, func(b *testing.B) {
			pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
				Strategy: episim.RR, Ranks: 144, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			var wire int64
			for i := 0; i < b.N; i++ {
				res, err := episim.Run(pl, episim.SimConfig{
					Days: 3, Seed: 1, InitialInfections: 20,
					AggBufferSize: 16, Route2D: route})
				if err != nil {
					b.Fatal(err)
				}
				wire = res.Days[0].PersonPhase.WireMessages
			}
			b.ReportMetric(float64(wire), "wire-msgs/day")
		})
	}
}

// BenchmarkSweepPlacementCache measures the ensemble executor: a
// 2-placement × 2-scenario × 4-replicate sweep where the content-keyed
// cache builds each placement once and shares it across the 8 runs that
// use it. The reported metric is simulations per placement build — the
// sweep subsystem's headline amortization.
func BenchmarkSweepPlacementCache(b *testing.B) {
	spec := func() *episim.SweepSpec {
		return &episim.SweepSpec{
			Populations: []episim.SweepPopulation{{Name: "bench", People: 20000, Locations: 5000}},
			Placements: []episim.SweepPlacement{
				{Strategy: "RR", Ranks: 8},
				{Strategy: "GP", SplitLoc: true, Ranks: 8},
			},
			Scenarios: []episim.SweepScenario{
				{Name: "baseline"},
				{Name: "closure", Text: "when day >= 5 { close school for 14 }"},
			},
			Replicates:        4,
			Days:              10,
			Seed:              1,
			InitialInfections: 20,
			AggBufferSize:     64,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := episim.RunSweep(spec())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PlacementBuilds) != 2 {
			b.Fatalf("placement builds = %d, want 2", len(res.PlacementBuilds))
		}
		b.ReportMetric(float64(res.Simulations)/float64(len(res.PlacementBuilds)), "sims/build")
	}
}

// BenchmarkAblationSyncMode compares CD vs QD sync pricing across scales.
func BenchmarkAblationSyncMode(b *testing.B) {
	cfg := machine.BlueWatersXE6()
	for _, pes := range []int{1024, 65536, 360448} {
		b.Run("pes"+itoa(pes), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += cfg.SyncCost(pes, machine.QuiescenceDetection) - cfg.SyncCost(pes, machine.CompletionDetection)
			}
			b.ReportMetric(acc/float64(b.N)*1e6, "qd-cd-us")
		})
	}
}
