package loadmodel

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestPaperModelConstants(t *testing.T) {
	m := Paper()
	// φ must be the intersection of the two published lines: ≈1380 events.
	if m.Phi < 1300 || m.Phi > 1450 {
		t.Fatalf("phi = %v, want ≈1380", m.Phi)
	}
	// At the crossover both lines agree, so the blend equals them.
	ya := m.A1 + m.B1*m.Phi
	yb := m.A2 + m.B2*m.Phi
	if math.Abs(ya-yb) > 1e-12 {
		t.Fatalf("lines do not intersect at phi: %v vs %v", ya, yb)
	}
	if math.Abs(m.Load(m.Phi)-ya) > 1e-9 {
		t.Fatalf("Load(phi) = %v, want %v", m.Load(m.Phi), ya)
	}
}

func TestPaperModelRegimes(t *testing.T) {
	m := Paper()
	// Far below the crossover the low line dominates; far above, the high
	// line. The sigmoid at width 1 is a near-step.
	lo := m.Load(100)
	wantLo := m.A1 + m.B1*100
	if math.Abs(lo-wantLo)/wantLo > 1e-6 {
		t.Fatalf("low regime: %v vs %v", lo, wantLo)
	}
	hi := m.Load(100000)
	wantHi := m.A2 + m.B2*100000
	if math.Abs(hi-wantHi)/wantHi > 1e-6 {
		t.Fatalf("high regime: %v vs %v", hi, wantHi)
	}
}

func TestStaticLoadMonotoneAndNonNegative(t *testing.T) {
	m := Paper()
	prev := m.Load(0)
	if prev < 0 {
		t.Fatal("negative load at 0")
	}
	for x := 10.0; x < 2e5; x *= 1.6 {
		cur := m.Load(x)
		if cur < prev {
			t.Fatalf("load not monotone at %v: %v < %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestStaticLoads(t *testing.T) {
	m := Paper()
	out := m.Loads([]int32{10, 100, 1000})
	if len(out) != 3 || out[0] > out[1] || out[1] > out[2] {
		t.Fatalf("Loads broken: %v", out)
	}
}

func TestFitStaticRecoversPiecewise(t *testing.T) {
	// Generate data from a known two-piece linear function with noise and
	// verify the fit recovers slopes and crossover.
	truth := Static{Mu: 1, Phi: 500, Rho: 1, Width: 1, A1: 1, B1: 0.5, A2: -99, B2: 0.7}
	s := xrand.NewStream(3)
	var xs, ys []float64
	for i := 0; i < 400; i++ {
		x := float64(s.Intn(2000))
		xs = append(xs, x)
		ys = append(ys, truth.Load(x)*(1+0.01*s.NormFloat64()))
	}
	m, err := FitStatic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi-500) > 100 {
		t.Fatalf("fitted phi = %v, want ≈500", m.Phi)
	}
	if math.Abs(m.B1-0.5) > 0.05 || math.Abs(m.B2-0.7) > 0.05 {
		t.Fatalf("fitted slopes %v/%v, want 0.5/0.7", m.B1, m.B2)
	}
	// Mean relative error of the fit should be small — the paper reports
	// ≈5% for its model.
	var pred, obs []float64
	for i := range xs {
		pred = append(pred, m.Load(xs[i]))
		obs = append(obs, ys[i])
	}
	if e := stats.MeanRelativeError(pred, obs); e > 0.06 {
		t.Fatalf("fit error = %v, want < 6%%", e)
	}
}

func TestFitStaticErrors(t *testing.T) {
	if _, err := FitStatic([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := FitStatic([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("too few points not detected")
	}
}

func TestFitDynamicRecoversCoefficients(t *testing.T) {
	truth := Dynamic{C0: 2, C1: 0.3, C2: 0.05, C3: 4}
	s := xrand.NewStream(9)
	var es, is, rs, ys []float64
	for i := 0; i < 500; i++ {
		e := float64(s.Intn(1000))
		in := float64(s.Intn(5000))
		r := s.Float64() * 10
		es = append(es, e)
		is = append(is, in)
		rs = append(rs, r)
		ys = append(ys, truth.Load(e, in, r)+0.1*s.NormFloat64())
	}
	m, err := FitDynamic(es, is, rs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.C1-0.3) > 0.01 || math.Abs(m.C2-0.05) > 0.01 || math.Abs(m.C3-4) > 0.1 {
		t.Fatalf("fitted %+v, want %+v", m, truth)
	}
}

func TestFitDynamicSingular(t *testing.T) {
	// All-constant predictors make the normal equations singular.
	n := 20
	es := make([]float64, n)
	ys := make([]float64, n)
	if _, err := FitDynamic(es, es, es, ys); err == nil {
		t.Fatal("singular system not detected")
	}
}

func TestFitDynamicErrors(t *testing.T) {
	if _, err := FitDynamic([]float64{1}, []float64{1}, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestDynamicLoadClamped(t *testing.T) {
	m := Dynamic{C0: -5}
	if m.Load(0, 0, 0) != 0 {
		t.Fatal("negative dynamic load not clamped")
	}
}

func TestPersonLoad(t *testing.T) {
	if PersonLoad(7) != 7 {
		t.Fatal("person load must equal message count")
	}
}

func TestQuantizerPreservesRatios(t *testing.T) {
	loads := []float64{0.001, 0.002, 0.01, 1.0}
	q := NewQuantizer(loads, 100)
	a := q.Quantize(0.001)
	b := q.Quantize(0.002)
	c := q.Quantize(1.0)
	if a < 50 {
		t.Fatalf("smallest load quantized to %d, want >= ~100", a)
	}
	if math.Abs(float64(b)/float64(a)-2) > 0.05 {
		t.Fatalf("ratio broken: %d vs %d", b, a)
	}
	if math.Abs(float64(c)/float64(a)-1000) > 20 {
		t.Fatalf("large ratio broken: %d vs %d", c, a)
	}
}

func TestQuantizeZeroAndNegative(t *testing.T) {
	q := NewQuantizer([]float64{1, 2}, 10)
	if q.Quantize(0) != 0 || q.Quantize(-1) != 0 {
		t.Fatal("non-positive loads must quantize to 0")
	}
	if q.Quantize(1e-12) < 1 {
		t.Fatal("tiny positive load must quantize to >= 1")
	}
}

func TestQuantizerDegenerate(t *testing.T) {
	q := NewQuantizer(nil, 10)
	if q.Quantize(5) < 1 {
		t.Fatal("degenerate quantizer broken")
	}
	q2 := NewQuantizer([]float64{0, 0}, 10)
	if q2.Quantize(1) < 1 {
		t.Fatal("all-zero quantizer broken")
	}
}

func TestQuantizerHugeRangeCapped(t *testing.T) {
	loads := []float64{1e-12, 1e12}
	q := NewQuantizer(loads, 1000)
	u := q.Quantize(1e12)
	if u <= 0 || u > 1<<41 {
		t.Fatalf("huge load quantized to %d, overflow risk", u)
	}
}

func BenchmarkStaticLoad(b *testing.B) {
	m := Paper()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Load(float64(i % 10000))
	}
	_ = sink
}
