// Package loadmodel implements the workload estimation models of
// Section III-A, used to assign vertex weights for graph partitioning and
// to drive the machine model:
//
//   - the static location load model: a piecewise linear function of the
//     number of arrive/depart events X, blended by a sigmoid around the
//     crossover point φ (the exact published form and constants are
//     available as Paper()); and fitting of those constants against
//     measured DES processing times (Figure 3(a));
//   - the dynamic location load model, a linear function of event count,
//     interaction count and the sum of reciprocal interactions, only
//     available at run time (Figure 3(b)) and therefore not used for
//     partitioning, exactly as in the paper;
//   - the person load model: a person's load is the number of (visit)
//     messages it generates.
package loadmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Static is the static location load model:
//
//	X' = µ·X
//	Ya = A1 + B1·X'
//	Yb = A2 + B2·X'
//	Y  = Ya·S((φ-X')/W) + Yb·S((X'-φ)/W)   with   S(t) = 1/(1+ρ·e^(-t))
//
// W is a transition width: the paper's published form has W = 1 (the
// sigmoid then acts as a near-step at φ); fitted models use a width
// proportional to φ so the blend is visible at our scales.
type Static struct {
	Mu    float64
	Phi   float64
	Rho   float64
	Width float64
	A1    float64 // Ya intercept (below crossover)
	B1    float64 // Ya slope
	A2    float64 // Yb intercept (above crossover)
	B2    float64 // Yb slope
}

// Paper returns the exact model published in Section III-A, with µ = 1,
// ρ = 1, W = 1 and the crossover φ at the intersection of the two lines
// (the paper determines φ experimentally; the intersection is the value
// consistent with continuity of the blend). The output unit is seconds of
// Blue Waters LocationManager processing time.
func Paper() Static {
	const (
		a1 = 6.09e-6
		b1 = 7.72e-7
		a2 = -1.25e-4
		b2 = 8.67e-7
	)
	phi := (a1 - a2) / (b2 - b1) // Ya(φ) = Yb(φ)
	return Static{Mu: 1, Phi: phi, Rho: 1, Width: 1, A1: a1, B1: b1, A2: a2, B2: b2}
}

// sigmoid is S(t) = 1/(1+ρ·e^(-t)).
func sigmoid(t, rho float64) float64 { return 1 / (1 + rho*math.Exp(-t)) }

// Load estimates the processing time of a location with the given number
// of arrive/depart events.
func (m Static) Load(events float64) float64 {
	xp := m.Mu * events
	ya := m.A1 + m.B1*xp
	yb := m.A2 + m.B2*xp
	w := m.Width
	if w <= 0 {
		w = 1
	}
	y := ya*sigmoid((m.Phi-xp)/w, m.Rho) + yb*sigmoid((xp-m.Phi)/w, m.Rho)
	if y < 0 {
		// The lower linear piece can dip below zero near X = 0; clamp, a
		// location never has negative cost.
		y = 0
	}
	return y
}

// Loads applies Load to a vector of per-location event counts.
func (m Static) Loads(events []int32) []float64 {
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = m.Load(float64(e))
	}
	return out
}

// FitStatic fits a Static model to measured (events, seconds) pairs by
// scanning candidate crossover points and fitting ordinary least squares
// lines to each side, keeping the split with the smallest total squared
// error. This mirrors the paper's "piecewise linear regression to
// approximate the non-linear dependence". At least four points are
// required on each side of a candidate crossover.
func FitStatic(events []float64, seconds []float64) (Static, error) {
	if len(events) != len(seconds) {
		return Static{}, fmt.Errorf("loadmodel: FitStatic length mismatch %d vs %d", len(events), len(seconds))
	}
	n := len(events)
	if n < 8 {
		return Static{}, fmt.Errorf("loadmodel: FitStatic needs >= 8 points, got %d", n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return events[idx[a]] < events[idx[b]] })
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, j := range idx {
		xs[i] = events[j]
		ys[i] = seconds[j]
	}

	// Relative least squares: weight each point by 1/y² so the objective
	// is squared *relative* error — small locations count as much as huge
	// ones, matching how the paper validates the model across the range.
	weights := make([]float64, n)
	for i, y := range ys {
		d := math.Abs(y)
		if d < 1e-12 {
			d = 1e-12
		}
		weights[i] = 1 / (d * d)
	}
	sse := func(fit stats.LinearFit, xs, ys, ws []float64) float64 {
		var s float64
		for i := range xs {
			d := ys[i] - fit.Predict(xs[i])
			s += ws[i] * d * d
		}
		return s
	}

	best := math.Inf(1)
	var bestLo, bestHi stats.LinearFit
	var bestPhi float64
	const minSide = 4
	for cut := minSide; cut <= n-minSide; cut++ {
		// Skip duplicate X so both sides see distinct ranges.
		if cut > 0 && xs[cut] == xs[cut-1] {
			continue
		}
		lo := stats.FitLinearWeighted(xs[:cut], ys[:cut], weights[:cut])
		hi := stats.FitLinearWeighted(xs[cut:], ys[cut:], weights[cut:])
		total := sse(lo, xs[:cut], ys[:cut], weights[:cut]) + sse(hi, xs[cut:], ys[cut:], weights[cut:])
		if total < best {
			best = total
			bestLo, bestHi = lo, hi
			bestPhi = (xs[cut-1] + xs[cut]) / 2
		}
	}
	if math.IsInf(best, 1) {
		return Static{}, fmt.Errorf("loadmodel: FitStatic found no valid crossover")
	}
	m := Static{
		Mu:    1,
		Phi:   bestPhi,
		Rho:   1,
		Width: math.Max(bestPhi/20, 1),
		A1:    bestLo.A, B1: bestLo.B,
		A2: bestHi.A, B2: bestHi.B,
	}
	return m, nil
}

// Dynamic is the run-time location load model of Figure 3(b):
//
//	Y = C0 + C1·events + C2·interactions + C3·sumReciprocal
//
// The interaction terms are only known during execution, so the dynamic
// model is not used for partitioning (Section III-A), only for run-time
// accounting in the machine model.
type Dynamic struct {
	C0, C1, C2, C3 float64
}

// Load estimates processing time from run-time observables.
func (m Dynamic) Load(events float64, interactions float64, sumReciprocal float64) float64 {
	y := m.C0 + m.C1*events + m.C2*interactions + m.C3*sumReciprocal
	if y < 0 {
		y = 0
	}
	return y
}

// FitDynamic fits the dynamic model by ordinary least squares over the
// three predictors. Inputs are parallel slices.
func FitDynamic(events, interactions, sumReciprocal, seconds []float64) (Dynamic, error) {
	n := len(seconds)
	if len(events) != n || len(interactions) != n || len(sumReciprocal) != n {
		return Dynamic{}, fmt.Errorf("loadmodel: FitDynamic length mismatch")
	}
	if n < 8 {
		return Dynamic{}, fmt.Errorf("loadmodel: FitDynamic needs >= 8 points, got %d", n)
	}
	// Normal equations for X = [1, e, i, r].
	const k = 4
	var xtx [k][k]float64
	var xty [k]float64
	for i := 0; i < n; i++ {
		row := [k]float64{1, events[i], interactions[i], sumReciprocal[i]}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * seconds[i]
		}
	}
	sol, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return Dynamic{}, err
	}
	return Dynamic{C0: sol[0], C1: sol[1], C2: sol[2], C3: sol[3]}, nil
}

// solveLinearSystem solves the 4x4 system via Gaussian elimination with
// partial pivoting.
func solveLinearSystem(a [4][4]float64, b [4]float64) ([4]float64, error) {
	const k = 4
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return [4]float64{}, fmt.Errorf("loadmodel: singular normal equations (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := k - 1; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < k; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

// PersonLoad is the paper's person-phase load model: "we approximate the
// load of a person vertex as the number of messages the person generates",
// i.e. its visit count.
func PersonLoad(numVisits int) float64 { return float64(numVisits) }

// Quantizer converts floating point loads into the positive integer
// weights graph partitioners require, preserving ratios up to the quantum.
type Quantizer struct {
	quantum float64
}

// NewQuantizer picks a quantum so that the smallest positive load maps to
// at least minUnits (resolution) while the largest stays well inside int64.
func NewQuantizer(loads []float64, minUnits int64) Quantizer {
	minPos := math.Inf(1)
	maxV := 0.0
	for _, l := range loads {
		if l > 0 && l < minPos {
			minPos = l
		}
		if l > maxV {
			maxV = l
		}
	}
	if math.IsInf(minPos, 1) || maxV == 0 {
		return Quantizer{quantum: 1}
	}
	q := minPos / float64(minUnits)
	// Cap so max load stays under 2^40 units: plenty of headroom for sums.
	if maxV/q > 1<<40 {
		q = maxV / (1 << 40)
	}
	return Quantizer{quantum: q}
}

// Quantize maps a load to integer units (>= 1 for any positive load).
func (q Quantizer) Quantize(load float64) int64 {
	if load <= 0 {
		return 0
	}
	u := int64(math.Round(load / q.quantum))
	if u < 1 {
		u = 1
	}
	return u
}
