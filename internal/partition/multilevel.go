package partition

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Options tunes the multilevel partitioner.
type Options struct {
	// Imbalance is the allowed per-constraint overweight ε: each part may
	// weigh up to (1+ε)·target. This is METIS's load balance constraint
	// knob, "the tolerable variance in the sum of vertex weights per
	// partition" (Section III-A). Default 0.10.
	Imbalance float64
	// Seed makes partitioning deterministic. Default 1.
	Seed uint64
	// CoarsestSize stops coarsening when the graph is this small.
	// Default 120 vertices.
	CoarsestSize int
	// InitTries is the number of greedy-growing attempts for the initial
	// bisection of the coarsest graph. Default 4.
	InitTries int
	// MaxPasses bounds FM refinement passes per level. Default 6.
	MaxPasses int
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 120
	}
	if o.InitTries <= 0 {
		o.InitTries = 4
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 6
	}
	return o
}

// Multilevel partitions g into k parts by multilevel recursive bisection:
// heavy-edge-matching coarsening, greedy graph growing on the coarsest
// graph, and boundary Fiduccia–Mattheyses refinement during uncoarsening —
// the METIS algorithm family the paper uses, including multi-constraint
// balance (every component of the vertex weight vectors is balanced
// independently).
func Multilevel(g *graph.Graph, k int, opt Options) *Partitioning {
	opt = opt.withDefaults()
	n := g.NumVertices()
	p := &Partitioning{K: k, Assign: make([]int32, n)}
	if k <= 1 || n == 0 {
		if k < 1 {
			p.K = 1
		}
		return p
	}

	// Recursive bisection compounds imbalance multiplicatively across
	// levels; divide the user's ε budget so the final k-way imbalance
	// lands near the requested tolerance.
	levels := 1
	for 1<<levels < k {
		levels++
	}
	perLevel := opt.Imbalance / float64(levels)
	if perLevel < 0.02 {
		perLevel = 0.02
	}
	opt.Imbalance = perLevel

	type job struct {
		sub   *graph.Graph
		verts []int32 // sub vertex -> original vertex; nil = identity
		k     int
		base  int32
	}
	stack := []job{{sub: g, k: k, base: 0}}
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if j.k == 1 || j.sub.NumVertices() == 0 {
			for v := 0; v < j.sub.NumVertices(); v++ {
				p.Assign[origID(j.verts, v)] = j.base
			}
			continue
		}
		k1 := j.k / 2
		f := float64(k1) / float64(j.k)
		seed := xrand.Hash(opt.Seed, uint64(j.base), uint64(j.k))
		side := bisect(j.sub, f, opt, seed)

		var v0, v1 []int32
		for v := 0; v < j.sub.NumVertices(); v++ {
			if side[v] == 0 {
				v0 = append(v0, int32(v))
			} else {
				v1 = append(v1, int32(v))
			}
		}
		mk := func(sel []int32) ([]int32, *graph.Graph) {
			sub, _ := j.sub.InducedSubgraph(sel)
			m := make([]int32, len(sel))
			for i, sv := range sel {
				m[i] = origID(j.verts, int(sv))
			}
			return m, sub
		}
		m0, s0 := mk(v0)
		m1, s1 := mk(v1)
		stack = append(stack,
			job{sub: s0, verts: m0, k: k1, base: j.base},
			job{sub: s1, verts: m1, k: j.k - k1, base: j.base + int32(k1)},
		)
	}
	return p
}

func origID(verts []int32, v int) int32 {
	if verts == nil {
		return int32(v)
	}
	return verts[v]
}

// bisect splits g into sides 0/1 where side 0 targets fraction f of every
// constraint total.
func bisect(g *graph.Graph, f float64, opt Options, seed uint64) []int8 {
	s := xrand.NewStream(seed)
	// Coarsening phase.
	graphs := []*graph.Graph{g}
	var cmaps [][]int32
	for graphs[len(graphs)-1].NumVertices() > opt.CoarsestSize {
		cur := graphs[len(graphs)-1]
		cmap, coarse := contract(cur, s)
		if coarse.NumVertices() > cur.NumVertices()*95/100 {
			break // matching stalled (e.g. star graphs); stop coarsening
		}
		graphs = append(graphs, coarse)
		cmaps = append(cmaps, cmap)
	}

	// Initial bisection on the coarsest graph.
	coarsest := graphs[len(graphs)-1]
	side := initialBisect(coarsest, f, opt, s)
	refine2way(coarsest, side, f, opt)

	// Uncoarsen with refinement at every level.
	for lvl := len(graphs) - 2; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		cmap := cmaps[lvl]
		fineSide := make([]int8, fine.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		side = fineSide
		refine2way(fine, side, f, opt)
	}
	return side
}

// contract performs one level of heavy-edge matching coarsening. It
// returns the fine→coarse vertex map and the coarse graph.
func contract(g *graph.Graph, s *xrand.Stream) ([]int32, *graph.Graph) {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := s.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		nbrs, ws := g.Neighbors(int(v))
		best := int32(-1)
		var bestW int64 = -1
		for i, u := range nbrs {
			if match[u] < 0 && ws[i] > bestW {
				best, bestW = u, ws[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var numCoarse int32
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = numCoarse
		if m := match[v]; m != int32(v) {
			cmap[m] = numCoarse
		}
		numCoarse++
	}
	b := graph.NewBuilder(int(numCoarse), g.NumConstraints())
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for c := 0; c < g.NumConstraints(); c++ {
			b.AddVertexWeight(int(cv), c, g.VertexWeight(v, c))
		}
		nbrs, ws := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) <= v {
				continue // each fine edge once
			}
			cu := cmap[u]
			if cu != cv {
				b.AddEdge(int(cv), int(cu), ws[i])
			}
		}
	}
	return cmap, b.Build()
}

// initialBisect seeds side 0 by greedy graph growing: grow a region from a
// random vertex, always absorbing the frontier vertex most connected to the
// region, until side 0 holds fraction f of the (normalized) weight. The
// best of opt.InitTries attempts by edge cut wins.
func initialBisect(g *graph.Graph, f float64, opt Options, s *xrand.Stream) []int8 {
	n := g.NumVertices()
	nCon := g.NumConstraints()
	totals := make([]int64, nCon)
	for c := 0; c < nCon; c++ {
		totals[c] = g.TotalVertexWeight(c)
	}
	normTarget := f

	var bestSide []int8
	bestCut := int64(math.MaxInt64)
	for try := 0; try < opt.InitTries; try++ {
		side := make([]int8, n)
		for i := range side {
			side[i] = 1
		}
		grown := make([]int64, nCon)
		normLoad := func() float64 {
			var sum float64
			var cnt int
			for c := 0; c < nCon; c++ {
				if totals[c] > 0 {
					sum += float64(grown[c]) / float64(totals[c])
					cnt++
				}
			}
			if cnt == 0 {
				return 1
			}
			return sum / float64(cnt)
		}
		// overCap reports whether absorbing v would push any constraint
		// beyond its share of side 0 (with the ε slack) — the growing loop
		// must respect every constraint, not just their average.
		overCap := func(v int32) bool {
			vw := g.VertexWeights(int(v))
			for c := 0; c < nCon; c++ {
				if totals[c] == 0 {
					continue
				}
				cap := int64((f + opt.Imbalance) * float64(totals[c]))
				if grown[c]+vw[c] > cap {
					return true
				}
			}
			return false
		}
		// conn[v]: edge weight from v into the region; frontier keyed by it.
		conn := make([]int64, n)
		h := &gainHeap{}
		inRegion := make([]bool, n)
		add := func(v int32) {
			inRegion[v] = true
			side[v] = 0
			vw := g.VertexWeights(int(v))
			for c := 0; c < nCon; c++ {
				grown[c] += vw[c]
			}
			nbrs, ws := g.Neighbors(int(v))
			for i, u := range nbrs {
				if !inRegion[u] {
					conn[u] += ws[i]
					heap.Push(h, gainEntry{gain: conn[u], v: u})
				}
			}
		}
		add(int32(s.Intn(n)))
		for normLoad() < normTarget {
			var next int32 = -1
			for h.Len() > 0 {
				e := heap.Pop(h).(gainEntry)
				if inRegion[e.v] || conn[e.v] != e.gain {
					continue // stale
				}
				if overCap(e.v) {
					continue // caps only tighten; v stays infeasible
				}
				next = e.v
				break
			}
			if next < 0 {
				// Frontier exhausted (disconnected graph or every frontier
				// vertex capped out): pick any feasible vertex, else stop.
				var candidates []int32
				for v := 0; v < n; v++ {
					if !inRegion[v] && !overCap(int32(v)) {
						candidates = append(candidates, int32(v))
					}
				}
				if len(candidates) == 0 {
					break
				}
				next = candidates[s.Intn(len(candidates))]
			}
			add(next)
		}
		cut := cutWeight(g, side)
		if cut < bestCut {
			bestCut = cut
			bestSide = side
		}
	}
	return bestSide
}

func cutWeight(g *graph.Graph, side []int8) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) > v && side[u] != side[v] {
				cut += ws[i]
			}
		}
	}
	return cut
}

type gainEntry struct {
	gain int64
	v    int32
}

// gainHeap is a max-heap on gain.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refine2way improves a bisection by boundary FM passes: repeatedly move
// the boundary vertex with the best gain (cut reduction) whose move keeps
// the destination within its multi-constraint capacity; each vertex moves
// at most once per pass. Moves out of an overweight side are allowed even
// at negative gain, which is what repairs balance violations left by
// projection from a coarser level.
func refine2way(g *graph.Graph, side []int8, f float64, opt Options) {
	n := g.NumVertices()
	if n < 2 {
		return
	}
	nCon := g.NumConstraints()
	totals := make([]int64, nCon)
	for c := 0; c < nCon; c++ {
		totals[c] = g.TotalVertexWeight(c)
	}
	cap0 := make([]int64, nCon)
	cap1 := make([]int64, nCon)
	for c := 0; c < nCon; c++ {
		cap0[c] = int64((1 + opt.Imbalance) * f * float64(totals[c]))
		cap1[c] = int64((1 + opt.Imbalance) * (1 - f) * float64(totals[c]))
	}
	partW := [2][]int64{make([]int64, nCon), make([]int64, nCon)}
	counts := [2]int{}
	for v := 0; v < n; v++ {
		vw := g.VertexWeights(v)
		sd := side[v]
		for c := 0; c < nCon; c++ {
			partW[sd][c] += vw[c]
		}
		counts[sd]++
	}
	caps := [2][]int64{cap0, cap1}

	gain := make([]int64, n)
	computeGain := func(v int) int64 {
		var ed, id int64
		nbrs, ws := g.Neighbors(v)
		for i, u := range nbrs {
			if side[u] == side[v] {
				id += ws[i]
			} else {
				ed += ws[i]
			}
		}
		return ed - id
	}

	overweight := func(sd int8) bool {
		for c := 0; c < nCon; c++ {
			if partW[sd][c] > caps[sd][c] {
				return true
			}
		}
		return false
	}
	// violationDelta returns the (normalized) change in total cap
	// violation if a vertex with weights vw moves src→dst: negative means
	// the move repairs balance.
	violationDelta := func(src, dst int8, vw []int64) float64 {
		var delta float64
		for c := 0; c < nCon; c++ {
			if totals[c] == 0 {
				continue
			}
			over := func(w, cap int64) float64 {
				if w > cap {
					return float64(w-cap) / float64(totals[c])
				}
				return 0
			}
			before := over(partW[src][c], caps[src][c]) + over(partW[dst][c], caps[dst][c])
			after := over(partW[src][c]-vw[c], caps[src][c]) + over(partW[dst][c]+vw[c], caps[dst][c])
			delta += after - before
		}
		return delta
	}

	for pass := 0; pass < opt.MaxPasses; pass++ {
		h := &gainHeap{}
		moved := make([]bool, n)
		for v := 0; v < n; v++ {
			gain[v] = computeGain(v)
			if gain[v] > -1<<62 && isBoundary(g, side, v) {
				heap.Push(h, gainEntry{gain: gain[v], v: int32(v)})
			}
		}
		var passGain int64
		var passRepair float64
		movesMade := 0
		for h.Len() > 0 {
			e := heap.Pop(h).(gainEntry)
			v := int(e.v)
			if moved[v] || e.gain != gain[v] {
				continue // stale entry
			}
			src := side[v]
			dst := 1 - src
			vw := g.VertexWeights(v)
			if counts[src] <= 1 {
				continue
			}
			delta := violationDelta(src, dst, vw)
			// Accept cut-improving moves that do not hurt balance, and
			// balance-repairing moves at any gain (this is what fixes the
			// violations projection leaves behind).
			if !(delta < 0 || (gain[v] > 0 && delta <= 0)) {
				if gain[v] < 0 && !overweight(src) && !overweight(dst) {
					// Heap is gain-ordered and balance is already fine:
					// nothing below can help.
					break
				}
				continue
			}
			passRepair -= delta
			// Apply the move.
			side[v] = dst
			moved[v] = true
			movesMade++
			passGain += gain[v]
			counts[src]--
			counts[dst]++
			for c := 0; c < nCon; c++ {
				partW[src][c] -= vw[c]
				partW[dst][c] += vw[c]
			}
			gain[v] = -gain[v]
			nbrs, ws := g.Neighbors(v)
			for i, u := range nbrs {
				if moved[u] {
					continue
				}
				if side[u] == dst {
					gain[u] -= 2 * ws[i]
				} else {
					gain[u] += 2 * ws[i]
				}
				heap.Push(h, gainEntry{gain: gain[u], v: u})
			}
		}
		if movesMade == 0 {
			break
		}
		if passGain <= 0 && passRepair <= 0 {
			break
		}
	}
}

func isBoundary(g *graph.Graph, side []int8, v int) bool {
	nbrs, _ := g.Neighbors(v)
	for _, u := range nbrs {
		if side[u] != side[v] {
			return true
		}
	}
	// Isolated or interior vertices still participate: balance moves may
	// need them (an isolated vertex can move anywhere for free).
	return len(nbrs) == 0
}
