package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// TestEvaluateConservationProperty: partition quality metrics must
// conserve mass — part weights sum to graph totals, cuts bounded by total
// edge weight, per-partition max cut at least the average.
func TestEvaluateConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed)
		n := 10 + s.Intn(80)
		m := n + s.Intn(4*n)
		k := 1 + s.Intn(9)
		g := randomGraph(seed, n, m, 5)
		var p *Partitioning
		switch seed % 3 {
		case 0:
			p = RoundRobin(n, k)
		case 1:
			loads := make([]int64, n)
			for v := range loads {
				loads[v] = g.VertexWeight(v, 0)
			}
			p = LPT(loads, k)
		default:
			p = Multilevel(g, k, Options{Seed: seed})
		}
		q := Evaluate(g, p)
		var sum int64
		for _, pw := range q.PartWeights {
			sum += pw[0]
		}
		if sum != q.TotalWeights[0] || sum != g.TotalVertexWeight(0) {
			return false
		}
		if q.EdgeCut < 0 || q.EdgeCut > q.TotalEdgeWeight {
			return false
		}
		if q.K > 1 && q.EdgeCut > 0 && q.MaxPartCut < q.EdgeCut/int64(q.K) {
			return false
		}
		// S_ub is at most K and at least 1 for a non-empty graph.
		sub := q.SpeedupUpperBound(0)
		return sub >= 1-1e-9 && sub <= float64(k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultilevelAssignsEveryVertexOnce is the fundamental partitioning
// contract under random graphs and part counts.
func TestMultilevelAssignsEveryVertexOnce(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed ^ 0xbeef)
		n := 5 + s.Intn(120)
		k := 1 + s.Intn(12)
		g := randomGraph(seed, n, 3*n, 3)
		p := Multilevel(g, k, Options{Seed: seed})
		if len(p.Assign) != n || p.K != k {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultilevelImbalanceBudget: the requested ε must be roughly honored
// on divisible workloads (unit weights, k | n).
func TestMultilevelImbalanceBudget(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		g := randomGraph(11, 256, 1024, 1)
		// Unit weights: perfectly divisible.
		for v := 0; v < g.NumVertices(); v++ {
			g.SetVertexWeight(v, 0, 1)
		}
		p := Multilevel(g, k, Options{Seed: 5, Imbalance: 0.10})
		q := Evaluate(g, p)
		if q.MaxOverAvg[0] > 1.25 {
			t.Fatalf("k=%d: imbalance %v exceeds budget", k, q.MaxOverAvg[0])
		}
	}
}
