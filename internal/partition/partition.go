// Package partition implements the data distribution strategies the paper
// compares (Section III-B):
//
//   - RoundRobin — the original EpiSimdemics assignment (label "RR");
//   - Multilevel — a METIS-class multilevel graph partitioner with
//     multi-constraint balance (one constraint per computation phase) and
//     edge-cut minimization (label "GP");
//   - LPT — greedy longest-processing-time multiway number partitioning,
//     used to compute the load-balance-optimal assignments behind the
//     paper's S_ub speedup bounds (Figures 4, 5, 8) where edges are
//     ignored.
//
// Evaluate computes the quality metrics the paper reports: per-partition
// load (max/avg ratio), total edge cut, the maximum per-partition edge cut
// of Figure 14, and the S_ub = L_tot/L_max speedup bound.
package partition

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Partitioning assigns each of N vertices to one of K parts.
type Partitioning struct {
	K      int
	Assign []int32
}

// Validate checks that every vertex is assigned to a part in [0, K).
func (p *Partitioning) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("partition: K = %d", p.K)
	}
	for v, a := range p.Assign {
		if a < 0 || int(a) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to %d outside [0,%d)", v, a, p.K)
		}
	}
	return nil
}

// RoundRobin assigns vertex i to part i mod k: the paper's baseline
// distribution ("Originally, we assign objects to Charm++ chares
// round-robin (RR) to approximate static load balancing").
func RoundRobin(n, k int) *Partitioning {
	if k < 1 {
		k = 1
	}
	p := &Partitioning{K: k, Assign: make([]int32, n)}
	for i := 0; i < n; i++ {
		p.Assign[i] = int32(i % k)
	}
	return p
}

// LPT assigns items to k parts by longest-processing-time-first greedy
// scheduling on the given loads: sort loads descending, always placing the
// next item on the least-loaded part. It ignores edges entirely, which is
// exactly the "optimal partitioning in terms of load balancing without
// considering edge cuts" of Figure 2(a), and a 4/3-approximation of the
// optimal makespan — good enough to evaluate the paper's S_ub bound.
func LPT(loads []int64, k int) *Partitioning {
	if k < 1 {
		k = 1
	}
	p := &Partitioning{K: k, Assign: make([]int32, len(loads))}
	order := make([]int32, len(loads))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := loads[order[a]], loads[order[b]]
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	h := make(lptHeap, k)
	for i := range h {
		h[i] = lptBin{part: int32(i)}
	}
	heap.Init(&h)
	for _, v := range order {
		bin := h[0]
		p.Assign[v] = bin.part
		bin.load += loads[v]
		h[0] = bin
		heap.Fix(&h, 0)
	}
	return p
}

type lptBin struct {
	load int64
	part int32
}

type lptHeap []lptBin

func (h lptHeap) Len() int { return len(h) }
func (h lptHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].part < h[j].part
}
func (h lptHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lptHeap) Push(x interface{}) { *h = append(*h, x.(lptBin)) }
func (h *lptHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Quality summarizes a partitioning of a weighted graph.
type Quality struct {
	K int
	// PartWeights[p][c] is the total weight of constraint c in part p.
	PartWeights [][]int64
	// TotalWeights[c] is the graph total for constraint c.
	TotalWeights []int64
	// MaxOverAvg[c] = max_p PartWeights[p][c] / avg_p PartWeights[p][c]:
	// the load imbalance ratio of Figure 2.
	MaxOverAvg []float64
	// EdgeCut is the total weight of edges crossing parts.
	EdgeCut int64
	// MaxPartCut is the maximum, over parts, of the cut weight incident to
	// that part (Figure 14's "maximum per-partition edge cut").
	MaxPartCut int64
	// TotalEdgeWeight is the graph's total edge weight; MaxPartCut is
	// compared against TotalEdgeWeight/K (the hypothetical all-remote
	// case) in Figure 14.
	TotalEdgeWeight int64
}

// SpeedupUpperBound returns S_ub = L_tot / L_max for constraint c: the
// paper's estimated upper bound on speedup from the load distribution
// (Section III-B). Returns 0 if the constraint has no load.
func (q Quality) SpeedupUpperBound(c int) float64 {
	var max int64
	for _, pw := range q.PartWeights {
		if pw[c] > max {
			max = pw[c]
		}
	}
	if max == 0 {
		return 0
	}
	return float64(q.TotalWeights[c]) / float64(max)
}

// Evaluate computes the Quality of partitioning p over graph g.
func Evaluate(g *graph.Graph, p *Partitioning) Quality {
	nCon := g.NumConstraints()
	q := Quality{
		K:               p.K,
		PartWeights:     make([][]int64, p.K),
		TotalWeights:    make([]int64, nCon),
		MaxOverAvg:      make([]float64, nCon),
		TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	for i := range q.PartWeights {
		q.PartWeights[i] = make([]int64, nCon)
	}
	for v := 0; v < g.NumVertices(); v++ {
		part := p.Assign[v]
		vw := g.VertexWeights(v)
		for c := 0; c < nCon; c++ {
			q.PartWeights[part][c] += vw[c]
			q.TotalWeights[c] += vw[c]
		}
	}
	for c := 0; c < nCon; c++ {
		var max int64
		for _, pw := range q.PartWeights {
			if pw[c] > max {
				max = pw[c]
			}
		}
		avg := float64(q.TotalWeights[c]) / float64(p.K)
		if avg > 0 {
			q.MaxOverAvg[c] = float64(max) / avg
		}
	}
	perPartCut := make([]int64, p.K)
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(v)
		pv := p.Assign[v]
		for i, u := range nbrs {
			pu := p.Assign[u]
			if pu != pv {
				q.EdgeCut += ws[i] // counted once per endpoint; halved below
				perPartCut[pv] += ws[i]
			}
		}
	}
	q.EdgeCut /= 2
	for _, c := range perPartCut {
		if c > q.MaxPartCut {
			q.MaxPartCut = c
		}
	}
	return q
}
