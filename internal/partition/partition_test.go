package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestRoundRobin(t *testing.T) {
	p := RoundRobin(10, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Assign[0] != 0 || p.Assign[1] != 1 || p.Assign[2] != 2 || p.Assign[3] != 0 {
		t.Fatalf("assign = %v", p.Assign)
	}
	if p2 := RoundRobin(5, 0); p2.K != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
}

func TestLPTBalances(t *testing.T) {
	loads := []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	p := LPT(loads, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sums := make([]int64, 3)
	for v, a := range p.Assign {
		sums[a] += loads[v]
	}
	// Total 55 over 3 parts: optimal makespan is 19; LPT guarantees <= 4/3·OPT.
	var max int64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	if max > 25 {
		t.Fatalf("LPT makespan %d too large (sums %v)", max, sums)
	}
}

func TestLPTSingleHeavyItem(t *testing.T) {
	// One giant item dominates: max load must equal it — this is the l_max
	// bound at the heart of Section III-B.
	loads := []int64{1000, 1, 1, 1}
	p := LPT(loads, 4)
	sums := make([]int64, 4)
	for v, a := range p.Assign {
		sums[a] += loads[v]
	}
	var max int64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	if max != 1000 {
		t.Fatalf("max = %d, want 1000", max)
	}
}

func TestLPTProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed)
		n := 1 + s.Intn(60)
		k := 1 + s.Intn(8)
		loads := make([]int64, n)
		var total, maxItem int64
		for i := range loads {
			loads[i] = int64(s.Intn(100) + 1)
			total += loads[i]
			if loads[i] > maxItem {
				maxItem = loads[i]
			}
		}
		p := LPT(loads, k)
		if p.Validate() != nil {
			return false
		}
		sums := make([]int64, k)
		for v, a := range p.Assign {
			sums[a] += loads[v]
		}
		var max int64
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
		// LPT bound: max <= total/k + maxItem (loose but always true).
		return max <= total/int64(k)+maxItem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// fig2Graph builds the 13-vertex example of Figure 2: node 1 has weight 8
// and the most edges; nodes 7 and 9 have weight 1; all other nodes weight 2
// (weights chosen so the paper's stated totals hold: total load 24, and a
// 5-way balance-optimal split has max part load 8 = node 1 alone).
func fig2Graph() *graph.Graph {
	// Node 1 (index 0 here) is the hub connected to 8 spokes; remaining
	// vertices form small chains, mirroring the figure's structure.
	b := graph.NewBuilder(13, 1)
	w := []int64{8, 2, 2, 2, 2, 2, 1, 2, 1, 2, 2, 2, 2} // nodes 1..13
	for v, wt := range w {
		b.SetVertexWeight(v, 0, wt)
	}
	hub := 0
	for _, spoke := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		b.AddEdge(hub, spoke, 1)
	}
	b.AddEdge(9, 10, 1)
	b.AddEdge(10, 11, 1)
	b.AddEdge(11, 12, 1)
	b.AddEdge(1, 9, 1)
	b.AddEdge(5, 12, 1)
	return b.Build()
}

func TestEvaluateBasics(t *testing.T) {
	g := fig2Graph()
	p := RoundRobin(13, 5)
	q := Evaluate(g, p)
	if q.K != 5 || len(q.PartWeights) != 5 {
		t.Fatalf("quality shape wrong: %+v", q)
	}
	if q.TotalWeights[0] != 30 {
		t.Fatalf("total weight = %d, want 30", q.TotalWeights[0])
	}
	if q.EdgeCut < 0 || q.EdgeCut > q.TotalEdgeWeight {
		t.Fatalf("edge cut %d out of range", q.EdgeCut)
	}
	if q.MaxPartCut < q.EdgeCut/int64(q.K) {
		t.Fatalf("max part cut %d below average", q.MaxPartCut)
	}
}

func TestEvaluateAllCutVsNoCut(t *testing.T) {
	// Path graph 0-1-2-3: all in one part = cut 0; alternating = cut 3.
	b := graph.NewBuilder(4, 1)
	for v := 0; v < 4; v++ {
		b.SetVertexWeight(v, 0, 1)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	one := &Partitioning{K: 1, Assign: make([]int32, 4)}
	if q := Evaluate(g, one); q.EdgeCut != 0 {
		t.Fatalf("single part cut = %d", q.EdgeCut)
	}
	alt := &Partitioning{K: 2, Assign: []int32{0, 1, 0, 1}}
	if q := Evaluate(g, alt); q.EdgeCut != 3 {
		t.Fatalf("alternating cut = %d, want 3", q.EdgeCut)
	}
}

func TestSpeedupUpperBound(t *testing.T) {
	b := graph.NewBuilder(4, 1)
	for v := 0; v < 4; v++ {
		b.SetVertexWeight(v, 0, 10)
	}
	g := b.Build()
	perfect := &Partitioning{K: 4, Assign: []int32{0, 1, 2, 3}}
	if s := Evaluate(g, perfect).SpeedupUpperBound(0); s != 4 {
		t.Fatalf("perfect speedup = %v, want 4", s)
	}
	lumped := &Partitioning{K: 4, Assign: []int32{0, 0, 0, 0}}
	if s := Evaluate(g, lumped).SpeedupUpperBound(0); s != 1 {
		t.Fatalf("lumped speedup = %v, want 1", s)
	}
}

func TestFigure2Tradeoff(t *testing.T) {
	// The paper's Figure 2 point: balance-first partitioning (LPT) cuts
	// more edges but reaches lower max load than cut-first partitioning
	// (Multilevel with loose balance).
	g := fig2Graph()
	loads := make([]int64, g.NumVertices())
	for v := range loads {
		loads[v] = g.VertexWeight(v, 0)
	}
	balanced := LPT(loads, 5)
	qb := Evaluate(g, balanced)

	cutFirst := Multilevel(g, 5, Options{Imbalance: 0.9, Seed: 3})
	qc := Evaluate(g, cutFirst)

	// Balance-optimal: max part load must hit the l_max bound of 8.
	var maxB int64
	for _, pw := range qb.PartWeights {
		if pw[0] > maxB {
			maxB = pw[0]
		}
	}
	if maxB != 8 {
		t.Fatalf("LPT max load = %d, want 8 (node 1 alone)", maxB)
	}
	// Cut-first must cut fewer edges than balance-first (which severs the
	// whole hub).
	if qc.EdgeCut >= qb.EdgeCut {
		t.Fatalf("cut-first cut %d !< balance-first cut %d", qc.EdgeCut, qb.EdgeCut)
	}
}

func TestMultilevelValidAndBalanced(t *testing.T) {
	g := randomGraph(1, 600, 2400, 1)
	for _, k := range []int{2, 3, 7, 16} {
		p := Multilevel(g, k, Options{Seed: 42})
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k {
			t.Fatalf("k=%d: K=%d", k, p.K)
		}
		q := Evaluate(g, p)
		// Every part should be non-trivially loaded; allow generous slack
		// for recursive bisection drift on small graphs.
		if q.MaxOverAvg[0] > 1.8 {
			t.Fatalf("k=%d: imbalance %v too high (weights %v)", k, q.MaxOverAvg[0], q.PartWeights)
		}
	}
}

func TestMultilevelCutBeatsRoundRobin(t *testing.T) {
	// On a graph with strong community structure the partitioner must find
	// a much smaller cut than round robin.
	g := communityGraph(4, 150, 5)
	k := 4
	ml := Multilevel(g, k, Options{Seed: 7})
	rr := RoundRobin(g.NumVertices(), k)
	qml := Evaluate(g, ml)
	qrr := Evaluate(g, rr)
	if qml.EdgeCut*4 > qrr.EdgeCut {
		t.Fatalf("multilevel cut %d not clearly better than RR cut %d", qml.EdgeCut, qrr.EdgeCut)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := randomGraph(5, 300, 1200, 1)
	a := Multilevel(g, 6, Options{Seed: 9})
	b := Multilevel(g, 6, Options{Seed: 9})
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("non-deterministic at vertex %d", v)
		}
	}
}

func TestMultilevelEdgeCases(t *testing.T) {
	g := randomGraph(2, 50, 100, 1)
	if p := Multilevel(g, 1, Options{}); p.K != 1 {
		t.Fatal("k=1 broken")
	}
	if p := Multilevel(g, 0, Options{}); p.K != 1 {
		t.Fatal("k=0 should clamp")
	}
	// k near n.
	p := Multilevel(g, 50, Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empty graph.
	empty := graph.NewBuilder(0, 1).Build()
	if p := Multilevel(empty, 4, Options{}); len(p.Assign) != 0 {
		t.Fatal("empty graph broken")
	}
}

func TestMultilevelMultiConstraint(t *testing.T) {
	// Two constraints carried by disjoint vertex sets (like persons vs
	// locations): both must end up balanced.
	s := xrand.NewStream(11)
	n := 400
	b := graph.NewBuilder(n, 2)
	for v := 0; v < n; v++ {
		if v%2 == 0 {
			b.SetVertexWeight(v, 0, int64(1+s.Intn(10)))
		} else {
			b.SetVertexWeight(v, 1, int64(1+s.Intn(10)))
		}
	}
	for i := 0; i < 1600; i++ {
		u, v := s.Intn(n), s.Intn(n)
		b.AddEdge(u, v, 1)
	}
	g := b.Build()
	p := Multilevel(g, 4, Options{Seed: 3})
	q := Evaluate(g, p)
	for c := 0; c < 2; c++ {
		if q.MaxOverAvg[c] > 1.9 {
			t.Fatalf("constraint %d imbalance %v (weights %v)", c, q.MaxOverAvg[c], q.PartWeights)
		}
	}
}

func TestMultilevelDisconnected(t *testing.T) {
	// Two disjoint cliques; 2-way partitioning should cut zero edges.
	b := graph.NewBuilder(20, 1)
	for v := 0; v < 20; v++ {
		b.SetVertexWeight(v, 0, 1)
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(10+i, 10+j, 1)
		}
	}
	g := b.Build()
	p := Multilevel(g, 2, Options{Seed: 5})
	q := Evaluate(g, p)
	if q.EdgeCut != 0 {
		t.Fatalf("disconnected cliques cut = %d, want 0", q.EdgeCut)
	}
}

// randomGraph builds a connected-ish random graph.
func randomGraph(seed uint64, n, m int, wMax int64) *graph.Graph {
	s := xrand.NewStream(seed)
	b := graph.NewBuilder(n, 1)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, 0, 1+int64(s.Intn(int(wMax))))
	}
	// Spanning chain keeps it connected.
	for v := 1; v < n; v++ {
		b.AddEdge(v-1, v, 1)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(s.Intn(n), s.Intn(n), int64(1+s.Intn(3)))
	}
	return b.Build()
}

// communityGraph builds numComm dense communities of commSize vertices
// with only 'bridges' edges between consecutive communities.
func communityGraph(numComm, commSize, bridges int) *graph.Graph {
	n := numComm * commSize
	b := graph.NewBuilder(n, 1)
	s := xrand.NewStream(99)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, 0, 1)
	}
	for c := 0; c < numComm; c++ {
		base := c * commSize
		for i := 0; i < commSize*6; i++ {
			b.AddEdge(base+s.Intn(commSize), base+s.Intn(commSize), 1)
		}
		if c > 0 {
			for i := 0; i < bridges; i++ {
				b.AddEdge(base-1-s.Intn(commSize), base+s.Intn(commSize), 1)
			}
		}
	}
	return b.Build()
}

func BenchmarkMultilevel10k(b *testing.B) {
	g := randomGraph(3, 10000, 40000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Multilevel(g, 16, Options{Seed: uint64(i + 1)})
		if p.Validate() != nil {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkLPT100k(b *testing.B) {
	s := xrand.NewStream(1)
	loads := make([]int64, 100000)
	for i := range loads {
		loads[i] = int64(1 + s.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LPT(loads, 1024)
	}
}
