package interventions

import (
	"strings"
	"testing"
)

func TestScheduleCompileParses(t *testing.T) {
	s := Schedule{
		Closures:     []Closure{{LocType: "school", Day: 10, Days: 14}, {LocType: "work", Day: 12, Days: 7}},
		Vaccinations: []Vaccination{{Day: 11, Fraction: 0.25}, {Day: 15, Fraction: 5e-05}},
		Quarantines:  []Quarantine{{State: "symptomatic", Day: 10, Days: 30}},
	}
	if err := s.Validate(9); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	src := s.Compile()
	scn, err := Parse(src)
	if err != nil {
		t.Fatalf("compiled schedule does not parse: %v\n%s", err, src)
	}
	if got, want := len(scn.Rules), 5; got != want {
		t.Fatalf("compiled %d rules, want %d", got, want)
	}
	// Every compiled rule is a pure day trigger: firing on its day must
	// apply exactly the scheduled action.
	eff := NewEffects()
	scn.Step(Env{Day: 12, Population: 100}, eff)
	if !eff.Closed("school") || !eff.Closed("work") {
		t.Errorf("day 12: school/work should be closed: %+v", eff.ClosedFor)
	}
	if eff.VaccinateNow != 0.25 {
		t.Errorf("day 12: VaccinateNow = %v, want 0.25", eff.VaccinateNow)
	}
	if !eff.Isolated("symptomatic") {
		t.Errorf("day 12: symptomatic should be isolated")
	}
}

func TestScheduleCompileDeterministic(t *testing.T) {
	s := Schedule{Closures: []Closure{{LocType: "school", Day: 3, Days: 5}}}
	if a, b := s.Compile(), s.Compile(); a != b {
		t.Fatalf("Compile not deterministic:\n%q\n%q", a, b)
	}
}

func TestScheduleEmpty(t *testing.T) {
	var s Schedule
	if !s.Empty() {
		t.Fatal("zero Schedule should be Empty")
	}
	if got := s.Compile(); got != "" {
		t.Fatalf("empty schedule compiled to %q", got)
	}
	if err := s.Validate(0); err != nil {
		t.Fatalf("empty schedule should validate: %v", err)
	}
}

func TestScheduleValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		s       Schedule
		forkDay int
	}{
		{"closure at fork day", Schedule{Closures: []Closure{{LocType: "school", Day: 5, Days: 3}}}, 5},
		{"closure before fork day", Schedule{Closures: []Closure{{LocType: "school", Day: 2, Days: 3}}}, 5},
		{"zero duration", Schedule{Closures: []Closure{{LocType: "school", Day: 6, Days: 0}}}, 5},
		{"bad identifier", Schedule{Closures: []Closure{{LocType: "sch ool", Day: 6, Days: 3}}}, 5},
		{"leading digit", Schedule{Quarantines: []Quarantine{{State: "9ill", Day: 6, Days: 3}}}, 5},
		{"empty identifier", Schedule{Quarantines: []Quarantine{{State: "", Day: 6, Days: 3}}}, 5},
		{"fraction above one", Schedule{Vaccinations: []Vaccination{{Day: 6, Fraction: 1.5}}}, 5},
		{"vaccination at day zero", Schedule{Vaccinations: []Vaccination{{Day: 0, Fraction: 0.5}}}, 0},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(tc.forkDay); err == nil {
			t.Errorf("%s: Validate(%d) accepted %+v", tc.name, tc.forkDay, tc.s)
		}
	}
}

func TestFiredFlagsRoundTrip(t *testing.T) {
	scn, err := Parse("when day >= 1 { close school for 2 }\nwhen day >= 100 { close work for 2 }")
	if err != nil {
		t.Fatal(err)
	}
	scn.Step(Env{Day: 5, Population: 10}, NewEffects())
	flags := scn.FiredFlags()
	if !flags[0] || flags[1] {
		t.Fatalf("FiredFlags = %v, want [true false]", flags)
	}
	// Restore into a longer scenario: base flags land on the first rules,
	// appended rules stay untouched.
	combined, err := Parse(strings.Join([]string{
		"when day >= 1 { close school for 2 }",
		"when day >= 100 { close work for 2 }",
		"when day >= 10 { vaccinate 0.1 of people }",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := combined.SetFiredFlags(flags); err != nil {
		t.Fatal(err)
	}
	got := combined.FiredFlags()
	want := []bool{true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after SetFiredFlags: %v, want %v", got, want)
		}
	}
	if err := combined.SetFiredFlags(make([]bool, 4)); err == nil {
		t.Fatal("SetFiredFlags should reject more flags than rules")
	}
}
