// Typed intervention schedules: the structured counterpart of the DSL,
// used by the sweep's first-class intervention axis. A Schedule is a set
// of day-triggered actions (closures, vaccinations, quarantines) that
// compiles deterministically to DSL rules of the form
//
//	when day >= N { close school for 14 }
//
// so a scheduled branch runs through exactly the engine path a
// hand-written scenario does. Because every compiled condition is
// "day >= N" with N strictly after the sweep's fork day, a compiled
// branch provably cannot fire during the shared pre-fork prefix — the
// invariant fork-point checkpointing rests on.
package interventions

import (
	"fmt"
	"strconv"
	"strings"
)

// Closure closes all locations of a type for a number of days, starting
// on a fixed day.
type Closure struct {
	// LocType is the location type to close ("school", "work", ...).
	LocType string `json:"loc_type"`
	// Day is the first day the closure is in force (1-based, like the
	// engine's day numbering).
	Day int `json:"day"`
	// Days is the closure's duration.
	Days int `json:"days"`
}

// Vaccination vaccinates a fraction of the untreated population on a
// fixed day.
type Vaccination struct {
	Day      int     `json:"day"`
	Fraction float64 `json:"fraction"`
}

// Quarantine keeps people in a disease state home for a number of days,
// starting on a fixed day.
type Quarantine struct {
	// State is the disease state to isolate ("symptomatic", ...).
	State string `json:"state"`
	Day   int    `json:"day"`
	Days  int    `json:"days"`
}

// Schedule is a typed intervention program: fixed-day closures,
// vaccinations and quarantines. The zero value is the empty schedule (a
// baseline branch).
type Schedule struct {
	Closures     []Closure     `json:"closures,omitempty"`
	Vaccinations []Vaccination `json:"vaccinations,omitempty"`
	Quarantines  []Quarantine  `json:"quarantines,omitempty"`
}

// Empty reports whether the schedule contains no actions.
func (s *Schedule) Empty() bool {
	return len(s.Closures) == 0 && len(s.Vaccinations) == 0 && len(s.Quarantines) == 0
}

// Validate checks the schedule against the DSL's own action rules plus
// the fork contract: every trigger day must lie strictly after forkDay,
// so the compiled rules cannot fire during the shared prefix (pass 0
// when there is no fork).
func (s *Schedule) Validate(forkDay int) error {
	for i, c := range s.Closures {
		if err := validIdent(c.LocType, "closure", i, "location type"); err != nil {
			return err
		}
		if err := validDays(c.Day, c.Days, "closure", i, forkDay); err != nil {
			return err
		}
	}
	for i, v := range s.Vaccinations {
		if v.Fraction < 0 || v.Fraction > 1 {
			return fmt.Errorf("interventions: vaccination %d: fraction %v outside [0,1]", i, v.Fraction)
		}
		if v.Day <= forkDay {
			return fmt.Errorf("interventions: vaccination %d: day %d must be after fork day %d", i, v.Day, forkDay)
		}
	}
	for i, q := range s.Quarantines {
		if err := validIdent(q.State, "quarantine", i, "disease state"); err != nil {
			return err
		}
		if err := validDays(q.Day, q.Days, "quarantine", i, forkDay); err != nil {
			return err
		}
	}
	return nil
}

func validIdent(name, what string, i int, field string) error {
	if name == "" {
		return fmt.Errorf("interventions: %s %d: missing %s", what, i, field)
	}
	for j := 0; j < len(name); j++ {
		c := name[j]
		ok := isAlpha(c) || (j > 0 && isDigit(c))
		if !ok {
			return fmt.Errorf("interventions: %s %d: %s %q is not an identifier", what, i, field, name)
		}
	}
	return nil
}

func validDays(day, days int, what string, i, forkDay int) error {
	if day <= forkDay {
		return fmt.Errorf("interventions: %s %d: day %d must be after fork day %d", what, i, day, forkDay)
	}
	if days < 1 {
		return fmt.Errorf("interventions: %s %d: duration %d must be at least one day", what, i, days)
	}
	return nil
}

// Compile renders the schedule as DSL source, one "when day >= N" rule
// per action in slice order (closures, then vaccinations, then
// quarantines). The output is deterministic — equal schedules compile to
// equal text — so it can participate in content keys. An empty schedule
// compiles to the empty string.
func (s *Schedule) Compile() string {
	var b strings.Builder
	for _, c := range s.Closures {
		fmt.Fprintf(&b, "when day >= %d { close %s for %d }\n", c.Day, c.LocType, c.Days)
	}
	for _, v := range s.Vaccinations {
		fmt.Fprintf(&b, "when day >= %d { vaccinate %s of people }\n",
			v.Day, strconv.FormatFloat(v.Fraction, 'g', -1, 64))
	}
	for _, q := range s.Quarantines {
		fmt.Fprintf(&b, "when day >= %d { isolate %s for %d }\n", q.Day, q.State, q.Days)
	}
	return b.String()
}

// FiredFlags returns each rule's one-shot latch in rule order — the
// scenario-side state a checkpoint must carry (Effects captures the
// consequences of fired rules; these flags keep the rules from firing
// again after a restore).
func (s *Scenario) FiredFlags() []bool {
	out := make([]bool, len(s.Rules))
	for i := range s.Rules {
		out[i] = s.Rules[i].fired
	}
	return out
}

// SetFiredFlags restores the fired latch of the FIRST len(flags) rules
// (later rules keep their current state). Restoring a checkpoint into a
// combined base+branch scenario passes the base scenario's flags: the
// branch's appended rules stay unfired, exactly as they were during the
// prefix they could not have fired in.
func (s *Scenario) SetFiredFlags(flags []bool) error {
	if len(flags) > len(s.Rules) {
		return fmt.Errorf("interventions: %d fired flags for %d rules", len(flags), len(s.Rules))
	}
	for i, f := range flags {
		s.Rules[i].fired = f
	}
	return nil
}
