package interventions

import (
	"strings"
	"testing"
)

const scenarioText = `
# pandemic course-of-action
when prevalence(symptomatic) > 0.01 and day >= 5 {
    close school for 14
    vaccinate 0.25 of people
}
when attackrate > 0.3 or count(symptomatic) > 5000 {
    reduce shop visits by 0.5 for 21
    isolate symptomatic for 30
}
when day == 60 {
    close work for 7
}
`

func TestParseScenario(t *testing.T) {
	s, err := Parse(scenarioText)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(s.Rules))
	}
	if len(s.Rules[0].Actions) != 2 {
		t.Fatalf("rule 0 actions = %d", len(s.Rules[0].Actions))
	}
	a := s.Rules[0].Actions[0]
	if a.Kind != ActClose || a.LocType != "school" || a.Days != 14 {
		t.Fatalf("close action = %+v", a)
	}
	v := s.Rules[0].Actions[1]
	if v.Kind != ActVaccinate || v.Fraction != 0.25 {
		t.Fatalf("vaccinate action = %+v", v)
	}
}

func TestRuleFiresOnceAtThreshold(t *testing.T) {
	s, err := Parse(scenarioText)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEffects()
	env := Env{Day: 3, Population: 100000, Counts: map[string]int{"symptomatic": 2000}}
	// Day 3: prevalence 2% but day < 5: no fire.
	if fired := s.Step(env, e); len(fired) != 0 {
		t.Fatalf("fired too early: %+v", fired)
	}
	env.Day = 6
	fired := s.Step(env, e)
	if len(fired) != 2 {
		t.Fatalf("want 2 actions, got %d", len(fired))
	}
	if !e.Closed("school") {
		t.Fatal("schools should be closed")
	}
	if e.VaccinateNow != 0.25 {
		t.Fatalf("vaccinate now = %v", e.VaccinateNow)
	}
	// Second step same env: rule must not re-fire.
	if fired := s.Step(env, e); len(fired) != 0 {
		t.Fatal("rule fired twice")
	}
}

func TestEffectsTickExpiry(t *testing.T) {
	s, _ := Parse("when day >= 1 { close school for 2 }")
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 10}, e)
	if !e.Closed("school") {
		t.Fatal("not closed on day 1")
	}
	e.Tick()
	if !e.Closed("school") {
		t.Fatal("should still be closed after 1 day")
	}
	e.Tick()
	if e.Closed("school") {
		t.Fatal("closure should have expired")
	}
}

func TestVaccinateNowClearedByTick(t *testing.T) {
	s, _ := Parse("when day >= 1 { vaccinate 0.5 of people }")
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 10}, e)
	if e.VaccinateNow != 0.5 {
		t.Fatal("vaccination order missing")
	}
	e.Tick()
	if e.VaccinateNow != 0 {
		t.Fatal("vaccination order must be one-day")
	}
}

func TestReductionAndIsolation(t *testing.T) {
	s, err := Parse(scenarioText)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEffects()
	env := Env{Day: 10, Population: 100000,
		Counts:             map[string]int{"symptomatic": 6000},
		CumulativeInfected: 10000}
	s.Step(env, e)
	if r := e.Reduction("shop"); r != 0.5 {
		t.Fatalf("shop reduction = %v", r)
	}
	if !e.Isolated("symptomatic") {
		t.Fatal("symptomatic should be isolated")
	}
	if e.Reduction("work") != 0 {
		t.Fatal("work should be unaffected")
	}
	for i := 0; i < 21; i++ {
		e.Tick()
	}
	if e.Reduction("shop") != 0 {
		t.Fatal("reduction should expire after 21 days")
	}
	if !e.Isolated("symptomatic") {
		t.Fatal("isolation lasts 30 days")
	}
}

func TestAttackRateCondition(t *testing.T) {
	s, _ := Parse("when attackrate >= 0.5 { close work for 1 }")
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 100, CumulativeInfected: 49}, e)
	if e.Closed("work") {
		t.Fatal("fired below threshold")
	}
	s.Step(Env{Day: 2, Population: 100, CumulativeInfected: 50}, e)
	if !e.Closed("work") {
		t.Fatal("did not fire at threshold")
	}
}

func TestOrCondition(t *testing.T) {
	s, _ := Parse("when day == 3 or day == 7 { close shop for 1 }")
	e := NewEffects()
	s.Step(Env{Day: 7, Population: 1}, e)
	if !e.Closed("shop") {
		t.Fatal("or-branch did not fire")
	}
}

func TestParenthesizedCondition(t *testing.T) {
	s, err := Parse("when (day > 5 or day == 2) and population >= 10 { close other for 1 }")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEffects()
	s.Step(Env{Day: 2, Population: 10}, e)
	if !e.Closed("other") {
		t.Fatal("parenthesized condition broken")
	}
}

func TestReset(t *testing.T) {
	s, _ := Parse("when day >= 1 { close school for 1 }")
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 1}, e)
	s.Reset()
	e2 := NewEffects()
	if fired := s.Step(Env{Day: 1, Population: 1}, e2); len(fired) != 1 {
		t.Fatal("reset did not re-arm rules")
	}
}

func TestMaxDurationWins(t *testing.T) {
	src := `
when day == 1 { close school for 5 }
when day == 2 { close school for 2 }
`
	s, _ := Parse(src)
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 1}, e)
	e.Tick()
	s.Step(Env{Day: 2, Population: 1}, e)
	// 4 days remain from the first rule; the 2-day order must not shorten.
	if e.ClosedFor["school"] != 4 {
		t.Fatalf("remaining closure = %d, want 4", e.ClosedFor["school"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no when":            "close school for 5",
		"empty block":        "when day > 1 { }",
		"bad fraction":       "when day > 1 { vaccinate 1.5 of people }",
		"bad duration":       "when day > 1 { close school for 0 }",
		"fractional days":    "when day > 1 { close school for 1.5 }",
		"unknown action":     "when day > 1 { explode school for 1 }",
		"unknown variable":   "when moonphase > 1 { close school for 1 }",
		"missing operator":   "when day { close school for 1 }",
		"lone equals":        "when day = 1 { close school for 1 }",
		"unterminated block": "when day > 1 { close school for 1",
		"bad character":      "when day > 1 @ { close school for 1 }",
		"missing of":         "when day > 1 { vaccinate 0.5 people }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "# top\nwhen day > 1 { # inline\n close school for 1\n}\n# tail"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestScientificNotation(t *testing.T) {
	s, err := Parse("when prevalence(latent) > 1e-3 { close school for 1 }")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEffects()
	s.Step(Env{Day: 1, Population: 1000, Counts: map[string]int{"latent": 2}}, e)
	if !e.Closed("school") {
		t.Fatal("scientific notation threshold broken")
	}
}

func TestConditionEvalTable(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want bool
	}{
		{"when day != 4 { close a for 1 }", Env{Day: 4, Population: 1}, false},
		{"when day != 4 { close a for 1 }", Env{Day: 5, Population: 1}, true},
		{"when day <= 4 { close a for 1 }", Env{Day: 4, Population: 1}, true},
		{"when 10 < population { close a for 1 }", Env{Population: 11}, true},
		{"when count(x) == 0 { close a for 1 }", Env{Population: 1, Counts: map[string]int{}}, true},
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		e := NewEffects()
		fired := s.Step(c.env, e)
		if (len(fired) > 0) != c.want {
			t.Errorf("%s with %+v: fired=%v want %v", c.src, c.env, len(fired) > 0, c.want)
		}
	}
}

func TestWhitespaceRobustness(t *testing.T) {
	src := strings.ReplaceAll(scenarioText, "\n", "\r\n")
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	oneLine := "when day > 1 { close school for 2 vaccinate 0.1 of people }"
	s, err := Parse(oneLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules[0].Actions) != 2 {
		t.Fatal("one-line scenario parsed wrong")
	}
}
