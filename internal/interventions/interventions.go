// Package interventions implements a small domain-specific language for
// epidemic interventions and behavior, standing in for the DSL of Bisset
// et al. (the paper's reference [6]) that EpiSimdemics uses to model
// "vaccinations, school closures, and anxiety levels". The H1N1
// course-of-action analyses the paper's introduction describes — closing
// schools, shutting down workplaces — are expressed in it.
//
// A scenario is a list of one-shot rules:
//
//	# close schools when symptomatic prevalence passes 1%
//	when prevalence(symptomatic) > 0.01 and day >= 5 {
//	    close school for 14
//	    vaccinate 0.25 of people
//	    reduce shop visits by 0.5 for 21
//	    isolate symptomatic for 30
//	}
//
// Conditions may reference day, prevalence(STATE), count(STATE),
// attackrate, and population, combined with and/or, comparisons and
// parentheses. Each rule fires at most once, on the first day its
// condition holds; its actions then stay in force for their stated
// durations. The engine queries the resulting Effects each day.
package interventions

import (
	"fmt"
	"strconv"
	"strings"
)

// Action kinds.
type ActionKind uint8

// Supported actions.
const (
	// ActClose closes all locations of a type for N days.
	ActClose ActionKind = iota
	// ActVaccinate vaccinates a fraction of the (untreated) population.
	ActVaccinate
	// ActReduceVisits drops a fraction of visits to a location type for N
	// days (anxiety-driven demand reduction).
	ActReduceVisits
	// ActIsolate keeps people in a given disease state home for N days.
	ActIsolate
)

// Action is one effectful statement of a rule.
type Action struct {
	Kind     ActionKind
	LocType  string  // close / reduce target ("school", "work", ...)
	State    string  // isolate target state
	Fraction float64 // vaccinate / reduce fraction
	Days     int     // duration
}

// Rule is "when <cond> { <actions> }". Rules fire once.
type Rule struct {
	Cond    Expr
	Actions []Action
	fired   bool
}

// Scenario is a parsed intervention program.
type Scenario struct {
	Rules []Rule
}

// Env is the world state visible to conditions on a given day.
type Env struct {
	Day        int
	Population int
	// Counts maps disease state name to the number of people in it.
	Counts map[string]int
	// CumulativeInfected counts everyone ever infected (attack rate
	// numerator).
	CumulativeInfected int
}

// Effects is the set of currently active intervention effects, maintained
// by repeatedly calling Scenario.Step.
type Effects struct {
	// ClosedFor[locType] > 0 means locations of that type are closed for
	// that many more days.
	ClosedFor map[string]int
	// ReduceFrac[locType] is the active visit-reduction fraction, with
	// remaining days in ReduceFor.
	ReduceFrac map[string]float64
	ReduceFor  map[string]int
	// VaccinateNow is the fraction of the population to vaccinate today
	// (consumed by the engine each day it is non-zero).
	VaccinateNow float64
	// IsolateFor[state] > 0 keeps people in that state home.
	IsolateFor map[string]int
}

// NewEffects returns empty effects.
func NewEffects() *Effects {
	return &Effects{
		ClosedFor:  map[string]int{},
		ReduceFrac: map[string]float64{},
		ReduceFor:  map[string]int{},
		IsolateFor: map[string]int{},
	}
}

// Closed reports whether a location type is currently closed.
func (e *Effects) Closed(locType string) bool { return e.ClosedFor[locType] > 0 }

// Reduction returns the active visit-reduction fraction for a type.
func (e *Effects) Reduction(locType string) float64 {
	if e.ReduceFor[locType] > 0 {
		return e.ReduceFrac[locType]
	}
	return 0
}

// Isolated reports whether a disease state is under isolation orders.
func (e *Effects) Isolated(state string) bool { return e.IsolateFor[state] > 0 }

// Tick ages all active effects by one day and clears the one-day
// vaccination order. Call at the end of each simulated day.
func (e *Effects) Tick() {
	for k := range e.ClosedFor {
		if e.ClosedFor[k] > 0 {
			e.ClosedFor[k]--
		}
	}
	for k := range e.ReduceFor {
		if e.ReduceFor[k] > 0 {
			e.ReduceFor[k]--
		}
	}
	for k := range e.IsolateFor {
		if e.IsolateFor[k] > 0 {
			e.IsolateFor[k]--
		}
	}
	e.VaccinateNow = 0
}

// Step evaluates all rules against env, applying newly fired rules'
// actions to effects. It returns the actions fired today.
func (s *Scenario) Step(env Env, effects *Effects) []Action {
	var fired []Action
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.fired {
			continue
		}
		if !r.Cond.Eval(env) {
			continue
		}
		r.fired = true
		for _, a := range r.Actions {
			switch a.Kind {
			case ActClose:
				if a.Days > effects.ClosedFor[a.LocType] {
					effects.ClosedFor[a.LocType] = a.Days
				}
			case ActVaccinate:
				effects.VaccinateNow += a.Fraction
			case ActReduceVisits:
				effects.ReduceFrac[a.LocType] = a.Fraction
				if a.Days > effects.ReduceFor[a.LocType] {
					effects.ReduceFor[a.LocType] = a.Days
				}
			case ActIsolate:
				if a.Days > effects.IsolateFor[a.State] {
					effects.IsolateFor[a.State] = a.Days
				}
			}
			fired = append(fired, a)
		}
	}
	return fired
}

// Reset re-arms all rules (for running the same scenario again).
func (s *Scenario) Reset() {
	for i := range s.Rules {
		s.Rules[i].fired = false
	}
}

// Expr is a boolean/arithmetic expression over Env.
type Expr interface {
	Eval(env Env) bool
}

// numExpr evaluates to a float against the environment.
type numExpr interface {
	value(env Env) float64
}

type numLit float64

func (n numLit) value(Env) float64 { return float64(n) }

type dayVar struct{}

func (dayVar) value(env Env) float64 { return float64(env.Day) }

type popVar struct{}

func (popVar) value(env Env) float64 { return float64(env.Population) }

type attackRateVar struct{}

func (attackRateVar) value(env Env) float64 {
	if env.Population == 0 {
		return 0
	}
	return float64(env.CumulativeInfected) / float64(env.Population)
}

type prevalenceVar struct{ state string }

func (p prevalenceVar) value(env Env) float64 {
	if env.Population == 0 {
		return 0
	}
	return float64(env.Counts[p.state]) / float64(env.Population)
}

type countVar struct{ state string }

func (c countVar) value(env Env) float64 { return float64(env.Counts[c.state]) }

type cmpExpr struct {
	op   string
	l, r numExpr
}

func (c cmpExpr) Eval(env Env) bool {
	a, b := c.l.value(env), c.r.value(env)
	switch c.op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	case "==":
		return a == b
	case "!=":
		return a != b
	}
	return false
}

type andExpr struct{ l, r Expr }

func (a andExpr) Eval(env Env) bool { return a.l.Eval(env) && a.r.Eval(env) }

type orExpr struct{ l, r Expr }

func (o orExpr) Eval(env Env) bool { return o.l.Eval(env) || o.r.Eval(env) }

// ---- Lexer ----

type token struct {
	kind tokenKind
	text string
	line int
}

type tokenKind uint8

const (
	tokIdent tokenKind = iota
	tokNumber
	tokSymbol // { } ( ) < > <= >= == !=
	tokEOF
)

type lexer struct {
	src  string
	pos  int
	line int
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		ch := lx.src[lx.pos]
		switch {
		case ch == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case ch == '\n':
			lx.line++
			lx.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			lx.pos++
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
scan:
	ch := lx.src[lx.pos]
	start := lx.pos
	switch {
	case isAlpha(ch):
		for lx.pos < len(lx.src) && (isAlpha(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	case isDigit(ch) || ch == '.':
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.' ||
			lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E' ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && lx.pos > start &&
				(lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
	case strings.ContainsRune("{}()", rune(ch)):
		lx.pos++
		return token{kind: tokSymbol, text: string(ch), line: lx.line}, nil
	case ch == '<' || ch == '>' || ch == '=' || ch == '!':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{kind: tokSymbol, text: lx.src[start : start+2], line: lx.line}, nil
		}
		if ch == '=' || ch == '!' {
			return token{}, fmt.Errorf("interventions: line %d: lone %q", lx.line+1, ch)
		}
		return token{kind: tokSymbol, text: string(ch), line: lx.line}, nil
	default:
		return token{}, fmt.Errorf("interventions: line %d: unexpected character %q", lx.line+1, ch)
	}
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// ---- Parser ----

type parser struct {
	lx  lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) fail(format string, args ...interface{}) error {
	return fmt.Errorf("interventions: line %d: %s", p.cur.line+1, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind, text string) error {
	if p.cur.kind != kind || (text != "" && p.cur.text != text) {
		return p.fail("expected %q, found %q", text, p.cur.text)
	}
	return p.advance()
}

// Parse parses a scenario program.
func Parse(src string) (*Scenario, error) {
	p := &parser{lx: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var s Scenario
	for p.cur.kind != tokEOF {
		if p.cur.kind != tokIdent || p.cur.text != "when" {
			return nil, p.fail("expected \"when\", found %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "{"); err != nil {
			return nil, err
		}
		var actions []Action
		for !(p.cur.kind == tokSymbol && p.cur.text == "}") {
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			actions = append(actions, a)
		}
		if err := p.advance(); err != nil { // consume '}'
			return nil, err
		}
		if len(actions) == 0 {
			return nil, fmt.Errorf("interventions: rule with empty action block")
		}
		s.Rules = append(s.Rules, Rule{Cond: cond, Actions: actions})
	}
	if len(s.Rules) == 0 {
		return nil, fmt.Errorf("interventions: empty scenario")
	}
	return &s, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokIdent && p.cur.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokIdent && p.cur.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	if p.cur.kind == tokSymbol && p.cur.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	l, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokSymbol {
		return nil, p.fail("expected comparison operator, found %q", p.cur.text)
	}
	op := p.cur.text
	switch op {
	case "<", "<=", ">", ">=", "==", "!=":
	default:
		return nil, p.fail("unknown operator %q", op)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	return cmpExpr{op: op, l: l, r: r}, nil
}

func (p *parser) parseNum() (numExpr, error) {
	switch p.cur.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.fail("bad number %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return numLit(v), nil
	case tokIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "day":
			return dayVar{}, nil
		case "population":
			return popVar{}, nil
		case "attackrate":
			return attackRateVar{}, nil
		case "prevalence", "count":
			if err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			if p.cur.kind != tokIdent {
				return nil, p.fail("expected state name, found %q", p.cur.text)
			}
			state := p.cur.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			if name == "prevalence" {
				return prevalenceVar{state: state}, nil
			}
			return countVar{state: state}, nil
		default:
			return nil, p.fail("unknown variable %q", name)
		}
	default:
		return nil, p.fail("expected number or variable, found %q", p.cur.text)
	}
}

func (p *parser) parseAction() (Action, error) {
	if p.cur.kind != tokIdent {
		return Action{}, p.fail("expected action, found %q", p.cur.text)
	}
	verb := p.cur.text
	if err := p.advance(); err != nil {
		return Action{}, err
	}
	switch verb {
	case "close":
		// close LOCTYPE for N
		locType, err := p.ident("location type")
		if err != nil {
			return Action{}, err
		}
		days, err := p.forDays()
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActClose, LocType: locType, Days: days}, nil
	case "vaccinate":
		// vaccinate F of people
		f, err := p.number()
		if err != nil {
			return Action{}, err
		}
		if f < 0 || f > 1 {
			return Action{}, p.fail("vaccinate fraction %v outside [0,1]", f)
		}
		if err := p.keyword("of"); err != nil {
			return Action{}, err
		}
		if err := p.keyword("people"); err != nil {
			return Action{}, err
		}
		return Action{Kind: ActVaccinate, Fraction: f}, nil
	case "reduce":
		// reduce LOCTYPE visits by F for N
		locType, err := p.ident("location type")
		if err != nil {
			return Action{}, err
		}
		if err := p.keyword("visits"); err != nil {
			return Action{}, err
		}
		if err := p.keyword("by"); err != nil {
			return Action{}, err
		}
		f, err := p.number()
		if err != nil {
			return Action{}, err
		}
		if f < 0 || f > 1 {
			return Action{}, p.fail("reduce fraction %v outside [0,1]", f)
		}
		days, err := p.forDays()
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActReduceVisits, LocType: locType, Fraction: f, Days: days}, nil
	case "isolate":
		// isolate STATE for N
		state, err := p.ident("disease state")
		if err != nil {
			return Action{}, err
		}
		days, err := p.forDays()
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActIsolate, State: state, Days: days}, nil
	default:
		return Action{}, p.fail("unknown action %q", verb)
	}
}

func (p *parser) ident(what string) (string, error) {
	if p.cur.kind != tokIdent {
		return "", p.fail("expected %s, found %q", what, p.cur.text)
	}
	s := p.cur.text
	return s, p.advance()
}

func (p *parser) keyword(kw string) error {
	if p.cur.kind != tokIdent || p.cur.text != kw {
		return p.fail("expected %q, found %q", kw, p.cur.text)
	}
	return p.advance()
}

func (p *parser) number() (float64, error) {
	if p.cur.kind != tokNumber {
		return 0, p.fail("expected number, found %q", p.cur.text)
	}
	v, err := strconv.ParseFloat(p.cur.text, 64)
	if err != nil {
		return 0, p.fail("bad number %q", p.cur.text)
	}
	return v, p.advance()
}

func (p *parser) forDays() (int, error) {
	if err := p.keyword("for"); err != nil {
		return 0, err
	}
	v, err := p.number()
	if err != nil {
		return 0, err
	}
	if v < 1 || v != float64(int(v)) {
		return 0, p.fail("duration must be a positive whole number of days, got %v", v)
	}
	return int(v), nil
}
