package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
)

// stubBackend fakes the episimd HTTP surface with controllable load and
// job state, so spill and admission decisions can be tested
// deterministically (a real engine drains its queue on its own clock).
type stubBackend struct {
	name       string
	ts         *httptest.Server
	depth      atomic.Int64 // queue depth reported by /healthz
	jobState   atomic.Value // client.JobState every job reports
	failSubmit atomic.Bool  // refuse submissions with a 500
	accepted   atomic.Int64
}

func newStubBackend(t *testing.T, name string) *stubBackend {
	t.Helper()
	sb := &stubBackend{name: name}
	sb.jobState.Store(client.StateRunning)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, client.HealthReply{
			Status: "ok", Instance: sb.name, QueueDepth: int(sb.depth.Load()),
		})
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		if sb.failSubmit.Load() {
			writeError(w, http.StatusInternalServerError, "stub refusing submissions")
			return
		}
		n := sb.accepted.Add(1)
		writeJSON(w, http.StatusAccepted, client.SubmitReply{
			ID: fmt.Sprintf("sw-%06d", n), Cells: 1, Simulations: 1,
		})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, client.JobStatus{
			ID: r.PathValue("id"), State: sb.jobState.Load().(client.JobState),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, client.StatsReply{})
	})
	sb.ts = httptest.NewServer(mux)
	t.Cleanup(sb.ts.Close)
	return sb
}

// bootStubs builds a gateway over stub backends.
func bootStubs(t *testing.T, cfg Config, names ...string) (*Gateway, string, map[string]*stubBackend) {
	t.Helper()
	stubs := map[string]*stubBackend{}
	for _, n := range names {
		sb := newStubBackend(t, n)
		stubs[n] = sb
		cfg.Backends = append(cfg.Backends, sb.ts.URL)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		gw.Close()
		gts.Close()
	})
	return gw, gts.URL, stubs
}

// waitDepth blocks until the gateway's estimate for backend `name`
// reaches want (a probe round must observe the stub's depth).
func waitDepth(t *testing.T, gw *Gateway, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, b := range gw.backends {
			if b.identity() == name && b.queueDepthEstimate() == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never observed depth %d for %s", want, name)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postSpec(t *testing.T, gwURL string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, gwURL+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestSpillToRunnerUp is the load-aware half of the acceptance
// criterion: with the HRW owner's queue past -spill-queue-depth, a
// submission routes to the runner-up even though the owner is healthy,
// and episim_gw_spilled_total accounts for it.
func TestSpillToRunnerUp(t *testing.T) {
	gw, gwURL, stubs := bootStubs(t,
		Config{ProbeInterval: 30 * time.Millisecond, SpillQueueDepth: 2},
		"alpha", "beta")
	body := specBody(t, testSpec())
	key := DominantPlacementKey(testSpec())
	order := gw.rankFor(key)
	owner, runnerUp := order[0].identity(), order[1].identity()

	// Saturate the owner: depth 5 > spill bound 2; runner-up idle.
	stubs[owner].depth.Store(5)
	waitDepth(t, gw, owner, 5)

	resp := postSpec(t, gwURL, body, nil)
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(backendHeader); got != runnerUp {
		t.Fatalf("saturated owner %s: routed to %s, want runner-up %s", owner, got, runnerUp)
	}
	if n := gw.spilled.Load(); n != 1 {
		t.Fatalf("spilled = %d, want 1", n)
	}
	code, metrics := getRaw(t, gwURL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(metrics), "episim_gw_spilled_total 1") {
		t.Fatalf("metrics missing episim_gw_spilled_total 1 (HTTP %d):\n%s", code, metrics)
	}

	// Whole fleet saturated: affinity wins — stay on the owner, no spill.
	stubs[runnerUp].depth.Store(7)
	waitDepth(t, gw, runnerUp, 7)
	resp = postSpec(t, gwURL, body, nil)
	if got := resp.Header.Get(backendHeader); got != owner {
		t.Fatalf("fleet saturated: routed to %s, want owner %s", got, owner)
	}
	if n := gw.spilled.Load(); n != 1 {
		t.Fatalf("fleet-saturated submit spilled: %d", n)
	}

	// Owner drains: back to pure affinity.
	stubs[owner].depth.Store(0)
	waitDepth(t, gw, owner, 0)
	resp = postSpec(t, gwURL, body, nil)
	if got := resp.Header.Get(backendHeader); got != owner {
		t.Fatalf("drained owner: routed to %s, want %s", got, owner)
	}
	if n := gw.spilled.Load(); n != 1 {
		t.Fatalf("drained-owner submit spilled: %d", n)
	}
}

// TestAdmissionRateLimit: the per-client token bucket answers 429 with
// Retry-After once the burst is spent, keyed by X-Episim-Client, and the
// throttle shows up in stats and metrics.
func TestAdmissionRateLimit(t *testing.T) {
	gw, gwURL, _ := bootStubs(t,
		Config{ProbeInterval: time.Hour, SubmitRate: 0.01, SubmitBurst: 1},
		"alpha", "beta")
	body := specBody(t, testSpec())

	first := postSpec(t, gwURL, body, map[string]string{"X-Episim-Client": "tenant-a"})
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", first.StatusCode)
	}
	second := postSpec(t, gwURL, body, map[string]string{"X-Episim-Client": "tenant-a"})
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" || second.Header.Get("X-Episim-Retry-After-Ms") == "" {
		t.Fatalf("429 missing Retry-After headers: %+v", second.Header)
	}
	// A different client has its own bucket.
	other := postSpec(t, gwURL, body, map[string]string{"X-Episim-Client": "tenant-b"})
	if other.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-b submit: HTTP %d, want 202", other.StatusCode)
	}
	if n := gw.throttledRate.Load(); n != 1 {
		t.Fatalf("throttledRate = %d, want 1", n)
	}
	code, metrics := getRaw(t, gwURL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(metrics), `episim_gw_throttled_total{reason="rate"} 1`) {
		t.Fatalf("metrics missing rate throttle counter:\n%s", metrics)
	}
}

// TestClientHonorsRetryAfter: repro/client.Submit waits the advised
// interval on 429 and retries — the burst-then-drip pattern succeeds
// without the caller writing any backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	// Rate 2/s, burst 1: a token refills every 500ms, far longer than a
	// loopback round trip even on a loaded CI runner, so the second
	// back-to-back submission is deterministically throttled.
	gw, gwURL, _ := bootStubs(t,
		Config{ProbeInterval: time.Hour, SubmitRate: 2, SubmitBurst: 1},
		"alpha", "beta")
	c := client.New(gwURL)
	c.ClientID = "tenant-honor"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 3; i++ {
		if _, err := c.Submit(ctx, testSpec()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if gw.throttledRate.Load() == 0 {
		t.Fatal("no submission was throttled; retry honoring untested")
	}
}

// TestAdmissionInflightCap: the in-flight cap rejects a client at its
// bound, verifies lazily against the owning backend when challenged, and
// frees the slot the moment the job is observed terminal.
func TestAdmissionInflightCap(t *testing.T) {
	gw, gwURL, stubs := bootStubs(t,
		Config{ProbeInterval: time.Hour, MaxInflightPerClient: 1},
		"alpha", "beta")
	body := specBody(t, testSpec())
	hdr := map[string]string{"X-Episim-Client": "tenant-cap"}

	first := postSpec(t, gwURL, body, hdr)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", first.StatusCode)
	}
	// Job still running on its backend: the cap holds (lazy verification
	// confirms the job is live before rejecting).
	second := postSpec(t, gwURL, body, hdr)
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", second.StatusCode)
	}
	if gw.throttledInflight.Load() != 1 {
		t.Fatalf("throttledInflight = %d, want 1", gw.throttledInflight.Load())
	}

	// The job finishes (every stub job now reports done): the next
	// submission triggers lazy verification, which frees the slot. The
	// verification cooldown must lapse first — it exists so a hot-looping
	// rejected client cannot amplify POSTs into backend RPC fans.
	for _, sb := range stubs {
		sb.jobState.Store(client.StateDone)
	}
	time.Sleep(600 * time.Millisecond)
	third := postSpec(t, gwURL, body, hdr)
	if third.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(third.Body)
		t.Fatalf("post-completion submit: HTTP %d: %s", third.StatusCode, raw)
	}
}

// TestSpillFallbackCounters: a spill target that refuses the job, with
// the submission falling BACK to the cache-affine owner, must count as
// neither a spill nor a reroute — the job landed exactly where cache
// locality wanted it.
func TestSpillFallbackCounters(t *testing.T) {
	gw, gwURL, stubs := bootStubs(t,
		Config{ProbeInterval: 30 * time.Millisecond, SpillQueueDepth: 2},
		"alpha", "beta")
	body := specBody(t, testSpec())
	key := DominantPlacementKey(testSpec())
	order := gw.rankFor(key)
	owner, runnerUp := order[0].identity(), order[1].identity()

	stubs[owner].depth.Store(5)            // saturated: spill decision fires
	stubs[runnerUp].failSubmit.Store(true) // ...but the target refuses
	waitDepth(t, gw, owner, 5)

	resp := postSpec(t, gwURL, body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(backendHeader); got != owner {
		t.Fatalf("fallback landed on %s, want affine owner %s", got, owner)
	}
	if s, r := gw.spilled.Load(), gw.rerouted.Load(); s != 0 || r != 0 {
		t.Fatalf("fallback-to-owner counted spilled=%d rerouted=%d, want 0/0", s, r)
	}
}

// TestPositionalNameCollisionRefused: a daemon reporting a name shaped
// like another slot's positional identity ("b1") must be refused — it
// would shadow that slot's fallback ids in resolveID and misroute them.
func TestPositionalNameCollisionRefused(t *testing.T) {
	gw, _, _ := bootStubs(t, Config{ProbeInterval: time.Hour}, "b1", "honest")
	if got := gw.backends[0].identity(); got != "b0" {
		t.Fatalf("backend 0 adopted %q, must keep fallback b0", got)
	}
	// "b1-sw-000001" still resolves to slot 1, not the impostor.
	b, _, ok := gw.resolveID("b1-sw-000001")
	if !ok || b.index != 1 {
		t.Fatalf("b1 id resolved to index %d (ok=%v), want 1", b.index, ok)
	}
}

// TestStatsDegradeToLastKnown is the fleet-outage fix: with every
// backend down, /v1/stats and /metrics must serve the last-known
// aggregates under fleet_healthy=0 instead of erroring or zeroing.
func TestStatsDegradeToLastKnown(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: 50 * time.Millisecond, FailAfter: 1,
		ProbeTimeout: 500 * time.Millisecond})
	ack, _ := tc.submitRaw(t, specBody(t, testSpec()))
	tc.waitDone(t, ack.ID)

	// Live read: seed the last-known snapshots.
	var live StatsReply
	_, raw := getRaw(t, tc.gwURL+"/v1/stats")
	if err := json.Unmarshal(raw, &live); err != nil {
		t.Fatal(err)
	}
	if live.SweepsDone != 1 || live.Gateway.FleetHealthy != 1 {
		t.Fatalf("live stats = done %d healthy %d, want 1/1", live.SweepsDone, live.Gateway.FleetHealthy)
	}

	for _, b := range tc.backends {
		b.CloseClientConnections()
		b.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.gw.healthyCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("prober never ejected the dead fleet")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var dead StatsReply
	code, raw := getRaw(t, tc.gwURL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats with dead fleet: HTTP %d", code)
	}
	if err := json.Unmarshal(raw, &dead); err != nil {
		t.Fatal(err)
	}
	if dead.Gateway.FleetHealthy != 0 {
		t.Fatalf("fleet_healthy = %d with every backend dead", dead.Gateway.FleetHealthy)
	}
	if dead.SweepsDone != 1 {
		t.Fatalf("aggregate zeroed out: sweeps_done = %d, want last-known 1", dead.SweepsDone)
	}
	stale := 0
	for _, bs := range dead.Backends {
		if bs.Stats != nil && bs.StatsStale {
			stale++
		}
	}
	if stale == 0 {
		t.Fatalf("no backend served last-known stats: %s", raw)
	}

	code, metrics := getRaw(t, tc.gwURL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics with dead fleet: HTTP %d", code)
	}
	ms := string(metrics)
	if !strings.Contains(ms, "episim_gw_fleet_healthy 0") {
		t.Fatalf("metrics missing fleet_healthy 0:\n%s", ms)
	}
	if !strings.Contains(ms, "episimd_sweeps_done 1") {
		t.Fatalf("metrics lost last-known sweeps_done:\n%s", ms)
	}
}
