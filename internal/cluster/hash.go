package cluster

import (
	"sort"

	episim "repro"
)

// Rendezvous (highest-random-weight) hashing assigns a content key to
// the backend with the highest score(key, backend). Its two properties
// are exactly what cache-affine routing needs:
//
//   - deterministic: every gateway instance — and every restart — routes
//     the same key to the same backend, with no shared state to sync;
//   - minimal disruption: removing a backend reassigns only the keys it
//     owned; every other key keeps its backend, so their placement
//     caches stay hot through membership churn.

// hrwScore mixes a routing key with a backend identity into a 64-bit
// score: FNV-1a over "node \x00 key", finished with a splitmix64 round
// so near-identical inputs still spread across the full range.
func hrwScore(key, node string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// rankNodes returns indices into nodes ordered by descending HRW score
// for key (ties broken by index, so the order is total and stable).
func rankNodes(key string, nodes []string) []int {
	order := make([]int, len(nodes))
	scores := make([]uint64, len(nodes))
	for i, n := range nodes {
		order[i] = i
		scores[i] = hrwScore(key, n)
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// DominantPlacementKey reduces a sweep to the single routing key the
// gateway shards on: the placement content key covering the most cells
// of the grid (ties go to grid order). Placement builds dominate sweep
// cost, and internal/ensemble caches them by exactly this key — so
// routing every submission of a (population, placement) to the same
// backend keeps that backend's memory and disk cache hot, which is the
// paper's locality argument applied at cluster scale.
//
// The spec must already be normalized (ParseSweepSpec does this), or the
// defaulted fields would perturb the key.
func DominantPlacementKey(spec *episim.SweepSpec) string {
	counts := map[string]int{}
	var keys []string // first-seen order = grid order
	for _, cell := range spec.Cells() {
		k := cell.Placement.Key(cell.Population.Key(spec.Seed))
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k]++
	}
	best := ""
	for _, k := range keys {
		if best == "" || counts[k] > counts[best] {
			best = k
		}
	}
	return best
}
