//go:build chaos

package cluster

// Chaos end-to-end: real episimd and episim-gw binaries, a real SIGKILL.
// This is the CI chaos job (ci.yml "chaos"): it proves the full
// kill-a-backend story across process boundaries —
//
//  1. a client streaming a sweep whose owner is killed mid-stream
//     auto-reconnects through the gateway (and gives up cleanly once the
//     job is truly unrecoverable, instead of hanging);
//  2. the prober ejects the dead backend and a re-submission of the same
//     spec re-routes to the survivor;
//  3. the re-routed sweep completes with byte-identical aggregation —
//     determinism holds across backends, so failover costs a placement
//     rebuild, never a different answer.
//
// Run with: go test -tags chaos -run TestChaosKillOwnerMidStream ./internal/cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/client"
)

// chaosSpec is sized to run for a few seconds: long enough that a kill
// lands mid-sweep, short enough for CI.
func chaosSpec() *episim.SweepSpec {
	s := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "chaos-town", People: 3000, Locations: 300}},
		Placements:  []episim.SweepPlacement{{Strategy: "GP", SplitLoc: true, Ranks: 4}},
		Scenarios: []episim.SweepScenario{
			{Name: "baseline"},
			{Name: "closure", Text: "when day >= 5 { close school for 14 }"},
		},
		Replicates: 6,
		Days:       45,
		Seed:       7,
	}
	s.Normalize()
	return s
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("build %s: %v", pkg, err)
	}
	return bin
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func waitHealthy(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			var h struct {
				Healthy int `json:"backends_healthy"`
			}
			err := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && h.Healthy == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never reached %d healthy backends", want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submitRawURL posts a spec and returns the ack plus the routed backend.
func submitRawURL(t *testing.T, gwURL string, spec *episim.SweepSpec) (client.SubmitReply, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(spec); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gwURL+"/v1/sweeps", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var ack client.SubmitReply
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatalf("submit reply %q: %v", raw, err)
	}
	return ack, resp.Header.Get("X-Episim-Backend")
}

func fetchResult(t *testing.T, gwURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(gwURL + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

func TestChaosKillOwnerMidStream(t *testing.T) {
	dir := t.TempDir()
	episimd := buildBinary(t, dir, "repro/cmd/episimd")
	gwBin := buildBinary(t, dir, "repro/cmd/episim-gw")

	ports := []int{freePort(t), freePort(t), freePort(t)}
	names := []string{"chaos-a", "chaos-b"}
	procs := map[string]*exec.Cmd{}
	var backendURLs []string
	for i, name := range names {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i])
		procs[name] = startProc(t, episimd,
			"-addr", addr, "-name", name, "-max-active", "2",
			"-cache-dir", filepath.Join(dir, name))
		backendURLs = append(backendURLs, "http://"+addr)
	}
	gwAddr := fmt.Sprintf("127.0.0.1:%d", ports[2])
	startProc(t, gwBin,
		"-addr", gwAddr,
		"-backends", strings.Join(backendURLs, ","),
		"-probe-interval", "100ms", "-fail-after", "1")
	gwURL := "http://" + gwAddr
	waitHealthy(t, gwURL, 2)

	spec := chaosSpec()
	c := client.New(gwURL)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Reference run: completes untouched; its canonical bytes are the
	// oracle the post-chaos re-run must reproduce.
	refAck, owner := submitRawURL(t, gwURL, spec)
	if err := c.Stream(ctx, refAck.ID, 0, func(client.Event) error { return nil }); err != nil {
		t.Fatalf("reference stream: %v", err)
	}
	reference := fetchResult(t, gwURL, refAck.ID)
	t.Logf("reference %s on %s: %d result bytes", refAck.ID, owner, len(reference))

	// Chaos run: same spec (same owner, warm cache), killed mid-stream.
	chaosAck, chaosOwner := submitRawURL(t, gwURL, spec)
	if chaosOwner != owner {
		t.Fatalf("chaos run routed to %s, reference went to %s", chaosOwner, owner)
	}
	streamErr := make(chan error, 1)
	firstEvent := make(chan struct{}, 1)
	go func() {
		seen := false
		streamErr <- c.Stream(ctx, chaosAck.ID, 0, func(client.Event) error {
			if !seen {
				seen = true
				firstEvent <- struct{}{}
			}
			return nil
		})
	}()
	select {
	case <-firstEvent:
	case <-time.After(90 * time.Second):
		t.Fatal("no event arrived before the kill window")
	}
	if err := procs[owner].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	t.Logf("killed owner %s mid-stream", owner)

	// The client must auto-reconnect through the gateway — and, since
	// the job died with its backend, give up cleanly after bounded
	// retries rather than hanging or failing on the first cut.
	select {
	case err := <-streamErr:
		if err == nil {
			t.Fatal("stream of a killed job ended without error")
		}
		if !strings.Contains(err.Error(), "giving up after") {
			t.Fatalf("stream did not exhaust reconnects, got: %v", err)
		}
		t.Logf("stream gave up as designed: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("stream never returned after the kill")
	}

	// The prober ejects the corpse; the same spec re-routes to the
	// survivor and completes with byte-identical aggregation.
	waitHealthy(t, gwURL, 1)
	redoAck, survivor := submitRawURL(t, gwURL, spec)
	if survivor == owner {
		t.Fatalf("re-submission routed to the killed backend %s", survivor)
	}
	if err := c.Stream(ctx, redoAck.ID, 0, func(client.Event) error { return nil }); err != nil {
		t.Fatalf("failover stream: %v", err)
	}
	redone := fetchResult(t, gwURL, redoAck.ID)
	if !bytes.Equal(reference, redone) {
		t.Fatalf("failover aggregation differs: %d vs %d bytes", len(reference), len(redone))
	}

	var stats struct {
		Gateway struct {
			Rerouted int64 `json:"rerouted"`
		} `json:"gateway"`
	}
	resp, err := http.Get(gwURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos OK: owner %s killed, survivor %s reproduced %d bytes (rerouted=%d)",
		owner, survivor, len(redone), stats.Gateway.Rerouted)
}
