package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/server"
)

// testSpec is a tiny real sweep (1 cell, 2 replicates) the actual
// engine finishes in milliseconds.
func testSpec() *episim.SweepSpec {
	s := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "gw-town", People: 300, Locations: 30}},
		Placements:  []episim.SweepPlacement{{Strategy: "RR", Ranks: 2}},
		Replicates:  2,
		Days:        4,
		Seed:        11,
	}
	s.Normalize()
	return s
}

func specBody(t *testing.T, s *episim.SweepSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testCluster is N real episimd backends behind one gateway.
type testCluster struct {
	gw       *Gateway
	gwURL    string
	backends []*httptest.Server
	urls     []string
}

func bootCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		core, err := server.New(server.Config{Workers: 2, MaxActive: 2, Name: fmt.Sprintf("node-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(core.Handler())
		t.Cleanup(func() {
			core.Close()
			ts.Close()
		})
		tc.backends = append(tc.backends, ts)
		tc.urls = append(tc.urls, ts.URL)
	}
	cfg.Backends = tc.urls
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		gw.Close()
		gts.Close()
	})
	tc.gw = gw
	tc.gwURL = gts.URL
	return tc
}

// submitRaw posts a spec through the gateway, returning the ack and the
// backend that took it.
func (tc *testCluster) submitRaw(t *testing.T, body []byte) (client.SubmitReply, string) {
	t.Helper()
	resp, err := http.Post(tc.gwURL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var ack client.SubmitReply
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatalf("submit reply %q: %v", raw, err)
	}
	return ack, resp.Header.Get(backendHeader)
}

// waitDone streams a sweep through the gateway until its terminal event.
func (tc *testCluster) waitDone(t *testing.T, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := client.New(tc.gwURL).Stream(ctx, id, 0, func(client.Event) error { return nil }); err != nil {
		t.Fatalf("stream %s: %v", id, err)
	}
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHRWDeterminismAndMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("pop=%d | strategy=GP ranks=16", i)
	}
	for _, k := range keys {
		a := rankNodes(k, nodes)
		b := rankNodes(k, nodes)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("rankNodes not deterministic for %q: %v vs %v", k, a, b)
		}
	}
	// Spread: no backend should own everything.
	owners := map[int]int{}
	for _, k := range keys {
		owners[rankNodes(k, nodes)[0]]++
	}
	for i := range nodes {
		if owners[i] == 0 || owners[i] == len(keys) {
			t.Fatalf("degenerate HRW spread: %v", owners)
		}
	}
	// Minimal disruption: dropping node 3 must not move any key owned by
	// nodes 0-2.
	smaller := nodes[:3]
	for _, k := range keys {
		before := rankNodes(k, nodes)[0]
		after := rankNodes(k, smaller)[0]
		if before != 3 && after != before {
			t.Fatalf("key %q moved %d→%d when an unrelated node left", k, before, after)
		}
	}
}

func TestDominantPlacementKey(t *testing.T) {
	s := testSpec()
	key := DominantPlacementKey(s)
	if key == "" || !strings.Contains(key, "strategy=RR") {
		t.Fatalf("dominant key = %q", key)
	}
	if again := DominantPlacementKey(testSpec()); again != key {
		t.Fatalf("dominant key not stable: %q vs %q", again, key)
	}
	// Two placements, one covering 2× the scenarios via an extra
	// population? Placement keys are per population — instead weight by
	// scenarios: both placements cover every scenario equally, so the
	// tie goes to grid order (the first placement).
	s2 := testSpec()
	s2.Placements = append(s2.Placements, episim.SweepPlacement{Strategy: "GP", Ranks: 2})
	if k2 := DominantPlacementKey(s2); k2 != key {
		t.Fatalf("tie must go to grid order: %q vs %q", k2, key)
	}
}

func TestResolveID(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	// Named ids: identity is the daemon's /healthz name, dashes included.
	b, local, ok := tc.gw.resolveID("node-1-sw-000042")
	if !ok || b.index != 1 || local != "sw-000042" {
		t.Fatalf("resolveID = %v %q %v", b, local, ok)
	}
	// Legacy positional ids keep resolving (ids issued before the
	// gateway learned names, or by a PR-4 era gateway).
	b, local, ok = tc.gw.resolveID("b1-sw-000042")
	if !ok || b.index != 1 || local != "sw-000042" {
		t.Fatalf("positional resolveID = %v %q %v", b, local, ok)
	}
	for _, bad := range []string{"", "sw-000042", "b9-sw-000001", "bx-sw-1", "b0-", "b-1-x",
		"node-7-sw-000001", "-sw-000001", "node-1-sw-"} {
		if _, _, ok := tc.gw.resolveID(bad); ok {
			t.Fatalf("resolveID accepted %q", bad)
		}
	}
}

// TestNamedIdentityReorder is the fleet-reconfiguration half of the
// acceptance criterion: a gateway booted over the SAME backends in a
// DIFFERENT -backends order must route the same spec to the same named
// backend, and ids issued by the first gateway must stay valid.
func TestNamedIdentityReorder(t *testing.T) {
	tc := bootCluster(t, 3, Config{ProbeInterval: time.Hour})
	body := specBody(t, testSpec())
	ack, first := tc.submitRaw(t, body)
	tc.waitDone(t, ack.ID)
	if !strings.HasPrefix(ack.ID, "node-") {
		t.Fatalf("gateway id %q does not embed the backend name", ack.ID)
	}

	// Reversed backend list: same fleet, different positions.
	reversed := make([]string, len(tc.urls))
	for i, u := range tc.urls {
		reversed[len(tc.urls)-1-i] = u
	}
	gw2, err := New(Config{Backends: reversed, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	gts2 := httptest.NewServer(gw2.Handler())
	defer gts2.Close()
	tc2 := &testCluster{gw: gw2, gwURL: gts2.URL, urls: reversed}

	// Routing affinity survives the reorder (identity is the name).
	if _, again := tc2.submitRaw(t, body); again != first {
		t.Fatalf("reordered gateway routed to %s, original routes to %s", again, first)
	}
	// Ids issued under the old order resolve through the new gateway.
	st, err := client.New(tc2.gwURL).Status(context.Background(), ack.ID)
	if err != nil {
		t.Fatalf("status for pre-reorder id %s: %v", ack.ID, err)
	}
	if st.ID != ack.ID || st.State != client.StateDone {
		t.Fatalf("pre-reorder id %s resolved to %+v", ack.ID, st)
	}
}

// TestRoutingDeterminism is the affinity half of the acceptance
// criterion: the same spec routes to the same backend, submission after
// submission, gateway instance after gateway instance.
func TestRoutingDeterminism(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	body := specBody(t, testSpec())

	_, first := tc.submitRaw(t, body)
	for i := 0; i < 3; i++ {
		if _, again := tc.submitRaw(t, body); again != first {
			t.Fatalf("submission %d routed to %s, first went to %s", i+2, again, first)
		}
	}

	// A different placement key may (and here, does not have to) go
	// elsewhere; a fresh gateway over the same backend list must agree
	// with the first one.
	gw2, err := New(Config{Backends: tc.urls, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	gts2 := httptest.NewServer(gw2.Handler())
	defer gts2.Close()
	tc2 := &testCluster{gw: gw2, gwURL: gts2.URL, urls: tc.urls}
	if _, viaSecond := tc2.submitRaw(t, body); viaSecond != first {
		t.Fatalf("second gateway routed to %s, first routes to %s", viaSecond, first)
	}
}

// TestRepeatSubmissionIsCacheHit is the cache-affinity payoff: the
// second submission of the same spec lands on the same backend and
// performs zero additional placement builds, proven through the
// gateway's aggregated stats.
func TestRepeatSubmissionIsCacheHit(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	body := specBody(t, testSpec())

	ack1, first := tc.submitRaw(t, body)
	tc.waitDone(t, ack1.ID)
	var st1 StatsReply
	_, raw := getRaw(t, tc.gwURL+"/v1/stats")
	if err := json.Unmarshal(raw, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.PlacementCache.Builds != 1 {
		t.Fatalf("after first sweep: %d placement builds, want 1", st1.PlacementCache.Builds)
	}

	ack2, second := tc.submitRaw(t, body)
	if second != first {
		t.Fatalf("second submission routed to %s, first to %s", second, first)
	}
	tc.waitDone(t, ack2.ID)
	var st2 StatsReply
	_, raw = getRaw(t, tc.gwURL+"/v1/stats")
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.PlacementCache.Builds != st1.PlacementCache.Builds {
		t.Fatalf("second submission built placements: %d → %d builds",
			st1.PlacementCache.Builds, st2.PlacementCache.Builds)
	}
	if st2.SweepsDone != 2 {
		t.Fatalf("aggregated sweeps done = %d, want 2", st2.SweepsDone)
	}
}

// TestFailoverReRoutes is the other half of the acceptance criterion:
// kill the routed backend and the next submission of the same spec lands
// on the survivor with no client-visible change.
func TestFailoverReRoutes(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: 50 * time.Millisecond, FailAfter: 1,
		ProbeTimeout: 500 * time.Millisecond})
	body := specBody(t, testSpec())

	ack, first := tc.submitRaw(t, body)
	tc.waitDone(t, ack.ID)

	// Kill the backend that owns this key (identities are the daemons'
	// names, "node-<i>").
	var dead int
	for i, u := range tc.urls {
		if fmt.Sprintf("node-%d", i) == first {
			dead = i
			tc.backends[i].CloseClientConnections()
			tc.backends[i].Close()
			_ = u
		}
	}
	// The prober must eject it...
	deadline := time.Now().Add(5 * time.Second)
	for tc.gw.healthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("prober never ejected the dead backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...and the same spec now routes to the survivor, transparently.
	ack2, second := tc.submitRaw(t, body)
	if second == fmt.Sprintf("node-%d", dead) {
		t.Fatalf("submission routed to the dead backend %s", second)
	}
	tc.waitDone(t, ack2.ID)
	st, err := client.New(tc.gwURL).Status(context.Background(), ack2.ID)
	if err != nil || st.State != client.StateDone {
		t.Fatalf("failover sweep status = %+v, %v", st, err)
	}
}

// TestResultBytesIdenticalThroughGateway: the canonical result bytes
// must be the same whether read through the routing tier or straight
// from the owning backend.
func TestResultBytesIdenticalThroughGateway(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	ack, name := tc.submitRaw(t, specBody(t, testSpec()))
	tc.waitDone(t, ack.ID)

	code, viaGW := getRaw(t, tc.gwURL+"/v1/sweeps/"+ack.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("gateway result: HTTP %d", code)
	}
	b, local, ok := tc.gw.resolveID(ack.ID)
	if !ok || b.identity() != name {
		t.Fatalf("ack id %q does not resolve to backend %s", ack.ID, name)
	}
	code, direct := getRaw(t, b.url+"/v1/sweeps/"+local+"/result")
	if code != http.StatusOK {
		t.Fatalf("direct result: HTTP %d", code)
	}
	if !bytes.Equal(viaGW, direct) {
		t.Fatalf("result differs through gateway: %d vs %d bytes", len(viaGW), len(direct))
	}
}

// TestEventStreamThroughGateway: the proxied stream preserves replay
// (?from=0 re-serves everything) and terminal events carry the
// gateway-issued job id, so a consumer never sees a backend-local id.
func TestEventStreamThroughGateway(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	ack, _ := tc.submitRaw(t, specBody(t, testSpec()))
	tc.waitDone(t, ack.ID)

	var cells int
	var terminal *client.Event
	err := client.New(tc.gwURL).Stream(context.Background(), ack.ID, 0, func(ev client.Event) error {
		if ev.Type == "cell" {
			cells++
		} else {
			e := ev
			terminal = &e
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells != 1 {
		t.Fatalf("replayed %d cell events, want 1", cells)
	}
	if terminal == nil || terminal.Job == nil || terminal.Job.ID != ack.ID {
		t.Fatalf("terminal event = %+v, want job id %s", terminal, ack.ID)
	}

	// NDJSON side of the proxy, with a mid-stream resume point.
	code, raw := getRaw(t, tc.gwURL+"/v1/sweeps/"+ack.ID+"/events?format=ndjson&from=1")
	if code != http.StatusOK {
		t.Fatalf("ndjson events: HTTP %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("from=1 replayed %d events, want 1 (the terminal)", len(lines))
	}
	var ev client.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.Job == nil || ev.Job.ID != ack.ID {
		t.Fatalf("resumed terminal event = %+v, want seq 1 with gateway id", ev)
	}
}

// TestListMergesBackends: the merged list re-issues every job under its
// gateway id.
func TestListMergesBackends(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	spec2 := testSpec()
	spec2.Populations[0].Name = "gw-city" // different key: may route elsewhere
	ack1, _ := tc.submitRaw(t, specBody(t, testSpec()))
	ack2, _ := tc.submitRaw(t, specBody(t, spec2))
	tc.waitDone(t, ack1.ID)
	tc.waitDone(t, ack2.ID)

	jobs, err := client.New(tc.gwURL).List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, j := range jobs {
		found[j.ID] = true
		if _, _, ok := tc.gw.resolveID(j.ID); !ok {
			t.Fatalf("listed id %q is not a gateway id", j.ID)
		}
	}
	if !found[ack1.ID] || !found[ack2.ID] {
		t.Fatalf("list %v missing %s or %s", jobs, ack1.ID, ack2.ID)
	}
}

// TestGatewayHealthz: ready while any backend is, 503 when none are.
func TestGatewayHealthz(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: 50 * time.Millisecond, FailAfter: 1,
		ProbeTimeout: 500 * time.Millisecond})
	if code, _ := getRaw(t, tc.gwURL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	for _, b := range tc.backends {
		b.CloseClientConnections()
		b.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := getRaw(t, tc.gwURL+"/healthz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stayed %d with every backend dead", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
