package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/client"
)

// Admission control: the gateway is the fleet's one front door, so it is
// the one place a misbehaving client can be stopped before its burst
// reaches any backend queue. Two independent per-client limits apply to
// POST /v1/sweeps:
//
//   - a token bucket (SubmitRate sweeps/s sustained, SubmitBurst burst)
//     bounds how fast a client may submit;
//   - an in-flight cap (MaxInflightPerClient) bounds how many of its
//     sweeps may be unfinished across the fleet at once.
//
// Clients are keyed by the X-Episim-Client header when present (one
// logical tenant may fan out over many hosts), else by remote address.
// Rejections are HTTP 429 with Retry-After (and a millisecond-precision
// X-Episim-Retry-After-Ms), which repro/client honors automatically.
//
// The in-flight ledger is optimistic: the gateway records ids it issues
// and erases them whenever a proxied status, result, cancel, or terminal
// stream event shows the job finished. Only when a client is AT its cap
// does the gateway verify the ledger against the owning backends (lazy
// verification), so the steady-state submit path costs no extra RPCs.

// admission holds the per-client buckets and in-flight ledgers.
type admission struct {
	rate        float64 // tokens/sec; 0 = unlimited
	burst       float64
	maxInflight int // 0 = unlimited

	mu      sync.Mutex
	clients map[string]*clientEntry
	jobs    map[string]string // gateway job id -> client key
}

type clientEntry struct {
	tokens   float64
	lastFill time.Time
	// inflight maps gateway job ids awaiting a terminal state to when
	// they were admitted; the timestamp drives TTL reclamation for
	// clients that submit and never poll (see sweepLocked).
	inflight map[string]time.Time
	reserved int // submissions admitted but not yet acked
	// lastVerify rate-limits lazy ledger verification: a hot-looping
	// at-cap client must not amplify every cheap POST into a fan of
	// backend status RPCs.
	lastVerify time.Time
}

func newAdmission(rate float64, burst, maxInflight int) *admission {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &admission{
		rate:        rate,
		burst:       b,
		maxInflight: maxInflight,
		clients:     map[string]*clientEntry{},
		jobs:        map[string]string{},
	}
}

// enabled reports whether any limit is configured; when none is, the
// submit path skips admission entirely.
func (a *admission) enabled() bool { return a.rate > 0 || a.maxInflight > 0 }

// clientKey identifies the submitting client: the X-Episim-Client header
// when present, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Episim-Client"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (a *admission) entry(key string) *clientEntry {
	e, ok := a.clients[key]
	if !ok {
		// Sweep BEFORE inserting: the new entry is idle by construction
		// (full bucket, nothing in flight) and sweeping after would
		// delete it, leaving callers mutating an orphaned struct whose
		// token debits the next request never sees.
		a.sweepLocked()
		e = &clientEntry{tokens: a.burst, lastFill: time.Now(),
			inflight: map[string]time.Time{}}
		a.clients[key] = e
	}
	return e
}

// takeToken spends one submission token, reporting how long the client
// should wait when the bucket is empty.
func (a *admission) takeToken(key string) (wait time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(key)
	now := time.Now()
	e.tokens = math.Min(a.burst, e.tokens+now.Sub(e.lastFill).Seconds()*a.rate)
	e.lastFill = now
	if e.tokens >= 1 {
		e.tokens--
		return 0, true
	}
	return time.Duration((1 - e.tokens) / a.rate * float64(time.Second)), false
}

// refundToken returns a token spent on a request that was rejected
// downstream (e.g. by the in-flight cap): the client enqueued nothing,
// so burning rate budget on the rejection would let the cap starve the
// bucket and convert in-flight 429s into later rate 429s.
func (a *admission) refundToken(key string) {
	if a.rate <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.clients[key]; ok {
		e.tokens = math.Min(a.burst, e.tokens+1)
	}
}

// tryReserve claims an in-flight slot; release returns it (submission
// rejected by every backend), commit converts it into a tracked id.
func (a *admission) tryReserve(key string) bool {
	if a.maxInflight <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(key)
	if len(e.inflight)+e.reserved >= a.maxInflight {
		return false
	}
	e.reserved++
	return true
}

func (a *admission) release(key string) {
	if a.maxInflight <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.clients[key]; ok && e.reserved > 0 {
		e.reserved--
	}
}

func (a *admission) commit(key, id string) {
	if a.maxInflight <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(key)
	if e.reserved > 0 {
		e.reserved--
	}
	e.inflight[id] = time.Now()
	a.jobs[id] = key
}

// observeTerminal erases a job from its client's in-flight ledger. The
// proxy paths call it whenever a backend reply proves the job finished.
func (a *admission) observeTerminal(id string) {
	if a.maxInflight <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key, ok := a.jobs[id]
	if !ok {
		return
	}
	delete(a.jobs, id)
	if e, ok := a.clients[key]; ok {
		delete(e.inflight, id)
	}
}

// inflightIDs snapshots a client's tracked job ids for verification —
// unless the client was verified within the cooldown, in which case it
// returns nil so a hot-looping rejected client costs no backend RPCs.
func (a *admission) inflightIDs(key string) []string {
	const verifyCooldown = 500 * time.Millisecond
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.clients[key]
	if !ok {
		return nil
	}
	now := time.Now()
	if now.Sub(e.lastVerify) < verifyCooldown {
		return nil
	}
	e.lastVerify = now
	ids := make([]string, 0, len(e.inflight))
	for id := range e.inflight {
		ids = append(ids, id)
	}
	return ids
}

// trackedClients counts clients with live state (stats visibility).
func (a *admission) trackedClients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.clients)
}

// sweepLocked bounds the clients and jobs maps: once the client map
// grows past a threshold, in-flight entries older than a generous TTL
// are expired (a client that submitted and never polled again would
// otherwise pin its entry forever — the gateway only observes terminal
// states through proxied replies or at-cap verification), then idle
// entries (no in-flight jobs, bucket refilled to full) are dropped.
// Expiry fails open: a freed slot re-admits the client early, which is
// the right bias for a quota.
//
// The sweep is amortized: each call scans a bounded sample (Go map
// iteration starts at a pseudo-random position, so repeated calls cover
// the whole map over time). X-Episim-Client is client-chosen, so an
// abuser minting a fresh key per request drives one sweep per insert —
// a full-map scan there would let the anti-abuse layer itself serialize
// every tenant behind a.mu. Called with a.mu held, on entry creation
// only, so the steady state costs nothing.
func (a *admission) sweepLocked() {
	const (
		maxIdleClients = 16384
		sweepSample    = 128           // entries examined per insert; reclaims ≥1 per adversarial insert
		inflightTTL    = 6 * time.Hour // far past any sane sweep duration
	)
	if len(a.clients) < maxIdleClients {
		return
	}
	now := time.Now()
	scanned := 0
	for k, e := range a.clients {
		if scanned++; scanned > sweepSample {
			return
		}
		for id, added := range e.inflight {
			if now.Sub(added) > inflightTTL {
				delete(e.inflight, id)
				delete(a.jobs, id)
			}
		}
		idle := len(e.inflight) == 0 && e.reserved == 0 &&
			(a.rate <= 0 || math.Min(a.burst, e.tokens+now.Sub(e.lastFill).Seconds()*a.rate) >= a.burst)
		if idle {
			delete(a.clients, k)
		}
	}
}

// verifyInflight reconciles a client's ledger against the owning
// backends: jobs whose status is terminal — or that the backend no
// longer knows, or whose backend has been unreachable long past any
// probe blip (the job can never finish, so holding it against the
// client forever would wedge them; a brief ejection forgives nothing,
// or every network flap would let at-cap clients double their quota
// while their sweeps kept running) — are erased. Called only when a
// client is at its cap, at most once per cooldown (see inflightIDs),
// bounded in jobs checked and in total wall time so one at-cap client
// can neither stall its own submit for minutes nor amplify a cheap
// POST into an unbounded fan of RPCs.
func (g *Gateway) verifyInflight(ctx context.Context, key string) {
	const (
		maxVerifyJobs    = 32
		verifyDeadline   = 3 * time.Second // for the whole pass, not per job
		forgiveDownAfter = time.Minute     // owner must be gone this long before its jobs are
	)
	ids := g.admit.inflightIDs(key)
	if len(ids) == 0 {
		return
	}
	if len(ids) > maxVerifyJobs {
		ids = ids[:maxVerifyJobs]
	}
	ctx, cancel := context.WithTimeout(ctx, verifyDeadline)
	defer cancel()
	for _, id := range ids {
		if ctx.Err() != nil {
			return
		}
		b, local, ok := g.resolveID(id)
		if !ok {
			g.admit.observeTerminal(id)
			continue
		}
		resp, err := g.forward(ctx, b, http.MethodGet, "/v1/sweeps/"+local, nil, nil)
		if err != nil {
			if !b.healthy.Load() && b.unreachableFor() > forgiveDownAfter {
				g.admit.observeTerminal(id) // owner long gone: job unreachable, don't count it
			}
			continue
		}
		var st client.JobStatus
		done := false
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone {
			done = true
		} else if resp.StatusCode < 300 &&
			json.NewDecoder(resp.Body).Decode(&st) == nil && st.State.Terminal() {
			done = true
		}
		resp.Body.Close()
		if done {
			g.admit.observeTerminal(id)
		}
	}
}

// writeThrottled answers a rejected submission: 429, the standard
// whole-second Retry-After, and a millisecond-precision variant for
// clients (like repro/client) that can honor sub-second waits.
func writeThrottled(w http.ResponseWriter, key, reason string, wait time.Duration) {
	if wait <= 0 {
		wait = time.Second
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Episim-Retry-After-Ms", strconv.FormatInt(ms, 10))
	writeError(w, http.StatusTooManyRequests,
		"client %q over %s limit; retry in %v", key, reason, wait.Round(time.Millisecond))
}
