package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// GatewayStats describes the routing tier itself.
type GatewayStats struct {
	UptimeSec       float64 `json:"uptime_sec"`
	BackendsTotal   int     `json:"backends_total"`
	BackendsHealthy int     `json:"backends_healthy"`
	// FleetHealthy is 1 while at least one backend is healthy, 0 when the
	// whole fleet is unreachable — in which case the aggregate stats below
	// are last-known snapshots, not live reads.
	FleetHealthy int `json:"fleet_healthy"`
	// Submitted counts accepted submissions; Rerouted the subset that
	// fell past their first-choice (cache-affine) backend — a high ratio
	// means churn is costing cache locality. Spilled counts submissions
	// deliberately diverted off a healthy-but-saturated owner by the
	// load-aware spill bound.
	Submitted int64 `json:"submitted"`
	Rerouted  int64 `json:"rerouted"`
	Spilled   int64 `json:"spilled"`
	// Throttled* count 429s from gateway admission control, by reason.
	ThrottledRate     int64 `json:"throttled_rate"`
	ThrottledInflight int64 `json:"throttled_inflight"`
	// TrackedClients is the number of clients with live admission state.
	TrackedClients int `json:"tracked_clients,omitempty"`
}

// BackendStatus is one backend's health and, when reachable, its own
// stats snapshot.
type BackendStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Routed counts submissions this gateway sent here; QueueDepth is
	// the gateway's current estimate (last probe + routed since), the
	// number the spill decision reads.
	Routed     int64              `json:"routed"`
	QueueDepth int                `json:"queue_depth"`
	LastError  string             `json:"last_error,omitempty"`
	Stats      *client.StatsReply `json:"stats,omitempty"`
	// StatsStale marks Stats as the last snapshot taken before the
	// backend became unreachable, kept so fleet aggregates degrade
	// gracefully instead of zeroing out. StatsUpdated accompanies a stale
	// snapshot with the time it was actually taken, so an operator can
	// tell a seconds-old degradation from an hours-old one.
	StatsStale   bool       `json:"stats_stale,omitempty"`
	StatsUpdated *time.Time `json:"stats_updated,omitempty"`
	// StatsError is set when the stats fetch itself failed (the backend
	// may still be serving sweeps).
	StatsError string `json:"stats_error,omitempty"`
}

// StatsReply is the gateway's /v1/stats: the fleet-wide aggregate in the
// single-daemon shape (an episimd client pointed at the gateway decodes
// it unchanged), plus gateway and per-backend detail.
type StatsReply struct {
	client.StatsReply
	Gateway  GatewayStats    `json:"gateway"`
	Backends []BackendStatus `json:"backends"`
}

// statsTimeout bounds the whole stats fan-out: metrics scrapes have
// their own deadlines (Prometheus defaults to 10s), so a slow backend
// must cost less than that, not controlTimeout.
const statsTimeout = 5 * time.Second

// collectStats fans /v1/stats out to every healthy backend and
// aggregates. Ejected backends are not dialed — a black-holed host
// would stall every scrape for the full timeout exactly while its
// health is most interesting — but their last successful snapshot still
// folds into the aggregate (marked stale), so a fleet-wide outage
// reports the last-known state under fleet_healthy=0 instead of
// collapsing every counter to zero.
func (g *Gateway) collectStats(ctx context.Context) StatsReply {
	ctx, cancel := context.WithTimeout(ctx, statsTimeout)
	defer cancel()
	healthy := g.healthyCount()
	fleetHealthy := 0
	if healthy > 0 {
		fleetHealthy = 1
	}
	out := StatsReply{
		Gateway: GatewayStats{
			UptimeSec:         time.Since(g.started).Seconds(),
			BackendsTotal:     len(g.backends),
			BackendsHealthy:   healthy,
			FleetHealthy:      fleetHealthy,
			Submitted:         g.submitted.Load(),
			Rerouted:          g.rerouted.Load(),
			Spilled:           g.spilled.Load(),
			ThrottledRate:     g.throttledRate.Load(),
			ThrottledInflight: g.throttledInflight.Load(),
			TrackedClients:    g.admit.trackedClients(),
		},
		Backends: make([]BackendStatus, len(g.backends)),
	}
	var wg sync.WaitGroup
	for i, b := range g.backends {
		out.Backends[i] = BackendStatus{
			Name:       b.identity(),
			URL:        b.url,
			Healthy:    b.healthy.Load(),
			Routed:     b.routed.Load(),
			QueueDepth: b.queueDepthEstimate(),
			LastError:  b.lastError(),
		}
		if !out.Backends[i].Healthy {
			if last := b.lastStats.Load(); last != nil {
				out.Backends[i].Stats = last
				out.Backends[i].StatsStale = true
				out.Backends[i].StatsUpdated = b.statsTakenAt()
				out.Backends[i].StatsError = "unreachable (ejected); last-known stats shown"
			} else {
				out.Backends[i].StatsError = "unreachable (ejected); no stats seen yet"
			}
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			st, err := g.fetchStats(ctx, b)
			if err != nil {
				out.Backends[i].StatsError = err.Error()
				// Healthy per the prober but the fetch failed: degrade to
				// the last snapshot rather than dropping the backend from
				// the aggregate.
				if last := b.lastStats.Load(); last != nil {
					out.Backends[i].Stats = last
					out.Backends[i].StatsStale = true
					out.Backends[i].StatsUpdated = b.statsTakenAt()
				}
				return
			}
			b.lastStats.Store(st)
			b.lastStatsAt.Store(time.Now().UnixNano())
			out.Backends[i].Stats = st
		}(i, b)
	}
	wg.Wait()
	for _, bs := range out.Backends {
		if bs.Stats != nil {
			mergeStats(&out.StatsReply, *bs.Stats)
		}
	}
	return out
}

// statsTakenAt returns when the last successful stats snapshot was taken
// (nil before any), pointer-shaped for the omitempty reply field.
func (b *backend) statsTakenAt() *time.Time {
	ns := b.lastStatsAt.Load()
	if ns == 0 {
		return nil
	}
	t := time.Unix(0, ns)
	return &t
}

func (g *Gateway) fetchStats(ctx context.Context, b *backend) (*client.StatsReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var st client.StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// mergeStats folds one backend's snapshot into the fleet aggregate.
// Counters and gauges sum; uptime takes the longest-lived backend (the
// fleet has been up at least that long).
func mergeStats(into *client.StatsReply, st client.StatsReply) {
	if st.UptimeSec > into.UptimeSec {
		into.UptimeSec = st.UptimeSec
	}
	into.QueueDepth += st.QueueDepth
	into.ActiveSweeps += st.ActiveSweeps
	into.SweepsTotal += st.SweepsTotal
	into.SweepsDone += st.SweepsDone
	into.SweepsFailed += st.SweepsFailed
	into.SweepsCanceled += st.SweepsCanceled
	into.SweepsEvicted += st.SweepsEvicted
	into.CellsStreamed += st.CellsStreamed
	into.CellsPerSec += st.CellsPerSec
	into.SubmitsTotal += st.SubmitsTotal
	into.SubmitErrors += st.SubmitErrors
	into.EventsSent += st.EventsSent
	into.EventsSendErrors += st.EventsSendErrors
	into.TraceDroppedSpans += st.TraceDroppedSpans
	into.ProfileCaptures += st.ProfileCaptures
	for k, n := range st.KernelDays {
		if into.KernelDays == nil {
			into.KernelDays = make(map[string]int64)
		}
		into.KernelDays[k] += n
	}
	into.CheckpointRestores += st.CheckpointRestores
	into.CheckpointBytes += st.CheckpointBytes
	mergeCache(&into.PopulationCache, st.PopulationCache)
	mergeCache(&into.PlacementCache, st.PlacementCache)
	mergeCache(&into.CheckpointCache, st.CheckpointCache)
	mergeStore(&into.PopulationStore, st.PopulationStore)
	mergeStore(&into.PlacementStore, st.PlacementStore)
	mergeStore(&into.ResultStore, st.ResultStore)
	mergeStore(&into.CheckpointStore, st.CheckpointStore)
	// Histograms share one bucket layout across the fleet, so per-bucket
	// counts sum exactly — the merged distribution is what one daemon
	// would have recorded had it done all the work.
	into.Histograms = obs.MergeSnapshots(into.Histograms, st.Histograms)
}

func mergeCache(a *episim.SweepCacheStats, b episim.SweepCacheStats) {
	a.Entries += b.Entries
	a.Bytes += b.Bytes
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Builds += b.Builds
	a.DiskHits += b.DiskHits
	a.DiskMisses += b.DiskMisses
	a.DiskWrites += b.DiskWrites
	a.DiskErrors += b.DiskErrors
}

func mergeStore(a **episim.SweepStoreStats, b *episim.SweepStoreStats) {
	if b == nil {
		return
	}
	if *a == nil {
		*a = &episim.SweepStoreStats{}
	}
	(*a).Files += b.Files
	(*a).Bytes += b.Bytes
	(*a).GCFiles += b.GCFiles
	(*a).GCBytes += b.GCBytes
}

// handleStats serves the fleet-aggregated stats snapshot.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.collectStats(r.Context()))
}

// promHeader writes one metric's HELP/TYPE block. Per-backend series
// share a name, so the block is written once before all of them.
func promHeader(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// handleMetrics renders the aggregate in the per-instance Prometheus
// vocabulary (episimd_*, summed across backends — one scrape target for
// the fleet) followed by the gateway's own episim_gw_* series, its
// proxy-latency histogram, and Go runtime metrics.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := g.collectStats(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	server.WriteMetrics(w, st.StatsReply)
	// Fleet-level SLO burn, from the gateway's own ring over the merged
	// stats — the same episim_slo_* vocabulary each daemon exposes.
	obs.WriteSLOProm(w, g.sloStatuses())
	for _, m := range []struct {
		name, kind, help string
		val              float64
	}{
		{"episim_gw_uptime_seconds", "gauge", "Seconds since the gateway started.", st.Gateway.UptimeSec},
		{"episim_gw_backends", "gauge", "Backends configured.", float64(st.Gateway.BackendsTotal)},
		{"episim_gw_backends_healthy", "gauge", "Backends currently passing health probes.", float64(st.Gateway.BackendsHealthy)},
		{"episim_gw_fleet_healthy", "gauge", "1 while at least one backend is healthy; 0 means aggregates are last-known snapshots.", float64(st.Gateway.FleetHealthy)},
		{"episim_gw_submissions_total", "counter", "Submissions accepted by some backend.", float64(st.Gateway.Submitted)},
		{"episim_gw_submissions_rerouted_total", "counter", "Submissions that fell past their cache-affine first choice.", float64(st.Gateway.Rerouted)},
		{"episim_gw_spilled_total", "counter", "Submissions diverted off a healthy-but-saturated owner by the spill bound.", float64(st.Gateway.Spilled)},
	} {
		promHeader(w, m.name, m.kind, m.help)
		fmt.Fprintf(w, "%s %s\n", m.name, strconv.FormatFloat(m.val, 'g', -1, 64))
	}
	promHeader(w, "episim_gw_throttled_total", "counter", "429s from gateway admission control, by reason.")
	fmt.Fprintf(w, "episim_gw_throttled_total{reason=\"rate\"} %d\n", st.Gateway.ThrottledRate)
	fmt.Fprintf(w, "episim_gw_throttled_total{reason=\"inflight\"} %d\n", st.Gateway.ThrottledInflight)
	promHeader(w, "episim_gw_backend_up", "gauge", "1 while the backend passes health probes.")
	for _, bs := range st.Backends {
		up := 0
		if bs.Healthy {
			up = 1
		}
		fmt.Fprintf(w, "episim_gw_backend_up{backend=%q,url=%q} %d\n", bs.Name, bs.URL, up)
	}
	promHeader(w, "episim_gw_backend_routed_total", "counter", "Submissions this gateway routed to the backend.")
	for _, bs := range st.Backends {
		fmt.Fprintf(w, "episim_gw_backend_routed_total{backend=%q} %d\n", bs.Name, bs.Routed)
	}
	promHeader(w, "episim_gw_backend_queue_depth", "gauge", "The gateway's current queue-depth estimate for the backend.")
	for _, bs := range st.Backends {
		fmt.Fprintf(w, "episim_gw_backend_queue_depth{backend=%q} %d\n", bs.Name, bs.QueueDepth)
	}
	obs.WriteHistogramsProm(w, g.proxyHist.Snapshots())
	obs.WriteRuntimeMetrics(w)
}
