package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// TestDegradedStatsCarryTimestamp ejects the only backend and checks the
// degraded /v1/stats path serves its last-known snapshot with the time
// it was actually taken — and that a ring fed stale points marks the
// fleet SLOs stale on /v1/slo.
func TestDegradedStatsCarryTimestamp(t *testing.T) {
	tc := bootCluster(t, 1, Config{ProbeInterval: time.Hour, FailAfter: 1})

	// The gateway's boot-time ring collection already fetched live stats,
	// stamping the snapshot time the stale path will later report.
	var live StatsReply
	mustGetJSON(t, tc.gwURL+"/v1/stats", &live)
	if live.Backends[0].StatsStale {
		t.Fatalf("live backend reported stale: %+v", live.Backends[0])
	}

	// Kill the backend and eject it (FailAfter 1: one failed round).
	tc.backends[0].Close()
	tc.gw.probeAll()

	var degraded StatsReply
	mustGetJSON(t, tc.gwURL+"/v1/stats", &degraded)
	bs := degraded.Backends[0]
	if bs.Healthy {
		t.Fatal("backend still healthy after probe round against a closed listener")
	}
	if !bs.StatsStale || bs.Stats == nil {
		t.Fatalf("degraded path did not serve last-known stats: %+v", bs)
	}
	if bs.StatsUpdated == nil {
		t.Fatal("stale stats carry no stats_updated timestamp")
	}
	if age := time.Since(*bs.StatsUpdated); age < 0 || age > time.Minute {
		t.Fatalf("stats_updated %v is not a recent snapshot time", bs.StatsUpdated)
	}
	// The aggregate still carries the last-known counters, flagged.
	if degraded.Gateway.FleetHealthy != 0 {
		t.Fatalf("fleet_healthy = %d with every backend down", degraded.Gateway.FleetHealthy)
	}

	// Feed the ring two points the way the collector now would (whole
	// fleet unreachable → stale) and check /v1/slo says so.
	tc.gw.history.Append(server.StatsHistoryPoint(degraded.StatsReply, true))
	tc.gw.history.Append(server.StatsHistoryPoint(degraded.StatsReply, true))
	var slo client.SLOReply
	mustGetJSON(t, tc.gwURL+"/v1/slo", &slo)
	if slo.Instance != "fleet" {
		t.Fatalf("slo instance = %q, want fleet", slo.Instance)
	}
	if !slo.Stale {
		t.Fatal("/v1/slo not marked stale over a stale-point window")
	}
	stale := 0
	for _, s := range slo.SLOs {
		if s.Stale {
			stale++
		}
	}
	if stale == 0 {
		t.Fatalf("no individual SLO marked stale: %+v", slo.SLOs)
	}
}

// TestGatewayUsageMerge submits through the gateway under one client
// identity and checks the fleet /v1/usage view aggregates the backends'
// ledgers under that identity (the gateway stamps X-Episim-Client onto
// forwarded submissions).
func TestGatewayUsageMerge(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	body := specBody(t, testSpec())

	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodPost, tc.gwURL+"/v1/sweeps", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Episim-Client", "tenant-gw")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var ack client.SubmitReply
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		tc.waitDone(t, ack.ID)
	}

	var usage client.UsageReply
	mustGetJSON(t, tc.gwURL+"/v1/usage", &usage)
	if usage.Instance != "fleet" {
		t.Fatalf("usage instance = %q, want fleet", usage.Instance)
	}
	for _, u := range usage.Clients {
		if u.Client == "tenant-gw" {
			if u.Submissions != 2 {
				t.Fatalf("tenant-gw submissions = %d, want 2", u.Submissions)
			}
			if u.Cells != 2 { // one cell per sweep
				t.Fatalf("tenant-gw cells = %d, want 2", u.Cells)
			}
			return
		}
	}
	t.Fatalf("tenant-gw missing from fleet usage: %+v", usage.Clients)
}

func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	status, raw := getRaw(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
