package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/obs"
)

// controlTimeout bounds non-streaming proxied calls (submit, status,
// cancel, list, stats). Event and result streams get no deadline.
const controlTimeout = 15 * time.Second

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// backendHeader stamps which backend served a proxied request —
// operational visibility (and what the routing smoke tests assert on).
const backendHeader = "X-Episim-Backend"

// forward issues one request to a backend, copying select headers (the
// trace id among them, so a submission's trace follows it to the owning
// daemon). The round-trip — request out to response headers in — feeds
// the per-backend proxy latency histogram.
func (g *Gateway) forward(ctx context.Context, b *backend, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return nil, err
	}
	for _, k := range []string{"Content-Type", "Accept", "Last-Event-ID", obs.TraceHeader, "X-Episim-Client"} {
		if v := hdr.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	start := time.Now()
	resp, err := g.httpc.Do(req)
	if err == nil {
		g.proxyHist.With(b.identity()).ObserveSince(start)
	}
	return resp, err
}

// relay copies a backend reply through verbatim.
func relay(w http.ResponseWriter, resp *http.Response, b *backend) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(backendHeader, b.identity())
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// pickOrder decides the submission's attempt order. It starts from the
// HRW preference order for the key (healthy backends first) and, when
// load-aware spill is enabled, diverts off a saturated owner: if the
// owner's estimated queue depth exceeds the spill bound, the first
// healthy backend in HRW order whose queue is within the bound moves to
// the front — one cold placement build bought for bounded queueing
// delay. When every healthy backend is past the bound the owner keeps
// the job: if the whole fleet is saturated, cache affinity is the only
// lever left. The returned affine backend is the cache-affine HRW owner
// (order[0] unless a spill reordered it away); the spilled flag marks a
// diverted first choice.
func (g *Gateway) pickOrder(key string) (order []*backend, affine *backend, spilled bool) {
	order = g.rankFor(key)
	affine = order[0]
	if g.spillDepth <= 0 {
		return order, affine, false
	}
	var healthy []*backend
	for _, b := range order {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) < 2 || healthy[0].queueDepthEstimate() <= g.spillDepth {
		return order, affine, false
	}
	for _, c := range healthy[1:] {
		if c.queueDepthEstimate() <= g.spillDepth {
			reordered := make([]*backend, 0, len(order))
			reordered = append(reordered, c)
			for _, b := range order {
				if b != c {
					reordered = append(reordered, b)
				}
			}
			return reordered, affine, true
		}
	}
	return order, affine, false
}

// handleSubmit is the admission + routing decision: throttle the client,
// parse the spec (rejecting bad submissions at the edge), reduce it to
// its dominant placement content key, and walk the load-aware attempt
// order until a backend takes the job. The original body bytes are
// forwarded, so the backend parses exactly what the client sent.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission first — it needs only headers and the remote address, so
	// a throttled client is refused before the gateway spends a body
	// read (up to 32MB) or a spec parse on it.
	var cKey string
	if g.admit.enabled() {
		cKey = clientKey(r)
		if wait, ok := g.admit.takeToken(cKey); !ok {
			g.throttledRate.Add(1)
			writeThrottled(w, cKey, "submission-rate", wait)
			return
		}
		if !g.admit.tryReserve(cKey) {
			// At the in-flight cap: reconcile the ledger against the
			// owning backends before rejecting — finished jobs the
			// gateway never happened to observe must not count.
			g.verifyInflight(r.Context(), cKey)
			if !g.admit.tryReserve(cKey) {
				// Nothing was enqueued: give the rate token back, or
				// cap rejections would drain the bucket and resurface
				// as rate 429s once a slot finally frees.
				g.admit.refundToken(cKey)
				g.throttledInflight.Add(1)
				writeThrottled(w, cKey, "in-flight", time.Second)
				return
			}
		}
		defer func() {
			if cKey != "" { // still reserved: no backend accepted
				g.admit.release(cKey)
			}
		}()
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := episim.ParseSweepSpec(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Normalize the trace id at the edge: adopt the client's (sanitized —
	// it travels in headers and log lines) or mint one, stamp it on the
	// forwarded request so the owning daemon adopts the same id, and echo
	// it so the caller can correlate even a failed routing attempt.
	traceID := obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader))
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	r.Header.Set(obs.TraceHeader, traceID)
	w.Header().Set(obs.TraceHeader, traceID)
	// Stamp the client identity the gateway resolved (header, else remote
	// host) so the owning daemon's usage ledger bills the real tenant,
	// not the gateway's own address.
	r.Header.Set("X-Episim-Client", clientKey(r))

	key := DominantPlacementKey(spec)
	order, affine, spillFirst := g.pickOrder(key)

	var lastErr error
	// attempt posts to one backend under its own timeout budget (a hung
	// first choice must not eat the fallbacks' time). It reports done
	// when a response was relayed to the client and retryable when the
	// next backend in the attempt order may safely be tried.
	attempt := func(b *backend, first bool) (done, retryable bool) {
		ctx, cancel := context.WithTimeout(r.Context(), controlTimeout)
		defer cancel()
		resp, err := g.forward(ctx, b, http.MethodPost, "/v1/sweeps", body, r.Header)
		if err != nil {
			g.reportFailure(r.Context(), b, err)
			lastErr = err
			// Only retry elsewhere when the request provably never
			// reached the backend (dial-phase failure). A connection
			// that broke — or timed out — mid-request may have delivered
			// the submission; re-posting it would run the sweep twice,
			// so surface the error instead (the ejection above already
			// re-routes the NEXT submission).
			return false, isDialError(err) && r.Context().Err() == nil
		}
		if resp.StatusCode >= 500 {
			// The backend answered but refused: alive (no ejection), and
			// nothing was enqueued, so the next backend is safe to try.
			lastErr = fmt.Errorf("backend %s: HTTP %d", b.identity(), resp.StatusCode)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return false, true
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			relay(w, resp, b) // e.g. a 4xx the backend knows better about
			return true, false
		}
		var ack client.SubmitReply
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			writeError(w, http.StatusBadGateway, "backend %s: bad submit reply: %v", b.identity(), err)
			return true, false
		}
		ack.ID = b.gatewayID(ack.ID)
		b.routed.Add(1)
		b.noteRouted()
		g.submitted.Add(1)
		switch {
		case first && spillFirst:
			g.spilled.Add(1) // deliberately diverted off a saturated owner
		case b != affine:
			g.rerouted.Add(1) // accepted, but not by the cache-affine owner
			// (a spill target that refused and fell BACK to the affine
			// owner lands in neither counter: the job went exactly where
			// cache locality wanted it.)
		}
		if cKey != "" {
			g.admit.commit(cKey, ack.ID)
			cKey = "" // reservation consumed; the deferred release must not fire
		}
		g.log.Debug("sweep routed", "job", ack.ID, "trace", traceID,
			"backend", b.identity(), "spilled", first && spillFirst)
		w.Header().Set(backendHeader, b.identity())
		writeJSON(w, http.StatusAccepted, ack)
		return true, false
	}
	for i, b := range order {
		done, retryable := attempt(b, i == 0)
		if done {
			return
		}
		if !retryable {
			break
		}
	}
	writeError(w, http.StatusBadGateway, "no backend accepted the sweep: %v", lastErr)
}

// isDialError reports whether a request failed before it could reach the
// backend at all — connection establishment — which is the only phase
// where retrying a POST elsewhere cannot duplicate work.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// proxyStatus forwards a status fetch and re-issues the job id in
// gateway form.
func (g *Gateway) proxyStatus(w http.ResponseWriter, r *http.Request, b *backend, prefix, local string) {
	g.proxyJobJSON(w, r, b, prefix, http.MethodGet, "/v1/sweeps/"+local)
}

// proxyCancel forwards a cancel; the reply is a job status too.
func (g *Gateway) proxyCancel(w http.ResponseWriter, r *http.Request, b *backend, prefix, local string) {
	g.proxyJobJSON(w, r, b, prefix, http.MethodPost, "/v1/sweeps/"+local+"/cancel")
}

// proxyJobJSON forwards a request whose 2xx reply is one JobStatus,
// rebuilding its id under the prefix the client presented (NOT the
// backend's current identity — a job submitted under a positional
// fallback id must keep answering to it after name discovery).
// Terminal statuses feed the admission ledger: a proxied reply proving
// a job finished frees its client's in-flight slot with no extra RPC.
func (g *Gateway) proxyJobJSON(w http.ResponseWriter, r *http.Request, b *backend, prefix, method, path string) {
	ctx, cancel := context.WithTimeout(r.Context(), controlTimeout)
	defer cancel()
	resp, err := g.forward(ctx, b, method, path, nil, r.Header)
	if err != nil {
		g.reportFailure(r.Context(), b, err)
		writeError(w, http.StatusBadGateway, "backend %s: %v", b.identity(), err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		relay(w, resp, b)
		return
	}
	var st client.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		writeError(w, http.StatusBadGateway, "backend %s: bad status reply: %v", b.identity(), err)
		return
	}
	st.ID = prefix + "-" + st.ID
	if st.State.Terminal() {
		g.admit.observeTerminal(st.ID)
	}
	w.Header().Set(backendHeader, b.identity())
	writeJSON(w, resp.StatusCode, st)
}

// proxyResult streams the result bytes through untouched: the result
// JSON carries no job id, so what the client reads through the gateway
// is byte-identical to reading the backend directly — the durability
// guarantee (canonical bytes across restarts) extends through the
// routing tier. A 200 proves the sweep finished, which also settles the
// admission ledger.
func (g *Gateway) proxyResult(w http.ResponseWriter, r *http.Request, b *backend, prefix, local string) {
	resp, err := g.forward(r.Context(), b, http.MethodGet, "/v1/sweeps/"+local+"/result", nil, r.Header)
	if err != nil {
		g.reportFailure(r.Context(), b, err)
		writeError(w, http.StatusBadGateway, "backend %s: %v", b.identity(), err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusGone {
		g.admit.observeTerminal(prefix + "-" + local)
	}
	relay(w, resp, b)
}

// proxyTrace streams the span timeline through untouched. The trace
// reply's embedded id is deliberately the backend-local one (the
// daemon's handler documents this), so the gateway need not re-encode —
// a trace read through the gateway is byte-identical to reading the
// owning backend directly, which the cluster tests assert.
func (g *Gateway) proxyTrace(w http.ResponseWriter, r *http.Request, b *backend, prefix, local string) {
	ctx, cancel := context.WithTimeout(r.Context(), controlTimeout)
	defer cancel()
	resp, err := g.forward(ctx, b, http.MethodGet, "/v1/sweeps/"+local+"/trace", nil, r.Header)
	if err != nil {
		g.reportFailure(r.Context(), b, err)
		writeError(w, http.StatusBadGateway, "backend %s: %v", b.identity(), err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp, b)
}

// handleList merges every live backend's job list, re-issued under
// gateway ids, ordered by creation time (then id) — the same oldest-
// first contract a single daemon serves.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), controlTimeout)
	defer cancel()
	type part struct {
		jobs []client.JobStatus
		err  error
	}
	parts := make([]part, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		if !b.healthy.Load() {
			parts[i].err = fmt.Errorf("backend %s unhealthy; skipped", b.identity())
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			resp, err := g.forward(ctx, b, http.MethodGet, "/v1/sweeps", nil, r.Header)
			if err != nil {
				g.reportFailure(r.Context(), b, err)
				parts[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 300 {
				parts[i].err = fmt.Errorf("HTTP %d", resp.StatusCode)
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return
			}
			var jobs []client.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
				parts[i].err = err
				return
			}
			for j := range jobs {
				jobs[j].ID = b.gatewayID(jobs[j].ID)
			}
			parts[i].jobs = jobs
		}(i, b)
	}
	wg.Wait()
	merged := []client.JobStatus{}
	var missing []string
	for i, p := range parts {
		merged = append(merged, p.jobs...)
		if p.err != nil {
			missing = append(missing, g.backends[i].identity())
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if !merged[a].Created.Equal(merged[b].Created) {
			return merged[a].Created.Before(merged[b].Created)
		}
		return merged[a].ID < merged[b].ID
	})
	if len(missing) > 0 {
		// The body stays the plain array the client contract expects; the
		// header flags that these backends' jobs are absent, not gone.
		w.Header().Set("X-Episim-Partial", strings.Join(missing, ","))
	}
	writeJSON(w, http.StatusOK, merged)
}

// proxyEvents streams a sweep's SSE/NDJSON events through the gateway,
// preserving the replay contract: ?from= and Last-Event-ID pass through,
// sequence numbers are the backend's own, and cell payloads are relayed
// byte-for-byte. Only terminal events (which embed the job's status,
// including its id) are re-encoded so the id a subscriber sees is the
// one the gateway issued.
func (g *Gateway) proxyEvents(w http.ResponseWriter, r *http.Request, b *backend, prefix, local string) {
	path := "/v1/sweeps/" + local + "/events"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	// Same identity stamp as submissions: streamed bytes bill to the
	// subscribing tenant on the owning daemon's ledger.
	r.Header.Set("X-Episim-Client", clientKey(r))
	resp, err := g.forward(r.Context(), b, http.MethodGet, path, nil, r.Header)
	if err != nil {
		g.reportFailure(r.Context(), b, err)
		writeError(w, http.StatusBadGateway, "backend %s: %v", b.identity(), err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		relay(w, resp, b)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ct := resp.Header.Get("Content-Type")
	ndjson := strings.Contains(ct, "ndjson")
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if !ndjson {
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	w.Header().Set(backendHeader, b.identity())
	w.WriteHeader(http.StatusOK)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case ndjson && len(line) > 0:
			line = g.rewriteEventLine(line, prefix)
		case !ndjson && bytes.HasPrefix(line, []byte("data:")):
			payload := bytes.TrimPrefix(bytes.TrimPrefix(line, []byte("data:")), []byte(" "))
			// Reframing an unchanged payload reproduces the backend's
			// exact "data: <json>" line, so this is byte-transparent for
			// cell events.
			line = append([]byte("data: "), g.rewriteEventLine(payload, prefix)...)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // subscriber gone; it reconnects and replays
		}
		// Flush on frame boundaries: every line for NDJSON, blank
		// separator lines for SSE (so one event = one flush).
		if ndjson || len(line) == 0 {
			flusher.Flush()
		}
	}
}

// rewriteEventLine re-issues the job id inside a terminal event's
// payload under the client-presented prefix, and settles the admission
// ledger (a terminal event proves the job finished). Cell events — the
// hot path and the bulk of the bytes — carry no job and pass through
// untouched (returned slice is the input).
func (g *Gateway) rewriteEventLine(line []byte, prefix string) []byte {
	if !bytes.Contains(line, []byte(`"job"`)) {
		return line
	}
	var ev client.Event
	if json.Unmarshal(line, &ev) != nil || ev.Job == nil {
		return line
	}
	ev.Job.ID = prefix + "-" + ev.Job.ID
	g.admit.observeTerminal(ev.Job.ID)
	out, err := json.Marshal(ev)
	if err != nil {
		return line
	}
	return out
}
