package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/client"
)

// probeAll probes every backend concurrently and waits for the round to
// finish. New() calls it synchronously so names and initial health are
// known before the gateway serves; probeLoop repeats it on a ticker.
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

// probeLoop polls every backend's /healthz until the gateway closes.
// (The first round already ran synchronously in New.)
func (g *Gateway) probeLoop() {
	defer close(g.done)
	t := time.NewTicker(g.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-g.stop:
			return
		}
		g.probeAll()
	}
}

// probe checks one backend. Any parsed /healthz reply teaches the
// gateway the backend's name and queue depth — even a 503 "degraded"
// reply names its sender, so ids issued to it keep resolving. A 2xx
// reply is healthy: one success re-admits an ejected backend instantly,
// while ejection waits for failAfter consecutive failures so a single
// slow probe doesn't shed a healthy backend's cache-affine keys.
//
// On boot (before the first successful probe) a backend is unhealthy:
// the synchronous first round in New() decides real initial health
// before the gateway serves, so there is no optimistic window in which
// submissions are routed blind.
func (g *Gateway) probe(b *backend) {
	h, err := g.probeOnce(b)
	if h != nil {
		g.registerName(b, h.Instance)
	}
	label := b.identity()
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if err == nil {
		b.consecFails = 0
		b.lastErr = ""
		b.probedDepth = h.QueueDepth
		b.sinceProbe = 0
		b.unhealthySince = time.Time{}
		if !b.healthy.Swap(true) {
			g.log.Info("backend healthy", "backend", label, "url", b.url)
		}
		return
	}
	b.consecFails++
	b.lastErr = err.Error()
	if b.consecFails >= g.failAfter && b.healthy.Swap(false) {
		b.unhealthySince = time.Now()
		g.log.Warn("backend ejected", "backend", label, "url", b.url, "err", err)
	}
}

// probeOnce fetches and parses one /healthz reply. The parsed reply is
// returned even on a non-2xx status (a degraded daemon still reports its
// identity); the error says whether the backend counts as healthy.
func (g *Gateway) probeOnce(b *backend) (*client.HealthReply, error) {
	resp, err := g.probec.Get(b.url + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var h client.HealthReply
	hp := &h
	if json.Unmarshal(raw, &h) != nil {
		hp = nil // not an episimd healthz body; nothing to learn from it
	}
	if resp.StatusCode >= 300 {
		return hp, fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	if hp == nil {
		return nil, fmt.Errorf("healthz: unparsable reply")
	}
	return hp, nil
}

// queueDepthEstimate is the gateway's current view of the backend's
// queue: the last probed depth plus submissions this gateway routed
// there since — so a burst between probes is visible to the spill
// decision immediately, not one probe interval late.
func (b *backend) queueDepthEstimate() int {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return b.probedDepth + b.sinceProbe
}

// noteRouted records an accepted submission in the depth estimate; the
// next successful probe replaces the estimate with ground truth.
func (b *backend) noteRouted() {
	b.probeMu.Lock()
	b.sinceProbe++
	b.probeMu.Unlock()
}

// markFailed records a proxy-time transport failure: the backend is
// ejected immediately (submissions must not keep timing out against a
// dead instance while the prober counts to failAfter); the prober
// re-admits it on its next successful probe.
func (g *Gateway) markFailed(b *backend, err error) {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	b.consecFails = g.failAfter
	b.lastErr = err.Error()
	if b.healthy.Swap(false) {
		b.unhealthySince = time.Now()
		g.log.Warn("backend ejected on proxy failure", "url", b.url, "err", err)
	}
}

// unreachableFor reports how long the backend has been ejected (0 while
// healthy or never ejected).
func (b *backend) unreachableFor() time.Duration {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if b.unhealthySince.IsZero() {
		return 0
	}
	return time.Since(b.unhealthySince)
}

// reportFailure is markFailed behind a blame check: callerCtx is the
// CLIENT's request context, and a proxied request that failed because
// the caller went away (or the caller's own deadline lapsed) says
// nothing about backend health — ejecting on it would let one impatient
// client shed a healthy backend's cache-affine keys. A failure with the
// caller still waiting — including the gateway's own per-attempt
// timeout firing against a hung backend — is the backend's fault and
// ejects it.
func (g *Gateway) reportFailure(callerCtx context.Context, b *backend, err error) {
	if callerCtx.Err() != nil {
		return
	}
	g.markFailed(b, err)
}

// lastError snapshots the backend's most recent probe/proxy failure.
func (b *backend) lastError() string {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return b.lastErr
}
