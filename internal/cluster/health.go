package cluster

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"
)

// probeLoop polls every backend's /healthz until the gateway closes.
// The first round runs immediately so a backend that was down at boot is
// ejected within one probe, not one interval.
func (g *Gateway) probeLoop() {
	defer close(g.done)
	t := time.NewTicker(g.probeInterval)
	defer t.Stop()
	for {
		for _, b := range g.backends {
			g.probe(b)
		}
		select {
		case <-t.C:
		case <-g.stop:
			return
		}
	}
}

// probe checks one backend. Any 2xx /healthz reply is healthy — one
// success re-admits an ejected backend instantly, while ejection waits
// for failAfter consecutive failures so a single slow probe doesn't
// shed a healthy backend's cache-affine keys.
func (g *Gateway) probe(b *backend) {
	err := g.probeOnce(b)
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if err == nil {
		b.consecFails = 0
		b.lastErr = ""
		if !b.healthy.Swap(true) {
			fmt.Fprintf(os.Stderr, "episim-gw: backend %s (%s) healthy\n", b.name, b.url)
		}
		return
	}
	b.consecFails++
	b.lastErr = err.Error()
	if b.consecFails >= g.failAfter && b.healthy.Swap(false) {
		fmt.Fprintf(os.Stderr, "episim-gw: backend %s (%s) ejected: %v\n", b.name, b.url, err)
	}
}

func (g *Gateway) probeOnce(b *backend) error {
	resp, err := g.probec.Get(b.url + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// markFailed records a proxy-time transport failure: the backend is
// ejected immediately (submissions must not keep timing out against a
// dead instance while the prober counts to failAfter); the prober
// re-admits it on its next successful probe.
func (g *Gateway) markFailed(b *backend, err error) {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	b.consecFails = g.failAfter
	b.lastErr = err.Error()
	if b.healthy.Swap(false) {
		fmt.Fprintf(os.Stderr, "episim-gw: backend %s (%s) ejected: %v\n", b.name, b.url, err)
	}
}

// reportFailure is markFailed behind a blame check: callerCtx is the
// CLIENT's request context, and a proxied request that failed because
// the caller went away (or the caller's own deadline lapsed) says
// nothing about backend health — ejecting on it would let one impatient
// client shed a healthy backend's cache-affine keys. A failure with the
// caller still waiting — including the gateway's own per-attempt
// timeout firing against a hung backend — is the backend's fault and
// ejects it.
func (g *Gateway) reportFailure(callerCtx context.Context, b *backend, err error) {
	if callerCtx.Err() != nil {
		return
	}
	g.markFailed(b, err)
}

// lastError snapshots the backend's most recent probe/proxy failure.
func (b *backend) lastError() string {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return b.lastErr
}
