package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// The gateway's half of the SLO plane: a metrics-history ring fed by the
// merged fleet stats snapshot, evaluated against the same SLO specs each
// daemon uses. The scalar vocabulary is shared through
// server.StatsHistoryPoint, so a fleet burn rate is computed from
// exactly the per-daemon counters — summed, not re-derived.

// startSLOPlane builds and starts the fleet metrics ring. Each tick fans
// /v1/stats out to the fleet and appends the merged snapshot; points are
// marked stale when the whole fleet is unreachable or any backend's
// contribution was a last-known snapshot rather than a live read, which
// flows through window math into the SLO statuses — degraded burn rates
// say so instead of impersonating live ones.
func (g *Gateway) startSLOPlane(cfg Config) {
	g.sloSpecs = server.SLOSpecs(cfg.QueueWaitSLOSeconds)
	g.history = obs.NewHistory(cfg.HistorySize, cfg.HistoryInterval, func() obs.HistoryPoint {
		st := g.collectStats(context.Background())
		stale := st.Gateway.FleetHealthy == 0
		for _, bs := range st.Backends {
			if bs.StatsStale {
				stale = true
			}
		}
		return server.StatsHistoryPoint(st.StatsReply, stale)
	})
	g.history.OnAppend(func(obs.HistoryPoint) {
		sts := obs.EvalSLOs(g.history, g.sloSpecs)
		g.sloStatus.Store(&sts)
	})
	g.history.Start()
}

// sloStatuses returns the latest fleet SLO evaluation (a zeroed-but-
// complete spec set before the ring's first append).
func (g *Gateway) sloStatuses() []obs.SLOStatus {
	if p := g.sloStatus.Load(); p != nil {
		return *p
	}
	return obs.EvalSLOs(g.history, g.sloSpecs)
}

// handleSLO serves the fleet-level error-budget evaluation.
func (g *Gateway) handleSLO(w http.ResponseWriter, r *http.Request) {
	sts := g.sloStatuses()
	stale := false
	for _, st := range sts {
		if st.Stale {
			stale = true
		}
	}
	writeJSON(w, http.StatusOK, client.SLOReply{Instance: "fleet", Stale: stale, SLOs: sts})
}

// handleUsage fans /v1/usage out to every healthy backend and merges the
// ledgers per client: the same tenant submitting through the gateway
// lands on many backends (HRW by content key), so only the merged view
// answers "what has this client consumed fleet-wide" — the number a
// fleet-global admission policy would act on.
func (g *Gateway) handleUsage(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), statsTimeout)
	defer cancel()
	parts := make([][]obs.ClientUsage, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/usage", nil)
			if err != nil {
				return
			}
			resp, err := g.httpc.Do(req)
			if err != nil {
				g.reportFailure(r.Context(), b, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 300 {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return
			}
			var rep client.UsageReply
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				return
			}
			parts[i] = rep.Clients
		}(i, b)
	}
	wg.Wait()
	merged := []obs.ClientUsage{}
	for _, rows := range parts {
		merged = obs.MergeUsage(merged, rows)
	}
	writeJSON(w, http.StatusOK, client.UsageReply{Instance: "fleet", Clients: merged})
}

// handleHistory serves the gateway's fleet metrics ring in the same
// shape as a daemon's /v1/metrics/history.
func (g *Gateway) handleHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, server.BuildHistoryReply("fleet", g.history))
}
