package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/obs"
)

// TestBackendHeaderOnProxiedReplies pins the X-Episim-Backend contract
// in a Go test (previously asserted only by CI shell greps): submit,
// status, and result replies all name the backend that served them, and
// they all name the same one.
func TestBackendHeaderOnProxiedReplies(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	ack, name := tc.submitRaw(t, specBody(t, testSpec()))
	if name == "" {
		t.Fatal("submit reply carries no X-Episim-Backend header")
	}
	tc.waitDone(t, ack.ID)

	for _, path := range []string{"", "/result"} {
		resp, err := http.Get(tc.gwURL + "/v1/sweeps/" + ack.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get(backendHeader); got != name {
			t.Fatalf("GET %s: %s = %q, want %q", path, backendHeader, got, name)
		}
	}
}

// TestTraceThroughGateway is the gateway half of the tracing acceptance
// test: a trace id supplied at the gateway reaches the owning backend's
// timeline, and the trace read back through the gateway is byte-
// identical to reading the backend directly.
func TestTraceThroughGateway(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})

	req, err := http.NewRequest(http.MethodPost, tc.gwURL+"/v1/sweeps",
		bytes.NewReader(specBody(t, testSpec())))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "t-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "t-123" {
		t.Fatalf("gateway echoed trace id %q, want t-123", got)
	}
	var ack client.SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.TraceID != "t-123" {
		t.Fatalf("ack trace id = %q, want t-123 (backend did not adopt the gateway-forwarded id)", ack.TraceID)
	}
	tc.waitDone(t, ack.ID)

	code, viaGW := getRaw(t, tc.gwURL+"/v1/sweeps/"+ack.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("gateway trace: HTTP %d", code)
	}
	b, local, ok := tc.gw.resolveID(ack.ID)
	if !ok {
		t.Fatalf("ack id %q does not resolve", ack.ID)
	}
	code, direct := getRaw(t, b.url+"/v1/sweeps/"+local+"/trace")
	if code != http.StatusOK {
		t.Fatalf("direct trace: HTTP %d", code)
	}
	if !bytes.Equal(viaGW, direct) {
		t.Fatalf("trace differs through gateway:\n--- via gw ---\n%s\n--- direct ---\n%s", viaGW, direct)
	}
	var tr client.TraceReply
	if err := json.Unmarshal(viaGW, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "t-123" {
		t.Fatalf("trace id = %q, want t-123", tr.TraceID)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace carries no spans")
	}
}

// TestGatewayMetricsHistograms: after a sweep through the gateway, its
// /metrics carries the five merged backend histogram families plus its
// own per-backend proxy round-trip histogram, each with HELP/TYPE.
func TestGatewayMetricsHistograms(t *testing.T) {
	tc := bootCluster(t, 2, Config{ProbeInterval: time.Hour})
	ack, name := tc.submitRaw(t, specBody(t, testSpec()))
	tc.waitDone(t, ack.ID)

	code, raw := getRaw(t, tc.gwURL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	body := string(raw)
	for _, fam := range []string{
		"episimd_submit_seconds",
		"episimd_queue_wait_seconds",
		"episimd_placement_build_seconds",
		"episimd_cell_seconds",
		"episimd_result_persist_seconds",
		"episim_gw_proxy_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" histogram") {
			t.Fatalf("gateway metrics missing histogram family %s:\n%s", fam, body)
		}
		if !strings.Contains(body, fam+"_bucket{") {
			t.Fatalf("gateway metrics missing buckets for %s", fam)
		}
	}
	// The proxy histogram is labelled by backend; at least the accepting
	// backend must have observations.
	if !strings.Contains(body, `episim_gw_proxy_seconds_count{backend="`+name+`"}`) {
		t.Fatalf("proxy histogram missing backend label %q:\n%s", name, body)
	}
	// Merged submit histogram: exactly one submission fleet-wide.
	if !strings.Contains(body, "episimd_submit_seconds_count 1") {
		t.Fatalf("merged submit histogram count wrong:\n%s", body)
	}
}
