// Package cluster turns a fleet of share-nothing episimd instances into
// one horizontally-scaled sweep service. The gateway (episim-gw) is
// stateless: it computes each submission's dominant placement content
// key — the same key internal/ensemble caches builds under — and routes
// it via rendezvous hashing over the healthy backend set, so repeat
// submissions of the same (population, placement) always land on the
// instance whose memory and disk caches already hold the build. Job ids
// issued by the gateway embed the backend's *name* ("node-0-sw-000001"),
// discovered from each daemon's /healthz, so status, result, cancel and
// event-stream requests proxy straight to the owning backend with no
// routing table anywhere — and the -backends list can be reordered,
// grown, or re-addressed without invalidating issued ids or moving keys,
// because both routing and identity hang off the name, not the position.
//
// Routing is load-aware: when the HRW owner's queue depth (reported by
// /healthz and tracked between probes) exceeds the configured spill
// bound, the submission spills to the HRW runner-up even while the owner
// is healthy — one cold placement build traded for tail latency.
// Admission control throttles each client (X-Episim-Client header, else
// remote address) with a token bucket and an in-flight sweep cap,
// answering 429 + Retry-After so a burst from one tenant cannot starve
// the fleet.
//
// An active prober ejects backends whose /healthz stops answering (and
// re-admits them when it recovers); submissions re-route down the HRW
// preference order, so a dead backend costs its keys one cold cache, not
// an outage. /v1/stats and /metrics aggregate the whole fleet, degrading
// to last-known backend snapshots (flagged by the fleet_healthy gauge)
// rather than zeros when backends are unreachable.
package cluster

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/obs"
)

// Config sizes one gateway.
type Config struct {
	// Backends are the episimd base URLs, e.g. "http://10.0.0.1:8321".
	// Order does not matter: a backend's identity is the name its daemon
	// reports on /healthz (episimd -name), so the list can be reordered
	// or extended freely. A daemon that reports no name falls back to its
	// positional identity ("b0", "b1", ...) — only then does order count.
	Backends []string
	// ProbeInterval is the /healthz polling cadence (0 = 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (0 = 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures eject a backend
	// (0 = 2). One successful probe re-admits it.
	FailAfter int
	// SpillQueueDepth enables load-aware spill: when the HRW owner's
	// queue depth exceeds this bound, the submission routes to the next
	// backend in HRW order whose queue is within it, even while the owner
	// is healthy (0 = disabled; pure content-key affinity).
	SpillQueueDepth int
	// MaxInflightPerClient caps sweeps a single client may have
	// unfinished across the fleet (0 = unlimited). Excess submissions
	// get 429 + Retry-After.
	MaxInflightPerClient int
	// SubmitRate is the per-client sustained submission rate in sweeps
	// per second (0 = unlimited), enforced by a token bucket of
	// SubmitBurst capacity.
	SubmitRate float64
	// SubmitBurst is the token-bucket capacity (0 = max(1, 2×SubmitRate)).
	SubmitBurst int
	// HistoryInterval is the fleet metrics-history collection cadence
	// (0 = 5s): each tick fans /v1/stats out and appends the merged
	// snapshot to the gateway's ring, from which fleet-level SLO burn
	// rates are computed. HistorySize bounds the ring (0 = an hour's
	// worth of points).
	HistoryInterval time.Duration
	HistorySize     int
	// QueueWaitSLOSeconds is the latency budget for the fleet queue-wait
	// SLO, in seconds (0 = 30) — keep it equal to the backends' so the
	// fleet burn rate and the per-daemon ones measure the same promise.
	QueueWaitSLOSeconds float64
	// HTTPClient proxies requests to backends. It must not set a global
	// Timeout (event streams run as long as sweeps do); nil uses a
	// default transport.
	HTTPClient *http.Client
	// Logger receives the gateway's structured log lines (nil = a plain
	// text logger on stderr at info level, the historical behavior).
	Logger *obs.Logger
}

// backend is one episimd instance as the gateway sees it.
type backend struct {
	index    int
	fallback string // positional identity "b0", used until a name is known
	url      string

	healthy atomic.Bool
	routed  atomic.Int64 // submissions this backend accepted

	// lastStats is the most recent successful /v1/stats snapshot, kept
	// so fleet aggregates degrade to last-known values instead of zeros
	// while the backend is unreachable; lastStatsAt (unix nanos) is when
	// it was taken, surfaced as stats_updated whenever the snapshot is
	// served stale.
	lastStats   atomic.Pointer[client.StatsReply]
	lastStatsAt atomic.Int64

	// Prober state (prober goroutine + failure reports from proxying).
	probeMu     sync.Mutex
	name        string // discovered via /healthz ("" until first contact)
	lastRefused string // last name refused by registerName (log once, not per probe)
	consecFails int
	lastErr     string
	// unhealthySince is when the backend was last ejected (zero while
	// healthy); admission's ledger forgiveness keys off its duration so
	// a transient blip doesn't erase still-running jobs from the books.
	unhealthySince time.Time
	// probedDepth is the queue depth from the last successful probe;
	// sinceProbe counts submissions this gateway routed here after it, so
	// the spill decision sees bursts the next probe hasn't yet.
	probedDepth int
	sinceProbe  int
}

// Gateway fronts N episimd backends behind the episimd HTTP API.
type Gateway struct {
	backends []*backend
	httpc    *http.Client
	probec   *http.Client

	probeInterval time.Duration
	failAfter     int
	spillDepth    int

	// byName maps discovered backend names to backends for id
	// resolution; fallback positional names resolve by index.
	nameMu sync.RWMutex
	byName map[string]*backend

	admit *admission
	log   *obs.Logger

	// proxyHist distributes backend round-trip latency (request out to
	// response headers in) per backend — the gateway's own contribution
	// to tail latency, separable from the backends' histograms.
	proxyHist *obs.HistogramVec

	// history is the fleet metrics ring (merged stats snapshots on an
	// interval); sloSpecs/sloStatus are the fleet SLO set and its latest
	// evaluation over that ring.
	history   *obs.History
	sloSpecs  []obs.SLOSpec
	sloStatus atomic.Pointer[[]obs.SLOStatus]

	started time.Time
	stop    chan struct{}
	done    chan struct{}

	submitted atomic.Int64 // submissions accepted by some backend
	rerouted  atomic.Int64 // submissions that fell past their first choice
	spilled   atomic.Int64 // submissions diverted off a healthy owner by load

	throttledRate     atomic.Int64 // 429s from the per-client token bucket
	throttledInflight atomic.Int64 // 429s from the per-client in-flight cap
}

// New builds a gateway over cfg.Backends, performs one synchronous probe
// round to discover backend names (bounded by ProbeTimeout), and starts
// the background prober. Backends that answer the first probe start
// healthy and named; the rest start ejected and join the moment a probe
// reaches them.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NewLogger(os.Stderr, "text", obs.LevelInfo, "episim-gw")
	}
	g := &Gateway{
		httpc:         httpc,
		probec:        &http.Client{Timeout: cfg.ProbeTimeout},
		probeInterval: cfg.ProbeInterval,
		failAfter:     cfg.FailAfter,
		spillDepth:    cfg.SpillQueueDepth,
		byName:        map[string]*backend{},
		admit:         newAdmission(cfg.SubmitRate, cfg.SubmitBurst, cfg.MaxInflightPerClient),
		log:           log,
		proxyHist: obs.NewHistogramVec("episim_gw_proxy_seconds",
			"Backend round-trip latency through the gateway, per backend.", "backend", nil),
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for i, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: backend %d has an empty URL", i)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", u)
		}
		seen[u] = true
		b := &backend{index: i, fallback: fmt.Sprintf("b%d", i), url: u}
		g.backends = append(g.backends, b)
	}
	// Synchronous first round: names (and initial health) are known
	// before the gateway serves, so the very first submission routes by
	// name and can be acked with a name-bearing id.
	g.probeAll()
	g.startSLOPlane(cfg)
	go g.probeLoop()
	return g, nil
}

// Close stops the health prober and the fleet metrics ring. In-flight
// proxied requests finish on their own connections.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
		<-g.done
		g.history.Stop()
	}
}

// Handler returns the gateway's HTTP API — the episimd surface, served
// for the whole fleet:
//
//	POST   /v1/sweeps             route by placement content key (load-
//	                              aware), 202 + {id}; 429 when throttled
//	GET    /v1/sweeps             merged job list across backends
//	GET    /v1/sweeps/{id}        proxied to the owning backend
//	GET    /v1/sweeps/{id}/result verbatim bytes from the owning backend
//	GET    /v1/sweeps/{id}/trace  verbatim span timeline from the owner
//	GET    /v1/sweeps/{id}/events proxied SSE/NDJSON stream (?from= and
//	                              Last-Event-ID replay preserved)
//	POST   /v1/sweeps/{id}/cancel proxied cancel
//	DELETE /v1/sweeps/{id}        same
//	GET    /v1/stats              fleet-aggregated stats + per-backend detail
//	GET    /v1/slo                fleet SLO error-budget burn rates
//	GET    /v1/usage              per-client usage, merged across backends
//	GET    /v1/metrics/history    the gateway's fleet metrics ring
//	GET    /metrics               fleet-aggregated Prometheus metrics
//	GET    /healthz               gateway readiness (503 when no backend is)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", g.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", g.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", g.withBackend(g.proxyStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/result", g.withBackend(g.proxyResult))
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", g.withBackend(g.proxyTrace))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", g.withBackend(g.proxyEvents))
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", g.withBackend(g.proxyCancel))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", g.withBackend(g.proxyCancel))
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/slo", g.handleSLO)
	mux.HandleFunc("GET /v1/usage", g.handleUsage)
	mux.HandleFunc("GET /v1/metrics/history", g.handleHistory)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	return mux
}

// identity is the backend's routing name: the name its daemon reported
// on /healthz, or the positional fallback until one is known (or when
// the daemon is anonymous, or its name collided with another backend's).
func (b *backend) identity() string {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if b.name != "" {
		return b.name
	}
	return b.fallback
}

// registerName adopts a backend's /healthz-reported name as its routing
// identity. Empty, malformed, and colliding names are refused (with a
// log line — both are operator errors worth seeing), keeping whatever
// identity the backend already routes under; a valid changed name
// re-registers, which orphans ids issued under the old one.
func (g *Gateway) registerName(b *backend, name string) {
	name = strings.TrimSpace(name)
	// An empty name is no information, not a rename: a proxy's JSON
	// error body parses to Instance "" while the daemon restarts, and
	// un-registering the discovered name on it would orphan every
	// outstanding id issued under that name.
	if name == "" {
		return
	}
	b.probeMu.Lock()
	prev := b.name
	b.probeMu.Unlock()
	keeping := b.fallback // what this backend keeps using if name is refused
	if prev != "" {
		keeping = prev
	}
	// refuse logs a refusal once per distinct refused name — the prober
	// re-reports a persistent misconfiguration every round, and 43k
	// identical lines a day would drown the eject/recover signal.
	refuse := func(msg string, kvs ...any) {
		b.probeMu.Lock()
		repeat := b.lastRefused == name
		b.lastRefused = name
		b.probeMu.Unlock()
		if !repeat {
			g.log.Warn(msg, kvs...)
		}
	}
	// The shared validator also refuses the whole "b<number>" shape —
	// positional identities are the gateway's, and accepting one (even a
	// backend's own current slot) would make its ids resolve by position
	// after the next list reorder.
	if err := client.ValidateInstanceName(name); err != nil {
		refuse("backend reports unusable name; keeping current identity",
			"url", b.url, "err", err, "keeping", keeping)
		return
	}
	if name == prev {
		return
	}
	g.nameMu.Lock()
	defer g.nameMu.Unlock()
	if other, taken := g.byName[name]; taken && other != b {
		refuse("backend reports already-claimed name; keeping current identity",
			"url", b.url, "name", name, "claimed_by", other.url, "keeping", keeping)
		return
	}
	g.byName[name] = b
	if prev != "" && g.byName[prev] == b {
		delete(g.byName, prev)
		g.log.Warn("backend renamed; ids issued under the old name no longer resolve",
			"url", b.url, "old", prev, "new", name)
	}
	b.probeMu.Lock()
	b.name = name
	b.probeMu.Unlock()
}

// gatewayID embeds the owning backend's identity in a job id:
// "node-0-sw-000001".
func (b *backend) gatewayID(backendID string) string {
	return b.identity() + "-" + backendID
}

// resolveID splits a gateway job id back into its backend and the
// backend-local id. The backend-local part always starts with "sw-", so
// the name is everything before the last "-sw-" — names may themselves
// contain dashes. Ids issued under a positional fallback identity
// ("b0-sw-000001", including every id from before this gateway learned
// names) resolve by position when no backend claims the name.
func (g *Gateway) resolveID(id string) (*backend, string, bool) {
	i := strings.LastIndex(id, "-sw-")
	if i <= 0 {
		return nil, "", false
	}
	name, local := id[:i], id[i+1:]
	if len(local) <= len("sw-") {
		return nil, "", false
	}
	g.nameMu.RLock()
	b, ok := g.byName[name]
	g.nameMu.RUnlock()
	if ok {
		return b, local, true
	}
	// Positional fallback: exactly the shape ValidateInstanceName
	// reserves (shared predicate, so a registered name can never
	// double-parse as a position — Atoi alone would accept "b+1").
	if !client.IsPositionalIdentity(name) {
		return nil, "", false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n >= len(g.backends) {
		return nil, "", false
	}
	return g.backends[n], local, true
}

// withBackend resolves the {id} path value before invoking h. The
// prefix handed to h is the identity part of the id the CLIENT
// presented — proxied replies rebuild ids under it, so an id issued
// before the gateway learned the backend's name ("b0-sw-000001") keeps
// reading back exactly as issued even after discovery renames the
// backend's current identity.
func (g *Gateway) withBackend(h func(http.ResponseWriter, *http.Request, *backend, string, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		b, local, ok := g.resolveID(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown sweep %q", id)
			return
		}
		h(w, r, b, id[:strings.LastIndex(id, "-sw-")], local)
	}
}

// healthyCount tallies backends currently marked healthy.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// rankFor orders backends by HRW preference for key, healthy ones
// first. The hash input is each backend's *identity* (its name), not its
// URL: a renamed list order or a backend moved to a new address keeps
// every key's owner. Unhealthy backends stay in the list (after every
// healthy one, still in HRW order) as a last resort: if the prober is
// wrong or the whole fleet is flapping, trying beats refusing.
func (g *Gateway) rankFor(key string) []*backend {
	ids := make([]string, len(g.backends))
	for i, b := range g.backends {
		ids[i] = b.identity()
	}
	order := rankNodes(key, ids)
	out := make([]*backend, 0, len(order))
	for _, i := range order {
		if g.backends[i].healthy.Load() {
			out = append(out, g.backends[i])
		}
	}
	for _, i := range order {
		if !g.backends[i].healthy.Load() {
			out = append(out, g.backends[i])
		}
	}
	return out
}

// handleHealthz reports gateway readiness: ready while at least one
// backend is, with per-backend identity so operators can see the names
// the fleet routes by.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := g.healthyCount()
	status, code := "ok", http.StatusOK
	if healthy == 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	type bstat struct {
		Name    string `json:"name"`
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	bs := make([]bstat, len(g.backends))
	for i, b := range g.backends {
		bs[i] = bstat{Name: b.identity(), URL: b.url, Healthy: b.healthy.Load()}
	}
	writeJSON(w, code, map[string]any{
		"status":           status,
		"backends_total":   len(g.backends),
		"backends_healthy": healthy,
		"backends":         bs,
		"uptime_sec":       time.Since(g.started).Seconds(),
	})
}
