// Package cluster turns a fleet of share-nothing episimd instances into
// one horizontally-scaled sweep service. The gateway (episim-gw) is
// stateless: it computes each submission's dominant placement content
// key — the same key internal/ensemble caches builds under — and routes
// it via rendezvous hashing over the healthy backend set, so repeat
// submissions of the same (population, placement) always land on the
// instance whose memory and disk caches already hold the build. Job ids
// issued by the gateway embed the backend identity ("b0-sw-000001"), so
// status, result, cancel and event-stream requests proxy straight to the
// owning backend with no routing table anywhere.
//
// An active prober ejects backends whose /healthz stops answering (and
// re-admits them when it recovers); submissions re-route down the HRW
// preference order, so a dead backend costs its keys one cold cache, not
// an outage. /v1/stats and /metrics aggregate the whole fleet.
package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes one gateway.
type Config struct {
	// Backends are the episimd base URLs, e.g. "http://10.0.0.1:8321".
	// Order matters: a backend's identity (b0, b1, ...) is its position
	// here, and issued job ids embed it — keep the list stable across
	// gateway restarts (append new backends at the end).
	Backends []string
	// ProbeInterval is the /healthz polling cadence (0 = 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (0 = 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures eject a backend
	// (0 = 2). One successful probe re-admits it.
	FailAfter int
	// HTTPClient proxies requests to backends. It must not set a global
	// Timeout (event streams run as long as sweeps do); nil uses a
	// default transport.
	HTTPClient *http.Client
}

// backend is one episimd instance as the gateway sees it.
type backend struct {
	index int
	name  string // "b0", "b1", ... — embedded in gateway job ids
	url   string

	healthy atomic.Bool
	routed  atomic.Int64 // submissions this backend accepted

	// Prober state (prober goroutine + failure reports from proxying).
	probeMu     sync.Mutex
	consecFails int
	lastErr     string
}

// Gateway fronts N episimd backends behind the episimd HTTP API.
type Gateway struct {
	backends []*backend
	httpc    *http.Client
	probec   *http.Client

	probeInterval time.Duration
	failAfter     int

	started time.Time
	stop    chan struct{}
	done    chan struct{}

	submitted atomic.Int64 // submissions accepted by some backend
	rerouted  atomic.Int64 // submissions that fell past their first choice
}

// New builds a gateway over cfg.Backends and starts its health prober.
// Backends start healthy (optimistic) so the gateway serves immediately;
// the first probe round corrects within ProbeInterval.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	g := &Gateway{
		httpc:         httpc,
		probec:        &http.Client{Timeout: cfg.ProbeTimeout},
		probeInterval: cfg.ProbeInterval,
		failAfter:     cfg.FailAfter,
		started:       time.Now(),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	seen := map[string]bool{}
	for i, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: backend %d has an empty URL", i)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", u)
		}
		seen[u] = true
		b := &backend{index: i, name: fmt.Sprintf("b%d", i), url: u}
		b.healthy.Store(true)
		g.backends = append(g.backends, b)
	}
	go g.probeLoop()
	return g, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own connections.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
		<-g.done
	}
}

// Handler returns the gateway's HTTP API — the episimd surface, served
// for the whole fleet:
//
//	POST   /v1/sweeps             route by placement content key, 202 + {id}
//	GET    /v1/sweeps             merged job list across backends
//	GET    /v1/sweeps/{id}        proxied to the owning backend
//	GET    /v1/sweeps/{id}/result verbatim bytes from the owning backend
//	GET    /v1/sweeps/{id}/events proxied SSE/NDJSON stream (?from= and
//	                              Last-Event-ID replay preserved)
//	POST   /v1/sweeps/{id}/cancel proxied cancel
//	DELETE /v1/sweeps/{id}        same
//	GET    /v1/stats              fleet-aggregated stats + per-backend detail
//	GET    /metrics               fleet-aggregated Prometheus metrics
//	GET    /healthz               gateway readiness (503 when no backend is)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", g.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", g.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", g.withBackend(g.proxyStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/result", g.withBackend(g.proxyResult))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", g.withBackend(g.proxyEvents))
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", g.withBackend(g.proxyCancel))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", g.withBackend(g.proxyCancel))
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	return mux
}

// gatewayID embeds the owning backend in a job id: "b0-sw-000001".
func (b *backend) gatewayID(backendID string) string {
	return b.name + "-" + backendID
}

// resolveID splits a gateway job id back into its backend and the
// backend-local id. Unparseable or out-of-range ids are simply unknown.
func (g *Gateway) resolveID(id string) (*backend, string, bool) {
	rest, ok := strings.CutPrefix(id, "b")
	if !ok {
		return nil, "", false
	}
	idx, local, ok := strings.Cut(rest, "-")
	if !ok {
		return nil, "", false
	}
	n, err := strconv.Atoi(idx)
	if err != nil || n < 0 || n >= len(g.backends) || local == "" {
		return nil, "", false
	}
	return g.backends[n], local, true
}

// withBackend resolves the {id} path value before invoking h.
func (g *Gateway) withBackend(h func(http.ResponseWriter, *http.Request, *backend, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		b, local, ok := g.resolveID(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown sweep %q", id)
			return
		}
		h(w, r, b, local)
	}
}

// healthyCount tallies backends currently marked healthy.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// rankFor orders backends by HRW preference for key, healthy ones
// first. Unhealthy backends stay in the list (after every healthy one,
// still in HRW order) as a last resort: if the prober is wrong or the
// whole fleet is flapping, trying beats refusing.
func (g *Gateway) rankFor(key string) []*backend {
	urls := make([]string, len(g.backends))
	for i, b := range g.backends {
		urls[i] = b.url
	}
	order := rankNodes(key, urls)
	out := make([]*backend, 0, len(order))
	for _, i := range order {
		if g.backends[i].healthy.Load() {
			out = append(out, g.backends[i])
		}
	}
	for _, i := range order {
		if !g.backends[i].healthy.Load() {
			out = append(out, g.backends[i])
		}
	}
	return out
}

// handleHealthz reports gateway readiness: ready while at least one
// backend is.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := g.healthyCount()
	status, code := "ok", http.StatusOK
	if healthy == 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":           status,
		"backends_total":   len(g.backends),
		"backends_healthy": healthy,
		"uptime_sec":       time.Since(g.started).Seconds(),
	})
}
