package cluster

import (
	"fmt"
	"testing"

	episim "repro"
)

// ownerName resolves a key's HRW owner to its backend *name*, the unit
// the named-identity gateway actually routes on.
func ownerName(key string, names []string) string {
	return names[rankNodes(key, names)[0]]
}

// TestDominantPlacementKeyEmptyGrid: a spec with no cells must yield an
// empty key, not panic — the gateway still routes it (every backend
// ranks for ""), and the backend rejects it with a parse error.
func TestDominantPlacementKeyEmptyGrid(t *testing.T) {
	if k := DominantPlacementKey(&episim.SweepSpec{}); k != "" {
		t.Fatalf("empty grid key = %q, want \"\"", k)
	}
}

// TestDominantPlacementKeyAllDistinct: when every cell has a distinct
// placement key, there is no majority — the tie goes to grid order, so
// the FIRST placement's key wins, deterministically.
func TestDominantPlacementKeyAllDistinct(t *testing.T) {
	s := testSpec()
	s.Placements = []episim.SweepPlacement{
		{Strategy: "RR", Ranks: 2},
		{Strategy: "RR", Ranks: 4},
		{Strategy: "GP", Ranks: 2},
	}
	s.Normalize()
	key := DominantPlacementKey(s)
	cells := s.Cells()
	firstKey := cells[0].Placement.Key(cells[0].Population.Key(s.Seed))
	if key != firstKey {
		t.Fatalf("all-distinct key = %q, want grid-first %q", key, firstKey)
	}
}

// TestDominantPlacementKeyMajorityWins: a placement key covering more
// cells than any other must win even when it is not first in grid order.
func TestDominantPlacementKeyMajorityWins(t *testing.T) {
	s := testSpec()
	// RR-2 appears twice (identical content key), GP-2 once: RR-2 covers
	// 2× the cells and must beat the grid-first GP-2.
	s.Placements = []episim.SweepPlacement{
		{Strategy: "GP", Ranks: 2},
		{Strategy: "RR", Ranks: 2},
		{Strategy: "RR", Ranks: 2},
	}
	s.Normalize()
	key := DominantPlacementKey(s)
	cells := s.Cells()
	rrKey := cells[1].Placement.Key(cells[1].Population.Key(s.Seed))
	if key != rrKey {
		t.Fatalf("majority key = %q, want RR key %q", key, rrKey)
	}
}

// TestDominantPlacementKeyTieBreak: equal coverage ties go to grid
// order, and the choice is stable across calls.
func TestDominantPlacementKeyTieBreak(t *testing.T) {
	s := testSpec()
	s.Placements = []episim.SweepPlacement{
		{Strategy: "GP", Ranks: 2},
		{Strategy: "RR", Ranks: 2},
	}
	s.Scenarios = []episim.SweepScenario{{Name: "baseline"}, {Name: "late"}}
	s.Normalize()
	cells := s.Cells()
	want := cells[0].Placement.Key(cells[0].Population.Key(s.Seed))
	for i := 0; i < 3; i++ {
		if k := DominantPlacementKey(s); k != want {
			t.Fatalf("tie-break call %d = %q, want grid-first %q", i, k, want)
		}
	}
}

// TestHRWNamedMinimalDisruption: with identity hanging off names, adding
// or removing a NAMED backend must only move the keys the change itself
// accounts for — every other key keeps its named owner. This is the
// property that lets a fleet grow without invalidating its caches.
func TestHRWNamedMinimalDisruption(t *testing.T) {
	base := []string{"alpha", "beta", "gamma"}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("pop=town-%d | strategy=GP ranks=16", i)
	}

	// Adding a named backend: keys either keep their owner or move to
	// the newcomer — never between survivors.
	grown := append(append([]string{}, base...), "delta")
	moved := 0
	for _, k := range keys {
		before, after := ownerName(k, base), ownerName(k, grown)
		if before != after {
			if after != "delta" {
				t.Fatalf("key %q moved %s→%s when delta joined (must only move TO delta)", k, before, after)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("degenerate rebalance onto delta: %d/%d keys moved", moved, len(keys))
	}

	// Removing a named backend: only its keys move.
	shrunk := []string{"alpha", "gamma"} // beta leaves
	for _, k := range keys {
		before, after := ownerName(k, base), ownerName(k, shrunk)
		if before != "beta" && after != before {
			t.Fatalf("key %q moved %s→%s when beta (unrelated) left", k, before, after)
		}
	}

	// Reordering the list: owner invariant for every key — HRW scores
	// depend only on (key, name), never on list position.
	reordered := []string{"gamma", "alpha", "beta"}
	for _, k := range keys {
		if a, b := ownerName(k, base), ownerName(k, reordered); a != b {
			t.Fatalf("key %q owner changed %s→%s on pure reorder", k, a, b)
		}
	}
}
