package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestQuantileTable(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct {
		name string
		q    float64
		want float64
	}{
		{"min", 0, 1},
		{"max", 1, 4},
		{"median", 0.5, 2.5},
		{"p25", 0.25, 1.75},
		{"p75", 0.75, 3.25},
		{"p10", 0.1, 1.3},
		{"p90", 0.9, 3.7},
		{"clamped-low", -0.5, 1},
		{"clamped-high", 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(xs, tc.q); !almost(got, tc.want, 1e-12) {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestQuantileDegenerate(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty sample should return 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("single sample should return itself at any q")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	s := xrand.NewStream(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = s.NormFloat64()
	}
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	got := Quantiles(xs, qs)
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Fatalf("Quantiles[%v] = %v, want %v", q, got[i], want)
		}
	}
	// Quantiles must not mutate the input.
	if xs[0] == math.Inf(1) {
		t.Fatal("input mutated")
	}
	if len(Quantiles(nil, qs)) != len(qs) {
		t.Fatal("empty sample should return zero-filled slice")
	}
}

func TestNormalQuantileTable(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.95, 1.644854},
		{0.9, 1.281552},
		{0.995, 2.575829},
		{0.001, -3.090232},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); !almost(got, tc.want, 1e-5) {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("tails should be infinite")
	}
}

func TestMeanCITable(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		confidence float64
		mean, half float64 // expected mean and CI half-width
	}{
		// std = 1.290994 (n-1), half = 1.959964*std/sqrt(4)
		{"95pct", []float64{1, 2, 3, 4}, 0.95, 2.5, 1.959964 * 1.2909944487358056 / 2},
		{"90pct", []float64{1, 2, 3, 4}, 0.90, 2.5, 1.644854 * 1.2909944487358056 / 2},
		{"default-conf", []float64{1, 2, 3, 4}, 0, 2.5, 1.959964 * 1.2909944487358056 / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ci := MeanCI(tc.xs, tc.confidence)
			if !almost(ci.Mean, tc.mean, 1e-9) {
				t.Fatalf("mean = %v, want %v", ci.Mean, tc.mean)
			}
			if !almost(ci.Hi-ci.Mean, tc.half, 1e-5) || !almost(ci.Mean-ci.Lo, tc.half, 1e-5) {
				t.Fatalf("interval [%v, %v], want half-width %v", ci.Lo, ci.Hi, tc.half)
			}
		})
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	if ci := MeanCI(nil, 0.95); ci.N != 0 || ci.Mean != 0 || ci.Lo != 0 || ci.Hi != 0 {
		t.Fatalf("empty CI = %+v", ci)
	}
	ci := MeanCI([]float64{3}, 0.95)
	if ci.Mean != 3 || ci.Lo != 3 || ci.Hi != 3 {
		t.Fatalf("single-sample CI should degenerate to the mean, got %+v", ci)
	}
}

func TestMeanCICoverage(t *testing.T) {
	// ~95% of intervals from N(0,1) samples should cover the true mean 0.
	s := xrand.NewStream(5)
	const trials, n = 400, 30
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.NormFloat64()
		}
		ci := MeanCI(xs, 0.95)
		if ci.Lo <= 0 && 0 <= ci.Hi {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("coverage %.3f outside [0.90, 0.99]", frac)
	}
}
