package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almost(s.Std, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeOdd(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.Median != 3 {
		t.Fatalf("median = %v, want 3", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Fatalf("unexpected %+v", s)
	}
}

func TestCCDFBasic(t *testing.T) {
	pts := CCDF([]float64{1, 1, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("want 3 distinct points, got %d", len(pts))
	}
	if pts[0].X != 1 || pts[0].Count != 4 || pts[0].Frac != 1 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[1].X != 2 || pts[1].Count != 2 {
		t.Fatalf("pts[1] = %+v", pts[1])
	}
	if pts[2].X != 3 || pts[2].Count != 1 {
		t.Fatalf("pts[2] = %+v", pts[2])
	}
}

func TestCCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		pts := CCDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Count >= pts[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramCoversAll(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 100, 1000, -5, 0}
	bins := LogHistogram(xs, 2)
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi <= b.Lo {
			t.Fatalf("bad bin %+v", b)
		}
	}
	if total != 7 { // non-positive samples dropped
		t.Fatalf("binned %d samples, want 7", total)
	}
}

func TestLogHistogramPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for factor <= 1")
		}
	}()
	LogHistogram([]float64{1}, 1)
}

func TestPowerLawAlphaRecoversExponent(t *testing.T) {
	// Draw from Pareto(1, alpha): density ~ x^-(alpha+1), so the MLE
	// estimator written for p(x) ~ x^-a should return a = alpha+1.
	s := xrand.NewStream(99)
	alpha := 1.8
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = s.Pareto(1, alpha)
	}
	got := PowerLawAlpha(xs, 1)
	want := alpha + 1
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("alpha = %v, want ~%v", got, want)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	if PowerLawAlpha([]float64{1, 2, 3}, 0) != 0 {
		t.Fatal("xmin<=0 should return 0")
	}
	if PowerLawAlpha([]float64{0.1, 0.2}, 1) != 0 {
		t.Fatal("no qualifying samples should return 0")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f := FitLinear(xs, ys)
	if !almost(f.A, 1, 1e-9) || !almost(f.B, 2, 1e-9) {
		t.Fatalf("fit = %+v, want A=1 B=2", f)
	}
	if !almost(f.Predict(10), 21, 1e-9) {
		t.Fatalf("predict(10) = %v", f.Predict(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	s := xrand.NewStream(4)
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 5+0.25*x+s.NormFloat64())
	}
	f := FitLinear(xs, ys)
	if math.Abs(f.B-0.25) > 0.01 {
		t.Fatalf("slope = %v, want ~0.25", f.B)
	}
	if math.Abs(f.A-5) > 1 {
		t.Fatalf("intercept = %v, want ~5", f.A)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.B != 0 || f.A != 2 {
		t.Fatalf("degenerate fit = %+v, want mean", f)
	}
	if g := FitLinear(nil, nil); g.A != 0 || g.B != 0 {
		t.Fatalf("empty fit = %+v", g)
	}
}

func TestFitLinearMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestMeanRelativeError(t *testing.T) {
	if e := MeanRelativeError([]float64{1, 2}, []float64{1, 2}); e != 0 {
		t.Fatalf("exact predictions error = %v", e)
	}
	if e := MeanRelativeError([]float64{1.1}, []float64{1}); !almost(e, 0.1, 1e-9) {
		t.Fatalf("error = %v, want 0.1", e)
	}
}

func TestR2(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := R2(obs, obs); r != 1 {
		t.Fatalf("perfect R2 = %v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(mean, obs); r != 0 {
		t.Fatalf("mean predictor R2 = %v, want 0", r)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almost(g, 0, 1e-9) {
		t.Fatalf("uniform gini = %v", g)
	}
	// All mass in one element of many: close to 1.
	xs := make([]float64, 1000)
	xs[0] = 1
	if g := Gini(xs); g < 0.99 {
		t.Fatalf("concentrated gini = %v", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate gini should be 0")
	}
}

func TestMaxOverAvg(t *testing.T) {
	// Paper Figure 2: max load 8 over avg load (24/5) => 1.67.
	loadsA := []float64{8, 4, 4, 4, 4}
	if r := MaxOverAvg(loadsA); !almost(r, 8/(24.0/5), 1e-9) {
		t.Fatalf("ratio = %v", r)
	}
	if MaxOverAvg(nil) != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestGiniOrdersImbalance(t *testing.T) {
	even := []float64{1, 1, 1, 1}
	skew := []float64{4, 0.1, 0.1, 0.1}
	if Gini(even) >= Gini(skew) {
		t.Fatal("gini should order imbalance")
	}
}
