package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator of
// Hyndman & Fan, the default of R and NumPy). It returns 0 for an empty
// sample and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the qs-quantiles of xs, sorting the sample once.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// quantileSorted is Quantile over an already sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// CI is a mean with a symmetric normal-approximation confidence interval.
type CI struct {
	N          int
	Mean       float64
	Std        float64 // sample standard deviation (n-1 denominator)
	Confidence float64
	Lo, Hi     float64
}

// MeanCI returns the mean of xs with a confidence-level normal-approximation
// interval mean ± z·s/√n. With fewer than two samples the interval
// degenerates to the mean itself. Confidence outside (0, 1) defaults
// to 0.95.
func MeanCI(xs []float64, confidence float64) CI {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	ci := CI{N: len(xs), Confidence: confidence}
	if len(xs) == 0 {
		return ci
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	ci.Mean = sum / float64(len(xs))
	ci.Lo, ci.Hi = ci.Mean, ci.Mean
	if len(xs) < 2 {
		return ci
	}
	var ss float64
	for _, x := range xs {
		d := x - ci.Mean
		ss += d * d
	}
	ci.Std = math.Sqrt(ss / float64(len(xs)-1))
	z := NormalQuantile(0.5 + confidence/2)
	half := z * ci.Std / math.Sqrt(float64(len(xs)))
	ci.Lo, ci.Hi = ci.Mean-half, ci.Mean+half
	return ci
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution (the probit function), using Acklam's rational
// approximation (relative error below 1.15e-9 over (0, 1)). It returns
// ±Inf at p = 0 and p = 1.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
