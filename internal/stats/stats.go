// Package stats provides the statistical utilities the reproduction relies
// on: summary statistics, log-binned histograms and CCDFs (the paper plots
// degree and load distributions this way in Figures 3 and 7), power-law
// tail exponent estimation, and linear least-squares fitting used by the
// workload model of Section III-A.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Sum    float64
	Median float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeInts is Summarize for integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// CCDFPoint is one point of a complementary cumulative distribution
// function: the fraction (and count) of samples with value >= X.
type CCDFPoint struct {
	X     float64
	Count int     // samples with value >= X
	Frac  float64 // Count / N
}

// CCDF returns the complementary CDF of xs evaluated at each distinct
// sample value, in increasing order of X. This is the standard way to
// visualize heavy-tailed distributions (straight line in log-log space for
// a power law), used by Figures 3(c,d) and 7.
func CCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	var pts []CCDFPoint
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		pts = append(pts, CCDFPoint{
			X:     sorted[i],
			Count: n - i,
			Frac:  float64(n-i) / float64(n),
		})
		i = j
	}
	return pts
}

// LogBin is one bin of a logarithmically binned histogram.
type LogBin struct {
	Lo, Hi float64 // [Lo, Hi)
	Count  int
}

// LogHistogram bins positive samples into bins whose edges grow by the
// given factor (>1), starting at the smallest positive sample. Non-positive
// samples are dropped. The paper's distribution plots use log-scale bins.
func LogHistogram(xs []float64, factor float64) []LogBin {
	if factor <= 1 {
		panic("stats: LogHistogram factor must be > 1")
	}
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	sort.Float64s(pos)
	lo := pos[0]
	max := pos[len(pos)-1]
	var bins []LogBin
	for lo <= max {
		hi := lo * factor
		bins = append(bins, LogBin{Lo: lo, Hi: hi})
		lo = hi
	}
	for _, x := range pos {
		idx := int(math.Log(x/bins[0].Lo) / math.Log(factor))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bins) {
			idx = len(bins) - 1
		}
		// Guard against floating point rounding at bin edges.
		for idx > 0 && x < bins[idx].Lo {
			idx--
		}
		for idx < len(bins)-1 && x >= bins[idx].Hi {
			idx++
		}
		bins[idx].Count++
	}
	return bins
}

// PowerLawAlpha estimates the tail exponent alpha of a power-law
// distribution p(x) ~ x^-alpha for samples x >= xmin, using the standard
// continuous maximum-likelihood (Hill) estimator:
//
//	alpha = 1 + n / sum(ln(x_i/xmin))
//
// Samples below xmin are ignored. Returns 0 if fewer than two samples
// qualify.
func PowerLawAlpha(xs []float64, xmin float64) float64 {
	if xmin <= 0 {
		return 0
	}
	var n int
	var sum float64
	for _, x := range xs {
		if x >= xmin {
			n++
			sum += math.Log(x / xmin)
		}
	}
	if n < 2 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// LinearFit holds the coefficients of y = A + B*x.
type LinearFit struct {
	A, B float64
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.A + f.B*x }

// FitLinear computes the ordinary least squares line through (xs, ys).
// It panics if the slices differ in length and returns a degenerate fit
// (A = mean(ys), B = 0) when the xs have no variance.
func FitLinear(xs, ys []float64) LinearFit {
	return FitLinearWeighted(xs, ys, nil)
}

// FitLinearWeighted computes the weighted least squares line through
// (xs, ys) with non-negative weights ws (nil means uniform). Weighting by
// 1/y turns the objective into relative error, which is how the load model
// is fitted (small locations matter as much as huge ones).
func FitLinearWeighted(xs, ys, ws []float64) LinearFit {
	if len(xs) != len(ys) || (ws != nil && len(ws) != len(xs)) {
		panic(fmt.Sprintf("stats: FitLinearWeighted length mismatch %d/%d/%d", len(xs), len(ys), len(ws)))
	}
	if len(xs) == 0 {
		return LinearFit{}
	}
	weight := func(i int) float64 {
		if ws == nil {
			return 1
		}
		return ws[i]
	}
	var sw, sx, sy float64
	for i := range xs {
		w := weight(i)
		sw += w
		sx += w * xs[i]
		sy += w * ys[i]
	}
	if sw == 0 {
		return LinearFit{}
	}
	mx, my := sx/sw, sy/sw
	var sxx, sxy float64
	for i := range xs {
		w := weight(i)
		dx := xs[i] - mx
		sxx += w * dx * dx
		sxy += w * dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{A: my}
	}
	b := sxy / sxx
	return LinearFit{A: my - b*mx, B: b}
}

// MeanRelativeError returns mean(|pred-obs| / max(|obs|, eps)) — the error
// metric the paper reports for the load model ("5% error on average").
func MeanRelativeError(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("stats: MeanRelativeError length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	const eps = 1e-12
	var sum float64
	for i := range pred {
		den := math.Abs(obs[i])
		if den < eps {
			den = eps
		}
		sum += math.Abs(pred[i]-obs[i]) / den
	}
	return sum / float64(len(pred))
}

// R2 returns the coefficient of determination of predictions pred against
// observations obs. Returns 1 for a perfect fit; can be negative for fits
// worse than the mean.
func R2(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("stats: R2 length mismatch")
	}
	if len(obs) == 0 {
		return 0
	}
	var mean float64
	for _, y := range obs {
		mean += y
	}
	mean /= float64(len(obs))
	var ssRes, ssTot float64
	for i := range obs {
		d := obs[i] - pred[i]
		ssRes += d * d
		t := obs[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Gini returns the Gini coefficient of non-negative sample xs: 0 for a
// perfectly even distribution, approaching 1 for extreme concentration.
// Used as a scalar measure of load imbalance in tests and reports.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	n := float64(len(sorted))
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// MaxOverAvg returns max(xs)/mean(xs), the load-imbalance ratio the paper
// quotes for Figure 2 (1.67 vs 2.08). Returns 0 for empty or zero-sum xs.
func MaxOverAvg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(xs)))
}
