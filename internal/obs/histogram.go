// Package obs is the stack's zero-dependency telemetry layer: latency
// histograms with Prometheus text rendering, trace ids and per-job span
// timelines, a leveled structured logger, and opt-in pprof/runtime
// instrumentation. Everything here is stdlib-only by design — episimd,
// episim-gw and the sweep CLI all link it, and none of them may grow a
// dependency for observability's sake.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the shared log-scale upper bounds (seconds)
// for every latency histogram in the stack: sub-millisecond cache hits
// through multi-minute state-scale sweeps land in distinct buckets. One
// shared layout means gateway-side aggregation can merge backend
// snapshots by adding bucket counts — mismatched layouts cannot merge.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe with
// no locks on the hot path: per-bucket atomic counters plus a CAS loop
// over the sum's bits. Bounds are upper bucket edges in ascending order;
// an implicit +Inf bucket catches everything past the last bound.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	// counts[i] is the number of observations v with v <= bounds[i]
	// (and > bounds[i-1]); counts[len(bounds)] is the +Inf bucket.
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram named name with the given bucket
// bounds (nil = DefaultLatencyBuckets). Bounds must be ascending.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Safe for concurrent use; a nil histogram is
// a no-op so call sites need no guards.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v (le is inclusive, matching
	// Prometheus semantics); SearchFloat64s lands on len(bounds) for
	// values past the last bound, which is exactly the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Snapshot captures the histogram's current state for rendering or
// merging. The per-bucket counts are read without a global lock, so a
// snapshot racing Observe may be off by in-flight observations — fine
// for metrics, which are sampled anyway.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Help:   h.help,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is one histogram's point-in-time state — the form
// that travels in /v1/stats JSON so the gateway can aggregate backend
// histograms by addition and re-render the fleet-wide distribution.
type HistogramSnapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	// Label/LabelValue carry one optional label pair (e.g.
	// backend="node-0") for vector families.
	Label      string `json:"label,omitempty"`
	LabelValue string `json:"label_value,omitempty"`
	// Bounds are the upper bucket edges; Counts has len(Bounds)+1
	// entries, per-bucket (NOT cumulative — rendering cumulates).
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Merge adds other's buckets into s. Layouts must match (same bounds) —
// the stack guarantees this by sharing DefaultLatencyBuckets; mismatches
// return an error rather than silently corrupting the distribution.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) || len(s.Counts) != len(other.Counts) {
		return fmt.Errorf("obs: cannot merge %s: bucket layouts differ", s.Name)
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("obs: cannot merge %s: bucket bounds differ at %d", s.Name, i)
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) of the observed
// distribution by linear interpolation inside the bucket containing the
// target rank — the same estimator Prometheus's histogram_quantile uses,
// so numbers here and numbers in a dashboard agree. The lowest bucket
// interpolates from 0; ranks landing in the +Inf bucket return the last
// finite bound (the honest answer: "at least this"). An empty snapshot
// returns NaN.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	cum := 0.0
	for i, b := range s.Bounds {
		prev := cum
		cum += float64(s.Counts[i])
		if cum >= rank && s.Counts[i] > 0 {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - prev) / float64(s.Counts[i])
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the live histogram's p-quantile from a snapshot.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return h.Snapshot().Quantile(p)
}

// CountAtOrBelow estimates how many observations were ≤ v, interpolating
// inside the bucket straddling v — the CDF counterpart of Quantile. The
// SLO engine uses it to turn a latency histogram into an availability
// ratio ("fraction of queue waits within threshold").
func (s HistogramSnapshot) CountAtOrBelow(v float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(v) {
		return 0
	}
	cum := 0.0
	for i, b := range s.Bounds {
		if v >= b {
			cum += float64(s.Counts[i])
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if v > lower && b > lower {
			cum += float64(s.Counts[i]) * (v - lower) / (b - lower)
		}
		return cum
	}
	// v is past every finite bound; +Inf observations are above it.
	return cum
}

// formatLabel renders the snapshot's label pair plus the le bound for a
// _bucket sample ("" label = just the le pair).
func (s HistogramSnapshot) bucketLabels(le string) string {
	if s.Label == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s=%q,le=%q}", s.Label, s.LabelValue, le)
}

func (s HistogramSnapshot) seriesLabels() string {
	if s.Label == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", s.Label, s.LabelValue)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteHistogramsProm renders snapshots in Prometheus text format:
// cumulative _bucket series (le-labelled, ending at +Inf), _sum and
// _count, with one # HELP/# TYPE block per family. Snapshots sharing a
// Name (a vector's children) must be adjacent so the family header is
// emitted once.
func WriteHistogramsProm(w io.Writer, snaps []HistogramSnapshot) {
	prev := ""
	for _, s := range snaps {
		if s.Name != prev {
			if s.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(w, "# TYPE %s histogram\n", s.Name)
			prev = s.Name
		}
		cum := uint64(0)
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, s.bucketLabels(formatFloat(b)), cum)
		}
		if len(s.Counts) > len(s.Bounds) {
			cum += s.Counts[len(s.Bounds)]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, s.bucketLabels("+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.seriesLabels(), formatFloat(s.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.seriesLabels(), s.Count)
	}
}

// MergeSnapshots folds a batch of snapshots into acc, keyed by
// (Name, LabelValue): matching families add bucket-wise, new ones
// append. The accumulator stays sorted by name then label value so
// rendering groups vector children under one family header.
func MergeSnapshots(acc []HistogramSnapshot, batch []HistogramSnapshot) []HistogramSnapshot {
	for _, s := range batch {
		merged := false
		for i := range acc {
			if acc[i].Name == s.Name && acc[i].LabelValue == s.LabelValue {
				if acc[i].Merge(s) == nil {
					merged = true
				}
				break
			}
		}
		if !merged {
			cp := s
			cp.Bounds = append([]float64(nil), s.Bounds...)
			cp.Counts = append([]uint64(nil), s.Counts...)
			acc = append(acc, cp)
		}
	}
	sort.SliceStable(acc, func(i, j int) bool {
		if acc[i].Name != acc[j].Name {
			return acc[i].Name < acc[j].Name
		}
		return acc[i].LabelValue < acc[j].LabelValue
	})
	return acc
}

// HistogramVec is a histogram family keyed by one label (e.g. per
// backend). Children are created on first use and live forever — label
// cardinality is expected to be small and bounded (the backend fleet).
type HistogramVec struct {
	name   string
	help   string
	label  string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// NewHistogramVec builds a labelled histogram family (nil bounds =
// DefaultLatencyBuckets).
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	return &HistogramVec{
		name: name, help: help, label: label, bounds: bounds,
		children: map[string]*Histogram{},
	}
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = NewHistogram(v.name, v.help, v.bounds)
		v.children[value] = h
	}
	return h
}

// Snapshots captures every child, sorted by label value, each stamped
// with the family's label pair.
func (v *HistogramVec) Snapshots() []HistogramSnapshot {
	v.mu.RLock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	v.mu.RUnlock()
	sort.Strings(values)
	out := make([]HistogramSnapshot, 0, len(values))
	for _, val := range values {
		s := v.With(val).Snapshot()
		s.Label = v.label
		s.LabelValue = val
		out = append(out, s)
	}
	return out
}
