package obs

import (
	"fmt"
	"io"
	"time"
)

// SLOSpec declares one service-level objective evaluated from the
// metrics history ring. Two modes:
//
//   - availability: Total names the scalar counting all attempts and Bad
//     the scalar counting failed ones (good = total − bad);
//   - latency: Histogram names a latency family and ThresholdSeconds the
//     budget — an observation is good when it is ≤ the threshold,
//     estimated from the window's bucket deltas by interpolation.
//
// Burn rate is the standard error-budget definition: error_rate divided
// by the budget (1 − objective). Burn 1.0 consumes the budget exactly at
// the rate the objective allows; burn 14 on a 5m window is the classic
// page-now signal.
type SLOSpec struct {
	Name      string
	Help      string
	Objective float64 // e.g. 0.99

	// Availability mode.
	Total string
	Bad   string

	// Latency mode.
	Histogram        string
	ThresholdSeconds float64

	// Windows are the evaluation windows (default 5m and 1h).
	Windows []time.Duration
}

// DefaultSLOWindows are the multi-window pair burn alerts conventionally
// use: a short window to catch fast burns and a long one to confirm
// sustained ones.
func DefaultSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, time.Hour}
}

// SLOWindow is one window's evaluation.
type SLOWindow struct {
	Window string `json:"window"` // "5m0s" → rendered via windowLabel as "5m"
	// Seconds is the window actually covered (shorter than nominal while
	// the ring is young).
	Seconds   float64 `json:"seconds"`
	Good      float64 `json:"good"`
	Total     float64 `json:"total"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
}

// SLOStatus is one SLO's current multi-window evaluation.
type SLOStatus struct {
	Name      string  `json:"name"`
	Help      string  `json:"help,omitempty"`
	Objective float64 `json:"objective"`
	// Stale marks burn rates computed over windows containing stale data
	// (unreachable backends' last-known snapshots, or a ring that stopped
	// advancing) — consumers must not treat them as live.
	Stale   bool        `json:"stale,omitempty"`
	Windows []SLOWindow `json:"windows"`
}

// windowLabel renders a duration the way dashboards write windows:
// "5m", "1h", "90s" — not time.Duration's "5m0s".
func windowLabel(d time.Duration) string {
	if d >= time.Hour && d%time.Hour == 0 {
		return fmt.Sprintf("%dh", d/time.Hour)
	}
	if d >= time.Minute && d%time.Minute == 0 {
		return fmt.Sprintf("%dm", d/time.Minute)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

// EvalSLOs evaluates every spec against the ring's current contents.
// Windows the ring cannot cover yet evaluate over what is there (Seconds
// says how much); an empty or single-point ring yields zeroed windows so
// the metric set stays stable from the first scrape.
func EvalSLOs(h *History, specs []SLOSpec) []SLOStatus {
	out := make([]SLOStatus, 0, len(specs))
	for _, spec := range specs {
		windows := spec.Windows
		if len(windows) == 0 {
			windows = DefaultSLOWindows()
		}
		st := SLOStatus{
			Name:      spec.Name,
			Help:      spec.Help,
			Objective: spec.Objective,
		}
		for _, d := range windows {
			sw := SLOWindow{Window: windowLabel(d)}
			if w, ok := h.Window(d); ok {
				sw.Seconds = w.Actual.Seconds()
				sw.Good, sw.Total = spec.goodTotal(w)
				if w.Stale {
					st.Stale = true
				}
				if sw.Total > 0 {
					sw.ErrorRate = (sw.Total - sw.Good) / sw.Total
					if budget := 1 - spec.Objective; budget > 0 {
						sw.BurnRate = sw.ErrorRate / budget
					}
				}
			}
			st.Windows = append(st.Windows, sw)
		}
		out = append(out, st)
	}
	return out
}

// goodTotal extracts one window's good/total counts per the spec's mode.
func (spec SLOSpec) goodTotal(w WindowStats) (good, total float64) {
	if spec.Histogram != "" {
		hs, ok := w.Hist(spec.Histogram)
		if !ok || hs.Count == 0 {
			return 0, 0
		}
		total = float64(hs.Count)
		good = hs.CountAtOrBelow(spec.ThresholdSeconds)
		if good > total {
			good = total
		}
		return good, total
	}
	total = w.Deltas[spec.Total]
	bad := w.Deltas[spec.Bad]
	if bad > total {
		bad = total
	}
	return total - bad, total
}

// WriteSLOProm renders SLO evaluations as Prometheus text series:
//
//	episim_slo_objective{slo="..."}
//	episim_slo_error_rate{slo="...",window="5m"}
//	episim_slo_burn_rate{slo="...",window="5m"}
//	episim_slo_stale{slo="..."}
//
// Every family always renders for every SLO (zeros while the ring is
// young), so scrapes and alert rules see a stable series set.
func WriteSLOProm(w io.Writer, sts []SLOStatus) {
	if len(sts) == 0 {
		return
	}
	fmt.Fprint(w, "# HELP episim_slo_objective The SLO's target success ratio.\n# TYPE episim_slo_objective gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "episim_slo_objective{slo=%q} %s\n", st.Name, formatFloat(st.Objective))
	}
	fmt.Fprint(w, "# HELP episim_slo_error_rate Fraction of the window's events that violated the SLO.\n# TYPE episim_slo_error_rate gauge\n")
	for _, st := range sts {
		for _, sw := range st.Windows {
			fmt.Fprintf(w, "episim_slo_error_rate{slo=%q,window=%q} %s\n", st.Name, sw.Window, formatFloat(sw.ErrorRate))
		}
	}
	fmt.Fprint(w, "# HELP episim_slo_burn_rate Error-budget burn rate over the window (1.0 = burning exactly the budget).\n# TYPE episim_slo_burn_rate gauge\n")
	for _, st := range sts {
		for _, sw := range st.Windows {
			fmt.Fprintf(w, "episim_slo_burn_rate{slo=%q,window=%q} %s\n", st.Name, sw.Window, formatFloat(sw.BurnRate))
		}
	}
	fmt.Fprint(w, "# HELP episim_slo_stale 1 when the SLO's windows include stale (last-known) data.\n# TYPE episim_slo_stale gauge\n")
	for _, st := range sts {
		v := 0
		if st.Stale {
			v = 1
		}
		fmt.Fprintf(w, "episim_slo_stale{slo=%q} %d\n", st.Name, v)
	}
}

// MaxBurn returns the status's highest burn rate across windows.
func (st SLOStatus) MaxBurn() float64 {
	max := 0.0
	for _, sw := range st.Windows {
		if sw.BurnRate > max {
			max = sw.BurnRate
		}
	}
	return max
}

// Burn returns the burn rate for one window label (0 when absent).
func (st SLOStatus) Burn(window string) float64 {
	for _, sw := range st.Windows {
		if sw.Window == window {
			return sw.BurnRate
		}
	}
	return 0
}
