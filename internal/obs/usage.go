package obs

import (
	"sort"
	"sync"
	"time"
)

// ClientUsage is one client's resource consumption as a set of monotonic
// counters — the unit of per-tenant accounting served at /v1/usage.
// Clients are keyed by the X-Episim-Client identity (the same key
// gateway admission throttles on), so quota decisions and usage bills
// name the same tenant.
type ClientUsage struct {
	Client string `json:"client"`
	// Submissions counts accepted sweeps; Cells finalized cells;
	// SimSeconds the summed wall time of their replicate simulations —
	// the closest thing to "compute consumed".
	Submissions int64   `json:"submissions"`
	Cells       int64   `json:"cells"`
	SimSeconds  float64 `json:"sim_seconds"`
	// CacheHits counts placement/population builds this client's sweeps
	// needed that were served from cache instead of being rebuilt.
	CacheHits int64 `json:"cache_hits"`
	// StreamedBytes counts event-stream payload bytes delivered to this
	// client's subscriptions.
	StreamedBytes int64     `json:"streamed_bytes"`
	LastActive    time.Time `json:"last_active"`
}

// add folds d's counters into u (Client and LastActive handled by the
// ledger).
func (u *ClientUsage) add(d ClientUsage) {
	u.Submissions += d.Submissions
	u.Cells += d.Cells
	u.SimSeconds += d.SimSeconds
	u.CacheHits += d.CacheHits
	u.StreamedBytes += d.StreamedBytes
}

// usageOverflow is the ledger's catch-all client once the per-client map
// hits its cardinality bound: X-Episim-Client is client-chosen, so an
// abuser minting fresh identities must not grow daemon memory without
// bound — excess identities aggregate here instead of being dropped.
const usageOverflow = "_overflow"

// maxUsageClients bounds distinct tracked identities per ledger.
const maxUsageClients = 4096

// UsageLedger accumulates per-client usage. All methods are safe for
// concurrent use and nil-safe no-ops, so instrumented paths need no
// guards.
type UsageLedger struct {
	mu      sync.Mutex
	clients map[string]*ClientUsage
}

// NewUsageLedger builds an empty ledger.
func NewUsageLedger() *UsageLedger {
	return &UsageLedger{clients: map[string]*ClientUsage{}}
}

// Add folds a usage delta into client's row, creating it on first use
// (or under the overflow row past the cardinality bound).
func (l *UsageLedger) Add(client string, d ClientUsage) {
	if l == nil {
		return
	}
	if client == "" {
		client = "unknown"
	}
	l.mu.Lock()
	u, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxUsageClients {
			client = usageOverflow
			u = l.clients[client]
		}
		if u == nil {
			u = &ClientUsage{Client: client}
			l.clients[client] = u
		}
	}
	u.add(d)
	u.LastActive = time.Now()
	l.mu.Unlock()
}

// Snapshot copies every row, sorted by SimSeconds descending then client
// name — biggest consumers first, ties stable.
func (l *UsageLedger) Snapshot() []ClientUsage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]ClientUsage, 0, len(l.clients))
	for _, u := range l.clients {
		out = append(out, *u)
	}
	l.mu.Unlock()
	sortUsage(out)
	return out
}

func sortUsage(rows []ClientUsage) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SimSeconds != rows[j].SimSeconds {
			return rows[i].SimSeconds > rows[j].SimSeconds
		}
		return rows[i].Client < rows[j].Client
	})
}

// MergeUsage folds batch into acc by client key (the gateway aggregates
// backend ledgers this way), returning the merged set re-sorted.
func MergeUsage(acc []ClientUsage, batch []ClientUsage) []ClientUsage {
	byClient := make(map[string]int, len(acc))
	for i, u := range acc {
		byClient[u.Client] = i
	}
	for _, u := range batch {
		if i, ok := byClient[u.Client]; ok {
			acc[i].add(u)
			if u.LastActive.After(acc[i].LastActive) {
				acc[i].LastActive = u.LastActive
			}
			continue
		}
		byClient[u.Client] = len(acc)
		acc = append(acc, u)
	}
	sortUsage(acc)
	return acc
}
