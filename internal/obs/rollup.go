package obs

// StageTotal aggregates every span of one stage name: how many times
// the stage ran and the total seconds it consumed. Stages overlap (sim
// spans run under the run span), so totals are per-stage accounting,
// not a partition of wall clock.
type StageTotal struct {
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// RollupStages reduces a span list to per-stage totals keyed by span
// name — the component breakdown consumed by the bench harness
// (placement_build vs sim vs aggregate seconds) and the trace CLI.
func RollupStages(spans []Span) map[string]StageTotal {
	out := make(map[string]StageTotal, 8)
	for _, sp := range spans {
		st := out[sp.Name]
		st.Count++
		st.Seconds += sp.Seconds
		out[sp.Name] = st
	}
	return out
}

// StageOrder returns the stage names of spans in first-appearance
// order — the stable presentation order for rollup tables (spans are
// already start-ordered in a Snapshot, so this is execution order).
func StageOrder(spans []Span) []string {
	seen := make(map[string]bool, 8)
	var names []string
	for _, sp := range spans {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			names = append(names, sp.Name)
		}
	}
	return names
}
