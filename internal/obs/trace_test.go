package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSanitizeTraceID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"t-123", "t-123"},
		{"abc.DEF_9", "abc.DEF_9"},
		{"", ""},
		{"has space", ""},
		{"crlf\r\ninjection", ""}, // header injection must not survive
		{"semi;colon", ""},
		{strings.Repeat("a", 65), ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
	} {
		if got := SanitizeTraceID(tc.in); got != tc.want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 || SanitizeTraceID(id) != id {
			t.Fatalf("bad trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Add("x", "", time.Now(), time.Now())
	tl.Start("y", "")()
	tl.SetObserver(func(Span) {})
	if id := tl.TraceID(); id != "" {
		t.Errorf("nil timeline trace id %q", id)
	}
	if spans, dropped := tl.Snapshot(); spans != nil || dropped != 0 {
		t.Error("nil timeline snapshot not empty")
	}
}

func TestTimelineRecordsAndOrders(t *testing.T) {
	tl := NewTimeline("t-1")
	base := time.Now()
	tl.Add("second", "", base.Add(time.Second), base.Add(2*time.Second))
	tl.Add("first", "d", base, base.Add(time.Second))
	spans, dropped := tl.Snapshot()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("spans=%d dropped=%d", len(spans), dropped)
	}
	if spans[0].Name != "first" || spans[1].Name != "second" {
		t.Errorf("spans not start-ordered: %v then %v", spans[0].Name, spans[1].Name)
	}
	if spans[0].Seconds != 1 {
		t.Errorf("seconds = %g, want 1", spans[0].Seconds)
	}
	if tl.TraceID() != "t-1" {
		t.Errorf("trace id %q", tl.TraceID())
	}
}

// TestTimelineObserverAndCap: past the retention cap, spans still reach
// the observer (histograms stay exact) but are counted dropped.
func TestTimelineObserverAndCap(t *testing.T) {
	tl := NewTimeline("t-2")
	observed := 0
	tl.SetObserver(func(Span) { observed++ })
	now := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		tl.Add("s", "", now, now)
	}
	spans, dropped := tl.Snapshot()
	if len(spans) != maxSpans {
		t.Errorf("retained %d spans, want %d", len(spans), maxSpans)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
	if observed != maxSpans+10 {
		t.Errorf("observer saw %d spans, want %d", observed, maxSpans+10)
	}
}

// TestTimelineClose: closing detaches the observer (and refuses a new
// one) while spans keep recording — terminal jobs stay traceable
// without feeding service histograms.
func TestTimelineClose(t *testing.T) {
	var nilTL *Timeline
	nilTL.Close() // nil-safe
	if nilTL.Closed() {
		t.Fatal("nil timeline reports closed")
	}

	tl := NewTimeline("t-close")
	observed := 0
	tl.SetObserver(func(Span) { observed++ })
	now := time.Now()
	tl.Add("a", "", now, now)
	tl.Close()
	tl.Close() // idempotent
	if !tl.Closed() {
		t.Fatal("timeline not closed")
	}
	tl.Add("b", "", now, now)
	tl.SetObserver(func(Span) { observed += 100 }) // must not re-arm
	tl.Add("c", "", now, now)
	if observed != 1 {
		t.Fatalf("observer saw %d spans after close, want 1", observed)
	}
	if spans, _ := tl.Snapshot(); len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3 (spans still record after close)", len(spans))
	}
}

func TestRollupStages(t *testing.T) {
	base := time.Now()
	spans := []Span{
		{Name: "sim", Seconds: 1.5, Start: base},
		{Name: "placement_build", Seconds: 2, Start: base.Add(time.Second)},
		{Name: "sim", Seconds: 0.5, Start: base.Add(2 * time.Second)},
	}
	agg := RollupStages(spans)
	if got := agg["sim"]; got.Count != 2 || got.Seconds != 2 {
		t.Fatalf("sim rollup = %+v", got)
	}
	if got := agg["placement_build"]; got.Count != 1 || got.Seconds != 2 {
		t.Fatalf("placement_build rollup = %+v", got)
	}
	if order := StageOrder(spans); len(order) != 2 || order[0] != "sim" || order[1] != "placement_build" {
		t.Fatalf("stage order = %v", order)
	}
	if agg := RollupStages(nil); len(agg) != 0 {
		t.Fatalf("empty rollup = %v", agg)
	}
}

func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline("t-3")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tl.Start("work", "")()
			}
		}()
	}
	wg.Wait()
	spans, _ := tl.Snapshot()
	if len(spans) != 800 {
		t.Fatalf("got %d spans, want 800", len(spans))
	}
}
