package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// Logger is a leveled, structured logger writing one line per event:
// "<component>: msg key=val ..." in text mode (the daemons' historical
// stderr shape, plus fields), or a single JSON object in json mode.
// A trace field correlates log lines with a job's trace id. Methods are
// nil-safe no-ops, so optional logging needs no guards.
type Logger struct {
	mu        *sync.Mutex
	w         io.Writer
	jsonMode  bool
	level     Level
	component string
	fields    []kv
	now       func() time.Time
}

type kv struct {
	k string
	v any
}

// NewLogger builds a logger for component writing to w. format is
// "text" or "json"; anything else falls back to text.
func NewLogger(w io.Writer, format string, level Level, component string) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{
		mu:        &sync.Mutex{},
		w:         w,
		jsonMode:  strings.EqualFold(format, "json"),
		level:     level,
		component: component,
		now:       time.Now,
	}
}

// With returns a child logger with fields bound to every line (keys and
// values alternate: With("trace", id, "job", jid)).
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.fields = append(append([]kv(nil), l.fields...), pairs(kvs)...)
	return &child
}

func pairs(kvs []any) []kv {
	out := make([]kv, 0, len(kvs)/2)
	for i := 0; i+1 < len(kvs); i += 2 {
		k, ok := kvs[i].(string)
		if !ok {
			k = fmt.Sprint(kvs[i])
		}
		out = append(out, kv{k: k, v: kvs[i+1]})
	}
	return out
}

func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }
func (l *Logger) Info(msg string, kvs ...any)  { l.log(LevelInfo, msg, kvs) }
func (l *Logger) Warn(msg string, kvs ...any)  { l.log(LevelWarn, msg, kvs) }
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

func (l *Logger) log(lvl Level, msg string, kvs []any) {
	if l == nil || lvl < l.level {
		return
	}
	fields := append(append([]kv(nil), l.fields...), pairs(kvs)...)
	var line []byte
	if l.jsonMode {
		obj := map[string]any{
			"ts":    l.now().UTC().Format(time.RFC3339Nano),
			"level": lvl.String(),
			"msg":   msg,
		}
		if l.component != "" {
			obj["component"] = l.component
		}
		for _, f := range fields {
			if _, taken := obj[f.k]; taken {
				continue // reserved keys win; a field named "msg" must not clobber the message
			}
			obj[f.k] = jsonSafe(f.v)
		}
		b, err := json.Marshal(obj)
		if err != nil {
			// Map keys are sorted by encoding/json, and jsonSafe below
			// stringifies anything non-marshalable, so this is unreachable;
			// degrade to text rather than drop the event if it ever fires.
			b = []byte(fmt.Sprintf("{%q:%q}", "msg", msg))
		}
		line = append(b, '\n')
	} else {
		var sb strings.Builder
		if l.component != "" {
			sb.WriteString(l.component)
			sb.WriteString(": ")
		}
		if lvl != LevelInfo {
			sb.WriteString(strings.ToUpper(lvl.String()))
			sb.WriteString(" ")
		}
		sb.WriteString(msg)
		for _, f := range fields {
			fmt.Fprintf(&sb, " %s=%s", f.k, textValue(f.v))
		}
		sb.WriteString("\n")
		line = []byte(sb.String())
	}
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// jsonSafe passes marshalable values through and stringifies the rest
// (errors, in particular, marshal to {} otherwise).
func jsonSafe(v any) any {
	switch t := v.(type) {
	case error:
		return t.Error()
	case fmt.Stringer:
		return t.String()
	}
	if _, err := json.Marshal(v); err != nil {
		return fmt.Sprint(v)
	}
	return v
}

// textValue renders one field value for text mode, quoting anything
// with spaces so lines stay machine-splittable.
func textValue(v any) string {
	s := fmt.Sprint(jsonSafe(v))
	if strings.ContainsAny(s, " \t\n\"") {
		return fmt.Sprintf("%q", s)
	}
	if s == "" {
		return `""`
	}
	return s
}
