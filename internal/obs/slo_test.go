package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func availPoint(at time.Time, total, bad float64) HistoryPoint {
	return HistoryPoint{Time: at, Scalars: map[string]float64{
		"submit_total": total, "submit_errors": bad,
	}}
}

func TestEvalSLOAvailabilityBurn(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	h.Append(availPoint(base, 0, 0))
	h.Append(availPoint(base.Add(time.Minute), 100, 2)) // 2% errors

	specs := []SLOSpec{{
		Name: "submit-availability", Objective: 0.99,
		Total: "submit_total", Bad: "submit_errors",
		Windows: []time.Duration{5 * time.Minute},
	}}
	sts := EvalSLOs(h, specs)
	if len(sts) != 1 || len(sts[0].Windows) != 1 {
		t.Fatalf("unexpected shape: %+v", sts)
	}
	sw := sts[0].Windows[0]
	if sw.Total != 100 || sw.Good != 98 {
		t.Fatalf("good/total = %v/%v, want 98/100", sw.Good, sw.Total)
	}
	if math.Abs(sw.ErrorRate-0.02) > 1e-12 {
		t.Fatalf("error rate = %v, want 0.02", sw.ErrorRate)
	}
	// budget = 1-0.99 = 0.01; burn = 0.02/0.01 = 2
	if math.Abs(sw.BurnRate-2) > 1e-9 {
		t.Fatalf("burn = %v, want 2", sw.BurnRate)
	}
	if sts[0].Stale {
		t.Fatal("live windows must not be stale")
	}
}

func TestEvalSLOLatencyMode(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	mk := func(at time.Time, counts []uint64) HistoryPoint {
		s := HistogramSnapshot{Name: "queue_wait", Bounds: []float64{0.1, 1, 10}, Counts: counts}
		for _, c := range counts {
			s.Count += c
		}
		return HistoryPoint{Time: at, Scalars: map[string]float64{}, Hists: []HistogramSnapshot{s}}
	}
	h.Append(mk(base, []uint64{0, 0, 0, 0}))
	// 8 waits ≤ 0.1s, 2 waits in (1,10]: threshold 1s → 8 good of 10.
	h.Append(mk(base.Add(time.Minute), []uint64{8, 0, 2, 0}))

	sts := EvalSLOs(h, []SLOSpec{{
		Name: "queue-wait", Objective: 0.9,
		Histogram: "queue_wait", ThresholdSeconds: 1,
		Windows: []time.Duration{5 * time.Minute},
	}})
	sw := sts[0].Windows[0]
	if sw.Total != 10 || sw.Good != 8 {
		t.Fatalf("good/total = %v/%v, want 8/10", sw.Good, sw.Total)
	}
	// error 0.2, budget 0.1 → burn 2
	if math.Abs(sw.BurnRate-2) > 1e-9 {
		t.Fatalf("burn = %v, want 2", sw.BurnRate)
	}
}

func TestEvalSLOEmptyRingStableZeroes(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	sts := EvalSLOs(h, []SLOSpec{{Name: "x", Objective: 0.99, Total: "t", Bad: "b"}})
	if len(sts) != 1 || len(sts[0].Windows) != 2 {
		t.Fatalf("want default 2 windows, got %+v", sts)
	}
	for _, sw := range sts[0].Windows {
		if sw.BurnRate != 0 || sw.ErrorRate != 0 {
			t.Fatalf("empty ring must evaluate to zeros: %+v", sw)
		}
	}
}

func TestEvalSLOStalePropagates(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	h.Append(availPoint(base, 0, 0))
	p := availPoint(base.Add(time.Second), 10, 0)
	p.Stale = true
	h.Append(p)
	sts := EvalSLOs(h, []SLOSpec{{Name: "x", Objective: 0.99, Total: "submit_total", Bad: "submit_errors"}})
	if !sts[0].Stale {
		t.Fatal("stale window data must mark the SLO stale")
	}
}

func TestWriteSLOPromShape(t *testing.T) {
	sts := []SLOStatus{{
		Name: "submit-availability", Objective: 0.99, Stale: true,
		Windows: []SLOWindow{
			{Window: "5m", ErrorRate: 0.5, BurnRate: 50},
			{Window: "1h", ErrorRate: 0.1, BurnRate: 10},
		},
	}}
	var b strings.Builder
	WriteSLOProm(&b, sts)
	out := b.String()
	for _, want := range []string{
		"# TYPE episim_slo_objective gauge",
		`episim_slo_objective{slo="submit-availability"} 0.99`,
		`episim_slo_burn_rate{slo="submit-availability",window="5m"} 50`,
		`episim_slo_burn_rate{slo="submit-availability",window="1h"} 10`,
		`episim_slo_error_rate{slo="submit-availability",window="5m"} 0.5`,
		`episim_slo_stale{slo="submit-availability"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSLOStatusHelpers(t *testing.T) {
	st := SLOStatus{Windows: []SLOWindow{{Window: "5m", BurnRate: 3}, {Window: "1h", BurnRate: 7}}}
	if st.MaxBurn() != 7 {
		t.Fatalf("MaxBurn = %v, want 7", st.MaxBurn())
	}
	if st.Burn("5m") != 3 || st.Burn("2h") != 0 {
		t.Fatalf("Burn lookups wrong: %v %v", st.Burn("5m"), st.Burn("2h"))
	}
	if windowLabel(5*time.Minute) != "5m" || windowLabel(time.Hour) != "1h" || windowLabel(90*time.Second) != "90s" {
		t.Fatal("windowLabel formatting drifted")
	}
}
