package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// DebugHandler serves the opt-in profiling surface behind -pprof-addr:
// the full net/http/pprof suite under /debug/pprof/ plus a plain-text
// runtime metrics page at /debug/runtime. It is a separate handler (and
// in the daemons a separate listener) on purpose — profiling endpoints
// leak internals and can stall the world, so they never share the
// service port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteRuntimeMetrics(w)
	})
	return mux
}

// ServeDebug starts the profiling listener on addr ("" = disabled,
// returns nil). The returned server is already serving; callers Close it
// on shutdown. Errors binding the port are returned so a daemon with a
// mistyped -pprof-addr fails loudly at boot instead of silently
// profiling nothing.
func ServeDebug(addr string, log *Logger) (*http.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv := &http.Server{Addr: addr, Handler: DebugHandler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	log.Info("pprof listening", "addr", addr)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("pprof server failed", "err", err)
		}
	}()
	return srv, nil
}

// WriteRuntimeMetrics renders process-level gauges in Prometheus text
// format: goroutines, GC activity, heap, and (on Linux) resident set
// size from /proc. Appended to /metrics by both daemons so every scrape
// carries runtime context alongside service counters.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(w, "go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	writeCounter(w, "go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	writeCounter(w, "go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", float64(ms.PauseTotalNs)/1e9)
	writeGauge(w, "go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	writeGauge(w, "go_memstats_sys_bytes", "Bytes obtained from the OS.", float64(ms.Sys))
	if rss, ok := ResidentBytes(); ok {
		writeGauge(w, "process_resident_memory_bytes", "Resident set size.", float64(rss))
	} else {
		// /proc is absent (non-Linux): publish the Go-heap proxy under a
		// DISTINCT name. HeapSys is not an RSS — impersonating
		// process_resident_memory_bytes would poison cross-platform
		// dashboards, while omitting memory entirely blinds them.
		writeGauge(w, "process_memory_goheap_fallback_bytes",
			"Go heap reserved from the OS (HeapSys); RSS fallback where /proc is unavailable.",
			float64(ms.HeapSys))
	}
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, formatFloat(v))
}

func writeCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
		name, help, name, name, formatFloat(v))
}
