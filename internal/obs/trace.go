package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader carries a submission's trace id end to end: client →
// episim-gw → episimd. Clients may supply their own id; the gateway (or
// a directly-addressed daemon) generates one when absent, and every
// reply echoes the header so callers always learn the id in effect.
const TraceHeader = "X-Episim-Trace-Id"

// maxTraceIDLen bounds accepted trace ids; longer client-supplied ids
// are rejected (a fresh id is generated) rather than truncated, so two
// distinct long ids never alias.
const maxTraceIDLen = 64

// NewTraceID returns a fresh 16-hex-char trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; trace ids
		// only need uniqueness, so fall back to the clock.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID validates a client-supplied trace id: hostname-safe
// characters only (it travels in headers, log lines and JSON), bounded
// length. Anything else returns "" — callers then generate a fresh id
// instead of propagating junk.
func SanitizeTraceID(s string) string {
	if s == "" || len(s) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return s
}

// Span is one named, timed stage of a job's lifecycle.
type Span struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	// Start/End are wall-clock; Seconds is End-Start, precomputed so
	// consumers (and the trace CLI) never re-derive it.
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Seconds float64   `json:"seconds"`
}

// maxSpans bounds one timeline's retained spans: a 10k-cell sweep must
// not hold 100k sim spans in memory per job. Past the cap, spans are
// counted as dropped (and still fed to the observer, so histograms stay
// exact) but not retained.
const maxSpans = 4096

// Timeline records a job's spans. All methods are nil-safe no-ops so
// instrumented code paths need no "is tracing on" guards; the executor
// simply threads whatever timeline it was handed (possibly nil).
type Timeline struct {
	mu       sync.Mutex
	traceID  string
	spans    []Span
	dropped  int
	observer func(Span)
	closed   bool
}

// NewTimeline builds a timeline stamped with traceID.
func NewTimeline(traceID string) *Timeline {
	return &Timeline{traceID: traceID}
}

// SetObserver registers a hook invoked for every recorded span — the
// server feeds its latency histograms from spans this way, so timeline
// and histograms can never disagree. Set it before the timeline is
// shared with worker goroutines.
func (t *Timeline) SetObserver(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.closed {
		t.observer = fn
	}
	t.mu.Unlock()
}

// Close detaches the timeline's observer: the job reached a terminal
// state, so no later span — stragglers from in-flight replicates, or a
// duplicate cancel path — may feed service histograms again. Spans are
// still RECORDED after close (a straggler is real work worth seeing in
// the trace), they just stop being observed. Idempotent and nil-safe.
func (t *Timeline) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = nil
	t.closed = true
	t.mu.Unlock()
}

// Closed reports whether Close has been called (false for nil).
func (t *Timeline) Closed() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// TraceID returns the timeline's trace id ("" for nil).
func (t *Timeline) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Add records one completed span.
func (t *Timeline) Add(name, detail string, start, end time.Time) {
	if t == nil {
		return
	}
	sp := Span{
		Name:    name,
		Detail:  detail,
		Start:   start,
		End:     end,
		Seconds: end.Sub(start).Seconds(),
	}
	t.mu.Lock()
	obs := t.observer
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if obs != nil {
		obs(sp)
	}
}

// Start opens a span now and returns the closure that ends it.
func (t *Timeline) Start(name, detail string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(name, detail, start, time.Now()) }
}

// Dropped reports how many spans fell past the retention cap — a cheap
// accessor (no span copy) for the daemon's drop counter.
func (t *Timeline) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies the recorded spans, ordered by start time, plus the
// count of spans dropped past the retention cap.
func (t *Timeline) Snapshot() (spans []Span, dropped int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	spans = append([]Span(nil), t.spans...)
	dropped = t.dropped
	t.mu.Unlock()
	for i := 1; i < len(spans); i++ {
		// Spans arrive roughly start-ordered (insertion sort is near
		// O(n)); concurrent workers interleave, so normalize here once
		// rather than sorting on every Add.
		for j := i; j > 0 && spans[j].Start.Before(spans[j-1].Start); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	return spans, dropped
}
