package obs

import (
	"sync"
	"time"
)

// HistoryPoint is one self-snapshot of a process's metric families: every
// scalar counter/gauge by name plus the histogram snapshots, stamped with
// the collection time. Points are what the metrics history ring retains
// and what GET /v1/metrics/history serves — windowed rates and deltas
// are derived by subtracting two points, never by scraping externally.
type HistoryPoint struct {
	Time    time.Time          `json:"time"`
	Scalars map[string]float64 `json:"scalars"`
	// Hists carries the cumulative histogram snapshots at collection
	// time; Window subtracts bucket-wise to recover the distribution of
	// only the observations inside the window.
	Hists []HistogramSnapshot `json:"histograms,omitempty"`
	// Stale marks a point assembled from data known to be old — the
	// gateway sets it when any backend contribution was a last-known
	// snapshot rather than a live read. SLO evaluations over a window
	// containing stale points are themselves marked stale.
	Stale bool `json:"stale,omitempty"`
}

// History is a fixed-size in-process time-series ring: it snapshots the
// owner's metric families on an interval and serves windowed deltas.
// It is the SLO engine's only data source — burn rates come from this
// ring, not from an external scraper, so a daemon is fully observable
// with nothing but curl.
type History struct {
	mu       sync.Mutex
	points   []HistoryPoint // ring storage, len == size once full
	head     int            // next write slot
	n        int            // points retained (≤ size)
	size     int
	interval time.Duration
	collect  func() HistoryPoint
	onAppend func(HistoryPoint)

	stop chan struct{}
	done chan struct{}
}

// NewHistory builds a ring retaining size points, collecting one every
// interval once Start is called. collect must be safe to call from the
// ring's goroutine. Size defaults to enough points to cover an hour at
// the given interval (bounded to [16, 4096]); interval defaults to 5s.
func NewHistory(size int, interval time.Duration, collect func() HistoryPoint) *History {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if size <= 0 {
		size = int(time.Hour/interval) + 1
		if size < 16 {
			size = 16
		}
		if size > 4096 {
			size = 4096
		}
	}
	return &History{
		size:     size,
		interval: interval,
		collect:  collect,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the ring's collection cadence.
func (h *History) Interval() time.Duration { return h.interval }

// OnAppend registers a hook invoked (synchronously, off the caller's
// path, on the ring goroutine) after every appended point — the SLO
// evaluator and the profiling watchdog hang off it. Set before Start.
func (h *History) OnAppend(fn func(HistoryPoint)) {
	h.mu.Lock()
	h.onAppend = fn
	h.mu.Unlock()
}

// Start launches the collection loop: one point immediately, then one
// per interval until Stop.
func (h *History) Start() {
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			h.Append(h.collect())
			select {
			case <-t.C:
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop halts the collection loop and waits for it to exit. Idempotent.
func (h *History) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
		<-h.done
	}
}

// Append records one point (the loop's path; tests and gateway-side
// collectors may call it directly on a ring that was never Started).
func (h *History) Append(p HistoryPoint) {
	h.mu.Lock()
	if h.points == nil {
		h.points = make([]HistoryPoint, h.size)
	}
	h.points[h.head] = p
	h.head = (h.head + 1) % h.size
	if h.n < h.size {
		h.n++
	}
	fn := h.onAppend
	h.mu.Unlock()
	if fn != nil {
		fn(p)
	}
}

// Snapshot copies the retained points oldest-first, keeping only those
// at or after since (zero time = everything).
func (h *History) Snapshot(since time.Time) []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryPoint, 0, h.n)
	for i := 0; i < h.n; i++ {
		p := h.points[(h.head-h.n+i+h.size)%h.size]
		if since.IsZero() || !p.Time.Before(since) {
			out = append(out, p)
		}
	}
	return out
}

// Len reports how many points the ring currently retains.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Latest returns the most recent point (ok=false on an empty ring).
func (h *History) Latest() (HistoryPoint, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return HistoryPoint{}, false
	}
	return h.points[(h.head-1+h.size)%h.size], true
}

// WindowStats is the delta between the ring's newest point and the
// oldest point inside a trailing window: how much each counter moved,
// at what rate, and the histogram of only the window's observations.
type WindowStats struct {
	// From/To are the two compared points' times; Actual is their span —
	// shorter than the requested window while the ring is young.
	From   time.Time     `json:"from"`
	To     time.Time     `json:"to"`
	Actual time.Duration `json:"actual_ns"`
	// Deltas are per-scalar increases, clamped at 0 (a counter reset —
	// process restart feeding one ring — must not produce negative
	// deltas); Rates divide by Actual seconds.
	Deltas map[string]float64 `json:"deltas,omitempty"`
	Rates  map[string]float64 `json:"rates,omitempty"`
	// Hists are per-family bucket deltas (same clamping).
	Hists []HistogramSnapshot `json:"histograms,omitempty"`
	// Stale marks a window whose delta endpoints (base or newest point)
	// are stale, or a ring that stopped advancing — old burn rates must
	// say so rather than impersonate live ones. Interior stale points
	// don't flag the window: deltas only read the endpoints, and base
	// selection prefers non-stale points.
	Stale bool `json:"stale,omitempty"`
}

// Window computes the trailing-window delta ending at the newest point.
// ok is false until the ring holds at least two points.
func (h *History) Window(d time.Duration) (WindowStats, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < 2 {
		return WindowStats{}, false
	}
	newest := h.points[(h.head-1+h.size)%h.size]
	cutoff := newest.Time.Add(-d)
	// Base is the oldest point still inside the window, preferring
	// non-stale ones: deltas are computed between the two endpoints, so
	// only endpoint staleness corrupts them — skipping past a stale
	// leading point (e.g. a gateway's boot tick before its first
	// successful probe round) keeps the rest of the window live instead
	// of flagging it for the window's whole span.
	base := newest
	haveFresh := false
	for i := 1; i < h.n; i++ {
		p := h.points[(h.head-1-i+h.size)%h.size]
		if p.Time.Before(cutoff) {
			break
		}
		if !p.Stale {
			base = p
			haveFresh = true
		} else if !haveFresh {
			base = p
		}
	}
	if !base.Time.Before(newest.Time) {
		// Everything else fell outside the window: fall back to the
		// immediately preceding point so short windows on a sparse ring
		// still yield a delta instead of nothing.
		base = h.points[(h.head-2+h.size)%h.size]
	}
	stale := newest.Stale || base.Stale
	// A ring that stopped advancing (collector wedged, backend gone)
	// serves old data: flag it once the newest point is clearly past due.
	if h.interval > 0 && time.Since(newest.Time) > 3*h.interval+time.Second {
		stale = true
	}
	w := WindowStats{
		From:   base.Time,
		To:     newest.Time,
		Actual: newest.Time.Sub(base.Time),
		Deltas: make(map[string]float64, len(newest.Scalars)),
		Rates:  make(map[string]float64, len(newest.Scalars)),
		Stale:  stale,
	}
	secs := w.Actual.Seconds()
	for k, v := range newest.Scalars {
		delta := v - base.Scalars[k]
		if delta < 0 {
			delta = 0
		}
		w.Deltas[k] = delta
		if secs > 0 {
			w.Rates[k] = delta / secs
		}
	}
	for _, cur := range newest.Hists {
		diff := cur
		diff.Bounds = append([]float64(nil), cur.Bounds...)
		diff.Counts = append([]uint64(nil), cur.Counts...)
		for _, old := range base.Hists {
			if old.Name != cur.Name || old.LabelValue != cur.LabelValue ||
				len(old.Counts) != len(cur.Counts) {
				continue
			}
			for i := range diff.Counts {
				if old.Counts[i] <= diff.Counts[i] {
					diff.Counts[i] -= old.Counts[i]
				} else {
					diff.Counts[i] = 0
				}
			}
			if old.Count <= diff.Count {
				diff.Count -= old.Count
			} else {
				diff.Count = 0
			}
			if old.Sum <= diff.Sum {
				diff.Sum -= old.Sum
			} else {
				diff.Sum = 0
			}
			break
		}
		w.Hists = append(w.Hists, diff)
	}
	return w, true
}

// Hist returns the window's delta snapshot for one family (ok=false when
// the family never appeared).
func (w WindowStats) Hist(name string) (HistogramSnapshot, bool) {
	for _, s := range w.Hists {
		if s.Name == name {
			return s, true
		}
	}
	return HistogramSnapshot{}, false
}
