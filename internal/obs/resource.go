package obs

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Memory-source names, reported alongside every sampled value so a
// number is never read without knowing what it measures: the real
// resident set (Linux /proc), or the Go heap's OS reservation — the
// best portable proxy when /proc is absent. The two are NOT comparable,
// which is why the fallback is published under a distinct metric name
// instead of silently impersonating RSS.
const (
	MemSourceProc   = "proc_statm"
	MemSourceGoHeap = "go_heap_sys"
)

// readResidentBytes is swapped by tests to exercise the fallback path
// on machines that do have /proc.
var readResidentBytes = procResidentBytes

// ResidentBytes reports the process's resident set size read from
// /proc/self/statm. ok is false where /proc is unavailable (non-Linux)
// or unparsable — callers then either omit the value or fall back to
// MemoryUsage's Go-heap proxy, never report a lying zero.
func ResidentBytes() (bytes int64, ok bool) {
	return readResidentBytes()
}

// procResidentBytes reads field 2 (resident pages) of /proc/self/statm.
func procResidentBytes() (int64, bool) {
	f, err := os.Open("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	line, err := bufio.NewReader(f).ReadString('\n')
	if err != nil && line == "" {
		return 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}

// MemoryUsage returns the best available process-memory reading and the
// source it came from: the true RSS (MemSourceProc) where /proc exists,
// runtime.MemStats.HeapSys (MemSourceGoHeap) everywhere else. The
// fallback undercounts non-heap memory (stacks, mmapped artifacts,
// runtime overhead), so consumers must carry the source label through.
func MemoryUsage() (bytes int64, source string) {
	if rss, ok := ResidentBytes(); ok {
		return rss, MemSourceProc
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapSys), MemSourceGoHeap
}

// ResourcePeak is what a sampler saw over its lifetime.
type ResourcePeak struct {
	// PeakBytes is the maximum memory reading observed (see Source).
	PeakBytes int64 `json:"peak_bytes"`
	// Source names what PeakBytes measures: MemSourceProc (true RSS) or
	// MemSourceGoHeap (portable fallback).
	Source string `json:"source"`
	// Samples counts readings taken, including the ones at Start and
	// Stop — so even a sub-interval run reports a real peak.
	Samples int `json:"samples"`
}

// ResourceSampler tracks peak process memory over a measured region by
// polling in a background goroutine — the bench harness's instrument
// for "how big did this cell get", since a single before/after pair
// misses the transient peak of placement construction entirely.
type ResourceSampler struct {
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu   sync.Mutex
	peak ResourcePeak
}

// StartResourceSampler begins sampling every interval (≤0 defaults to
// 10ms). Call Stop to end sampling and collect the peak; one final
// sample is taken at Stop so the closing state is always observed.
func StartResourceSampler(interval time.Duration) *ResourceSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s := &ResourceSampler{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *ResourceSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample()
		case <-s.stop:
			return
		}
	}
}

func (s *ResourceSampler) sample() {
	bytes, source := MemoryUsage()
	s.mu.Lock()
	s.peak.Samples++
	s.peak.Source = source
	if bytes > s.peak.PeakBytes {
		s.peak.PeakBytes = bytes
	}
	s.mu.Unlock()
}

// Stop ends sampling, takes a final reading, and returns the peak.
// Stop is idempotent only in the sense that it must be called exactly
// once per sampler; samplers are cheap one-shot instruments.
func (s *ResourceSampler) Stop() ResourcePeak {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}
