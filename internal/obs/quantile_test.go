package obs

import (
	"math"
	"testing"
)

// Golden quantile cases: a fixed bucket layout with known counts, and
// the exact values linear interpolation must produce. These pin the
// estimator's arithmetic (the SLO engine and episim-top both consume
// it), so a refactor that shifts interpolation by even one bucket fails
// loudly.
func TestHistogramSnapshotQuantileGolden(t *testing.T) {
	s := HistogramSnapshot{
		Name:   "g",
		Bounds: []float64{0.1, 0.5, 1, 5},
		// per-bucket: 10 in (0,0.1], 20 in (0.1,0.5], 40 in (0.5,1],
		// 20 in (1,5], 10 in (5,+Inf] — 100 total.
		Counts: []uint64{10, 20, 40, 20, 10},
		Count:  100,
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.05, 0.05},  // rank 5 inside the first bucket: 0 + (0.1-0)*5/10
		{0.10, 0.1},   // exactly the first bound
		{0.30, 0.5},   // rank 30 = cumulative end of second bucket
		{0.50, 0.75},  // rank 50: 0.5 + (1-0.5)*20/40
		{0.70, 1.0},   // rank 70 = end of third bucket
		{0.80, 3.0},   // rank 80: 1 + (5-1)*10/20
		{0.95, 5.0},   // rank 95 lands in +Inf: clamp to last finite bound
		{1.00, 5.0},   // everything past the finite bounds clamps
		{0.001, 0.001}, // tiny p: rank 0.1 → 0 + 0.1*(0.1/10)
	}
	for _, c := range cases {
		got := s.Quantile(c.p)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty snapshot must return NaN")
	}
	var nilHist *Histogram
	if !math.IsNaN(nilHist.Quantile(0.5)) {
		t.Fatal("nil histogram must return NaN")
	}
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 4, 0}, Count: 4}
	// All mass in (1,2]: any p interpolates inside it.
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("mid-bucket quantile = %v, want 1.5", got)
	}
	// Out-of-range p clamps rather than extrapolating.
	if got := s.Quantile(-1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("p<0 clamps to minimum: got %v", got)
	}
	if got := s.Quantile(2); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("p>1 clamps to maximum: got %v", got)
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Fatal("NaN p must return NaN")
	}
}

func TestHistogramLiveQuantile(t *testing.T) {
	h := NewHistogram("q", "", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // third bucket
	}
	// p99: rank 99 of 100 → inside (10,100]: 10 + 90*(99-90)/10 = 91.
	if got := h.Quantile(0.99); math.Abs(got-91) > 1e-9 {
		t.Fatalf("live p99 = %v, want 91", got)
	}
}

func TestCountAtOrBelowGolden(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{0.1, 0.5, 1},
		Counts: []uint64{10, 20, 40, 30}, // 30 in +Inf
		Count:  100,
	}
	cases := []struct{ v, want float64 }{
		{0.1, 10},
		{0.3, 20},  // 10 + 20*(0.3-0.1)/(0.5-0.1)
		{0.5, 30},
		{0.75, 50}, // 30 + 40*(0.75-0.5)/(1-0.5)
		{1, 70},
		{100, 70}, // past every finite bound: +Inf mass stays above
		{0, 0},
	}
	for _, c := range cases {
		if got := s.CountAtOrBelow(c.v); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CountAtOrBelow(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}
