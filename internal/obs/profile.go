package obs

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"
)

// Triggered profiling: the watchdog wants a CPU+heap profile of the bad
// moment itself — when burn rate or queue depth crosses threshold —
// without requiring anyone to be attached to -pprof-addr at the time.
// These helpers capture in-process into memory; the server persists the
// bytes as artifacts so the evidence outlives the incident.

// CaptureCPUProfile records a CPU profile for d (clamped to [100ms, 30s])
// and returns the pprof bytes. It fails when CPU profiling is already
// active — e.g. someone IS attached to the pprof listener — rather than
// fighting over the singleton profiler.
func CaptureCPUProfile(d time.Duration) ([]byte, error) {
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// CaptureHeapProfile returns the current heap profile (pprof bytes),
// after a GC so the numbers reflect live objects, matching what
// /debug/pprof/heap?gc=1 would serve.
func CaptureHeapProfile() ([]byte, error) {
	runtime.GC()
	p := pprof.Lookup("heap")
	if p == nil {
		return nil, fmt.Errorf("heap profile unavailable")
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil, fmt.Errorf("heap profile: %w", err)
	}
	return buf.Bytes(), nil
}
