package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLoggerTextFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "text", LevelInfo, "episimd")
	l.now = func() time.Time { return time.Unix(0, 0) }
	l.Info("backend healthy", "backend", "node-0", "err", errors.New("boom boom"))
	l.Debug("suppressed")
	l.Warn("watch out")
	got := sb.String()
	want := "episimd: backend healthy backend=node-0 err=\"boom boom\"\nepisimd: WARN watch out\n"
	if got != want {
		t.Errorf("text log:\ngot  %q\nwant %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "json", LevelDebug, "episim-gw")
	l.With("trace", "t-9").Info("routed", "backend", "node-1")
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, sb.String())
	}
	for k, want := range map[string]string{
		"level": "info", "msg": "routed", "component": "episim-gw",
		"trace": "t-9", "backend": "node-1",
	} {
		if obj[k] != want {
			t.Errorf("%s = %v, want %s", k, obj[k], want)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, obj["ts"].(string)); err != nil {
		t.Errorf("ts not RFC3339: %v", obj["ts"])
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("must not panic")
	l.With("k", "v").Error("still fine")
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bogus level accepted")
	}
}
