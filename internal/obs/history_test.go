package obs

import (
	"testing"
	"time"
)

// mkPoint builds a point at a fixed offset from base with one scalar and
// one histogram family.
func mkPoint(base time.Time, offset time.Duration, total float64, histCounts []uint64) HistoryPoint {
	h := HistogramSnapshot{
		Name:   "lat",
		Bounds: []float64{0.1, 1, 10},
		Counts: append([]uint64(nil), histCounts...),
	}
	for _, c := range histCounts {
		h.Count += c
	}
	return HistoryPoint{
		Time:    base.Add(offset),
		Scalars: map[string]float64{"total": total},
		Hists:   []HistogramSnapshot{h},
	}
}

func TestHistoryWindowDeltasAndRates(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	h.Append(mkPoint(base, 0, 10, []uint64{1, 0, 0, 0}))
	h.Append(mkPoint(base, 10*time.Second, 30, []uint64{3, 2, 0, 0}))

	w, ok := h.Window(time.Minute)
	if !ok {
		t.Fatal("window not available with two points")
	}
	if got := w.Deltas["total"]; got != 20 {
		t.Fatalf("delta = %v, want 20", got)
	}
	if got := w.Rates["total"]; got != 2 {
		t.Fatalf("rate = %v, want 2/s", got)
	}
	hs, ok := w.Hist("lat")
	if !ok {
		t.Fatal("histogram family missing from window")
	}
	if hs.Counts[0] != 2 || hs.Counts[1] != 2 || hs.Count != 4 {
		t.Fatalf("hist delta = %v (count %d), want [2 2 0 0] count 4", hs.Counts, hs.Count)
	}
}

func TestHistoryWindowClampsCounterResets(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	h.Append(mkPoint(base, 0, 100, []uint64{9, 0, 0, 0}))
	h.Append(mkPoint(base, 5*time.Second, 3, []uint64{1, 0, 0, 0})) // restart: counters reset
	w, ok := h.Window(time.Minute)
	if !ok {
		t.Fatal("window unavailable")
	}
	if got := w.Deltas["total"]; got != 0 {
		t.Fatalf("reset delta = %v, want clamped 0", got)
	}
	hs, _ := w.Hist("lat")
	if hs.Counts[0] != 0 || hs.Count != 0 {
		t.Fatalf("reset hist delta = %v count %d, want zeros", hs.Counts, hs.Count)
	}
}

func TestHistoryRingEvictsOldest(t *testing.T) {
	h := NewHistory(3, time.Second, nil)
	base := time.Now()
	for i := 0; i < 5; i++ {
		h.Append(mkPoint(base, time.Duration(i)*time.Second, float64(i), []uint64{0, 0, 0, 0}))
	}
	if h.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", h.Len())
	}
	pts := h.Snapshot(time.Time{})
	if len(pts) != 3 || pts[0].Scalars["total"] != 2 || pts[2].Scalars["total"] != 4 {
		t.Fatalf("ring contents wrong: %+v", pts)
	}
	// Window wider than the ring: base falls back to the oldest retained.
	w, ok := h.Window(time.Hour)
	if !ok || w.Deltas["total"] != 2 {
		t.Fatalf("window over full ring: delta %v, want 2", w.Deltas["total"])
	}
}

func TestHistoryWindowNarrow(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now().Add(-20 * time.Second)
	h.Append(mkPoint(base, 0, 0, []uint64{0, 0, 0, 0}))
	h.Append(mkPoint(base, 10*time.Second, 10, []uint64{0, 0, 0, 0}))
	h.Append(mkPoint(base, 20*time.Second, 15, []uint64{0, 0, 0, 0}))
	// A 5s window covers only the newest point; the fallback compares
	// against the immediately preceding one.
	w, ok := h.Window(5 * time.Second)
	if !ok {
		t.Fatal("narrow window unavailable")
	}
	if w.Deltas["total"] != 5 {
		t.Fatalf("narrow delta = %v, want 5", w.Deltas["total"])
	}
}

func TestHistoryStaleMarking(t *testing.T) {
	h := NewHistory(8, time.Second, nil)
	base := time.Now()
	h.Append(mkPoint(base, 0, 0, nil))
	p := mkPoint(base, time.Second, 5, nil)
	p.Stale = true
	h.Append(p)
	w, _ := h.Window(time.Minute)
	if !w.Stale {
		t.Fatal("window over a stale point must be stale")
	}

	// A ring whose newest point is long past due is stale even when the
	// points themselves were live.
	h2 := NewHistory(8, 100*time.Millisecond, nil)
	old := time.Now().Add(-time.Minute)
	h2.Append(mkPoint(old, 0, 0, nil))
	h2.Append(mkPoint(old, time.Second, 5, nil))
	w2, _ := h2.Window(time.Minute)
	if !w2.Stale {
		t.Fatal("wedged ring must report stale windows")
	}
}

func TestHistoryCollectLoop(t *testing.T) {
	n := 0
	h := NewHistory(16, 10*time.Millisecond, func() HistoryPoint {
		n++
		return HistoryPoint{Time: time.Now(), Scalars: map[string]float64{"n": float64(n)}}
	})
	got := make(chan HistoryPoint, 16)
	h.OnAppend(func(p HistoryPoint) {
		select {
		case got <- p:
		default:
		}
	})
	h.Start()
	defer h.Stop()
	deadline := time.After(2 * time.Second)
	for seen := 0; seen < 3; seen++ {
		select {
		case <-got:
		case <-deadline:
			t.Fatal("collection loop produced fewer than 3 points in 2s")
		}
	}
	if h.Len() < 3 {
		t.Fatalf("ring len = %d, want >= 3", h.Len())
	}
}
