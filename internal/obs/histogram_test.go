package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-inclusive bucketing contract
// at the edges: a value exactly on a bound lands in that bound's bucket
// (Prometheus semantics), just past it lands in the next, and anything
// beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("test_seconds", "t", []float64{0.1, 1, 10})
	for _, v := range []float64{
		0,      // below first bound → bucket 0
		0.1,    // exactly on a bound → that bucket (le is inclusive)
		0.1001, // just past → next bucket
		1,      // exactly on the middle bound
		10,     // exactly on the last bound
		10.001, // past the last bound → +Inf
		1e9,    // far past → +Inf
	} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2} // per-bucket: le=0.1, le=1, le=10, +Inf
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum < 1e9 || s.Sum > 1e9+22 {
		t.Errorf("sum = %g out of expected range", s.Sum)
	}
}

func TestHistogramNaNIgnoredAndNilSafe(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	h := NewHistogram("x", "", []float64{1})
	nan := 0.0
	h.Observe(nan / nan)
	if got := h.Snapshot().Count; got != 0 {
		t.Errorf("NaN was counted: count=%d", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; run under -race this is the lock-cheapness proof, and the
// final count/sum must be exact regardless.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("conc_seconds", "t", nil)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%100) / 100.0)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
	// Sum of 0.00..0.99 per 100 observations = 49.5; exact because the
	// CAS loop loses no updates.
	want := float64(workers) * perWorker / 100 * 49.5
	if diff := s.Sum - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
}

// TestHistogramPromRendering is the golden test for the exposition
// format: HELP/TYPE header, cumulative buckets ending at +Inf, _sum and
// _count.
func TestHistogramPromRendering(t *testing.T) {
	h := NewHistogram("episimd_test_seconds", "Test latency.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(99)
	var sb strings.Builder
	WriteHistogramsProm(&sb, []HistogramSnapshot{h.Snapshot()})
	want := `# HELP episimd_test_seconds Test latency.
# TYPE episimd_test_seconds histogram
episimd_test_seconds_bucket{le="0.5"} 2
episimd_test_seconds_bucket{le="2"} 3
episimd_test_seconds_bucket{le="+Inf"} 4
episimd_test_seconds_sum 100.2
episimd_test_seconds_count 4
`
	if sb.String() != want {
		t.Errorf("rendering mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramVecRendering pins labelled output: one family header,
// children adjacent, label before le.
func TestHistogramVecRendering(t *testing.T) {
	v := NewHistogramVec("gw_proxy_seconds", "Proxy RTT.", "backend", []float64{1})
	v.With("node-1").Observe(0.5)
	v.With("node-0").Observe(2)
	var sb strings.Builder
	WriteHistogramsProm(&sb, v.Snapshots())
	want := `# HELP gw_proxy_seconds Proxy RTT.
# TYPE gw_proxy_seconds histogram
gw_proxy_seconds_bucket{backend="node-0",le="1"} 0
gw_proxy_seconds_bucket{backend="node-0",le="+Inf"} 1
gw_proxy_seconds_sum{backend="node-0"} 2
gw_proxy_seconds_count{backend="node-0"} 1
gw_proxy_seconds_bucket{backend="node-1",le="1"} 1
gw_proxy_seconds_bucket{backend="node-1",le="+Inf"} 1
gw_proxy_seconds_sum{backend="node-1"} 0.5
gw_proxy_seconds_count{backend="node-1"} 1
`
	if sb.String() != want {
		t.Errorf("vec rendering mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestMergeSnapshots proves gateway-side aggregation: same-name
// snapshots add bucket-wise, distinct label values stay separate, and
// mismatched layouts refuse to merge.
func TestMergeSnapshots(t *testing.T) {
	a := NewHistogram("m_seconds", "h", []float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b := NewHistogram("m_seconds", "h", []float64{1, 10})
	b.Observe(0.5)
	b.Observe(50)
	merged := MergeSnapshots(nil, []HistogramSnapshot{a.Snapshot()})
	merged = MergeSnapshots(merged, []HistogramSnapshot{b.Snapshot()})
	if len(merged) != 1 {
		t.Fatalf("got %d families, want 1", len(merged))
	}
	m := merged[0]
	if m.Count != 4 || m.Counts[0] != 2 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Errorf("merged counts wrong: %+v", m)
	}
	if m.Sum != 56 {
		t.Errorf("merged sum = %g, want 56", m.Sum)
	}

	bad := HistogramSnapshot{Name: "m_seconds", Bounds: []float64{2}, Counts: []uint64{1, 0}}
	if err := m.Merge(bad); err == nil {
		t.Error("mismatched layouts merged without error")
	}

	// Distinct label values never merge into one series.
	l1 := HistogramSnapshot{Name: "v", Label: "backend", LabelValue: "a", Bounds: []float64{1}, Counts: []uint64{1, 0}, Count: 1}
	l2 := HistogramSnapshot{Name: "v", Label: "backend", LabelValue: "b", Bounds: []float64{1}, Counts: []uint64{1, 0}, Count: 1}
	out := MergeSnapshots(nil, []HistogramSnapshot{l1, l2})
	if len(out) != 2 {
		t.Fatalf("labelled series collapsed: %d families", len(out))
	}
}

func TestDefaultBucketsAscending(t *testing.T) {
	b := DefaultLatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("default buckets not ascending at %d: %v", i, b)
		}
	}
}
