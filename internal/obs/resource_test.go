package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestResidentBytesOnProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc only on linux")
	}
	rss, ok := ResidentBytes()
	if !ok {
		t.Fatal("ResidentBytes not ok on linux")
	}
	if rss <= 0 {
		t.Fatalf("rss = %d, want > 0", rss)
	}
}

func TestMemoryUsageFallsBackToGoHeap(t *testing.T) {
	orig := readResidentBytes
	readResidentBytes = func() (int64, bool) { return 0, false }
	defer func() { readResidentBytes = orig }()

	bytes, source := MemoryUsage()
	if source != MemSourceGoHeap {
		t.Fatalf("source = %q, want %q", source, MemSourceGoHeap)
	}
	if bytes <= 0 {
		t.Fatalf("fallback bytes = %d, want > 0", bytes)
	}
}

func TestResourceSamplerPeak(t *testing.T) {
	s := StartResourceSampler(time.Millisecond)
	// Allocate something visible so the peak is not degenerate.
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	time.Sleep(10 * time.Millisecond)
	peak := s.Stop()
	runtime.KeepAlive(buf)
	if peak.PeakBytes <= 0 {
		t.Fatalf("peak = %d, want > 0", peak.PeakBytes)
	}
	if peak.Samples < 2 {
		t.Fatalf("samples = %d, want >= 2 (start + stop)", peak.Samples)
	}
	if peak.Source != MemSourceProc && peak.Source != MemSourceGoHeap {
		t.Fatalf("unknown source %q", peak.Source)
	}
}

// The fallback metric must appear under its own name, never as
// process_resident_memory_bytes, when /proc is unavailable.
func TestRuntimeMetricsFallbackName(t *testing.T) {
	orig := readResidentBytes
	readResidentBytes = func() (int64, bool) { return 0, false }
	defer func() { readResidentBytes = orig }()

	var sb strings.Builder
	WriteRuntimeMetrics(&sb)
	out := sb.String()
	if strings.Contains(out, "process_resident_memory_bytes") {
		t.Fatal("fallback impersonates process_resident_memory_bytes")
	}
	if !strings.Contains(out, "process_memory_goheap_fallback_bytes") {
		t.Fatalf("fallback metric missing:\n%s", out)
	}

	readResidentBytes = orig
	if runtime.GOOS == "linux" {
		sb.Reset()
		WriteRuntimeMetrics(&sb)
		if !strings.Contains(sb.String(), "process_resident_memory_bytes") {
			t.Fatal("real RSS metric missing on linux")
		}
	}
}
