package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestUsageLedgerAccumulatesAndSorts(t *testing.T) {
	l := NewUsageLedger()
	l.Add("alice", ClientUsage{Submissions: 1, Cells: 4, SimSeconds: 2})
	l.Add("bob", ClientUsage{Submissions: 1, SimSeconds: 9})
	l.Add("alice", ClientUsage{Cells: 6, SimSeconds: 3, StreamedBytes: 100})

	rows := l.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Client != "bob" { // biggest sim-seconds first
		t.Fatalf("sort order wrong: %+v", rows)
	}
	a := rows[1]
	if a.Submissions != 1 || a.Cells != 10 || a.SimSeconds != 5 || a.StreamedBytes != 100 {
		t.Fatalf("alice row wrong: %+v", a)
	}
	if a.LastActive.IsZero() {
		t.Fatal("LastActive not stamped")
	}
}

func TestUsageLedgerNilAndEmptyKeySafe(t *testing.T) {
	var l *UsageLedger
	l.Add("x", ClientUsage{Submissions: 1}) // must not panic
	if l.Snapshot() != nil {
		t.Fatal("nil ledger snapshot must be nil")
	}
	l2 := NewUsageLedger()
	l2.Add("", ClientUsage{Submissions: 1})
	rows := l2.Snapshot()
	if len(rows) != 1 || rows[0].Client != "unknown" {
		t.Fatalf("empty key must land under unknown: %+v", rows)
	}
}

func TestUsageLedgerCardinalityBound(t *testing.T) {
	l := NewUsageLedger()
	for i := 0; i < maxUsageClients+50; i++ {
		l.Add(fmt.Sprintf("c-%d", i), ClientUsage{Submissions: 1})
	}
	rows := l.Snapshot()
	if len(rows) > maxUsageClients+1 {
		t.Fatalf("ledger grew past bound: %d rows", len(rows))
	}
	var overflow *ClientUsage
	var total int64
	for i := range rows {
		total += rows[i].Submissions
		if rows[i].Client == usageOverflow {
			overflow = &rows[i]
		}
	}
	if overflow == nil || overflow.Submissions != 50 {
		t.Fatalf("overflow row missing or wrong: %+v", overflow)
	}
	if total != maxUsageClients+50 {
		t.Fatalf("submissions lost at the bound: %d", total)
	}
}

func TestMergeUsage(t *testing.T) {
	now := time.Now()
	a := []ClientUsage{
		{Client: "alice", Submissions: 2, SimSeconds: 5, LastActive: now.Add(-time.Hour)},
	}
	b := []ClientUsage{
		{Client: "alice", Submissions: 3, SimSeconds: 1, LastActive: now},
		{Client: "carol", SimSeconds: 100},
	}
	m := MergeUsage(a, b)
	if len(m) != 2 || m[0].Client != "carol" {
		t.Fatalf("merge shape wrong: %+v", m)
	}
	alice := m[1]
	if alice.Submissions != 5 || alice.SimSeconds != 6 {
		t.Fatalf("alice merged wrong: %+v", alice)
	}
	if !alice.LastActive.Equal(now) {
		t.Fatal("merge must keep the newest LastActive")
	}
}
