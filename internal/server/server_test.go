package server

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/client"
)

// scriptedRunner fabricates a sweep runner that emits one cell aggregate
// per `step` receive — tests pump the channel to control exactly when
// each cell finalizes — and honors cancellation between cells.
func scriptedRunner(step chan struct{}) sweepRunner {
	return func(ctx context.Context, spec *episim.SweepSpec, opts *episim.SweepOptions) (*episim.SweepResult, error) {
		cells := spec.Cells()
		res := &episim.SweepResult{
			Spec:             spec,
			PopulationBuilds: map[string]int{},
			PlacementBuilds:  map[string]int{},
			Simulations:      len(cells) * spec.Replicates,
		}
		for _, cell := range cells {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-step:
			}
			cr := episim.SweepCellResult{
				Index:      cell.Index,
				Label:      cell.Label(),
				Population: cell.Population.Label(),
				Replicates: spec.Replicates,
				Days:       spec.Days,
			}
			if opts.OnCell != nil {
				opts.OnCell(cr)
			}
			res.Cells = append(res.Cells, cr)
		}
		return res, nil
	}
}

// testSpec is a tiny 3-cell grid (1 pop × 1 placement × 3 scenarios).
func testServerSpec() *episim.SweepSpec {
	s := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "p", People: 100, Locations: 10}},
		Placements:  []episim.SweepPlacement{{Strategy: "RR", Ranks: 2}},
		Scenarios: []episim.SweepScenario{
			{Name: "s0"}, {Name: "s1"}, {Name: "s2"},
		},
		Replicates: 2,
		Days:       5,
		Seed:       3,
	}
	s.Normalize()
	return s
}

// newTestServer boots a scripted server + HTTP client pair.
func newTestServer(t *testing.T, cfg Config, run sweepRunner) (*Server, *client.Client) {
	t.Helper()
	srv, err := newWithRunner(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, client.New(ts.URL)
}

// collectStream runs client.Stream in a goroutine, forwarding events on
// a channel; the returned error channel yields Stream's result.
func collectStream(ctx context.Context, c *client.Client, id string, from int) (<-chan client.Event, <-chan error) {
	events := make(chan client.Event, 64)
	errc := make(chan error, 1)
	go func() {
		defer close(events)
		errc <- c.Stream(ctx, id, from, func(ev client.Event) error {
			events <- ev
			return nil
		})
	}()
	return events, errc
}

func waitEvent(t *testing.T, events <-chan client.Event) client.Event {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("event stream closed early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for stream event")
	}
	panic("unreachable")
}

// TestStreamsCellsBeforeSweepCompletes is the streaming acceptance test:
// a subscriber receives each cell aggregate the moment it finalizes,
// while the job is verifiably still running (the scripted runner cannot
// proceed to the next cell until the test says so).
func TestStreamsCellsBeforeSweepCompletes(t *testing.T) {
	step := make(chan struct{})
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, scriptedRunner(step))
	ctx := context.Background()

	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ack.Cells != 3 || ack.Simulations != 6 {
		t.Fatalf("ack = %+v, want 3 cells / 6 simulations", ack)
	}

	events, errc := collectStream(ctx, c, ack.ID, 0)

	step <- struct{}{} // finalize cell 0
	ev := waitEvent(t, events)
	if ev.Type != "cell" || ev.Cell == nil || ev.Cell.Index != 0 || ev.Seq != 0 {
		t.Fatalf("first event = %+v, want cell 0 seq 0", ev)
	}
	// The sweep is deterministically still mid-flight: the runner is
	// blocked before cell 1. The cell aggregate arrived anyway.
	if st, err := c.Status(ctx, ack.ID); err != nil || st.State != client.StateRunning || st.CellsDone != 1 {
		t.Fatalf("status after first cell = %+v err=%v, want running with 1 cell done", st, err)
	}

	step <- struct{}{}
	step <- struct{}{}
	if ev := waitEvent(t, events); ev.Type != "cell" || ev.Cell.Index != 1 {
		t.Fatalf("second event = %+v", ev)
	}
	if ev := waitEvent(t, events); ev.Type != "cell" || ev.Cell.Index != 2 {
		t.Fatalf("third event = %+v", ev)
	}
	fin := waitEvent(t, events)
	if fin.Type != "done" || fin.Job == nil || fin.Job.State != client.StateDone || fin.Job.CellsDone != 3 {
		t.Fatalf("terminal event = %+v, want done with 3 cells", fin)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	res, err := c.Result(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("result cells = %d, want 3", len(res.Cells))
	}
}

// TestSSEReplayOnReconnect: a subscriber that connects after completion
// replays the full stream from cell 0; a resumed subscriber (from=N)
// gets only the tail.
func TestSSEReplayOnReconnect(t *testing.T) {
	step := make(chan struct{}, 3)
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, scriptedRunner(step))
	ctx := context.Background()

	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	step <- struct{}{}
	step <- struct{}{} // run to completion unobserved
	waitTerminal(t, c, ack.ID)

	// Reconnect from cell 0: full replay, then the terminal event.
	var seqs []int
	var types []string
	if err := c.Stream(ctx, ack.ID, 0, func(ev client.Event) error {
		seqs = append(seqs, ev.Seq)
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[0] != 0 || seqs[3] != 3 ||
		types[0] != "cell" || types[3] != "done" {
		t.Fatalf("replay = seqs %v types %v, want cells 0..2 then done", seqs, types)
	}

	// Resume mid-stream: from=2 yields cell 2 and the terminal event only.
	var tail []int
	if err := c.Stream(ctx, ack.ID, 2, func(ev client.Event) error {
		tail = append(tail, ev.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0] != 2 || tail[1] != 3 {
		t.Fatalf("resumed tail = %v, want [2 3]", tail)
	}
}

// TestNDJSONStream: format=ndjson emits one event JSON per line.
func TestNDJSONStream(t *testing.T) {
	step := make(chan struct{}, 3)
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, scriptedRunner(step))
	ctx := context.Background()
	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	step <- struct{}{}
	step <- struct{}{}
	waitTerminal(t, c, ack.ID)

	resp, err := http.Get(c.BaseURL + "/v1/sweeps/" + ack.ID + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 4 {
		t.Fatalf("ndjson lines = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"cell"`) || !strings.Contains(lines[3], `"type":"done"`) {
		t.Fatalf("ndjson content unexpected: %v", lines)
	}
}

// TestCancelMidSweep: canceling a running sweep interrupts it between
// cells; subscribers get the cells that finalized plus a "canceled"
// terminal event, and the job lands in the canceled state.
func TestCancelMidSweep(t *testing.T) {
	step := make(chan struct{})
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, scriptedRunner(step))
	ctx := context.Background()

	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	events, errc := collectStream(ctx, c, ack.ID, 0)

	step <- struct{}{} // one cell finalizes
	if ev := waitEvent(t, events); ev.Type != "cell" {
		t.Fatalf("want a streamed cell first, got %+v", ev)
	}
	if err := c.Cancel(ctx, ack.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitEvent(t, events)
	if fin.Type != "canceled" || fin.Job == nil || fin.Job.State != client.StateCanceled {
		t.Fatalf("terminal event = %+v, want canceled", fin)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, ack.ID)
	if err != nil || st.State != client.StateCanceled || st.CellsDone != 1 {
		t.Fatalf("status = %+v err=%v, want canceled after 1 cell", st, err)
	}
	// A second cancel is a conflict.
	if err := c.Cancel(ctx, ack.ID); err == nil {
		t.Fatal("cancel of a terminal job must fail")
	}
}

// TestQueueingAndCancelWhileQueued: with one active slot, a second
// submission queues (visible in stats); canceling it while queued
// produces an immediate terminal event without it ever running.
func TestQueueingAndCancelWhileQueued(t *testing.T) {
	step := make(chan struct{})
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, scriptedRunner(step))
	ctx := context.Background()

	ackA, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until A is running (occupying the only slot).
	waitState(t, c, ackA.ID, client.StateRunning)

	ackB, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueueDepth != 1 || stats.ActiveSweeps != 1 || stats.SweepsTotal != 2 {
		t.Fatalf("stats = %+v, want 1 queued / 1 active / 2 total", stats)
	}

	if err := c.Cancel(ctx, ackB.ID); err != nil {
		t.Fatal(err)
	}
	var got []client.Event
	if err := c.Stream(ctx, ackB.ID, 0, func(ev client.Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != "canceled" {
		t.Fatalf("queued-cancel stream = %+v, want single canceled event", got)
	}

	// Drain A so Cleanup's Close doesn't race the runner.
	for i := 0; i < 3; i++ {
		step <- struct{}{}
	}
	waitTerminal(t, c, ackA.ID)

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != ackA.ID || list[1].ID != ackB.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestConcurrentSweepsShareOnePlacementBuild is the cache acceptance
// test against the REAL engine: two sweeps submitted back-to-back over
// the same (population, placement) run concurrently, and the daemon's
// process-lifetime cache builds the placement exactly once — proven by
// summing the per-run build accounting and by the cache counters.
func TestConcurrentSweepsShareOnePlacementBuild(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 4, MaxActive: 2}, episim.RunSweepContext)
	ctx := context.Background()

	spec := func(name string) *episim.SweepSpec {
		s := &episim.SweepSpec{
			Populations: []episim.SweepPopulation{{Name: "town", People: 400, Locations: 40}},
			Placements:  []episim.SweepPlacement{{Strategy: "GP", Ranks: 4}},
			Scenarios:   []episim.SweepScenario{{Name: name}},
			Replicates:  2,
			Days:        6,
			Seed:        11,
		}
		s.Normalize()
		return s
	}
	ackA, err := c.Submit(ctx, spec("a"))
	if err != nil {
		t.Fatal(err)
	}
	ackB, err := c.Submit(ctx, spec("b"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, c, ackA.ID)
	waitTerminal(t, c, ackB.ID)

	for _, id := range []string{ackA.ID, ackB.ID} {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateDone {
			t.Fatalf("job %s state = %s (%s)", id, st.State, st.Error)
		}
		res, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 1 {
			t.Fatalf("job %s returned %d cells, want 1", id, len(res.Cells))
		}
	}
	// The shared cache's own accounting is the proof: two sweeps, one
	// miss, one build (build maps are execution state, not wire data).
	if st := srv.cache.PlacementStats(); st.Misses != 1 || st.Builds != 1 {
		t.Fatalf("placement cache stats = %+v, want a single miss and build", st)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweepsDone != 2 || stats.CellsStreamed != 2 {
		t.Fatalf("stats = %+v, want 2 done sweeps / 2 streamed cells", stats)
	}
}

// TestSubmitValidation and the metrics endpoint.
func TestSubmitRejectsBadSpec(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1}, scriptedRunner(make(chan struct{})))
	resp, err := http.Post(c.BaseURL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if _, err := c.Status(context.Background(), "sw-999999"); err == nil {
		t.Fatal("unknown job must 404")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1}, scriptedRunner(make(chan struct{})))
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	body := sb.String()
	for _, want := range []string{
		"episimd_queue_depth ",
		"episimd_cells_streamed_total ",
		"episimd_placement_cache_hits_total ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func waitState(t *testing.T, c *client.Client, id string, want client.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal %s waiting for %s (%s)", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func waitTerminal(t *testing.T, c *client.Client, id string) client.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	panic("unreachable")
}
