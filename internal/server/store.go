// Package server implements episimd: a long-running HTTP service that
// accepts SweepSpec submissions, runs them on a shared bounded worker
// pool with a process-lifetime placement cache, and streams per-cell
// aggregates the moment each cell finalizes.
//
// The package splits four concerns across four files: the job store
// (this file) owns lifecycle state; the hub (hub.go) owns event fan-out
// with replay; the scheduler (scheduler.go) owns the queue, the runner
// pool and the sweep execution; the HTTP layer (server.go) owns the
// wire. The wire types live in repro/client so daemon and client cannot
// drift.
package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	episim "repro"
	"repro/client"
)

// job is one submitted sweep and its full lifecycle state. All fields
// after the immutable header are guarded by the owning store's mutex.
type job struct {
	id   string
	spec *episim.SweepSpec
	hub  *hub

	state     client.JobState
	errMsg    string
	cells     int
	cellsDone int
	created   time.Time
	started   time.Time
	finished  time.Time
	result    *episim.SweepResult
	// cancel aborts the run's context once the job is running; for
	// queued jobs cancellation happens by state alone.
	cancel context.CancelFunc
}

// store is the in-memory job registry. episimd is deliberately
// memory-resident (the ROADMAP's persistence item is placement spill,
// not job history): a restart forgets finished sweeps, and clients that
// need durability keep the streamed NDJSON.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
	now   func() time.Time
}

func newStore() *store {
	return &store{jobs: map[string]*job{}, now: time.Now}
}

// add registers a new queued job for spec (already normalized and
// validated) and returns it.
func (s *store) add(spec *episim.SweepSpec) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:      fmt.Sprintf("sw-%06d", s.seq),
		spec:    spec,
		hub:     newHub(),
		state:   client.StateQueued,
		cells:   len(spec.Cells()),
		created: s.now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j
}

func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// status snapshots one job under the store lock.
func (s *store) status(j *job) client.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *store) statusLocked(j *job) client.JobStatus {
	st := client.JobStatus{
		ID:         j.id,
		State:      j.state,
		Error:      j.errMsg,
		Cells:      j.cells,
		CellsDone:  j.cellsDone,
		Replicates: j.spec.Replicates,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// list snapshots every job, oldest first.
func (s *store) list() []client.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]client.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// result returns a finished job's aggregate (nil while running/queued).
func (s *store) result(j *job) (*episim.SweepResult, client.JobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.result, j.state
}

// counts tallies job states for the stats endpoint.
func (s *store) counts() (total, queued, running, done, failed, canceled int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		total++
		switch j.state {
		case client.StateQueued:
			queued++
		case client.StateRunning:
			running++
		case client.StateDone:
			done++
		case client.StateFailed:
			failed++
		case client.StateCanceled:
			canceled++
		}
	}
	return
}

// markRunning transitions a queued job to running and registers its
// cancel function; it reports false when the job was canceled while
// still queued (the runner then skips it).
func (s *store) markRunning(j *job, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != client.StateQueued {
		return false
	}
	j.state = client.StateRunning
	j.started = s.now()
	j.cancel = cancel
	return true
}

// incCellsDone counts one finalized (streamed or failed) cell.
func (s *store) incCellsDone(j *job) {
	s.mu.Lock()
	j.cellsDone++
	s.mu.Unlock()
}

// finish records a run's terminal state and (possibly partial) result,
// returning the final snapshot for the terminal event.
func (s *store) finish(j *job, state client.JobState, errMsg string, res *episim.SweepResult) client.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.result = res
	j.finished = s.now()
	j.cancel = nil
	return s.statusLocked(j)
}

// requestCancel moves a queued job straight to canceled (publishing the
// terminal event) or signals a running job's context; terminal jobs are
// left untouched. It reports whether the job was still cancelable.
func (s *store) requestCancel(j *job) bool {
	s.mu.Lock()
	switch j.state {
	case client.StateQueued:
		j.state = client.StateCanceled
		j.finished = s.now()
		st := s.statusLocked(j)
		s.mu.Unlock()
		j.hub.publish(client.Event{Type: "canceled", Job: &st})
		j.hub.close()
		return true
	case client.StateRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		s.mu.Unlock()
		return false
	}
}
