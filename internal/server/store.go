// Package server implements episimd: a long-running HTTP service that
// accepts SweepSpec submissions, runs them on a shared bounded worker
// pool with a process-lifetime placement cache, and streams per-cell
// aggregates the moment each cell finalizes.
//
// The package splits four concerns across four files: the job store
// (this file) owns lifecycle state; the hub (hub.go) owns event fan-out
// with replay; the scheduler (scheduler.go) owns the queue, the runner
// pool and the sweep execution; the HTTP layer (server.go) owns the
// wire. The wire types live in repro/client so daemon and client cannot
// drift.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// job is one submitted sweep and its full lifecycle state. All fields
// after the immutable header are guarded by the owning store's mutex.
type job struct {
	id  string
	hub *hub

	// spec is nil for jobs rehydrated from disk after a restart or
	// eviction (only their status and result survive; they are terminal,
	// so nothing needs the spec anymore). specVersion outlives the spec:
	// it rides the persisted status, so rehydrated jobs still report
	// what schema they were submitted as.
	spec        *episim.SweepSpec
	specVersion int
	replicates  int

	state     client.JobState
	errMsg    string
	cells     int
	cellsDone int
	created   time.Time
	started   time.Time
	finished  time.Time
	// traceID correlates the job across log lines, headers and the trace
	// endpoint; trace is its span timeline (nil for rehydrated jobs —
	// spans are in-memory only, the id survives via the job record).
	traceID string
	trace   *obs.Timeline
	// clientID attributes this job's cells, sim time and cache hits to
	// the submitting client in the usage ledger ("" for rehydrated jobs).
	clientID string
	// resultJSON is the result's canonical serialization, materialized
	// once at finish: it is what GET /result serves and what spills to
	// disk, so the bytes a client sees are identical before and after a
	// daemon restart.
	resultJSON []byte
	// archived marks a job whose payload lives (only) in the disk store.
	archived  bool
	hasResult bool
	// cancel aborts the run's context once the job is running; for
	// queued jobs cancellation happens by state alone.
	cancel context.CancelFunc
}

// A persisted job is framed as one line of status JSON followed by the
// result's canonical bytes, verbatim (not nested in JSON — marshalling
// a RawMessage would compact it, and GET /result must serve the exact
// bytes across restarts). The artifact envelope checksums the whole
// record.
func encodeJobRecord(st client.JobStatus, result []byte) ([]byte, error) {
	head, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return append(append(head, '\n'), result...), nil
}

func decodeJobRecord(payload []byte) (st client.JobStatus, result []byte, err error) {
	idx := bytes.IndexByte(payload, '\n')
	if idx < 0 {
		idx = len(payload)
	}
	if err := json.Unmarshal(payload[:idx], &st); err != nil {
		return st, nil, err
	}
	if idx < len(payload) {
		result = payload[idx+1:]
	}
	return st, result, nil
}

// store is the job registry: an in-memory index with an optional disk
// tier. Finished sweeps spill to the artifact store write-through; the
// memory index is bounded by a retention cap and TTL, and lookups that
// miss memory rehydrate from disk — so GET /result survives both
// eviction and a full daemon restart, while the daemon's footprint
// stays flat no matter how many sweeps it has served.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
	now   func() time.Time

	// results is the disk tier (nil = memory-only, the pre-persistence
	// behavior). retain caps terminal jobs in the memory index
	// (0 = unbounded); ttl evicts terminal jobs by age (0 = never).
	results *artifact.Store
	retain  int
	ttl     time.Duration
	evicted int64

	// log is the owning server's logger (set after construction; a
	// default keeps bare newStore() tests working).
	log *obs.Logger

	// usage is the owning server's per-client ledger (nil-safe; bare
	// newStore() tests run without one). The store attributes what only
	// it sees: finalized cells, cache hits counted at finish.
	usage *obs.UsageLedger
	// droppedSpans totals spans dropped past the per-job trace cap,
	// accumulated once per job at its terminal transition — the
	// episimd_trace_dropped_spans_total counter.
	droppedSpans atomic.Int64
}

func newStore() *store {
	return &store{jobs: map[string]*job{}, now: time.Now, log: defaultLogger()}
}

// newDurableStore builds a store spilling finished jobs to disk, then
// restores the index from whatever a previous process left there:
// statuses (not payloads) of the most recent `retain` finished sweeps
// re-enter the memory index, and the id sequence continues past every
// persisted job so restarted daemons never reuse an id.
func newDurableStore(results *artifact.Store, retain int, ttl time.Duration) *store {
	s := newStore()
	s.results = results
	s.retain = retain
	s.ttl = ttl
	s.restore()
	return s
}

// jobSeq parses the sequence number out of a job id ("sw-000042" → 42).
// Ids are zero-padded to 6 digits but may grow wider; parse the whole
// suffix so a daemon past sw-999999 never truncates (and reuses) ids.
func jobSeq(id string) (int, bool) {
	digits, ok := strings.CutPrefix(id, "sw-")
	if !ok || digits == "" {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// restore scans the disk store and rebuilds the memory index. Damaged
// records are skipped (their artifacts read as misses); the sequence
// counter advances past every key that parses, damaged or not.
func (s *store) restore() {
	keys, err := s.results.Keys()
	if err != nil {
		s.log.Error("restore failed", "err", err)
		return
	}
	type restored struct {
		seq int
		id  string
	}
	var found []restored
	for _, k := range keys {
		if k.Kind != artifact.KindJob {
			continue
		}
		n, ok := jobSeq(k.Key)
		if !ok {
			continue
		}
		if n > s.seq {
			s.seq = n
		}
		found = append(found, restored{seq: n, id: k.Key})
	}
	// Restore in sequence order (zero-padding makes key order match up
	// to sw-999999, but sort by parsed seq so wider ids stay correct),
	// keeping the most recent `retain` in the index. Older jobs stay
	// disk-only (addressable by id) and are NOT counted as evictions —
	// they were never in this process's memory.
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	if s.retain > 0 && len(found) > s.retain {
		found = found[len(found)-s.retain:]
	}
	// loadArchived reads each record whole (the envelope CRC covers the
	// full file, so a status-only partial read would be unverifiable);
	// the payload is dropped right away and the cost is bounded by
	// `retain` records, once, at boot.
	for _, r := range found {
		if j := s.loadArchived(r.id); j != nil {
			// Index entries hold no payload; GET /result re-reads disk.
			j.resultJSON = nil
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
		}
	}
}

// loadArchived reads one persisted job back as a terminal, archived job
// (nil when missing or damaged). Its hub replays a single terminal
// event, so /events on an archived job ends cleanly instead of hanging.
func (s *store) loadArchived(id string) *job {
	if s.results == nil {
		return nil
	}
	payload, err := s.results.Get(artifact.KindJob, id)
	if err != nil {
		return nil
	}
	st, result, err := decodeJobRecord(payload)
	if err != nil {
		return nil
	}
	j := &job{
		id:          id,
		hub:         newHub(),
		specVersion: st.SpecVersion,
		replicates:  st.Replicates,
		state:       st.State,
		errMsg:     st.Error,
		cells:      st.Cells,
		cellsDone:  st.CellsDone,
		created:    st.Created,
		traceID:    st.TraceID,
		archived:   true,
		hasResult:  len(result) > 0,
		resultJSON: result,
	}
	if st.Started != nil {
		j.started = *st.Started
	}
	if st.Finished != nil {
		j.finished = *st.Finished
	}
	j.hub.publish(client.Event{Type: terminalEventType(j.state), Job: &st})
	j.hub.close()
	return j
}

// terminalEventType maps a terminal state to its stream event type.
func terminalEventType(st client.JobState) string {
	switch st {
	case client.StateFailed:
		return "error"
	case client.StateCanceled:
		return "canceled"
	default:
		return "done"
	}
}

// add registers a new queued job for spec (already normalized and
// validated) and returns it, stamped with its trace id, timeline and
// submitting client.
func (s *store) add(spec *episim.SweepSpec, traceID string, trace *obs.Timeline, clientID string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	// restore() advanced seq past everything persisted, but an id can
	// still be occupied on disk — e.g. a rolling restart overlapping the
	// old process, which persisted jobs after this one scanned. Never
	// hand out an id whose artifact exists, or a later finish() would
	// overwrite someone else's result. (A cache dir still assumes a
	// single writer at a time; this guard covers the overlap window,
	// not sustained multi-daemon writes — scaled-out deployments give
	// each instance its own cache dir, with episim-gw routing by content
	// key so every instance's dir stays hot for its own keys.)
	for s.results != nil && s.results.Has(fmt.Sprintf("sw-%06d", s.seq)) {
		s.seq++
	}
	j := &job{
		id:          fmt.Sprintf("sw-%06d", s.seq),
		spec:        spec,
		specVersion: spec.Version(),
		replicates:  spec.Replicates,
		hub:         newHub(),
		state:      client.StateQueued,
		cells:      len(spec.Cells()),
		created:    s.now(),
		traceID:    traceID,
		trace:      trace,
		clientID:   clientID,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j
}

// get returns the job for id: from the memory index, or rehydrated
// read-only from the disk store when it was evicted (or the daemon
// restarted past its retention window). Rehydrated jobs are detached —
// they are not re-inserted, so eviction bounds hold.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		return j, true
	}
	if j := s.loadArchived(id); j != nil {
		return j, true
	}
	return nil, false
}

// status snapshots one job under the store lock.
func (s *store) status(j *job) client.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *store) statusLocked(j *job) client.JobStatus {
	st := client.JobStatus{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Cells:       j.cells,
		CellsDone:   j.cellsDone,
		Replicates:  j.replicates,
		Created:     j.created,
		TraceID:     j.traceID,
		SpecVersion: j.specVersion,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// list snapshots the memory index, oldest first. With retention
// configured the index — and therefore this listing — is bounded:
// active jobs plus at most `retain` finished ones, in creation order;
// older finished sweeps remain individually addressable by id via the
// disk store.
func (s *store) list() []client.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	out := make([]client.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// resultBytes returns a finished job's canonical result serialization
// (nil while running/queued or when the run produced nothing). Archived
// index entries hold no payload; they re-read the disk store on demand.
// A job that HAD a result whose artifact can no longer be read returns
// an error — that is a (possibly transient) server-side failure, not
// "the run produced nothing", and must not surface as a permanent 410.
func (s *store) resultBytes(j *job) ([]byte, client.JobState, error) {
	s.mu.Lock()
	raw, state, archived, hasResult := j.resultJSON, j.state, j.archived, j.hasResult
	s.mu.Unlock()
	if raw == nil && archived && hasResult {
		if full := s.loadArchived(j.id); full != nil {
			raw = full.resultJSON
		}
		if raw == nil {
			return nil, state, fmt.Errorf("result artifact for %s unreadable", j.id)
		}
	}
	return raw, state, nil
}

// countWaiting reports how many of ids are still non-terminal, checked
// against the MEMORY index only: queued/running jobs are never evicted,
// so an id absent from memory is terminal (canceled then evicted) — and
// the metrics scrape path must not pay a disk rehydration per stale id.
func (s *store) countWaiting(ids []string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
			n++
		}
	}
	return n
}

// counts tallies memory-index job states plus the eviction counter for
// the stats endpoint.
func (s *store) counts() (total, queued, running, done, failed, canceled int, evicted int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		total++
		switch j.state {
		case client.StateQueued:
			queued++
		case client.StateRunning:
			running++
		case client.StateDone:
			done++
		case client.StateFailed:
			failed++
		case client.StateCanceled:
			canceled++
		}
	}
	return total, queued, running, done, failed, canceled, s.evicted
}

// markRunning transitions a queued job to running and registers its
// cancel function; it reports false when the job was canceled while
// still queued (the runner then skips it).
func (s *store) markRunning(j *job, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != client.StateQueued {
		return false
	}
	j.state = client.StateRunning
	j.started = s.now()
	j.cancel = cancel
	return true
}

// incCellsDone counts one finalized (streamed or failed) cell, and
// bills it to the submitting client.
func (s *store) incCellsDone(j *job) {
	s.mu.Lock()
	j.cellsDone++
	clientID := j.clientID
	s.mu.Unlock()
	s.usage.Add(clientID, obs.ClientUsage{Cells: 1})
}

// finish records a run's terminal state and (possibly partial) result,
// spills the finished job to the disk store, and returns the final
// snapshot for the terminal event.
func (s *store) finish(j *job, state client.JobState, errMsg string, res *episim.SweepResult) client.JobStatus {
	var raw []byte
	if res != nil {
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err == nil {
			raw = buf.Bytes()
		}
	}
	s.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.resultJSON = raw
	j.hasResult = raw != nil
	j.finished = s.now()
	j.cancel = nil
	st := s.statusLocked(j)
	s.mu.Unlock()

	if s.results != nil {
		persistStart := time.Now()
		s.persist(st, raw)
		j.trace.Add("result_persist", "", persistStart, time.Now())
	}
	// Terminal bookkeeping for the SLO plane: spans dropped past the
	// per-job cap roll into the daemon counter exactly once (the timeline
	// is closed by the scheduler right after this returns, so the count
	// is final), and build-map entries with zero builds are content keys
	// this sweep needed that some cache tier already held — the client's
	// cache-hit credit.
	s.droppedSpans.Add(int64(j.trace.Dropped()))
	if res != nil && s.usage != nil {
		hits := int64(0)
		for _, n := range res.PopulationBuilds {
			if n == 0 {
				hits++
			}
		}
		for _, n := range res.PlacementBuilds {
			if n == 0 {
				hits++
			}
		}
		for _, n := range res.CheckpointBuilds {
			if n == 0 {
				hits++
			}
		}
		if hits > 0 {
			s.usage.Add(j.clientID, obs.ClientUsage{CacheHits: hits})
		}
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return st
}

// persist spills a terminal job's record to the disk store (no-op
// without one). Failures are logged, not fatal: the job stays servable
// from memory for its retention window.
func (s *store) persist(st client.JobStatus, raw []byte) {
	if s.results == nil {
		return
	}
	payload, err := encodeJobRecord(st, raw)
	if err == nil {
		err = s.results.Put(artifact.KindJob, st.ID, payload)
	}
	if err != nil {
		s.log.Error("persist failed", "job", st.ID, "trace", st.TraceID, "err", err)
	}
}

// evictLocked enforces the memory index's retention cap and TTL over
// terminal jobs (running/queued jobs are never evicted). Evicted jobs
// stay on disk — get() rehydrates them — so eviction trades memory for
// a disk read, never for data loss when a disk store is configured.
func (s *store) evictLocked() {
	if s.retain <= 0 && s.ttl <= 0 {
		return
	}
	now := s.now()
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.Terminal() {
			terminal++
		}
	}
	var keep []string
	for _, id := range s.order {
		j := s.jobs[id]
		drop := false
		if j.state.Terminal() {
			if s.ttl > 0 && !j.finished.IsZero() && now.Sub(j.finished) > s.ttl {
				drop = true
			}
			if !drop && s.retain > 0 && terminal > s.retain {
				drop = true // oldest terminal first: order is creation order
			}
			if drop {
				terminal--
			}
		}
		if drop {
			delete(s.jobs, id)
			s.evicted++
		} else {
			keep = append(keep, id)
		}
	}
	s.order = keep
}

// requestCancel moves a queued job straight to canceled (publishing the
// terminal event) or signals a running job's context; terminal jobs are
// left untouched. It reports whether the job was still cancelable.
func (s *store) requestCancel(j *job) bool {
	s.mu.Lock()
	switch j.state {
	case client.StateQueued:
		j.state = client.StateCanceled
		j.finished = s.now()
		st := s.statusLocked(j)
		s.mu.Unlock()
		// A job canceled while queued never reaches execute(), which is
		// where queue_wait and the terminal run span are normally
		// recorded — without these two Adds its timeline ends on the open
		// admission span and component rollups see an unterminated job.
		// queue_wait covers the real time spent waiting; the zero-length
		// run span is the terminal marker the coverage contract promises
		// (queue_wait + run spans created→finished exactly). The timeline
		// then closes so nothing feeds service histograms after terminal.
		j.trace.Add("queue_wait", "", j.created, j.finished)
		j.trace.Add("run", string(client.StateCanceled), j.finished, j.finished)
		j.trace.Close()
		// This terminal path bypasses finish(): settle the drop counter
		// here too (the count is final once the timeline closes).
		s.droppedSpans.Add(int64(j.trace.Dropped()))
		j.hub.publish(client.Event{Type: "canceled", Job: &st})
		j.hub.close()
		// Canceled-while-queued is terminal without passing through
		// finish(); persist here too, or eviction/restart would forget
		// the job ever existed.
		s.persist(st, nil)
		return true
	case client.StateRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		s.mu.Unlock()
		return false
	}
}
