package server

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/obs"
)

// spanUnionSeconds is the wall time covered by the union of the spans'
// intervals (spans nest and overlap, so they merge before summing).
func spanUnionSeconds(spans []client.TraceSpan) float64 {
	iv := make([][2]time.Time, 0, len(spans))
	for _, sp := range spans {
		if sp.End.After(sp.Start) {
			iv = append(iv, [2]time.Time{sp.Start, sp.End})
		}
	}
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a][0].Before(iv[b][0]) })
	var covered time.Duration
	curS, curE := iv[0][0], iv[0][1]
	for _, p := range iv[1:] {
		if p[0].After(curE) {
			covered += curE.Sub(curS)
			curS, curE = p[0], p[1]
			continue
		}
		if p[1].After(curE) {
			curE = p[1]
		}
	}
	covered += curE.Sub(curS)
	return covered.Seconds()
}

// TestTracePropagationAndCoverage is the tracing acceptance test against
// the real engine: a submission carrying X-Episim-Trace-Id yields a
// timeline stamped with that id, whose spans include every execution
// stage and whose union covers at least 95% of the job's wall clock.
func TestTracePropagationAndCoverage(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, episim.RunSweepContext)
	c.TraceID = "t-123"
	ack, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ack.TraceID != "t-123" {
		t.Fatalf("ack trace id = %q, want t-123", ack.TraceID)
	}
	st := waitTerminal(t, c, ack.ID)
	if st.State != client.StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.TraceID != "t-123" {
		t.Fatalf("status trace id = %q, want t-123", st.TraceID)
	}

	tr, err := c.Trace(context.Background(), ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "t-123" || tr.ID != ack.ID || tr.State != client.StateDone {
		t.Fatalf("trace header fields wrong: %+v", tr)
	}
	if tr.SpansDropped != 0 {
		t.Fatalf("%d spans dropped on a tiny sweep", tr.SpansDropped)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
		if sp.Seconds < 0 || sp.End.Before(sp.Start) {
			t.Fatalf("span %q has negative duration: %+v", sp.Name, sp)
		}
	}
	// The real engine must have traced every stage: builds (one unique
	// population and placement), one sim per replicate per cell, one
	// aggregation per cell, plus the scheduler's admission bracketing.
	spec := testServerSpec()
	cells := len(spec.Cells())
	for name, want := range map[string]int{
		"admission":        1,
		"queue_wait":       1,
		"run":              1,
		"population_build": 1,
		"placement_build":  1,
		"sim":              cells * spec.Replicates,
		"aggregate":        cells,
	} {
		if names[name] != want {
			t.Fatalf("span %q count = %d, want %d (spans: %v)", name, names[name], want, names)
		}
	}
	// Coverage contract: queue_wait + run tile created→finished exactly,
	// so the union must cover ≥95% of the wall clock.
	if tr.WallSeconds <= 0 {
		t.Fatalf("wall seconds = %v", tr.WallSeconds)
	}
	if cov := spanUnionSeconds(tr.Spans) / tr.WallSeconds; cov < 0.95 {
		t.Fatalf("spans cover %.1f%% of wall clock, want >= 95%%", 100*cov)
	}
}

// TestTraceIDGeneratedAndSanitized: a submission without a trace id gets
// one minted; a hostile header (injection attempt) is discarded, not
// echoed.
func TestTraceIDGeneratedAndSanitized(t *testing.T) {
	step := make(chan struct{}, 16)
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1}, scriptedRunner(step))
	ack, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ack.TraceID == "" {
		t.Fatal("no trace id minted for an untraced submission")
	}
	// Header-legal but sanitizer-illegal (spaces, quotes — would corrupt
	// log lines); the server must mint a fresh id, not echo it.
	c.TraceID = `evil id" injected=1`
	ack2, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ack2.TraceID == "" || strings.ContainsAny(ack2.TraceID, "\r\n \"") || ack2.TraceID == c.TraceID {
		t.Fatalf("hostile trace id not replaced: %q", ack2.TraceID)
	}
}

// parseMetricValue extracts one series' value from Prometheus text.
func parseMetricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("series %q: bad value in %q: %v", series, line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in metrics:\n%s", series, body)
	return 0
}

// TestMetricsHistograms: after a real sweep, /metrics exposes the five
// histogram families with HELP/TYPE blocks and cumulative buckets that
// are monotone and end at the family's _count.
func TestMetricsHistograms(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1}, episim.RunSweepContext)
	ack, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, c, ack.ID)

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)

	spec := testServerSpec()
	wantCount := map[string]float64{
		"episimd_submit_seconds":          1,
		"episimd_queue_wait_seconds":      1,
		"episimd_placement_build_seconds": 1,
		"episimd_cell_seconds":            float64(len(spec.Cells()) * spec.Replicates),
		"episimd_result_persist_seconds":  0, // memory-only server: nothing persisted
	}
	for fam, want := range wantCount {
		for _, block := range []string{"# HELP " + fam + " ", "# TYPE " + fam + " histogram"} {
			if !strings.Contains(body, block) {
				t.Fatalf("metrics missing %q", block)
			}
		}
		count := parseMetricValue(t, body, fam+"_count")
		if count != want {
			t.Fatalf("%s_count = %v, want %v", fam, count, want)
		}
		// Cumulative bucket counts: monotone non-decreasing, +Inf == count.
		prev := -1.0
		var last float64
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, fam+"_bucket{") {
				continue
			}
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("%s buckets not cumulative: %q after %v", fam, line, prev)
			}
			prev, last = v, v
		}
		if last != count {
			t.Fatalf("%s +Inf bucket = %v, want _count %v", fam, last, count)
		}
	}
	// Renamed index gauges: new names present, old counter names gone.
	for _, want := range []string{"episimd_sweeps ", "episimd_sweeps_done "} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing renamed series %q", want)
		}
	}
	for _, gone := range []string{"episimd_sweeps_total", "episimd_sweeps_done_total"} {
		if strings.Contains(body, gone) {
			t.Fatalf("metrics still expose retired name %q", gone)
		}
	}
	if !strings.Contains(body, "# TYPE go_goroutines gauge") {
		t.Fatal("metrics missing runtime series go_goroutines")
	}
	// The same snapshots ride /v1/stats as JSON for gateway merging.
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Histograms) != 5 {
		t.Fatalf("stats carries %d histograms, want 5", len(stats.Histograms))
	}
	for _, h := range stats.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			t.Fatalf("histogram %s: %d counts for %d bounds", h.Name, len(h.Counts), len(h.Bounds))
		}
	}
}

// TestObserveSpanFeedsHistograms: the timeline observer is the single
// path from spans into daemon-wide histograms — exact counts, no
// sampling.
func TestObserveSpanFeedsHistograms(t *testing.T) {
	srv, err := newWithRunner(Config{Workers: 1, MaxActive: 1}, scriptedRunner(make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tl := obs.NewTimeline("t")
	tl.SetObserver(srv.observeSpan)
	now := time.Now()
	tl.Add("queue_wait", "", now.Add(-time.Second), now)
	tl.Add("sim", "", now.Add(-time.Millisecond), now)
	tl.Add("sim", "", now.Add(-time.Millisecond), now)
	tl.Add("irrelevant", "", now.Add(-time.Millisecond), now)
	if got := srv.queueWaitHist.Snapshot().Count; got != 1 {
		t.Fatalf("queue_wait count = %d, want 1", got)
	}
	if got := srv.cellHist.Snapshot().Count; got != 2 {
		t.Fatalf("cell count = %d, want 2", got)
	}
	if got := srv.submitHist.Snapshot().Count; got != 0 {
		t.Fatalf("submit count = %d, want 0", got)
	}
}

// TestCanceledQueuedJobTerminalSpan: a job canceled while still queued
// never reaches execute(), yet its timeline must end in a terminal run
// span (with the real queue_wait recorded) and its observer must be
// closed — otherwise component rollups see a dangling open job and late
// spans would keep feeding service histograms after terminal state.
func TestCanceledQueuedJobTerminalSpan(t *testing.T) {
	step := make(chan struct{}, 16)
	srv, c := newTestServer(t, Config{Workers: 1, MaxActive: 1}, scriptedRunner(step))

	// Occupy the single admission slot so the next submission queues.
	first, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(context.Background(), testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}

	tr, err := c.Trace(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.State != client.StateCanceled {
		t.Fatalf("state = %s, want canceled", tr.State)
	}
	got := map[string]int{}
	var terminal *client.TraceSpan
	for i, sp := range tr.Spans {
		got[sp.Name]++
		if sp.Name == "run" {
			terminal = &tr.Spans[i]
		}
	}
	if got["queue_wait"] != 1 || got["run"] != 1 {
		t.Fatalf("canceled-while-queued trace lacks terminal spans: %v", got)
	}
	if terminal.Detail != string(client.StateCanceled) {
		t.Fatalf("terminal span detail = %q, want canceled", terminal.Detail)
	}

	// The timeline is closed: later spans are recorded for the trace but
	// no longer observed into the daemon histograms.
	j, ok := srv.store.get(queued.ID)
	if !ok {
		t.Fatal("queued job vanished")
	}
	if !j.trace.Closed() {
		t.Fatal("canceled job's timeline not closed")
	}
	before := srv.queueWaitHist.Snapshot().Count
	now := time.Now()
	j.trace.Add("queue_wait", "straggler", now.Add(-time.Second), now)
	if after := srv.queueWaitHist.Snapshot().Count; after != before {
		t.Fatalf("closed timeline still feeds histograms: %d -> %d", before, after)
	}

	// Unblock and finish the first job so Close() does not hang.
	for i := 0; i < 16; i++ {
		select {
		case step <- struct{}{}:
		default:
		}
	}
	waitTerminal(t, c, first.ID)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
