package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// appendPoint snapshots the server's current stats into its history ring
// — the deterministic stand-in for one collection tick (the test configs
// use an hour-long interval so the loop never ticks on its own).
func appendPoint(srv *Server) {
	srv.slo.history.Append(StatsHistoryPoint(srv.stats(), false))
}

// badSubmit posts an unparseable body straight at the handler,
// exercising the submit-availability SLO's error path.
func badSubmit(srv *Server) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/sweeps", strings.NewReader("{not json"))
	srv.Handler().ServeHTTP(rr, req)
}

// TestSLOPlaneEndToEnd drives the whole plane through the HTTP surface:
// per-client usage attribution, ring-derived burn rates on /v1/slo and
// /metrics, and the history endpoint's window summaries.
func TestSLOPlaneEndToEnd(t *testing.T) {
	step := make(chan struct{})
	srv, c := newTestServer(t, Config{Workers: 2, MaxActive: 1, HistoryInterval: time.Hour},
		scriptedRunner(step))
	c.ClientID = "tenant-a"
	ctx := context.Background()
	// The ring's boot point lands asynchronously from Start; the burn
	// assertions below need it as their zero-counter base.
	for srv.slo.history.Len() == 0 {
		time.Sleep(time.Millisecond)
	}

	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	events, errc := collectStream(ctx, c, ack.ID, 0)
	for i := 0; i < 3; i++ {
		step <- struct{}{}
	}
	for ev := waitEvent(t, events); ev.Type == "cell"; ev = waitEvent(t, events) {
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Usage: the submission, its cells, and the streamed event bytes all
	// bill to the ClientID the client stamped on its requests.
	usage, err := c.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if usage.Instance != srv.name {
		t.Fatalf("usage instance = %q, want %q", usage.Instance, srv.name)
	}
	var row *obs.ClientUsage
	for i := range usage.Clients {
		if usage.Clients[i].Client == "tenant-a" {
			row = &usage.Clients[i]
		}
	}
	if row == nil {
		t.Fatalf("no tenant-a row in usage reply: %+v", usage.Clients)
	}
	if row.Submissions != 1 || row.Cells != 3 {
		t.Fatalf("tenant-a usage = %+v, want 1 submission / 3 cells", row)
	}
	if row.StreamedBytes <= 0 {
		t.Fatalf("tenant-a streamed bytes = %d, want > 0", row.StreamedBytes)
	}

	// One failed submission, then one manual collection tick: the 5m
	// window now covers 2 submits with 1 error — burn 0.5/0.01 = 50.
	badSubmit(srv)
	appendPoint(srv)

	slo, err := c.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slo.Stale {
		t.Fatal("live ring evaluated stale")
	}
	var avail *obs.SLOStatus
	for i := range slo.SLOs {
		if slo.SLOs[i].Name == "submit-availability" {
			avail = &slo.SLOs[i]
		}
	}
	if avail == nil || len(avail.Windows) != 2 {
		t.Fatalf("submit-availability missing or wrong windows: %+v", slo.SLOs)
	}
	if got := avail.Windows[0].BurnRate; got < 25 || got > 75 {
		t.Fatalf("5m burn = %v, want ~50 (1 bad of 2 against a 1%% budget)", got)
	}

	// History: the boot point plus the manual tick, with both default
	// windows summarized.
	hist, err := c.MetricsHistory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Points) < 2 {
		t.Fatalf("history has %d points, want >= 2", len(hist.Points))
	}
	for _, w := range []string{"5m", "1h"} {
		if _, ok := hist.Windows[w]; !ok {
			t.Fatalf("history windows missing %q: %v", w, hist.Windows)
		}
	}

	// /metrics renders the SLO families alongside the new counters.
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"episim_slo_burn_rate{slo=\"submit-availability\",window=\"5m\"}",
		"episimd_submissions_received_total 2",
		"episimd_submission_errors_total 1",
		"episimd_trace_dropped_spans_total",
		"episimd_profile_captures_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestWatchdogCapturesProfiles forces a fast burn with a disk store
// attached and waits for the watchdog to land pprof artifacts.
func TestWatchdogCapturesProfiles(t *testing.T) {
	step := make(chan struct{})
	srv, _ := newTestServer(t, Config{
		Workers: 2, MaxActive: 1,
		CacheDir:          t.TempDir(),
		HistoryInterval:   time.Hour,
		BurnThreshold:     1,
		ProfileCooldown:   time.Millisecond,
		ProfileCPUSeconds: 0.1,
	}, scriptedRunner(step))

	// The ring's boot point lands asynchronously from Start; the burn
	// window needs it as its zero-counter base.
	for srv.slo.history.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	badSubmit(srv) // 1 of 1 submissions failed: burn 100 on the next tick
	appendPoint(srv)

	deadline := time.Now().Add(10 * time.Second)
	for srv.stats().ProfileCaptures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never captured a profile")
		}
		time.Sleep(20 * time.Millisecond)
	}

	keys, err := srv.store.results.Keys()
	if err != nil {
		t.Fatal(err)
	}
	profiles := 0
	for _, k := range keys {
		if k.Kind == artifact.KindProfile {
			profiles++
			if k.Size <= 0 {
				t.Fatalf("profile artifact %s is empty", k.Key)
			}
		}
	}
	if profiles == 0 {
		t.Fatalf("no profile artifacts in store; keys = %+v", keys)
	}
	// The listing endpoint exposes exactly those artifacts.
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/profiles", nil))
	if !strings.Contains(rr.Body.String(), "prof-") {
		t.Fatalf("/v1/profiles lists no captures: %s", rr.Body.String())
	}
}

// TestTraceDroppedSpansCounter overflows one job's span cap and checks
// the overflow rolls into the daemon-wide counter at job completion.
func TestTraceDroppedSpansCounter(t *testing.T) {
	run := func(ctx context.Context, spec *episim.SweepSpec, opts *episim.SweepOptions) (*episim.SweepResult, error) {
		now := time.Now()
		for i := 0; i < 5000; i++ {
			opts.Trace.Add("replicate_sim", "", now, now)
		}
		return &episim.SweepResult{Spec: spec}, nil
	}
	srv, c := newTestServer(t, Config{Workers: 1, MaxActive: 1, HistoryInterval: time.Hour}, run)
	ctx := context.Background()

	ack, err := c.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stream(ctx, ack.ID, 0, func(ev client.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := srv.stats().TraceDroppedSpans; got <= 0 {
		t.Fatalf("TraceDroppedSpans = %d, want > 0 after overflowing the span cap", got)
	}
}
