package server

import (
	"context"
	"net/http"
	"os"
	"testing"
)

// TestHealthzReportsReadiness: a healthy daemon answers 200 with its
// identity and load counters.
func TestHealthzReportsReadiness(t *testing.T) {
	step := make(chan struct{})
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 1, Name: "node-a"}, scriptedRunner(step))
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Instance != "node-a" {
		t.Fatalf("health = %+v, want ok from node-a", h)
	}
	if h.CacheDirWritable != nil {
		t.Fatalf("memory-only daemon reported cache dir writability: %+v", h)
	}

	// One sweep running (blocked on the scripted step) and one queued:
	// the probe must see real load, it is what the gateway balances on.
	if _, err := c.Submit(ctx, testServerSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, testServerSpec()); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ActiveSweeps != 1 || h.QueueDepth != 1 {
		t.Fatalf("health under load = %+v, want 1 active / 1 queued", h)
	}
	close(step)
}

// TestHealthzDegradesWhenCacheDirUnwritable: losing the cache dir flips
// readiness to 503/degraded — the daemon could no longer persist
// placements or results, so a gateway must stop routing to it.
func TestHealthzDegradesWhenCacheDirUnwritable(t *testing.T) {
	dir := t.TempDir()
	step := make(chan struct{})
	close(step)
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1, CacheDir: dir}, scriptedRunner(step))
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.CacheDirWritable == nil || !*h.CacheDirWritable {
		t.Fatalf("health = %+v, want ok + writable cache dir", h)
	}

	// Remove the directory out from under the daemon (permission bits
	// would not stop a root test runner; a missing dir stops everyone).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with unwritable cache dir: HTTP %d, want 503", resp.StatusCode)
	}
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("client.Health against a degraded daemon must error")
	}
}
