package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/obs"
)

// sweepRunner executes one sweep; production wires episim.RunSweepContext,
// tests substitute a controllable fake.
type sweepRunner func(context.Context, *episim.SweepSpec, *episim.SweepOptions) (*episim.SweepResult, error)

// scheduler owns the job queue and the runner pool: at most maxActive
// sweeps execute at once (FIFO admission), and all of them share one
// slot pool and one placement cache, so total simulation parallelism
// and memory stay bounded no matter how many requests are in flight.
type scheduler struct {
	store     *store
	cache     *episim.SweepCache
	slots     *episim.SweepSlots
	run       sweepRunner
	workers   int
	maxActive int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []string
	active int
	closed bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	cellsStreamed atomic.Int64

	// kernelMu guards kernelDays: simulated days by executing kernel,
	// accumulated from every finalized cell (feeds the
	// episimd_kernel_days_total metric).
	kernelMu   sync.Mutex
	kernelDays map[string]int64
}

func newScheduler(st *store, cache *episim.SweepCache, slots *episim.SweepSlots,
	workers, maxActive int, run sweepRunner) *scheduler {
	s := &scheduler{
		store:   st,
		cache:   cache,
		slots:   slots,
		run:     run,
		workers: workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if maxActive < 1 {
		maxActive = 2
	}
	s.maxActive = maxActive
	for i := 0; i < maxActive; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// submit registers and enqueues a sweep, returning its job. A
// submission landing in the shutdown window (scheduler closed, listener
// still draining) is terminated immediately so its status and event
// stream resolve instead of queuing forever.
func (s *scheduler) submit(spec *episim.SweepSpec, traceID string, trace *obs.Timeline, clientID string) *job {
	j := s.store.add(spec, traceID, trace, clientID)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.store.requestCancel(j)
		return j
	}
	s.queue = append(s.queue, j.id)
	s.mu.Unlock()
	s.cond.Signal()
	return j
}

// queueDepth and activeCount feed the stats endpoint. Jobs canceled
// while queued stay in the slice until a runner pops the stale id, so
// depth counts only entries that are still actually waiting.
func (s *scheduler) queueDepth() int {
	s.mu.Lock()
	ids := append([]string(nil), s.queue...)
	s.mu.Unlock()
	return s.store.countWaiting(ids)
}

func (s *scheduler) activeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// kernelDaysSnapshot copies the per-kernel day counters (nil when no
// sweep has run a non-default kernel yet).
func (s *scheduler) kernelDaysSnapshot() map[string]int64 {
	s.kernelMu.Lock()
	defer s.kernelMu.Unlock()
	if len(s.kernelDays) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.kernelDays))
	for k, n := range s.kernelDays {
		out[k] = n
	}
	return out
}

// close stops admission, cancels running sweeps, waits for the runner
// pool to drain, then terminates jobs still queued — their hubs must
// publish a terminal event and close, or subscribers attached to a
// queued sweep's event stream would hang a graceful shutdown forever.
func (s *scheduler) close() {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	s.mu.Lock()
	queued := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, id := range queued {
		if j, ok := s.store.get(id); ok {
			s.store.requestCancel(j)
		}
	}
}

// runner is one admission slot: pop, execute, repeat.
func (s *scheduler) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		s.active++
		s.mu.Unlock()

		if j, ok := s.store.get(id); ok {
			s.execute(j)
		}

		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
}

// execute runs one sweep end to end: transition to running, stream each
// finalized cell into the job's hub, then publish the terminal event.
func (s *scheduler) execute(j *job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !s.store.markRunning(j, cancel) {
		return // canceled while queued
	}
	// created/started are stable now (created is immutable after add;
	// started was just set under the store lock by markRunning): the
	// queue_wait span is exactly the admission delay.
	j.trace.Add("queue_wait", "", j.created, j.started)

	// Clamp the sweep's own goroutine count to the service pool: the
	// shared slots bound actual parallelism, the clamp just avoids
	// spawning idle workers.
	if j.spec.Workers <= 0 || j.spec.Workers > s.workers {
		j.spec.Workers = s.workers
	}

	onCell := func(cell episim.SweepCellResult) {
		s.cellsStreamed.Add(1)
		if len(cell.KernelDays) > 0 {
			s.kernelMu.Lock()
			if s.kernelDays == nil {
				s.kernelDays = make(map[string]int64)
			}
			for k, n := range cell.KernelDays {
				s.kernelDays[k] += n
			}
			s.kernelMu.Unlock()
		}
		s.store.incCellsDone(j)
		c := cell
		j.hub.publish(client.Event{Type: "cell", Cell: &c})
	}
	res, err := s.run(ctx, j.spec, &episim.SweepOptions{
		Cache:  s.cache,
		Slots:  s.slots,
		OnCell: onCell,
		Trace:  j.trace,
	})

	var st client.JobStatus
	var typ string
	switch {
	case err == nil:
		// A sweep that ran to completion is done even if a cancel (or
		// shutdown) landed after its last cell — the result is whole.
		st = s.store.finish(j, client.StateDone, "", res)
		typ = "done"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st = s.store.finish(j, client.StateCanceled, "", res)
		typ = "canceled"
	default:
		// A genuine failure stays a failure even when a shutdown cancel
		// raced the run's return — the error message is the diagnosis.
		st = s.store.finish(j, client.StateFailed, err.Error(), res)
		typ = "error"
	}
	// The run span closes at the store's recorded finish time, so the
	// union of queue_wait + run covers created→finished exactly — the
	// trace endpoint's coverage contract. Recorded before the terminal
	// event publishes: a client reacting to "done" sees a complete trace.
	runEnd := time.Now()
	if st.Finished != nil {
		runEnd = *st.Finished
	}
	j.trace.Add("run", string(st.State), j.started, runEnd)
	// Terminal state recorded: detach the timeline from the service
	// histograms. A canceled run's in-flight replicates may still land
	// spans after this point — they stay visible in the job's trace but
	// must not count as fresh service latency after the job is over.
	j.trace.Close()
	j.hub.publish(client.Event{Type: typ, Job: &st})
	j.hub.close()
}
