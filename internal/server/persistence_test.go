package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	episim "repro"
	"repro/client"
)

// instantRunner completes every cell immediately — persistence tests
// care about what happens AFTER sweeps finish.
func instantRunner() sweepRunner {
	step := make(chan struct{})
	close(step)
	return scriptedRunner(step)
}

// runToDone submits a spec and waits for the job to finish.
func runToDone(t *testing.T, c *client.Client, spec *episim.SweepSpec) string {
	t.Helper()
	ack, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, c, ack.ID); st.State != client.StateDone {
		t.Fatalf("job %s ended %s (%s)", ack.ID, st.State, st.Error)
	}
	return ack.ID
}

func getBody(t *testing.T, c *client.Client, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(c.BaseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestResultSurvivesDaemonRestart is the durability acceptance test: a
// finished sweep's /result — byte for byte — and its status remain
// servable from a brand-new server process over the same cache dir, and
// the id sequence continues instead of colliding with persisted jobs.
func TestResultSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, MaxActive: 1, CacheDir: dir}

	srv1, err := newWithRunner(cfg, instantRunner())
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	id := runToDone(t, c1, testServerSpec())
	code, body1 := getBody(t, c1, "/v1/sweeps/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("pre-restart result: HTTP %d", code)
	}
	srv1.Close()
	ts1.Close()

	// "Restart": a fresh server over the same directory.
	srv2, err := newWithRunner(cfg, instantRunner())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { srv2.Close(); ts2.Close() }()
	c2 := client.New(ts2.URL)

	code, body2 := getBody(t, c2, "/v1/sweeps/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("post-restart result: HTTP %d: %s", code, body2)
	}
	if body1 != body2 {
		t.Fatal("result bytes changed across restart")
	}
	st, err := c2.Status(context.Background(), id)
	if err != nil || st.State != client.StateDone || st.Cells != 3 {
		t.Fatalf("post-restart status = %+v, %v", st, err)
	}
	// The restored job appears in the listing and the id sequence
	// continues past it — no collision between old and new sweeps.
	jobs, err := c2.List(context.Background())
	if err != nil || len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("post-restart list = %+v, %v", jobs, err)
	}
	id2 := runToDone(t, c2, testServerSpec())
	if id2 == id {
		t.Fatalf("restarted daemon reused job id %s", id)
	}
	// The restored job's event stream replays its terminal event and
	// ends — it must not hang a subscriber.
	events, errc := collectStream(context.Background(), c2, id, 0)
	ev := waitEvent(t, events)
	if ev.Type != "done" {
		t.Fatalf("archived stream event = %q, want done", ev.Type)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	if st := srv2.stats(); st.ResultStore == nil || st.ResultStore.Files != 2 {
		t.Fatalf("result store stats = %+v, want 2 persisted jobs", st.ResultStore)
	}
}

// TestRetentionEvictsToDiskButStaysServable is the regression test for
// the bounded index: with Retain=1, old finished sweeps leave the
// memory index (list stays short and ordered) yet their status AND
// result remain directly addressable — rehydrated from disk.
func TestRetentionEvictsToDiskButStaysServable(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, Config{Workers: 1, MaxActive: 1, CacheDir: dir, Retain: 1}, instantRunner())

	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, runToDone(t, c, testServerSpec()))
	}

	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != ids[2] {
		t.Fatalf("list = %+v, want only the newest finished job %s", jobs, ids[2])
	}
	if st := srv.stats(); st.SweepsEvicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.SweepsEvicted)
	}

	// Evicted-but-on-disk jobs still answer by id.
	for _, id := range ids[:2] {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status of evicted job %s: %v", id, err)
		}
		if st.State != client.StateDone || st.Cells != 3 {
			t.Fatalf("evicted job %s status = %+v", id, st)
		}
		res, err := c.Result(context.Background(), id)
		if err != nil {
			t.Fatalf("result of evicted job %s: %v", id, err)
		}
		if len(res.Cells) != 3 {
			t.Fatalf("evicted job %s result has %d cells", id, len(res.Cells))
		}
	}

	// Cancel on an evicted (terminal) job conflicts instead of crashing.
	resp, err := http.Post(c.BaseURL+"/v1/sweeps/"+ids[0]+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel evicted job: HTTP %d, want 409", resp.StatusCode)
	}
}

// TestQueuedCancelPersisted: canceling a job that never ran still
// reaches the disk store — after a restart its canceled status is
// servable (and /result is a permanent 410, not a 404).
func TestQueuedCancelPersisted(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, MaxActive: 1, CacheDir: dir}
	step := make(chan struct{}) // never stepped: the running job blocks
	srv1, err := newWithRunner(cfg, scriptedRunner(step))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	ctx := context.Background()

	blocker, err := c1.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c1, blocker.ID, client.StateRunning)
	queued, err := c1.Submit(ctx, testServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, c1, queued.ID); st.State != client.StateCanceled {
		t.Fatalf("queued job ended %s, want canceled", st.State)
	}
	srv1.Close()
	ts1.Close()

	srv2, err := newWithRunner(cfg, instantRunner())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { srv2.Close(); ts2.Close() }()
	c2 := client.New(ts2.URL)
	st, err := c2.Status(ctx, queued.ID)
	if err != nil || st.State != client.StateCanceled {
		t.Fatalf("post-restart status of queued-canceled job = %+v, %v", st, err)
	}
	if code, _ := getBody(t, c2, "/v1/sweeps/"+queued.ID+"/result"); code != http.StatusGone {
		t.Fatalf("result of canceled job: HTTP %d, want 410", code)
	}
}

// TestRetentionTTLEvicts: finished jobs older than ResultTTL leave the
// memory index on the next store pass.
func TestRetentionTTLEvicts(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, Config{Workers: 1, MaxActive: 1, CacheDir: dir, ResultTTL: time.Hour}, instantRunner())

	id := runToDone(t, c, testServerSpec())
	// Jump the store's clock two hours ahead; the next list() evicts.
	srv.store.mu.Lock()
	srv.store.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	srv.store.mu.Unlock()

	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("list after TTL = %+v, want empty", jobs)
	}
	// Still on disk.
	if st, err := c.Status(context.Background(), id); err != nil || st.State != client.StateDone {
		t.Fatalf("TTL-evicted status = %+v, %v", st, err)
	}
}

// TestRetentionWithoutDiskIsBounded: a memory-only daemon with Retain
// still bounds its index; evicted jobs are gone (404), which is the
// documented trade.
func TestRetentionWithoutDiskIsBounded(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1, Retain: 2}, instantRunner())
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, runToDone(t, c, testServerSpec()))
	}
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != ids[2] || jobs[1].ID != ids[3] {
		t.Fatalf("list = %+v, want the 2 newest in order", jobs)
	}
	if _, err := c.Status(context.Background(), ids[0]); err == nil {
		t.Fatal("evicted memory-only job must 404")
	}
}
