package server

import (
	"sync"

	"repro/client"
)

// hub is one sweep's event log and broadcast fan-out. Every published
// event is retained for the job's lifetime, so any subscriber — first
// connection or reconnect — can replay from an arbitrary sequence
// number and then continue live: the SSE contract "replay from cell 0"
// costs one slice copy.
//
// Slow subscribers never block the executor: publishes into a full
// subscriber buffer close that subscriber, and the client resumes with
// from = last seen seq + 1, served again from the retained log.
type hub struct {
	mu     sync.Mutex
	events []client.Event
	closed bool
	subs   map[chan client.Event]bool
}

// subBuffer bounds one subscriber's unread backlog before it is dropped
// (and must reconnect-replay).
const subBuffer = 256

func newHub() *hub {
	return &hub{subs: map[chan client.Event]bool{}}
}

// publish appends the event to the log (assigning its Seq) and fans it
// out to live subscribers.
func (h *hub) publish(ev client.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev.Seq = len(h.events)
	h.events = append(h.events, ev)
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			// Subscriber can't keep up: drop it; the retained log makes
			// reconnection lossless.
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close marks the stream complete (after the terminal event) and ends
// every live subscription.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = map[chan client.Event]bool{}
}

// subscribe returns the retained events from sequence `from` onward plus
// a live channel for what follows; cancel unregisters (idempotent). For
// a completed stream the channel is already closed, so a consumer sees
// the full replay then a clean end.
func (h *hub) subscribe(from int) (replay []client.Event, ch chan client.Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(h.events) {
		from = len(h.events)
	}
	replay = append([]client.Event(nil), h.events[from:]...)
	ch = make(chan client.Event, subBuffer)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = true
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.subs[ch] {
			delete(h.subs, ch)
			close(ch)
		}
	}
}
