package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
)

// postRaw submits a raw JSON body to POST /v1/sweeps — bypassing the Go
// client's marshalling on purpose, so these tests pin the wire bytes a
// foreign client (curl, another language) would send.
func postRaw(t *testing.T, baseURL, body string) (int, client.SubmitReply) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack client.SubmitReply
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ack
}

// TestSubmitDecodeCompat pins the submission contract across the spec
// version bump: the exact JSON a pre-intervention client sends must
// still be accepted (and report spec_version 1), and a version 2 body
// with an intervention axis must be accepted with the branch-expanded
// grid (and report spec_version 2). Both bodies are literal strings —
// if a field rename ever breaks old clients, this test breaks first.
func TestSubmitDecodeCompat(t *testing.T) {
	step := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		step <- struct{}{}
	}
	_, c := newTestServer(t, Config{Workers: 2, MaxActive: 2}, scriptedRunner(step))

	// Pinned legacy (version 1) body: what existing automation submits
	// today, verbatim.
	const legacyBody = `{
		"populations": [{"name": "p", "people": 100, "locations": 10}],
		"placements": [{"strategy": "RR", "ranks": 2}],
		"scenarios": [{"name": "s0"}, {"name": "s1"}],
		"replicates": 2,
		"days": 5,
		"seed": 3
	}`
	code, ack := postRaw(t, c.BaseURL, legacyBody)
	if code != http.StatusAccepted {
		t.Fatalf("legacy spec refused: HTTP %d", code)
	}
	if ack.SpecVersion != 1 {
		t.Fatalf("legacy spec_version = %d, want 1", ack.SpecVersion)
	}
	if ack.Cells != 2 || ack.Simulations != 4 {
		t.Fatalf("legacy ack = %d cells / %d sims, want 2 / 4", ack.Cells, ack.Simulations)
	}

	// Pinned version 2 body: an intervention axis forking at day 3. The
	// grid gains a branch dimension: 2 scenarios × 2 branches = 4 cells.
	const forkBody = `{
		"populations": [{"name": "p", "people": 100, "locations": 10}],
		"placements": [{"strategy": "RR", "ranks": 2}],
		"scenarios": [{"name": "s0"}, {"name": "s1"}],
		"interventions": [
			{"name": "baseline"},
			{"closures": [{"loc_type": "school", "day": 4, "days": 2}],
			 "vaccinations": [{"day": 4, "fraction": 0.25}],
			 "quarantines": [{"state": "symptomatic", "day": 4, "days": 3}]}
		],
		"fork_day": 3,
		"replicates": 2,
		"days": 5,
		"seed": 3
	}`
	code, ack = postRaw(t, c.BaseURL, forkBody)
	if code != http.StatusAccepted {
		t.Fatalf("intervention spec refused: HTTP %d", code)
	}
	if ack.SpecVersion != 2 {
		t.Fatalf("fork spec_version = %d, want 2", ack.SpecVersion)
	}
	if ack.Cells != 4 || ack.Simulations != 8 {
		t.Fatalf("fork ack = %d cells / %d sims, want 4 / 8", ack.Cells, ack.Simulations)
	}

	// The version rides job status too, and must hold whichever way the
	// job is looked up later.
	st, err := c.Status(t.Context(), ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecVersion != 2 {
		t.Fatalf("status spec_version = %d, want 2", st.SpecVersion)
	}

	// A branch firing during the shared prefix cannot be honored — the
	// prefix is computed once for all branches — so it must be refused
	// at admission, not silently misexecuted.
	badBody := strings.Replace(forkBody, `"day": 4, "days": 2`, `"day": 2, "days": 2`, 1)
	if code, _ := postRaw(t, c.BaseURL, badBody); code != http.StatusBadRequest {
		t.Fatalf("pre-fork intervention accepted: HTTP %d, want 400", code)
	}
}

// TestClientErrorSentinels exercises the typed sentinels end to end
// against a live server: an unknown id surfaces as ErrNotFound via
// errors.Is, without string matching.
func TestClientErrorSentinels(t *testing.T) {
	step := make(chan struct{}, 1)
	_, c := newTestServer(t, Config{Workers: 1, MaxActive: 1}, scriptedRunner(step))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Status(ctx, "sw-999999")
	if err == nil {
		t.Fatal("unknown sweep id returned no error")
	}
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown-id error %v does not match client.ErrNotFound", err)
	}
	if errors.Is(err, client.ErrThrottled) {
		t.Fatalf("404 error %v wrongly matches client.ErrThrottled", err)
	}
}
