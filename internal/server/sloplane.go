package server

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// The SLO plane: a metrics-history ring self-snapshotting the daemon's
// counter/gauge/histogram families, an SLO evaluator computing
// multi-window error-budget burn rates from the ring, and a watchdog
// that captures pprof profiles into the artifact store when burn rate
// or queue depth crosses threshold. Everything is in-process — burn
// rates exist with nothing but curl, no external scraper required.

// SLOSpecs is episimd's declarative SLO set, shared with the gateway so
// the scalar names the specs reference and the names StatsHistoryPoint
// emits can never drift. queueWaitThreshold is the latency budget for
// the queue-wait objective in seconds (<=0 = 30s).
func SLOSpecs(queueWaitThreshold float64) []obs.SLOSpec {
	if queueWaitThreshold <= 0 {
		queueWaitThreshold = 30
	}
	return []obs.SLOSpec{
		{
			Name:      "submit-availability",
			Help:      "Sweep submissions that were accepted (parse/enqueue failures are errors).",
			Objective: 0.99,
			Total:     "submit_total",
			Bad:       "submit_errors",
		},
		{
			Name:             "queue-wait",
			Help:             "Sweeps that started executing within the queue-wait budget.",
			Objective:        0.99,
			Histogram:        "episimd_queue_wait_seconds",
			ThresholdSeconds: queueWaitThreshold,
		},
		{
			Name:      "event-delivery",
			Help:      "Event-stream sends that reached their subscriber.",
			Objective: 0.999,
			Total:     "events_total",
			Bad:       "events_send_errors",
		},
	}
}

// StatsHistoryPoint reduces one stats snapshot to a history-ring point:
// the scalar families the SLO specs reference (plus the load gauges the
// ops console graphs) and the full histogram set. The gateway feeds its
// fleet ring through this same function on the merged reply, so a
// fleet-level burn rate is computed from exactly the per-daemon
// vocabulary.
func StatsHistoryPoint(st client.StatsReply, stale bool) obs.HistoryPoint {
	return obs.HistoryPoint{
		Time: time.Now(),
		Scalars: map[string]float64{
			"submit_total":        float64(st.SubmitsTotal),
			"submit_errors":       float64(st.SubmitErrors),
			"events_total":        float64(st.EventsSent),
			"events_send_errors":  float64(st.EventsSendErrors),
			"cells_streamed":      float64(st.CellsStreamed),
			"trace_dropped_spans": float64(st.TraceDroppedSpans),
			"profile_captures":    float64(st.ProfileCaptures),
			"queue_depth":         float64(st.QueueDepth),
			"active_sweeps":       float64(st.ActiveSweeps),
		},
		Hists: st.Histograms,
		Stale: stale,
	}
}

// sloPlane is the server's observability state beyond plain counters:
// the ring, the latest SLO evaluation, and watchdog bookkeeping.
type sloPlane struct {
	history *obs.History
	specs   []obs.SLOSpec
	status  atomic.Pointer[[]obs.SLOStatus]

	burnThreshold     float64
	profileQueueDepth int
	profileCPUDur     time.Duration
	cooldown          time.Duration

	capturing   atomic.Bool
	profileMu   sync.Mutex
	lastCapture time.Time
	profileSeq  atomic.Int64
}

// sloStatuses returns the latest evaluation (zeroed-but-complete specs
// before the first ring append, so /v1/slo and /metrics are stable from
// the first request).
func (s *Server) sloStatuses() []obs.SLOStatus {
	if p := s.slo.status.Load(); p != nil {
		return *p
	}
	return obs.EvalSLOs(s.slo.history, s.slo.specs)
}

// onHistoryPoint runs on the ring goroutine after every appended point:
// re-evaluate the SLOs, then arm the profiling watchdog. Capture itself
// runs on its own goroutine (a CPU profile blocks for its duration,
// which must not stall the collection cadence).
func (s *Server) onHistoryPoint(p obs.HistoryPoint) {
	sts := obs.EvalSLOs(s.slo.history, s.slo.specs)
	s.slo.status.Store(&sts)

	reason := ""
	for _, st := range sts {
		if st.Stale {
			continue // stale burn is old news, not a live incident
		}
		// Windows[0] is the short (fast-burn) window — the page-now one.
		if len(st.Windows) > 0 && st.Windows[0].BurnRate >= s.slo.burnThreshold {
			reason = fmt.Sprintf("slo %s burn %.1f over %s",
				st.Name, st.Windows[0].BurnRate, st.Windows[0].Window)
			break
		}
	}
	if reason == "" && s.slo.profileQueueDepth > 0 &&
		p.Scalars["queue_depth"] >= float64(s.slo.profileQueueDepth) {
		reason = fmt.Sprintf("queue depth %.0f", p.Scalars["queue_depth"])
	}
	if reason != "" {
		s.maybeCaptureProfiles(reason)
	}
}

// maybeCaptureProfiles starts one capture unless the evidence locker is
// unavailable (no disk store), a capture is already running, or the
// cooldown since the last one has not lapsed — a sustained burn must
// not fill the store with near-identical profiles.
func (s *Server) maybeCaptureProfiles(reason string) {
	if s.store.results == nil {
		return // profiles persist as artifacts; without a cache dir there is nowhere to keep them
	}
	s.slo.profileMu.Lock()
	if !s.slo.lastCapture.IsZero() && time.Since(s.slo.lastCapture) < s.slo.cooldown {
		s.slo.profileMu.Unlock()
		return
	}
	s.slo.lastCapture = time.Now()
	s.slo.profileMu.Unlock()
	if !s.slo.capturing.CompareAndSwap(false, true) {
		return
	}
	go s.captureProfiles(reason)
}

// captureProfiles records one CPU and one heap profile of the incident
// in progress and persists both as KindProfile artifacts in the result
// store — TTL-expired by the same GC pass that expires job records.
func (s *Server) captureProfiles(reason string) {
	defer s.slo.capturing.Store(false)
	seq := s.slo.profileSeq.Add(1)
	stamp := time.Now().UTC().Format("20060102t150405")
	put := func(which string, data []byte) {
		key := fmt.Sprintf("prof-%s-%03d-%s", stamp, seq, which)
		if err := s.store.results.Put(artifact.KindProfile, key, data); err != nil {
			s.log.Error("profile persist failed", "key", key, "err", err)
			return
		}
		s.log.Warn("watchdog captured profile", "key", key, "bytes", len(data), "reason", reason)
	}
	if cpu, err := obs.CaptureCPUProfile(s.slo.profileCPUDur); err != nil {
		// Busy profiler (someone attached to -pprof-addr) — their capture
		// covers the moment; the heap profile below still lands.
		s.log.Warn("watchdog cpu profile skipped", "reason", reason, "err", err)
	} else {
		put("cpu", cpu)
	}
	if heap, err := obs.CaptureHeapProfile(); err != nil {
		s.log.Error("watchdog heap profile failed", "err", err)
	} else {
		put("heap", heap)
	}
	s.profileCaptures.Add(1)
}

// handleSLO serves the current multi-window error-budget evaluation.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	sts := s.sloStatuses()
	stale := false
	for _, st := range sts {
		if st.Stale {
			stale = true
		}
	}
	writeJSON(w, http.StatusOK, client.SLOReply{Instance: s.name, Stale: stale, SLOs: sts})
}

// handleUsage serves the per-client accounting ledger.
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	rows := s.usage.Snapshot()
	if rows == nil {
		rows = []obs.ClientUsage{}
	}
	writeJSON(w, http.StatusOK, client.UsageReply{Instance: s.name, Clients: rows})
}

// handleHistory serves the metrics ring: raw points plus precomputed
// SLO-window deltas/rates.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, BuildHistoryReply(s.name, s.slo.history))
}

// BuildHistoryReply assembles the /v1/metrics/history body for one ring
// (shared by daemon and gateway so the two endpoints cannot drift).
func BuildHistoryReply(instance string, h *obs.History) client.HistoryReply {
	rep := client.HistoryReply{
		Instance:    instance,
		IntervalSec: h.Interval().Seconds(),
		Points:      h.Snapshot(time.Time{}),
	}
	if rep.Points == nil {
		rep.Points = []obs.HistoryPoint{}
	}
	for _, d := range obs.DefaultSLOWindows() {
		if win, ok := h.Window(d); ok {
			if rep.Windows == nil {
				rep.Windows = map[string]obs.WindowStats{}
			}
			rep.Windows[windowKey(d)] = win
		}
	}
	return rep
}

// windowKey labels a window for the history reply's map ("5m", "1h").
func windowKey(d time.Duration) string {
	if d >= time.Hour && d%time.Hour == 0 {
		return fmt.Sprintf("%dh", d/time.Hour)
	}
	if d >= time.Minute && d%time.Minute == 0 {
		return fmt.Sprintf("%dm", d/time.Minute)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

// profileInfo is one captured profile as /v1/profiles lists it.
type profileInfo struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// handleProfiles lists the watchdog's captured profile artifacts (the
// CI forced-burn scenario asserts on this; operators fetch the bytes
// off the cache dir with the keys listed here).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	out := []profileInfo{}
	if s.store.results != nil {
		keys, err := s.store.results.Keys()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		for _, k := range keys {
			if k.Kind == artifact.KindProfile {
				out = append(out, profileInfo{Key: k.Key, Size: k.Size})
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"profiles": out})
}

// clientIDFrom identifies the requesting client for usage accounting:
// the X-Episim-Client header when present (forwarded by a gateway, set
// by repro/client when ClientID is configured), else the remote host —
// the same identity rule gateway admission throttles on.
func clientIDFrom(r *http.Request) string {
	if k := r.Header.Get("X-Episim-Client"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
