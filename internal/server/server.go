package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// Config sizes one episimd instance.
type Config struct {
	// Workers is the shared worker-slot pool bounding total simulation
	// parallelism across every concurrent sweep (0 = GOMAXPROCS).
	Workers int
	// MaxActive bounds how many sweeps execute at once; later
	// submissions queue FIFO (0 = 2).
	MaxActive int
	// CacheBytes is the LRU bound on retained populations + placements
	// shared across requests (0 = unbounded).
	CacheBytes int64
	// CacheDir, when non-empty, makes the daemon durable: the placement
	// cache gains a disk tier (CacheDir/populations, CacheDir/placements)
	// so restarts skip partitioning, and finished sweeps spill to
	// CacheDir/results so GET /result survives a restart.
	CacheDir string
	// Retain caps finished sweeps held in the memory index (0 =
	// unbounded). Evicted sweeps stay readable from the disk store.
	Retain int
	// ResultTTL evicts finished sweeps from the memory index once they
	// are this old (0 = never). With a cache dir it also expires their
	// disk records: result artifacts not read within the TTL are removed
	// by the background GC pass.
	ResultTTL time.Duration
	// CheckpointTTL expires on-disk fork-point checkpoints not read
	// within this age (0 = never). Checkpoints are the largest artifacts
	// the cache dir holds and are only worth keeping while their sweep
	// spec is iterated on, so they get their own horizon instead of
	// competing with hot placements under StoreMaxBytes. Requires
	// CacheDir.
	CheckpointTTL time.Duration
	// Name identifies this instance (reported by /healthz; a gateway
	// fronting several instances shows it). Empty = anonymous.
	Name string
	// StoreMaxBytes bounds the on-disk placement store: a background LRU
	// sweep prunes least-recently-used placement artifacts past the bound
	// (0 = unbounded). Requires CacheDir.
	StoreMaxBytes int64
	// GCInterval is the cadence of the disk GC pass (0 = 1 minute).
	GCInterval time.Duration
	// Logger receives the daemon's structured log lines (nil = a plain
	// text logger on stderr at info level, the historical behavior).
	Logger *obs.Logger

	// HistoryInterval is the metrics-history ring's self-snapshot cadence
	// (0 = 5s); HistorySize its point capacity (0 = one hour's worth,
	// bounded to [16, 4096]). The ring is the SLO engine's only data
	// source: burn rates exist without any external scraper.
	HistoryInterval time.Duration
	HistorySize     int
	// QueueWaitSLOSeconds is the queue-wait latency objective's budget: a
	// sweep whose admission delay stays at or under it counts as good
	// (0 = 30s).
	QueueWaitSLOSeconds float64
	// BurnThreshold arms the profiling watchdog: when any SLO's
	// short-window burn rate reaches it, the daemon captures CPU+heap
	// pprof profiles into the artifact store (0 = 14, the classic
	// page-now burn; requires CacheDir — without one there is nowhere to
	// persist the evidence).
	BurnThreshold float64
	// ProfileQueueDepth additionally triggers a capture when the queue
	// depth reaches it (0 = queue depth never triggers).
	ProfileQueueDepth int
	// ProfileCooldown is the minimum spacing between captures (0 = 10m).
	ProfileCooldown time.Duration
	// ProfileCPUSeconds is the CPU profile's sampling duration (0 = 1s).
	ProfileCPUSeconds float64
}

// defaultLogger is the stderr text logger used when none is configured.
func defaultLogger() *obs.Logger {
	return obs.NewLogger(os.Stderr, "text", obs.LevelInfo, "episimd")
}

// Server is the episimd service core: job store, scheduler, shared
// caches, and the HTTP handler over them.
type Server struct {
	store   *store
	sched   *scheduler
	cache   *episim.SweepCache
	started time.Time

	name     string
	cacheDir string
	log      *obs.Logger

	// Latency histograms, fed from request handling and from job span
	// observers (one code path records both the per-job timeline and the
	// daemon-wide distribution, so the two can never disagree).
	submitHist    *obs.Histogram
	queueWaitHist *obs.Histogram
	plBuildHist   *obs.Histogram
	cellHist      *obs.Histogram
	persistHist   *obs.Histogram

	// SLO-plane counters: request outcomes the availability objectives
	// divide, and the watchdog's capture count.
	submitsTotal    atomic.Int64
	submitErrors    atomic.Int64
	eventsSent      atomic.Int64
	eventSendErrors atomic.Int64
	profileCaptures atomic.Int64

	// usage is the per-client accounting ledger (shared with the store,
	// which attributes cells and cache hits at job terminal).
	usage *obs.UsageLedger
	// slo is the metrics-history ring, SLO evaluator and watchdog.
	slo sloPlane

	// Disk GC: a background loop prunes the placement store to
	// storeMaxBytes (LRU) and expires result records past resultTTL and
	// checkpoints past ckptTTL.
	storeMaxBytes int64
	resultTTL     time.Duration
	ckptTTL       time.Duration
	gcStop        chan struct{}
	gcDone        chan struct{}
}

// New builds a server executing sweeps with the real engine.
func New(cfg Config) (*Server, error) {
	return newWithRunner(cfg, episim.RunSweepContext)
}

// newWithRunner lets tests substitute a controllable sweep runner.
func newWithRunner(cfg Config, run sweepRunner) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cache, err := episim.NewSweepCacheDir(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	st := newStore()
	if cfg.CacheDir != "" {
		results, err := artifact.NewStore(filepath.Join(cfg.CacheDir, "results"))
		if err != nil {
			return nil, err
		}
		st = newDurableStore(results, cfg.Retain, cfg.ResultTTL)
	} else if cfg.Retain > 0 || cfg.ResultTTL > 0 {
		// Retention without a disk store still bounds memory; evicted
		// sweeps are simply gone, as documented on the flags.
		st.retain = cfg.Retain
		st.ttl = cfg.ResultTTL
	}
	log := cfg.Logger
	if log == nil {
		log = defaultLogger()
	}
	st.log = log
	slots := episim.NewSweepSlots(cfg.Workers)
	srv := &Server{
		store:         st,
		sched:         newScheduler(st, cache, slots, cfg.Workers, cfg.MaxActive, run),
		cache:         cache,
		started:       time.Now(),
		name:          cfg.Name,
		cacheDir:      cfg.CacheDir,
		log:           log,
		storeMaxBytes: cfg.StoreMaxBytes,
		resultTTL:     cfg.ResultTTL,
		ckptTTL:       cfg.CheckpointTTL,

		submitHist:    obs.NewHistogram("episimd_submit_seconds", "Submission handling latency (parse + enqueue).", nil),
		queueWaitHist: obs.NewHistogram("episimd_queue_wait_seconds", "Time sweeps spent queued before execution started.", nil),
		plBuildHist:   obs.NewHistogram("episimd_placement_build_seconds", "Placement partition build time (cache misses only).", nil),
		cellHist:      obs.NewHistogram("episimd_cell_seconds", "Per-replicate simulation time.", nil),
		persistHist:   obs.NewHistogram("episimd_result_persist_seconds", "Time writing finished job records to the disk store.", nil),

		usage: obs.NewUsageLedger(),
	}
	st.usage = srv.usage
	srv.slo = sloPlane{
		specs:             SLOSpecs(cfg.QueueWaitSLOSeconds),
		burnThreshold:     cfg.BurnThreshold,
		profileQueueDepth: cfg.ProfileQueueDepth,
		profileCPUDur:     time.Duration(cfg.ProfileCPUSeconds * float64(time.Second)),
		cooldown:          cfg.ProfileCooldown,
	}
	if srv.slo.burnThreshold <= 0 {
		srv.slo.burnThreshold = 14
	}
	if srv.slo.profileCPUDur <= 0 {
		srv.slo.profileCPUDur = time.Second
	}
	if srv.slo.cooldown <= 0 {
		srv.slo.cooldown = 10 * time.Minute
	}
	srv.slo.history = obs.NewHistory(cfg.HistorySize, cfg.HistoryInterval, func() obs.HistoryPoint {
		return StatsHistoryPoint(srv.stats(), false)
	})
	srv.slo.history.OnAppend(srv.onHistoryPoint)
	srv.slo.history.Start()
	if cfg.CacheDir != "" && (cfg.StoreMaxBytes > 0 || cfg.ResultTTL > 0 || cfg.CheckpointTTL > 0) {
		interval := cfg.GCInterval
		if interval <= 0 {
			interval = time.Minute
		}
		srv.gcStop = make(chan struct{})
		srv.gcDone = make(chan struct{})
		go srv.gcLoop(interval)
	}
	return srv, nil
}

// Close cancels running sweeps, drains the runner pool and stops the
// disk GC loop.
func (s *Server) Close() {
	s.sched.close()
	s.slo.history.Stop()
	if s.gcStop != nil {
		close(s.gcStop)
		<-s.gcDone
		s.gcStop = nil
	}
}

// gcLoop periodically bounds the disk stores: an LRU sweep over the
// placement store and a TTL expiry over persisted results. One pass runs
// immediately so a restarted daemon reclaims space before serving.
func (s *Server) gcLoop(interval time.Duration) {
	defer close(s.gcDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		s.runGC()
		select {
		case <-t.C:
		case <-s.gcStop:
			return
		}
	}
}

// runGC executes one disk GC pass. Failures are logged, never fatal: GC
// exists to reclaim space, not to gate service.
func (s *Server) runGC() {
	if s.storeMaxBytes > 0 {
		if files, bytes, err := s.cache.GCPlacements(s.storeMaxBytes); err != nil {
			s.log.Error("placement GC failed", "err", err)
		} else if files > 0 {
			s.log.Info("placement GC pruned artifacts", "files", files, "bytes", bytes)
		}
	}
	if s.resultTTL > 0 && s.store.results != nil {
		if files, bytes, err := s.store.results.ExpireOlderThan(s.resultTTL); err != nil {
			s.log.Error("result GC failed", "err", err)
		} else if files > 0 {
			s.log.Info("result GC expired records", "files", files, "bytes", bytes)
		}
	}
	if s.ckptTTL > 0 {
		if files, bytes, err := s.cache.ExpireCheckpoints(s.ckptTTL); err != nil {
			s.log.Error("checkpoint GC failed", "err", err)
		} else if files > 0 {
			s.log.Info("checkpoint GC expired artifacts", "files", files, "bytes", bytes)
		}
	}
}

// observeSpan feeds the daemon-wide latency histograms from job spans —
// the timeline's observer hook, so per-job traces and fleet histograms
// are two views of the same measurements.
func (s *Server) observeSpan(sp obs.Span) {
	switch sp.Name {
	case "queue_wait":
		s.queueWaitHist.Observe(sp.Seconds)
	case "placement_build":
		s.plBuildHist.Observe(sp.Seconds)
	case "sim":
		s.cellHist.Observe(sp.Seconds)
	case "result_persist":
		s.persistHist.Observe(sp.Seconds)
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/sweeps             submit a SweepSpec, 202 + {id}
//	GET    /v1/sweeps             list jobs
//	GET    /v1/sweeps/{id}        one job's status
//	GET    /v1/sweeps/{id}/result full aggregate once finished
//	GET    /v1/sweeps/{id}/trace  span timeline: where the wall clock went
//	GET    /v1/sweeps/{id}/events SSE (or ?format=ndjson) cell stream,
//	                              replayable via ?from= / Last-Event-ID
//	POST   /v1/sweeps/{id}/cancel stop a queued or running sweep
//	DELETE /v1/sweeps/{id}        same as cancel
//	GET    /v1/stats              service + cache metrics (JSON)
//	GET    /v1/slo                error-budget burn per SLO (5m/1h windows)
//	GET    /v1/usage              per-client usage accounting ledger
//	GET    /v1/metrics/history    the in-process metrics ring + windowed rates
//	GET    /v1/profiles           watchdog-captured pprof artifacts
//	GET    /metrics               the same, Prometheus text format
//	GET    /healthz               readiness: queue depth, active sweeps,
//	                              cache-dir writability (503 when degraded)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.store.list())
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.withJob(s.handleTrace))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", s.withJob(s.handleCancel))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.stats())
	})
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/usage", s.handleUsage)
	mux.HandleFunc("GET /v1/metrics/history", s.handleHistory)
	mux.HandleFunc("GET /v1/profiles", s.handleProfiles)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the readiness probe a fronting gateway (episim-gw)
// polls: cheap, allocation-light, and honest about whether this instance
// can actually take work — a daemon whose cache dir stopped being
// writable would accept sweeps only to fail persisting their placements
// and results, so that degrades readiness to 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := client.HealthReply{
		Status:       "ok",
		Instance:     s.name,
		UptimeSec:    time.Since(s.started).Seconds(),
		QueueDepth:   s.sched.queueDepth(),
		ActiveSweeps: s.sched.activeCount(),
		MaxActive:    s.sched.maxActive,
	}
	if s.cacheDir != "" {
		h.CacheDir = s.cacheDir
		writable := true
		if err := checkWritable(s.cacheDir); err != nil {
			writable = false
			h.Status = "degraded"
			h.Error = err.Error()
		}
		h.CacheDirWritable = &writable
	}
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// checkWritable proves dir accepts writes by creating and removing a
// probe file — permissions lie (root ignores mode bits) and statfs lies
// (full disks stat fine), so actually writing is the only honest check.
func checkWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".healthz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// withJob resolves {id} before invoking h.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.store.get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown sweep %q", id)
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.submitHist.ObserveSince(start)
	s.submitsTotal.Add(1)
	clientID := clientIDFrom(r)
	spec, err := episim.ParseSweepSpec(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		s.submitErrors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Adopt the caller's trace id (sanitized — it travels in headers and
	// log lines) or mint one, and start the job's span timeline. The
	// observer wires every span into the daemon-wide histograms — and
	// attributes each replicate's sim time to the submitting client, so
	// the usage ledger and the latency histograms are two views of the
	// same measurements.
	traceID := obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader))
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	trace := obs.NewTimeline(traceID)
	trace.SetObserver(func(sp obs.Span) {
		s.observeSpan(sp)
		if sp.Name == "sim" {
			s.usage.Add(clientID, obs.ClientUsage{SimSeconds: sp.Seconds})
		}
	})
	s.usage.Add(clientID, obs.ClientUsage{Submissions: 1})
	j := s.sched.submit(spec, traceID, trace, clientID)
	// The admission span opens at handler entry, before the job's
	// created stamp, so the timeline covers the submit path itself.
	trace.Add("admission", "", start, time.Now())
	s.log.Info("sweep accepted", "job", j.id, "trace", traceID,
		"cells", j.cells, "replicates", spec.Replicates)
	w.Header().Set(obs.TraceHeader, traceID)
	writeJSON(w, http.StatusAccepted, client.SubmitReply{
		ID:          j.id,
		Cells:       j.cells,
		Simulations: j.cells * spec.Replicates,
		TraceID:     traceID,
		SpecVersion: spec.Version(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *job) {
	writeJSON(w, http.StatusOK, s.store.status(j))
}

// handleTrace serves a sweep's span timeline. The reply's ID is the
// backend-local job id and is NOT rewritten by a fronting gateway — the
// gateway relays these bytes verbatim, so a trace fetched through it is
// byte-identical to one fetched from the owning backend directly.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, j *job) {
	st := s.store.status(j)
	spans, dropped := j.trace.Snapshot()
	tr := client.TraceReply{
		ID:           st.ID,
		TraceID:      st.TraceID,
		State:        st.State,
		Created:      st.Created,
		Started:      st.Started,
		Finished:     st.Finished,
		Spans:        spans,
		SpansDropped: dropped,
	}
	if spans == nil {
		tr.Spans = []client.TraceSpan{} // archived jobs: explicit empty, not null
	}
	end := time.Now()
	if st.Finished != nil {
		end = *st.Finished
	}
	tr.WallSeconds = end.Sub(st.Created).Seconds()
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, j *job) {
	raw, state, err := s.store.resultBytes(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if raw == nil {
		// Distinguish "not yet" (retryable 409) from "never": a canceled
		// or failed run that produced no aggregate is permanent.
		if state.Terminal() {
			writeError(w, http.StatusGone, "sweep %s is %s and produced no result", j.id, state)
			return
		}
		writeError(w, http.StatusConflict, "sweep %s is %s; no result yet", j.id, state)
		return
	}
	// Serve the canonical bytes materialized at finish (or reloaded from
	// the disk store) — identical before and after a daemon restart.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *job) {
	if !s.store.requestCancel(j) {
		writeError(w, http.StatusConflict, "sweep %s already %s", j.id, s.store.status(j).State)
		return
	}
	writeJSON(w, http.StatusOK, s.store.status(j))
}

// handleEvents streams a sweep's cell aggregates as they finalize.
// Server-sent events by default; ?format=ndjson (or an NDJSON Accept
// header) switches to one JSON object per line. ?from=N — or a
// Last-Event-ID header on SSE reconnect — replays the retained log from
// that sequence number (default 0: everything) before going live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *job) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from=%q", v)
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			from = n + 1
		}
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := j.hub.subscribe(from)
	defer unsub()

	// Delivery accounting: sends and failures feed the event-delivery
	// SLO; payload bytes accrue to the requesting client's usage row,
	// flushed once at stream end rather than per event.
	clientID := clientIDFrom(r)
	var streamedBytes int64
	defer func() {
		if streamedBytes > 0 {
			s.usage.Add(clientID, obs.ClientUsage{StreamedBytes: streamedBytes})
		}
	}()
	send := func(ev client.Event) bool {
		payload, err := json.Marshal(ev)
		if err != nil {
			s.eventSendErrors.Add(1)
			return false
		}
		if ndjson {
			if _, err := fmt.Fprintf(w, "%s\n", payload); err != nil {
				s.eventSendErrors.Add(1)
				return false
			}
		} else {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
				ev.Seq, ev.Type, payload); err != nil {
				s.eventSendErrors.Add(1)
				return false
			}
		}
		flusher.Flush()
		s.eventsSent.Add(1)
		streamedBytes += int64(len(payload))
		return true
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	// Heartbeat during quiet stretches (a slow cell can produce no events
	// for minutes) so idle-timeout proxies don't cut healthy streams: an
	// SSE comment line, or a bare newline for NDJSON — both ignored by
	// consumers.
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // stream complete (or subscriber dropped: reconnect replays)
			}
			if !send(ev) {
				return
			}
		case <-heartbeat.C:
			var err error
			if ndjson {
				_, err = fmt.Fprint(w, "\n")
			} else {
				_, err = fmt.Fprint(w, ": keepalive\n\n")
			}
			if err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) stats() client.StatsReply {
	total, _, _, done, failed, canceled, evicted := s.store.counts()
	uptime := time.Since(s.started).Seconds()
	cells := s.sched.cellsStreamed.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(cells) / uptime
	}
	reply := client.StatsReply{
		UptimeSec:       uptime,
		QueueDepth:      s.sched.queueDepth(),
		ActiveSweeps:    s.sched.activeCount(),
		SweepsTotal:     total,
		SweepsDone:      done,
		SweepsFailed:    failed,
		SweepsCanceled:  canceled,
		SweepsEvicted:   evicted,
		CellsStreamed:   cells,
		CellsPerSec:     perSec,

		SubmitsTotal:      s.submitsTotal.Load(),
		SubmitErrors:      s.submitErrors.Load(),
		EventsSent:        s.eventsSent.Load(),
		EventsSendErrors:  s.eventSendErrors.Load(),
		TraceDroppedSpans: s.store.droppedSpans.Load(),
		ProfileCaptures:   s.profileCaptures.Load(),

		KernelDays:      s.sched.kernelDaysSnapshot(),
		PopulationCache: s.cache.PopulationStats(),
		PlacementCache:  s.cache.PlacementStats(),
		CheckpointCache: s.cache.CheckpointStats(),

		CheckpointRestores: s.cache.CheckpointRestores(),
		CheckpointBytes:    s.cache.CheckpointBytes(),
	}
	if pop, pl, ok := s.cache.StoreStats(); ok {
		reply.PopulationStore = &pop
		reply.PlacementStore = &pl
	}
	if ck, ok := s.cache.CheckpointStoreStats(); ok {
		reply.CheckpointStore = &ck
	}
	if s.store.results != nil {
		st := s.store.results.Stats()
		reply.ResultStore = &st
	}
	reply.Histograms = []obs.HistogramSnapshot{
		s.submitHist.Snapshot(),
		s.queueWaitHist.Snapshot(),
		s.plBuildHist.Snapshot(),
		s.cellHist.Snapshot(),
		s.persistHist.Snapshot(),
	}
	return reply
}

// handleMetrics renders the stats snapshot as Prometheus text-format
// gauges/counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	WriteMetrics(w, s.stats())
	obs.WriteSLOProm(w, s.sloStatuses())
	obs.WriteRuntimeMetrics(w)
}

// promMetric is one scalar series in the /metrics rendering: every
// series gets a HELP/TYPE block, and the TYPE is honest — counters are
// monotonic over the daemon's life, everything else is a gauge. The
// sweep state tallies (done/failed/canceled) are gauges on purpose:
// they count jobs currently in the memory index, which retention
// eviction decreases.
type promMetric struct {
	name string
	kind string // "counter" or "gauge"
	help string
	val  float64
}

func writePromMetric(w io.Writer, m promMetric) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		m.name, m.help, m.name, m.kind,
		m.name, strconv.FormatFloat(m.val, 'g', -1, 64))
}

// cacheMetrics renders one build cache's accounting under prefix.
func cacheMetrics(prefix string, c episim.SweepCacheStats) []promMetric {
	return []promMetric{
		{prefix + "_entries", "gauge", "Entries resident in the memory LRU.", float64(c.Entries)},
		{prefix + "_bytes", "gauge", "Bytes retained by the memory LRU.", float64(c.Bytes)},
		{prefix + "_hits_total", "counter", "Memory cache hits.", float64(c.Hits)},
		{prefix + "_misses_total", "counter", "Memory cache misses.", float64(c.Misses)},
		{prefix + "_evictions_total", "counter", "Entries evicted by the byte bound.", float64(c.Evictions)},
		{prefix + "_builds_total", "counter", "Artifacts built from scratch (singleflight-deduplicated).", float64(c.Builds)},
		{prefix + "_disk_hits_total", "counter", "Disk tier hits (artifact loaded instead of rebuilt).", float64(c.DiskHits)},
		{prefix + "_disk_misses_total", "counter", "Disk tier misses.", float64(c.DiskMisses)},
		{prefix + "_disk_writes_total", "counter", "Artifacts written through to the disk tier.", float64(c.DiskWrites)},
		{prefix + "_disk_errors_total", "counter", "Disk tier read/write failures (served from build instead).", float64(c.DiskErrors)},
	}
}

// storeMetrics renders one artifact store's size and GC accounting.
func storeMetrics(prefix, what string, st *episim.SweepStoreStats) []promMetric {
	return []promMetric{
		{prefix + "_files", "gauge", "Files in the " + what + " store.", storeFiles(st)},
		{prefix + "_bytes", "gauge", "Bytes in the " + what + " store.", storeBytes(st)},
	}
}

// WriteMetrics renders a StatsReply as Prometheus text-format series,
// each with its HELP/TYPE block. Exported so episim-gw can serve the
// cluster-aggregated snapshot in exactly the per-instance metric
// vocabulary.
func WriteMetrics(w io.Writer, st client.StatsReply) {
	metrics := []promMetric{
		{"episimd_uptime_seconds", "gauge", "Seconds since the daemon started.", st.UptimeSec},
		{"episimd_queue_depth", "gauge", "Sweeps queued and still waiting for an execution slot.", float64(st.QueueDepth)},
		{"episimd_active_sweeps", "gauge", "Sweeps executing right now.", float64(st.ActiveSweeps)},
		{"episimd_sweeps", "gauge", "Sweeps in the memory index, any state.", float64(st.SweepsTotal)},
		{"episimd_sweeps_done", "gauge", "Completed sweeps in the memory index (decreases on retention eviction).", float64(st.SweepsDone)},
		{"episimd_sweeps_failed", "gauge", "Failed sweeps in the memory index (decreases on retention eviction).", float64(st.SweepsFailed)},
		{"episimd_sweeps_canceled", "gauge", "Canceled sweeps in the memory index (decreases on retention eviction).", float64(st.SweepsCanceled)},
		{"episimd_sweeps_evicted_total", "counter", "Finished sweeps evicted from the memory index by retention.", float64(st.SweepsEvicted)},
		{"episimd_cells_streamed_total", "counter", "Sweep cells finalized and streamed to subscribers.", float64(st.CellsStreamed)},
		{"episimd_cells_per_second", "gauge", "Mean cell throughput over the daemon's uptime.", st.CellsPerSec},
		{"episimd_submissions_received_total", "counter", "Sweep submissions received (accepted or not).", float64(st.SubmitsTotal)},
		{"episimd_submission_errors_total", "counter", "Sweep submissions refused (parse or admission failure).", float64(st.SubmitErrors)},
		{"episimd_events_sent_total", "counter", "Event-stream messages delivered to subscribers.", float64(st.EventsSent)},
		{"episimd_event_send_errors_total", "counter", "Event-stream sends that failed (subscriber gone mid-write).", float64(st.EventsSendErrors)},
		{"episimd_trace_dropped_spans_total", "counter", "Spans dropped past the per-job trace retention cap.", float64(st.TraceDroppedSpans)},
		{"episimd_profile_captures_total", "counter", "Watchdog-triggered pprof capture events persisted to the artifact store.", float64(st.ProfileCaptures)},
	}
	metrics = append(metrics, cacheMetrics("episimd_population_cache", st.PopulationCache)...)
	metrics = append(metrics, cacheMetrics("episimd_placement_cache", st.PlacementCache)...)
	metrics = append(metrics, cacheMetrics("episimd_checkpoint_cache", st.CheckpointCache)...)
	metrics = append(metrics, storeMetrics("episimd_population_store", "population", st.PopulationStore)...)
	metrics = append(metrics, storeMetrics("episimd_placement_store", "placement", st.PlacementStore)...)
	metrics = append(metrics, storeMetrics("episimd_result_store", "result", st.ResultStore)...)
	metrics = append(metrics, storeMetrics("episimd_checkpoint_store", "checkpoint", st.CheckpointStore)...)
	metrics = append(metrics,
		promMetric{"episimd_placement_store_gc_files_total", "counter", "Placement artifacts pruned by the LRU disk GC.", storeGCFiles(st.PlacementStore)},
		promMetric{"episimd_placement_store_gc_bytes_total", "counter", "Bytes reclaimed from the placement store by GC.", storeGCBytes(st.PlacementStore)},
		promMetric{"episimd_result_store_gc_files_total", "counter", "Result records expired by the TTL disk GC.", storeGCFiles(st.ResultStore)},
		promMetric{"episimd_result_store_gc_bytes_total", "counter", "Bytes reclaimed from the result store by GC.", storeGCBytes(st.ResultStore)},
		promMetric{"episimd_checkpoint_store_gc_files_total", "counter", "Checkpoint artifacts expired by the TTL disk GC.", storeGCFiles(st.CheckpointStore)},
		promMetric{"episimd_checkpoint_store_gc_bytes_total", "counter", "Bytes reclaimed from the checkpoint store by GC.", storeGCBytes(st.CheckpointStore)},
		// The fork-economics trio: prefix builds no cache tier absorbed,
		// branch resumes served from a checkpoint, and the estimated
		// in-memory bytes of every checkpoint built.
		promMetric{"episimd_checkpoint_builds_total", "counter", "Fork-point checkpoint prefix executions (no cache tier absorbed them).", float64(st.CheckpointCache.Builds)},
		promMetric{"episimd_checkpoint_restores_total", "counter", "Intervention branches resumed from a checkpoint instead of day 0.", float64(st.CheckpointRestores)},
		promMetric{"episimd_checkpoint_bytes_total", "counter", "Estimated in-memory bytes of checkpoints built by this daemon.", float64(st.CheckpointBytes)},
	)
	for _, m := range metrics {
		writePromMetric(w, m)
	}
	writeKernelDays(w, st.KernelDays)
	obs.WriteHistogramsProm(w, st.Histograms)
}

// writeKernelDays renders the per-kernel day counters as one labeled
// counter series, kernels in sorted order for a stable scrape.
func writeKernelDays(w io.Writer, kd map[string]int64) {
	if len(kd) == 0 {
		return
	}
	names := make([]string, 0, len(kd))
	for k := range kd {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP episimd_kernel_days_total Simulated days by executing kernel.\n# TYPE episimd_kernel_days_total counter\n")
	for _, k := range names {
		fmt.Fprintf(w, "episimd_kernel_days_total{kernel=%q} %d\n", k, kd[k])
	}
}

// storeFiles/storeBytes render optional store stats as gauges (0 when
// the daemon runs without a cache dir, keeping the metric set stable).
func storeFiles(st *episim.SweepStoreStats) float64 {
	if st == nil {
		return 0
	}
	return float64(st.Files)
}

func storeBytes(st *episim.SweepStoreStats) float64 {
	if st == nil {
		return 0
	}
	return float64(st.Bytes)
}

func storeGCFiles(st *episim.SweepStoreStats) float64 {
	if st == nil {
		return 0
	}
	return float64(st.GCFiles)
}

func storeGCBytes(st *episim.SweepStoreStats) float64 {
	if st == nil {
		return 0
	}
	return float64(st.GCBytes)
}
