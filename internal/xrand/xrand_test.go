package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(3)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewStream(5)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := NewStream(9)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	s := NewStream(13)
	xm, alpha := 2.0, 2.5
	n := 100000
	min := math.Inf(1)
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below scale: %v < %v", v, xm)
		}
		if v < min {
			min = v
		}
		sum += v
	}
	// E[X] = alpha*xm/(alpha-1) for alpha > 1.
	want := alpha * xm / (alpha - 1)
	mean := sum / float64(n)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 5.5, 40} {
		s := NewStream(uint64(lambda * 100))
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := NewStream(77)
	for i := 0; i < 10000; i++ {
		if s.Poisson(100) < 0 {
			t.Fatal("Poisson returned negative count")
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Fatal("Hash is not deterministic")
	}
	if Hash(1, 2, 3) == Hash(3, 2, 1) {
		t.Fatal("Hash should be order-sensitive")
	}
	if Hash(1) == Hash(1, 0) {
		t.Fatal("Hash should be length-sensitive")
	}
}

func TestKeyedFloat64Properties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		v := KeyedFloat64(a, b, c)
		return v >= 0 && v < 1 && v == KeyedFloat64(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedFloat64Uniformity(t *testing.T) {
	// Bucket keyed draws over sequential keys: must look uniform, i.e.
	// sequential ids must not correlate.
	const buckets = 16
	counts := make([]int, buckets)
	n := 160000
	for i := 0; i < n; i++ {
		v := KeyedFloat64(uint64(i), 42)
		counts[int(v*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%v", b, c, want)
		}
	}
}

func TestKeyedIntnRange(t *testing.T) {
	f := func(a, b uint64) bool {
		v := KeyedIntn(10, a, b)
		return v >= 0 && v < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedStreamIndependence(t *testing.T) {
	a := KeyedStream(1, 2)
	b := KeyedStream(1, 2)
	c := KeyedStream(2, 1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("KeyedStream with equal keys diverged")
	}
	a2, c2 := a.Uint64(), c.Uint64()
	if a2 == c2 {
		t.Fatal("KeyedStream with different keys coincided")
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkKeyedFloat64(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += KeyedFloat64(uint64(i), 17, 3)
	}
	_ = sink
}
