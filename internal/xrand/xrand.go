// Package xrand provides deterministic, partition-invariant random number
// generation for the simulation.
//
// EpiSimdemics requires that stochastic outcomes (health-state transitions,
// dwell times, transmission trials) be functions of simulation *content*
// (person ids, day numbers, interaction pairs) rather than of execution
// order. Otherwise changing the data distribution (RR vs GP vs splitLoc)
// or the number of PEs would change the epidemic itself, making performance
// comparisons meaningless and tests impossible. The package therefore
// exposes two layers:
//
//   - Stream: a fast sequential SplitMix64 generator, used where a seeded
//     sequence is fine (population synthesis).
//   - Keyed draws: stateless hash-based draws keyed by tuples of ids, used
//     inside the simulation day loop so that every draw is reproducible no
//     matter where or when it executes.
package xrand

import "math"

// Stream is a sequential SplitMix64 pseudo random number generator.
// SplitMix64 passes BigCrush, has a 2^64 period, and is trivially seedable,
// which is all the simulation needs; crypto quality is irrelevant here.
// The zero value is a valid stream seeded with 0.
type Stream struct {
	state uint64
}

// NewStream returns a Stream seeded with seed.
func NewStream(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Seed resets the stream to the given seed.
func (s *Stream) Seed(seed uint64) { s.state = seed }

const (
	gamma = 0x9e3779b97f4a7c15 // golden-ratio increment for the Weyl sequence
	mulA  = 0xbf58476d1ce4e5b9
	mulB  = 0x94d049bb133111eb
)

// mix64 is the SplitMix64 output function: a strong 64-bit finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mulA
	z = (z ^ (z >> 27)) * mulB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Stream) Uint64() uint64 {
	s.state += gamma
	return mix64(s.state)
}

// Float64 returns the next value uniformly distributed in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (s *Stream) NormFloat64() float64 {
	// Box-Muller: cheap enough for synthesis workloads and has no
	// rejection loop, so it consumes a fixed number of stream values,
	// keeping generation deterministic under refactoring.
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Stream) ExpFloat64() float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Pareto returns a Pareto(xm, alpha) distributed value: the canonical
// heavy-tailed capacity/degree generator. xm is the scale (minimum value),
// alpha the tail exponent; smaller alpha means heavier tail.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson(lambda) distributed count using Knuth's
// algorithm for small lambda and a normal approximation above 30, which is
// accurate to well under the noise floor of the workloads generated here.
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := math.Round(lambda + math.Sqrt(lambda)*s.NormFloat64())
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash combines an arbitrary tuple of 64-bit keys into a single
// well-mixed 64-bit hash. It is the basis of all keyed draws.
func Hash(keys ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, k := range keys {
		h ^= mix64(k + gamma)
		h = mix64(h)
	}
	return h
}

// KeyedFloat64 returns a uniform value in [0,1) determined solely by the
// key tuple. Identical keys always produce identical values, regardless of
// call order, goroutine, or data layout.
func KeyedFloat64(keys ...uint64) float64 {
	return float64(Hash(keys...)>>11) / (1 << 53)
}

// KeyedIntn returns a uniform integer in [0,n) determined solely by the
// key tuple. It panics if n <= 0.
func KeyedIntn(n int, keys ...uint64) int {
	if n <= 0 {
		panic("xrand: KeyedIntn with non-positive n")
	}
	return int(Hash(keys...) % uint64(n))
}

// KeyedStream returns a Stream whose seed is derived from the key tuple.
// Useful when a keyed site needs several draws (e.g. a person's schedule
// for one day).
func KeyedStream(keys ...uint64) *Stream {
	return &Stream{state: Hash(keys...)}
}
