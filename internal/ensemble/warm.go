package ensemble

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/synthpop"
)

// WarmResult reports what a warm pass did: how many unique populations
// and placements the grid needs, and — per content key — how many were
// actually built this pass (0 = already cached, in memory or on disk).
type WarmResult struct {
	Populations      int            `json:"populations"`
	Placements       int            `json:"placements"`
	PopulationBuilds map[string]int `json:"population_builds"`
	PlacementBuilds  map[string]int `json:"placement_builds"`
}

// Built sums the placement builds the pass executed.
func (w *WarmResult) Built() int {
	n := 0
	for _, b := range w.PlacementBuilds {
		n += b
	}
	return n
}

// WarmContext builds every unique population and placement of the
// spec's grid WITHOUT running any simulation — the pre-warm pass behind
// `sweep -warm`: populate a disk-tiered cache once (in CI, on an
// operator box), and every later run of the spec, in any process, skips
// partitioning entirely.
//
// Builds run through the same content-keyed caches as a real sweep
// (opts.PopulationCache / opts.PlacementCache when provided), so a warm
// pass racing a live sweep still builds each key exactly once, and a
// pass over an already-warm cache builds nothing. Unique placements are
// warmed concurrently on spec.Workers goroutines (placement builds
// dominate, and they parallelize independently).
//
// Unlike a sweep run, a failing build fails the pass (first error wins,
// in-flight builds finish): a warm pass exists only to populate the
// cache, so there is no partial result worth returning.
func WarmContext(ctx context.Context, spec *Spec, hooks Hooks, opts *RunOptions) (*WarmResult, error) {
	if hooks.GeneratePopulation == nil || hooks.BuildPlacement == nil {
		return nil, fmt.Errorf("ensemble: incomplete hooks")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &RunOptions{}
	}
	spec = spec.clone()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	popCache := opts.PopulationCache
	if popCache == nil {
		popCache = newBuildCache()
	}
	plCache := opts.PlacementCache
	if plCache == nil {
		plCache = newBuildCache()
	}
	popCounts := newRunCounter()
	plCounts := newRunCounter()

	// One task per unique placement key, in grid order; the population
	// cache's singleflight dedupes the population builds underneath.
	type task struct {
		pop PopulationSpec
		pl  PlacementSpec
	}
	var tasks []task
	popKeys := map[string]bool{}
	plKeys := map[string]bool{}
	for _, cell := range spec.Cells() {
		popKey := cell.Population.Key(spec.Seed)
		popKeys[popKey] = true
		plKey := cell.Placement.Key(popKey)
		if plKeys[plKey] {
			continue
		}
		plKeys[plKey] = true
		tasks = append(tasks, task{pop: cell.Population, pl: cell.Placement})
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstEr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		errMu.Unlock()
	}
	ch := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range ch {
				if ctx.Err() != nil {
					continue
				}
				popKey := tk.pop.Key(spec.Seed)
				popSeed := tk.pop.Seed
				if popSeed == 0 {
					popSeed = spec.Seed
				}
				popStart := time.Now()
				popAny, built, err := popCache.get(ctx, popKey, func() (any, error) {
					return hooks.GeneratePopulation(tk.pop, popSeed)
				})
				if err != nil {
					setErr(fmt.Errorf("ensemble: population %s: %w", tk.pop.Label(), err))
					continue
				}
				recordCacheSpan(opts.Trace, "population", tk.pop.Label(), popStart, built)
				popCounts.record(popKey, built)
				pl := tk.pl
				plStart := time.Now()
				_, built, err = plCache.get(ctx, pl.Key(popKey), func() (any, error) {
					return hooks.BuildPlacement(popAny.(*synthpop.Population), pl, popSeed)
				})
				if err != nil {
					setErr(fmt.Errorf("ensemble: placement %s: %w", pl.Label(), err))
					continue
				}
				recordCacheSpan(opts.Trace, "placement", pl.Label(), plStart, built)
				plCounts.record(pl.Key(popKey), built)
			}
		}()
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstEr != nil {
		return nil, firstEr
	}
	return &WarmResult{
		Populations:      len(popKeys),
		Placements:       len(plKeys),
		PopulationBuilds: popCounts.snapshot(),
		PlacementBuilds:  plCounts.snapshot(),
	}, nil
}
