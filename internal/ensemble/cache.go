package ensemble

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a content-keyed build-once cache designed to outlive a single
// sweep: the server keeps one per process so placements built for one
// request are reused by every later request with the same content key.
//
// It combines three mechanisms:
//
//   - singleflight: the first caller of a key runs the build while
//     concurrent callers of the same key block until it finishes, then
//     share the value read-only — this is what lets two simultaneous
//     sweep submissions share one placement build;
//   - an LRU byte bound: completed entries are charged their sized bytes
//     and evicted least-recently-used once MaxBytes is exceeded (0 means
//     unbounded), so a long-running daemon cannot grow without limit;
//   - accounting: hits, misses, builds and evictions are counted, which
//     is how tests (and the /v1/stats endpoint) prove sharing works.
//
// Failed builds are NOT retained: waiters in flight observe the error,
// then the key is forgotten so a later request may retry — a transient
// failure must not poison a process-lifetime cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	sizer    func(any) int64
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recent; completed entries only
	bytes    int64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when val/err are set
	val   any
	err   error
	bytes int64
	elem  *list.Element // nil while building or after eviction
}

// NewCache builds a cache bounded to maxBytes (0 = unbounded) with sizer
// charging each completed value (nil = every entry costs 1, turning the
// bound into a max entry count).
func NewCache(maxBytes int64, sizer func(any) int64) *Cache {
	if sizer == nil {
		sizer = func(any) int64 { return 1 }
	}
	return &Cache{
		maxBytes: maxBytes,
		sizer:    sizer,
		entries:  map[string]*cacheEntry{},
		lru:      list.New(),
	}
}

// newBuildCache is the private per-run flavor: unbounded, entry-counted.
func newBuildCache() *Cache { return NewCache(0, nil) }

// get returns the cached value for key, running build at most once per
// key across all goroutines (and, for a shared cache, across all sweeps
// in the process). The second return reports whether THIS call ran the
// build — the per-run accounting in SweepResult sums it, so "one build
// across two concurrent requests" is provable. Waiting on another
// caller's in-flight build respects ctx; the build itself always runs to
// completion because other requests may be waiting on it.
func (c *Cache) get(ctx context.Context, key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, false, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.err = build()

	c.mu.Lock()
	if e.err != nil {
		// Forget failed builds: waiters holding e still see the error,
		// but the next get of this key retries.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.bytes = c.sizer(e.val)
		e.elem = c.lru.PushFront(e)
		c.bytes += e.bytes
		c.evict()
	}
	c.mu.Unlock()
	close(e.ready)
	return e.val, true, e.err
}

// Peek returns the completed value for key without affecting recency or
// counting a hit — the cost predictor uses it to price cells whose
// placement already exists without perturbing eviction order.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false // still building
	}
}

// evict drops least-recently-used completed entries until the byte bound
// holds. Callers hold c.mu. Values evicted while a sweep still uses them
// stay alive through the sweep's own reference; eviction only forgets
// the cache's copy.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		c.bytes -= e.bytes
		if c.entries[e.key] == e {
			delete(c.entries, e.key)
		}
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of a Cache's accounting.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
