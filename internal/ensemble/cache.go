package ensemble

import "sync"

// buildCache is a content-keyed build-once cache with singleflight
// semantics: the first caller of a key runs the build while concurrent
// callers of the same key block until it finishes, then share the value
// read-only. It also counts actual build invocations per key, which is
// how tests (and the emitted SweepResult) prove that each unique
// population and placement was constructed exactly once.
type buildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	counts  map[string]int
}

type cacheEntry struct {
	ready chan struct{} // closed when val/err are set
	val   any
	err   error
}

func newBuildCache() *buildCache {
	return &buildCache{entries: map[string]*cacheEntry{}, counts: map[string]int{}}
}

// get returns the cached value for key, running build exactly once per
// key across all goroutines. A failed build is cached too: every caller
// of the key observes the same error rather than retrying an input that
// cannot succeed.
func (c *buildCache) get(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.counts[key]++
	c.mu.Unlock()

	e.val, e.err = build()
	close(e.ready)
	return e.val, e.err
}

// builds reports how many times each key's build function actually ran —
// 1 per unique key when the cache works, more if sharing ever broke.
func (c *buildCache) builds() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.counts))
	for k, n := range c.counts {
		out[k] = n
	}
	return out
}
