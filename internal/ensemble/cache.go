package ensemble

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Tier is a secondary cache tier behind the memory LRU — in practice a
// content-addressed disk store of encoded artifacts. Load returns
// ErrTierMiss when the tier has nothing for the key; any other error is
// a damaged or unreadable artifact, which the cache also treats as a
// miss (counted separately) and heals by rebuilding and re-storing.
// Implementations must be safe for concurrent use.
type Tier interface {
	Load(key string) (any, error)
	Store(key string, val any) error
}

// ErrTierMiss reports that a tier holds no value for a key.
var ErrTierMiss = errors.New("ensemble: not in cache tier")

// Cache is a content-keyed build-once cache designed to outlive a single
// sweep: the server keeps one per process so placements built for one
// request are reused by every later request with the same content key.
//
// It combines four mechanisms:
//
//   - singleflight: the first caller of a key runs the build while
//     concurrent callers of the same key block until it finishes, then
//     share the value read-only — this is what lets two simultaneous
//     sweep submissions share one placement build;
//   - an LRU byte bound: completed entries are charged their sized bytes
//     and evicted least-recently-used once MaxBytes is exceeded (0 means
//     unbounded), so a long-running daemon cannot grow without limit;
//   - an optional disk tier: memory misses first try Tier.Load (under
//     the same singleflight guard, so one disk read serves all waiters,
//     and a loaded value is promoted into the memory LRU); successful
//     builds write through to the tier, so a fresh process — or a
//     restarted daemon — inherits every placement any earlier run built.
//     Corrupt, stale or wrong-version artifacts surface as load errors
//     and are rebuilt, never fatal;
//   - accounting: hits, misses, builds and evictions per tier, which is
//     how tests (and the /v1/stats endpoint) prove sharing works — and
//     how a warm run proves it built nothing (Builds stays 0).
//
// Failed builds are NOT retained: waiters in flight observe the error,
// then the key is forgotten so a later request may retry — a transient
// failure must not poison a process-lifetime cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	sizer    func(any) int64
	disk     Tier // nil = memory-only
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recent; completed entries only
	bytes    int64

	hits, misses, evictions int64
	builds                  int64
	diskHits, diskMisses    int64
	diskWrites, diskErrors  int64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when val/err are set
	val   any
	err   error
	bytes int64
	elem  *list.Element // nil while building or after eviction
}

// NewCache builds a cache bounded to maxBytes (0 = unbounded) with sizer
// charging each completed value (nil = every entry costs 1, turning the
// bound into a max entry count).
func NewCache(maxBytes int64, sizer func(any) int64) *Cache {
	if sizer == nil {
		sizer = func(any) int64 { return 1 }
	}
	return &Cache{
		maxBytes: maxBytes,
		sizer:    sizer,
		entries:  map[string]*cacheEntry{},
		lru:      list.New(),
	}
}

// WithDisk attaches a disk tier behind the memory LRU and returns the
// cache. Call before the cache is shared; the tier is not swappable
// under load.
func (c *Cache) WithDisk(t Tier) *Cache {
	c.disk = t
	return c
}

// newBuildCache is the private per-run flavor: unbounded, entry-counted.
func newBuildCache() *Cache { return NewCache(0, nil) }

// get returns the cached value for key, running build at most once per
// key across all goroutines (and, for a shared cache, across all sweeps
// in the process). The second return reports whether THIS call ran the
// build — the per-run accounting in SweepResult sums it, so "one build
// across two concurrent requests" is provable. Waiting on another
// caller's in-flight build respects ctx; the build itself always runs to
// completion because other requests may be waiting on it.
func (c *Cache) get(ctx context.Context, key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, false, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Memory miss. Try the disk tier first — still under the entry's
	// singleflight guard, so concurrent callers share one disk read the
	// same way they share one build. A disk hit is promoted into the
	// memory LRU and does NOT count as a build (the warm-run guarantee).
	if c.disk != nil {
		if v, err := c.disk.Load(key); err == nil {
			c.mu.Lock()
			c.diskHits++
			e.val = v
			e.bytes = c.sizer(e.val)
			e.elem = c.lru.PushFront(e)
			c.bytes += e.bytes
			c.evict()
			c.mu.Unlock()
			close(e.ready)
			return e.val, false, nil
		} else {
			c.mu.Lock()
			c.diskMisses++
			if !errors.Is(err, ErrTierMiss) {
				// Corrupt/stale/unreadable artifact: counted, rebuilt,
				// and overwritten by the write-through below.
				c.diskErrors++
			}
			c.mu.Unlock()
		}
	}

	e.val, e.err = build()

	c.mu.Lock()
	c.builds++
	if e.err != nil {
		// Forget failed builds: waiters holding e still see the error,
		// but the next get of this key retries.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.bytes = c.sizer(e.val)
		e.elem = c.lru.PushFront(e)
		c.bytes += e.bytes
		c.evict()
	}
	c.mu.Unlock()
	close(e.ready)
	if e.err == nil && c.disk != nil {
		// Write-through after waiters are released: persistence must not
		// delay the sweeps blocked on this value, and a failed write only
		// costs a rebuild in some later process.
		err := c.disk.Store(key, e.val)
		c.mu.Lock()
		if err != nil {
			c.diskErrors++
		} else {
			c.diskWrites++
		}
		c.mu.Unlock()
	}
	return e.val, true, e.err
}

// Peek returns the completed value for key without affecting recency or
// counting a hit — the cost predictor uses it to price cells whose
// placement already exists without perturbing eviction order.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false // still building
	}
}

// evict drops least-recently-used completed entries until the byte bound
// holds. Callers hold c.mu. Values evicted while a sweep still uses them
// stay alive through the sweep's own reference; eviction only forgets
// the cache's copy.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		c.bytes -= e.bytes
		if c.entries[e.key] == e {
			delete(c.entries, e.key)
		}
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of a Cache's accounting.
// Hits/Misses/Evictions describe the memory tier; the Disk* counters
// describe the disk tier (all zero for a memory-only cache). Builds
// counts actual build-function executions — the number every cache tier
// exists to minimize, and the number a fully warm run holds at zero.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Builds    int64 `json:"builds"`

	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	DiskWrites int64 `json:"disk_writes"`
	DiskErrors int64 `json:"disk_errors"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Builds:    c.builds,

		DiskHits:   c.diskHits,
		DiskMisses: c.diskMisses,
		DiskWrites: c.diskWrites,
		DiskErrors: c.diskErrors,
	}
}
