package ensemble

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/synthpop"
)

// TestWarmContextBuildsEachKeyOnce: a warm pass over a cold cache builds
// every unique population and placement exactly once; a second pass over
// the same caches builds nothing.
func TestWarmContextBuildsEachKeyOnce(t *testing.T) {
	f := &fakeHooks{}
	popCache := NewCache(0, nil)
	plCache := NewCache(0, nil)
	opts := &RunOptions{PopulationCache: popCache, PlacementCache: plCache}
	spec := testSpec() // 2 pops × 2 placements (scenarios don't add placements)

	w, err := WarmContext(context.Background(), spec, f.hooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.Populations != 2 || w.Placements != 4 {
		t.Fatalf("warm result = %+v, want 2 populations / 4 placements", w)
	}
	if w.Built() != 4 || f.plBuilds.Load() != 4 || f.popBuilds.Load() != 2 {
		t.Fatalf("cold warm pass built %d placements (%d engine calls), want 4",
			w.Built(), f.plBuilds.Load())
	}

	w2, err := WarmContext(context.Background(), spec, f.hooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Built() != 0 || f.plBuilds.Load() != 4 {
		t.Fatalf("second warm pass built %d, want 0", w2.Built())
	}
	if st := plCache.Stats(); st.Builds != 4 {
		t.Fatalf("placement cache builds = %d, want 4", st.Builds)
	}

	// A real run over the warmed caches builds nothing either.
	res, err := RunContext(context.Background(), spec, f.hooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range res.PlacementBuilds {
		if n != 0 {
			t.Fatalf("post-warm run built placement %q %d times, want 0", key, n)
		}
	}
}

func TestWarmContextPropagatesBuildError(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	boom := errors.New("partitioner exploded")
	orig := h.BuildPlacement
	h.BuildPlacement = func(pop *synthpop.Population, ps PlacementSpec, seed uint64) (any, error) {
		if ps.Strategy == "GP" {
			return nil, boom
		}
		return orig(pop, ps, seed)
	}
	_, err := WarmContext(context.Background(), testSpec(), h, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the build failure", err)
	}
}

// TestRepriceAfterFirstBuild: once the first placement build completes,
// the feeder re-invokes the cost predictor for the cells it has not yet
// dispatched — exact prices replacing cold analytic estimates.
func TestRepriceAfterFirstBuild(t *testing.T) {
	f := &fakeHooks{}
	spec := testSpec()
	spec.Populations = spec.Populations[:1]
	spec.Scenarios = spec.Scenarios[:1] // 2 cells: one per placement
	spec.Replicates = 2
	spec.Workers = 1 // unbuffered handoff: the feeder blocks behind the worker

	var mu sync.Mutex
	calls := map[int]int{} // cell index -> predictor invocations
	_, err := RunContext(context.Background(), spec, f.hooks(), &RunOptions{
		PredictCost: func(c Cell, s *Spec) float64 {
			mu.Lock()
			calls[c.Index]++
			mu.Unlock()
			return float64(len(spec.Placements) - c.Index) // keep grid order
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Initial pricing touches both cells once. Cell 0's replicates
	// dispatch first; its placement build completes while the feeder is
	// blocked handing over replicate 1, so before cell 1 dispatches the
	// feeder observes the new build generation and re-prices the
	// remaining queue — cell 1 must have been priced at least twice.
	if calls[1] < 2 {
		t.Fatalf("predictor calls per cell = %v; cell 1 never re-priced after first build", calls)
	}
}

// TestRepriceAfterDiskPromotion: a placement loaded from the disk tier
// (zero builds) becomes exactly priceable too, so the warm-run path —
// the one the persistent cache exists for — must also trigger the
// feeder's re-pricing pass.
func TestRepriceAfterDiskPromotion(t *testing.T) {
	f := &fakeHooks{}
	spec := testSpec()
	spec.Populations = spec.Populations[:1]
	spec.Scenarios = spec.Scenarios[:1]
	spec.Replicates = 2
	spec.Workers = 1

	// Cold pass populates the shared fake disk tier.
	tier := newFakeTier()
	cold := &RunOptions{
		PopulationCache: NewCache(0, nil).WithDisk(newFakeTier()),
		PlacementCache:  NewCache(0, nil).WithDisk(tier),
	}
	if _, err := RunContext(context.Background(), spec, f.hooks(), cold); err != nil {
		t.Fatal(err)
	}

	// Warm pass: fresh memory caches over the warm tier — every
	// placement is a disk hit, zero builds, and the predictor is still
	// re-invoked for the undispatched remainder.
	var mu sync.Mutex
	calls := map[int]int{}
	warm := &RunOptions{
		PopulationCache: NewCache(0, nil),
		PlacementCache:  NewCache(0, nil).WithDisk(tier),
		PredictCost: func(c Cell, s *Spec) float64 {
			mu.Lock()
			calls[c.Index]++
			mu.Unlock()
			return float64(len(spec.Placements) - c.Index)
		},
	}
	res, err := RunContext(context.Background(), spec, f.hooks(), warm)
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range res.PlacementBuilds {
		if n != 0 {
			t.Fatalf("warm run built %q %d times, want 0", key, n)
		}
	}
	if calls[1] < 2 {
		t.Fatalf("predictor calls per cell = %v; disk promotion never triggered re-pricing", calls)
	}
}
