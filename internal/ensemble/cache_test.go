package ensemble

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0, nil)
	var builds atomic.Int64
	enter := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	vals := make([]any, waiters)
	built := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, b, err := c.get(context.Background(), "k", func() (any, error) {
				builds.Add(1)
				enter <- struct{}{}
				<-release
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], built[i] = v, b
		}(i)
	}
	<-enter // one goroutine is inside the build; the rest must wait
	close(release)
	wg.Wait()

	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	builders := 0
	for i := range vals {
		if vals[i] != "shared" {
			t.Fatalf("waiter %d got %v", i, vals[i])
		}
		if built[i] {
			builders++
		}
	}
	if builders != 1 {
		t.Fatalf("%d callers report having built, want exactly 1", builders)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, waiters-1)
	}
}

func TestCacheLRUByteBound(t *testing.T) {
	// Each entry costs 4 bytes; the bound holds two entries.
	c := NewCache(8, func(v any) int64 { return 4 })
	get := func(key string) bool {
		_, built, err := c.get(context.Background(), key, func() (any, error) { return key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return built
	}
	get("a")
	get("b")
	get("c") // evicts a (LRU)
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 8 || st.Entries != 2 {
		t.Fatalf("stats after third insert = %+v", st)
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("a still cached, want evicted")
	}
	if _, ok := c.Peek("c"); !ok {
		t.Fatal("c missing")
	}
	// b is recent; touching it then inserting d must evict c... after
	// touching, recency is b > c.
	get("b")
	get("d") // evicts c
	if _, ok := c.Peek("b"); !ok {
		t.Fatal("b evicted despite being most recently used")
	}
	if _, ok := c.Peek("c"); ok {
		t.Fatal("c still cached, want evicted")
	}
	if !get("a") {
		t.Fatal("rebuilding an evicted key did not run the build")
	}
}

func TestCacheErrorsNotRetained(t *testing.T) {
	c := NewCache(0, nil)
	calls := 0
	build := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}
	if _, _, err := c.get(context.Background(), "k", build); err == nil {
		t.Fatal("want first build's error")
	}
	v, built, err := c.get(context.Background(), "k", build)
	if err != nil || v != "ok" || !built {
		t.Fatalf("retry after failed build: v=%v built=%v err=%v", v, built, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (error entry forgotten)", st.Entries)
	}
}

func TestCacheWaitRespectsContext(t *testing.T) {
	c := NewCache(0, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.get(context.Background(), "k", func() (any, error) {
			close(entered)
			<-release
			return "late", nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.get(ctx, "k", func() (any, error) {
		t.Error("waiter must not rebuild")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	// The build still completed for future callers.
	if v, _, err := c.get(context.Background(), "k", nil); err != nil || v != "late" {
		t.Fatalf("completed build lost: v=%v err=%v", v, err)
	}
}

func TestCachePeekDoesNotCountOrTouch(t *testing.T) {
	c := NewCache(8, func(any) int64 { return 4 })
	for _, k := range []string{"a", "b"} {
		if _, _, err := c.get(context.Background(), k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("peek a missed")
	}
	if after := c.Stats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("peek changed counters: %+v -> %+v", before, after)
	}
	// Peek must not refresh recency: inserting c evicts a (the LRU entry
	// despite the peek).
	if _, _, err := c.get(context.Background(), "c", func() (any, error) { return "c", nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("peek refreshed recency; a should have been evicted")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(0, nil)
	_, _, _ = c.get(context.Background(), "k", func() (any, error) { return 1, nil })
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.get(context.Background(), "k", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ExampleCache() {
	c := NewCache(0, nil)
	for i := 0; i < 3; i++ {
		v, built, _ := c.get(context.Background(), "placement", func() (any, error) {
			return "expensive", nil
		})
		fmt.Println(v, built)
	}
	// Output:
	// expensive true
	// expensive false
	// expensive false
}
