package ensemble

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestOnCellStreamsBeforeRunReturns proves per-cell streaming is real:
// cell 1's simulation BLOCKS until cell 0's aggregate has reached the
// OnCell callback. If cells were only delivered at sweep completion this
// test would deadlock (and fail on the run's internal ordering), not
// merely assert late.
func TestOnCellStreamsBeforeRunReturns(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	baseSim := h.Simulate
	cell0Streamed := make(chan struct{})
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		if job.Cell.Index == 1 {
			<-cell0Streamed // only OnCell(cell 0) unblocks us
		}
		return baseSim(pl, job)
	}

	spec := testSpec()
	spec.Populations = spec.Populations[:1]
	spec.Placements = spec.Placements[:1] // 1 pop × 1 placement × 2 scenarios = 2 cells
	spec.Replicates = 2
	spec.Workers = 4

	var mu sync.Mutex
	var streamed []int
	var once sync.Once
	res, err := RunContext(context.Background(), spec, h, &RunOptions{
		OnCell: func(c CellResult) {
			mu.Lock()
			streamed = append(streamed, c.Index)
			mu.Unlock()
			if c.Index == 0 {
				once.Do(func() { close(cell0Streamed) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 2 || streamed[0] != 0 || streamed[1] != 1 {
		t.Fatalf("streamed order = %v, want [0 1]", streamed)
	}
	if len(res.Cells) != 2 || res.Cells[0].Index != 0 || res.Cells[1].Index != 1 {
		t.Fatalf("result cells misindexed: %+v", res.Cells)
	}
}

// TestCancellationStopsDispatchPromptly: after ctx is canceled, no new
// simulations start — at most one in-flight job per worker ever ran, out
// of a 16-job grid.
func TestCancellationStopsDispatchPromptly(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	baseSim := h.Simulate
	var started atomic.Int64
	firstStarted := make(chan struct{}, 16)
	gate := make(chan struct{})
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		started.Add(1)
		firstStarted <- struct{}{}
		<-gate
		return baseSim(pl, job)
	}

	spec := testSpec() // 8 cells × 8 replicates = 64 jobs
	spec.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, spec, h, nil)
		done <- err
	}()
	<-firstStarted
	cancel()
	close(gate)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 2 {
		t.Fatalf("%d simulations started after 2-worker cancel, want <= 2", n)
	}
}

// TestFailedCellDoesNotAbortSweep: one cell's simulations fail; every
// other cell still aggregates, the failed cell carries Error (and
// reaches OnCell), and RunContext returns the partial result alongside
// the error.
func TestFailedCellDoesNotAbortSweep(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	baseSim := h.Simulate
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		if job.Cell.Scenario.Name == "closure" && job.Cell.Population.Name == "a" {
			return nil, errors.New("boom")
		}
		return baseSim(pl, job)
	}

	spec := testSpec() // 8 cells; 2 of them are (pop a, closure)
	spec.Workers = 4
	var streamedErrs atomic.Int64
	res, err := RunContext(context.Background(), spec, h, &RunOptions{
		OnCell: func(c CellResult) {
			if c.Error != "" {
				streamedErrs.Add(1)
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want cell failure mentioning boom", err)
	}
	if res == nil {
		t.Fatal("want partial result alongside the error")
	}
	var failed, ok int
	for _, c := range res.Cells {
		if c.Error != "" {
			failed++
			if c.Replicates != 0 || len(c.MeanCurve) != 0 {
				t.Fatalf("failed cell %q carries aggregates: %+v", c.Label, c)
			}
		} else {
			ok++
			if c.Replicates != spec.Replicates || len(c.MeanCurve) != spec.Days {
				t.Fatalf("surviving cell %q incomplete: %+v", c.Label, c)
			}
		}
	}
	if failed != 2 || ok != 6 {
		t.Fatalf("failed=%d ok=%d, want 2/6", failed, ok)
	}
	if streamedErrs.Load() != 2 {
		t.Fatalf("streamed error cells = %d, want 2", streamedErrs.Load())
	}
}

// TestCostOrderedDispatch: with a cost oracle marking one cell of each
// population expensive, jobs are fed most-expensive-cell-first (LPT),
// and the simulated makespan on a 2-worker pool improves over grid
// order.
func TestCostOrderedDispatch(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	baseSim := h.Simulate
	var mu sync.Mutex
	var dispatch []int
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		mu.Lock()
		dispatch = append(dispatch, job.Cell.Index)
		mu.Unlock()
		return baseSim(pl, job)
	}

	// 4 cells (1 pop × 1 placement × 4 scenarios), 1 replicate each, with
	// artificially skewed costs: grid-last is 10× everything else.
	spec := testSpec()
	spec.Populations = spec.Populations[:1]
	spec.Placements = spec.Placements[:1]
	spec.Scenarios = []ScenarioSpec{{Name: "s0"}, {Name: "s1"}, {Name: "s2"}, {Name: "s3"}}
	spec.Replicates = 1
	spec.Workers = 1 // sequential: dispatch order == feed order

	costs := []float64{1, 1, 1, 10}
	_, err := RunContext(context.Background(), spec, h, &RunOptions{
		PredictCost: func(c Cell, s *Spec) float64 { return costs[c.Index] },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2} // expensive first, stable grid order on ties
	if len(dispatch) != 4 {
		t.Fatalf("dispatched %d jobs, want 4", len(dispatch))
	}
	for i, ci := range want {
		if dispatch[i] != ci {
			t.Fatalf("dispatch order = %v, want %v", dispatch, want)
		}
	}

	// Makespan oracle: greedy earliest-free-worker assignment over the
	// dispatch sequence. LPT must beat grid order on this skew.
	gridOrder := []int{0, 1, 2, 3}
	if lpt, grid := makespan(dispatch, costs, 2), makespan(gridOrder, costs, 2); lpt >= grid {
		t.Fatalf("LPT makespan %v not better than grid order %v", lpt, grid)
	}
}

// makespan simulates list scheduling: jobs in `order` are assigned to
// the earliest-free of `workers` identical machines.
func makespan(order []int, costs []float64, workers int) float64 {
	free := make([]float64, workers)
	for _, ci := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += costs[ci]
	}
	max := 0.0
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// TestSharedCacheAcrossRuns: two concurrent sweeps over the same grid
// share process-lifetime caches — each unique population and placement
// is built exactly once in TOTAL, and the per-run accounting sums to
// prove it.
func TestSharedCacheAcrossRuns(t *testing.T) {
	f := &fakeHooks{} // shared: counts builds across both runs
	popCache := NewCache(0, nil)
	plCache := NewCache(0, nil)
	opts := func() *RunOptions {
		return &RunOptions{PopulationCache: popCache, PlacementCache: plCache}
	}

	var wg sync.WaitGroup
	results := make([]*SweepResult, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := testSpec()
			spec.Workers = 4
			results[i], errs[i] = RunContext(context.Background(), spec, f.hooks(), opts())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := f.popBuilds.Load(); got != 2 {
		t.Fatalf("total population builds = %d, want 2 (unique pops, shared across runs)", got)
	}
	if got := f.plBuilds.Load(); got != 4 {
		t.Fatalf("total placement builds = %d, want 4 (unique placements, shared across runs)", got)
	}
	// Per-run accounting sums to one build per key across BOTH runs.
	sums := map[string]int{}
	for _, res := range results {
		if len(res.PlacementBuilds) != 4 {
			t.Fatalf("run requested %d placement keys, want 4", len(res.PlacementBuilds))
		}
		for k, n := range res.PlacementBuilds {
			sums[k] += n
		}
	}
	for k, n := range sums {
		if n != 1 {
			t.Fatalf("placement %q built %d times across runs, want 1", k, n)
		}
	}
	st := plCache.Stats()
	if st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("placement cache stats = %+v, want 4 misses/4 entries", st)
	}
	if st.Hits == 0 {
		t.Fatal("placement cache saw no hits despite 128 shared jobs")
	}
}
