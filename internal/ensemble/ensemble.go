package ensemble

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/obs"
	"repro/internal/synthpop"
)

// Job is one unit of executor work: a single replicate of a single cell.
type Job struct {
	Cell      Cell
	Replicate int
	// Seed is the replicate's content-derived simulation seed.
	Seed uint64
	// Model is the cell's resolved disease model, shared read-only.
	Model *disease.Model
	// Spec points at the sweep being executed (Days, AggBufferSize, ...).
	Spec *Spec
}

// Hooks are the three engine operations the sweep needs, injected by the
// root package (an import there would be a cycle). Implementations must
// be safe for concurrent use; placements returned by BuildPlacement are
// shared read-only across every replicate and scenario that uses them.
type Hooks struct {
	// GeneratePopulation synthesizes the population for a spec (seed is
	// the already-resolved generation seed).
	GeneratePopulation func(PopulationSpec, uint64) (*synthpop.Population, error)
	// BuildPlacement distributes a population over ranks. The returned
	// handle is passed back to Simulate verbatim.
	BuildPlacement func(*synthpop.Population, PlacementSpec, uint64) (any, error)
	// Simulate runs one replicate on a cached placement.
	Simulate func(placement any, job Job) (*core.Result, error)

	// The fork-mode trio, used for cells with an intervention branch when
	// all three are present (otherwise such cells run Simulate from
	// scratch, which is always correct, just slower). BuildCheckpoint
	// simulates the replicate's shared pre-fork prefix under the base
	// scenario and returns an opaque checkpoint handle; the handle is
	// cached under Cell.CheckpointKey and shared read-only by every
	// intervention branch of the (cell, replicate). RestoreCheckpoint
	// loads it into a fresh engine carrying the branch's combined
	// scenario; ResumeSimulate finishes the remaining days.
	BuildCheckpoint   func(placement any, job Job) (any, error)
	RestoreCheckpoint func(placement any, checkpoint any, job Job) (any, error)
	ResumeSimulate    func(engine any, job Job) (*core.Result, error)
}

// forkCapable reports whether fork-mode execution is wired.
func (h Hooks) forkCapable() bool {
	return h.BuildCheckpoint != nil && h.RestoreCheckpoint != nil && h.ResumeSimulate != nil
}

// RunOptions are the service-grade extensions to a sweep run. The zero
// value (or a nil pointer) reproduces the one-shot behavior: private
// caches, no streaming, grid-order dispatch, a private worker pool.
type RunOptions struct {
	// PopulationCache and PlacementCache, when non-nil, replace the
	// run-private build caches — the server passes process-lifetime
	// caches here so placements are shared across requests.
	PopulationCache *Cache
	PlacementCache  *Cache
	// CheckpointCache, when non-nil, replaces the run-private fork-point
	// checkpoint cache — the server passes a process-lifetime cache here
	// so a warm re-submission pays zero prefix days.
	CheckpointCache *Cache
	// OnCell is invoked the moment a cell finalizes — when its last
	// replicate lands, or immediately on its first error (Error set,
	// aggregates empty) — which is what lets a server stream aggregates
	// while the rest of the grid is still running. Called concurrently
	// from worker goroutines; implementations must be safe for
	// concurrent use and should return quickly.
	OnCell func(CellResult)
	// PredictCost, when non-nil, prices a cell before dispatch; jobs are
	// fed to the worker pool most-expensive-cell-first (stable on ties),
	// the classic longest-processing-time heuristic that cuts makespan
	// on wide grids with skewed cell sizes. The spec argument is the
	// normalized private copy (defaults resolved).
	PredictCost func(Cell, *Spec) float64
	// Slots, when non-nil, gates every job on a shared slot pool so
	// several concurrent sweeps are bounded together; each run still
	// spawns its own Workers goroutines but only min(Workers, free
	// slots) make progress at once.
	Slots *Slots
	// Trace, when non-nil, receives named spans for the run's stages:
	// population/placement builds and slow cache loads, every replicate
	// simulation, and per-cell aggregation. All Timeline methods are
	// nil-safe, so the executor records unconditionally.
	Trace *obs.Timeline
}

// SweepResult is a completed sweep: one aggregated CellResult per grid
// cell (in grid order), plus cache accounting proving build reuse.
type SweepResult struct {
	Spec  *Spec        `json:"spec"`
	Cells []CellResult `json:"cells"`
	// PopulationBuilds and PlacementBuilds count, per content key this
	// run requested, how many times the run actually generated or
	// partitioned it — exactly 1 per key for a fresh cache, 0 when a
	// shared or disk-backed cache already held it (so summing across
	// concurrent requests proves a single build). Like Workers, they are
	// execution accounting, not part of the result: a cold and a warm
	// run of the same spec must emit byte-identical JSON, so neither map
	// is serialized.
	PopulationBuilds map[string]int `json:"-"`
	PlacementBuilds  map[string]int `json:"-"`
	// CheckpointBuilds counts fork-point prefix builds per checkpoint key
	// (0 = restored from a shared or disk-backed cache). Execution
	// accounting like the build maps — never serialized.
	CheckpointBuilds map[string]int `json:"-"`
	// Simulations is the total number of replicate runs executed.
	Simulations int `json:"simulations"`
	// SimulatedDays counts the days the run actually stepped, summed over
	// prefix builds and replicate runs — the fork-mode amortization
	// measure (a 16-branch forked sweep steps far fewer days than 16
	// from-scratch runs). Execution accounting, never serialized.
	SimulatedDays int64 `json:"-"`
	// Timeline is the run's span timeline when RunOptions.Trace was set
	// (nil otherwise) — handed back with the result so embedders (the
	// bench harness, the daemon) can roll up component breakdowns from
	// the value they already hold. Execution accounting like the build
	// maps: never serialized, so cold/warm JSON stays byte-identical.
	Timeline *obs.Timeline `json:"-"`
}

// runCounter tracks, for one run, how many builds each requested content
// key actually triggered (0 = served from a shared cache).
type runCounter struct {
	mu sync.Mutex
	m  map[string]int
}

func newRunCounter() *runCounter { return &runCounter{m: map[string]int{}} }

func (rc *runCounter) record(key string, built bool) {
	rc.mu.Lock()
	if built {
		rc.m[key]++
	} else if _, ok := rc.m[key]; !ok {
		rc.m[key] = 0
	}
	rc.mu.Unlock()
}

func (rc *runCounter) snapshot() map[string]int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(map[string]int, len(rc.m))
	for k, n := range rc.m {
		out[k] = n
	}
	return out
}

// Run executes the sweep with one-shot semantics: background context,
// run-private caches, no streaming. See RunContext.
func Run(spec *Spec, hooks Hooks) (*SweepResult, error) {
	return RunContext(context.Background(), spec, hooks, nil)
}

// RunContext executes the sweep: normalize and validate the spec,
// enumerate the grid, then drive (cell, replicate) jobs through a
// bounded worker pool, most-expensive-cell-first when opts.PredictCost
// is set. Unique populations and placements are built once via the
// content-keyed caches (shared process-lifetime caches when opts
// provides them); each replicate streams into its cell's aggregator, and
// each cell finalizes — and reaches opts.OnCell — the moment its last
// replicate lands. The output is byte-identical for any Workers value
// and any dispatch order because aggregation slots are addressed by
// replicate index and results by grid index, never by completion order.
//
// Cancellation: when ctx is canceled the executor stops dispatching,
// lets in-flight simulations and builds finish (builds always run to
// completion because, under a shared cache, other requests may be
// waiting on them; only the WAIT on someone else's build is ctx-aware),
// and returns ctx.Err(). A failing
// cell does NOT abort the sweep: the cell is marked failed (remaining
// replicates are skipped), every other cell still runs, and RunContext
// returns the partial result alongside an error summarizing the failed
// cells.
func RunContext(ctx context.Context, spec *Spec, hooks Hooks, opts *RunOptions) (*SweepResult, error) {
	if hooks.GeneratePopulation == nil || hooks.BuildPlacement == nil || hooks.Simulate == nil {
		return nil, fmt.Errorf("ensemble: incomplete hooks")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &RunOptions{}
	}
	// Work on a private copy: Normalize fills defaults, and the result
	// embeds the spec — neither should touch the caller's struct.
	spec = spec.clone()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Cells()

	// Resolve each model once; replicates share it read-only.
	models := make([]*disease.Model, len(spec.Models))
	for i, m := range spec.Models {
		model, err := m.Resolve()
		if err != nil {
			return nil, err
		}
		models[i] = model
	}

	popCache := opts.PopulationCache
	if popCache == nil {
		popCache = newBuildCache()
	}
	plCache := opts.PlacementCache
	if plCache == nil {
		plCache = newBuildCache()
	}
	ckptCache := opts.CheckpointCache
	if ckptCache == nil {
		ckptCache = newBuildCache()
	}
	popCounts := newRunCounter()
	plCounts := newRunCounter()
	ckptCounts := newRunCounter()

	aggs := make([]*aggregator, len(cells))
	for i := range aggs {
		aggs[i] = newAggregator(spec.Replicates)
	}

	// Cost-ordered dispatch: price every cell up front, then feed the
	// pool most-expensive-first (LPT). Ties and the nil-predictor case
	// keep grid order; results are grid-indexed so ordering never
	// affects output bytes.
	//
	// Cold placements are priced by an analytic estimate; the moment a
	// placement build completes, the predictor can price exactly (it
	// peeks the now-populated cache), so the feeder re-prices and
	// re-sorts the cells not yet dispatched — the warm-up pass that
	// fixes LPT's makespan on mixed exact/estimated grids. repriceGen
	// counts completed placement builds; the feeder re-sorts whenever it
	// observes a new generation.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	costs := make([]float64, len(cells))
	reprice := func(idxs []int) {
		for _, ci := range idxs {
			costs[ci] = opts.PredictCost(cells[ci], spec)
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			return costs[idxs[a]] > costs[idxs[b]]
		})
	}
	if opts.PredictCost != nil {
		reprice(order)
	}
	var repriceGen atomic.Int64

	// Per-cell completion state: remaining replicates, the first error,
	// and the finalized result — all under one mutex that also publishes
	// every aggregator write to whichever worker finalizes the cell.
	type cellState struct {
		remaining int
		err       error
	}
	states := make([]cellState, len(cells))
	for i := range states {
		states[i].remaining = spec.Replicates
	}
	results := make([]CellResult, len(cells))
	var (
		stMu    sync.Mutex
		sims    atomic.Int64
		simDays atomic.Int64
	)

	emit := func(res CellResult) {
		if opts.OnCell != nil {
			opts.OnCell(res)
		}
	}
	failCell := func(ci int, err error) {
		stMu.Lock()
		if states[ci].err != nil {
			stMu.Unlock()
			return
		}
		states[ci].err = err
		res := errorCellResult(cells[ci], err)
		results[ci] = res
		stMu.Unlock()
		emit(res)
	}
	completeReplicate := func(ci int) {
		stMu.Lock()
		states[ci].remaining--
		done := states[ci].remaining == 0 && states[ci].err == nil
		stMu.Unlock()
		if !done {
			return
		}
		aggStart := time.Now()
		res := aggs[ci].finalize(cells[ci], spec.Quantiles, spec.Confidence)
		opts.Trace.Add("aggregate", cells[ci].Label(), aggStart, time.Now())
		stMu.Lock()
		results[ci] = res
		stMu.Unlock()
		emit(res)
	}
	cellFailed := func(ci int) bool {
		stMu.Lock()
		defer stMu.Unlock()
		return states[ci].err != nil
	}

	// Shared caches forget failed builds so later requests may retry a
	// transient failure; within ONE run a failing key is deterministic
	// wasted work, so a run-private negative memo fails every other cell
	// of that key fast after the first attempt.
	var negMu sync.Mutex
	negative := map[string]error{}
	memoFail := func(key string, err error) {
		negMu.Lock()
		if _, ok := negative[key]; !ok {
			negative[key] = err
		}
		negMu.Unlock()
	}
	priorFail := func(key string) error {
		negMu.Lock()
		defer negMu.Unlock()
		return negative[key]
	}

	type job struct {
		cellIdx   int
		replicate int
	}
	runJob := func(j job) error {
		cell := cells[j.cellIdx]
		popKey := cell.Population.Key(spec.Seed)
		popSeed := cell.Population.Seed
		if popSeed == 0 {
			popSeed = spec.Seed
		}
		if err := priorFail(popKey); err != nil {
			return fmt.Errorf("ensemble: population %s: %w", cell.Population.Label(), err)
		}
		popStart := time.Now()
		popAny, built, err := popCache.get(ctx, popKey, func() (any, error) {
			return hooks.GeneratePopulation(cell.Population, popSeed)
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil // canceled while waiting, not a cell failure
			}
			memoFail(popKey, err)
			return fmt.Errorf("ensemble: population %s: %w", cell.Population.Label(), err)
		}
		recordCacheSpan(opts.Trace, "population", cell.Population.Label(), popStart, built)
		popCounts.record(popKey, built)
		pop := popAny.(*synthpop.Population)

		plKey := cell.Placement.Key(popKey)
		if err := priorFail(plKey); err != nil {
			return fmt.Errorf("ensemble: placement %s: %w", cell.Placement.Label(), err)
		}
		// The predictor prices exactly only what it can Peek; note
		// whether this key is about to transition from estimated to
		// exact (via a build OR a disk-tier promotion) so the feeder
		// re-prices its remaining queue either way.
		wasPeekable := true
		if opts.PredictCost != nil {
			_, wasPeekable = plCache.Peek(plKey)
		}
		plStart := time.Now()
		pl, built, err := plCache.get(ctx, plKey, func() (any, error) {
			return hooks.BuildPlacement(pop, cell.Placement, popSeed)
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			memoFail(plKey, err)
			return fmt.Errorf("ensemble: placement %s: %w", cell.Placement.Label(), err)
		}
		recordCacheSpan(opts.Trace, "placement", cell.Placement.Label(), plStart, built)
		plCounts.record(plKey, built)
		if !wasPeekable {
			repriceGen.Add(1)
		}

		jobVal := Job{
			Cell:      cell,
			Replicate: j.replicate,
			Seed:      cell.ReplicateSeed(spec.Seed, j.replicate),
			Model:     models[cell.modelIdx],
			Spec:      spec,
		}

		var res *core.Result
		var simStart time.Time
		if cell.Intervention != nil && hooks.forkCapable() {
			// Fork path: build (or load) the replicate's shared pre-fork
			// checkpoint once, then resume each intervention branch from it.
			ckKey := cell.CheckpointKey(spec, plKey, jobVal.Seed)
			if err := priorFail(ckKey); err != nil {
				return fmt.Errorf("ensemble: checkpoint %s r%d: %w", cell.Label(), j.replicate, err)
			}
			ckStart := time.Now()
			ck, built, err := ckptCache.get(ctx, ckKey, func() (any, error) {
				return hooks.BuildCheckpoint(pl, jobVal)
			})
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				memoFail(ckKey, err)
				return fmt.Errorf("ensemble: checkpoint %s r%d: %w", cell.Label(), j.replicate, err)
			}
			ckLabel := fmt.Sprintf("%s r%d day %d", cell.Label(), j.replicate, spec.ForkDay)
			recordCacheSpan(opts.Trace, "checkpoint", ckLabel, ckStart, built)
			ckptCounts.record(ckKey, built)
			if built {
				simDays.Add(int64(spec.ForkDay))
			}

			restoreStart := time.Now()
			eng, err := hooks.RestoreCheckpoint(pl, ck, jobVal)
			opts.Trace.Add("checkpoint_restore", ckLabel, restoreStart, time.Now())
			if err != nil {
				return fmt.Errorf("ensemble: restore %s r%d: %w", cell.Label(), j.replicate, err)
			}
			sims.Add(1)
			simStart = time.Now()
			res, err = hooks.ResumeSimulate(eng, jobVal)
			if err == nil {
				simDays.Add(int64(spec.Days - spec.ForkDay))
			}
			traceSim(opts, cell, j.replicate, res, simStart)
			if err != nil {
				return fmt.Errorf("ensemble: cell %s replicate %d: %w", cell.Label(), j.replicate, err)
			}
		} else {
			sims.Add(1)
			simStart = time.Now()
			var err error
			res, err = hooks.Simulate(pl, jobVal)
			if res != nil {
				simDays.Add(int64(len(res.Days)))
			}
			traceSim(opts, cell, j.replicate, res, simStart)
			if err != nil {
				return fmt.Errorf("ensemble: cell %s replicate %d: %w", cell.Label(), j.replicate, err)
			}
		}
		aggs[j.cellIdx].add(j.replicate, res)
		completeReplicate(j.cellIdx)
		return nil
	}

	jobs := make(chan job)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				if cellFailed(j.cellIdx) {
					continue // sibling replicate already failed the cell
				}
				if err := opts.Slots.acquire(ctx); err != nil {
					continue
				}
				err := runJob(j)
				opts.Slots.release()
				if err != nil {
					failCell(j.cellIdx, err)
				}
			}
		}()
	}

	// The feeder dispatches cell by cell from a mutable priority queue:
	// before popping the next cell it checks whether any placement build
	// completed since it last priced the queue, and if so re-prices and
	// re-sorts what's left (exact machine-model costs replace analytic
	// estimates as placements materialize).
	pending := order
	var pricedGen int64
feed:
	for len(pending) > 0 {
		if opts.PredictCost != nil {
			if g := repriceGen.Load(); g != pricedGen {
				pricedGen = g
				reprice(pending)
			}
		}
		ci := pending[0]
		pending = pending[1:]
		for r := 0; r < spec.Replicates; r++ {
			select {
			case jobs <- job{cellIdx: ci, replicate: r}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// A cancel that lands as (or after) the last cell finalizes must
		// not discard a whole result: when every cell already reached a
		// terminal state, the sweep effectively completed — fall through
		// and return it.
		complete := true
		for i := range states {
			if states[i].remaining > 0 && states[i].err == nil {
				complete = false
				break
			}
		}
		if !complete {
			return nil, err
		}
	}

	// The result embeds the (already private) spec for provenance, minus
	// Workers: concurrency affects execution time, never results, and the
	// emitted JSON must be byte-identical across worker counts.
	spec.Workers = 0
	out := &SweepResult{
		Spec:             spec,
		Cells:            results,
		PopulationBuilds: popCounts.snapshot(),
		PlacementBuilds:  plCounts.snapshot(),
		CheckpointBuilds: ckptCounts.snapshot(),
		Simulations:      int(sims.Load()),
		SimulatedDays:    simDays.Load(),
		Timeline:         opts.Trace,
	}
	var failed []int
	for ci := range states {
		if states[ci].err != nil {
			failed = append(failed, ci)
		}
	}
	if len(failed) > 0 {
		return out, fmt.Errorf("ensemble: %d of %d cells failed; first: %w",
			len(failed), len(cells), states[failed[0]].err)
	}
	return out, nil
}

// traceSim records one replicate's simulation span, tagging the label
// with the per-kernel day tally when the run reported one (the timeline's
// span budget forbids a span per simulated day, so the replicate span
// carries the tally instead, e.g. "... kernel[active=38 dense=2]").
func traceSim(opts *RunOptions, cell Cell, replicate int, res *core.Result, start time.Time) {
	label := fmt.Sprintf("%s r%d", cell.Label(), replicate)
	if res != nil && len(res.KernelDays) > 0 {
		label += " kernel[" + kernelDaysLabel(res.KernelDays) + "]"
	}
	opts.Trace.Add("sim", label, start, time.Now())
}

// recordCacheSpan traces one build-cache access. Every actual build gets
// a "<kind>_build" span; a get that merely waited — on another worker's
// in-flight build or a disk-tier load — is traced as "<kind>_load" only
// when it took noticeable time, so a warm sweep's thousands of
// instantaneous memory hits don't flood the timeline with zero-length
// spans (the cache counters already account for them).
func recordCacheSpan(tl *obs.Timeline, kind, label string, start time.Time, built bool) {
	end := time.Now()
	switch {
	case built:
		tl.Add(kind+"_build", label, start, end)
	case end.Sub(start) >= time.Millisecond:
		tl.Add(kind+"_load", label, start, end)
	}
}

// errorCellResult is the placeholder emitted for a failed cell: labels
// and Error set, aggregates empty.
func errorCellResult(cell Cell, err error) CellResult {
	return CellResult{
		Index:        cell.Index,
		Label:        cell.Label(),
		Population:   cell.Population.Label(),
		Placement:    cell.Placement.Label(),
		Model:        cell.Model.Name,
		Scenario:     cell.Scenario.Name,
		Intervention: cell.InterventionName(),
		Error:        err.Error(),
	}
}

// Slots is a counting semaphore shared by concurrent sweeps so one
// process-wide bound governs total simulation parallelism no matter how
// many requests are in flight. A nil *Slots is a no-op gate.
type Slots struct {
	ch chan struct{}
}

// NewSlots builds a pool of n shared worker slots (n < 1 is clamped to
// GOMAXPROCS).
func NewSlots(n int) *Slots {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Slots{ch: make(chan struct{}, n)}
}

func (s *Slots) acquire(ctx context.Context) error {
	if s == nil {
		return nil
	}
	select {
	case s.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Slots) release() {
	if s == nil {
		return
	}
	<-s.ch
}

// kernelDaysLabel renders a kernel-day tally deterministically
// ("active=38 dense=2"), sorted by kernel name.
func kernelDaysLabel(kd map[string]int64) string {
	names := make([]string, 0, len(kd))
	for k := range kd {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, kd[k])
	}
	return b.String()
}
