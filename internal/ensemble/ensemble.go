package ensemble

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/synthpop"
)

// Job is one unit of executor work: a single replicate of a single cell.
type Job struct {
	Cell      Cell
	Replicate int
	// Seed is the replicate's content-derived simulation seed.
	Seed uint64
	// Model is the cell's resolved disease model, shared read-only.
	Model *disease.Model
	// Spec points at the sweep being executed (Days, AggBufferSize, ...).
	Spec *Spec
}

// Hooks are the three engine operations the sweep needs, injected by the
// root package (an import there would be a cycle). Implementations must
// be safe for concurrent use; placements returned by BuildPlacement are
// shared read-only across every replicate and scenario that uses them.
type Hooks struct {
	// GeneratePopulation synthesizes the population for a spec (seed is
	// the already-resolved generation seed).
	GeneratePopulation func(PopulationSpec, uint64) (*synthpop.Population, error)
	// BuildPlacement distributes a population over ranks. The returned
	// handle is passed back to Simulate verbatim.
	BuildPlacement func(*synthpop.Population, PlacementSpec, uint64) (any, error)
	// Simulate runs one replicate on a cached placement.
	Simulate func(placement any, job Job) (*core.Result, error)
}

// SweepResult is a completed sweep: one aggregated CellResult per grid
// cell (in grid order), plus cache accounting proving build reuse.
type SweepResult struct {
	Spec  *Spec        `json:"spec"`
	Cells []CellResult `json:"cells"`
	// PopulationBuilds and PlacementBuilds count how many times each
	// unique content key was actually generated/partitioned — exactly 1
	// per key when the cache is doing its job.
	PopulationBuilds map[string]int `json:"population_builds"`
	PlacementBuilds  map[string]int `json:"placement_builds"`
	// Simulations is the total number of replicate runs executed.
	Simulations int `json:"simulations"`
}

// Run executes the sweep: normalize and validate the spec, enumerate the
// grid, then drive (cell, replicate) jobs through a bounded worker pool.
// Unique populations and placements are built once via the content-keyed
// cache; each replicate streams into its cell's aggregator. The output
// is byte-identical for any Workers value because aggregation slots are
// addressed by replicate index, never by completion order.
func Run(spec *Spec, hooks Hooks) (*SweepResult, error) {
	if hooks.GeneratePopulation == nil || hooks.BuildPlacement == nil || hooks.Simulate == nil {
		return nil, fmt.Errorf("ensemble: incomplete hooks")
	}
	// Work on a private copy: Normalize fills defaults, and the result
	// embeds the spec — neither should touch the caller's struct.
	spec = spec.clone()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Cells()

	// Resolve each model once; replicates share it read-only.
	models := make([]*disease.Model, len(spec.Models))
	for i, m := range spec.Models {
		model, err := m.Resolve()
		if err != nil {
			return nil, err
		}
		models[i] = model
	}

	popCache := newBuildCache()
	plCache := newBuildCache()
	aggs := make([]*aggregator, len(cells))
	for i := range aggs {
		aggs[i] = newAggregator(spec.Replicates)
	}

	type job struct {
		cellIdx   int
		replicate int
	}
	jobs := make(chan job)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var (
		errOnce  sync.Once
		firstErr error
		failed   = make(chan struct{})
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(failed)
		})
	}

	runJob := func(j job) error {
		cell := cells[j.cellIdx]
		popKey := cell.Population.Key(spec.Seed)
		popSeed := cell.Population.Seed
		if popSeed == 0 {
			popSeed = spec.Seed
		}
		popAny, err := popCache.get(popKey, func() (any, error) {
			return hooks.GeneratePopulation(cell.Population, popSeed)
		})
		if err != nil {
			return fmt.Errorf("ensemble: population %s: %w", cell.Population.Label(), err)
		}
		pop := popAny.(*synthpop.Population)

		plKey := cell.Placement.Key(popKey)
		pl, err := plCache.get(plKey, func() (any, error) {
			return hooks.BuildPlacement(pop, cell.Placement, popSeed)
		})
		if err != nil {
			return fmt.Errorf("ensemble: placement %s: %w", cell.Placement.Label(), err)
		}

		res, err := hooks.Simulate(pl, Job{
			Cell:      cell,
			Replicate: j.replicate,
			Seed:      cell.ReplicateSeed(spec.Seed, j.replicate),
			Model:     models[cell.modelIdx],
			Spec:      spec,
		})
		if err != nil {
			return fmt.Errorf("ensemble: cell %s replicate %d: %w", cell.Label(), j.replicate, err)
		}
		aggs[j.cellIdx].add(j.replicate, res)
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := runJob(j); err != nil {
					fail(err)
					// Keep draining so the producer never blocks.
				}
			}
		}()
	}

feed:
	for ci := range cells {
		for r := 0; r < spec.Replicates; r++ {
			select {
			case jobs <- job{cellIdx: ci, replicate: r}:
			case <-failed:
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// The result embeds the (already private) spec for provenance, minus
	// Workers: concurrency affects execution time, never results, and the
	// emitted JSON must be byte-identical across worker counts.
	spec.Workers = 0
	out := &SweepResult{
		Spec:             spec,
		Cells:            make([]CellResult, len(cells)),
		PopulationBuilds: popCache.builds(),
		PlacementBuilds:  plCache.builds(),
		Simulations:      len(cells) * spec.Replicates,
	}
	for i, cell := range cells {
		out.Cells[i] = aggs[i].finalize(cell, spec.Quantiles, spec.Confidence)
	}
	return out, nil
}
