package ensemble

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// fakeHooks counts engine calls and fabricates deterministic results
// from the job seed, so executor tests run in microseconds.
type fakeHooks struct {
	popBuilds atomic.Int64
	plBuilds  atomic.Int64
}

func (f *fakeHooks) hooks() Hooks {
	return Hooks{
		GeneratePopulation: func(ps PopulationSpec, seed uint64) (*synthpop.Population, error) {
			f.popBuilds.Add(1)
			return &synthpop.Population{Name: ps.Label()}, nil
		},
		BuildPlacement: func(pop *synthpop.Population, ps PlacementSpec, seed uint64) (any, error) {
			f.plBuilds.Add(1)
			return ps.Label(), nil
		},
		Simulate: func(pl any, job Job) (*core.Result, error) {
			days := make([]core.DayReport, job.Spec.Days)
			var total int64
			for d := range days {
				n := int64(xrand.KeyedIntn(100, job.Seed, uint64(d)))
				days[d] = core.DayReport{Day: d, NewInfections: n}
				total += n
			}
			return &core.Result{
				Days:            days,
				TotalInfections: total,
				AttackRate:      float64(total) / 10000,
			}, nil
		},
	}
}

func testSpec() *Spec {
	return &Spec{
		Populations: []PopulationSpec{
			{Name: "a", People: 100, Locations: 10},
			{Name: "b", People: 200, Locations: 20},
		},
		Placements: []PlacementSpec{
			{Strategy: "RR", Ranks: 4},
			{Strategy: "GP", SplitLoc: true, Ranks: 4},
		},
		Scenarios: []ScenarioSpec{
			{Name: "baseline"},
			{Name: "closure", Text: "when day >= 2 { close school for 7 }"},
		},
		Replicates: 8,
		Days:       20,
		Seed:       42,
	}
}

func TestRunBuildsEachPlacementOnce(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f := &fakeHooks{}
			spec := testSpec()
			spec.Workers = workers
			res, err := Run(spec, f.hooks())
			if err != nil {
				t.Fatal(err)
			}
			// 2 pops × 2 placements × 1 model × 2 scenarios × 8 replicates.
			if res.Simulations != 64 {
				t.Fatalf("simulations = %d, want 64", res.Simulations)
			}
			if got := f.popBuilds.Load(); got != 2 {
				t.Fatalf("population builds = %d, want 2 (one per unique population)", got)
			}
			if got := f.plBuilds.Load(); got != 4 {
				t.Fatalf("placement builds = %d, want 4 (one per unique pop×placement)", got)
			}
			if len(res.PlacementBuilds) != 4 {
				t.Fatalf("placement cache keys = %d, want 4", len(res.PlacementBuilds))
			}
			for key, n := range res.PlacementBuilds {
				if n != 1 {
					t.Fatalf("placement %q built %d times", key, n)
				}
			}
			for key, n := range res.PopulationBuilds {
				if n != 1 {
					t.Fatalf("population %q built %d times", key, n)
				}
			}
		})
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var outputs []string
	for _, workers := range []int{1, 2, 8} {
		f := &fakeHooks{}
		spec := testSpec()
		spec.Workers = workers
		res, err := Run(spec, f.hooks())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatal("aggregate JSON differs across worker counts")
	}
}

func TestReplicateSeedsAreContentKeyed(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	cells := spec.Cells()
	// Seeds must be distinct per (population, model, replicate) — and
	// deliberately SHARED across placements and scenarios: common random
	// numbers pair the replicates for intervention comparison.
	type stream struct{ pop, model string }
	seen := map[uint64]stream{}
	for _, c := range cells {
		for r := 0; r < spec.Replicates; r++ {
			s := c.ReplicateSeed(spec.Seed, r)
			cur := stream{c.Population.Label(), c.Model.Name}
			if prev, dup := seen[s]; dup && prev != cur {
				t.Fatalf("seed collision between %v and %v", prev, cur)
			}
			seen[s] = cur
		}
	}
	// All cells of the same population share seeds across placements and
	// scenarios.
	base := cells[0]
	for _, c := range cells {
		if c.Population.Label() != base.Population.Label() || c.Model.Name != base.Model.Name {
			continue
		}
		if c.ReplicateSeed(spec.Seed, 3) != base.ReplicateSeed(spec.Seed, 3) {
			t.Fatalf("cell %q not seed-paired with %q", c.Label(), base.Label())
		}
	}
	// Adding a population must not shift seeds of existing cells.
	grown := testSpec()
	grown.Populations = append([]PopulationSpec{{Name: "z", People: 50, Locations: 5}}, grown.Populations...)
	grown.Normalize()
	for _, c := range grown.Cells() {
		if c.Population.Name == "z" {
			continue
		}
		for r := 0; r < spec.Replicates; r++ {
			cur := stream{c.Population.Label(), c.Model.Name}
			if owner, ok := seen[c.ReplicateSeed(grown.Seed, r)]; !ok || owner != cur {
				t.Fatalf("seed of %q r%d changed when the grid grew", c.Label(), r)
			}
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := parsed.Encode(&again); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := spec.Encode(&first); err != nil {
		t.Fatal(err)
	}
	if first.String() != again.String() {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", first.String(), again.String())
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown-field", `{"populations":[{"state":"WY","scale":100}],"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":5,"bogus":1}`},
		{"no-populations", `{"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":5}`},
		{"bad-strategy", `{"populations":[{"state":"WY","scale":100}],"placements":[{"strategy":"XX","ranks":2}],"replicates":1,"days":5}`},
		{"bad-scenario", `{"populations":[{"state":"WY","scale":100}],"placements":[{"strategy":"RR","ranks":2}],"scenarios":[{"name":"x","text":"when {"}],"replicates":1,"days":5}`},
		{"bad-quantile", `{"populations":[{"state":"WY","scale":100}],"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":5,"quantiles":[1.5]}`},
		{"bad-model", `{"populations":[{"state":"WY","scale":100}],"placements":[{"strategy":"RR","ranks":2}],"models":[{"name":"x","text":"model broken"}],"replicates":1,"days":5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec(strings.NewReader(tc.json)); err == nil {
				t.Fatal("want parse error")
			}
		})
	}
}

func TestRunPropagatesSimulateError(t *testing.T) {
	f := &fakeHooks{}
	h := f.hooks()
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		return nil, fmt.Errorf("boom")
	}
	spec := testSpec()
	spec.Workers = 4
	if _, err := Run(spec, h); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want simulate error, got %v", err)
	}
}

func TestAggregatorCurvesAndDists(t *testing.T) {
	agg := newAggregator(4)
	// Four replicates with known curves; attack rates 0.1..0.4.
	for r := 0; r < 4; r++ {
		days := []core.DayReport{
			{Day: 0, NewInfections: int64(r)},      // 0 1 2 3
			{Day: 1, NewInfections: int64(10 * r)}, // 0 10 20 30 — peak for r>0
		}
		agg.add(r, &core.Result{
			Days:            days,
			TotalInfections: int64(11 * r),
			AttackRate:      float64(r+1) / 10,
		})
	}
	cell := Cell{Population: PopulationSpec{Name: "p", People: 1, Locations: 1},
		Placement: PlacementSpec{Strategy: "RR", Ranks: 1},
		Model:     ModelSpec{Name: "m"}, Scenario: ScenarioSpec{Name: "s"}}
	res := agg.finalize(cell, []float64{0, 0.5, 1}, 0.95)
	if res.Days != 2 || res.Replicates != 4 {
		t.Fatalf("shape = %d days × %d reps", res.Days, res.Replicates)
	}
	if res.MeanCurve[0] != 1.5 || res.MeanCurve[1] != 15 {
		t.Fatalf("mean curve = %v", res.MeanCurve)
	}
	// Quantile curves: [0]=min, [1]=median, [2]=max per day.
	if res.QuantileCurves[0][1] != 0 || res.QuantileCurves[2][1] != 30 || res.QuantileCurves[1][1] != 15 {
		t.Fatalf("quantile curves = %v", res.QuantileCurves)
	}
	if res.AttackRate.Mean != 0.25 || res.AttackRate.Min != 0.1 || res.AttackRate.Max != 0.4 {
		t.Fatalf("attack dist = %+v", res.AttackRate)
	}
	if !(res.AttackRate.CILo < res.AttackRate.Mean && res.AttackRate.Mean < res.AttackRate.CIHi) {
		t.Fatalf("CI does not bracket the mean: %+v", res.AttackRate)
	}
	// Peak day: replicate 0 peaks on day 0 (all-zero curve peaks at 0),
	// others on day 1.
	if res.PeakDay.Max != 1 || res.PeakHeight.Max != 30 {
		t.Fatalf("peak dist = %+v %+v", res.PeakDay, res.PeakHeight)
	}
}

func TestEmittersShapes(t *testing.T) {
	f := &fakeHooks{}
	spec := testSpec()
	res, err := Run(spec, f.hooks())
	if err != nil {
		t.Fatal(err)
	}

	var sum bytes.Buffer
	if err := res.WriteSummaryCSV(&sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sum.String()), "\n")
	if len(lines) != 1+8 { // header + 8 cells
		t.Fatalf("summary rows = %d, want 9", len(lines))
	}
	if !strings.HasPrefix(lines[0], "population,placement,model,scenario,replicates,attack_mean,attack_ci_lo,attack_ci_hi") {
		t.Fatalf("summary header = %q", lines[0])
	}

	var curves bytes.Buffer
	if err := res.WriteCurvesCSV(&curves); err != nil {
		t.Fatal(err)
	}
	clines := strings.Split(strings.TrimSpace(curves.String()), "\n")
	if len(clines) != 1+8*spec.Days {
		t.Fatalf("curve rows = %d, want %d", len(clines), 1+8*spec.Days)
	}
	if clines[0] != "population,placement,model,scenario,day,mean,q10,q50,q90" {
		t.Fatalf("curves header = %q", clines[0])
	}
}

func TestEncodeResultJSON(t *testing.T) {
	res := &core.Result{
		Days: []core.DayReport{
			{Day: 0, NewInfections: 2},
			{Day: 1, NewInfections: 7},
			{Day: 2, NewInfections: 3},
		},
		TotalInfections: 12,
		AttackRate:      0.12,
		FinalCounts:     map[string]int64{"recovered": 12, "susceptible": 88},
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"total_infections": 12`,
		`"attack_rate": 0.12`,
		`"peak_day": 1`,
		`"peak_height": 7`,
		`"epi_curve"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
