package ensemble

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteJSON emits the full sweep result as indented JSON. The encoding
// is deterministic: struct fields emit in declaration order, map keys
// sort, and every float was computed in replicate-index order — so the
// same spec and master seed produce byte-identical output regardless of
// worker count.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteSummaryCSV emits one row per cell with the headline scalars:
// attack-rate mean and confidence interval, peak day and height. Failed
// cells are skipped — an all-zero row would be indistinguishable from a
// genuine zero-outbreak result; the JSON emitter carries their errors.
func (r *SweepResult) WriteSummaryCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"population,placement,model,scenario,replicates,"+
			"attack_mean,attack_ci_lo,attack_ci_hi,"+
			"peak_day_mean,peak_height_mean,total_infections_mean\n"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if c.Error != "" {
			continue
		}
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%s,%s,%s,%s,%s,%s\n",
			csvField(c.Population), csvField(c.Placement), csvField(c.Model), csvField(c.Scenario),
			c.Replicates,
			ftoa(c.AttackRate.Mean), ftoa(c.AttackRate.CILo), ftoa(c.AttackRate.CIHi),
			ftoa(c.PeakDay.Mean), ftoa(c.PeakHeight.Mean), ftoa(c.TotalInfections.Mean))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCurvesCSV emits the per-day aggregate epidemic curves in long
// form: one row per (cell, day) with the mean and each requested
// quantile as its own column (q10, q50, q90, ...). Failed cells have no
// curves and are skipped (their Days is 0).
func (r *SweepResult) WriteCurvesCSV(w io.Writer) error {
	header := "population,placement,model,scenario,day,mean"
	for _, q := range r.Spec.Quantiles {
		header += ",q" + strconv.FormatFloat(q*100, 'g', -1, 64)
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		for d := 0; d < c.Days; d++ {
			row := fmt.Sprintf("%s,%s,%s,%s,%d,%s",
				csvField(c.Population), csvField(c.Placement), csvField(c.Model), csvField(c.Scenario),
				d, ftoa(c.MeanCurve[d]))
			for _, qc := range c.QuantileCurves {
				row += "," + ftoa(qc[d])
			}
			if _, err := io.WriteString(w, row+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// ftoa formats a float the way the JSON encoder does (shortest
// round-trip representation), keeping the two emitters consistent.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// csvField quotes a field if it contains a separator.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ResultJSON is the machine-readable form of a single simulation Result,
// shared by cmd/episim -json and the examples: the headline scalars,
// derived peak metrics, the epidemic curve and the full per-day reports.
type ResultJSON struct {
	TotalInfections int64            `json:"total_infections"`
	AttackRate      float64          `json:"attack_rate"`
	PeakDay         int              `json:"peak_day"`
	PeakHeight      int64            `json:"peak_height"`
	FinalCounts     map[string]int64 `json:"final_counts"`
	EpiCurve        []int64          `json:"epi_curve"`
	Days            []core.DayReport `json:"days"`
}

// NewResultJSON derives the encoding of one Result.
func NewResultJSON(res *core.Result) ResultJSON {
	curve := res.EpiCurve()
	day, height := peakOf(curve)
	return ResultJSON{
		TotalInfections: res.TotalInfections,
		AttackRate:      res.AttackRate,
		PeakDay:         day,
		PeakHeight:      height,
		FinalCounts:     res.FinalCounts,
		EpiCurve:        curve,
		Days:            res.Days,
	}
}

// EncodeResult writes one Result as indented JSON.
func EncodeResult(w io.Writer, res *core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewResultJSON(res))
}
