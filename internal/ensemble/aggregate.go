package ensemble

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Dist summarizes one scalar metric across a cell's replicates: moments,
// a normal-approximation confidence interval on the mean, and the
// sweep's quantiles.
type Dist struct {
	Mean      float64   `json:"mean"`
	Std       float64   `json:"std"`
	Min       float64   `json:"min"`
	Max       float64   `json:"max"`
	CILo      float64   `json:"ci_lo"`
	CIHi      float64   `json:"ci_hi"`
	Quantiles []float64 `json:"quantiles"`
}

func distOf(xs []float64, qs []float64, confidence float64) Dist {
	sum := stats.Summarize(xs)
	ci := stats.MeanCI(xs, confidence)
	return Dist{
		Mean: sum.Mean, Std: ci.Std, Min: sum.Min, Max: sum.Max,
		CILo: ci.Lo, CIHi: ci.Hi,
		Quantiles: stats.Quantiles(xs, qs),
	}
}

// CellResult is the aggregated outcome of one sweep cell.
type CellResult struct {
	// Index is the cell's position in the spec's grid order; streaming
	// consumers use it to slot results arriving in completion order.
	Index      int    `json:"index"`
	Label      string `json:"label"`
	Population string `json:"population"`
	Placement  string `json:"placement"`
	Model      string `json:"model"`
	Scenario   string `json:"scenario"`
	// Intervention is the cell's intervention-axis branch name; empty (and
	// omitted) on legacy grids, so version 1 results keep their bytes.
	Intervention string `json:"intervention,omitempty"`
	Replicates   int    `json:"replicates"`
	Days       int    `json:"days"`
	// Error is set (and the aggregates below left empty) when the cell
	// failed: any replicate's population build, placement build or
	// simulation returned an error.
	Error string `json:"error,omitempty"`

	AttackRate      Dist `json:"attack_rate"`
	PeakDay         Dist `json:"peak_day"`
	PeakHeight      Dist `json:"peak_height"`
	TotalInfections Dist `json:"total_infections"`

	// MeanCurve[d] is the mean daily new-infection count over replicates;
	// QuantileCurves[i][d] is the Spec.Quantiles[i] quantile of day d.
	MeanCurve      []float64   `json:"mean_curve"`
	QuantileCurves [][]float64 `json:"quantile_curves"`

	// KernelDays counts simulated days per executing kernel, summed over
	// replicates; nil when every replicate ran the default dense kernel.
	KernelDays map[string]int64 `json:"kernel_days,omitempty"`
}

// aggregator accumulates one cell's replicates. Only the epidemic curve
// and four scalars survive each Result — the per-day phase statistics,
// count maps and the Result itself are dropped as soon as a replicate is
// folded in, keeping a sweep's footprint at replicates × days numbers
// per cell no matter how heavy the simulations are.
//
// Every slot is indexed by replicate, so concurrent workers write
// disjoint memory and the finalized aggregate is independent of
// completion order — the root of the sweep's byte-identical determinism
// across worker counts.
type aggregator struct {
	curves     [][]int64 // [replicate][day]
	attack     []float64
	peakDay    []float64
	peakHeight []float64
	total      []float64
	kernelDays []map[string]int64 // [replicate], nil for default-kernel runs
}

func newAggregator(replicates int) *aggregator {
	return &aggregator{
		curves:     make([][]int64, replicates),
		attack:     make([]float64, replicates),
		peakDay:    make([]float64, replicates),
		peakHeight: make([]float64, replicates),
		total:      make([]float64, replicates),
		kernelDays: make([]map[string]int64, replicates),
	}
}

// add folds one replicate's Result into the aggregate.
func (a *aggregator) add(replicate int, res *core.Result) {
	curve := res.EpiCurve()
	a.curves[replicate] = curve
	a.attack[replicate] = res.AttackRate
	a.total[replicate] = float64(res.TotalInfections)
	day, height := peakOf(curve)
	a.peakDay[replicate] = float64(day)
	a.peakHeight[replicate] = float64(height)
	a.kernelDays[replicate] = res.KernelDays
}

// peakOf returns the day and height of a curve's maximum (first day on
// ties; 0, 0 for flat-zero curves).
func peakOf(curve []int64) (day int, height int64) {
	for d, v := range curve {
		if v > height {
			height, day = v, d
		}
	}
	return day, height
}

// finalize reduces the accumulated replicates to a CellResult.
func (a *aggregator) finalize(cell Cell, qs []float64, confidence float64) CellResult {
	days := 0
	for _, c := range a.curves {
		if len(c) > days {
			days = len(c)
		}
	}
	mean := make([]float64, days)
	quants := make([][]float64, len(qs))
	for i := range quants {
		quants[i] = make([]float64, days)
	}
	col := make([]float64, len(a.curves))
	for d := 0; d < days; d++ {
		for r, c := range a.curves {
			if d < len(c) {
				col[r] = float64(c[d])
			} else {
				col[r] = 0
			}
		}
		mean[d] = stats.Summarize(col).Mean
		for i, q := range stats.Quantiles(col, qs) {
			quants[i][d] = q
		}
	}
	return CellResult{
		Index:        cell.Index,
		Label:        cell.Label(),
		Population:   cell.Population.Label(),
		Placement:    cell.Placement.Label(),
		Model:        cell.Model.Name,
		Scenario:     cell.Scenario.Name,
		Intervention: cell.InterventionName(),
		Replicates:   len(a.curves),
		Days:         days,

		AttackRate:      distOf(a.attack, qs, confidence),
		PeakDay:         distOf(a.peakDay, qs, confidence),
		PeakHeight:      distOf(a.peakHeight, qs, confidence),
		TotalInfections: distOf(a.total, qs, confidence),

		MeanCurve:      mean,
		QuantileCurves: quants,
		KernelDays:     mergeKernelDays(a.kernelDays),
	}
}

// mergeKernelDays sums per-replicate kernel-day counters; nil when no
// replicate reported any (the default dense kernel).
func mergeKernelDays(per []map[string]int64) map[string]int64 {
	var out map[string]int64
	for _, kd := range per {
		for k, n := range kd {
			if out == nil {
				out = make(map[string]int64)
			}
			out[k] += n
		}
	}
	return out
}
