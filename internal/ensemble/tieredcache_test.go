package ensemble

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeTier is an in-memory stand-in for the disk tier: a map of encoded
// values plus injectable corruption and call accounting.
type fakeTier struct {
	mu      sync.Mutex
	m       map[string]any
	corrupt map[string]bool // Load returns a non-miss error
	loads   int
	stores  int
	failPut bool
}

func newFakeTier() *fakeTier {
	return &fakeTier{m: map[string]any{}, corrupt: map[string]bool{}}
}

func (t *fakeTier) Load(key string) (any, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads++
	if t.corrupt[key] {
		return nil, fmt.Errorf("fake tier: checksum mismatch for %q", key)
	}
	v, ok := t.m[key]
	if !ok {
		return nil, ErrTierMiss
	}
	return v, nil
}

func (t *fakeTier) Store(key string, val any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stores++
	if t.failPut {
		return errors.New("fake tier: disk full")
	}
	t.m[key] = val
	delete(t.corrupt, key)
	return nil
}

// TestTieredCacheWriteThroughAndPromote is the tier contract end to end:
// a build writes through to disk; a fresh memory cache over the same
// tier serves the key from disk with zero builds and promotes it into
// the memory LRU (the second get is a pure memory hit).
func TestTieredCacheWriteThroughAndPromote(t *testing.T) {
	tier := newFakeTier()
	ctx := context.Background()

	cold := NewCache(0, nil).WithDisk(tier)
	builds := 0
	build := func() (any, error) { builds++; return "placement", nil }
	v, built, err := cold.get(ctx, "k", build)
	if err != nil || v != "placement" || !built {
		t.Fatalf("cold get: v=%v built=%v err=%v", v, built, err)
	}
	st := cold.Stats()
	if st.Builds != 1 || st.DiskMisses != 1 || st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}

	// Fresh memory cache, same tier: the "restarted process" case.
	warm := NewCache(0, nil).WithDisk(tier)
	v, built, err = warm.get(ctx, "k", func() (any, error) {
		t.Error("warm get must not build")
		return nil, nil
	})
	if err != nil || v != "placement" || built {
		t.Fatalf("warm get: v=%v built=%v err=%v", v, built, err)
	}
	st = warm.Stats()
	if st.Builds != 0 || st.DiskHits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
	// Promoted: the next get never touches the tier.
	loadsBefore := tier.loads
	if v, _, err := warm.get(ctx, "k", nil); err != nil || v != "placement" {
		t.Fatalf("promoted get: %v, %v", v, err)
	}
	if tier.loads != loadsBefore {
		t.Fatal("memory hit went back to disk")
	}
	if builds != 1 {
		t.Fatalf("total builds = %d, want 1", builds)
	}
}

// TestTieredCacheCorruptArtifactRebuilds: a damaged disk artifact is a
// counted miss, the value is rebuilt, and the write-through heals the
// tier for the next process.
func TestTieredCacheCorruptArtifactRebuilds(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = "stale"
	tier.corrupt["k"] = true

	c := NewCache(0, nil).WithDisk(tier)
	v, built, err := c.get(context.Background(), "k", func() (any, error) { return "rebuilt", nil })
	if err != nil || v != "rebuilt" || !built {
		t.Fatalf("get over corrupt tier: v=%v built=%v err=%v", v, built, err)
	}
	st := c.Stats()
	if st.DiskErrors != 1 || st.DiskMisses != 1 || st.Builds != 1 || st.DiskWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Healed: a fresh cache now loads the rebuilt value.
	c2 := NewCache(0, nil).WithDisk(tier)
	v, built, err = c2.get(context.Background(), "k", nil)
	if err != nil || v != "rebuilt" || built {
		t.Fatalf("healed get: v=%v built=%v err=%v", v, built, err)
	}
}

// TestTieredCacheStoreFailureIsNonFatal: the build's value is served
// even when persisting it fails; the error is only counted.
func TestTieredCacheStoreFailureIsNonFatal(t *testing.T) {
	tier := newFakeTier()
	tier.failPut = true
	c := NewCache(0, nil).WithDisk(tier)
	v, built, err := c.get(context.Background(), "k", func() (any, error) { return "v", nil })
	if err != nil || v != "v" || !built {
		t.Fatalf("get: v=%v built=%v err=%v", v, built, err)
	}
	if st := c.Stats(); st.DiskErrors != 1 || st.DiskWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Value still cached in memory despite the failed spill.
	if v, _, err := c.get(context.Background(), "k", nil); err != nil || v != "v" {
		t.Fatalf("memory survived: %v, %v", v, err)
	}
}

// TestTieredCacheSingleflightCoversDiskLoad: concurrent callers of an
// uncached key share one disk read, exactly as they share one build.
func TestTieredCacheSingleflightCoversDiskLoad(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = "on-disk"
	c := NewCache(0, nil).WithDisk(tier)

	const callers = 16
	var wg sync.WaitGroup
	var builds atomic.Int64
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.get(context.Background(), "k", func() (any, error) {
				builds.Add(1)
				return nil, errors.New("must not build")
			})
			if err != nil || v != "on-disk" {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if builds.Load() != 0 {
		t.Fatalf("builds = %d, want 0", builds.Load())
	}
	if tier.loads != 1 {
		t.Fatalf("disk loads = %d, want 1 (singleflight)", tier.loads)
	}
	if st := c.Stats(); st.DiskHits != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTieredCacheEvictionKeepsDiskCopy: memory eviction forgets only the
// memory copy — re-getting an evicted key is a disk hit, not a rebuild.
func TestTieredCacheEvictionKeepsDiskCopy(t *testing.T) {
	tier := newFakeTier()
	c := NewCache(8, func(any) int64 { return 4 }).WithDisk(tier)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, _, err := c.get(ctx, k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Builds != 3 {
		t.Fatalf("stats = %+v", st)
	}
	v, built, err := c.get(ctx, "a", func() (any, error) {
		t.Error("evicted key must reload from disk, not rebuild")
		return nil, nil
	})
	if err != nil || v != "a" || built {
		t.Fatalf("reload: v=%v built=%v err=%v", v, built, err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
