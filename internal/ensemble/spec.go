// Package ensemble turns the single-run engine into a scenario-sweep
// system: a declarative SweepSpec expresses grids over populations,
// data-distribution options, disease models, intervention scenarios and
// seeded replicates; a bounded worker pool executes the grid with a
// content-keyed cache so each unique (population, placement) pair is
// generated and partitioned exactly once; and per-cell streaming
// aggregation reduces replicate results to mean/quantile epidemic curves
// and attack-rate confidence intervals without retaining every Result in
// memory.
//
// The package is deliberately independent of the repository's root
// package (which would be an import cycle): the three operations that
// live there — population generation, placement construction and the
// simulation itself — are injected through Hooks. The public surface is
// episim.RunSweep, which wires the real engine in.
package ensemble

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/xrand"
)

// PopulationSpec names one synthetic population of the grid: either a
// Table I state preset (State + Scale) or a custom population
// (Name + People + Locations).
type PopulationSpec struct {
	// State is a Table I preset name ("US", "CA", ..., "WY"); Scale is the
	// 1:Scale sampling divisor.
	State string `json:"state,omitempty"`
	Scale int    `json:"scale,omitempty"`
	// Name/People/Locations describe a custom population, used when State
	// is empty.
	Name      string `json:"name,omitempty"`
	People    int    `json:"people,omitempty"`
	Locations int    `json:"locations,omitempty"`
	// Seed overrides the master seed for population synthesis (0 = use the
	// sweep's master seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Label is the human-readable population name ("WY/1:400" or "custom").
func (p PopulationSpec) Label() string {
	if p.State != "" {
		return fmt.Sprintf("%s/1:%d", p.State, p.Scale)
	}
	if p.Name != "" {
		return p.Name
	}
	return "custom"
}

// Key is the content key of the population: every field that affects
// generation participates, so equal keys mean identical populations.
func (p PopulationSpec) Key(masterSeed uint64) string {
	seed := p.Seed
	if seed == 0 {
		seed = masterSeed
	}
	if p.State != "" {
		return fmt.Sprintf("state=%s scale=%d seed=%d", p.State, p.Scale, seed)
	}
	return fmt.Sprintf("name=%s people=%d locations=%d seed=%d", p.Name, p.People, p.Locations, seed)
}

// PlacementSpec names one data-distribution option combination of
// Section III.
type PlacementSpec struct {
	// Strategy is "RR" or "GP".
	Strategy string `json:"strategy"`
	// SplitLoc applies heavy-location splitting first (Section III-C).
	SplitLoc bool `json:"splitloc,omitempty"`
	Ranks    int  `json:"ranks"`
	// Imbalance is the partitioner's balance tolerance ε (0 = default).
	Imbalance float64 `json:"imbalance,omitempty"`
}

// Label is the paper's label plus the rank count: "GP-splitLoc×64".
func (p PlacementSpec) Label() string {
	l := strings.ToUpper(p.Strategy)
	if p.SplitLoc {
		l += "-splitLoc"
	}
	return fmt.Sprintf("%s×%d", l, p.Ranks)
}

// Key is the placement's content key relative to a population key: two
// equal keys produce identical placements, so the build cache may share
// them read-only.
func (p PlacementSpec) Key(popKey string) string {
	return fmt.Sprintf("%s | strategy=%s splitloc=%v ranks=%d imbalance=%g",
		popKey, strings.ToUpper(p.Strategy), p.SplitLoc, p.Ranks, p.Imbalance)
}

// ModelSpec names one disease model of the grid.
type ModelSpec struct {
	Name string `json:"name"`
	// Text is a full disease-model DSL program; empty uses the built-in
	// default ILI model.
	Text string `json:"text,omitempty"`
	// Transmissibility, when > 0, overrides the model's τ — the common
	// one-knob sensitivity sweep.
	Transmissibility float64 `json:"transmissibility,omitempty"`
}

// Resolve parses the model text (or takes the default model) and applies
// overrides, returning a model private to this spec.
func (m ModelSpec) Resolve() (*disease.Model, error) {
	model := disease.Default()
	if strings.TrimSpace(m.Text) != "" {
		var err error
		model, err = disease.ParseString(m.Text)
		if err != nil {
			return nil, fmt.Errorf("ensemble: model %q: %w", m.Name, err)
		}
	}
	if m.Transmissibility > 0 {
		model.Transmissibility = m.Transmissibility
	}
	return model, nil
}

// ScenarioSpec names one intervention scenario of the grid. An empty
// Text is the unmitigated baseline.
type ScenarioSpec struct {
	Name string `json:"name"`
	Text string `json:"text,omitempty"`
}

// InterventionSpec is one branch of the sweep's intervention axis: a
// named, typed schedule of closures, vaccinations and quarantines. The
// schedule compiles onto the cell's scenario text, so a branch runs
// through exactly the engine path a hand-written scenario does; an empty
// schedule is the do-nothing counterfactual baseline.
type InterventionSpec struct {
	Name string `json:"name,omitempty"`
	interventions.Schedule
}

// Spec is a declarative scenario sweep: the cross product of
// Populations × Placements × Models × Scenarios × Interventions, with
// Replicates seeded replicates per cell.
type Spec struct {
	Populations []PopulationSpec `json:"populations"`
	Placements  []PlacementSpec  `json:"placements"`
	// Models defaults to the single built-in model when empty.
	Models []ModelSpec `json:"models,omitempty"`
	// Scenarios defaults to the single unmitigated baseline when empty.
	Scenarios []ScenarioSpec `json:"scenarios,omitempty"`
	// Interventions, when present, adds a first-class intervention axis:
	// each entry forks one branch per (population, placement, model,
	// scenario) cell. Every branch trigger must lie strictly after
	// ForkDay, so all branches of a cell share the identical pre-fork
	// prefix and the executor can simulate it once (version 2 specs; an
	// absent axis is the legacy version 1 grid, byte-identical as before).
	Interventions []InterventionSpec `json:"interventions,omitempty"`
	// ForkDay is the day boundary the intervention branches fork from
	// (0 = fork at the initial state). Requires an explicit Days.
	ForkDay int `json:"fork_day,omitempty"`

	Replicates        int    `json:"replicates"`
	Days              int    `json:"days"`
	Seed              uint64 `json:"seed"`
	InitialInfections int    `json:"initial_infections,omitempty"`
	// AggBufferSize and Mixing are forwarded to every simulation.
	AggBufferSize int     `json:"agg_buffer,omitempty"`
	Mixing        float64 `json:"mixing,omitempty"`
	// Kernel selects the simulation kernel for every replicate: "" or
	// "dense", "auto" (byte-identical active-set stepping) or "event"
	// (Gillespie below the prevalence threshold, statistically
	// equivalent). KernelThreshold gates the event kernel (0 = engine
	// default).
	Kernel          string  `json:"kernel,omitempty"`
	KernelThreshold float64 `json:"kernel_threshold,omitempty"`

	// Workers bounds the executor's concurrency (0 = GOMAXPROCS, 1 =
	// sequential). Results are byte-identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// Quantiles are the per-day epidemic-curve quantiles to report
	// (default 0.1, 0.5, 0.9).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// Confidence is the attack-rate confidence level (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
}

// clone returns a copy of the spec whose slices are private, so
// normalization and result embedding never alias the caller's data.
func (s *Spec) clone() *Spec {
	c := *s
	c.Populations = append([]PopulationSpec(nil), s.Populations...)
	c.Placements = append([]PlacementSpec(nil), s.Placements...)
	c.Models = append([]ModelSpec(nil), s.Models...)
	c.Scenarios = append([]ScenarioSpec(nil), s.Scenarios...)
	c.Interventions = append([]InterventionSpec(nil), s.Interventions...)
	c.Quantiles = append([]float64(nil), s.Quantiles...)
	return &c
}

// Version reports the spec's wire version: 1 for the legacy grid, 2 when
// the intervention axis is in use. One decode path accepts both; the
// version is surfaced in submit/status replies so clients can tell which
// semantics a stored sweep ran under.
func (s *Spec) Version() int {
	if len(s.Interventions) > 0 || s.ForkDay > 0 {
		return 2
	}
	return 1
}

// Normalize fills defaulted fields in place.
func (s *Spec) Normalize() {
	if len(s.Models) == 0 {
		s.Models = []ModelSpec{{Name: "default"}}
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = []ScenarioSpec{{Name: "baseline"}}
	}
	if s.Replicates <= 0 {
		s.Replicates = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Quantiles) == 0 {
		s.Quantiles = []float64{0.1, 0.5, 0.9}
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		s.Confidence = 0.95
	}
	// Only name interventions when the axis is present: a legacy spec must
	// normalize to exactly its historical form, byte for byte.
	for i := range s.Interventions {
		if s.Interventions[i].Name == "" {
			s.Interventions[i].Name = fmt.Sprintf("iv%d", i)
		}
	}
}

// Validate checks the spec's structural invariants. It parses every
// model and scenario so grid-wide input errors surface before any
// simulation work starts.
func (s *Spec) Validate() error {
	if len(s.Populations) == 0 {
		return fmt.Errorf("ensemble: spec has no populations")
	}
	if len(s.Placements) == 0 {
		return fmt.Errorf("ensemble: spec has no placements")
	}
	for _, p := range s.Populations {
		if p.State != "" && p.Scale <= 0 {
			return fmt.Errorf("ensemble: population %q needs a positive scale", p.State)
		}
		if p.State == "" && (p.People <= 0 || p.Locations <= 0) {
			return fmt.Errorf("ensemble: custom population %q needs people and locations", p.Name)
		}
	}
	for _, p := range s.Placements {
		switch strings.ToUpper(p.Strategy) {
		case "RR", "GP":
		default:
			return fmt.Errorf("ensemble: unknown strategy %q (want RR or GP)", p.Strategy)
		}
		if p.Ranks < 1 {
			return fmt.Errorf("ensemble: placement %s needs at least one rank", p.Label())
		}
	}
	for _, m := range s.Models {
		if _, err := m.Resolve(); err != nil {
			return err
		}
	}
	for _, sc := range s.Scenarios {
		if strings.TrimSpace(sc.Text) == "" {
			continue
		}
		if _, err := interventions.Parse(sc.Text); err != nil {
			return fmt.Errorf("ensemble: scenario %q: %w", sc.Name, err)
		}
	}
	for _, q := range s.Quantiles {
		if q < 0 || q > 1 {
			return fmt.Errorf("ensemble: quantile %v outside [0,1]", q)
		}
	}
	switch s.Kernel {
	case "", "dense", "auto", "event":
	default:
		return fmt.Errorf("ensemble: unknown kernel %q (want dense, auto or event)", s.Kernel)
	}
	if s.Kernel == "event" && s.Mixing > 0 {
		return fmt.Errorf("ensemble: kernel \"event\" does not support mixing")
	}
	if s.KernelThreshold < 0 || s.KernelThreshold > 1 {
		return fmt.Errorf("ensemble: kernel threshold %v outside [0,1]", s.KernelThreshold)
	}
	if s.ForkDay < 0 {
		return fmt.Errorf("ensemble: fork day %d is negative", s.ForkDay)
	}
	if s.ForkDay > 0 && len(s.Interventions) == 0 {
		return fmt.Errorf("ensemble: fork day %d without an intervention axis", s.ForkDay)
	}
	if len(s.Interventions) > 0 {
		if s.Days <= 0 {
			return fmt.Errorf("ensemble: the intervention axis requires an explicit days")
		}
		if s.ForkDay >= s.Days {
			return fmt.Errorf("ensemble: fork day %d must lie before the %d-day horizon", s.ForkDay, s.Days)
		}
		seen := map[string]bool{}
		for i := range s.Interventions {
			iv := &s.Interventions[i]
			if seen[iv.Name] {
				return fmt.Errorf("ensemble: duplicate intervention name %q", iv.Name)
			}
			seen[iv.Name] = true
			if err := iv.Schedule.Validate(s.ForkDay); err != nil {
				return fmt.Errorf("ensemble: intervention %q: %w", iv.Name, err)
			}
		}
	}
	return nil
}

// Cell is one point of the sweep grid.
type Cell struct {
	Index      int
	Population PopulationSpec
	Placement  PlacementSpec
	Model      ModelSpec
	Scenario   ScenarioSpec
	// Intervention is the cell's branch of the intervention axis; nil on
	// legacy (version 1) grids.
	Intervention *InterventionSpec

	// modelIdx is the Model's position in Spec.Models, set by Cells; the
	// executor uses it to share one resolved model per spec entry.
	modelIdx int
}

// Label is the cell's human-readable coordinates.
func (c Cell) Label() string {
	l := fmt.Sprintf("%s %s %s %s",
		c.Population.Label(), c.Placement.Label(), c.Model.Name, c.Scenario.Name)
	if c.Intervention != nil {
		l += " " + c.Intervention.Name
	}
	return l
}

// InterventionName is the cell's intervention-axis coordinate ("" on
// legacy grids).
func (c Cell) InterventionName() string {
	if c.Intervention == nil {
		return ""
	}
	return c.Intervention.Name
}

// CheckpointKey is the content key of the fork-point checkpoint a
// cell's replicate resumes from. Everything the prefix trajectory
// depends on participates — the placement key (which covers the
// population), the model, the base scenario text, the replicate seed and
// every forwarded engine knob — but NOT the intervention branch (all
// branches share the prefix; that is the point) and NOT the horizon
// Days, so a later sweep with a longer horizon reuses the same
// checkpoint.
func (c Cell) CheckpointKey(spec *Spec, plKey string, seed uint64) string {
	return fmt.Sprintf("%s | model=%s/%x tx=%g scenario=%x seed=%d init=%d mix=%g agg=%d kernel=%s/%g fork=%d",
		plKey, c.Model.Name, hashString(c.Model.Text), c.Model.Transmissibility,
		hashString(c.Scenario.Text), seed, spec.InitialInfections, spec.Mixing,
		spec.AggBufferSize, spec.Kernel, spec.KernelThreshold, spec.ForkDay)
}

// ReplicateSeed derives the simulation seed of one replicate. It is
// keyed by content (not grid index), so adding rows to the sweep never
// changes the seeds — and hence the trajectories — of existing cells.
//
// Deliberately, only the population and model participate: replicate r
// uses the same seed across every placement and scenario. Across
// placements this turns the engine's distribution-invariance guarantee
// into a sweep-level oracle (RR and GP cells of the same scenario must
// aggregate identically); across scenarios it is common random numbers,
// the standard variance-reduction for intervention comparison — each
// scenario is evaluated against the same stream of epidemics, so
// replicate-paired differences isolate the intervention's effect.
func (c Cell) ReplicateSeed(master uint64, replicate int) uint64 {
	seed := xrand.Hash(0x5eed5, master,
		hashString(c.Population.Key(master)),
		hashString(c.Model.Name), hashString(c.Model.Text),
		uint64(replicate))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Cells enumerates the grid in deterministic order: populations outermost
// (so cache-cold population builds cluster), then placements, models,
// scenarios, intervention branches innermost (so the branches sharing a
// fork-point checkpoint cluster too).
func (s *Spec) Cells() []Cell {
	var cells []Cell
	for _, pop := range s.Populations {
		for _, pl := range s.Placements {
			for mi, m := range s.Models {
				for _, sc := range s.Scenarios {
					for ii := range s.Interventions {
						cells = append(cells, Cell{
							Index:        len(cells),
							Population:   pop,
							Placement:    pl,
							Model:        m,
							Scenario:     sc,
							Intervention: &s.Interventions[ii],
							modelIdx:     mi,
						})
					}
					if len(s.Interventions) == 0 {
						cells = append(cells, Cell{
							Index:      len(cells),
							Population: pop,
							Placement:  pl,
							Model:      m,
							Scenario:   sc,
							modelIdx:   mi,
						})
					}
				}
			}
		}
	}
	return cells
}

// hashString folds a string into a 64-bit key (FNV-1a) for xrand.Hash.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields so typos
// in sweep files fail loudly.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("ensemble: parse spec: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode writes the spec as indented JSON.
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
