package ensemble

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/interventions"
	"repro/internal/xrand"
)

// forkFakeHooks extends fakeHooks with a fork trio whose fabricated
// results match Simulate's exactly, so fork-mode and from-scratch runs
// of the same spec must emit byte-identical aggregates with zero real
// simulation work.
type forkFakeHooks struct {
	fakeHooks
	ckBuilds atomic.Int64
	restores atomic.Int64
	resumes  atomic.Int64
}

// fakeResult fabricates a deterministic full-horizon trajectory from the
// job's seed and intervention branch.
func fakeResult(job Job) *core.Result {
	branch := hashString(job.Cell.InterventionName())
	days := make([]core.DayReport, job.Spec.Days)
	var total int64
	for d := range days {
		n := int64(xrand.KeyedIntn(100, job.Seed, branch, uint64(d)))
		days[d] = core.DayReport{Day: d, NewInfections: n}
		total += n
	}
	return &core.Result{Days: days, TotalInfections: total, AttackRate: float64(total) / 10000}
}

func (f *forkFakeHooks) hooks() Hooks {
	h := f.fakeHooks.hooks()
	h.Simulate = func(pl any, job Job) (*core.Result, error) {
		return fakeResult(job), nil
	}
	h.BuildCheckpoint = func(pl any, job Job) (any, error) {
		f.ckBuilds.Add(1)
		return fmt.Sprintf("ck seed=%d day=%d", job.Seed, job.Spec.ForkDay), nil
	}
	h.RestoreCheckpoint = func(pl any, ck any, job Job) (any, error) {
		f.restores.Add(1)
		return ck, nil
	}
	h.ResumeSimulate = func(engine any, job Job) (*core.Result, error) {
		f.resumes.Add(1)
		return fakeResult(job), nil
	}
	return h
}

// forkSpec is a 16-branch intervention sweep over one base cell.
func forkSpec(branches int) *Spec {
	ivs := make([]InterventionSpec, branches)
	for i := range ivs {
		ivs[i] = InterventionSpec{
			Name: fmt.Sprintf("close%d", i),
			Schedule: interventions.Schedule{
				Closures: []interventions.Closure{{LocType: "school", Day: 11, Days: i + 1}},
			},
		}
	}
	return &Spec{
		Populations:   []PopulationSpec{{Name: "a", People: 100, Locations: 10}},
		Placements:    []PlacementSpec{{Strategy: "RR", Ranks: 4}},
		Interventions: ivs,
		ForkDay:       10,
		Replicates:    2,
		Days:          20,
		Seed:          42,
	}
}

// TestForkSweepSharesPrefix pins the whole economics of fork mode: a
// 16-branch intervention sweep builds exactly one checkpoint per
// replicate (singleflight across its branches), resumes every branch
// from it, and steps far fewer total days than 32 from-scratch runs —
// prefix once plus a suffix per branch.
func TestForkSweepSharesPrefix(t *testing.T) {
	f := &forkFakeHooks{}
	spec := forkSpec(16)
	spec.Workers = 8
	res, err := Run(spec, f.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulations != 32 { // 16 branches × 2 replicates
		t.Fatalf("simulations = %d, want 32", res.Simulations)
	}
	if got := f.ckBuilds.Load(); got != 2 {
		t.Fatalf("checkpoint builds = %d, want 2 (one per replicate)", got)
	}
	if got := f.restores.Load(); got != 32 {
		t.Fatalf("restores = %d, want 32", got)
	}
	if got := f.resumes.Load(); got != 32 {
		t.Fatalf("resumes = %d, want 32", got)
	}
	if len(res.CheckpointBuilds) != 2 {
		t.Fatalf("checkpoint keys = %d, want 2", len(res.CheckpointBuilds))
	}
	for key, n := range res.CheckpointBuilds {
		if n != 1 {
			t.Fatalf("checkpoint %q built %d times", key, n)
		}
	}
	// 2 prefixes × 10 days + 32 suffixes × 10 days, against 32 × 20 from
	// scratch.
	scratch := int64(32 * spec.Days)
	want := int64(2*spec.ForkDay + 32*(spec.Days-spec.ForkDay))
	if res.SimulatedDays != want {
		t.Fatalf("simulated days = %d, want %d", res.SimulatedDays, want)
	}
	if res.SimulatedDays >= scratch {
		t.Fatalf("fork mode stepped %d days, not fewer than %d from scratch",
			res.SimulatedDays, scratch)
	}
}

// TestForkFallbackMatchesForkMode: the same intervention spec run
// without the fork trio simulates every branch from scratch — more
// stepped days, zero checkpoints — and still emits byte-identical
// aggregate JSON, because fork mode is an execution strategy, never a
// semantic change.
func TestForkFallbackMatchesForkMode(t *testing.T) {
	forked := &forkFakeHooks{}
	res, err := Run(forkSpec(16), forked.hooks())
	if err != nil {
		t.Fatal(err)
	}

	scratch := &forkFakeHooks{}
	h := scratch.hooks()
	h.BuildCheckpoint, h.RestoreCheckpoint, h.ResumeSimulate = nil, nil, nil
	sres, err := Run(forkSpec(16), h)
	if err != nil {
		t.Fatal(err)
	}

	if got := scratch.ckBuilds.Load(); got != 0 {
		t.Fatalf("fallback built %d checkpoints", got)
	}
	if len(sres.CheckpointBuilds) != 0 {
		t.Fatalf("fallback recorded checkpoint keys: %v", sres.CheckpointBuilds)
	}
	if sres.SimulatedDays != int64(32*20) {
		t.Fatalf("fallback simulated days = %d, want %d", sres.SimulatedDays, 32*20)
	}
	if sres.SimulatedDays <= res.SimulatedDays {
		t.Fatalf("fallback (%d days) should step more than fork mode (%d days)",
			sres.SimulatedDays, res.SimulatedDays)
	}

	var a, b bytes.Buffer
	if err := res.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sres.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("fork-mode and from-scratch aggregates differ")
	}
}

// TestForkDeterministicAcrossWorkerCounts extends the executor's
// byte-identity guarantee to version 2 grids.
func TestForkDeterministicAcrossWorkerCounts(t *testing.T) {
	var outputs []string
	for _, workers := range []int{1, 2, 8} {
		f := &forkFakeHooks{}
		spec := forkSpec(5)
		spec.Workers = workers
		res, err := Run(spec, f.hooks())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatal("fork-mode aggregate JSON differs across worker counts")
	}
}

// TestInterventionSpecValidation pins the version 2 invariants.
func TestInterventionSpecValidation(t *testing.T) {
	base := func() *Spec { return forkSpec(2) }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative fork day", func(s *Spec) { s.ForkDay = -1 }, "negative"},
		{"fork day without axis", func(s *Spec) { s.Interventions = nil }, "without an intervention axis"},
		{"fork day at horizon", func(s *Spec) { s.ForkDay = s.Days }, "before the"},
		{"axis without days", func(s *Spec) { s.Days = 0 }, "explicit days"},
		{"duplicate names", func(s *Spec) { s.Interventions[1].Name = s.Interventions[0].Name }, "duplicate"},
		{"trigger inside prefix", func(s *Spec) {
			s.Interventions[0].Closures[0].Day = s.ForkDay
		}, "after fork day"},
		{"bad fraction", func(s *Spec) {
			s.Interventions[0].Vaccinations = []interventions.Vaccination{{Day: 11, Fraction: 1.5}}
		}, "fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(s)
			s.Normalize()
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	ok := base()
	ok.Normalize()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fork spec rejected: %v", err)
	}
}

// TestSpecVersionAndDecodeCompat pins the one-decode-path contract:
// ParseSpec accepts both wire forms, reports version 1 for the legacy
// grid and version 2 for the intervention axis, and a version 2 spec
// JSON round-trips losslessly.
func TestSpecVersionAndDecodeCompat(t *testing.T) {
	legacy := `{"populations":[{"name":"p","people":100,"locations":10}],
		"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":10}`
	s1, err := ParseSpec(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version() != 1 {
		t.Fatalf("legacy spec version = %d, want 1", s1.Version())
	}
	if n := len(s1.Cells()); n != 1 {
		t.Fatalf("legacy cells = %d, want 1", n)
	}

	v2 := `{"populations":[{"name":"p","people":100,"locations":10}],
		"placements":[{"strategy":"RR","ranks":2}],"replicates":1,"days":10,
		"fork_day":4,"interventions":[
			{"name":"baseline"},
			{"closures":[{"loc_type":"school","day":5,"days":3}],
			 "vaccinations":[{"day":6,"fraction":0.25}],
			 "quarantines":[{"state":"symptomatic","day":5,"days":7}]}]}`
	s2, err := ParseSpec(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version() != 2 {
		t.Fatalf("intervention spec version = %d, want 2", s2.Version())
	}
	cells := s2.Cells()
	if len(cells) != 2 {
		t.Fatalf("v2 cells = %d, want 2 (one per branch)", len(cells))
	}
	if cells[1].InterventionName() != "iv1" {
		t.Fatalf("unnamed branch normalized to %q, want iv1", cells[1].InterventionName())
	}
	if cells[1].Intervention.Compile() == "" {
		t.Fatal("non-empty schedule compiled to nothing")
	}

	var buf bytes.Buffer
	if err := s2.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var reenc bytes.Buffer
	if err := again.Encode(&reenc); err != nil {
		t.Fatal(err)
	}
	if buf.String() != reenc.String() {
		t.Fatalf("v2 round trip changed the spec:\n%s\nvs\n%s", buf.String(), reenc.String())
	}
}

// TestLegacySpecBytesUnchanged: a spec with no intervention axis must
// normalize, encode and aggregate to exactly its historical bytes — no
// interventions, fork_day or intervention keys may appear anywhere.
func TestLegacySpecBytesUnchanged(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	var enc bytes.Buffer
	if err := spec.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"interventions", "fork_day", "intervention"} {
		if strings.Contains(enc.String(), banned) {
			t.Fatalf("legacy spec JSON leaks %q:\n%s", banned, enc.String())
		}
	}

	f := &fakeHooks{}
	res, err := Run(testSpec(), f.hooks())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := res.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `"intervention"`) {
		t.Fatal("legacy sweep result JSON leaks the intervention field")
	}
	if res.SimulatedDays != int64(64*20) {
		t.Fatalf("legacy simulated days = %d, want %d", res.SimulatedDays, 64*20)
	}
}

// TestCheckpointKeySharing: all branches of a (cell, replicate) share
// one checkpoint key; different replicates, scenarios, fork days and
// models do not — and the horizon Days deliberately does not
// participate, so longer re-sweeps reuse warm checkpoints.
func TestCheckpointKeySharing(t *testing.T) {
	spec := forkSpec(3)
	spec.Normalize()
	cells := spec.Cells()
	plKey := cells[0].Placement.Key(cells[0].Population.Key(spec.Seed))
	seed := cells[0].ReplicateSeed(spec.Seed, 0)

	base := cells[0].CheckpointKey(spec, plKey, seed)
	for _, c := range cells[1:] {
		if c.CheckpointKey(spec, plKey, seed) != base {
			t.Fatalf("branch %q does not share the checkpoint key", c.InterventionName())
		}
	}
	if cells[0].CheckpointKey(spec, plKey, cells[0].ReplicateSeed(spec.Seed, 1)) == base {
		t.Fatal("different replicates must not share a checkpoint")
	}
	longer := *spec
	longer.Days = spec.Days * 2
	if cells[0].CheckpointKey(&longer, plKey, seed) != base {
		t.Fatal("a longer horizon must reuse the same checkpoint")
	}
	refork := *spec
	refork.ForkDay = spec.ForkDay + 1
	if cells[0].CheckpointKey(&refork, plKey, seed) == base {
		t.Fatal("a different fork day must not reuse the checkpoint")
	}
	scn := cells[0]
	scn.Scenario.Text = "when day >= 2 { close school for 7 }"
	if scn.CheckpointKey(spec, plKey, seed) == base {
		t.Fatal("a different base scenario must not reuse the checkpoint")
	}
}
