// Package splitloc implements the paper's graph preprocessing contribution
// (Section III-C): splitting heavily-loaded location vertices so that the
// heavy-tailed load distribution no longer bounds achievable balance.
//
// People only interact inside a sublocation, so a location can be split
// into fragments holding exclusive subsets of its sublocations without
// adding any communication — the "divide edges" method of Figure 6(a).
// This both divides the load and divides the degree of the split vertex.
// SplitPopulation applies this transform to a synthetic population; the
// engine then treats fragments as ordinary locations, and the keyed
// randomness (original location id + original sublocation index) makes the
// epidemic bit-identical before and after splitting — the package's
// correctness oracle.
//
// The "retain edges" method of Figure 6(b) (for future inter-sublocation
// mixing) is provided as a graph transform for the partitioning analysis.
package splitloc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/synthpop"
)

// Options controls the split decision.
type Options struct {
	// MaxPartitions is the largest partition count the decomposition
	// should support; the auto threshold guarantees no single location
	// exceeds the average per-partition load at that count. Default 16384.
	MaxPartitions int
	// Threshold overrides the automatic threshold (location weight units:
	// expected visits). 0 = automatic per the paper: determined by the
	// total load, the maximum number of partitions, and the largest
	// sublocation weight.
	Threshold float64
	// TopFraction is the fraction of largest locations (by sublocation
	// count) per type used to estimate the per-type sublocation weight,
	// mirroring "we determine the sublocation weight based on the largest
	// locations from each state". Default 0.01.
	TopFraction float64
}

func (o Options) withDefaults() Options {
	if o.MaxPartitions <= 0 {
		o.MaxPartitions = 16384
	}
	if o.TopFraction <= 0 || o.TopFraction > 1 {
		o.TopFraction = 0.01
	}
	return o
}

// Stats reports what the preprocessing did.
type Stats struct {
	Threshold     float64
	NumSplit      int // locations that were split
	NumFragments  int // fragments they became (> NumSplit)
	LocationsPre  int
	LocationsPost int
	// MaxLocWeightPre/Post are the heaviest location weights (expected
	// visits) before and after: Table II's l_max vs ℓ_max in weight units.
	MaxLocWeightPre  float64
	MaxLocWeightPost float64
	// MaxDegreePre/Post are the heaviest per-location visit counts, the
	// d_max the paper reports shrinking by ~54x on average.
	MaxDegreePre  int32
	MaxDegreePost int32
	// GrowthFrac is (LocationsPost-LocationsPre)/LocationsPre; the paper
	// reports at most 5.25%.
	GrowthFrac float64
}

// SublocationWeights estimates the average number of visits per
// sublocation for each location type, measured on the largest locations of
// that type (Section III-C's platform-independent approximation).
func SublocationWeights(pop *synthpop.Population, topFraction float64) [5]float64 {
	visits := pop.VisitCountsPerLocation()
	type rec struct {
		nsub   int32
		visits int32
	}
	byType := make([][]rec, 5)
	for id, loc := range pop.Locations {
		byType[loc.Type] = append(byType[loc.Type], rec{loc.NumSub, visits[id]})
	}
	var w [5]float64
	for t := range byType {
		recs := byType[t]
		if len(recs) == 0 {
			continue
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].nsub > recs[j].nsub })
		n := int(math.Ceil(topFraction * float64(len(recs))))
		if n < 1 {
			n = 1
		}
		var sumV, sumS int64
		for _, r := range recs[:n] {
			sumV += int64(r.visits)
			sumS += int64(r.nsub)
		}
		if sumS > 0 {
			w[t] = float64(sumV) / float64(sumS)
		}
	}
	return w
}

// LocationWeights returns each location's platform-independent weight (sum
// of its sublocation weights) plus the largest single sublocation weight.
func LocationWeights(pop *synthpop.Population, opt Options) ([]float64, float64) {
	opt = opt.withDefaults()
	subW := SublocationWeights(pop, opt.TopFraction)
	maxSubW := 0.0
	for _, w := range subW {
		if w > maxSubW {
			maxSubW = w
		}
	}
	locW := make([]float64, len(pop.Locations))
	for id, loc := range pop.Locations {
		locW[id] = float64(loc.NumSub) * subW[loc.Type]
	}
	return locW, maxSubW
}

// AutoThreshold computes the paper's split threshold: heavy enough that
// fragments stay useful (never below one sublocation's weight), light
// enough that no location exceeds the average per-partition load at
// MaxPartitions partitions.
func AutoThreshold(locW []float64, maxSubW float64, maxPartitions int) float64 {
	var total float64
	for _, w := range locW {
		total += w
	}
	th := total / float64(maxPartitions)
	if th < maxSubW {
		th = maxSubW
	}
	return th
}

// SplitPopulation applies divide-edges splitting to every location whose
// weight exceeds the threshold, returning a new population (the input is
// not modified) and statistics. Fragment locations receive exclusive,
// contiguous blocks of the original sublocations, as even as possible; the
// first fragment keeps the original location id so that unsplit references
// stay valid, and Person.Home is re-pointed to the fragment containing the
// person's household room.
func SplitPopulation(pop *synthpop.Population, opt Options) (*synthpop.Population, Stats, error) {
	opt = opt.withDefaults()
	locW, maxSubW := LocationWeights(pop, opt)
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = AutoThreshold(locW, maxSubW, opt.MaxPartitions)
	}
	visitsPre := pop.VisitCountsPerLocation()

	st := Stats{
		Threshold:    threshold,
		LocationsPre: len(pop.Locations),
	}
	for id := range pop.Locations {
		if locW[id] > st.MaxLocWeightPre {
			st.MaxLocWeightPre = locW[id]
		}
		if visitsPre[id] > st.MaxDegreePre {
			st.MaxDegreePre = visitsPre[id]
		}
	}

	newLocs := append([]synthpop.Location(nil), pop.Locations...)
	// fragPlan[loc] is nil for unsplit locations, else the list of
	// fragment location ids indexed by block, with block boundaries in
	// fragBounds[loc] (cumulative sublocation starts, len = nFrags+1).
	fragPlan := make(map[int32][]int32)
	fragBounds := make(map[int32][]int32)

	for id := range pop.Locations {
		loc := pop.Locations[id]
		if locW[id] <= threshold || loc.NumSub < 2 {
			continue
		}
		nFrags := int32(math.Ceil(locW[id] / threshold))
		if nFrags > loc.NumSub {
			nFrags = loc.NumSub
		}
		if nFrags < 2 {
			continue
		}
		st.NumSplit++
		st.NumFragments += int(nFrags)
		// Even contiguous blocks of sublocations.
		bounds := make([]int32, nFrags+1)
		for f := int32(0); f <= nFrags; f++ {
			bounds[f] = f * loc.NumSub / nFrags
		}
		ids := make([]int32, nFrags)
		for f := int32(0); f < nFrags; f++ {
			nsub := bounds[f+1] - bounds[f]
			frag := synthpop.Location{
				Type:    loc.Type,
				NumSub:  nsub,
				Weight:  loc.Weight / int32(nFrags),
				Origin:  loc.Origin,
				SubBase: loc.SubBase + bounds[f],
			}
			if f == 0 {
				newLocs[id] = frag
				ids[f] = int32(id)
			} else {
				ids[f] = int32(len(newLocs))
				newLocs = append(newLocs, frag)
			}
		}
		fragPlan[int32(id)] = ids
		fragBounds[int32(id)] = bounds
	}

	out := &synthpop.Population{
		Name:               pop.Name,
		Persons:            append([]synthpop.Person(nil), pop.Persons...),
		Locations:          newLocs,
		Visits:             append([]synthpop.Visit(nil), pop.Visits...),
		PersonVisitOffsets: pop.PersonVisitOffsets,
	}

	// Rewrite visits of split locations.
	for i := range out.Visits {
		v := &out.Visits[i]
		ids, ok := fragPlan[v.Loc]
		if !ok {
			continue
		}
		bounds := fragBounds[v.Loc]
		// Find the block containing v.Sub.
		f := sort.Search(len(bounds)-1, func(f int) bool { return bounds[f+1] > v.Sub })
		if f >= len(ids) {
			return nil, Stats{}, fmt.Errorf("splitloc: sublocation %d beyond blocks of location %d", v.Sub, v.Loc)
		}
		v.Sub -= bounds[f]
		v.Loc = ids[f]
	}

	// Re-point homes of persons whose home was split.
	for p := range out.Persons {
		home := out.Persons[p].Home
		if _, ok := fragPlan[home]; !ok {
			continue
		}
		origin := pop.Locations[home].Origin
		fixed := false
		for _, v := range out.PersonVisits(int32(p)) {
			l := out.Locations[v.Loc]
			if l.Type == synthpop.Home && l.Origin == origin {
				out.Persons[p].Home = v.Loc
				fixed = true
				break
			}
		}
		if !fixed {
			out.Persons[p].Home = fragPlan[home][0]
		}
	}

	st.LocationsPost = len(out.Locations)
	st.GrowthFrac = float64(st.LocationsPost-st.LocationsPre) / float64(st.LocationsPre)
	locWPost, _ := LocationWeights(out, opt)
	// Post weights use the same per-type sublocation weights conceptually;
	// recompute is fine since type weights barely move, but guard with the
	// direct definition for the max.
	for _, w := range locWPost {
		if w > st.MaxLocWeightPost {
			st.MaxLocWeightPost = w
		}
	}
	for _, c := range out.VisitCountsPerLocation() {
		if c > st.MaxDegreePost {
			st.MaxDegreePost = c
		}
	}
	if err := out.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("splitloc: result invalid: %w", err)
	}
	return out, st, nil
}

// SplitLoads returns the load multiset after splitting every load heavier
// than threshold into equal fragments. Both methods of Figure 6 transform
// the load distribution this way (they differ only in edges), so this is
// the transform behind the post-split S_ub analysis (Figures 5(b) and 8)
// when only loads matter.
func SplitLoads(loads []float64, threshold float64) []float64 {
	if threshold <= 0 {
		return append([]float64(nil), loads...)
	}
	out := make([]float64, 0, len(loads))
	for _, l := range loads {
		if l <= threshold {
			out = append(out, l)
			continue
		}
		n := int(math.Ceil(l / threshold))
		frag := l / float64(n)
		for i := 0; i < n; i++ {
			out = append(out, frag)
		}
	}
	return out
}

// DivideEdgesVertex splits vertex v of g into nFrags fragments using the
// divide-edges method of Figure 6(a): the neighbors (and their edges) are
// distributed round-robin across fragments and the vertex weights are
// divided. Fragment 0 keeps id v; others are appended. Used by the Figure
// 6 analysis on small graphs.
func DivideEdgesVertex(g *graph.Graph, v int, nFrags int) *graph.Graph {
	if nFrags < 2 {
		nFrags = 2
	}
	n := g.NumVertices()
	nCon := g.NumConstraints()
	b := graph.NewBuilder(n+nFrags-1, nCon)
	fragID := func(i int) int {
		if i == 0 {
			return v
		}
		return n + i - 1
	}
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		for c := 0; c < nCon; c++ {
			b.SetVertexWeight(u, c, g.VertexWeight(u, c))
		}
	}
	for i := 0; i < nFrags; i++ {
		for c := 0; c < nCon; c++ {
			w := g.VertexWeight(v, c) / int64(nFrags)
			if i == 0 {
				w += g.VertexWeight(v, c) % int64(nFrags)
			}
			b.SetVertexWeight(fragID(i), c, w)
		}
	}
	for u := 0; u < n; u++ {
		nbrs, ws := g.Neighbors(u)
		for j, x := range nbrs {
			if int(x) < u {
				continue
			}
			switch {
			case u == v:
				b.AddEdge(fragID(j%nFrags), int(x), ws[j])
			case int(x) == v:
				b.AddEdge(u, fragID(j%nFrags), ws[j])
			default:
				b.AddEdge(u, int(x), ws[j])
			}
		}
	}
	return b.Build()
}

// RetainEdgesVertex splits vertex v into nFrags fragments that each retain
// the entire neighbor set — the Figure 6(b) method for applications whose
// split work units still need all inputs (future inter-sublocation
// mixing). Load divides; communication does not.
func RetainEdgesVertex(g *graph.Graph, v int, nFrags int) *graph.Graph {
	if nFrags < 2 {
		nFrags = 2
	}
	n := g.NumVertices()
	nCon := g.NumConstraints()
	b := graph.NewBuilder(n+nFrags-1, nCon)
	fragID := func(i int) int {
		if i == 0 {
			return v
		}
		return n + i - 1
	}
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		for c := 0; c < nCon; c++ {
			b.SetVertexWeight(u, c, g.VertexWeight(u, c))
		}
	}
	for i := 0; i < nFrags; i++ {
		for c := 0; c < nCon; c++ {
			w := g.VertexWeight(v, c) / int64(nFrags)
			if i == 0 {
				w += g.VertexWeight(v, c) % int64(nFrags)
			}
			b.SetVertexWeight(fragID(i), c, w)
		}
	}
	for u := 0; u < n; u++ {
		nbrs, ws := g.Neighbors(u)
		for j, x := range nbrs {
			if int(x) < u {
				continue
			}
			if u == v || int(x) == v {
				other := int(x)
				if u != v {
					other = u
				}
				for i := 0; i < nFrags; i++ {
					b.AddEdge(fragID(i), other, ws[j])
				}
			} else {
				b.AddEdge(u, int(x), ws[j])
			}
		}
	}
	return b.Build()
}
