package splitloc

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/synthpop"
)

func genPop(t testing.TB) *synthpop.Population {
	t.Helper()
	pop := synthpop.Generate(synthpop.DefaultConfig("split-test", 20000, 5000, 7))
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestSublocationWeightsPositive(t *testing.T) {
	pop := genPop(t)
	w := SublocationWeights(pop, 0.01)
	for ty, v := range w {
		if v < 0 {
			t.Fatalf("type %d weight %v negative", ty, v)
		}
	}
	// Homes and schools exist in every synthetic population.
	if w[synthpop.Home] == 0 || w[synthpop.School] == 0 {
		t.Fatalf("weights zero for populated types: %v", w)
	}
}

func TestAutoThreshold(t *testing.T) {
	locW := []float64{1, 2, 3, 4, 1000}
	th := AutoThreshold(locW, 5, 10)
	// total=1010, /10 = 101 > maxSubW=5.
	if th != 101 {
		t.Fatalf("threshold = %v, want 101", th)
	}
	th2 := AutoThreshold(locW, 500, 10)
	if th2 != 500 {
		t.Fatalf("threshold = %v, want maxSubW 500", th2)
	}
}

func TestSplitPopulationReducesTail(t *testing.T) {
	pop := genPop(t)
	split, st, err := SplitPopulation(pop, Options{MaxPartitions: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NumSplit == 0 {
		t.Fatal("heavy-tailed population should have splittable locations")
	}
	if st.MaxDegreePost >= st.MaxDegreePre {
		t.Fatalf("d_max did not shrink: %d -> %d", st.MaxDegreePre, st.MaxDegreePost)
	}
	if st.MaxLocWeightPost >= st.MaxLocWeightPre {
		t.Fatalf("l_max did not shrink: %v -> %v", st.MaxLocWeightPre, st.MaxLocWeightPost)
	}
	if st.LocationsPost <= st.LocationsPre {
		t.Fatal("splitting must add locations")
	}
	// The paper reports growth at most 5.25%; generous cap here.
	if st.GrowthFrac > 0.30 {
		t.Fatalf("location growth %v too large", st.GrowthFrac)
	}
}

func TestSplitPreservesVisitMultiset(t *testing.T) {
	pop := genPop(t)
	split, _, err := SplitPopulation(pop, Options{MaxPartitions: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if split.NumVisits() != pop.NumVisits() {
		t.Fatalf("visit count changed: %d -> %d", pop.NumVisits(), split.NumVisits())
	}
	// Each visit must map to the same original (location origin, original
	// sublocation, person, times).
	type key struct {
		origin  int32
		origSub int32
		person  int32
		start   int16
		end     int16
	}
	count := map[key]int{}
	for _, v := range pop.Visits {
		l := pop.Locations[v.Loc]
		count[key{l.Origin, l.SubBase + v.Sub, v.Person, v.Start, v.End}]++
	}
	for _, v := range split.Visits {
		l := split.Locations[v.Loc]
		k := key{l.Origin, l.SubBase + v.Sub, v.Person, v.Start, v.End}
		count[k]--
		if count[k] < 0 {
			t.Fatalf("visit %+v not present in original", k)
		}
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("visit %+v lost in split (count %d)", k, c)
		}
	}
}

func TestSplitFragmentsPartitionSublocations(t *testing.T) {
	pop := genPop(t)
	split, st, err := SplitPopulation(pop, Options{MaxPartitions: 4096})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	// Group fragments by origin: their [SubBase, SubBase+NumSub) ranges
	// must tile the original location's sublocations without overlap.
	frags := map[int32][]synthpop.Location{}
	for _, l := range split.Locations {
		frags[l.Origin] = append(frags[l.Origin], l)
	}
	for origin, ls := range frags {
		orig := pop.Locations[origin]
		var totalSub int32
		covered := make([]bool, orig.NumSub)
		for _, l := range ls {
			totalSub += l.NumSub
			for s := l.SubBase; s < l.SubBase+l.NumSub; s++ {
				if s < 0 || int(s) >= len(covered) {
					t.Fatalf("fragment of %d covers sublocation %d outside [0,%d)", origin, s, orig.NumSub)
				}
				if covered[s] {
					t.Fatalf("fragment of %d double-covers sublocation %d", origin, s)
				}
				covered[s] = true
			}
		}
		if totalSub != orig.NumSub {
			t.Fatalf("origin %d: fragments cover %d sublocations, want %d", origin, totalSub, orig.NumSub)
		}
	}
}

func TestSplitHomesStayValid(t *testing.T) {
	pop := genPop(t)
	split, _, err := SplitPopulation(pop, Options{MaxPartitions: 1 << 20}) // aggressive
	if err != nil {
		t.Fatal(err)
	}
	for p := range split.Persons {
		home := split.Persons[p].Home
		l := split.Locations[home]
		if l.Type != synthpop.Home {
			t.Fatalf("person %d home now points at a %v", p, l.Type)
		}
		if l.Origin != pop.Locations[pop.Persons[p].Home].Origin {
			t.Fatalf("person %d home re-pointed to a different original location", p)
		}
	}
}

func TestSplitIdempotentUnderThreshold(t *testing.T) {
	pop := genPop(t)
	split, st1, err := SplitPopulation(pop, Options{MaxPartitions: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Splitting again with the same threshold must be a no-op: everything
	// is already under it.
	again, st2, err := SplitPopulation(split, Options{Threshold: st1.Threshold})
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumSplit != 0 {
		t.Fatalf("re-split found %d locations to split", st2.NumSplit)
	}
	if again.NumLocations() != split.NumLocations() {
		t.Fatal("re-split changed location count")
	}
}

func TestSplitExplicitThreshold(t *testing.T) {
	pop := genPop(t)
	_, stLoose, err := SplitPopulation(pop, Options{Threshold: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if stLoose.NumSplit != 0 {
		t.Fatal("huge threshold must split nothing")
	}
	_, stTight, err := SplitPopulation(pop, Options{MaxPartitions: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if stTight.NumSplit <= stLoose.NumSplit {
		t.Fatal("tight threshold must split more")
	}
}

func TestSplitLoads(t *testing.T) {
	loads := []float64{1, 2, 10}
	out := SplitLoads(loads, 4)
	// 10 -> 3 fragments of 10/3.
	if len(out) != 5 {
		t.Fatalf("got %d loads, want 5: %v", len(out), out)
	}
	var sum float64
	max := 0.0
	for _, l := range out {
		sum += l
		if l > max {
			max = l
		}
	}
	if math.Abs(sum-13) > 1e-9 {
		t.Fatalf("mass not conserved: %v", sum)
	}
	if max > 4 {
		t.Fatalf("fragment above threshold: %v", max)
	}
	// Degenerate threshold returns a copy.
	same := SplitLoads(loads, 0)
	if len(same) != 3 {
		t.Fatal("threshold<=0 should be identity")
	}
}

// starGraph returns a hub-and-spoke graph: hub 0 with weight hubW, spokes
// weight 1, unit edges.
func starGraph(spokes int, hubW int64) *graph.Graph {
	b := graph.NewBuilder(spokes+1, 1)
	b.SetVertexWeight(0, 0, hubW)
	for v := 1; v <= spokes; v++ {
		b.SetVertexWeight(v, 0, 1)
		b.AddEdge(0, v, 1)
	}
	return b.Build()
}

func TestDivideEdgesVertex(t *testing.T) {
	g := starGraph(8, 8)
	split := DivideEdgesVertex(g, 0, 2)
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if split.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", split.NumVertices())
	}
	// Total edges preserved: each spoke still has exactly one edge.
	if split.NumEdges() != 8 {
		t.Fatalf("edges = %d, want 8", split.NumEdges())
	}
	// Degree of the heaviest fragment halves.
	maxDeg := 0
	for v := 0; v < split.NumVertices(); v++ {
		if d := split.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != 4 {
		t.Fatalf("max degree after divide = %d, want 4", maxDeg)
	}
	// Weight conserved.
	if split.TotalVertexWeight(0) != g.TotalVertexWeight(0) {
		t.Fatal("vertex weight not conserved")
	}
}

func TestRetainEdgesVertex(t *testing.T) {
	g := starGraph(8, 8)
	split := RetainEdgesVertex(g, 0, 2)
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if split.NumVertices() != 10 {
		t.Fatalf("vertices = %d", split.NumVertices())
	}
	// Retain edges: every fragment keeps all 8 neighbors -> 16 edges.
	if split.NumEdges() != 16 {
		t.Fatalf("edges = %d, want 16 (communication not divided)", split.NumEdges())
	}
	// But load is still divided.
	if split.VertexWeight(0, 0) != 4 || split.VertexWeight(9, 0) != 4 {
		t.Fatalf("fragment weights %d/%d, want 4/4",
			split.VertexWeight(0, 0), split.VertexWeight(9, 0))
	}
}

func TestFigure6Contrast(t *testing.T) {
	// The defining contrast of Figure 6: divide-edges reduces both max
	// load and max degree; retain-edges reduces only max load.
	g := starGraph(12, 12)
	div := DivideEdgesVertex(g, 0, 3)
	ret := RetainEdgesVertex(g, 0, 3)
	maxDeg := func(gr *graph.Graph) int {
		m := 0
		for v := 0; v < gr.NumVertices(); v++ {
			if d := gr.Degree(v); d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(div) != 4 {
		t.Fatalf("divide-edges max degree = %d, want 4", maxDeg(div))
	}
	if maxDeg(ret) != 12 {
		t.Fatalf("retain-edges max degree = %d, want 12", maxDeg(ret))
	}
}
