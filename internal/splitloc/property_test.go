package splitloc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// TestSplitLoadsProperties: mass conservation, threshold bound, and
// fragment-count growth under random heavy-tailed load vectors.
func TestSplitLoadsProperties(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed)
		n := 1 + s.Intn(200)
		loads := make([]float64, n)
		var total float64
		for i := range loads {
			loads[i] = s.Pareto(1, 1.3)
			total += loads[i]
		}
		threshold := 1 + s.Float64()*20
		out := SplitLoads(loads, threshold)
		var outTotal, outMax float64
		for _, l := range out {
			outTotal += l
			if l > outMax {
				outMax = l
			}
		}
		if math.Abs(outTotal-total) > 1e-6*total {
			return false
		}
		if outMax > threshold+1e-9 {
			return false
		}
		return len(out) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitPopulationRandomized: the full population transform preserves
// its invariants across random generator configurations.
func TestSplitPopulationRandomized(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw)
		pop := synthpop.Generate(synthpop.DefaultConfig("prop", 1500, 400, seed))
		split, st, err := SplitPopulation(pop, Options{MaxPartitions: 1024})
		if err != nil {
			return false
		}
		if split.Validate() != nil {
			return false
		}
		// Visit multiset size preserved; location count grows by exactly
		// NumFragments - NumSplit.
		if split.NumVisits() != pop.NumVisits() {
			return false
		}
		return split.NumLocations() == pop.NumLocations()+st.NumFragments-st.NumSplit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSublocationWeightsMonotoneInTopFraction: widening the sample of
// largest locations can only average in smaller locations, so the derived
// sublocation weight must not increase dramatically — and never become
// negative or NaN.
func TestSublocationWeightsMonotoneInTopFraction(t *testing.T) {
	pop := synthpop.Generate(synthpop.DefaultConfig("mono", 8000, 2000, 3))
	narrow := SublocationWeights(pop, 0.01)
	wide := SublocationWeights(pop, 1.0)
	for ty := range narrow {
		if math.IsNaN(narrow[ty]) || math.IsNaN(wide[ty]) || narrow[ty] < 0 || wide[ty] < 0 {
			t.Fatalf("type %d weights invalid: %v / %v", ty, narrow[ty], wide[ty])
		}
	}
}
