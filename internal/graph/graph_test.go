package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// buildTriangle returns the triangle graph 0-1-2 with distinct weights.
func buildTriangle() *Graph {
	b := NewBuilder(3, 1)
	b.SetVertexWeight(0, 0, 10)
	b.SetVertexWeight(1, 0, 20)
	b.SetVertexWeight(2, 0, 30)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	b.AddEdge(0, 2, 9)
	return b.Build()
}

func TestBuildTriangle(t *testing.T) {
	g := buildTriangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 2 || g.Degree(2) != 2 {
		t.Fatal("triangle degrees wrong")
	}
	if g.EdgeWeightBetween(0, 1) != 5 || g.EdgeWeightBetween(1, 0) != 5 {
		t.Fatal("edge weight 0-1 wrong")
	}
	if g.EdgeWeightBetween(0, 2) != 9 {
		t.Fatal("edge weight 0-2 wrong")
	}
	if g.TotalEdgeWeight() != 21 {
		t.Fatalf("total edge weight = %d", g.TotalEdgeWeight())
	}
	if g.TotalVertexWeight(0) != 60 {
		t.Fatalf("total vertex weight = %d", g.TotalVertexWeight(0))
	}
}

func TestDuplicateEdgesMerge(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 0, 4)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("want 1 merged edge, got %d", g.NumEdges())
	}
	if g.EdgeWeightBetween(0, 1) != 8 {
		t.Fatalf("merged weight = %d, want 8", g.EdgeWeightBetween(0, 1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddEdge(0, 0, 5)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("self loop not dropped: %d edges", g.NumEdges())
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := NewBuilder(5, 2)
	b.AddEdge(1, 3, 2)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 0 || g.Degree(4) != 0 {
		t.Fatal("isolated vertex has nonzero degree")
	}
	if g.NumConstraints() != 2 {
		t.Fatal("nCon lost")
	}
}

func TestEdgeWeightBetweenAbsent(t *testing.T) {
	g := buildTriangle()
	b := NewBuilder(4, 1)
	b.AddEdge(0, 1, 1)
	g2 := b.Build()
	if g2.EdgeWeightBetween(0, 3) != 0 {
		t.Fatal("absent edge should have weight 0")
	}
	_ = g
}

func TestVertexWeightVector(t *testing.T) {
	b := NewBuilder(2, 3)
	b.SetVertexWeight(1, 0, 1)
	b.SetVertexWeight(1, 1, 2)
	b.AddVertexWeight(1, 2, 3)
	b.AddVertexWeight(1, 2, 4)
	g := b.Build()
	w := g.VertexWeights(1)
	if w[0] != 1 || w[1] != 2 || w[2] != 7 {
		t.Fatalf("weights = %v", w)
	}
	g.SetVertexWeight(1, 0, 9)
	if g.VertexWeight(1, 0) != 9 {
		t.Fatal("SetVertexWeight did not stick")
	}
}

func TestMaxDegree(t *testing.T) {
	b := NewBuilder(5, 1)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()
	if g.MaxDegree() != 4 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

// randomGraph builds a random graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	s := xrand.NewStream(seed)
	b := NewBuilder(n, 2)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, 0, int64(s.Intn(100)+1))
		b.SetVertexWeight(v, 1, int64(s.Intn(100)+1))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(s.Intn(n), s.Intn(n), int64(s.Intn(10)+1))
	}
	return b.Build()
}

func TestRandomGraphsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 50, 200)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSortedProperty(t *testing.T) {
	g := randomGraph(7, 100, 500)
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(v)
		if len(nbrs) != len(ws) {
			t.Fatal("neighbor/weight length mismatch")
		}
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("adjacency of %d not sorted", v)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangle()
	sub, mapping := g.InducedSubgraph([]int32{0, 2})
	if sub.NumVertices() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph: %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if sub.EdgeWeightBetween(0, 1) != 9 {
		t.Fatalf("subgraph edge weight = %d", sub.EdgeWeightBetween(0, 1))
	}
	if mapping[0] != 0 || mapping[1] != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	if sub.VertexWeight(1, 0) != 30 {
		t.Fatal("vertex weight not carried to subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphPreservesTotals(t *testing.T) {
	g := randomGraph(3, 60, 300)
	all := make([]int32, g.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	sub, _ := g.InducedSubgraph(all)
	if sub.NumEdges() != g.NumEdges() {
		t.Fatalf("full induced subgraph lost edges: %d vs %d", sub.NumEdges(), g.NumEdges())
	}
	if sub.TotalEdgeWeight() != g.TotalEdgeWeight() {
		t.Fatal("full induced subgraph changed edge weight")
	}
	if sub.TotalVertexWeight(0) != g.TotalVertexWeight(0) {
		t.Fatal("full induced subgraph changed vertex weight")
	}
}

func TestNewFromCSR(t *testing.T) {
	// Path 0-1-2.
	g := NewFromCSR(1,
		[]int32{0, 1, 3, 4},
		[]int32{1, 0, 2, 1},
		[]int64{1, 1, 1, 1},
		[]int64{1, 1, 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range endpoint")
		}
	}()
	b := NewBuilder(2, 1)
	b.AddEdge(0, 5, 1)
}

func BenchmarkBuild(b *testing.B) {
	s := xrand.NewStream(1)
	n, m := 10000, 60000
	us := make([]int, m)
	vs := make([]int, m)
	for i := 0; i < m; i++ {
		us[i] = s.Intn(n)
		vs[i] = s.Intn(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(n, 2)
		for j := 0; j < m; j++ {
			bl.AddEdge(us[j], vs[j], 1)
		}
		g := bl.Build()
		_ = g
	}
}
