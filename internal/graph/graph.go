// Package graph provides the compressed sparse row (CSR) graph
// representation used throughout the reproduction: the person–location
// bipartite graph of Section II-A, the weighted graphs handed to the
// multilevel partitioner of Section III-B, and the coarse graphs the
// partitioner produces internally.
//
// Vertices carry a *vector* of integer weights (one component per balance
// constraint) because the paper partitions under multi-constraint balance:
// one constraint for the person-phase load and one for the location-phase
// load. Edges carry a single integer weight (communication volume).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted graph in CSR form. Each undirected edge
// {u,v} is stored twice, once in each endpoint's adjacency list. Adjacency
// lists are sorted by neighbor id and contain no duplicates or self loops.
type Graph struct {
	numV int
	nCon int // number of vertex weight components (balance constraints)

	xadj  []int32 // len numV+1; adjacency offsets
	adj   []int32 // neighbor ids
	edgeW []int64 // weight per adjacency entry (symmetric)
	vw    []int64 // vertex weights, len numV*nCon, component-major per vertex
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numV }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// NumConstraints returns the number of vertex weight components.
func (g *Graph) NumConstraints() int { return g.nCon }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.xadj[v+1] - g.xadj[v]) }

// Neighbors returns the neighbor ids and edge weights of v. The returned
// slices alias internal storage and must not be modified.
func (g *Graph) Neighbors(v int) ([]int32, []int64) {
	lo, hi := g.xadj[v], g.xadj[v+1]
	return g.adj[lo:hi], g.edgeW[lo:hi]
}

// VertexWeight returns component c of v's weight vector.
func (g *Graph) VertexWeight(v, c int) int64 { return g.vw[v*g.nCon+c] }

// VertexWeights returns v's full weight vector (aliases internal storage).
func (g *Graph) VertexWeights(v int) []int64 {
	return g.vw[v*g.nCon : (v+1)*g.nCon]
}

// SetVertexWeight sets component c of v's weight vector.
func (g *Graph) SetVertexWeight(v, c int, w int64) { g.vw[v*g.nCon+c] = w }

// TotalVertexWeight returns the sum of component c over all vertices.
func (g *Graph) TotalVertexWeight(c int) int64 {
	var sum int64
	for v := 0; v < g.numV; v++ {
		sum += g.vw[v*g.nCon+c]
	}
	return sum
}

// TotalEdgeWeight returns the sum of weights over undirected edges.
func (g *Graph) TotalEdgeWeight() int64 {
	var sum int64
	for _, w := range g.edgeW {
		sum += w
	}
	return sum / 2
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.numV; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// EdgeWeightBetween returns the weight of edge {u,v}, or 0 if absent.
// Lookup is O(log deg(u)).
func (g *Graph) EdgeWeightBetween(u, v int) int64 {
	lo, hi := int(g.xadj[u]), int(g.xadj[u+1])
	idx := sort.Search(hi-lo, func(i int) bool { return g.adj[lo+i] >= int32(v) })
	if idx < hi-lo && g.adj[lo+idx] == int32(v) {
		return g.edgeW[lo+idx]
	}
	return 0
}

// Validate checks structural invariants: monotone offsets, sorted
// duplicate-free adjacency, no self loops, and symmetry of both adjacency
// and edge weights. It is used by property tests and after construction of
// derived graphs.
func (g *Graph) Validate() error {
	if len(g.xadj) != g.numV+1 {
		return fmt.Errorf("graph: xadj length %d, want %d", len(g.xadj), g.numV+1)
	}
	if g.xadj[0] != 0 || int(g.xadj[g.numV]) != len(g.adj) {
		return fmt.Errorf("graph: xadj endpoints invalid")
	}
	if len(g.edgeW) != len(g.adj) {
		return fmt.Errorf("graph: edgeW length mismatch")
	}
	if len(g.vw) != g.numV*g.nCon {
		return fmt.Errorf("graph: vertex weight length %d, want %d", len(g.vw), g.numV*g.nCon)
	}
	for v := 0; v < g.numV; v++ {
		if g.xadj[v] > g.xadj[v+1] {
			return fmt.Errorf("graph: xadj not monotone at %d", v)
		}
		nbrs, ws := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if u < 0 || int(u) >= g.numV {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if w := g.EdgeWeightBetween(int(u), v); w != ws[i] {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}: %d vs %d", v, u, ws[i], w)
			}
		}
	}
	return nil
}

// Builder accumulates edges and vertex weights, then produces a Graph.
// Duplicate edges are merged by summing weights; self loops are dropped.
type Builder struct {
	numV int
	nCon int
	vw   []int64
	us   []int32
	vs   []int32
	ws   []int64
}

// NewBuilder creates a builder for numV vertices with nCon weight
// components per vertex (all initially zero).
func NewBuilder(numV, nCon int) *Builder {
	if numV < 0 || nCon < 1 {
		panic("graph: NewBuilder requires numV >= 0 and nCon >= 1")
	}
	return &Builder{
		numV: numV,
		nCon: nCon,
		vw:   make([]int64, numV*nCon),
	}
}

// SetVertexWeight sets component c of v's weight vector.
func (b *Builder) SetVertexWeight(v, c int, w int64) { b.vw[v*b.nCon+c] = w }

// AddVertexWeight adds w to component c of v's weight vector.
func (b *Builder) AddVertexWeight(v, c int, w int64) { b.vw[v*b.nCon+c] += w }

// AddEdge records an undirected edge {u,v} with weight w. Repeated calls
// with the same endpoints accumulate weight. Self loops are ignored.
func (b *Builder) AddEdge(u, v int, w int64) {
	if u == v {
		return
	}
	if u < 0 || u >= b.numV || v < 0 || v >= b.numV {
		panic(fmt.Sprintf("graph: AddEdge endpoint out of range: {%d,%d} with numV=%d", u, v, b.numV))
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
}

// Build constructs the CSR graph. The builder can be reused afterwards,
// but edges already added remain.
func (b *Builder) Build() *Graph {
	n := b.numV
	// Count directed entries (each undirected edge appears twice), merging
	// duplicates via per-vertex sort afterwards.
	deg := make([]int32, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	xadj := make([]int32, n+1)
	for v := 0; v < n; v++ {
		xadj[v+1] = xadj[v] + deg[v+1]
	}
	adj := make([]int32, xadj[n])
	ew := make([]int64, xadj[n])
	cursor := make([]int32, n)
	copy(cursor, xadj[:n])
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		adj[cursor[u]] = v
		ew[cursor[u]] = w
		cursor[u]++
		adj[cursor[v]] = u
		ew[cursor[v]] = w
		cursor[v]++
	}
	// Sort each adjacency list and merge duplicate neighbors.
	outAdj := adj[:0]
	outW := ew[:0]
	newXadj := make([]int32, n+1)
	for v := 0; v < n; v++ {
		lo, hi := xadj[v], xadj[v+1]
		seg := adjSegment{ids: adj[lo:hi], ws: ew[lo:hi]}
		sort.Sort(seg)
		start := len(outAdj)
		for i := 0; i < len(seg.ids); {
			id := seg.ids[i]
			var w int64
			for i < len(seg.ids) && seg.ids[i] == id {
				w += seg.ws[i]
				i++
			}
			outAdj = append(outAdj, id)
			outW = append(outW, w)
		}
		_ = start
		newXadj[v+1] = int32(len(outAdj))
	}
	g := &Graph{
		numV:  n,
		nCon:  b.nCon,
		xadj:  newXadj,
		adj:   append([]int32(nil), outAdj...),
		edgeW: append([]int64(nil), outW...),
		vw:    append([]int64(nil), b.vw...),
	}
	return g
}

type adjSegment struct {
	ids []int32
	ws  []int64
}

func (s adjSegment) Len() int           { return len(s.ids) }
func (s adjSegment) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s adjSegment) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// NewFromCSR constructs a Graph directly from CSR arrays. The arrays are
// taken over by the graph (not copied). Intended for the partitioner's
// coarsening step, which builds CSR natively; Validate is the caller's
// responsibility in tests.
func NewFromCSR(nCon int, xadj []int32, adj []int32, edgeW []int64, vw []int64) *Graph {
	numV := len(xadj) - 1
	return &Graph{numV: numV, nCon: nCon, xadj: xadj, adj: adj, edgeW: edgeW, vw: vw}
}

// InducedSubgraph extracts the subgraph induced by the given vertices
// (which must be distinct). It returns the subgraph and the mapping from
// new vertex ids to the original ids. Used by recursive bisection.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	toNew := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		toNew[v] = int32(i)
	}
	b := NewBuilder(len(vertices), g.nCon)
	for i, v := range vertices {
		copy(b.vw[i*g.nCon:(i+1)*g.nCon], g.VertexWeights(int(v)))
		nbrs, ws := g.Neighbors(int(v))
		for j, u := range nbrs {
			nu, ok := toNew[u]
			if !ok {
				continue
			}
			if int32(i) < nu { // add each undirected edge once
				b.AddEdge(i, int(nu), ws[j])
			}
		}
	}
	sub := b.Build()
	mapping := append([]int32(nil), vertices...)
	return sub, mapping
}
