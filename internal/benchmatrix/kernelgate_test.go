package benchmatrix

import (
	"strings"
	"testing"

	"repro/internal/ensemble"
)

// gateCell builds one kernel-axis cell report the way a real run would.
func gateCell(kernel string, seeding int, wall float64) CellReport {
	c := CellConfig{
		Population: ensemble.PopulationSpec{Name: "bench-town-2000", People: 2000, Locations: 200},
		Strategy:   StrategyAxis{Strategy: "RR"},
		Ranks:      4,
		Scenarios:  1,
		CacheState: CacheWarm,
		Kernel:     kernel,
		Seeding:    seeding,
	}
	return CellReport{
		ID:                c.ID(),
		Kernel:            kernel,
		InitialInfections: seeding,
		WallSeconds:       wall,
	}
}

func gateReport(cells ...CellReport) *Report {
	return &Report{SchemaVersion: SchemaVersion, Name: "kernels", Cells: cells}
}

func TestKernelGatePasses(t *testing.T) {
	rep := gateReport(
		gateCell("", 1, 3.0),
		gateCell("auto", 1, 1.0), // 3x at the sparse end
		gateCell("", 600, 2.0),
		gateCell("auto", 600, 2.1), // +5% at the dense end, inside the band
	)
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("gate failed: %+v %v", res.Pairs, res.Problems)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	low := res.Pairs[0]
	if low.Seeding != 1 || !low.GateSpeedup || low.Speedup < 2.9 {
		t.Fatalf("low-seeding pair %+v", low)
	}
	if high := res.Pairs[1]; high.GateSpeedup {
		t.Fatalf("high-seeding pair must not carry the speedup requirement: %+v", high)
	}
}

func TestKernelGateFailsOnMissedSpeedup(t *testing.T) {
	rep := gateReport(
		gateCell("", 1, 1.5),
		gateCell("auto", 1, 1.0), // only 1.5x where 2x is required
	)
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("1.5x speedup passed a 2x gate")
	}
	if p := res.Pairs[0]; p.OK || !strings.Contains(p.Reason, "speedup") {
		t.Fatalf("pair %+v", p)
	}
}

func TestKernelGateFailsOutsideBand(t *testing.T) {
	rep := gateReport(
		gateCell("", 1, 3.0),
		gateCell("auto", 1, 1.0),
		gateCell("", 600, 2.0),
		gateCell("auto", 600, 2.5), // 25% slower, band is 15%
	)
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("auto 25% slower than dense passed a ±15% band")
	}
	if p := res.Pairs[1]; p.OK || !strings.Contains(p.Reason, "slower") {
		t.Fatalf("pair %+v", p)
	}
}

func TestKernelGateBrokenAndUnpairedCells(t *testing.T) {
	broken := gateCell("", 1, 3.0)
	broken.TimedOut = true
	rep := gateReport(broken, gateCell("auto", 1, 1.0))
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || len(res.Problems) != 1 {
		t.Fatalf("timed-out dense cell did not fail the gate: %+v", res)
	}

	rep = gateReport(gateCell("auto", 1, 1.0)) // no dense counterpart
	res, err = KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || !strings.Contains(res.Problems[0], "no dense counterpart") {
		t.Fatalf("unpaired auto cell did not fail the gate: %+v", res)
	}
}

func TestKernelGateExplicitDenseKernelPairs(t *testing.T) {
	// A spec using "dense" explicitly (|k=dense segment) must pair with
	// auto the same as the default kernel does.
	rep := gateReport(
		gateCell("dense", 1, 3.0),
		gateCell("auto", 1, 1.0),
	)
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() || len(res.Pairs) != 1 {
		t.Fatalf("explicit dense kernel did not pair: %+v", res)
	}
}

func TestKernelGateNoPairsIsAnError(t *testing.T) {
	rep := gateReport(gateCell("", 1, 3.0)) // dense only: nothing to gate
	if _, err := KernelGate(rep, 2.0, 0.15); err == nil {
		t.Fatal("report with no kernel pairs accepted")
	}
	if _, err := KernelGate(gateReport(), 0.5, 0.15); err == nil {
		t.Fatal("min speedup < 1 accepted")
	}
	if _, err := KernelGate(gateReport(), 2.0, 1.5); err == nil {
		t.Fatal("band ≥ 1 accepted")
	}
}

func TestKernelGateTableRendering(t *testing.T) {
	rep := gateReport(
		gateCell("", 1, 3.0),
		gateCell("auto", 1, 1.0),
	)
	res, err := KernelGate(rep, 2.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"speedup", "3.00x", "1 pairs, 0 failed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
