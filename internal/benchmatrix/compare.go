package benchmatrix

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Outcome classifies one cell's old→new delta.
type Outcome string

const (
	// OutcomeOK: within the noise band.
	OutcomeOK Outcome = "ok"
	// OutcomeRegression: slower (or newly broken) beyond the noise band
	// — gates.
	OutcomeRegression Outcome = "regression"
	// OutcomeImprovement: faster beyond the noise band.
	OutcomeImprovement Outcome = "improvement"
	// OutcomeMissing: the cell vanished from the new report — coverage
	// regressed, so it gates too.
	OutcomeMissing Outcome = "missing"
	// OutcomeNew: a cell only the new report has; informational.
	OutcomeNew Outcome = "new"
	// OutcomeIncomparable: the OLD measurement was broken (error or
	// timeout), so there is no trustworthy baseline to gate against.
	OutcomeIncomparable Outcome = "incomparable"
)

// CellDelta is one compared cell.
type CellDelta struct {
	ID      string
	Outcome Outcome
	// Reason says what decided the outcome ("wall", "peak_rss",
	// "timed out", ...).
	Reason                         string
	OldWall, NewWall, WallDeltaPct float64
	OldRSS, NewRSS                 int64
	RSSDeltaPct                    float64
}

// CompareResult is a full report diff.
type CompareResult struct {
	Noise    float64 // wall-clock noise band, fractional (0.15 = ±15%)
	RSSNoise float64 // peak-RSS band; 0 disables RSS gating
	Deltas   []CellDelta
	Notes    []string

	Regressions, Improvements, Missing, New, Incomparable int
}

// Failed reports whether the gate should trip: any regression, or any
// matrix cell that silently disappeared.
func (c *CompareResult) Failed() bool {
	return c.Regressions > 0 || c.Missing > 0
}

// ParseNoise accepts "15%" or "0.15" and returns the fractional band.
func ParseNoise(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("benchmatrix: bad noise band %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("benchmatrix: noise band %q outside [0%%, 100%%)", s)
	}
	return v, nil
}

// Compare diffs two reports cell by cell inside the noise bands. Cells
// match by ID; old cells absent from the new report count as Missing
// (the gate fails — a shrunken matrix must be an explicit spec change,
// never an accident), new-only cells are informational. A cell whose
// old measurement was broken is incomparable; a cell newly broken is a
// regression regardless of band. Identical reports always pass.
func Compare(oldR, newR *Report, noise, rssNoise float64) (*CompareResult, error) {
	if oldR.Name != newR.Name {
		return nil, fmt.Errorf("benchmatrix: comparing different matrices (%q vs %q)", oldR.Name, newR.Name)
	}
	res := &CompareResult{Noise: noise, RSSNoise: rssNoise}
	if oldR.GoVersion != newR.GoVersion || oldR.GOOS != newR.GOOS ||
		oldR.GOARCH != newR.GOARCH || oldR.NumCPU != newR.NumCPU {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"environment changed (%s %s/%s %dcpu -> %s %s/%s %dcpu); deltas may be machine noise",
			oldR.GoVersion, oldR.GOOS, oldR.GOARCH, oldR.NumCPU,
			newR.GoVersion, newR.GOOS, newR.GOARCH, newR.NumCPU))
	}

	newByID := make(map[string]*CellReport, len(newR.Cells))
	for i := range newR.Cells {
		newByID[newR.Cells[i].ID] = &newR.Cells[i]
	}
	matched := make(map[string]bool, len(oldR.Cells))

	for i := range oldR.Cells {
		oc := &oldR.Cells[i]
		d := CellDelta{ID: oc.ID, OldWall: oc.WallSeconds, OldRSS: oc.PeakRSSBytes}
		nc, ok := newByID[oc.ID]
		if !ok {
			d.Outcome, d.Reason = OutcomeMissing, "cell absent from new report"
			res.Missing++
			res.Deltas = append(res.Deltas, d)
			continue
		}
		matched[oc.ID] = true
		d.NewWall, d.NewRSS = nc.WallSeconds, nc.PeakRSSBytes
		if oc.WallSeconds > 0 {
			d.WallDeltaPct = 100 * (nc.WallSeconds - oc.WallSeconds) / oc.WallSeconds
		}
		if oc.PeakRSSBytes > 0 {
			d.RSSDeltaPct = 100 * float64(nc.PeakRSSBytes-oc.PeakRSSBytes) / float64(oc.PeakRSSBytes)
		}

		switch {
		case oc.Error != "" || oc.TimedOut:
			d.Outcome, d.Reason = OutcomeIncomparable, "old measurement broken"
			res.Incomparable++
		case nc.TimedOut:
			d.Outcome, d.Reason = OutcomeRegression, "timed out"
			res.Regressions++
		case nc.Error != "":
			d.Outcome, d.Reason = OutcomeRegression, "errored: "+nc.Error
			res.Regressions++
		case oc.WallSeconds > 0 && nc.WallSeconds > oc.WallSeconds*(1+noise):
			d.Outcome, d.Reason = OutcomeRegression, "wall"
			res.Regressions++
		case rssNoise > 0 && oc.RSSSource == nc.RSSSource && oc.PeakRSSBytes > 0 &&
			float64(nc.PeakRSSBytes) > float64(oc.PeakRSSBytes)*(1+rssNoise):
			d.Outcome, d.Reason = OutcomeRegression, "peak_rss"
			res.Regressions++
		case oc.WallSeconds > 0 && nc.WallSeconds < oc.WallSeconds*(1-noise):
			d.Outcome, d.Reason = OutcomeImprovement, "wall"
			res.Improvements++
		default:
			d.Outcome = OutcomeOK
		}
		if rssNoise > 0 && oc.RSSSource != nc.RSSSource {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: RSS sources differ (%s vs %s); RSS not gated", oc.ID, oc.RSSSource, nc.RSSSource))
		}
		res.Deltas = append(res.Deltas, d)
	}
	for i := range newR.Cells {
		nc := &newR.Cells[i]
		if matched[nc.ID] {
			continue
		}
		res.New++
		res.Deltas = append(res.Deltas, CellDelta{
			ID: nc.ID, Outcome: OutcomeNew, Reason: "cell new in this report",
			NewWall: nc.WallSeconds, NewRSS: nc.PeakRSSBytes,
		})
	}
	return res, nil
}

// WriteTable renders the per-cell delta table plus a verdict summary.
func (c *CompareResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-48s %10s %10s %8s %8s  %s\n",
		"cell", "old (s)", "new (s)", "wall Δ", "rss Δ", "verdict")
	for _, d := range c.Deltas {
		wallOld, wallNew := fmtSecs(d.OldWall), fmtSecs(d.NewWall)
		verdict := string(d.Outcome)
		if d.Reason != "" && d.Outcome != OutcomeOK {
			verdict += " (" + d.Reason + ")"
		}
		switch d.Outcome {
		case OutcomeMissing:
			wallNew = "-"
		case OutcomeNew:
			wallOld = "-"
		}
		fmt.Fprintf(w, "%-48s %10s %10s %8s %8s  %s\n",
			d.ID, wallOld, wallNew, fmtPct(d.WallDeltaPct, d.Outcome), fmtPct(d.RSSDeltaPct, d.Outcome), verdict)
	}
	for _, n := range c.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintf(w, "summary: %d regressed, %d improved, %d within ±%.0f%%, %d missing, %d new, %d incomparable\n",
		c.Regressions, c.Improvements,
		len(c.Deltas)-c.Regressions-c.Improvements-c.Missing-c.New-c.Incomparable,
		100*c.Noise, c.Missing, c.New, c.Incomparable)
}

func fmtSecs(v float64) string {
	if v == 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

func fmtPct(v float64, o Outcome) string {
	if o == OutcomeMissing || o == OutcomeNew {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v)
}
