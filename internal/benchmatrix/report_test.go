package benchmatrix

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fully-populated report with fixed fake measurements;
// the golden file freezes the BENCH_matrix.json schema so an accidental
// field rename (which would orphan archived baselines) fails a test
// instead of a future compare run.
func goldenReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Name:          "matrix",
		Commit:        "0123456789abcdef",
		TimestampUTC:  "2026-01-02T03:04:05Z",
		GoVersion:     "go1.22.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        16,
		Cells: []CellReport{
			{
				ID:         "bench-town-800|RR x2|scen=1|cold",
				Population: "bench-town-800",
				People:     800,
				Locations:  80,
				Strategy:   "RR",
				Ranks:      2,
				Scenarios:  1,
				CacheState: CacheCold,
				Replicates: 2,
				Days:       6,

				WallSeconds:  1.234,
				Simulations:  2,
				PeakRSSBytes: 104857600,
				RSSSource:    obs.MemSourceProc,
				RSSSamples:   120,
				AllocBytes:   52428800,
				Allocs:       90000,
				Components: map[string]obs.StageTotal{
					"population_build": {Count: 1, Seconds: 0.2},
					"placement_build":  {Count: 1, Seconds: 0.4},
					"sim":              {Count: 2, Seconds: 0.5},
					"aggregate":        {Count: 1, Seconds: 0.01},
				},
			},
			{
				ID:         "bench-town-800|GP-splitLoc x2|scen=1|warm",
				Population: "bench-town-800",
				People:     800,
				Locations:  80,
				Strategy:   "GP",
				SplitLoc:   true,
				Ranks:      2,
				Scenarios:  1,
				CacheState: CacheWarm,
				Replicates: 2,
				Days:       6,

				WallSeconds:  0.456,
				TimedOut:     true,
				Error:        "pre-warm pass timed out",
				Simulations:  0,
				PeakRSSBytes: 94371840,
				RSSSource:    obs.MemSourceGoHeap,
				RSSSamples:   45,
				Components:   map[string]obs.StageTotal{},
			},
		},
	}
}

func TestReportGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "BENCH_matrix.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("BENCH_matrix.json schema drifted from golden — if intentional, bump SchemaVersion and run go test -run Golden -update\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Spot-check the contract keys named by the acceptance criteria.
	for _, key := range []string{`"schema_version"`, `"wall_seconds"`, `"peak_rss_bytes"`, `"components"`, `"cache_state"`} {
		if !bytes.Contains(want, []byte(key)) {
			t.Fatalf("golden missing key %s", key)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := goldenReport()
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(orig)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip drift:\n%s\n%s", a, b)
	}
}

func TestReadReportRefusesSchemaMismatch(t *testing.T) {
	r := goldenReport()
	r.SchemaVersion = SchemaVersion + 1
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadReport(&buf)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future-schema report accepted: %v", err)
	}
}
