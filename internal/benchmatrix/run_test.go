package benchmatrix

import (
	"context"
	"strings"
	"testing"
	"time"

	episim "repro"
	"repro/internal/ensemble"
)

// stubSpec is a 1×1×1×1 matrix with cold+warm: two cells.
func stubSpec(timeout time.Duration) *Spec {
	return &Spec{
		Name:        "stub",
		Populations: []ensemble.PopulationSpec{{Name: "tiny", People: 50, Locations: 5}},
		Strategies:  []StrategyAxis{{Strategy: "RR"}},
		Ranks:       []int{2},
		CacheStates: []string{CacheCold, CacheWarm},
		Replicates:  1,
		Days:        2,
		CellTimeout: Duration(timeout),
	}
}

func TestRunStubbedMatrix(t *testing.T) {
	var runs, warms int
	opts := &RunnerOptions{
		Run: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepResult, error) {
			runs++
			if o.Cache == nil {
				t.Error("cell ran without a private cache")
			}
			if o.Trace != nil {
				now := time.Now()
				o.Trace.Add("sim", "", now.Add(-10*time.Millisecond), now)
			}
			return &episim.SweepResult{Simulations: 3}, nil
		},
		Warm: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepWarmResult, error) {
			warms++
			return &episim.SweepWarmResult{}, nil
		},
	}
	spec := stubSpec(time.Second)
	rep, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 || warms != 1 {
		t.Fatalf("runs=%d warms=%d, want 2 timed runs and 1 warm pass", runs, warms)
	}
	if rep.Failed() {
		t.Fatalf("stub matrix failed: %+v", rep.Cells)
	}
	norm := *spec
	norm.Normalize()
	cells := norm.Cells()
	if len(rep.Cells) != len(cells) {
		t.Fatalf("reported %d cells, spec has %d", len(rep.Cells), len(cells))
	}
	for i, cr := range rep.Cells {
		if cr.ID != cells[i].ID() {
			t.Fatalf("cell %d id %q, spec order says %q", i, cr.ID, cells[i].ID())
		}
		if cr.WallSeconds <= 0 {
			t.Fatalf("cell %s wall %v", cr.ID, cr.WallSeconds)
		}
		if cr.Simulations != 3 {
			t.Fatalf("cell %s simulations %d", cr.ID, cr.Simulations)
		}
		if st, ok := cr.Components["sim"]; !ok || st.Count != 1 || st.Seconds <= 0 {
			t.Fatalf("cell %s components %+v missing sim span", cr.ID, cr.Components)
		}
		if cr.PeakRSSBytes <= 0 || cr.RSSSource == "" {
			t.Fatalf("cell %s peak %d source %q", cr.ID, cr.PeakRSSBytes, cr.RSSSource)
		}
	}
}

func TestRunCellTimeout(t *testing.T) {
	opts := &RunnerOptions{
		Run: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepResult, error) {
			<-ctx.Done() // deliberately slow cell: never finishes on its own
			return nil, ctx.Err()
		},
		Warm: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepWarmResult, error) {
			return &episim.SweepWarmResult{}, nil
		},
	}
	spec := stubSpec(50 * time.Millisecond)
	spec.CacheStates = []string{CacheCold}
	rep, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("got %d cells", len(rep.Cells))
	}
	cr := rep.Cells[0]
	if !cr.TimedOut {
		t.Fatalf("slow cell not marked timed out: %+v", cr)
	}
	if cr.WallSeconds < 0.045 {
		t.Fatalf("timed-out cell wall %.3fs, want ≈ the 50ms budget", cr.WallSeconds)
	}
	if !rep.Failed() {
		t.Fatal("report with a timed-out cell must fail")
	}
}

func TestRunParentCancelStopsMatrix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := &RunnerOptions{
		Run: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepResult, error) {
			cancel() // parent dies mid-cell
			return nil, ctx.Err()
		},
		Warm: func(ctx context.Context, sw *episim.SweepSpec, o *episim.SweepOptions) (*episim.SweepWarmResult, error) {
			return &episim.SweepWarmResult{}, nil
		},
	}
	if _, err := Run(ctx, stubSpec(time.Second), opts); err == nil {
		t.Fatal("canceled parent context did not abort the matrix")
	}
}

// TestRunRealEngineTiny drives one minuscule cold/warm pair through the
// real sweep engine end to end: the measurements the artifact promises
// (wall, peak RSS, span-derived components) must all be present.
func TestRunRealEngineTiny(t *testing.T) {
	spec := &Spec{
		Name:        "tiny-real",
		Populations: []ensemble.PopulationSpec{{Name: "micro-town", People: 60, Locations: 6}},
		Strategies:  []StrategyAxis{{Strategy: "RR"}},
		Ranks:       []int{2},
		CacheStates: []string{CacheCold, CacheWarm},
		Replicates:  1,
		Days:        2,
		CellTimeout: Duration(60 * time.Second),
	}
	rep, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("tiny real matrix failed: %+v", rep.Cells)
	}
	for _, cr := range rep.Cells {
		if cr.WallSeconds <= 0 || cr.PeakRSSBytes <= 0 || cr.Simulations != 1 {
			t.Fatalf("cell %s measurements incomplete: %+v", cr.ID, cr)
		}
		if _, ok := cr.Components["sim"]; !ok {
			t.Fatalf("cell %s has no sim component: %+v", cr.ID, cr.Components)
		}
	}
	// The cold cell pays placement_build on the clock; the warm cell's
	// timed run hits its pre-warmed private cache, so no build span may
	// appear (instantaneous memory hits are deliberately not traced).
	cold, warm := rep.Cells[0], rep.Cells[1]
	if !strings.HasSuffix(cold.ID, "|"+CacheCold) || !strings.HasSuffix(warm.ID, "|"+CacheWarm) {
		t.Fatalf("unexpected cell order: %s, %s", cold.ID, warm.ID)
	}
	if _, ok := cold.Components["placement_build"]; !ok {
		t.Fatalf("cold cell missing placement_build: %+v", cold.Components)
	}
	if _, ok := warm.Components["placement_build"]; ok {
		t.Fatalf("warm cell rebuilt its placement on the clock: %+v", warm.Components)
	}
}
