package benchmatrix

import (
	"strings"
	"testing"
)

func twoCellReport(wallA, wallB float64) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Name:          "matrix",
		GoVersion:     "go1.22",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        8,
		Cells: []CellReport{
			{ID: "a|RR x2|scen=1|cold", WallSeconds: wallA, PeakRSSBytes: 100 << 20, RSSSource: "proc_statm", Simulations: 4},
			{ID: "a|RR x2|scen=1|warm", WallSeconds: wallB, PeakRSSBytes: 90 << 20, RSSSource: "proc_statm", Simulations: 4},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	res, err := Compare(old, twoCellReport(1.0, 0.5), 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("identical reports failed the gate: %+v", res)
	}
	for _, d := range res.Deltas {
		if d.Outcome != OutcomeOK {
			t.Fatalf("identical cell %s -> %s", d.ID, d.Outcome)
		}
	}
}

func TestCompareRegressionBeyondNoise(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	// +20% on cell A with a 15% band: regression. Cell B within band.
	res, err := Compare(old, twoCellReport(1.2, 0.55), 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Regressions != 1 {
		t.Fatalf("want 1 regression, got %+v", res)
	}
	if res.Deltas[0].Outcome != OutcomeRegression || res.Deltas[0].Reason != "wall" {
		t.Fatalf("delta = %+v", res.Deltas[0])
	}
	if res.Deltas[1].Outcome != OutcomeOK {
		t.Fatalf("within-noise cell classified %s", res.Deltas[1].Outcome)
	}
}

func TestCompareImprovementWithinAndBeyondNoise(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	// -30% on A: improvement. -10% on B: within the 15% band.
	res, err := Compare(old, twoCellReport(0.7, 0.45), 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("improvements must not fail the gate: %+v", res)
	}
	if res.Improvements != 1 || res.Deltas[0].Outcome != OutcomeImprovement {
		t.Fatalf("want 1 improvement, got %+v", res)
	}
	if res.Deltas[1].Outcome != OutcomeOK {
		t.Fatalf("within-noise improvement classified %s", res.Deltas[1].Outcome)
	}
}

func TestCompareMissingCellFails(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	newR := twoCellReport(1.0, 0.5)
	newR.Cells = newR.Cells[:1] // warm cell vanished
	res, err := Compare(old, newR, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Missing != 1 {
		t.Fatalf("missing cell did not gate: %+v", res)
	}
	// And the reverse: an extra new cell is informational only.
	res2, err := Compare(newR, old, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed() || res2.New != 1 {
		t.Fatalf("new cell misclassified: %+v", res2)
	}
}

func TestCompareBrokenCells(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	timedOut := twoCellReport(1.0, 0.5)
	timedOut.Cells[0].TimedOut = true
	// Newly timed out: regression regardless of wall numbers.
	res, err := Compare(old, timedOut, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Deltas[0].Outcome != OutcomeRegression {
		t.Fatalf("timeout not gated: %+v", res.Deltas[0])
	}
	// Broken baseline: incomparable, not a pass/fail signal.
	res2, err := Compare(timedOut, old, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed() || res2.Incomparable != 1 {
		t.Fatalf("broken baseline misclassified: %+v", res2)
	}
}

func TestCompareRSSGate(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	bloated := twoCellReport(1.0, 0.5)
	bloated.Cells[0].PeakRSSBytes = 200 << 20 // 2x
	// RSS gating off by default band 0.
	res, err := Compare(old, bloated, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatal("rss gated with band disabled")
	}
	// Enabled: 2x beyond a 30% band fails with reason peak_rss.
	res, err = Compare(old, bloated, 0.15, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Deltas[0].Reason != "peak_rss" {
		t.Fatalf("rss regression not gated: %+v", res.Deltas[0])
	}
	// Differing sources: never gated, noted instead.
	bloated.Cells[0].RSSSource = "go_heap_sys"
	res, err = Compare(old, bloated, 0.15, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() || len(res.Notes) == 0 {
		t.Fatalf("cross-source rss handled wrong: %+v", res)
	}
}

func TestCompareRefusesDifferentMatrices(t *testing.T) {
	old := twoCellReport(1, 1)
	other := twoCellReport(1, 1)
	other.Name = "sweep"
	if _, err := Compare(old, other, 0.15, 0); err == nil {
		t.Fatal("cross-matrix compare did not error")
	}
}

func TestCompareTableRendering(t *testing.T) {
	old := twoCellReport(1.0, 0.5)
	res, err := Compare(old, twoCellReport(1.5, 0.5), 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"regression (wall)", "+50.0%", "summary: 1 regressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestParseNoise(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"15%", 0.15, true},
		{"0.15", 0.15, true},
		{" 20% ", 0.20, true},
		{"0", 0, true},
		{"150%", 0, false},
		{"-5%", 0, false},
		{"abc", 0, false},
	} {
		got, err := ParseNoise(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseNoise(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseNoise(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
