package benchmatrix

import (
	"strings"
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	m, err := Preset("matrix")
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance floor: the default matrix must span ≥12 cells
	// (32 crossed + 4 extra dense-vs-auto kernel cells + 1 forked cell).
	if got := len(m.Cells()); got != 37 || got < 12 {
		t.Fatalf("matrix preset has %d cells, want 37", got)
	}
	s, err := Preset("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Cells()); got != 4 {
		t.Fatalf("sweep preset has %d cells, want 4", got)
	}
	k, err := Preset("kernels")
	if err != nil {
		t.Fatal(err)
	}
	// {default, auto} kernels × {1, 600} seedings on one shape.
	if got := len(k.Cells()); got != 4 {
		t.Fatalf("kernels preset has %d cells, want 4", got)
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestKernelAxisCells pins the kernel/seeding axis semantics: zero
// values add no ID segment (legacy baselines stay matchable), set
// values append |ii= and |k= segments with the kernel segment last
// (KernelGate strips it to find a pair's dense counterpart), and the
// cell coordinates flow into the sweep spec the cell actually runs.
func TestKernelAxisCells(t *testing.T) {
	k, _ := Preset("kernels")
	ids := make([]string, 0, 4)
	for _, c := range k.Cells() {
		ids = append(ids, c.ID())
	}
	want := []string{
		"bench-town-2000|RR x4|scen=1|warm|ii=1",
		"bench-town-2000|RR x4|scen=1|warm|ii=1|k=auto",
		"bench-town-2000|RR x4|scen=1|warm|ii=600",
		"bench-town-2000|RR x4|scen=1|warm|ii=600|k=auto",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("cell %d id %q, want %q", i, ids[i], want[i])
		}
	}

	auto := k.Cells()[1]
	sw := k.SweepSpec(auto)
	if sw.Kernel != "auto" || sw.InitialInfections != 1 {
		t.Fatalf("sweep spec kernel=%q ii=%d, want auto/1", sw.Kernel, sw.InitialInfections)
	}
	if err := sw.Validate(); err != nil {
		t.Fatalf("kernel cell's sweep spec invalid: %v", err)
	}

	// The matrix preset's extra cells ride after the crossed axes and
	// never collide with them: the kernel quartet, then one forked cell.
	m, _ := Preset("matrix")
	cells := m.Cells()
	tail := cells[len(cells)-5 : len(cells)-1]
	for _, c := range tail {
		if c.Seeding == 0 {
			t.Fatalf("extra cell %s has default seeding", c.ID())
		}
	}
	if tail[1].Kernel != "auto" || tail[3].Kernel != "auto" {
		t.Fatalf("extra cells %v missing auto kernels", tail)
	}
	forked := cells[len(cells)-1]
	if !forked.Forked || !strings.HasSuffix(forked.ID(), "|forked") {
		t.Fatalf("last matrix cell %s is not the forked cell", forked.ID())
	}
	fsw := m.SweepSpec(forked)
	if fsw.ForkDay == 0 || len(fsw.Interventions) != 2 {
		t.Fatalf("forked cell sweep spec fork_day=%d interventions=%d, want mid-horizon fork with 2 branches",
			fsw.ForkDay, len(fsw.Interventions))
	}
	if err := fsw.Validate(); err != nil {
		t.Fatalf("forked cell's sweep spec invalid: %v", err)
	}
}

func TestCellIDStableAndUnique(t *testing.T) {
	m, _ := Preset("matrix")
	seen := map[string]bool{}
	for _, c := range m.Cells() {
		id := c.ID()
		if seen[id] {
			t.Fatalf("duplicate cell id %q", id)
		}
		seen[id] = true
		if id != c.ID() {
			t.Fatalf("cell id unstable: %q vs %q", id, c.ID())
		}
	}
	c := m.Cells()[0]
	want := "bench-town-800|RR x2|scen=1|cold"
	if c.ID() != want {
		t.Fatalf("first cell id %q, want %q (IDs are the compare keys — changing their format orphans every archived baseline)", c.ID(), want)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"name":"x","populatons":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typo'd axis accepted: %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	in := `{
		"name": "custom",
		"populations": [{"name": "t", "people": 100, "locations": 10}],
		"strategies": [{"strategy": "GP", "splitloc": true}],
		"ranks": [8],
		"scenario_counts": [2],
		"cache_states": ["cold"],
		"replicates": 2,
		"days": 4,
		"seed": 11,
		"cell_timeout": "90s"
	}`
	s, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.CellTimeout) != 90*time.Second {
		t.Fatalf("cell_timeout %v", time.Duration(s.CellTimeout))
	}
	cells := s.Cells()
	if len(cells) != 1 || cells[0].ID() != "t|GP-splitLoc x8|scen=2|cold" {
		t.Fatalf("cells = %+v", cells)
	}
	sw := s.SweepSpec(cells[0])
	if len(sw.Scenarios) != 2 || sw.Scenarios[0].Name != "s00" || sw.Scenarios[1].Name != "s01" {
		t.Fatalf("sweep scenarios %+v", sw.Scenarios)
	}
	if len(sw.Placements) != 1 || sw.Placements[0].Ranks != 8 || !sw.Placements[0].SplitLoc {
		t.Fatalf("sweep placements %+v", sw.Placements)
	}
}

// TestParseSpecKernelAxis round-trips a spec file using the kernel,
// seeding and extra-cell fields through the strict parser.
func TestParseSpecKernelAxis(t *testing.T) {
	in := `{
		"name": "custom",
		"populations": [{"name": "t", "people": 100, "locations": 10}],
		"strategies": [{"strategy": "RR"}],
		"ranks": [2],
		"cache_states": ["warm"],
		"kernels": ["", "auto"],
		"seedings": [1, 50],
		"extra_cells": [{
			"population": {"name": "t", "people": 100, "locations": 10},
			"strategy": {"strategy": "RR"},
			"ranks": 4,
			"scenarios": 1,
			"cache_state": "warm",
			"kernel": "event",
			"seeding": 3
		}],
		"replicates": 1,
		"days": 2,
		"seed": 1,
		"cell_timeout": "10s"
	}`
	s, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Cells()
	if len(cells) != 5 { // 2 kernels × 2 seedings + 1 extra
		t.Fatalf("got %d cells: %+v", len(cells), cells)
	}
	last := cells[4]
	if got, want := last.ID(), "t|RR x4|scen=1|warm|ii=3|k=event"; got != want {
		t.Fatalf("extra cell id %q, want %q", got, want)
	}
	sw := s.SweepSpec(last)
	if sw.Kernel != "event" || sw.InitialInfections != 3 {
		t.Fatalf("extra cell sweep kernel=%q ii=%d", sw.Kernel, sw.InitialInfections)
	}
}

func TestSpecValidation(t *testing.T) {
	base := func() *Spec {
		s := stubSpec(time.Second)
		s.Normalize()
		return s
	}
	for name, breakIt := range map[string]func(*Spec){
		"no populations":  func(s *Spec) { s.Populations = nil },
		"no strategies":   func(s *Spec) { s.Strategies = nil },
		"no ranks":        func(s *Spec) { s.Ranks = nil },
		"bad strategy":    func(s *Spec) { s.Strategies[0].Strategy = "METIS" },
		"zero rank":       func(s *Spec) { s.Ranks = []int{0} },
		"zero scenarios":  func(s *Spec) { s.ScenarioCounts = []int{0} },
		"bad cache state": func(s *Spec) { s.CacheStates = []string{"lukewarm"} },
		"bad kernel":      func(s *Spec) { s.Kernels = []string{"gillespie"} },
		"negative seed":   func(s *Spec) { s.Seedings = []int{-1} },
		"bad extra cell": func(s *Spec) {
			s.Extra = []CellConfig{{
				Population: s.Populations[0], Strategy: s.Strategies[0],
				Ranks: 2, Scenarios: 1, CacheState: "lukewarm",
			}}
		},
		"bad extra kernel": func(s *Spec) {
			s.Extra = []CellConfig{{
				Population: s.Populations[0], Strategy: s.Strategies[0],
				Ranks: 2, Scenarios: 1, CacheState: CacheWarm, Kernel: "sparse",
			}}
		},
	} {
		s := base()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: validation passed", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
}
