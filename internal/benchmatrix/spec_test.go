package benchmatrix

import (
	"strings"
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	m, err := Preset("matrix")
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance floor: the default matrix must span ≥12 cells.
	if got := len(m.Cells()); got != 32 || got < 12 {
		t.Fatalf("matrix preset has %d cells, want 32", got)
	}
	s, err := Preset("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Cells()); got != 4 {
		t.Fatalf("sweep preset has %d cells, want 4", got)
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestCellIDStableAndUnique(t *testing.T) {
	m, _ := Preset("matrix")
	seen := map[string]bool{}
	for _, c := range m.Cells() {
		id := c.ID()
		if seen[id] {
			t.Fatalf("duplicate cell id %q", id)
		}
		seen[id] = true
		if id != c.ID() {
			t.Fatalf("cell id unstable: %q vs %q", id, c.ID())
		}
	}
	c := m.Cells()[0]
	want := "bench-town-800|RR x2|scen=1|cold"
	if c.ID() != want {
		t.Fatalf("first cell id %q, want %q (IDs are the compare keys — changing their format orphans every archived baseline)", c.ID(), want)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"name":"x","populatons":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typo'd axis accepted: %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	in := `{
		"name": "custom",
		"populations": [{"name": "t", "people": 100, "locations": 10}],
		"strategies": [{"strategy": "GP", "splitloc": true}],
		"ranks": [8],
		"scenario_counts": [2],
		"cache_states": ["cold"],
		"replicates": 2,
		"days": 4,
		"seed": 11,
		"cell_timeout": "90s"
	}`
	s, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.CellTimeout) != 90*time.Second {
		t.Fatalf("cell_timeout %v", time.Duration(s.CellTimeout))
	}
	cells := s.Cells()
	if len(cells) != 1 || cells[0].ID() != "t|GP-splitLoc x8|scen=2|cold" {
		t.Fatalf("cells = %+v", cells)
	}
	sw := s.SweepSpec(cells[0])
	if len(sw.Scenarios) != 2 || sw.Scenarios[0].Name != "s00" || sw.Scenarios[1].Name != "s01" {
		t.Fatalf("sweep scenarios %+v", sw.Scenarios)
	}
	if len(sw.Placements) != 1 || sw.Placements[0].Ranks != 8 || !sw.Placements[0].SplitLoc {
		t.Fatalf("sweep placements %+v", sw.Placements)
	}
}

func TestSpecValidation(t *testing.T) {
	base := func() *Spec {
		s := stubSpec(time.Second)
		s.Normalize()
		return s
	}
	for name, breakIt := range map[string]func(*Spec){
		"no populations":  func(s *Spec) { s.Populations = nil },
		"no strategies":   func(s *Spec) { s.Strategies = nil },
		"no ranks":        func(s *Spec) { s.Ranks = nil },
		"bad strategy":    func(s *Spec) { s.Strategies[0].Strategy = "METIS" },
		"zero rank":       func(s *Spec) { s.Ranks = []int{0} },
		"zero scenarios":  func(s *Spec) { s.ScenarioCounts = []int{0} },
		"bad cache state": func(s *Spec) { s.CacheStates = []string{"lukewarm"} },
	} {
		s := base()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: validation passed", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
}
