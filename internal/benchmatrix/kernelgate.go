package benchmatrix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// KernelPair is one dense-vs-auto comparison inside a single report:
// two cells identical along every axis except the kernel.
type KernelPair struct {
	// BaseID is the shared identity with the kernel segment stripped.
	BaseID  string
	Seeding int
	// DenseWall is the default/dense-kernel cell's wall clock, AutoWall
	// the auto-kernel cell's; Speedup is their ratio (>1 = auto faster).
	DenseWall, AutoWall float64
	Speedup             float64
	// GateSpeedup marks the pair that must clear MinSpeedup (the lowest
	// seeding in the report — where the active set is sparsest).
	GateSpeedup bool
	OK          bool
	Reason      string
}

// KernelGateResult is the verdict of KernelGate over one report.
type KernelGateResult struct {
	MinSpeedup float64 // required dense/auto ratio at the lowest seeding
	Band       float64 // fractional slowdown tolerated everywhere (0.15 = +15%)
	Pairs      []KernelPair
	// Problems are structural defects (broken cells, unpaired kernel
	// cells) that fail the gate regardless of timings.
	Problems []string
}

// Failed reports whether the gate should trip.
func (r *KernelGateResult) Failed() bool {
	if len(r.Problems) > 0 {
		return true
	}
	for _, p := range r.Pairs {
		if !p.OK {
			return true
		}
	}
	return false
}

// WriteTable renders the per-pair verdicts plus any structural problems.
func (r *KernelGateResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-44s %6s %10s %10s %8s  %s\n",
		"pair", "seed", "dense (s)", "auto (s)", "speedup", "verdict")
	for _, p := range r.Pairs {
		verdict := "ok"
		if !p.OK {
			verdict = "FAIL"
		}
		if p.Reason != "" {
			verdict += " (" + p.Reason + ")"
		}
		fmt.Fprintf(w, "%-44s %6d %10.3f %10.3f %7.2fx  %s\n",
			p.BaseID, p.Seeding, p.DenseWall, p.AutoWall, p.Speedup, verdict)
	}
	for _, pr := range r.Problems {
		fmt.Fprintf(w, "problem: %s\n", pr)
	}
	failed := 0
	for _, p := range r.Pairs {
		if !p.OK {
			failed++
		}
	}
	fmt.Fprintf(w, "summary: %d pairs, %d failed, %d problems (min speedup %.2fx at lowest seeding, band +%.0f%% elsewhere)\n",
		len(r.Pairs), failed, len(r.Problems), r.MinSpeedup, 100*r.Band)
}

// KernelGate pairs every auto-kernel cell in the report against its
// default/dense-kernel counterpart (same ID with the kernel segment
// stripped) and enforces the hybrid kernel's performance contract:
// at the lowest seeding present — where the infected frontier is
// sparsest and active-set stepping must pay for itself — auto must be
// at least minSpeedup× faster than dense; at every seeding, auto must
// never be more than band slower than dense (the dense fallback's
// overhead ceiling). Broken or unpaired kernel cells fail the gate:
// a gate that silently skips its evidence is no gate.
func KernelGate(rep *Report, minSpeedup, band float64) (*KernelGateResult, error) {
	if minSpeedup < 1 {
		return nil, fmt.Errorf("benchmatrix: kernel gate min speedup %.2f < 1", minSpeedup)
	}
	if band < 0 || band >= 1 {
		return nil, fmt.Errorf("benchmatrix: kernel gate band %.2f outside [0, 1)", band)
	}
	res := &KernelGateResult{MinSpeedup: minSpeedup, Band: band}

	type pairCells struct{ dense, auto *CellReport }
	byBase := make(map[string]*pairCells)
	var order []string
	lookup := func(base string) *pairCells {
		pc := byBase[base]
		if pc == nil {
			pc = &pairCells{}
			byBase[base] = pc
			order = append(order, base)
		}
		return pc
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		switch c.Kernel {
		case "auto":
			base := strings.TrimSuffix(c.ID, "|k=auto")
			lookup(base).auto = c
		case "", "dense":
			base := strings.TrimSuffix(c.ID, "|k=dense")
			// Default-kernel cells only anchor a pair when an auto cell
			// claims the same base; recording them all is harmless —
			// unpaired dense cells are simply dropped below.
			lookup(base).dense = c
		}
	}

	minSeeding := -1
	var pairs []KernelPair
	for _, base := range order {
		pc := byBase[base]
		if pc.auto == nil {
			continue // plain matrix cell, nothing to gate
		}
		if pc.dense == nil {
			res.Problems = append(res.Problems,
				fmt.Sprintf("auto cell %s has no dense counterpart", pc.auto.ID))
			continue
		}
		if bad := brokenCell(pc.dense); bad != "" {
			res.Problems = append(res.Problems, bad)
			continue
		}
		if bad := brokenCell(pc.auto); bad != "" {
			res.Problems = append(res.Problems, bad)
			continue
		}
		p := KernelPair{
			BaseID:    base,
			Seeding:   pc.auto.InitialInfections,
			DenseWall: pc.dense.WallSeconds,
			AutoWall:  pc.auto.WallSeconds,
		}
		if p.AutoWall > 0 {
			p.Speedup = p.DenseWall / p.AutoWall
		}
		if minSeeding < 0 || p.Seeding < minSeeding {
			minSeeding = p.Seeding
		}
		pairs = append(pairs, p)
	}
	if len(pairs) == 0 && len(res.Problems) == 0 {
		return nil, fmt.Errorf("benchmatrix: report %q has no dense/auto kernel pairs to gate", rep.Name)
	}

	for i := range pairs {
		p := &pairs[i]
		p.OK = true
		if p.Seeding == minSeeding {
			p.GateSpeedup = true
			if p.Speedup < minSpeedup {
				p.OK = false
				p.Reason = fmt.Sprintf("speedup %.2fx < required %.2fx at lowest seeding", p.Speedup, minSpeedup)
			}
		}
		if p.OK && p.AutoWall > p.DenseWall*(1+band) {
			p.OK = false
			p.Reason = fmt.Sprintf("auto %.1f%% slower than dense (band +%.0f%%)",
				100*(p.AutoWall-p.DenseWall)/p.DenseWall, 100*band)
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Seeding < pairs[b].Seeding })
	res.Pairs = pairs
	return res, nil
}

// brokenCell describes a cell whose measurement cannot be gated on.
func brokenCell(c *CellReport) string {
	switch {
	case c.TimedOut:
		return fmt.Sprintf("cell %s timed out", c.ID)
	case c.Error != "":
		return fmt.Sprintf("cell %s errored: %s", c.ID, c.Error)
	case c.WallSeconds <= 0:
		return fmt.Sprintf("cell %s has no wall-clock measurement", c.ID)
	}
	return ""
}
