// Package benchmatrix is the scaling-matrix bench harness: it executes
// a declarative matrix over population scale × placement strategy ×
// ranks × scenario count × cache state, timing every cell in-process
// through the real sweep engine with a per-config timeout, peak-RSS
// sampling and a span-derived component breakdown, and emits a stable,
// schema-versioned BENCH_matrix.json. A comparator diffs two reports
// cell by cell inside a noise band, which is what lets CI fail a PR on
// a measured regression instead of trusting an assertion — the
// exhaustive axis-by-axis measurement discipline of the paper's
// scaling study, applied to the repro itself.
//
// The package mirrors internal/server's layering: it imports the root
// episim package (never the reverse), so the matrix exercises exactly
// the code path every CLI and daemon serves.
package benchmatrix

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ensemble"
	"repro/internal/interventions"
)

// Duration is a time.Duration that marshals as a parseable string
// ("90s"), so matrix spec files stay human-editable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("benchmatrix: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// StrategyAxis is one placement-strategy point of the matrix; ranks are
// a separate axis so strategy × ranks is a full cross product.
type StrategyAxis struct {
	Strategy string `json:"strategy"`
	SplitLoc bool   `json:"splitloc,omitempty"`
}

// Label is the paper-style strategy label ("GP-splitLoc").
func (s StrategyAxis) Label() string {
	l := strings.ToUpper(s.Strategy)
	if s.SplitLoc {
		l += "-splitLoc"
	}
	return l
}

// Cache states of the matrix's cache axis. A cold cell runs against a
// fresh cache (placement builds on the clock); a warm cell pre-warms a
// private cache untimed, then times the same sweep against it — the
// difference is exactly what the content-keyed cache buys.
const (
	CacheCold = "cold"
	CacheWarm = "warm"
)

// Spec declares the bench matrix: five axes crossed into cells, plus
// the per-cell sweep shape shared by all of them.
type Spec struct {
	// Name tags the report; compare refuses to diff differently-named
	// matrices (their cells are not the same experiment).
	Name string `json:"name"`

	// Populations is the population-scale axis (reusing the sweep spec's
	// population naming: custom Name/People/Locations or State/Scale).
	Populations []ensemble.PopulationSpec `json:"populations"`
	// Strategies × Ranks form the placement axes.
	Strategies []StrategyAxis `json:"strategies"`
	Ranks      []int          `json:"ranks"`
	// ScenarioCounts is the scenario-axis: each value n runs a sweep
	// with n baseline scenarios, scaling the cell count of the sweep
	// grid itself.
	ScenarioCounts []int `json:"scenario_counts"`
	// CacheStates is any subset of {cold, warm}.
	CacheStates []string `json:"cache_states"`
	// Kernels is the simulation-kernel axis ("" = the sweep default,
	// "dense", "auto", "event"). Empty means a single default-kernel
	// column, so legacy specs keep their exact historical cell IDs.
	Kernels []string `json:"kernels,omitempty"`
	// Seedings is the initial-infections axis (0 = the sweep default).
	// The kernel axis only separates at the seeding extremes — a sparse
	// frontier is where active-set stepping wins — so the two axes ship
	// together.
	Seedings []int `json:"seedings,omitempty"`

	// Extra appends fully-resolved cells after the crossed axes, so a
	// matrix can carry a handful of targeted configurations (e.g.
	// dense-vs-auto at low and high seeding) without multiplying every
	// existing axis by them.
	Extra []CellConfig `json:"extra_cells,omitempty"`

	// Per-cell sweep shape.
	Replicates int    `json:"replicates"`
	Days       int    `json:"days"`
	Seed       uint64 `json:"seed"`
	// Workers bounds each cell's sweep concurrency (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// CellTimeout bounds every cell's timed run (and a warm cell's
	// untimed pre-warm pass separately), so one pathological
	// configuration cannot hang the whole matrix.
	CellTimeout Duration `json:"cell_timeout"`
}

// Normalize fills defaulted fields in place.
func (s *Spec) Normalize() {
	if s.Name == "" {
		s.Name = "matrix"
	}
	if len(s.ScenarioCounts) == 0 {
		s.ScenarioCounts = []int{1}
	}
	if len(s.CacheStates) == 0 {
		s.CacheStates = []string{CacheCold, CacheWarm}
	}
	if s.Replicates <= 0 {
		s.Replicates = 1
	}
	if s.Days <= 0 {
		s.Days = 8
	}
	if s.Seed == 0 {
		s.Seed = 7
	}
	if s.CellTimeout <= 0 {
		s.CellTimeout = Duration(120 * time.Second)
	}
}

// Validate checks the axes; it leans on the sweep spec's own validation
// for population fields by round-tripping one probe spec per cell shape
// at run time, so here only the matrix-level invariants are enforced.
func (s *Spec) Validate() error {
	if len(s.Populations) == 0 {
		return fmt.Errorf("benchmatrix: no populations")
	}
	if len(s.Strategies) == 0 {
		return fmt.Errorf("benchmatrix: no strategies")
	}
	if len(s.Ranks) == 0 {
		return fmt.Errorf("benchmatrix: no ranks")
	}
	for _, st := range s.Strategies {
		switch strings.ToUpper(st.Strategy) {
		case "RR", "GP":
		default:
			return fmt.Errorf("benchmatrix: unknown strategy %q (want RR or GP)", st.Strategy)
		}
	}
	for _, r := range s.Ranks {
		if r < 1 {
			return fmt.Errorf("benchmatrix: ranks %d < 1", r)
		}
	}
	for _, n := range s.ScenarioCounts {
		if n < 1 {
			return fmt.Errorf("benchmatrix: scenario count %d < 1", n)
		}
	}
	for _, cs := range s.CacheStates {
		if cs != CacheCold && cs != CacheWarm {
			return fmt.Errorf("benchmatrix: unknown cache state %q (want %s or %s)", cs, CacheCold, CacheWarm)
		}
	}
	for _, k := range s.Kernels {
		if err := validKernel(k); err != nil {
			return err
		}
	}
	for _, ii := range s.Seedings {
		if ii < 0 {
			return fmt.Errorf("benchmatrix: seeding %d < 0", ii)
		}
	}
	for _, c := range s.Extra {
		if err := validKernel(c.Kernel); err != nil {
			return err
		}
		if c.Seeding < 0 {
			return fmt.Errorf("benchmatrix: extra cell %s: seeding %d < 0", c.ID(), c.Seeding)
		}
		if c.Ranks < 1 {
			return fmt.Errorf("benchmatrix: extra cell %s: ranks %d < 1", c.ID(), c.Ranks)
		}
		if c.Scenarios < 1 {
			return fmt.Errorf("benchmatrix: extra cell %s: scenario count %d < 1", c.ID(), c.Scenarios)
		}
		if c.CacheState != CacheCold && c.CacheState != CacheWarm {
			return fmt.Errorf("benchmatrix: extra cell %s: unknown cache state %q", c.ID(), c.CacheState)
		}
	}
	return nil
}

func validKernel(k string) error {
	switch k {
	case "", "dense", "auto", "event":
		return nil
	}
	return fmt.Errorf("benchmatrix: unknown kernel %q (want dense, auto or event)", k)
}

// ParseSpec decodes and validates a matrix spec from JSON, rejecting
// unknown fields so a typo in an axis name fails loudly.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchmatrix: parse spec: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// CellConfig is one fully-resolved matrix cell: the coordinates along
// every axis. IDs are pure functions of the coordinates, so two runs of
// the same spec always produce matchable cells.
type CellConfig struct {
	Population ensemble.PopulationSpec `json:"population"`
	Strategy   StrategyAxis            `json:"strategy"`
	Ranks      int                     `json:"ranks"`
	Scenarios  int                     `json:"scenarios"`
	CacheState string                  `json:"cache_state"`
	// Kernel and Seeding are zero-valued on legacy cells ("" / 0 =
	// sweep defaults), and zero values add no ID segment — so every
	// pre-kernel-axis report keeps its exact cell identities.
	Kernel  string `json:"kernel,omitempty"`
	Seeding int    `json:"seeding,omitempty"`
	// Forked runs the cell as a fork-point counterfactual sweep: an
	// intervention-branch axis resuming from a mid-horizon checkpoint
	// instead of plain scenarios, timing the checkpoint build/restore
	// path. False adds no ID segment, keeping legacy IDs byte-identical.
	Forked bool `json:"forked,omitempty"`
}

// ID is the cell's stable identity in reports and compare tables.
// Kernel and seeding coordinates append trailing segments only when
// set, keeping legacy IDs byte-identical.
func (c CellConfig) ID() string {
	id := fmt.Sprintf("%s|%s x%d|scen=%d|%s",
		c.Population.Label(), c.Strategy.Label(), c.Ranks, c.Scenarios, c.CacheState)
	if c.Seeding != 0 {
		id += fmt.Sprintf("|ii=%d", c.Seeding)
	}
	if c.Kernel != "" {
		id += "|k=" + c.Kernel
	}
	if c.Forked {
		id += "|forked"
	}
	return id
}

// Cells enumerates the matrix in deterministic axis order: populations
// outermost, then strategy, ranks, scenario count, seeding, cache
// state, kernel — with cold immediately before warm for a given shape,
// and the kernel axis innermost so a report reads as side-by-side
// kernel columns of the same configuration. Extra cells follow the
// crossed axes verbatim. The kernel/seeding defaults apply here rather
// than in Normalize so legacy spec files round-trip unchanged.
func (s *Spec) Cells() []CellConfig {
	kernels := s.Kernels
	if len(kernels) == 0 {
		kernels = []string{""}
	}
	seedings := s.Seedings
	if len(seedings) == 0 {
		seedings = []int{0}
	}
	var cells []CellConfig
	for _, pop := range s.Populations {
		for _, st := range s.Strategies {
			for _, r := range s.Ranks {
				for _, n := range s.ScenarioCounts {
					for _, ii := range seedings {
						for _, cs := range s.CacheStates {
							for _, k := range kernels {
								cells = append(cells, CellConfig{
									Population: pop,
									Strategy:   st,
									Ranks:      r,
									Scenarios:  n,
									CacheState: cs,
									Kernel:     k,
									Seeding:    ii,
								})
							}
						}
					}
				}
			}
		}
	}
	return append(cells, s.Extra...)
}

// SweepSpec builds the sweep one cell times: a single-population,
// single-placement grid with the cell's scenario count, sharing the
// matrix-wide replicate/day/seed shape. Scenario names are stable so
// the sweep's content keys (and therefore replicate seeds) never vary
// between runs of the same matrix.
func (s *Spec) SweepSpec(c CellConfig) *ensemble.Spec {
	scenarios := make([]ensemble.ScenarioSpec, c.Scenarios)
	for i := range scenarios {
		scenarios[i] = ensemble.ScenarioSpec{Name: fmt.Sprintf("s%02d", i)}
	}
	sw := &ensemble.Spec{
		Populations: []ensemble.PopulationSpec{c.Population},
		Placements: []ensemble.PlacementSpec{{
			Strategy: c.Strategy.Strategy,
			SplitLoc: c.Strategy.SplitLoc,
			Ranks:    c.Ranks,
		}},
		Scenarios:         scenarios,
		Replicates:        s.Replicates,
		Days:              s.Days,
		Seed:              s.Seed,
		Workers:           s.Workers,
		Kernel:            c.Kernel,
		InitialInfections: c.Seeding,
	}
	if c.Forked {
		// Fork at mid-horizon with a branch per scenario count slot: the
		// cell times the checkpoint-build + per-branch-restore path. The
		// branch fires the day after the fork, the earliest legal day.
		fork := s.Days / 2
		if fork < 1 {
			fork = 1
		}
		sw.ForkDay = fork
		sw.Interventions = []ensemble.InterventionSpec{
			{Name: "baseline"},
			{Name: "closure", Schedule: interventions.Schedule{
				Closures: []interventions.Closure{{LocType: "school", Day: fork + 1, Days: 2}},
			}},
		}
	}
	sw.Normalize()
	return sw
}

// Preset returns a named built-in matrix.
//
//   - "matrix" — the default CI scaling matrix: two population scales ×
//     {RR, GP-splitLoc} × {2, 4} ranks × {1, 2} scenarios × cold/warm =
//     32 crossed cells plus 4 extra dense-vs-auto kernel cells, each
//     small enough that the whole matrix stays inside a CI
//     minute-budget while still spanning every axis.
//   - "sweep" — the historical bench_sweep.sh service sweep (bench-town
//     2000×200, RR×4 and GP-splitLoc×4, 3 replicates, 10 days, seed 7)
//     as cold/warm matrix cells, so the per-PR BENCH_sweep.json
//     trajectory continues on the same timing code path as the matrix.
//   - "kernels" — the dense-vs-auto kernel matrix: bench-town-2000,
//     RR×4, warm cache, {default, auto} kernels × {1, 600} initial
//     infections. The low-seeding column is where active-set stepping
//     must win (the frontier is a handful of people); the high-seeding
//     column (30% of the population infected on day 0) is where auto's
//     dense fallback must keep it within noise of dense. KernelGate
//     consumes this report.
func Preset(name string) (*Spec, error) {
	var s *Spec
	switch name {
	case "matrix":
		s = &Spec{
			Name: "matrix",
			Populations: []ensemble.PopulationSpec{
				{Name: "bench-town-800", People: 800, Locations: 80},
				{Name: "bench-town-2000", People: 2000, Locations: 200},
			},
			Strategies: []StrategyAxis{
				{Strategy: "RR"},
				{Strategy: "GP", SplitLoc: true},
			},
			Ranks:          []int{2, 4},
			ScenarioCounts: []int{1, 2},
			CacheStates:    []string{CacheCold, CacheWarm},
			Replicates:     2,
			Days:           6,
			Seed:           7,
			// Targeted kernel cells ride the default matrix so every CI
			// run tracks the dense/auto trajectory without doubling the
			// crossed axes: one shape, both kernels, both seeding
			// extremes. One forked cell tracks the fork-point
			// checkpoint build/restore path's timing the same way.
			Extra: append(kernelCells(), CellConfig{
				Population: ensemble.PopulationSpec{Name: "bench-town-2000", People: 2000, Locations: 200},
				Strategy:   StrategyAxis{Strategy: "RR"},
				Ranks:      4,
				Scenarios:  1,
				CacheState: CacheWarm,
				Forked:     true,
			}),
		}
	case "sweep":
		s = &Spec{
			Name: "sweep",
			Populations: []ensemble.PopulationSpec{
				{Name: "bench-town", People: 2000, Locations: 200},
			},
			Strategies: []StrategyAxis{
				{Strategy: "RR"},
				{Strategy: "GP", SplitLoc: true},
			},
			Ranks:          []int{4},
			ScenarioCounts: []int{1},
			CacheStates:    []string{CacheCold, CacheWarm},
			Replicates:     3,
			Days:           10,
			Seed:           7,
		}
	case "kernels":
		s = &Spec{
			Name: "kernels",
			Populations: []ensemble.PopulationSpec{
				{Name: "bench-town-2000", People: 2000, Locations: 200},
			},
			Strategies:     []StrategyAxis{{Strategy: "RR"}},
			Ranks:          []int{4},
			ScenarioCounts: []int{1},
			CacheStates:    []string{CacheWarm},
			Kernels:        []string{"", "auto"},
			Seedings:       []int{1, 600},
			Replicates:     3,
			Days:           10,
			Seed:           7,
		}
	default:
		return nil, fmt.Errorf("benchmatrix: unknown preset %q (want matrix, sweep or kernels)", name)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// kernelCells is the dense-vs-auto quartet the "matrix" preset carries:
// one fixed shape (bench-town-2000, RR×4, 1 scenario, warm cache) at
// the two seeding extremes, each with the default kernel and with auto.
func kernelCells() []CellConfig {
	pop := ensemble.PopulationSpec{Name: "bench-town-2000", People: 2000, Locations: 200}
	var cells []CellConfig
	for _, ii := range []int{1, 600} {
		for _, k := range []string{"", "auto"} {
			cells = append(cells, CellConfig{
				Population: pop,
				Strategy:   StrategyAxis{Strategy: "RR"},
				Ranks:      4,
				Scenarios:  1,
				CacheState: CacheWarm,
				Kernel:     k,
				Seeding:    ii,
			})
		}
	}
	return cells
}
