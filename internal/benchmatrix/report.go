package benchmatrix

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// SchemaVersion stamps every report. The comparator refuses to diff
// across versions: a schema change means cell semantics may have moved,
// and a silent cross-version diff would gate on noise. Bump it whenever
// a field changes meaning (adding fields is compatible; removing or
// redefining them is not).
const SchemaVersion = 1

// Report is one complete matrix run — the content of BENCH_matrix.json.
// Field order is the emission order; everything environmental lives in
// the header so cells stay pure measurements.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`

	// Provenance: stamped by the CLI, ignored by the comparator (two
	// runs of the same matrix differ here by construction).
	Commit       string `json:"commit,omitempty"`
	TimestampUTC string `json:"timestamp_utc,omitempty"`

	// Environment the numbers were measured in; the comparator prints a
	// warning when these differ (cross-machine diffs are noise-prone).
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Cells []CellReport `json:"cells"`
}

// CellReport is one measured matrix cell.
type CellReport struct {
	// ID is the cell's stable identity (CellConfig.ID) — the compare key.
	ID string `json:"id"`

	// Coordinates, denormalized for grep-ability of the artifact.
	Population string `json:"population"`
	People     int    `json:"people,omitempty"`
	Locations  int    `json:"locations,omitempty"`
	Strategy   string `json:"strategy"`
	SplitLoc   bool   `json:"splitloc,omitempty"`
	Ranks      int    `json:"ranks"`
	Scenarios  int    `json:"scenarios"`
	CacheState string `json:"cache_state"`
	// Kernel and InitialInfections denormalize the kernel-axis
	// coordinates; zero values (default kernel / default seeding) are
	// omitted, so pre-kernel-axis reports parse and emit unchanged.
	Kernel            string `json:"kernel,omitempty"`
	InitialInfections int    `json:"initial_infections,omitempty"`
	Replicates        int    `json:"replicates"`
	Days              int    `json:"days"`

	// Measurements.
	WallSeconds float64 `json:"wall_seconds"`
	// TimedOut marks a cell stopped by the per-config timeout;
	// WallSeconds then reports the time spent before the cut.
	TimedOut bool `json:"timed_out,omitempty"`
	// Error is a cell that failed outright (no gateable measurement).
	Error string `json:"error,omitempty"`
	// Simulations actually executed (replicates × sweep cells).
	Simulations int `json:"simulations"`

	// Resource accounting: peak process memory over the timed region
	// (sampled), its source (proc_statm = true RSS, go_heap_sys =
	// portable fallback), and Go allocator deltas across the cell.
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
	RSSSource    string `json:"rss_source"`
	RSSSamples   int    `json:"rss_samples"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	Allocs       uint64 `json:"allocs"`

	// Components is the span-derived breakdown of where the cell's wall
	// clock went (population_build, placement_build, sim, aggregate,
	// ...), rolled up from the run's Timeline. Stages overlap with each
	// other and with worker parallelism, so components sum to CPU-ish
	// stage seconds, not to WallSeconds.
	Components map[string]obs.StageTotal `json:"components"`
}

// WriteJSON emits the report as indented, key-stable JSON (struct order
// is fixed, map keys are sorted by encoding/json), so two runs of the
// same matrix differ only where measurements differ.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report and checks its schema version is one this
// build can interpret.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchmatrix: parse report: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchmatrix: report schema v%d, this build speaks v%d",
			r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
