package benchmatrix

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	episim "repro"
	"repro/internal/obs"
)

// RunnerOptions customize a matrix run. The zero value (or nil) runs
// the real sweep engine with default sampling.
type RunnerOptions struct {
	// Run executes one cell's sweep; production is episim.RunSweepContext,
	// tests substitute a controllable fake (the same seam internal/server
	// uses for its scheduler).
	Run func(context.Context, *episim.SweepSpec, *episim.SweepOptions) (*episim.SweepResult, error)
	// Warm pre-builds a warm cell's placements untimed; production is
	// episim.WarmSweep.
	Warm func(context.Context, *episim.SweepSpec, *episim.SweepOptions) (*episim.SweepWarmResult, error)
	// SampleInterval is the RSS sampling period (≤0 = 10ms).
	SampleInterval time.Duration
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (o *RunnerOptions) normalize() *RunnerOptions {
	out := &RunnerOptions{}
	if o != nil {
		*out = *o
	}
	if out.Run == nil {
		out.Run = episim.RunSweepContext
	}
	if out.Warm == nil {
		out.Warm = episim.WarmSweep
	}
	return out
}

// Run executes every cell of the matrix sequentially (cells must not
// contend with each other for cores — parallel cells would time each
// other's scheduling noise) and returns the measured report. The error
// is non-nil only for an invalid spec or a canceled parent context;
// per-cell failures and timeouts are recorded IN the report, so one
// pathological configuration cannot void the other cells' measurements.
func Run(ctx context.Context, spec *Spec, opts *RunnerOptions) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.normalize()
	s := *spec
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Name:          s.Name,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
	}
	for _, cell := range s.Cells() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cr := runCell(ctx, &s, cell, o)
		rep.Cells = append(rep.Cells, cr)
		if o.Progress != nil {
			status := fmt.Sprintf("%.3fs", cr.WallSeconds)
			switch {
			case cr.TimedOut:
				status = "TIMEOUT after " + status
			case cr.Error != "":
				status = "ERROR: " + cr.Error
			}
			fmt.Fprintf(o.Progress, "cell %-48s %s  (peak %s, %d sims)\n",
				cr.ID, status, formatBytes(cr.PeakRSSBytes), cr.Simulations)
		}
	}
	return rep, nil
}

// runCell measures one cell: optional untimed warm pass, then the timed
// run bracketed by allocator stats and a background RSS sampler.
func runCell(ctx context.Context, s *Spec, cell CellConfig, o *RunnerOptions) CellReport {
	cr := CellReport{
		ID:                cell.ID(),
		Population:        cell.Population.Label(),
		People:            cell.Population.People,
		Locations:         cell.Population.Locations,
		Strategy:          strings.ToUpper(cell.Strategy.Strategy),
		SplitLoc:          cell.Strategy.SplitLoc,
		Ranks:             cell.Ranks,
		Scenarios:         cell.Scenarios,
		CacheState:        cell.CacheState,
		Kernel:            cell.Kernel,
		InitialInfections: cell.Seeding,
		Replicates:        s.Replicates,
		Days:              s.Days,
		Components:        map[string]obs.StageTotal{},
	}
	sw := s.SweepSpec(cell)
	timeout := time.Duration(s.CellTimeout)

	// Every cell gets a private cache: cold cells must pay their builds,
	// and warm cells must not leak their placements into a later cold
	// cell of the same shape.
	cache := episim.NewSweepCache(0)
	if cell.CacheState == CacheWarm {
		warmCtx, cancel := context.WithTimeout(ctx, timeout)
		_, err := o.Warm(warmCtx, sw, &episim.SweepOptions{Cache: cache})
		cancel()
		if err != nil {
			if warmCtx.Err() != nil && ctx.Err() == nil {
				cr.TimedOut = true
				cr.Error = "pre-warm pass timed out"
			} else {
				cr.Error = "pre-warm pass: " + err.Error()
			}
			return cr
		}
	}

	// Settle the allocator so the cell measures its own allocations and
	// its own peak, not the previous cell's garbage awaiting collection.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	tl := obs.NewTimeline(cr.ID)
	sampler := obs.StartResourceSampler(o.SampleInterval)
	runCtx, cancel := context.WithTimeout(ctx, timeout)
	start := time.Now()
	res, err := o.Run(runCtx, sw, &episim.SweepOptions{Cache: cache, Trace: tl})
	cr.WallSeconds = time.Since(start).Seconds()
	cancel()
	peak := sampler.Stop()
	runtime.ReadMemStats(&after)

	cr.PeakRSSBytes = peak.PeakBytes
	cr.RSSSource = peak.Source
	cr.RSSSamples = peak.Samples
	cr.AllocBytes = after.TotalAlloc - before.TotalAlloc
	cr.Allocs = after.Mallocs - before.Mallocs

	spans, _ := tl.Snapshot()
	cr.Components = obs.RollupStages(spans)
	if res != nil {
		cr.Simulations = res.Simulations
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			cr.TimedOut = true
		} else {
			cr.Error = err.Error()
		}
	}
	return cr
}

// Failed reports whether any cell errored or timed out — the harness's
// own exit gate, separate from the comparator's regression gate.
func (r *Report) Failed() bool {
	for _, c := range r.Cells {
		if c.Error != "" || c.TimedOut {
			return true
		}
	}
	return false
}

// formatBytes renders a byte count for progress lines ("312.4MB").
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
