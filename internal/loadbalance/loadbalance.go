// Package loadbalance implements the dynamic load balancing the paper
// leaves as future work (Section VII): EpiSimdemics' computation has a
// non-deterministic portion (health-state changes, interventions) that
// static partitioning cannot capture, so object loads are *measured* each
// day (the Charm++ measurement-based framework's "principle of
// persistence") and objects are migrated when — and only when — the
// expected gain justifies the migration cost (the Menon et al. [21]
// policy the paper cites), with an application-specific *predictor* that
// anticipates tomorrow's location load from today's epidemic state
// instead of assuming persistence.
package loadbalance

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/loadmodel"
)

// Decision is the outcome of one rebalancing pass.
type Decision struct {
	// Assign is the new object→rank assignment.
	Assign []int32
	// Migrations is how many objects moved.
	Migrations int
	// ImbalanceBefore and ImbalanceAfter are max/avg rank load ratios.
	ImbalanceBefore float64
	ImbalanceAfter  float64
}

// GreedyRefine migrates objects from overloaded ranks to the least loaded
// ranks until the max/avg imbalance reaches target or the migration budget
// (maxMigrateFrac of all objects) is exhausted. Heaviest-objects-first
// from the currently most loaded rank: the standard greedy refinement of
// measurement-based rebalancers. The input assignment is not modified.
func GreedyRefine(assign []int32, loads []float64, ranks int, target float64, maxMigrateFrac float64) (Decision, error) {
	n := len(assign)
	if len(loads) != n {
		return Decision{}, fmt.Errorf("loadbalance: %d assignments vs %d loads", n, len(loads))
	}
	if ranks < 1 {
		return Decision{}, fmt.Errorf("loadbalance: ranks = %d", ranks)
	}
	if target < 1 {
		target = 1.05
	}
	budget := int(maxMigrateFrac * float64(n))
	if maxMigrateFrac <= 0 {
		budget = n
	}

	rankLoad := make([]float64, ranks)
	var total float64
	objsOf := make([][]int32, ranks)
	for obj, r := range assign {
		if r < 0 || int(r) >= ranks {
			return Decision{}, fmt.Errorf("loadbalance: object %d on rank %d outside [0,%d)", obj, r, ranks)
		}
		rankLoad[r] += loads[obj]
		total += loads[obj]
		objsOf[r] = append(objsOf[r], int32(obj))
	}
	avg := total / float64(ranks)
	imbalance := func() float64 {
		if avg == 0 {
			return 1
		}
		max := 0.0
		for _, l := range rankLoad {
			if l > max {
				max = l
			}
		}
		return max / avg
	}

	d := Decision{
		Assign:          append([]int32(nil), assign...),
		ImbalanceBefore: imbalance(),
	}
	// Objects of each rank sorted by load descending so the heaviest
	// useful object is found quickly.
	for r := range objsOf {
		objs := objsOf[r]
		sort.Slice(objs, func(a, b int) bool { return loads[objs[a]] > loads[objs[b]] })
	}
	// Min-heap of rank loads for the destination choice.
	h := make(rankHeap, ranks)
	for r := range h {
		h[r] = rankEntry{load: rankLoad[r], rank: int32(r)}
	}
	heap.Init(&h)
	stale := make(map[int32]float64) // rank → current load (heap may be stale)
	for r, l := range rankLoad {
		stale[int32(r)] = l
	}

	for d.Migrations < budget && imbalance() > target {
		// Most loaded rank.
		src := 0
		for r := 1; r < ranks; r++ {
			if rankLoad[r] > rankLoad[src] {
				src = r
			}
		}
		// Heaviest object on src that fits: moving it must not push the
		// destination above the source's current load (else thrashing).
		objs := objsOf[src]
		moved := false
		for len(objs) > 0 {
			obj := objs[0]
			objs = objs[1:]
			if d.Assign[obj] != int32(src) {
				continue // already migrated away
			}
			l := loads[obj]
			if l <= 0 {
				break // the rest are no lighter than zero
			}
			// Least loaded rank from the heap (refresh stale entries).
			var dst rankEntry
			for {
				dst = h[0]
				if cur := rankLoad[dst.rank]; cur != dst.load {
					h[0].load = cur
					heap.Fix(&h, 0)
					continue
				}
				break
			}
			if int(dst.rank) == src || rankLoad[dst.rank]+l >= rankLoad[src] {
				continue // no useful destination for this object
			}
			d.Assign[obj] = dst.rank
			rankLoad[src] -= l
			rankLoad[dst.rank] += l
			objsOf[dst.rank] = append(objsOf[dst.rank], obj)
			d.Migrations++
			moved = true
			break
		}
		objsOf[src] = objs
		if !moved {
			break // src cannot shed anything useful
		}
	}
	d.ImbalanceAfter = imbalance()
	return d, nil
}

type rankEntry struct {
	load float64
	rank int32
}

type rankHeap []rankEntry

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].rank < h[j].rank
}
func (h rankHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x interface{}) { *h = append(*h, x.(rankEntry)) }
func (h *rankHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Predictor forecasts tomorrow's per-location load from today's
// measurements: the application-specific prediction of Section VII ("our
// plan is to address the dynamism by the application-specific prediction
// of work load"). The static part (events, from normative schedules) is
// persistent; the dynamic part (interactions) scales with the epidemic's
// growth, which the predictor tracks from the daily infectious counts.
type Predictor struct {
	// Dynamic is the fitted run-time cost model.
	Dynamic loadmodel.Dynamic
	// prevInfectious remembers yesterday's infectious count.
	prevInfectious float64
}

// Predict returns per-location load forecasts. events and interactions
// are today's measurements; infectiousToday the number of currently
// infectious people (any infectious state).
func (p *Predictor) Predict(events, interactions []int64, infectiousToday int) []float64 {
	growth := 1.0
	if p.prevInfectious > 0 {
		growth = float64(infectiousToday) / p.prevInfectious
		// Clamp: a day-over-day explosion beyond 3x is noise at the
		// per-location level.
		if growth > 3 {
			growth = 3
		}
		if growth < 1.0/3 {
			growth = 1.0 / 3
		}
	}
	p.prevInfectious = float64(infectiousToday)
	out := make([]float64, len(events))
	for i := range events {
		// Events persist (schedules are normative); interactions scale
		// with the epidemic.
		out[i] = p.Dynamic.Load(float64(events[i]), float64(interactions[i])*growth, 0)
	}
	return out
}

// ShouldRebalance is the cost/benefit trigger of Menon et al. [21]: fire
// only when the predicted time saved per day exceeds the one-time
// migration cost amortized over the remaining horizon.
func ShouldRebalance(imbalance, target float64, gainPerDay, migrationCost float64, daysRemaining int) bool {
	if imbalance <= target {
		return false
	}
	if daysRemaining <= 0 {
		return false
	}
	return gainPerDay*float64(daysRemaining) > migrationCost
}
