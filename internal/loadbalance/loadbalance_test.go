package loadbalance

import (
	"testing"
	"testing/quick"

	"repro/internal/loadmodel"
	"repro/internal/xrand"
)

func TestGreedyRefineImproves(t *testing.T) {
	// All load on rank 0: refinement must spread it.
	n, k := 100, 4
	assign := make([]int32, n)
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = 1
	}
	d, err := GreedyRefine(assign, loads, k, 1.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.ImbalanceBefore != float64(k) {
		t.Fatalf("before = %v, want %v", d.ImbalanceBefore, k)
	}
	if d.ImbalanceAfter > 1.1 {
		t.Fatalf("after = %v, want ~1", d.ImbalanceAfter)
	}
	if d.Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestGreedyRefineRespectsBudget(t *testing.T) {
	n, k := 1000, 8
	assign := make([]int32, n)
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = 1
	}
	d, err := GreedyRefine(assign, loads, k, 1.0, 0.01) // at most 10 moves
	if err != nil {
		t.Fatal(err)
	}
	if d.Migrations > 10 {
		t.Fatalf("budget exceeded: %d migrations", d.Migrations)
	}
}

func TestGreedyRefineNoopWhenBalanced(t *testing.T) {
	n, k := 100, 4
	assign := make([]int32, n)
	loads := make([]float64, n)
	for i := range assign {
		assign[i] = int32(i % k)
		loads[i] = 1
	}
	d, err := GreedyRefine(assign, loads, k, 1.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Migrations != 0 {
		t.Fatalf("balanced input migrated %d objects", d.Migrations)
	}
}

func TestGreedyRefineInputUntouched(t *testing.T) {
	assign := []int32{0, 0, 0, 0}
	loads := []float64{1, 1, 1, 1}
	_, err := GreedyRefine(assign, loads, 2, 1.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("input assignment modified")
		}
	}
}

func TestGreedyRefineErrors(t *testing.T) {
	if _, err := GreedyRefine([]int32{0}, []float64{1, 2}, 2, 1.05, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := GreedyRefine([]int32{0}, []float64{1}, 0, 1.05, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := GreedyRefine([]int32{5}, []float64{1}, 2, 1.05, 0); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestGreedyRefineNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed)
		n := 20 + s.Intn(200)
		k := 2 + s.Intn(8)
		assign := make([]int32, n)
		loads := make([]float64, n)
		for i := range assign {
			assign[i] = int32(s.Intn(k))
			loads[i] = s.Pareto(1, 1.5) // heavy-tailed, like location loads
		}
		d, err := GreedyRefine(assign, loads, k, 1.05, 0)
		if err != nil {
			return false
		}
		// Conservation: every object still assigned to a valid rank.
		for _, a := range d.Assign {
			if a < 0 || int(a) >= k {
				return false
			}
		}
		return d.ImbalanceAfter <= d.ImbalanceBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRefineHeavyTail(t *testing.T) {
	// One object dominates: imbalance can only fall to lmax/avg, never
	// below (no splitting at the balancer level).
	loads := []float64{100, 1, 1, 1, 1, 1, 1, 1}
	assign := make([]int32, len(loads))
	d, err := GreedyRefine(assign, loads, 4, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	avg := 107.0 / 4
	bound := 100 / avg
	if d.ImbalanceAfter < bound-1e-9 {
		t.Fatalf("impossible balance %v < %v", d.ImbalanceAfter, bound)
	}
}

func TestPredictorGrowthTracking(t *testing.T) {
	p := &Predictor{Dynamic: loadmodel.Dynamic{C1: 1, C2: 1}}
	events := []int64{100}
	inter := []int64{50}
	// First call: no history, growth 1.
	out1 := p.Predict(events, inter, 10)
	if out1[0] != 150 {
		t.Fatalf("first prediction = %v, want 150", out1[0])
	}
	// Infectious doubled: interactions forecast doubles.
	out2 := p.Predict(events, inter, 20)
	if out2[0] != 100+50*2 {
		t.Fatalf("growth prediction = %v, want 200", out2[0])
	}
	// Explosion clamped at 3x.
	out3 := p.Predict(events, inter, 2000)
	if out3[0] != 100+50*3 {
		t.Fatalf("clamped prediction = %v, want 250", out3[0])
	}
}

func TestShouldRebalance(t *testing.T) {
	if ShouldRebalance(1.01, 1.05, 10, 1, 100) {
		t.Fatal("fired below target imbalance")
	}
	if !ShouldRebalance(2.0, 1.05, 10, 100, 100) {
		t.Fatal("did not fire when gain dominates")
	}
	if ShouldRebalance(2.0, 1.05, 1, 1000, 10) {
		t.Fatal("fired when migration cost dominates")
	}
	if ShouldRebalance(2.0, 1.05, 10, 1, 0) {
		t.Fatal("fired with no days remaining")
	}
}
