package synthpop

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func genSmall(t testing.TB, seed uint64) *Population {
	t.Helper()
	pop := Generate(DefaultConfig("test", 5000, 1200, seed))
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 1)
	b := genSmall(t, 1)
	if a.NumVisits() != b.NumVisits() {
		t.Fatalf("visit counts differ: %d vs %d", a.NumVisits(), b.NumVisits())
	}
	for i := range a.Visits {
		if a.Visits[i] != b.Visits[i] {
			t.Fatalf("visit %d differs: %+v vs %+v", i, a.Visits[i], b.Visits[i])
		}
	}
	c := genSmall(t, 2)
	if c.NumVisits() == a.NumVisits() && c.Visits[0] == a.Visits[0] && c.Visits[7] == a.Visits[7] {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestPersonDegreeCalibration(t *testing.T) {
	pop := Generate(DefaultConfig("cal", 20000, 5000, 3))
	perPerson := make([]int, pop.NumPersons())
	for p := 0; p < pop.NumPersons(); p++ {
		perPerson[p] = len(pop.PersonVisits(int32(p)))
	}
	s := stats.SummarizeInts(perPerson)
	// Paper: avg 5.5, sigma 2.6. Accept a generous band; the shape is what
	// matters and exact retuning is recorded in EXPERIMENTS.md.
	if s.Mean < 4.2 || s.Mean > 6.8 {
		t.Fatalf("visits per person mean = %v, want ≈5.5", s.Mean)
	}
	if s.Std < 1.0 || s.Std > 4.0 {
		t.Fatalf("visits per person std = %v, want ≈2.6", s.Std)
	}
	if s.Min < 2 {
		t.Fatalf("everyone should have at least 2 home visits, min = %v", s.Min)
	}
}

func TestLocationDegreeHeavyTail(t *testing.T) {
	pop := Generate(DefaultConfig("tail", 30000, 7000, 5))
	counts := pop.VisitCountsPerLocation()
	fs := make([]float64, len(counts))
	for i, c := range counts {
		fs[i] = float64(c)
	}
	s := stats.Summarize(fs)
	if s.Max < 20*s.Mean {
		t.Fatalf("tail too light: max %v vs mean %v", s.Max, s.Mean)
	}
	// Power-law tail exponent should be finite and in a plausible social
	// network band (1.5..4).
	alpha := stats.PowerLawAlpha(fs, s.Mean*4)
	if alpha < 1.5 || alpha > 4.5 {
		t.Fatalf("tail alpha = %v, want in [1.5,4.5]", alpha)
	}
}

func TestVisitsWellFormed(t *testing.T) {
	pop := genSmall(t, 7)
	for _, v := range pop.Visits {
		if v.Start >= v.End {
			t.Fatalf("empty visit %+v", v)
		}
		if v.End > 24*60 {
			t.Fatalf("visit past midnight %+v", v)
		}
	}
}

func TestChildrenAttendSchool(t *testing.T) {
	pop := genSmall(t, 9)
	checked := 0
	for p := 0; p < pop.NumPersons() && checked < 500; p++ {
		if pop.Persons[p].Age != Child {
			continue
		}
		checked++
		found := false
		for _, v := range pop.PersonVisits(int32(p)) {
			if pop.Locations[v.Loc].Type == School {
				found = true
			}
		}
		if !found {
			t.Fatalf("child %d has no school visit", p)
		}
	}
	if checked == 0 {
		t.Fatal("no children generated")
	}
}

func TestHomeVisitsAtOwnHome(t *testing.T) {
	pop := genSmall(t, 11)
	for p := 0; p < pop.NumPersons(); p++ {
		for _, v := range pop.PersonVisits(int32(p)) {
			if pop.Locations[v.Loc].Type == Home && v.Loc != pop.Persons[p].Home {
				t.Fatalf("person %d visits foreign home %d (own %d)", p, v.Loc, pop.Persons[p].Home)
			}
		}
	}
}

func TestSublocationWithinRange(t *testing.T) {
	f := func(seed uint64) bool {
		pop := Generate(DefaultConfig("q", 800, 300, seed))
		return pop.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueVisitorsPerLocation(t *testing.T) {
	pop := genSmall(t, 13)
	unique := pop.UniqueVisitorsPerLocation()
	counts := pop.VisitCountsPerLocation()
	var sumU, sumC int64
	for l := range unique {
		if unique[l] > counts[l] {
			t.Fatalf("location %d: unique %d > visits %d", l, unique[l], counts[l])
		}
		sumU += int64(unique[l])
		sumC += int64(counts[l])
	}
	if sumC != int64(pop.NumVisits()) {
		t.Fatalf("visit counts sum %d != %d", sumC, pop.NumVisits())
	}
	if sumU == 0 {
		t.Fatal("no unique visitors recorded")
	}
}

func TestVisitIndexByLocation(t *testing.T) {
	pop := genSmall(t, 17)
	offsets, order := pop.VisitIndexByLocation()
	if len(order) != pop.NumVisits() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, pop.NumVisits())
	for l := 0; l < pop.NumLocations(); l++ {
		for _, vi := range order[offsets[l]:offsets[l+1]] {
			if seen[vi] {
				t.Fatalf("visit %d indexed twice", vi)
			}
			seen[vi] = true
			if int(pop.Visits[vi].Loc) != l {
				t.Fatalf("visit %d filed under location %d but is at %d", vi, l, pop.Visits[vi].Loc)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("visit %d missing from index", i)
		}
	}
}

func TestTableIPresets(t *testing.T) {
	if len(TableIPresets) != 8 {
		t.Fatalf("want 8 Table I rows, got %d", len(TableIPresets))
	}
	us := TableIPresets[0]
	if us.Name != "US" || us.People != 280397680 || us.Visits != 1541367574 || us.Locations != 71705723 {
		t.Fatalf("US preset corrupted: %+v", us)
	}
	// Average person degree of every preset should be near 5.5.
	for _, p := range TableIPresets {
		d := float64(p.Visits) / float64(p.People)
		if d < 5.0 || d > 6.0 {
			t.Fatalf("%s visits/people = %v, want ≈5.5", p.Name, d)
		}
	}
}

func TestStateFamily(t *testing.T) {
	fam := StateFamily()
	if len(fam) != 49 {
		t.Fatalf("state family size = %d, want 49 (48 contiguous + DC)", len(fam))
	}
	seen := map[string]bool{}
	for _, p := range fam {
		if seen[p.Name] {
			t.Fatalf("duplicate state %s", p.Name)
		}
		seen[p.Name] = true
		if p.People <= 0 || p.Locations <= 0 || p.Visits <= 0 {
			t.Fatalf("degenerate preset %+v", p)
		}
	}
	// Table I states keep their exact values inside the family.
	for _, p := range fam {
		if p.Name == "CA" && p.Visits != 183858275 {
			t.Fatalf("CA family preset lost Table I visits: %+v", p)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("WY")
	if err != nil || p.People != 499514 {
		t.Fatalf("WY preset: %+v, %v", p, err)
	}
	if _, err := PresetByName("TX"); err != nil {
		t.Fatalf("state-family preset TX should resolve: %v", err)
	}
	if _, err := PresetByName("ZZ"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestScaledConfig(t *testing.T) {
	p, _ := PresetByName("IA")
	cfg := ScaledConfig(p, 1000, 42)
	if cfg.People != int(p.People/1000) {
		t.Fatalf("scaled people = %d", cfg.People)
	}
	if cfg.Locations != int(p.Locations/1000) {
		t.Fatalf("scaled locations = %d", cfg.Locations)
	}
	// Tiny states at huge scale get floored.
	cfg2 := ScaledConfig(p, 1<<40, 42)
	if cfg2.People < 100 || cfg2.Locations < 30 {
		t.Fatalf("floor not applied: %+v", cfg2)
	}
}

func TestGenerateState(t *testing.T) {
	pop, err := GenerateState("WY", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	if pop.Name != "WY" {
		t.Fatalf("name = %q", pop.Name)
	}
	want := int(499514 / 100)
	if math.Abs(float64(pop.NumPersons()-want)) > 1 {
		t.Fatalf("WY 1:100 persons = %d, want %d", pop.NumPersons(), want)
	}
	if _, err := GenerateState("nope", 10, 1); err == nil {
		t.Fatal("unknown state should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pop := genSmall(t, 19)
	path := filepath.Join(t.TempDir(), "pop.gob.gz")
	if err := pop.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPersons() != pop.NumPersons() || got.NumVisits() != pop.NumVisits() {
		t.Fatalf("round trip size mismatch")
	}
	for i := range pop.Visits {
		if pop.Visits[i] != got.Visits[i] {
			t.Fatalf("visit %d mismatch after round trip", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAliasSamplerDistribution(t *testing.T) {
	ids := []int32{0, 1, 2}
	ws := []float64{1, 2, 7}
	a := newAliasSampler(ids, ws)
	s := xrand.NewStream(23)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[a.sample(s)]++
	}
	for i, w := range ws {
		want := w / 10 * float64(n)
		if math.Abs(float64(counts[i])-want)/want > 0.05 {
			t.Fatalf("id %d sampled %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasSamplerDegenerate(t *testing.T) {
	if newAliasSampler(nil, nil) != nil {
		t.Fatal("empty sampler should be nil")
	}
	a := newAliasSampler([]int32{5, 6}, []float64{0, 0})
	s := xrand.NewStream(1)
	saw := map[int32]bool{}
	for i := 0; i < 100; i++ {
		saw[a.sample(s)] = true
	}
	if !saw[5] || !saw[6] {
		t.Fatal("zero-weight sampler should fall back to uniform")
	}
}

func TestLocationTypeString(t *testing.T) {
	if Home.String() != "home" || School.String() != "school" {
		t.Fatal("type names wrong")
	}
	if LocationType(200).String() == "" {
		t.Fatal("unknown type should still format")
	}
}

func BenchmarkGenerate50k(b *testing.B) {
	cfg := DefaultConfig("bench", 50000, 12000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := Generate(cfg)
		if pop.NumVisits() == 0 {
			b.Fatal("no visits")
		}
	}
}
