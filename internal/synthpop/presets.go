package synthpop

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// Preset captures the Table I row for one region: the full-scale sizes of
// the paper's census-derived populations (2009 American Community Survey).
type Preset struct {
	Name      string
	Visits    int64
	People    int64
	Locations int64
}

// TableIPresets are the eight regions of Table I, full scale.
var TableIPresets = []Preset{
	{"US", 1541367574, 280397680, 71705723},
	{"CA", 183858275, 33588339, 7178611},
	{"NY", 98350857, 17910467, 4719921},
	{"MI", 52534554, 9541140, 2490068},
	{"NC", 47130620, 8541564, 2289167},
	{"IA", 15280731, 2766716, 748239},
	{"AR", 14803256, 2685280, 739507},
	{"WY", 2756411, 499514, 144369},
}

// PresetByName returns the Table I or state-family preset with the given
// name, or an error listing valid names.
func PresetByName(name string) (Preset, error) {
	for _, p := range TableIPresets {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range StateFamily() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range TableIPresets {
		names = append(names, p.Name)
	}
	return Preset{}, fmt.Errorf("synthpop: unknown preset %q (Table I presets: %v; plus 48 contiguous states and DC)", name, names)
}

// statePeople2009 approximates the 2009 population (thousands) of the 48
// contiguous states and DC, used only to build the Figure 5 state family.
// Table I states use their exact people counts instead.
var statePeople2009 = map[string]int64{
	"AL": 4710, "AZ": 6595, "AR": 2685, "CA": 33588, "CO": 5025,
	"CT": 3518, "DE": 885, "DC": 600, "FL": 18538, "GA": 9829,
	"ID": 1546, "IL": 12910, "IN": 6423, "IA": 2767, "KS": 2819,
	"KY": 4314, "LA": 4492, "ME": 1318, "MD": 5699, "MA": 6594,
	"MI": 9541, "MN": 5266, "MS": 2952, "MO": 5988, "MT": 975,
	"NE": 1797, "NV": 2643, "NH": 1325, "NJ": 8708, "NM": 2010,
	"NY": 17910, "NC": 8542, "ND": 647, "OH": 11543, "OK": 3687,
	"OR": 3826, "PA": 12605, "RI": 1053, "SC": 4561, "SD": 812,
	"TN": 6296, "TX": 24782, "UT": 2785, "VT": 622, "VA": 7883,
	"WA": 6664, "WV": 1820, "WI": 5655, "WY": 500,
}

// StateFamily returns presets for the 48 contiguous states and DC
// (Figure 5 plots one dot per state). For states not in Table I, the
// location and visit counts are derived using the US-wide ratios
// (locations ≈ people/3.91, visits ≈ 5.5·people).
func StateFamily() []Preset {
	exact := make(map[string]Preset)
	for _, p := range TableIPresets {
		if p.Name != "US" {
			exact[p.Name] = p
		}
	}
	names := make([]string, 0, len(statePeople2009))
	for n := range statePeople2009 {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Preset, 0, len(names))
	for _, n := range names {
		if p, ok := exact[n]; ok {
			out = append(out, p)
			continue
		}
		people := statePeople2009[n] * 1000
		out = append(out, Preset{
			Name:      n,
			People:    people,
			Locations: people * 71705723 / 280397680,
			Visits:    people * 11 / 2,
		})
	}
	return out
}

// ScaledConfig converts a full-scale preset into a generation Config at
// scale divisor 1:scale, preserving the people:locations ratio. The seed
// is derived from the preset name so that different states differ.
func ScaledConfig(p Preset, scale int, seed uint64) Config {
	if scale < 1 {
		scale = 1
	}
	people := int(p.People) / scale
	if people < 100 {
		people = 100
	}
	locations := int(p.Locations) / scale
	if locations < 30 {
		locations = 30
	}
	h := seed
	for _, c := range p.Name {
		h = h*131 + uint64(c)
	}
	return DefaultConfig(p.Name, people, locations, h)
}

// GenerateState is shorthand: preset lookup + scaling + generation.
func GenerateState(name string, scale int, seed uint64) (*Population, error) {
	p, err := PresetByName(name)
	if err != nil {
		return nil, err
	}
	pop := Generate(ScaledConfig(p, scale, seed))
	return pop, nil
}

// Save writes the population to path in gzip-compressed gob encoding.
func (p *Population) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("synthpop: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		return fmt.Errorf("synthpop: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("synthpop: close gzip: %w", err)
	}
	return f.Close()
}

// Load reads a population written by Save.
func Load(path string) (*Population, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("synthpop: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("synthpop: gzip: %w", err)
	}
	var p Population
	if err := gob.NewDecoder(zr).Decode(&p); err != nil && err != io.EOF {
		return nil, fmt.Errorf("synthpop: decode: %w", err)
	}
	return &p, nil
}
