// Package synthpop generates synthetic person–location populations that
// stand in for the proprietary census-derived social contact networks of
// Barrett et al. used by the paper (Section II-A, Table I).
//
// The paper's phenomena are all driven by distributional properties of the
// bipartite visit graph, so the generator is calibrated to the statistics
// the paper reports rather than to geography:
//
//   - person out-degree (visits per person): mean ≈ 5.5, σ ≈ 2.6;
//   - location in-degree: heavy-tailed (power law with exponent β > 1),
//     mean ≈ visits/locations ≈ 21.5 for the US data;
//   - locations subdivided into sublocations (rooms); people only interact
//     within a sublocation, the property splitLoc exploits.
//
// Heavy tails arise the same way they do in real activity data: large
// facilities (schools, malls, workplaces) draw visitors in proportion to
// their capacity, and capacities follow a Pareto distribution.
//
// State presets reproduce Table I of the paper at a configurable scale
// divisor, and a full 48-state + DC family supports Figure 5.
package synthpop

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// LocationType classifies locations; the type determines capacity
// distribution, room size, and which schedule slots may visit it.
type LocationType uint8

// Location types.
const (
	Home LocationType = iota
	Work
	School
	Shop
	Other
	numLocationTypes
)

var locationTypeNames = [...]string{"home", "work", "school", "shop", "other"}

func (t LocationType) String() string {
	if int(t) < len(locationTypeNames) {
		return locationTypeNames[t]
	}
	return fmt.Sprintf("LocationType(%d)", uint8(t))
}

// AgeGroup classifies people into schedule archetypes.
type AgeGroup uint8

// Age groups.
const (
	Child  AgeGroup = iota // attends school
	Adult                  // attends work
	Senior                 // home + errands
	numAgeGroups
)

// Location is a place people visit. Interactions only occur between people
// in the same sublocation at overlapping times.
type Location struct {
	Type    LocationType
	NumSub  int32 // number of sublocations (rooms); >= 1
	Weight  int32 // capacity used for preferential attachment during synthesis
	Origin  int32 // original location id before splitLoc, or own id
	SubBase int32 // first original sublocation index covered by this (split) location
}

// Person is an agent.
type Person struct {
	Age  AgeGroup
	Home int32 // home location id
}

// Visit is one edge of the bipartite graph: person p is at location l,
// sublocation s, during [Start, End) minutes-of-day.
type Visit struct {
	Person int32
	Loc    int32
	Sub    int32
	Start  int16
	End    int16
}

// Duration returns the visit length in minutes.
func (v Visit) Duration() int { return int(v.End - v.Start) }

// Population is a synthetic population: the input of every experiment.
type Population struct {
	Name      string
	Persons   []Person
	Locations []Location
	// Visits is the normative daily schedule, sorted by person id.
	// PersonVisitOffsets[p] .. PersonVisitOffsets[p+1] index p's visits.
	Visits             []Visit
	PersonVisitOffsets []int32
}

// NumPersons returns the number of people.
func (p *Population) NumPersons() int { return len(p.Persons) }

// NumLocations returns the number of locations.
func (p *Population) NumLocations() int { return len(p.Locations) }

// NumVisits returns the number of daily visits.
func (p *Population) NumVisits() int { return len(p.Visits) }

// PersonVisits returns the visits of person p (aliases internal storage).
func (p *Population) PersonVisits(person int32) []Visit {
	return p.Visits[p.PersonVisitOffsets[person]:p.PersonVisitOffsets[person+1]]
}

// VisitCountsPerLocation returns, for each location, the number of daily
// visits it receives. Twice this number is the location's arrive/depart
// event count, the X input of the static load model (Section III-A).
func (p *Population) VisitCountsPerLocation() []int32 {
	counts := make([]int32, len(p.Locations))
	for _, v := range p.Visits {
		counts[v.Loc]++
	}
	return counts
}

// UniqueVisitorsPerLocation returns each location's in-degree: the number
// of distinct persons visiting it (Figure 3(c)).
func (p *Population) UniqueVisitorsPerLocation() []int32 {
	type pair struct{ loc, person int32 }
	pairs := make([]pair, len(p.Visits))
	for i, v := range p.Visits {
		pairs[i] = pair{v.Loc, v.Person}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].loc != pairs[j].loc {
			return pairs[i].loc < pairs[j].loc
		}
		return pairs[i].person < pairs[j].person
	})
	counts := make([]int32, len(p.Locations))
	for i, pr := range pairs {
		if i > 0 && pairs[i-1] == pr {
			continue
		}
		counts[pr.loc]++
	}
	return counts
}

// VisitIndexByLocation returns visit indices grouped by location:
// offsets[l]..offsets[l+1] index into order, which lists indices into
// p.Visits. The engine uses this to route visits to location managers.
func (p *Population) VisitIndexByLocation() (offsets []int32, order []int32) {
	counts := make([]int32, len(p.Locations)+1)
	for _, v := range p.Visits {
		counts[v.Loc+1]++
	}
	offsets = make([]int32, len(p.Locations)+1)
	for l := 0; l < len(p.Locations); l++ {
		offsets[l+1] = offsets[l] + counts[l+1]
	}
	order = make([]int32, len(p.Visits))
	cursor := append([]int32(nil), offsets[:len(p.Locations)]...)
	for i, v := range p.Visits {
		order[cursor[v.Loc]] = int32(i)
		cursor[v.Loc]++
	}
	return offsets, order
}

// Validate checks structural invariants of the population.
func (p *Population) Validate() error {
	if len(p.PersonVisitOffsets) != len(p.Persons)+1 {
		return fmt.Errorf("synthpop: offsets length %d, want %d", len(p.PersonVisitOffsets), len(p.Persons)+1)
	}
	if int(p.PersonVisitOffsets[len(p.Persons)]) != len(p.Visits) {
		return fmt.Errorf("synthpop: final offset %d, want %d", p.PersonVisitOffsets[len(p.Persons)], len(p.Visits))
	}
	for i := range p.Persons {
		if p.PersonVisitOffsets[i] > p.PersonVisitOffsets[i+1] {
			return fmt.Errorf("synthpop: offsets not monotone at person %d", i)
		}
		home := p.Persons[i].Home
		if home < 0 || int(home) >= len(p.Locations) {
			return fmt.Errorf("synthpop: person %d home %d out of range", i, home)
		}
	}
	for i, v := range p.Visits {
		if v.Loc < 0 || int(v.Loc) >= len(p.Locations) {
			return fmt.Errorf("synthpop: visit %d location %d out of range", i, v.Loc)
		}
		if v.Person < 0 || int(v.Person) >= len(p.Persons) {
			return fmt.Errorf("synthpop: visit %d person %d out of range", i, v.Person)
		}
		loc := p.Locations[v.Loc]
		if v.Sub < 0 || v.Sub >= loc.NumSub {
			return fmt.Errorf("synthpop: visit %d sublocation %d out of range [0,%d)", i, v.Sub, loc.NumSub)
		}
		if v.Start < 0 || v.End > 24*60 || v.Start >= v.End {
			return fmt.Errorf("synthpop: visit %d has bad interval [%d,%d)", i, v.Start, v.End)
		}
		pv := p.PersonVisits(v.Person)
		_ = pv
	}
	for person := range p.Persons {
		for _, v := range p.PersonVisits(int32(person)) {
			if int(v.Person) != person {
				return fmt.Errorf("synthpop: person index broken at %d", person)
			}
		}
	}
	return nil
}

// Config parameterizes generation.
type Config struct {
	Name      string
	People    int
	Locations int
	Seed      uint64

	// HomeFraction is the fraction of locations that are homes.
	HomeFraction float64
	// ExtraVisitMean is the Poisson mean of errand (shop/other) visits per
	// person per day, tuned so total visits/person ≈ 5.5.
	ExtraVisitMean float64
	// TailAlpha is the Pareto tail exponent for non-home location
	// capacities; smaller = heavier tail.
	TailAlpha float64
}

// DefaultConfig returns a Config calibrated to the paper's statistics for
// the given person/location counts.
func DefaultConfig(name string, people, locations int, seed uint64) Config {
	return Config{
		Name:           name,
		People:         people,
		Locations:      locations,
		Seed:           seed,
		HomeFraction:   0.62,
		ExtraVisitMean: 2.75,
		TailAlpha:      1.35,
	}
}

// roomSize is the nominal sublocation capacity by location type.
var roomSize = [numLocationTypes]int32{
	Home:   8,
	Work:   18,
	School: 28,
	Shop:   35,
	Other:  25,
}

// Generate builds a deterministic synthetic population from cfg.
func Generate(cfg Config) *Population {
	if cfg.People <= 0 || cfg.Locations <= 0 {
		panic("synthpop: Generate requires positive People and Locations")
	}
	if cfg.HomeFraction <= 0 || cfg.HomeFraction >= 1 {
		cfg.HomeFraction = 0.62
	}
	if cfg.TailAlpha <= 1 {
		cfg.TailAlpha = 1.35
	}
	s := xrand.NewStream(cfg.Seed ^ 0x5ee0)

	numHomes := int(float64(cfg.Locations) * cfg.HomeFraction)
	if numHomes < 1 {
		numHomes = 1
	}
	rest := cfg.Locations - numHomes
	// Split the non-home locations: work-heavy mix reflecting activity data.
	numWork := rest * 45 / 100
	numSchool := rest * 12 / 100
	numShop := rest * 25 / 100
	numOther := rest - numWork - numSchool - numShop
	if rest > 0 && numWork == 0 {
		numWork = 1
	}
	if rest > 0 && numSchool == 0 {
		numSchool = 1
	}
	if rest > 0 && numShop == 0 {
		numShop = 1
	}

	locations := make([]Location, 0, cfg.Locations)
	// Largest plausible facility: no single venue draws more than ~5% of
	// the population (real activity data has stadiums, not black holes).
	// Without this cap, small-scale populations get single locations
	// attracting a third of the state, distorting the tail statistics.
	capLimit := float64(cfg.People) / 20
	if capLimit < 60 {
		capLimit = 60
	}
	addLocs := func(n int, t LocationType, capFn func() float64) {
		for i := 0; i < n; i++ {
			capacity := capFn()
			if capacity < 1 {
				capacity = 1
			}
			if t != Home && capacity > capLimit {
				capacity = capLimit
			}
			nsub := int32(math.Ceil(capacity / float64(roomSize[t])))
			if nsub < 1 {
				nsub = 1
			}
			id := int32(len(locations))
			locations = append(locations, Location{
				Type:   t,
				NumSub: nsub,
				Weight: int32(capacity),
				Origin: id,
			})
		}
	}
	addLocs(numHomes, Home, func() float64 { return 2 + s.Pareto(1, 3.2) }) // household sizes, light tail
	// Non-home capacities: Pareto tails produce the heavy-tailed in-degree
	// of Figure 3(c). Schools are mid-size but narrow; shops/other provide
	// the extreme tail (malls, stadiums); work is in between.
	addLocs(numWork, Work, func() float64 { return s.Pareto(4, cfg.TailAlpha+0.25) })
	addLocs(numSchool, School, func() float64 { return 40 * s.Pareto(1, 1.9) })
	addLocs(numShop, Shop, func() float64 { return 3 * s.Pareto(1, cfg.TailAlpha) })
	addLocs(numOther, Other, func() float64 { return 2 * s.Pareto(1, cfg.TailAlpha+0.1) })

	// Preferential samplers by type: probability proportional to capacity.
	samplers := make([]*aliasSampler, numLocationTypes)
	for t := LocationType(0); t < numLocationTypes; t++ {
		var ids []int32
		var ws []float64
		for id, loc := range locations {
			if loc.Type == t {
				ids = append(ids, int32(id))
				ws = append(ws, float64(loc.Weight))
			}
		}
		if len(ids) > 0 {
			samplers[t] = newAliasSampler(ids, ws)
		}
	}

	persons := make([]Person, cfg.People)
	var visits []Visit
	offsets := make([]int32, cfg.People+1)

	for pid := 0; pid < cfg.People; pid++ {
		ps := xrand.KeyedStream(cfg.Seed, 0xCAFE, uint64(pid))
		var age AgeGroup
		switch r := ps.Float64(); {
		case r < 0.24:
			age = Child
		case r < 0.86:
			age = Adult
		default:
			age = Senior
		}
		home := samplers[Home].sample(ps)
		persons[pid] = Person{Age: age, Home: home}

		addVisit := func(loc int32, start, end int16, persistentSub bool) {
			l := locations[loc]
			var sub int32
			if persistentSub {
				// Same room every day (household member, pupil, employee).
				sub = int32(xrand.KeyedIntn(int(l.NumSub), cfg.Seed, 0x5b, uint64(pid), uint64(loc)))
			} else {
				sub = int32(ps.Intn(int(l.NumSub)))
			}
			visits = append(visits, Visit{
				Person: int32(pid), Loc: loc, Sub: sub, Start: start, End: end,
			})
		}

		// Morning and evening at home.
		addVisit(home, 0, int16(7*60+ps.Intn(90)), true)
		eveStart := int16(17*60 + ps.Intn(4*60))
		addVisit(home, eveStart, 24*60, true)

		// Daytime anchor activity.
		switch age {
		case Child:
			school := samplers[School].sample(ps)
			addVisit(school, int16(8*60+ps.Intn(30)), int16(15*60+ps.Intn(60)), true)
		case Adult:
			if ps.Float64() < 0.82 { // employment rate
				work := samplers[Work].sample(ps)
				addVisit(work, int16(8*60+ps.Intn(90)), int16(16*60+ps.Intn(120)), true)
			}
		case Senior:
			// No anchor; more errands below.
		}

		// Errands: shop/other visits, heavy-tail attractors. The rate is
		// person-specific (mixed Poisson), which widens the visits-per-person
		// spread towards the paper's σ≈2.6 without changing the mean.
		mean := cfg.ExtraVisitMean
		if age == Senior {
			mean *= 1.4
		}
		mean *= 0.5 + 0.5*ps.ExpFloat64()
		for i, n := 0, ps.Poisson(mean); i < n; i++ {
			t := Shop
			if ps.Float64() < 0.35 {
				t = Other
			}
			if samplers[t] == nil {
				continue
			}
			loc := samplers[t].sample(ps)
			start := int16(9*60 + ps.Intn(10*60))
			dur := int16(20 + ps.Intn(100))
			end := start + dur
			if end > 24*60 {
				end = 24 * 60
			}
			if end <= start {
				continue
			}
			addVisit(loc, start, end, false)
		}
		offsets[pid+1] = int32(len(visits))
	}

	pop := &Population{
		Name:               cfg.Name,
		Persons:            persons,
		Locations:          locations,
		Visits:             visits,
		PersonVisitOffsets: offsets,
	}
	return pop
}

// aliasSampler draws ids with probability proportional to weight in O(1)
// (Walker's alias method).
type aliasSampler struct {
	ids   []int32
	prob  []float64
	alias []int32
}

func newAliasSampler(ids []int32, weights []float64) *aliasSampler {
	n := len(ids)
	if n == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("synthpop: negative sampler weight")
		}
		total += w
	}
	a := &aliasSampler{
		ids:   append([]int32(nil), ids...),
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	if total == 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = int32(i)
		}
		return a
	}
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

func (a *aliasSampler) sample(s *xrand.Stream) int32 {
	i := s.Intn(len(a.ids))
	if s.Float64() < a.prob[i] {
		return a.ids[i]
	}
	return a.ids[a.alias[i]]
}
