package disease

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a PTTS disease model from the text format used by the
// reproduction, a simplified version of EpiSimdemics' disease model files.
// The format is line based; '#' starts a comment. Example:
//
//	model flu
//	transmissibility 4.5e-5
//	treatment vaccinated susceptibility 0.3 infectivity 0.5
//
//	state susceptible
//	  susceptibility 1.0
//	  dwell forever
//
//	state latent
//	  dwell uniform 1 3
//	  next infectious 1.0
//
//	state infectious
//	  infectivity 1.0
//	  dwell fixed 1
//	  next symptomatic 0.66
//	  next asymptomatic 0.34
//	  next[vaccinated] symptomatic 0.25
//	  next[vaccinated] asymptomatic 0.75
//
//	state symptomatic
//	  infectivity 1.5
//	  dwell uniform 3 6
//	  next recovered 1.0
//
//	state asymptomatic
//	  infectivity 0.5
//	  dwell geometric 2 2
//	  next recovered 1.0
//
//	state recovered
//	  dwell forever
//
//	entry susceptible
//	infect latent
//
// State names may be referenced before their "state" block appears.
func Parse(r io.Reader) (*Model, error) {
	m := &Model{
		Treatments: []Treatment{{Name: "none", SusceptibilityMul: 1, InfectivityMul: 1}},
	}
	// Forward references: states are interned on first mention.
	intern := func(name string) StateID {
		if m.index == nil {
			m.index = map[string]StateID{}
		}
		if id, ok := m.index[name]; ok {
			return id
		}
		id := StateID(len(m.States))
		if len(m.States) >= 255 {
			panic("disease: too many states")
		}
		m.States = append(m.States, State{Name: name})
		m.index[name] = id
		return id
	}

	type pendingNext struct {
		state     StateID
		treatment string
		target    string
		prob      float64
		line      int
	}
	var nexts []pendingNext
	var entryName, infectName string
	cur := -1 // current state block, -1 = header

	sc := bufio.NewScanner(r)
	lineNo := 0
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("disease: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	parseFloat := func(tok string) (float64, error) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, fail("bad number %q", tok)
		}
		return v, nil
	}
	parseInt := func(tok string) (int, error) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return 0, fail("bad integer %q", tok)
		}
		return v, nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		switch {
		case key == "model":
			if len(fields) != 2 {
				return nil, fail("model needs one name")
			}
			m.Name = fields[1]
		case key == "transmissibility":
			if len(fields) != 2 {
				return nil, fail("transmissibility needs one value")
			}
			v, err := parseFloat(fields[1])
			if err != nil {
				return nil, err
			}
			m.Transmissibility = v
		case key == "treatment":
			// treatment NAME susceptibility X infectivity Y
			if len(fields) != 6 || fields[2] != "susceptibility" || fields[4] != "infectivity" {
				return nil, fail("treatment syntax: treatment NAME susceptibility X infectivity Y")
			}
			sus, err := parseFloat(fields[3])
			if err != nil {
				return nil, err
			}
			inf, err := parseFloat(fields[5])
			if err != nil {
				return nil, err
			}
			m.Treatments = append(m.Treatments, Treatment{
				Name: fields[1], SusceptibilityMul: sus, InfectivityMul: inf,
			})
		case key == "state":
			if len(fields) != 2 {
				return nil, fail("state needs one name")
			}
			cur = int(intern(fields[1]))
		case key == "susceptibility":
			if cur < 0 {
				return nil, fail("susceptibility outside state block")
			}
			v, err := parseFloat(fields[1])
			if err != nil {
				return nil, err
			}
			m.States[cur].Susceptibility = v
		case key == "infectivity":
			if cur < 0 {
				return nil, fail("infectivity outside state block")
			}
			v, err := parseFloat(fields[1])
			if err != nil {
				return nil, err
			}
			m.States[cur].Infectivity = v
		case key == "dwell":
			if cur < 0 {
				return nil, fail("dwell outside state block")
			}
			if len(fields) < 2 {
				return nil, fail("dwell needs a kind")
			}
			switch fields[1] {
			case "forever":
				m.States[cur].Dwell = Dwell{Kind: DwellForever}
			case "fixed":
				if len(fields) != 3 {
					return nil, fail("dwell fixed needs one day count")
				}
				a, err := parseInt(fields[2])
				if err != nil {
					return nil, err
				}
				m.States[cur].Dwell = Dwell{Kind: DwellFixed, A: a}
			case "uniform":
				if len(fields) != 4 {
					return nil, fail("dwell uniform needs lo and hi")
				}
				a, err := parseInt(fields[2])
				if err != nil {
					return nil, err
				}
				b, err := parseInt(fields[3])
				if err != nil {
					return nil, err
				}
				if b < a {
					return nil, fail("dwell uniform hi < lo")
				}
				m.States[cur].Dwell = Dwell{Kind: DwellUniform, A: a, B: b}
			case "geometric":
				if len(fields) != 4 {
					return nil, fail("dwell geometric needs min and mean-extra")
				}
				a, err := parseInt(fields[2])
				if err != nil {
					return nil, err
				}
				b, err := parseInt(fields[3])
				if err != nil {
					return nil, err
				}
				if b < 1 {
					return nil, fail("dwell geometric mean-extra must be >= 1")
				}
				m.States[cur].Dwell = Dwell{Kind: DwellGeometric, A: a, B: b}
			default:
				return nil, fail("unknown dwell kind %q", fields[1])
			}
		case key == "next" || strings.HasPrefix(key, "next["):
			if cur < 0 {
				return nil, fail("next outside state block")
			}
			if len(fields) != 3 {
				return nil, fail("next syntax: next[TREATMENT] STATE PROB")
			}
			treatment := "none"
			if strings.HasPrefix(key, "next[") {
				if !strings.HasSuffix(key, "]") {
					return nil, fail("unterminated treatment selector %q", key)
				}
				treatment = key[len("next[") : len(key)-1]
			}
			p, err := parseFloat(fields[2])
			if err != nil {
				return nil, err
			}
			nexts = append(nexts, pendingNext{
				state: StateID(cur), treatment: treatment,
				target: fields[1], prob: p, line: lineNo,
			})
		case key == "entry":
			if len(fields) != 2 {
				return nil, fail("entry needs one state name")
			}
			entryName = fields[1]
		case key == "infect":
			if len(fields) != 2 {
				return nil, fail("infect needs one state name")
			}
			infectName = fields[1]
		default:
			return nil, fail("unknown directive %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("disease: read: %w", err)
	}

	// Resolve pending transitions now that all states and treatments exist.
	for _, pn := range nexts {
		tid, ok := m.TreatmentByName(pn.treatment)
		if !ok {
			return nil, fmt.Errorf("disease: line %d: unknown treatment %q", pn.line, pn.treatment)
		}
		target := intern(pn.target)
		st := &m.States[pn.state]
		for len(st.Transitions) <= int(tid) {
			st.Transitions = append(st.Transitions, nil)
		}
		st.Transitions[tid] = append(st.Transitions[tid], Transition{Prob: pn.prob, Next: target})
	}

	if entryName == "" {
		return nil, fmt.Errorf("disease: missing entry directive")
	}
	if infectName == "" {
		return nil, fmt.Errorf("disease: missing infect directive")
	}
	entry, ok := m.StateByName(entryName)
	if !ok {
		return nil, fmt.Errorf("disease: entry state %q never defined", entryName)
	}
	infect, ok := m.StateByName(infectName)
	if !ok {
		return nil, fmt.Errorf("disease: infect state %q never defined", infectName)
	}
	m.Entry = entry
	m.InfectTarget = infect
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Model, error) { return Parse(strings.NewReader(s)) }

// Format renders the model back into the Parse text format, useful for
// round-trip tests and for dumping built-in models.
func (m *Model) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s\n", m.Name)
	fmt.Fprintf(&b, "transmissibility %g\n", m.Transmissibility)
	for _, t := range m.Treatments[1:] {
		fmt.Fprintf(&b, "treatment %s susceptibility %g infectivity %g\n",
			t.Name, t.SusceptibilityMul, t.InfectivityMul)
	}
	for _, s := range m.States {
		fmt.Fprintf(&b, "\nstate %s\n", s.Name)
		if s.Susceptibility != 0 {
			fmt.Fprintf(&b, "  susceptibility %g\n", s.Susceptibility)
		}
		if s.Infectivity != 0 {
			fmt.Fprintf(&b, "  infectivity %g\n", s.Infectivity)
		}
		switch s.Dwell.Kind {
		case DwellForever:
			fmt.Fprintf(&b, "  dwell forever\n")
		case DwellFixed:
			fmt.Fprintf(&b, "  dwell fixed %d\n", s.Dwell.A)
		case DwellUniform:
			fmt.Fprintf(&b, "  dwell uniform %d %d\n", s.Dwell.A, s.Dwell.B)
		case DwellGeometric:
			fmt.Fprintf(&b, "  dwell geometric %d %d\n", s.Dwell.A, s.Dwell.B)
		}
		for ti, set := range s.Transitions {
			for _, tr := range set {
				if ti == 0 {
					fmt.Fprintf(&b, "  next %s %g\n", m.States[tr.Next].Name, tr.Prob)
				} else {
					fmt.Fprintf(&b, "  next[%s] %s %g\n", m.Treatments[ti].Name, m.States[tr.Next].Name, tr.Prob)
				}
			}
		}
	}
	fmt.Fprintf(&b, "\nentry %s\n", m.States[m.Entry].Name)
	fmt.Fprintf(&b, "infect %s\n", m.States[m.InfectTarget].Name)
	return b.String()
}
