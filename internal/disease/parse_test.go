package disease

import (
	"strings"
	"testing"
)

const fluText = `
# influenza-like illness with vaccination
model flu
transmissibility 4.5e-5
treatment vaccinated susceptibility 0.3 infectivity 0.5

state susceptible
  susceptibility 1.0
  dwell forever

state latent
  dwell uniform 1 3
  next infectious 1.0

state infectious
  infectivity 1.0
  dwell fixed 1
  next symptomatic 0.66
  next asymptomatic 0.34
  next[vaccinated] symptomatic 0.25
  next[vaccinated] asymptomatic 0.75

state symptomatic
  infectivity 1.5
  dwell uniform 3 6
  next recovered 1.0

state asymptomatic
  infectivity 0.5
  dwell geometric 2 2
  next recovered 1.0

state recovered
  dwell forever

entry susceptible
infect latent
`

func TestParseFlu(t *testing.T) {
	m, err := ParseString(fluText)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "flu" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.Transmissibility != 4.5e-5 {
		t.Fatalf("tau = %v", m.Transmissibility)
	}
	if m.NumStates() != 6 {
		t.Fatalf("states = %d", m.NumStates())
	}
	if len(m.Treatments) != 2 || m.Treatments[1].Name != "vaccinated" {
		t.Fatalf("treatments = %+v", m.Treatments)
	}
	inf, _ := m.StateByName("infectious")
	if len(m.States[inf].Transitions) != 2 {
		t.Fatalf("infectious transition sets = %d", len(m.States[inf].Transitions))
	}
	if m.States[inf].Transitions[1][0].Prob != 0.25 {
		t.Fatal("vaccinated transition probability wrong")
	}
	asym, _ := m.StateByName("asymptomatic")
	if m.States[asym].Dwell.Kind != DwellGeometric {
		t.Fatal("geometric dwell lost")
	}
}

func TestParseForwardReferences(t *testing.T) {
	// "next recovered" appears before "state recovered" in fluText; already
	// covered, but also check entry/infect referencing late states.
	m, err := ParseString(fluText)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateName(m.Entry) != "susceptible" || m.StateName(m.InfectTarget) != "latent" {
		t.Fatal("entry/infect resolution wrong")
	}
}

func TestParseRoundTrip(t *testing.T) {
	m, err := ParseString(fluText)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseString(m.Format())
	if err != nil {
		t.Fatalf("re-parse of Format output failed: %v\n%s", err, m.Format())
	}
	if m2.NumStates() != m.NumStates() || m2.Transmissibility != m.Transmissibility {
		t.Fatal("round trip changed the model")
	}
	for i := range m.States {
		a, b := m.States[i], m2.States[i]
		if a.Name != b.Name || a.Dwell != b.Dwell || a.Infectivity != b.Infectivity {
			t.Fatalf("state %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestDefaultModelFormatsAndReparses(t *testing.T) {
	m := Default()
	m2, err := ParseString(m.Format())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing entry":      strings.Replace(fluText, "entry susceptible", "", 1),
		"missing infect":     strings.Replace(fluText, "infect latent", "", 1),
		"bad directive":      fluText + "\nbogus directive\n",
		"bad number":         strings.Replace(fluText, "transmissibility 4.5e-5", "transmissibility xyz", 1),
		"bad dwell":          strings.Replace(fluText, "dwell fixed 1", "dwell sometimes", 1),
		"dwell out of block": "dwell forever\n" + fluText,
		"unknown treatment":  strings.Replace(fluText, "next[vaccinated] symptomatic 0.25", "next[magic] symptomatic 0.25", 1),
		"probability sum":    strings.Replace(fluText, "next symptomatic 0.66", "next symptomatic 0.5", 1),
		"uniform hi<lo":      strings.Replace(fluText, "dwell uniform 1 3", "dwell uniform 3 1", 1),
		"treatment syntax":   strings.Replace(fluText, "treatment vaccinated susceptibility 0.3 infectivity 0.5", "treatment vaccinated 0.3", 1),
	}
	for name, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	text := "# leading comment\n\n" + fluText + "\n# trailing\n"
	if _, err := ParseString(text); err != nil {
		t.Fatal(err)
	}
}
