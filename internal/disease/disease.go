// Package disease implements the probabilistic timed transition system
// (PTTS) that EpiSimdemics uses to track each person's health state
// (Section II-A): a finite state machine where every state has a dwell-time
// distribution and sets of probabilistic transitions, with different
// transition sets depending on the treatment a person received (e.g.
// vaccination). It also provides the transmission function evaluated for
// each susceptible–infectious co-presence computed by the location DES.
//
// Models can be built in code or parsed from a small text format
// (see Parse) mirroring EpiSimdemics' disease model files.
package disease

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// StateID indexes a state within a Model.
type StateID uint8

// TreatmentID indexes a treatment within a Model. Treatment 0 is always
// "none", the untreated baseline.
type TreatmentID uint8

// DwellKind selects a dwell-time distribution family.
type DwellKind uint8

// Dwell-time distribution kinds.
const (
	// DwellForever marks absorbing states (susceptible, recovered, dead).
	DwellForever DwellKind = iota
	// DwellFixed stays exactly A days.
	DwellFixed
	// DwellUniform stays uniformly A..B days inclusive.
	DwellUniform
	// DwellGeometric stays k >= A days with success probability 1/B per
	// day after the minimum (mean A + B - 1).
	DwellGeometric
)

// Dwell is a dwell-time distribution over whole simulation days.
type Dwell struct {
	Kind DwellKind
	A, B int
}

// Sample draws a dwell time in days, keyed so that the same (person, state,
// entry day) always dwells equally long regardless of execution order.
// Absorbing states return a very large number.
func (d Dwell) Sample(keys ...uint64) int {
	switch d.Kind {
	case DwellForever:
		return math.MaxInt32
	case DwellFixed:
		return d.A
	case DwellUniform:
		if d.B <= d.A {
			return d.A
		}
		return d.A + xrand.KeyedIntn(d.B-d.A+1, keys...)
	case DwellGeometric:
		days := d.A
		h := xrand.Hash(keys...)
		for i := 0; i < 1024; i++ { // hard cap keeps draws bounded
			h = xrand.Hash(h)
			if float64(h>>11)/(1<<53) < 1/float64(d.B) {
				break
			}
			days++
		}
		return days
	default:
		panic(fmt.Sprintf("disease: unknown dwell kind %d", d.Kind))
	}
}

// Mean returns the expected dwell in days (infinite for absorbing states).
func (d Dwell) Mean() float64 {
	switch d.Kind {
	case DwellForever:
		return math.Inf(1)
	case DwellFixed:
		return float64(d.A)
	case DwellUniform:
		return float64(d.A+d.B) / 2
	case DwellGeometric:
		return float64(d.A) + float64(d.B) - 1
	default:
		return 0
	}
}

// Transition is one probabilistic edge of the PTTS.
type Transition struct {
	Prob float64
	Next StateID
}

// State is one PTTS node.
type State struct {
	Name string
	// Infectivity scales how strongly a person in this state infects
	// others; 0 means not infectious.
	Infectivity float64
	// Susceptibility scales how easily a person in this state is infected;
	// 0 means immune / already infected.
	Susceptibility float64
	Dwell          Dwell
	// Transitions[t] is the transition set under treatment t. A state with
	// an empty transition set for every treatment must be absorbing.
	Transitions [][]Transition
}

// Treatment modifies a person's interaction with the disease.
type Treatment struct {
	Name string
	// SusceptibilityMul and InfectivityMul scale the person's state values;
	// e.g. a vaccine with SusceptibilityMul 0.3 blocks 70% of exposure.
	SusceptibilityMul float64
	InfectivityMul    float64
}

// Model is a complete PTTS disease model.
type Model struct {
	Name string
	// Transmissibility is τ in the transmission function — calibrated so
	// that a season takes the paper's 120–180 day horizon.
	Transmissibility float64
	States           []State
	Treatments       []Treatment
	// Entry is the initial healthy state (usually "susceptible").
	Entry StateID
	// InfectTarget is the state a successful transmission moves a person
	// into (usually "latent": the latent period is what lets EpiSimdemics
	// process a whole day in parallel, Section II-B).
	InfectTarget StateID

	index map[string]StateID
}

// StateByName resolves a state name.
func (m *Model) StateByName(name string) (StateID, bool) {
	id, ok := m.index[name]
	return id, ok
}

// StateName returns the name of state id.
func (m *Model) StateName(id StateID) string { return m.States[id].Name }

// NumStates returns the number of PTTS states.
func (m *Model) NumStates() int { return len(m.States) }

// TreatmentByName resolves a treatment name.
func (m *Model) TreatmentByName(name string) (TreatmentID, bool) {
	for i, t := range m.Treatments {
		if t.Name == name {
			return TreatmentID(i), true
		}
	}
	return 0, false
}

// Infectivity returns the effective infectivity of a person in state s
// under treatment t.
func (m *Model) Infectivity(s StateID, t TreatmentID) float64 {
	return m.States[s].Infectivity * m.Treatments[t].InfectivityMul
}

// Susceptibility returns the effective susceptibility of a person in state
// s under treatment t.
func (m *Model) Susceptibility(s StateID, t TreatmentID) float64 {
	return m.States[s].Susceptibility * m.Treatments[t].SusceptibilityMul
}

// IsInfectious reports whether state s can infect others (untreated).
func (m *Model) IsInfectious(s StateID) bool { return m.States[s].Infectivity > 0 }

// IsSusceptible reports whether state s can be infected (untreated).
func (m *Model) IsSusceptible(s StateID) bool { return m.States[s].Susceptibility > 0 }

// SampleDwell draws the dwell time for entering state s, keyed by the
// person id and entry day for partition invariance.
func (m *Model) SampleDwell(s StateID, person uint64, day uint64) int {
	return m.States[s].Dwell.Sample(0xD3e11, person, uint64(s), day)
}

// NextState samples the successor of state s under treatment t. The bool
// is false if s is absorbing (no transitions).
func (m *Model) NextState(s StateID, t TreatmentID, person uint64, day uint64) (StateID, bool) {
	trs := m.States[s].Transitions
	var set []Transition
	if int(t) < len(trs) && len(trs[t]) > 0 {
		set = trs[t]
	} else if len(trs) > 0 {
		set = trs[0] // fall back to the untreated set
	}
	if len(set) == 0 {
		return s, false
	}
	u := xrand.KeyedFloat64(0x77a4, person, uint64(s), uint64(t), day)
	var cum float64
	for _, tr := range set {
		cum += tr.Prob
		if u < cum {
			return tr.Next, true
		}
	}
	return set[len(set)-1].Next, true
}

// TransmissionProb returns the probability that an infectious person with
// effective infectivity inf infects a susceptible person with effective
// susceptibility sus during durMin minutes of co-presence in the same
// sublocation:
//
//	p = 1 - exp(-τ · inf · sus · durMin)
//
// This is the standard EpiSimdemics/Eubank contact-process transmission
// function (references [1], [11] of the paper).
func (m *Model) TransmissionProb(durMin int, inf, sus float64) float64 {
	if durMin <= 0 || inf <= 0 || sus <= 0 {
		return 0
	}
	return 1 - math.Exp(-m.Transmissibility*inf*sus*float64(durMin))
}

// Validate checks the model's structural invariants: transition
// probabilities sum to ≈1 per non-absorbing (state, treatment), targets in
// range, entry/infect states sane, and treatment 0 being the identity
// "none" treatment.
func (m *Model) Validate() error {
	if len(m.States) == 0 {
		return fmt.Errorf("disease: model %q has no states", m.Name)
	}
	if len(m.Treatments) == 0 || m.Treatments[0].Name != "none" {
		return fmt.Errorf("disease: treatment 0 must be \"none\"")
	}
	if m.Transmissibility <= 0 {
		return fmt.Errorf("disease: non-positive transmissibility")
	}
	if int(m.Entry) >= len(m.States) || int(m.InfectTarget) >= len(m.States) {
		return fmt.Errorf("disease: entry/infect state out of range")
	}
	if !m.IsSusceptible(m.Entry) {
		return fmt.Errorf("disease: entry state %q is not susceptible", m.StateName(m.Entry))
	}
	if m.Entry == m.InfectTarget {
		return fmt.Errorf("disease: infect target equals entry state")
	}
	for si, st := range m.States {
		anyTransitions := false
		for ti, set := range st.Transitions {
			if len(set) == 0 {
				continue
			}
			anyTransitions = true
			var sum float64
			for _, tr := range set {
				if tr.Prob < 0 || tr.Prob > 1 {
					return fmt.Errorf("disease: state %q treatment %d has probability %v", st.Name, ti, tr.Prob)
				}
				if int(tr.Next) >= len(m.States) {
					return fmt.Errorf("disease: state %q transition to unknown state %d", st.Name, tr.Next)
				}
				sum += tr.Prob
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("disease: state %q treatment %d probabilities sum to %v", st.Name, ti, sum)
			}
		}
		if anyTransitions && st.Dwell.Kind == DwellForever {
			return fmt.Errorf("disease: state %q dwells forever but has transitions", st.Name)
		}
		if !anyTransitions && st.Dwell.Kind != DwellForever {
			return fmt.Errorf("disease: state %q has finite dwell but no transitions", st.Name)
		}
		_ = si
	}
	return nil
}

// buildIndex (re)builds the name index; called by constructors and Parse.
func (m *Model) buildIndex() {
	m.index = make(map[string]StateID, len(m.States))
	for i, s := range m.States {
		m.index[s.Name] = StateID(i)
	}
}

// Default returns the influenza-like PTTS used throughout the experiments:
// susceptible → latent → infectious → {symptomatic | asymptomatic} →
// recovered, with a "vaccinated" treatment that reduces susceptibility and
// infectivity and shortens symptomatic illness. Transmissibility is
// calibrated so that an unmitigated epidemic in the synthetic populations
// peaks within the paper's 120–180 day simulation horizon.
func Default() *Model {
	const (
		sSus StateID = iota
		sLatent
		sInfectious
		sSymp
		sAsymp
		sRecovered
	)
	m := &Model{
		Name:             "ili",
		Transmissibility: 0.000028,
		Entry:            sSus,
		InfectTarget:     sLatent,
		Treatments: []Treatment{
			{Name: "none", SusceptibilityMul: 1, InfectivityMul: 1},
			{Name: "vaccinated", SusceptibilityMul: 0.3, InfectivityMul: 0.5},
		},
		States: []State{
			{Name: "susceptible", Susceptibility: 1, Dwell: Dwell{Kind: DwellForever}},
			{Name: "latent", Dwell: Dwell{Kind: DwellUniform, A: 1, B: 3},
				Transitions: [][]Transition{{{Prob: 1, Next: sInfectious}}}},
			{Name: "infectious", Infectivity: 1, Dwell: Dwell{Kind: DwellFixed, A: 1},
				Transitions: [][]Transition{
					{{Prob: 0.66, Next: sSymp}, {Prob: 0.34, Next: sAsymp}},
					{{Prob: 0.25, Next: sSymp}, {Prob: 0.75, Next: sAsymp}}, // vaccinated
				}},
			{Name: "symptomatic", Infectivity: 1.5, Dwell: Dwell{Kind: DwellUniform, A: 3, B: 6},
				Transitions: [][]Transition{
					{{Prob: 1, Next: sRecovered}},
				}},
			{Name: "asymptomatic", Infectivity: 0.5, Dwell: Dwell{Kind: DwellUniform, A: 2, B: 4},
				Transitions: [][]Transition{{{Prob: 1, Next: sRecovered}}}},
			{Name: "recovered", Dwell: Dwell{Kind: DwellForever}},
		},
	}
	m.buildIndex()
	if err := m.Validate(); err != nil {
		panic("disease: default model invalid: " + err.Error())
	}
	return m
}
