package disease

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 6 {
		t.Fatalf("states = %d", m.NumStates())
	}
	if !m.IsSusceptible(m.Entry) {
		t.Fatal("entry not susceptible")
	}
	if m.IsInfectious(m.Entry) {
		t.Fatal("entry should not be infectious")
	}
	if m.IsInfectious(m.InfectTarget) {
		t.Fatal("latent should not be infectious yet")
	}
	inf, ok := m.StateByName("infectious")
	if !ok || !m.IsInfectious(inf) {
		t.Fatal("infectious state broken")
	}
}

func TestStateByName(t *testing.T) {
	m := Default()
	for i := 0; i < m.NumStates(); i++ {
		id, ok := m.StateByName(m.StateName(StateID(i)))
		if !ok || id != StateID(i) {
			t.Fatalf("index broken for state %d", i)
		}
	}
	if _, ok := m.StateByName("zombie"); ok {
		t.Fatal("unknown state resolved")
	}
}

func TestTreatmentEffects(t *testing.T) {
	m := Default()
	vac, ok := m.TreatmentByName("vaccinated")
	if !ok {
		t.Fatal("no vaccinated treatment")
	}
	none, _ := m.TreatmentByName("none")
	sus, _ := m.StateByName("susceptible")
	if m.Susceptibility(sus, vac) >= m.Susceptibility(sus, none) {
		t.Fatal("vaccination should reduce susceptibility")
	}
	symp, _ := m.StateByName("symptomatic")
	if m.Infectivity(symp, vac) >= m.Infectivity(symp, none) {
		t.Fatal("vaccination should reduce infectivity")
	}
}

func TestDwellSampleDeterministic(t *testing.T) {
	d := Dwell{Kind: DwellUniform, A: 2, B: 9}
	if d.Sample(1, 2) != d.Sample(1, 2) {
		t.Fatal("keyed dwell not deterministic")
	}
}

func TestDwellSampleRanges(t *testing.T) {
	f := func(p, day uint64) bool {
		u := Dwell{Kind: DwellUniform, A: 2, B: 5}.Sample(p, day)
		if u < 2 || u > 5 {
			return false
		}
		fx := Dwell{Kind: DwellFixed, A: 3}.Sample(p, day)
		if fx != 3 {
			return false
		}
		g := Dwell{Kind: DwellGeometric, A: 2, B: 3}.Sample(p, day)
		return g >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDwellForeverIsHuge(t *testing.T) {
	if (Dwell{Kind: DwellForever}).Sample(1) < 1<<30 {
		t.Fatal("forever dwell too short")
	}
}

func TestDwellMeans(t *testing.T) {
	if m := (Dwell{Kind: DwellFixed, A: 4}).Mean(); m != 4 {
		t.Fatalf("fixed mean %v", m)
	}
	if m := (Dwell{Kind: DwellUniform, A: 2, B: 6}).Mean(); m != 4 {
		t.Fatalf("uniform mean %v", m)
	}
	if !math.IsInf((Dwell{Kind: DwellForever}).Mean(), 1) {
		t.Fatal("forever mean should be +inf")
	}
	if m := (Dwell{Kind: DwellGeometric, A: 2, B: 3}).Mean(); m != 4 {
		t.Fatalf("geometric mean %v", m)
	}
}

func TestDwellGeometricDistribution(t *testing.T) {
	d := Dwell{Kind: DwellGeometric, A: 1, B: 2}
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += d.Sample(uint64(i), 9)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-d.Mean()) > 0.05*d.Mean() {
		t.Fatalf("geometric sample mean %v, want ~%v", mean, d.Mean())
	}
}

func TestNextStateDistribution(t *testing.T) {
	m := Default()
	inf, _ := m.StateByName("infectious")
	symp, _ := m.StateByName("symptomatic")
	n := 50000
	count := 0
	for p := 0; p < n; p++ {
		next, ok := m.NextState(inf, 0, uint64(p), 5)
		if !ok {
			t.Fatal("infectious should transition")
		}
		if next == symp {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.66) > 0.02 {
		t.Fatalf("symptomatic fraction = %v, want ~0.66", frac)
	}
}

func TestNextStateTreatmentSpecific(t *testing.T) {
	m := Default()
	inf, _ := m.StateByName("infectious")
	symp, _ := m.StateByName("symptomatic")
	vac, _ := m.TreatmentByName("vaccinated")
	n := 50000
	count := 0
	for p := 0; p < n; p++ {
		next, _ := m.NextState(inf, vac, uint64(p), 5)
		if next == symp {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("vaccinated symptomatic fraction = %v, want ~0.25", frac)
	}
}

func TestNextStateAbsorbing(t *testing.T) {
	m := Default()
	rec, _ := m.StateByName("recovered")
	if _, ok := m.NextState(rec, 0, 1, 1); ok {
		t.Fatal("recovered should be absorbing")
	}
}

func TestNextStateFallsBackToUntreated(t *testing.T) {
	m := Default()
	// symptomatic defines only the untreated set; vaccinated must fall back.
	symp, _ := m.StateByName("symptomatic")
	vac, _ := m.TreatmentByName("vaccinated")
	next, ok := m.NextState(symp, vac, 3, 3)
	rec, _ := m.StateByName("recovered")
	if !ok || next != rec {
		t.Fatalf("fallback transition = %v, %v", next, ok)
	}
}

func TestTransmissionProb(t *testing.T) {
	m := Default()
	if p := m.TransmissionProb(0, 1, 1); p != 0 {
		t.Fatalf("zero duration p = %v", p)
	}
	if p := m.TransmissionProb(60, 0, 1); p != 0 {
		t.Fatalf("zero infectivity p = %v", p)
	}
	p1 := m.TransmissionProb(30, 1, 1)
	p2 := m.TransmissionProb(120, 1, 1)
	if !(0 < p1 && p1 < p2 && p2 < 1) {
		t.Fatalf("p(30)=%v p(120)=%v: want monotone in (0,1)", p1, p2)
	}
	// Very long exposure with high infectivity approaches 1.
	if p := m.TransmissionProb(1<<20, 10, 10); p < 0.999 {
		t.Fatalf("saturating p = %v", p)
	}
}

func TestTransmissionProbMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw%1440)+1, int(bRaw%1440)+1
		pa, pb := m.TransmissionProb(a, 1, 1), m.TransmissionProb(b, 1, 1)
		if a < b {
			return pa <= pb
		}
		return pb <= pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	cases := []func(m *Model){
		func(m *Model) { m.Transmissibility = 0 },
		func(m *Model) { m.Treatments[0].Name = "zap" },
		func(m *Model) { m.InfectTarget = m.Entry },
		func(m *Model) { m.States[1].Transitions[0][0].Prob = 0.5 }, // sums to 0.5
		func(m *Model) { m.States[1].Dwell = Dwell{Kind: DwellForever} },
		func(m *Model) { m.States[0].Susceptibility = 0 },
	}
	for i, corrupt := range cases {
		m := Default()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: corruption not caught", i)
		}
	}
}

func TestHealthTrajectoryTerminates(t *testing.T) {
	// Simulate the PTTS for many persons; everyone must reach an absorbing
	// state in bounded time — no cycles in the default model.
	m := Default()
	for p := 0; p < 2000; p++ {
		s := m.InfectTarget
		day := uint64(0)
		for steps := 0; ; steps++ {
			if steps > 100 {
				t.Fatalf("person %d did not terminate", p)
			}
			dwell := m.SampleDwell(s, uint64(p), day)
			if dwell > 1<<30 {
				break // absorbing
			}
			day += uint64(dwell)
			next, ok := m.NextState(s, 0, uint64(p), day)
			if !ok {
				break
			}
			s = next
		}
	}
}
