package charm

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// counterChare counts received ints and optionally forwards them with a
// decremented TTL to a next chare.
type counterChare struct {
	id       int32
	received atomic.Int64
	sum      atomic.Int64
	next     *ChareRef
}

type intMsg struct {
	val int64
	ttl int
}

func (c *counterChare) Recv(ctx *Ctx, msg Message) {
	c.received.Add(1)
	m, ok := msg.(intMsg)
	if !ok {
		return
	}
	c.sum.Add(m.val)
	if c.next != nil && m.ttl > 0 {
		ctx.Send(*c.next, intMsg{val: m.val, ttl: m.ttl - 1})
	}
}

func newRing(rt *Runtime, n int) int32 {
	chares := make([]*counterChare, n)
	id := rt.NewArray(n, func(i int32) Chare {
		chares[i] = &counterChare{id: i}
		return chares[i]
	}, nil)
	for i := 0; i < n; i++ {
		next := ChareRef{Array: id, Index: int32((i + 1) % n)}
		chares[i].next = &next
	}
	return id
}

func configs(parallel bool) []Config {
	return []Config{
		{PEs: 1, Parallel: parallel},
		{PEs: 4, Parallel: parallel},
		{PEs: 4, Parallel: parallel, AggBufferSize: 8},
		{PEs: 8, Parallel: parallel, Topology: Topology{PEsPerProc: 2, ProcsPerNode: 2}, AggBufferSize: 4},
	}
}

func TestRingForwarding(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, cfg := range configs(parallel) {
			rt := New(cfg)
			id := newRing(rt, 10)
			// One token with TTL 25 visits 26 chares.
			rt.Send(ChareRef{Array: id, Index: 0}, intMsg{val: 1, ttl: 25})
			st := rt.Drain()
			var total int64
			for i := 0; i < 10; i++ {
				total += rt.Chare(ChareRef{Array: id, Index: int32(i)}).(*counterChare).received.Load()
			}
			if total != 26 {
				t.Fatalf("parallel=%v cfg=%+v: %d deliveries, want 26", parallel, cfg, total)
			}
			if st.Messages != 25 {
				// The driver Send is not a chare-level message; the 25
				// forwards are.
				t.Fatalf("parallel=%v: stats.Messages = %d, want 25", parallel, st.Messages)
			}
		}
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		rt := New(Config{PEs: 4, Parallel: parallel})
		var chares []*counterChare
		id := rt.NewArray(33, func(i int32) Chare {
			c := &counterChare{id: i}
			chares = append(chares, c)
			return c
		}, nil)
		rt.Broadcast(id, intMsg{val: 7})
		rt.Drain()
		for i, c := range chares {
			if c.received.Load() != 1 || c.sum.Load() != 7 {
				t.Fatalf("parallel=%v: chare %d received %d (sum %d)", parallel, i, c.received.Load(), c.sum.Load())
			}
		}
	}
}

// scatterChare sends `fanout` messages to random-ish targets on receipt.
type scatterChare struct {
	id      int32
	fanout  int
	targets int32
	array   int32
}

func (s *scatterChare) Recv(ctx *Ctx, msg Message) {
	m := msg.(intMsg)
	if m.ttl <= 0 {
		ctx.Contribute("leaves", 1)
		return
	}
	for i := 0; i < s.fanout; i++ {
		tgt := (s.id*31 + int32(i)*17 + int32(m.ttl)) % s.targets
		ctx.Send(ChareRef{Array: s.array, Index: tgt}, intMsg{val: 1, ttl: m.ttl - 1})
	}
}

func TestMessageStorageConservation(t *testing.T) {
	// A fanout tree of depth d produces a known number of messages and
	// leaves; both modes and all aggregation settings must agree.
	for _, parallel := range []bool{false, true} {
		for _, agg := range []int{0, 4, 64} {
			rt := New(Config{PEs: 6, Parallel: parallel, AggBufferSize: agg,
				Topology: Topology{PEsPerProc: 3, ProcsPerNode: 1}})
			n := 40
			var arr int32
			arr = rt.NewArray(n, func(i int32) Chare {
				return &scatterChare{id: i, fanout: 3, targets: int32(n), array: arr}
			}, nil)
			rt.Send(ChareRef{Array: arr, Index: 0}, intMsg{ttl: 4})
			st := rt.Drain()
			// Depth 4 fanout 3: injected 1 (driver), then 3 + 9 + 27 + 81
			// chare sends = 120 chare-level messages; 81 leaves contribute.
			if st.Messages != 120 {
				t.Fatalf("parallel=%v agg=%d: messages = %d, want 120", parallel, agg, st.Messages)
			}
			if st.Reductions["leaves"] != 81 {
				t.Fatalf("parallel=%v agg=%d: leaves = %d, want 81", parallel, agg, st.Reductions["leaves"])
			}
			// Aggregation can only reduce wire messages.
			if st.WireMessages > st.Messages {
				t.Fatalf("wire %d > chare %d", st.WireMessages, st.Messages)
			}
		}
	}
}

func TestAggregationReducesWireMessages(t *testing.T) {
	run := func(agg int) PhaseStats {
		rt := New(Config{PEs: 2, AggBufferSize: agg})
		var arr int32
		recv := rt.NewArray(2, func(i int32) Chare { return &counterChare{} },
			func(i int32) PE { return PE(i) })
		arr = recv
		sender := rt.NewArray(1, func(i int32) Chare {
			return chareFunc(func(ctx *Ctx, msg Message) {
				for k := 0; k < 100; k++ {
					ctx.Send(ChareRef{Array: arr, Index: 1}, intMsg{val: 1})
				}
			})
		}, func(i int32) PE { return 0 })
		rt.Send(ChareRef{Array: sender, Index: 0}, intMsg{})
		return rt.Drain()
	}
	noAgg := run(0)
	withAgg := run(25)
	if noAgg.WireMessages != 100 {
		t.Fatalf("no aggregation wire = %d, want 100", noAgg.WireMessages)
	}
	if withAgg.WireMessages != 4 {
		t.Fatalf("agg=25 wire = %d, want 4", withAgg.WireMessages)
	}
	if noAgg.Messages != withAgg.Messages {
		t.Fatal("aggregation changed chare-level message count")
	}
}

// chareFunc adapts a function to the Chare interface.
type chareFunc func(ctx *Ctx, msg Message)

func (f chareFunc) Recv(ctx *Ctx, msg Message) { f(ctx, msg) }

func TestLocalityClassification(t *testing.T) {
	topo := Topology{PEsPerProc: 2, ProcsPerNode: 2}.normalized(8)
	cases := []struct {
		src, dst PE
		want     Locality
	}{
		{0, 0, LocalPE},
		{0, 1, IntraProc},
		{0, 2, IntraNode},
		{0, 3, IntraNode},
		{0, 4, InterNode},
		{5, 4, IntraProc},
		{7, 0, InterNode},
	}
	for _, c := range cases {
		if got := topo.Classify(c.src, c.dst); got != c.want {
			t.Fatalf("Classify(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestTopologyNormalization(t *testing.T) {
	topo := Topology{}.normalized(6)
	if topo.PEsPerProc != 6 || topo.ProcsPerNode != 1 {
		t.Fatalf("normalized zero topology = %+v", topo)
	}
	for pe := PE(0); pe < 6; pe++ {
		if topo.ProcOf(pe) != 0 || topo.NodeOf(pe) != 0 {
			t.Fatal("single proc/node expected")
		}
	}
}

func TestLocalityCounting(t *testing.T) {
	// 4 PEs: procs {0,1},{2,3}, one node. Chare on PE0 sends one message
	// to each PE.
	rt := New(Config{PEs: 4, Topology: Topology{PEsPerProc: 2, ProcsPerNode: 2}})
	var recvArr int32
	recvArr = rt.NewArray(4, func(i int32) Chare { return &counterChare{} },
		func(i int32) PE { return PE(i) })
	sender := rt.NewArray(1, func(i int32) Chare {
		return chareFunc(func(ctx *Ctx, msg Message) {
			for pe := int32(0); pe < 4; pe++ {
				ctx.Send(ChareRef{Array: recvArr, Index: pe}, intMsg{})
			}
		})
	}, func(i int32) PE { return 0 })
	rt.Send(ChareRef{Array: sender, Index: 0}, intMsg{})
	st := rt.Drain()
	if st.ByLocality[LocalPE] != 1 || st.ByLocality[IntraProc] != 1 || st.ByLocality[IntraNode] != 2 {
		t.Fatalf("locality counts = %v", st.ByLocality)
	}
	if st.WireByLocality[LocalPE] != 0 {
		t.Fatal("local delivery must not hit the wire")
	}
}

func TestReductions(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		rt := New(Config{PEs: 3, Parallel: parallel})
		id := rt.NewArray(30, func(i int32) Chare {
			return chareFunc(func(ctx *Ctx, msg Message) {
				ctx.Contribute("count", 1)
				ctx.Contribute("sum", int64(i))
			})
		}, nil)
		rt.Broadcast(id, intMsg{})
		st := rt.Drain()
		if st.Reductions["count"] != 30 {
			t.Fatalf("parallel=%v: count = %d", parallel, st.Reductions["count"])
		}
		if st.Reductions["sum"] != 29*30/2 {
			t.Fatalf("parallel=%v: sum = %d", parallel, st.Reductions["sum"])
		}
	}
}

func TestPhaseStatsReset(t *testing.T) {
	rt := New(Config{PEs: 2})
	id := newRing(rt, 4)
	rt.Send(ChareRef{Array: id, Index: 0}, intMsg{ttl: 10})
	first := rt.Drain()
	if first.Messages == 0 {
		t.Fatal("first phase recorded nothing")
	}
	second := rt.Drain()
	if second.Messages != 0 || len(second.Reductions) != 0 {
		t.Fatalf("stats leaked across phases: %+v", second)
	}
}

func TestSyncModeRounds(t *testing.T) {
	cd := New(Config{PEs: 2, SyncMode: CompletionDetection})
	qd := New(Config{PEs: 2, SyncMode: QuiescenceDetection})
	newRing(cd, 2)
	newRing(qd, 2)
	stCD := cd.Drain()
	stQD := qd.Drain()
	if stQD.SyncRounds <= stCD.SyncRounds {
		t.Fatalf("QD rounds %d should exceed CD rounds %d", stQD.SyncRounds, stCD.SyncRounds)
	}
}

func TestSequentialParallelEquivalence(t *testing.T) {
	run := func(parallel bool) (PhaseStats, int64) {
		rt := New(Config{PEs: 5, Parallel: parallel, AggBufferSize: 7,
			Topology: Topology{PEsPerProc: 2, ProcsPerNode: 2}})
		n := 25
		var arr int32
		arr = rt.NewArray(n, func(i int32) Chare {
			return &scatterChare{id: i, fanout: 2, targets: int32(n), array: arr}
		}, nil)
		rt.Send(ChareRef{Array: arr, Index: 3}, intMsg{ttl: 6})
		st := rt.Drain()
		return st, st.Reductions["leaves"]
	}
	seq, seqLeaves := run(false)
	par, parLeaves := run(true)
	if seq.Messages != par.Messages {
		t.Fatalf("message counts differ: %d vs %d", seq.Messages, par.Messages)
	}
	if seqLeaves != parLeaves {
		t.Fatalf("reduction differs: %d vs %d", seqLeaves, parLeaves)
	}
	if seq.ByLocality != par.ByLocality {
		t.Fatalf("locality histograms differ: %v vs %v", seq.ByLocality, par.ByLocality)
	}
	if seq.Bytes != par.Bytes {
		t.Fatalf("bytes differ: %d vs %d", seq.Bytes, par.Bytes)
	}
}

func TestPerPETrafficConsistency(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int32(seedRaw%97) + 1
		rt := New(Config{PEs: 4, AggBufferSize: 3,
			Topology: Topology{PEsPerProc: 2, ProcsPerNode: 1}})
		n := 16
		var arr int32
		arr = rt.NewArray(n, func(i int32) Chare {
			return &scatterChare{id: i + seed, fanout: 2, targets: int32(n), array: arr}
		}, nil)
		rt.Send(ChareRef{Array: arr, Index: seed % int32(n)}, intMsg{ttl: 4})
		st := rt.Drain()
		var outSum, inSum int64
		for _, pe := range st.PerPE {
			outSum += pe.MsgsOut
			inSum += pe.MsgsIn
		}
		return outSum == st.Messages && inSum == st.Messages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSizedMessages(t *testing.T) {
	rt := New(Config{PEs: 2})
	recv := rt.NewArray(1, func(i int32) Chare { return &counterChare{} },
		func(i int32) PE { return 1 })
	send := rt.NewArray(1, func(i int32) Chare {
		return chareFunc(func(ctx *Ctx, msg Message) {
			ctx.Send(ChareRef{Array: recv, Index: 0}, sizedMsg{})
			ctx.Send(ChareRef{Array: recv, Index: 0}, intMsg{})
		})
	}, func(i int32) PE { return 0 })
	rt.Send(ChareRef{Array: send, Index: 0}, intMsg{})
	st := rt.Drain()
	if st.Bytes != 1000+DefaultMessageBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 1000+DefaultMessageBytes)
	}
}

type sizedMsg struct{}

func (sizedMsg) WireSize() int { return 1000 }

func TestPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad placement should panic")
		}
	}()
	rt := New(Config{PEs: 2})
	rt.NewArray(1, func(i int32) Chare { return &counterChare{} },
		func(i int32) PE { return 99 })
}

func BenchmarkSequentialMessaging(b *testing.B) {
	rt := New(Config{PEs: 8, AggBufferSize: 32,
		Topology: Topology{PEsPerProc: 2, ProcsPerNode: 2}})
	n := 64
	var arr int32
	arr = rt.NewArray(n, func(i int32) Chare {
		return &scatterChare{id: i, fanout: 2, targets: int32(n), array: arr}
	}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(ChareRef{Array: arr, Index: 0}, intMsg{ttl: 8})
		rt.Drain()
	}
}

func BenchmarkParallelMessaging(b *testing.B) {
	rt := New(Config{PEs: 4, Parallel: true, AggBufferSize: 32})
	n := 64
	var arr int32
	arr = rt.NewArray(n, func(i int32) Chare {
		return &scatterChare{id: i, fanout: 2, targets: int32(n), array: arr}
	}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(ChareRef{Array: arr, Index: 0}, intMsg{ttl: 8})
		rt.Drain()
	}
}
