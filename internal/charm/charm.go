// Package charm is a Charm++-like message-driven runtime in pure Go: the
// substrate substituting for Charm++ on Blue Waters (the paper's execution
// model, Section II-C). It provides:
//
//   - chare arrays over-decomposed onto processing elements (PEs), with
//     pluggable index→PE placement (this is where RR vs GP distributions
//     plug in);
//   - asynchronous messaging between chares with per-destination
//     application-level message aggregation (Section IV-C);
//   - phase synchronization by completion detection — the runtime detects
//     when every produced message has been consumed (Section IV-B) — with
//     a quiescence-detection mode kept for comparison;
//   - contribution-based reductions (global system state updates,
//     Section II-B step 6);
//   - an SMP topology (PEs grouped into processes and nodes, Section IV-A)
//     used to classify every message's locality, which the machine model
//     prices.
//
// Two execution modes run the same chare code: a deterministic sequential
// scheduler (used for large logical-PE sweeps) and a parallel mode with one
// goroutine per PE and a polling completion detector (real concurrency).
// Counters (messages, wire messages after aggregation, locality classes,
// per-PE traffic) are identical in both modes; equality of the two is a
// test oracle.
package charm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PE identifies a processing element (a core-module in the paper's terms).
type PE = int32

// Message is any chare-to-chare payload.
type Message interface{}

// Sized lets a message report its wire size in bytes; unsized messages are
// accounted at DefaultMessageBytes.
type Sized interface {
	WireSize() int
}

// DefaultMessageBytes is the accounted size of messages that do not
// implement Sized (headers dominate small messages on Gemini-class nets).
const DefaultMessageBytes = 64

// ChareRef addresses a chare: array id + element index.
type ChareRef struct {
	Array int32
	Index int32
}

// Chare is a message-driven object. Recv is invoked once per message; it
// may send further messages through the context.
type Chare interface {
	Recv(ctx *Ctx, msg Message)
}

// Locality classifies a message by how far it travels in the SMP topology.
type Locality uint8

// Locality classes, cheapest first.
const (
	LocalPE Locality = iota
	IntraProc
	IntraNode
	InterNode
	numLocality
)

func (l Locality) String() string {
	switch l {
	case LocalPE:
		return "local"
	case IntraProc:
		return "intra-proc"
	case IntraNode:
		return "intra-node"
	case InterNode:
		return "inter-node"
	}
	return fmt.Sprintf("Locality(%d)", uint8(l))
}

// Topology describes the SMP geometry: PEs are packed contiguously into
// processes, and processes into nodes (Section IV-A's k processes per
// node). The zero value means one process on one node holds all PEs.
type Topology struct {
	PEsPerProc   int
	ProcsPerNode int
}

func (t Topology) normalized(pes int) Topology {
	if t.PEsPerProc <= 0 {
		t.PEsPerProc = pes
		if t.PEsPerProc < 1 {
			t.PEsPerProc = 1
		}
	}
	if t.ProcsPerNode <= 0 {
		t.ProcsPerNode = 1
	}
	return t
}

// ProcOf returns the process index of a PE.
func (t Topology) ProcOf(pe PE) int32 { return pe / int32(t.PEsPerProc) }

// NodeOf returns the node index of a PE.
func (t Topology) NodeOf(pe PE) int32 {
	return t.ProcOf(pe) / int32(t.ProcsPerNode)
}

// Classify returns the locality class of a src→dst message.
func (t Topology) Classify(src, dst PE) Locality {
	switch {
	case src == dst:
		return LocalPE
	case t.ProcOf(src) == t.ProcOf(dst):
		return IntraProc
	case t.NodeOf(src) == t.NodeOf(dst):
		return IntraNode
	default:
		return InterNode
	}
}

// SyncMode selects the phase synchronization protocol.
type SyncMode uint8

const (
	// CompletionDetection detects that all produced messages were consumed
	// (applicable per module; the paper's choice).
	CompletionDetection SyncMode = iota
	// QuiescenceDetection detects global application quiescence (requires
	// whole-application idleness and more confirmation rounds).
	QuiescenceDetection
)

// Config configures a Runtime.
type Config struct {
	PEs      int
	Parallel bool
	Topology Topology
	// AggBufferSize is the per-destination aggregation buffer capacity in
	// messages; 0 disables aggregation (every message is its own wire
	// message).
	AggBufferSize int
	// Route2D enables TRAM-style topological routing (the paper's
	// footnote 1): PEs form a virtual √P×√P mesh and messages travel
	// src → (row of src, column of dst) → dst, so each PE keeps ~2√P
	// aggregation buffers instead of P and buffers fill better at scale.
	// Requires AggBufferSize > 0. Messages are still delivered exactly
	// once; the intermediate hop only re-buffers.
	Route2D  bool
	SyncMode SyncMode
}

// PhaseStats reports what happened between two Drain calls.
type PhaseStats struct {
	// Messages is the number of chare-level messages delivered.
	Messages int64
	// WireMessages is the number of transport sends after aggregation
	// (equals Messages when aggregation is off; local-PE delivery never
	// hits the wire).
	WireMessages int64
	// Bytes is the total payload volume (chare-level).
	Bytes int64
	// ByLocality and WireByLocality split the above by distance class.
	ByLocality     [4]int64
	WireByLocality [4]int64
	// SyncRounds counts detector iterations needed to declare completion.
	SyncRounds int
	// Reductions holds the merged contributions of the phase.
	Reductions map[string]int64
	// PerPE is indexed by PE; nil unless Config.PEs > 0 (always set).
	PerPE []PETraffic
}

// PETraffic is one PE's traffic during a phase.
type PETraffic struct {
	MsgsIn, MsgsOut int64
	WireOut         [4]int64
	BytesOut        int64
	Delivered       int64 // chare Recv invocations
}

// Runtime executes chare arrays over PEs.
type Runtime struct {
	cfg    Config
	topo   Topology
	arrays []*array

	queues [][]envelope // per-PE pending chare-level messages (sequential)
	agg    []map[PE][]envelope
	stats  PhaseStats

	mu           sync.Mutex // guards contributions in parallel mode
	contribution map[string]int64
}

type array struct {
	chares    []Chare
	placement []PE
}

type envelope struct {
	to  ChareRef
	msg Message
	src PE
	// relay marks an envelope parked at a 2D-routing intermediate: it must
	// be re-dispatched toward its destination, not delivered to a chare.
	relay bool
}

// New creates a runtime. Arrays must be registered before the first Drain.
func New(cfg Config) *Runtime {
	if cfg.PEs < 1 {
		cfg.PEs = 1
	}
	if cfg.AggBufferSize < 0 {
		cfg.AggBufferSize = 0
	}
	rt := &Runtime{
		cfg:  cfg,
		topo: cfg.Topology.normalized(cfg.PEs),
	}
	rt.queues = make([][]envelope, cfg.PEs)
	rt.agg = make([]map[PE][]envelope, cfg.PEs)
	rt.resetPhase()
	return rt
}

// NumPEs returns the configured PE count.
func (rt *Runtime) NumPEs() int { return rt.cfg.PEs }

// TopologyInfo returns the normalized topology.
func (rt *Runtime) TopologyInfo() Topology { return rt.topo }

// NewArray registers a chare array: n elements built by factory, placed on
// PEs by placement (defaults to round-robin when nil). It returns the
// array id used in ChareRefs.
func (rt *Runtime) NewArray(n int, factory func(i int32) Chare, placement func(i int32) PE) int32 {
	a := &array{
		chares:    make([]Chare, n),
		placement: make([]PE, n),
	}
	for i := int32(0); i < int32(n); i++ {
		a.chares[i] = factory(i)
		if placement != nil {
			pe := placement(i)
			if pe < 0 || int(pe) >= rt.cfg.PEs {
				panic(fmt.Sprintf("charm: placement of element %d on PE %d outside [0,%d)", i, pe, rt.cfg.PEs))
			}
			a.placement[i] = pe
		} else {
			a.placement[i] = i % int32(rt.cfg.PEs)
		}
	}
	rt.arrays = append(rt.arrays, a)
	return int32(len(rt.arrays) - 1)
}

// PlacementOf returns the PE hosting a chare.
func (rt *Runtime) PlacementOf(ref ChareRef) PE {
	return rt.arrays[ref.Array].placement[ref.Index]
}

// Chare returns the chare object behind a reference (for tests and for
// driver-side inspection between phases).
func (rt *Runtime) Chare(ref ChareRef) Chare {
	return rt.arrays[ref.Array].chares[ref.Index]
}

// ArrayLen returns the number of elements in an array.
func (rt *Runtime) ArrayLen(arrayID int32) int { return len(rt.arrays[arrayID].chares) }

// Broadcast enqueues msg for every element of the array (driver-side; not
// counted as point-to-point traffic, mirroring Charm++'s optimized
// broadcast trees).
func (rt *Runtime) Broadcast(arrayID int32, msg Message) {
	a := rt.arrays[arrayID]
	for i := range a.chares {
		pe := a.placement[i]
		rt.queues[pe] = append(rt.queues[pe], envelope{
			to:  ChareRef{Array: arrayID, Index: int32(i)},
			msg: msg,
			src: pe, // broadcast delivery is local to the hosting PE
		})
	}
}

// Send enqueues a driver-side point-to-point message (rarely needed; chare
// sends go through Ctx.Send). It is attributed to the destination PE.
func (rt *Runtime) Send(to ChareRef, msg Message) {
	pe := rt.PlacementOf(to)
	rt.queues[pe] = append(rt.queues[pe], envelope{to: to, msg: msg, src: pe})
}

func (rt *Runtime) resetPhase() {
	rt.stats = PhaseStats{
		Reductions: make(map[string]int64),
		PerPE:      make([]PETraffic, rt.cfg.PEs),
	}
	rt.contribution = make(map[string]int64)
	for pe := range rt.agg {
		rt.agg[pe] = nil
	}
}

// Ctx is passed to chare Recv methods.
type Ctx struct {
	rt *Runtime
	pe PE
	// sequential-mode send sink; parallel mode uses worker-local sinks.
	sendLocal func(env envelope)
}

// PE returns the PE executing the current chare.
func (c *Ctx) PE() PE { return c.pe }

// Send delivers msg to another chare asynchronously.
func (c *Ctx) Send(to ChareRef, msg Message) {
	c.sendLocal(envelope{to: to, msg: msg, src: c.pe})
}

// Contribute adds val into the named phase reduction (sum).
func (c *Ctx) Contribute(key string, val int64) {
	c.rt.mu.Lock()
	c.rt.contribution[key] += val
	c.rt.mu.Unlock()
}

func msgBytes(m Message) int64 {
	if s, ok := m.(Sized); ok {
		return int64(s.WireSize())
	}
	return DefaultMessageBytes
}

// Drain processes all pending messages (including those produced while
// draining) until the phase completes, then returns the phase statistics
// and resets them. In parallel mode the drain runs one goroutine per PE
// and uses a completion/quiescence detector; in sequential mode the
// scheduler visits PEs round-robin, flushing aggregation buffers whenever
// a PE runs out of local work (the same flush rule the parallel workers
// use).
func (rt *Runtime) Drain() PhaseStats {
	if rt.cfg.Parallel {
		return rt.drainParallel()
	}
	return rt.drainSequential()
}

// account records a chare-level send and returns whether it must be
// aggregated (non-local with aggregation enabled).
func (rt *Runtime) account(env envelope) (dst PE, loc Locality) {
	dst = rt.PlacementOf(env.to)
	loc = rt.topo.Classify(env.src, dst)
	b := msgBytes(env.msg)
	rt.stats.Messages++
	rt.stats.Bytes += b
	rt.stats.ByLocality[loc]++
	pp := &rt.stats.PerPE[env.src]
	pp.MsgsOut++
	pp.BytesOut += b
	rt.stats.PerPE[dst].MsgsIn++
	return dst, loc
}

// meshWidth returns the virtual mesh width for 2D routing.
func (rt *Runtime) meshWidth() int32 {
	w := int32(1)
	for w*w < int32(rt.cfg.PEs) {
		w++
	}
	return w
}

// intermediate returns the 2D-routing relay PE for src→dst (row of src,
// column of dst), or dst when no useful relay exists.
func (rt *Runtime) intermediate(src, dst PE) PE {
	w := rt.meshWidth()
	inter := (src/w)*w + dst%w
	if inter >= int32(rt.cfg.PEs) || inter == src || inter == dst {
		return dst
	}
	return inter
}

// wireSend records transport-level sends for a batch heading src→dst.
func (rt *Runtime) wireSend(src, dst PE, batch int) {
	if batch == 0 {
		return
	}
	loc := rt.topo.Classify(src, dst)
	if loc == LocalPE {
		return // local delivery never hits the wire
	}
	rt.stats.WireMessages++
	rt.stats.WireByLocality[loc]++
	rt.stats.PerPE[src].WireOut[loc]++
}

func (rt *Runtime) drainSequential() PhaseStats {
	pes := rt.cfg.PEs
	// forward moves env one hop toward its destination from PE `from`,
	// buffering per next hop (the 2D-routing relay when enabled).
	var forward func(env envelope, from PE)
	forward = func(env envelope, from PE) {
		final := rt.PlacementOf(env.to)
		next := final
		if rt.cfg.Route2D && rt.cfg.AggBufferSize > 0 {
			next = rt.intermediate(from, final)
		}
		env.src = from
		env.relay = next != final
		loc := rt.topo.Classify(from, next)
		if loc == LocalPE || rt.cfg.AggBufferSize == 0 {
			rt.wireSend(from, next, 1)
			rt.queues[next] = append(rt.queues[next], env)
			return
		}
		if rt.agg[from] == nil {
			rt.agg[from] = make(map[PE][]envelope)
		}
		buf := append(rt.agg[from][next], env)
		if len(buf) >= rt.cfg.AggBufferSize {
			rt.wireSend(from, next, len(buf))
			rt.queues[next] = append(rt.queues[next], buf...)
			buf = buf[:0]
		}
		rt.agg[from][next] = buf
	}
	dispatch := func(env envelope) {
		rt.account(env)
		forward(env, env.src)
	}
	ctxs := make([]Ctx, pes)
	for pe := range ctxs {
		ctxs[pe] = Ctx{rt: rt, pe: PE(pe), sendLocal: dispatch}
	}

	rounds := 0
	for {
		rounds++
		work := false
		for pe := 0; pe < pes; pe++ {
			for len(rt.queues[pe]) > 0 {
				work = true
				q := rt.queues[pe]
				rt.queues[pe] = nil
				for _, env := range q {
					if env.relay {
						forward(env, PE(pe))
						continue
					}
					a := rt.arrays[env.to.Array]
					rt.stats.PerPE[pe].Delivered++
					a.chares[env.to.Index].Recv(&ctxs[pe], env.msg)
				}
			}
			// PE out of local work: flush its aggregation buffers, the
			// same rule PMs use after producing all visit messages.
			for dst, buf := range rt.agg[pe] {
				if len(buf) > 0 {
					rt.wireSend(PE(pe), dst, len(buf))
					rt.queues[dst] = append(rt.queues[dst], buf...)
					work = true
				}
				delete(rt.agg[pe], dst)
			}
		}
		if !work {
			break
		}
	}
	_ = rounds
	// Detector accounting: completion detection confirms produced==consumed
	// once more after first seeing it; quiescence detection additionally
	// re-confirms global idleness of the whole application.
	rt.stats.SyncRounds = 2
	if rt.cfg.SyncMode == QuiescenceDetection {
		rt.stats.SyncRounds = 4
	}
	return rt.finishPhase()
}

func (rt *Runtime) finishPhase() PhaseStats {
	out := rt.stats
	out.Reductions = rt.contribution
	rt.resetPhase()
	return out
}

// drainParallel runs one goroutine per PE until the completion detector
// fires: all workers idle with every produced message consumed, confirmed
// twice (Dijkstra-style double check).
func (rt *Runtime) drainParallel() PhaseStats {
	pes := rt.cfg.PEs
	var produced, consumed atomic.Int64
	var idleCount atomic.Int64
	var done atomic.Bool

	inboxes := make([]struct {
		mu sync.Mutex
		q  []envelope
	}, pes)
	// Seed inboxes with driver-enqueued messages.
	for pe := 0; pe < pes; pe++ {
		inboxes[pe].q = append(inboxes[pe].q, rt.queues[pe]...)
		produced.Add(int64(len(rt.queues[pe])))
		rt.queues[pe] = nil
	}

	var statsMu sync.Mutex
	perPE := make([]PETraffic, pes)
	msgsIn := make([]atomic.Int64, pes)
	var totalMsgs, totalWire, totalBytes int64
	var byLoc, wireByLoc [4]int64

	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			agg := make(map[PE][]envelope)
			var local PETraffic
			var msgs, wire, bytes int64
			var locCount, wireCount [4]int64

			deliver := func(dst PE, batch []envelope) {
				produced.Add(int64(len(batch)))
				box := &inboxes[dst]
				box.mu.Lock()
				box.q = append(box.q, batch...)
				box.mu.Unlock()
			}
			// forward moves env one hop toward its destination (via the 2D
			// relay when routing is on), buffering per next hop.
			forward := func(env envelope, from PE) {
				final := rt.PlacementOf(env.to)
				next := final
				if rt.cfg.Route2D && rt.cfg.AggBufferSize > 0 {
					next = rt.intermediate(from, final)
				}
				env.src = from
				env.relay = next != final
				loc := rt.topo.Classify(from, next)
				if loc == LocalPE || rt.cfg.AggBufferSize == 0 {
					if loc != LocalPE {
						wire++
						wireCount[loc]++
						local.WireOut[loc]++
					}
					deliver(next, []envelope{env})
					return
				}
				buf := append(agg[next], env)
				if len(buf) >= rt.cfg.AggBufferSize {
					wire++
					wireCount[loc]++
					local.WireOut[loc]++
					deliver(next, buf)
					buf = nil
				}
				agg[next] = buf
			}
			dispatch := func(env envelope) {
				dst := rt.PlacementOf(env.to)
				loc := rt.topo.Classify(env.src, dst)
				b := msgBytes(env.msg)
				msgs++
				bytes += b
				locCount[loc]++
				local.MsgsOut++
				local.BytesOut += b
				msgsIn[dst].Add(1)
				forward(env, env.src)
			}
			ctx := Ctx{rt: rt, pe: PE(pe), sendLocal: dispatch}

			idle := false
			for !done.Load() {
				box := &inboxes[pe]
				box.mu.Lock()
				q := box.q
				box.q = nil
				box.mu.Unlock()
				if len(q) == 0 {
					// Flush aggregation buffers before going idle.
					flushed := false
					for dst, buf := range agg {
						if len(buf) > 0 {
							loc := rt.topo.Classify(PE(pe), dst)
							wire++
							wireCount[loc]++
							local.WireOut[loc]++
							deliver(dst, buf)
							flushed = true
						}
						delete(agg, dst)
					}
					if flushed {
						continue
					}
					if !idle {
						idle = true
						idleCount.Add(1)
					}
					time.Sleep(20 * time.Microsecond)
					continue
				}
				if idle {
					idle = false
					idleCount.Add(-1)
				}
				for _, env := range q {
					if env.relay {
						forward(env, PE(pe))
						continue
					}
					a := rt.arrays[env.to.Array]
					local.Delivered++
					a.chares[env.to.Index].Recv(&ctx, env.msg)
				}
				consumed.Add(int64(len(q)))
			}

			statsMu.Lock()
			perPE[pe] = local
			totalMsgs += msgs
			totalWire += wire
			totalBytes += bytes
			for i := range locCount {
				byLoc[i] += locCount[i]
				wireByLoc[i] += wireCount[i]
			}
			statsMu.Unlock()
		}(pe)
	}

	// Completion detector: all PEs idle and produced == consumed, observed
	// stable across two polls.
	rounds := 0
	confirmed := 0
	need := 2
	if rt.cfg.SyncMode == QuiescenceDetection {
		need = 4
	}
	for {
		time.Sleep(50 * time.Microsecond)
		rounds++
		if idleCount.Load() == int64(pes) {
			p, c := produced.Load(), consumed.Load()
			if p == c {
				confirmed++
				if confirmed >= need {
					break
				}
				continue
			}
		}
		confirmed = 0
	}
	done.Store(true)
	wg.Wait()
	for pe := 0; pe < pes; pe++ {
		perPE[pe].MsgsIn = msgsIn[pe].Load()
	}

	rt.stats.Messages = totalMsgs
	rt.stats.WireMessages = totalWire
	rt.stats.Bytes = totalBytes
	rt.stats.ByLocality = byLoc
	rt.stats.WireByLocality = wireByLoc
	rt.stats.SyncRounds = rounds
	rt.stats.PerPE = perPE
	return rt.finishPhase()
}
