package charm

import (
	"testing"
)

// all2allSender sends `count` messages to every receiver chare on receipt
// of a start message.
type all2allSender struct {
	recvArr int32
	targets int32
	count   int
}

func (s *all2allSender) Recv(ctx *Ctx, msg Message) {
	for t := int32(0); t < s.targets; t++ {
		for i := 0; i < s.count; i++ {
			ctx.Send(ChareRef{Array: s.recvArr, Index: t}, intMsg{val: 1})
		}
	}
}

// runAll2All performs an all-to-all on P PEs with aggregation buffer B,
// with or without 2D routing, and returns the phase stats and the total
// received count.
func runAll2All(t *testing.T, parallel bool, pes, buf int, route2D bool, perPair int) (PhaseStats, int64) {
	t.Helper()
	rt := New(Config{PEs: pes, Parallel: parallel, AggBufferSize: buf, Route2D: route2D})
	var recvArr int32
	receivers := make([]*counterChare, pes)
	recvArr = rt.NewArray(pes, func(i int32) Chare {
		receivers[i] = &counterChare{}
		return receivers[i]
	}, func(i int32) PE { return i })
	send := rt.NewArray(pes, func(i int32) Chare {
		return &all2allSender{recvArr: recvArr, targets: int32(pes), count: perPair}
	}, func(i int32) PE { return i })
	rt.Broadcast(send, intMsg{})
	st := rt.Drain()
	var total int64
	for _, r := range receivers {
		total += r.received.Load()
	}
	return st, total
}

func TestRoute2DDeliversEverything(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		pes := 9 // 3x3 mesh
		st, total := runAll2All(t, parallel, pes, 4, true, 3)
		want := int64(pes * pes * 3)
		if total != want {
			t.Fatalf("parallel=%v: delivered %d, want %d", parallel, total, want)
		}
		if st.Messages != want {
			t.Fatalf("parallel=%v: chare messages %d, want %d", parallel, st.Messages, want)
		}
	}
}

func TestRoute2DReducesWireMessagesWhenSparse(t *testing.T) {
	// Sparse all-to-all (1 message per pair, buffer 8): direct aggregation
	// cannot fill buffers (1 msg per destination buffer), while 2D routing
	// concentrates sqrt(P) pairs per buffer.
	pes := 16
	direct, _ := runAll2All(t, false, pes, 8, false, 1)
	routed, _ := runAll2All(t, false, pes, 8, true, 1)
	if routed.WireMessages >= direct.WireMessages {
		t.Fatalf("2D routing did not reduce wire messages: %d vs %d",
			routed.WireMessages, direct.WireMessages)
	}
}

func TestRoute2DNeutralWhenDense(t *testing.T) {
	// Dense traffic fills direct buffers anyway; 2D routing must not
	// catastrophically regress (it adds at most the extra hop).
	pes := 9
	direct, _ := runAll2All(t, false, pes, 4, false, 12)
	routed, _ := runAll2All(t, false, pes, 4, true, 12)
	if routed.WireMessages > direct.WireMessages*3 {
		t.Fatalf("2D routing exploded wire messages: %d vs %d",
			routed.WireMessages, direct.WireMessages)
	}
}

func TestRoute2DReductionsIntact(t *testing.T) {
	rt := New(Config{PEs: 9, AggBufferSize: 4, Route2D: true})
	id := rt.NewArray(27, func(i int32) Chare {
		return chareFunc(func(ctx *Ctx, msg Message) {
			ctx.Contribute("n", 1)
		})
	}, nil)
	rt.Broadcast(id, intMsg{})
	st := rt.Drain()
	if st.Reductions["n"] != 27 {
		t.Fatalf("reductions with routing = %d", st.Reductions["n"])
	}
}

func TestIntermediateGeometry(t *testing.T) {
	rt := New(Config{PEs: 16}) // 4x4 mesh
	cases := []struct{ src, dst, want PE }{
		{0, 5, 1},   // row 0, col 1
		{0, 15, 3},  // row 0, col 3
		{5, 0, 4},   // row 1, col 0
		{0, 3, 3},   // same row: direct
		{0, 12, 12}, // same column: intermediate would be src(0)? (0/4)*4+12%4=0 -> src -> direct
		{7, 7, 7},   // self
	}
	for _, c := range cases {
		if got := rt.intermediate(c.src, c.dst); got != c.want {
			t.Fatalf("intermediate(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestIntermediateRaggedMesh(t *testing.T) {
	// 10 PEs: mesh width 4, rows 0..2 with the last row ragged. Relays
	// beyond PE 9 must fall back to direct.
	rt := New(Config{PEs: 10})
	for src := PE(0); src < 10; src++ {
		for dst := PE(0); dst < 10; dst++ {
			inter := rt.intermediate(src, dst)
			if inter < 0 || inter >= 10 {
				t.Fatalf("intermediate(%d,%d) = %d out of range", src, dst, inter)
			}
		}
	}
}

func TestRoute2DParallelSequentialEquivalence(t *testing.T) {
	seqStats, seqTotal := runAll2All(t, false, 9, 4, true, 2)
	parStats, parTotal := runAll2All(t, true, 9, 4, true, 2)
	if seqTotal != parTotal {
		t.Fatalf("delivery differs: %d vs %d", seqTotal, parTotal)
	}
	if seqStats.Messages != parStats.Messages {
		t.Fatalf("chare messages differ: %d vs %d", seqStats.Messages, parStats.Messages)
	}
	// Wire counts under routing depend on flush timing at intermediates
	// (parallel workers may flush before a late relay arrives), so equality
	// holds only approximately — unlike direct aggregation, where both
	// modes count identically.
	lo, hi := seqStats.WireMessages*8/10, seqStats.WireMessages*12/10
	if parStats.WireMessages < lo || parStats.WireMessages > hi {
		t.Fatalf("wire messages diverge beyond flush jitter: %d vs %d",
			parStats.WireMessages, seqStats.WireMessages)
	}
}
