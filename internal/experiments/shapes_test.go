package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// These tests pin the paper-shape claims of the headline artifacts so that
// calibration drift cannot silently break them.

// TestFig12ReductionInPaperBand: the combined communication optimizations
// must reduce modeled time by a meaningful fraction around the paper's
// ~40%.
func TestFig12ReductionInPaperBand(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig12(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || !strings.HasSuffix(fields[3], "%") {
			continue
		}
		red, err := strconv.ParseFloat(strings.TrimSuffix(fields[3], "%"), 64)
		if err != nil {
			continue
		}
		if red < 20 || red > 75 {
			t.Fatalf("optimization reduction %.1f%% outside the plausible band of the paper's ~40%%:\n%s",
				red, buf.String())
		}
	}
}

// TestFig13SplitLocScalesFurther: at the largest swept rank count, both
// splitLoc variants must beat both un-split variants — the paper's core
// result.
func TestFig13SplitLocScalesFurther(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig13(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		if name != "RR" && name != "GP" && name != "RR-splitLoc" && name != "GP-splitLoc" {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("cannot parse %q", line)
		}
		last[name] = v
	}
	if len(last) != 4 {
		t.Fatalf("missing strategies: %v\n%s", last, buf.String())
	}
	// Compare like with like: each splitLoc variant must beat its own
	// un-split counterpart at the deepest swept point. (Cross-strategy
	// comparisons only separate at rank counts beyond the quick sweep.)
	for _, pair := range [][2]string{{"RR-splitLoc", "RR"}, {"GP-splitLoc", "GP"}} {
		if last[pair[0]] >= last[pair[1]] {
			t.Fatalf("%s (%v) not faster than %s (%v) at the largest rank count",
				pair[0], last[pair[0]], pair[1], last[pair[1]])
		}
	}
}

// TestTable2ImprovementFactorsPositive: every state's L_tot/l_max must
// improve (>1x) under splitLoc.
func TestTable2ImprovementFactorsPositive(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable2(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 7 || !strings.HasSuffix(fields[6], "x") {
			continue
		}
		rows++
		f, err := strconv.ParseFloat(strings.TrimSuffix(fields[6], "x"), 64)
		if err != nil {
			t.Fatalf("bad improvement in %q", line)
		}
		if f < 1 {
			t.Fatalf("splitLoc made %s worse: %vx", fields[0], f)
		}
	}
	if rows != len(tableStates(true)) {
		t.Fatalf("parsed %d improvement rows, want %d:\n%s", rows, len(tableStates(true)), buf.String())
	}
}
