// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured records). Each experiment is a function that
// computes the artifact's data and prints the same rows/series the paper
// reports; cmd/experiments exposes them on the command line and
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/loadmodel"
	"repro/internal/synthpop"
)

// Options tunes experiment execution.
type Options struct {
	// Scale is the population scale divisor for Table-I presets (default
	// 1000; distribution analyses use AnalysisScale).
	Scale int
	// AnalysisScale is used by the distribution/bound figures that need
	// bigger tails (default 300).
	AnalysisScale int
	// Seed drives all generation.
	Seed uint64
	// Quick shrinks state sets and sweeps for CI/benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1000
	}
	if o.AnalysisScale <= 0 {
		o.AnalysisScale = 300
	}
	if o.Seed == 0 {
		o.Seed = 20140519 // IPDPS 2014 conference date
	}
	return o
}

// Experiment is a runnable artifact regenerator.
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer, opt Options) error
}

// All returns the registry of experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: population sizes of the Table-I regions (generated at scale)", runTable1},
		{"table2", "Table II: total and maximum location load before/after splitLoc", runTable2},
		{"fig2", "Figure 2: load-optimal vs cut-optimal 5-way partitioning of the example graph", runFig2},
		{"fig3", "Figure 3: static/dynamic load model fits and degree/load distributions", runFig3},
		{"fig4", "Figure 4: upper bound on estimated speedup vs partitions (GP)", runFig4},
		{"fig5", "Figure 5: max S_ub/D across 49 states, before/after decomposition", runFig5},
		{"fig6", "Figure 6: divide-edges vs retain-edges node splitting", runFig6},
		{"fig7", "Figure 7: degree and load distributions after splitLoc", runFig7},
		{"fig8", "Figure 8: upper bound on estimated speedup after splitLoc", runFig8},
		{"fig9_11", "Figures 9-11: ablation of SMP mode, completion detection and aggregation", runFig9to11},
		{"fig12", "Figure 12: RR no-opt vs RR (combined communication optimizations)", runFig12},
		{"fig13", "Figure 13: strong scaling, time/day vs core-modules, 4 states x 4 strategies", runFig13},
		{"fig14", "Figure 14: maximum per-partition edge cut (GP-splitLoc)", runFig14},
		{"headline", "Headline: speedups and efficiencies vs the prior state of the art", runHeadline},
	}
}

// ByName resolves one experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// popCache memoizes generated populations: several figures share states.
var (
	popMu    sync.Mutex
	popCache = map[string]*synthpop.Population{}
)

// statePop returns the named state preset at 1:scale (cached).
func statePop(name string, scale int, seed uint64) (*synthpop.Population, error) {
	key := fmt.Sprintf("%s@%d@%d", name, scale, seed)
	popMu.Lock()
	defer popMu.Unlock()
	if p, ok := popCache[key]; ok {
		return p, nil
	}
	p, err := synthpop.GenerateState(name, scale, seed)
	if err != nil {
		return nil, err
	}
	popCache[key] = p
	return p, nil
}

// tableStates returns the seven state names of Table II / Figures 4, 8, 14.
func tableStates(quick bool) []string {
	if quick {
		return []string{"IA", "AR", "WY"}
	}
	return []string{"CA", "NY", "MI", "NC", "IA", "AR", "WY"}
}

// locationLoads returns per-location static loads (paper model units:
// Blue Waters seconds) for a population.
func locationLoads(pop *synthpop.Population) []float64 {
	model := loadmodel.Paper()
	counts := pop.VisitCountsPerLocation()
	loads := make([]float64, len(counts))
	for i, c := range counts {
		loads[i] = model.Load(float64(2 * c))
	}
	return loads
}

// sumMax returns the total and maximum of a load vector.
func sumMax(loads []float64) (total, max float64) {
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	return total, max
}

// partitionSweep returns the partition-count sweep of Figures 4/8
// (12..196,608 in the paper), capped so at least minPerPart items remain
// per partition on average.
func partitionSweep(numItems int, quick bool) []int {
	full := []int{12, 48, 192, 768, 3072, 12288, 49152, 196608}
	if quick {
		full = []int{12, 192, 3072, 49152}
	}
	var out []int
	for _, k := range full {
		out = append(out, k)
		if k >= numItems {
			break
		}
	}
	return out
}

// fmtSI renders large counts compactly (12,288 → "12288"); kept trivial so
// rows are grep-able.
func fmtSI(v int) string { return fmt.Sprintf("%d", v) }
