package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{Scale: 4000, AnalysisScale: 1500, Seed: 7, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	// One entry per paper artifact: 2 tables + figs 2..14 (9-11 merged) +
	// headline = 14 experiments.
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"table1", "table2", "fig13", "headline"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestAllExperimentsRunQuick smoke-runs every artifact regenerator in
// quick mode and sanity-checks the output.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, quickOpts()); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s produced almost no output:\n%s", e.Name, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("%s produced non-finite numbers:\n%s", e.Name, out)
			}
		})
	}
}

func TestTable1DegreeCalibration(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	// Every generated row must include the achieved degrees; the person
	// degree column should be near 5.5.
	lines := strings.Split(buf.String(), "\n")
	dataLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "IA") || strings.HasPrefix(l, "AR") || strings.HasPrefix(l, "WY") {
			dataLines++
		}
	}
	if dataLines != 3 {
		t.Fatalf("quick table1 should have 3 state rows:\n%s", buf.String())
	}
}

func TestTable2ShowsImprovement(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable2(&buf, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement") {
		t.Fatalf("missing summary:\n%s", buf.String())
	}
	// The improvement factor must be > 1 (splitLoc must help).
	if strings.Contains(buf.String(), "avg 0x") || strings.Contains(buf.String(), "avg 1x") {
		t.Fatalf("splitLoc shows no improvement:\n%s", buf.String())
	}
}

func TestFig2MatchesPaperTradeoff(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig2(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Load-optimal must reach the paper's max load of 8.
	if !strings.Contains(out, "max part load  8") {
		t.Fatalf("load-optimal did not reach max load 8:\n%s", out)
	}
}

func TestFig4PlateausOrdered(t *testing.T) {
	var buf bytes.Buffer
	opt := quickOpts()
	if err := runFig4(&buf, opt); err != nil {
		t.Fatal(err)
	}
	// Larger states have higher plateaus: IA >= AR >= WY in the quick set.
	plateaus := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, "plateau(Ltot/lmax)=") {
			continue
		}
		fields := strings.Fields(line)
		name := fields[0]
		numPart := strings.TrimSpace(strings.SplitN(line, "=", 2)[1])
		numField := strings.Fields(numPart)[0]
		v, err := strconv.ParseFloat(numField, 64)
		if err != nil {
			t.Fatalf("cannot parse plateau in %q: %v", line, err)
		}
		plateaus[name] = v
	}
	if len(plateaus) != 3 {
		t.Fatalf("expected 3 plateau rows, got %v\n%s", plateaus, buf.String())
	}
	if !(plateaus["IA"] > plateaus["WY"]) {
		t.Fatalf("plateaus not ordered by size: %v", plateaus)
	}
}

func TestQuickVsFullStateSets(t *testing.T) {
	if len(tableStates(true)) >= len(tableStates(false)) {
		t.Fatal("quick set should be smaller")
	}
	if len(fig13States(true)) >= len(fig13States(false)) {
		t.Fatal("quick fig13 set should be smaller")
	}
}

func TestPartitionSweepCaps(t *testing.T) {
	ks := partitionSweep(1000, false)
	if ks[len(ks)-1] > 3072*4 {
		t.Fatalf("sweep not capped: %v", ks)
	}
	full := partitionSweep(1<<30, false)
	if full[len(full)-1] != 196608 {
		t.Fatalf("full sweep should reach 196608: %v", full)
	}
}

func TestSubSeriesMonotone(t *testing.T) {
	loads := make([]float64, 500)
	for i := range loads {
		loads[i] = 1 + float64(i%7)
	}
	series := subSeries(loads, []int{2, 8, 32, 128})
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1]*0.99 {
			t.Fatalf("S_ub should not decrease with k on flat loads: %v", series)
		}
	}
}

func TestSubSeriesBottleneck(t *testing.T) {
	// One giant load: S_ub plateaus at Ltot/lmax regardless of k.
	loads := append([]float64{1000}, make([]float64, 99)...)
	for i := 1; i < 100; i++ {
		loads[i] = 1
	}
	series := subSeries(loads, []int{10, 1000})
	want := 1099.0 / 1000.0
	for _, s := range series[1:] {
		if s > want*1.01 {
			t.Fatalf("S_ub exceeds the l_max bound: %v > %v", s, want)
		}
	}
}
