package experiments

import (
	"fmt"
	"io"

	"repro/internal/loadmodel"
	"repro/internal/splitloc"
	"repro/internal/stats"
)

// runFig6 demonstrates the two node-splitting methods of Figure 6 on the
// Figure 2 example graph: splitting hub node 1 into nodes 1 and 14 by
// dividing its edges (a) versus retaining them (b).
func runFig6(w io.Writer, opt Options) error {
	g := fig2Graph()
	maxDeg := func(gr interface {
		NumVertices() int
		Degree(int) int
	}) int {
		m := 0
		for v := 0; v < gr.NumVertices(); v++ {
			if d := gr.Degree(v); d > m {
				m = d
			}
		}
		return m
	}
	fmt.Fprintf(w, "Figure 6 — splitting heavy node 1 (weight 8, degree %d) into two\n", g.Degree(0))
	div := splitloc.DivideEdgesVertex(g, 0, 2)
	ret := splitloc.RetainEdgesVertex(g, 0, 2)
	fmt.Fprintf(w, "(a) divide edges: vertices %d->%d, edges %d->%d, max degree %d->%d, fragment weights %d/%d\n",
		g.NumVertices(), div.NumVertices(), g.NumEdges(), div.NumEdges(),
		maxDeg(g), maxDeg(div), div.VertexWeight(0, 0), div.VertexWeight(13, 0))
	fmt.Fprintf(w, "(b) retain edges: vertices %d->%d, edges %d->%d, max degree %d->%d, fragment weights %d/%d\n",
		g.NumVertices(), ret.NumVertices(), g.NumEdges(), ret.NumEdges(),
		maxDeg(g), maxDeg(ret), ret.VertexWeight(0, 0), ret.VertexWeight(13, 0))
	fmt.Fprintf(w, "divide-edges halves both load and communication; retain-edges halves only load\n")
	fmt.Fprintf(w, "(EpiSimdemics uses divide-edges: people only interact within a sublocation)\n")
	return nil
}

// runFig7 regenerates Figure 7: the degree and static load distributions
// after graph modification (GP-splitLoc), with the reduction statistics
// the paper quotes: d_max down ~54x on average (max 341x, min 12x), graph
// size up at most 5.25%.
func runFig7(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	states := tableStates(opt.Quick)
	model := loadmodel.Paper()
	fmt.Fprintf(w, "Figure 7 — distributions after splitLoc (1:%d scale)\n", opt.AnalysisScale)
	var degReductions, growths []float64
	for _, name := range states {
		pop, err := statePop(name, opt.AnalysisScale, opt.Seed)
		if err != nil {
			return err
		}
		split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 196608})
		if err != nil {
			return err
		}
		degReductions = append(degReductions, float64(st.MaxDegreePre)/float64(st.MaxDegreePost))
		growths = append(growths, st.GrowthFrac)

		fmt.Fprintf(w, "%-4s split %d locations into %d; d_max %d -> %d (%.0fx); D grew %.2f%%\n",
			name, st.NumSplit, st.NumFragments, st.MaxDegreePre, st.MaxDegreePost,
			float64(st.MaxDegreePre)/float64(st.MaxDegreePost), st.GrowthFrac*100)

		degrees := make([]float64, 0, split.NumLocations())
		for _, d := range split.UniqueVisitorsPerLocation() {
			degrees = append(degrees, float64(d))
		}
		fmt.Fprintf(w, "  (a) degree ")
		printCCDFRow(w, name, degrees)
		counts := split.VisitCountsPerLocation()
		loads := make([]float64, len(counts))
		for i, c := range counts {
			loads[i] = model.Load(float64(2 * c))
		}
		fmt.Fprintf(w, "  (b) load   ")
		printCCDFRow(w, name, loads)
	}
	d := stats.Summarize(degReductions)
	gr := stats.Summarize(growths)
	fmt.Fprintf(w, "d_max reduction avg %.0fx (paper: 54x avg, 341x max, 12x min); growth avg %.2f%% max %.2f%% (paper: <=5.25%%)\n",
		d.Mean, gr.Mean*100, gr.Max*100)
	return nil
}
