package experiments

import (
	"fmt"
	"io"

	episim "repro"
	"repro/internal/machine"
)

// commSweep is the rank sweep used by the communication figures.
func commSweep(quick bool) []int {
	if quick {
		return []int{256, 1024}
	}
	return []int{64, 256, 1024, 4096}
}

// runFig9to11 reconstructs Figures 9–11 (the evaluation text for these is
// truncated in the available source; see DESIGN.md): the individual effect
// of each Section IV optimization — SMP mode with a dedicated
// communication thread, completion detection vs quiescence detection, and
// message aggregation — measured as modeled time per day with exactly one
// optimization disabled at a time.
func runFig9to11(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	pop, err := statePop("IA", opt.Scale, opt.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figures 9-11 — communication optimization ablation (IA 1:%d, RR distribution)\n", opt.Scale)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s\n",
		"ranks", "all-on(s)", "-aggregation", "-SMP", "-CD(use QD)", "none(no-opt)")
	for _, k := range commSweep(opt.Quick) {
		pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
			Strategy: episim.RR, Ranks: k, Seed: opt.Seed})
		if err != nil {
			return err
		}
		base := episim.DefaultPerfOptions()

		noAgg := base
		noAgg.Aggregation = 0

		noSMP := base
		noSMP.Machine.SMPEnabled = false

		qd := base
		qd.Sync = machine.QuiescenceDetection

		noOpt := episim.NoOptPerfOptions()

		t := func(o episim.PerfOptions) float64 { return episim.ModelDayTime(pl, o).Total }
		fmt.Fprintf(w, "%-8d %12.4f %12.4f %12.4f %12.4f %12.4f\n",
			k, t(base), t(noAgg), t(noSMP), t(qd), t(noOpt))
	}
	fmt.Fprintf(w, "each column re-enables all optimizations except the named one\n")
	return nil
}

// runFig12 regenerates Figure 12's headline comparison: "RR no-opt" (the
// first Charm++ implementation: no aggregation, no SMP comm thread,
// quiescence detection, unoptimized messaging software) versus the
// optimized "RR". The paper reports the combined optimizations provide an
// additional ~40% reduction in execution time.
func runFig12(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	pop, err := statePop("IA", opt.Scale, opt.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 12 — RR no-opt vs RR (IA 1:%d)\n", opt.Scale)
	fmt.Fprintf(w, "%-8s %14s %14s %12s\n", "ranks", "RR no-opt(s)", "RR(s)", "reduction")
	var worst, best float64
	for _, k := range commSweep(opt.Quick) {
		pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
			Strategy: episim.RR, Ranks: k, Seed: opt.Seed})
		if err != nil {
			return err
		}
		tNoOpt := episim.ModelDayTime(pl, episim.NoOptPerfOptions()).Total
		tOpt := episim.ModelDayTime(pl, episim.DefaultPerfOptions()).Total
		red := 1 - tOpt/tNoOpt
		if red > best {
			best = red
		}
		if worst == 0 || red < worst {
			worst = red
		}
		fmt.Fprintf(w, "%-8d %14.4f %14.4f %11.1f%%\n", k, tNoOpt, tOpt, red*100)
	}
	fmt.Fprintf(w, "reduction range %.0f%%..%.0f%% across the sweep (paper: ~40%% combined)\n",
		worst*100, best*100)
	return nil
}
