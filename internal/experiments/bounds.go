package experiments

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/splitloc"
	"repro/internal/synthpop"
)

// fig2Graph builds the 13-node example graph of Figure 2: node 1 (index 0)
// is a weight-8 hub with eight edges; nodes 7 and 9 have weight 1; the
// rest weight 2. Total weight 30, so a 5-way balance-optimal partitioning
// has average load 6 and must isolate the hub (max load 8, cutting all its
// edges), while a cut-optimal partitioning keeps the hub with neighbors
// (fewer cuts, max load 10).
func fig2Graph() *graph.Graph {
	b := graph.NewBuilder(13, 1)
	weights := []int64{8, 2, 2, 2, 2, 2, 1, 2, 1, 2, 2, 2, 2} // nodes 1..13
	for v, wt := range weights {
		b.SetVertexWeight(v, 0, wt)
	}
	for _, spoke := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		b.AddEdge(0, spoke, 1)
	}
	b.AddEdge(9, 10, 1)
	b.AddEdge(10, 11, 1)
	b.AddEdge(11, 12, 1)
	b.AddEdge(1, 9, 1)
	b.AddEdge(5, 12, 1)
	return b.Build()
}

// runFig2 contrasts the two partitioning objectives of Figure 2 on the
// example graph: minimize load imbalance (LPT, ignoring edges) vs minimize
// edge cut (multilevel with loose balance).
func runFig2(w io.Writer, opt Options) error {
	g := fig2Graph()
	loads := make([]int64, g.NumVertices())
	for v := range loads {
		loads[v] = g.VertexWeight(v, 0)
	}
	report := func(label string, p *partition.Partitioning) partition.Quality {
		q := partition.Evaluate(g, p)
		var maxLoad int64
		for _, pw := range q.PartWeights {
			if pw[0] > maxLoad {
				maxLoad = pw[0]
			}
		}
		fmt.Fprintf(w, "%-22s edge cut %2d   max part load %2d   max/avg %.2f\n",
			label, q.EdgeCut, maxLoad, q.MaxOverAvg[0])
		return q
	}
	fmt.Fprintf(w, "Figure 2 — 5-way partitioning of the 13-node example graph (total load 30)\n")
	fmt.Fprintf(w, "paper: (a) load-optimal: 8 cuts, max load 8; (b) cut-optimal: 6 cuts, max load 10\n")
	report("(a) load-optimal (LPT)", partition.LPT(loads, 5))
	// ε = 0.67 caps parts at 10 = the paper's cut-optimal max load.
	report("(b) cut-optimal (ML)", partition.Multilevel(g, 5, partition.Options{Imbalance: 0.67, Seed: 3}))
	return nil
}

// subSeries computes the S_ub = L_tot/L_max speedup bound series over a
// partition-count sweep using LPT (the load-balance-optimal assignment;
// the bound the paper's Figures 4/8 estimate). Loads are quantized static
// model units.
func subSeries(loads []float64, ks []int) []float64 {
	q := newQuantizedLoads(loads)
	out := make([]float64, len(ks))
	for i, k := range ks {
		p := partition.LPT(q.ints, k)
		var lmax int64
		sums := make([]int64, k)
		for v, a := range p.Assign {
			sums[a] += q.ints[v]
		}
		for _, s := range sums {
			if s > lmax {
				lmax = s
			}
		}
		if lmax > 0 {
			out[i] = float64(q.total) / float64(lmax)
		}
	}
	return out
}

type quantizedLoads struct {
	ints  []int64
	total int64
}

func newQuantizedLoads(loads []float64) quantizedLoads {
	// Fixed-point at 1e9 relative to the max load keeps ratios intact.
	var maxV float64
	for _, l := range loads {
		if l > maxV {
			maxV = l
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	scale := 1e9 / maxV
	q := quantizedLoads{ints: make([]int64, len(loads))}
	for i, l := range loads {
		v := int64(l * scale)
		if l > 0 && v < 1 {
			v = 1
		}
		q.ints[i] = v
		q.total += v
	}
	return q
}

// runFig4 regenerates Figure 4: the estimated speedup upper bound for the
// location computation versus the number of partitions, per state, before
// decomposition. The paper's curves flatten at L_tot/l_max, ordered by
// state size (CA highest, WY lowest).
func runFig4(w io.Writer, opt Options) error {
	return runSubBound(w, opt, false)
}

// runFig8 is Figure 8: the same sweep after splitLoc; the plateaus rise by
// orders of magnitude.
func runFig8(w io.Writer, opt Options) error {
	return runSubBound(w, opt, true)
}

func runSubBound(w io.Writer, opt Options, split bool) error {
	opt = opt.withDefaults()
	states := tableStates(opt.Quick)
	label := "GP"
	if split {
		label = "GP-splitLoc"
	}
	fmt.Fprintf(w, "Figure %s — upper bound on estimated speedup vs partitions (%s, 1:%d scale)\n",
		map[bool]string{false: "4", true: "8"}[split], label, opt.AnalysisScale)
	for _, name := range states {
		pop, err := statePop(name, opt.AnalysisScale, opt.Seed)
		if err != nil {
			return err
		}
		if split {
			pop, _, err = splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 196608})
			if err != nil {
				return err
			}
		}
		loads := locationLoads(pop)
		ks := partitionSweep(len(loads), opt.Quick)
		series := subSeries(loads, ks)
		total, lmax := sumMax(loads)
		fmt.Fprintf(w, "%-4s plateau(Ltot/lmax)=%8.0f  ", name, total/lmax)
		for i, k := range ks {
			fmt.Fprintf(w, " k=%s:%.0f", fmtSI(k), series[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig5 regenerates Figure 5: one dot per state (48 contiguous + DC),
// max S_ub/D versus the number of locations D, before (a) and after (b)
// decomposition. Before: the bigger the state, the lower S_ub/D (the
// heavy tail grows with size); after: the decline is repaired.
func runFig5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	family := synthpop.StateFamily()
	if opt.Quick {
		family = family[:8]
	}
	fmt.Fprintf(w, "Figure 5 — max(S_ub/D) per state, before and after decomposition (1:%d scale)\n", opt.Scale)
	fmt.Fprintf(w, "%-5s %10s %14s %14s %10s\n", "state", "locations", "Sub/D before", "Sub/D after", "gain")
	type dot struct {
		name          string
		d             int
		before, after float64
	}
	var dots []dot
	for _, p := range family {
		pop, err := statePop(p.Name, opt.Scale, opt.Seed)
		if err != nil {
			return err
		}
		loads := locationLoads(pop)
		total, lmax := sumMax(loads)
		d := len(loads)
		before := total / lmax / float64(d)

		split, _, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 196608})
		if err != nil {
			return err
		}
		postLoads := locationLoads(split)
		totalPost, lmaxPost := sumMax(postLoads)
		after := totalPost / lmaxPost / float64(len(postLoads))
		dots = append(dots, dot{p.Name, d, before, after})
	}
	var gains []float64
	for _, d := range dots {
		gain := d.after / d.before
		gains = append(gains, gain)
		fmt.Fprintf(w, "%-5s %10d %14.6g %14.6g %9.1fx\n", d.name, d.d, d.before, d.after, gain)
	}
	// The qualitative check of Figure 5(a): S_ub/D decreases with size.
	small, large := dots[0], dots[0]
	for _, d := range dots {
		if d.d < small.d {
			small = d
		}
		if d.d > large.d {
			large = d
		}
	}
	fmt.Fprintf(w, "before: smallest state (%s) Sub/D %.3g vs largest (%s) %.3g — declining with size, as in Fig 5(a)\n",
		small.name, small.before, large.name, large.before)
	return nil
}
