package experiments

import (
	"fmt"
	"io"

	episim "repro"
	"repro/internal/machine"
	"repro/internal/stats"
)

// fig13States are the four states of Figure 13.
func fig13States(quick bool) []string {
	if quick {
		return []string{"IA"}
	}
	return []string{"CA", "MI", "IA", "AR"}
}

// fig13Sweep returns the core-module sweep, capped so the partitioner has
// at least minVerticesPerPart vertices per part.
func fig13Sweep(vertices int, quick bool) []int {
	full := []int{1, 4, 16, 64, 256, 1024, 4096, 16384}
	if quick {
		full = []int{1, 16, 256, 2048}
	}
	var out []int
	for _, k := range full {
		if k > 1 && vertices/k < 4 {
			break
		}
		out = append(out, k)
	}
	return out
}

// strategyOptions lists the four curves of Figure 13.
func strategyOptions() []episim.PlacementOptions {
	return []episim.PlacementOptions{
		{Strategy: episim.RR},
		{Strategy: episim.GP},
		{Strategy: episim.RR, SplitLoc: true},
		{Strategy: episim.GP, SplitLoc: true},
	}
}

// runFig13 regenerates Figure 13: strong scaling of simulation time per
// day versus core-modules for each state and distribution strategy. The
// paper's shape: RR and GP flatten early (bounded by the heaviest
// location, Section III-B), while the splitLoc variants keep scaling, with
// GP-splitLoc winning at scale on communication.
func runFig13(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	perf := episim.DefaultPerfOptions()
	for _, name := range fig13States(opt.Quick) {
		pop, err := statePop(name, opt.Scale, opt.Seed)
		if err != nil {
			return err
		}
		vertices := pop.NumPersons() + pop.NumLocations()
		ks := fig13Sweep(vertices, opt.Quick)
		fmt.Fprintf(w, "Figure 13 — %s (1:%d): simulation time per day (s) vs core-modules\n", name, opt.Scale)
		fmt.Fprintf(w, "%-14s", "strategy")
		for _, k := range ks {
			fmt.Fprintf(w, " %10d", k)
		}
		fmt.Fprintln(w)
		for _, po := range strategyOptions() {
			po.Ranks = 1
			po.Seed = opt.Seed
			fmt.Fprintf(w, "%-14s", po.Label())
			for _, k := range ks {
				po.Ranks = k
				pl, err := episim.BuildPlacement(pop, po)
				if err != nil {
					return err
				}
				t := episim.ModelDayTime(pl, perf).Total
				fmt.Fprintf(w, " %10.4f", t)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig14 regenerates Figure 14: the maximum per-partition edge cut under
// GP-splitLoc versus partition count, compared against the hypothetical
// all-remote-communication value (total edges / partitions). The paper
// reports ratios from 2.7x (NY) to 19x (WY), averaging 7.83x across the
// seven states at the largest partition counts.
func runFig14(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	states := tableStates(opt.Quick)
	ks := []int{48, 768, 3072}
	if opt.Quick {
		ks = []int{48, 768}
	}
	fmt.Fprintf(w, "Figure 14 — max per-partition edge cut (GP-splitLoc, 1:%d)\n", opt.Scale)
	fmt.Fprintf(w, "%-5s", "state")
	for _, k := range ks {
		fmt.Fprintf(w, " %12s %8s", fmt.Sprintf("maxcut@%d", k), "ratio")
	}
	fmt.Fprintln(w)
	var lastRatios []float64
	for _, name := range states {
		pop, err := statePop(name, opt.Scale, opt.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-5s", name)
		for i, k := range ks {
			if pop.NumPersons()/k < 4 {
				fmt.Fprintf(w, " %12s %8s", "-", "-")
				continue
			}
			pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
				Strategy: episim.GP, SplitLoc: true, Ranks: k, Seed: opt.Seed})
			if err != nil {
				return err
			}
			q := pl.Quality
			allRemote := float64(q.TotalEdgeWeight) / float64(k)
			ratio := float64(q.MaxPartCut) / allRemote
			fmt.Fprintf(w, " %12d %7.1fx", q.MaxPartCut, ratio)
			if i == len(ks)-1 {
				lastRatios = append(lastRatios, ratio)
			}
		}
		fmt.Fprintln(w)
	}
	if len(lastRatios) > 0 {
		s := stats.Summarize(lastRatios)
		fmt.Fprintf(w, "ratio vs all-remote at k=%d: avg %.2fx (paper: avg 7.83x, WY 19x, NY 2.7x)\n",
			ks[len(ks)-1], s.Mean)
	}
	return nil
}

// runHeadline reproduces the introduction's headline comparison: strong
// scaling speedup and parallel efficiency of the optimized EpiSimdemics on
// the US population, versus the flattening un-split baseline — the shape
// behind "speedup of 14,357 on 64K cores (22% efficiency)" and "58,649 on
// 360,448 cores (16.3%)", vs the prior state of the art's 10,000 on 64K
// (15.2%).
func runHeadline(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if opt.Quick {
		scale *= 4
	}
	pop, err := statePop("US", scale, opt.Seed)
	if err != nil {
		return err
	}
	perf := episim.DefaultPerfOptions()
	fmt.Fprintf(w, "Headline — US (1:%d), speedup and efficiency vs core-modules\n", scale)

	ks := []int{1, 16, 256, 4096, 16384, 65536}
	if opt.Quick {
		ks = []int{1, 64, 1024, 8192}
	}
	type row struct {
		label string
		po    episim.PlacementOptions
		maxK  int
	}
	rows := []row{
		{"RR (no split)", episim.PlacementOptions{Strategy: episim.RR}, 1 << 30},
		{"RR-splitLoc", episim.PlacementOptions{Strategy: episim.RR, SplitLoc: true}, 1 << 30},
		{"GP-splitLoc", episim.PlacementOptions{Strategy: episim.GP, SplitLoc: true},
			(pop.NumPersons() + pop.NumLocations()) / 8},
	}
	for _, r := range rows {
		var t1 float64
		fmt.Fprintf(w, "%-14s", r.label)
		for _, k := range ks {
			if k > r.maxK {
				fmt.Fprintf(w, " %22s", "-")
				continue
			}
			po := r.po
			po.Ranks = k
			po.Seed = opt.Seed
			po.SplitMaxPartitions = ks[len(ks)-1]
			pl, err := episim.BuildPlacement(pop, po)
			if err != nil {
				return err
			}
			t := episim.ModelDayTime(pl, perf).Total
			if k == 1 {
				t1 = t
				fmt.Fprintf(w, " %22s", fmt.Sprintf("t1=%.1fs", t))
				continue
			}
			sp := machine.Speedup(t1, t)
			fmt.Fprintf(w, " %22s", fmt.Sprintf("%.0fx(%4.1f%%)@%d", sp, 100*machine.Efficiency(t1, t, k), k))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper: prior art 10,000x @64K (15.2%%); this work 14,357x @64K (22%%), 58,649x @360,448 (16.3%%)\n")
	fmt.Fprintf(w, "(absolute speedups scale with data size; the reproduced claim is the shape:\n")
	fmt.Fprintf(w, " un-split RR flattens at Ltot/lmax, splitLoc keeps scaling with usable efficiency)\n")
	return nil
}
