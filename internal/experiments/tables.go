package experiments

import (
	"fmt"
	"io"

	"repro/internal/splitloc"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// runTable1 regenerates Table I: for each region preset, the full-scale
// sizes the paper reports and the sizes our generator achieves at scale,
// plus the degree statistics the generator is calibrated against
// (visits/person ≈ 5.5, visits/location ≈ 21.5).
func runTable1(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	presets := synthpop.TableIPresets
	if opt.Quick {
		presets = presets[5:] // IA, AR, WY
	}
	fmt.Fprintf(w, "Table I — population data (paper full scale vs generated at 1:%d)\n", opt.Scale)
	fmt.Fprintf(w, "%-5s %15s %15s %15s | %10s %10s %10s %8s %8s\n",
		"name", "paper visits", "paper people", "paper locs",
		"gen visits", "gen people", "gen locs", "v/pers", "v/loc")
	for _, p := range presets {
		pop, err := statePop(p.Name, opt.Scale, opt.Seed)
		if err != nil {
			return err
		}
		vp := float64(pop.NumVisits()) / float64(pop.NumPersons())
		vl := float64(pop.NumVisits()) / float64(pop.NumLocations())
		fmt.Fprintf(w, "%-5s %15d %15d %15d | %10d %10d %10d %8.2f %8.2f\n",
			p.Name, p.Visits, p.People, p.Locations,
			pop.NumVisits(), pop.NumPersons(), pop.NumLocations(), vp, vl)
	}
	fmt.Fprintf(w, "paper reference: visits/person avg 5.5 (sigma 2.6); visits/location avg 21.5 (US)\n")
	return nil
}

// runTable2 regenerates Table II: the total load L_tot and the maximum
// per-location load before (l_max) and after (ℓ_max) splitLoc, in static
// load model units. The paper reports L_tot/l_max improving by 89x on
// average (min 11, max 290) across the 49 states.
func runTable2(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	states := tableStates(opt.Quick)
	fmt.Fprintf(w, "Table II — location load before/after splitLoc (1:%d scale, load model units x1e3)\n", opt.AnalysisScale)
	fmt.Fprintf(w, "%-5s %12s %12s %12s %14s %14s %10s\n",
		"state", "Ltot", "lmax", "lmax'", "Ltot/lmax", "Ltot/lmax'", "improve")
	var improvements []float64
	for _, name := range states {
		pop, err := statePop(name, opt.AnalysisScale, opt.Seed)
		if err != nil {
			return err
		}
		loads := locationLoads(pop)
		total, lmax := sumMax(loads)

		split, _, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 16384})
		if err != nil {
			return err
		}
		loadsPost := locationLoads(split)
		totalPost, lmaxPost := sumMax(loadsPost)
		_ = totalPost // mass is conserved up to model nonlinearity

		subPre := total / lmax
		subPost := total / lmaxPost
		improvements = append(improvements, subPost/subPre)
		fmt.Fprintf(w, "%-5s %12.1f %12.4f %12.4f %14.0f %14.0f %9.1fx\n",
			name, total*1e3, lmax*1e3, lmaxPost*1e3, subPre, subPost, subPost/subPre)
	}
	s := stats.Summarize(improvements)
	fmt.Fprintf(w, "L_tot/l_max improvement: avg %.0fx (min %.0fx, max %.0fx); paper: avg 89x (min 11x, max 290x)\n",
		s.Mean, s.Min, s.Max)
	return nil
}
