package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/des"
	"repro/internal/loadmodel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// desSample is one measured location-day: workload counters plus measured
// Go execution seconds of the DES.
type desSample struct {
	events        float64
	interactions  float64
	sumReciprocal float64
	seconds       float64
}

// measureDES synthesizes location-days across a range of visitor counts
// and measures the real DES execution time of each — the measurement
// behind Figure 3(a,b). Like the paper ("we build the model by measuring
// LocationManagers' processing time due to the limited timer precision"),
// each point repeats the DES enough times for the timer to resolve it.
func measureDES(opt Options) []desSample {
	sizes := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	pointsPer := 6
	if opt.Quick {
		sizes = []int{8, 32, 128, 512}
		pointsPer = 3
	}
	// Room density and infectious fraction vary per point so the dynamic
	// model's interaction terms are not collinear with the event count.
	divisors := []int{12, 30, 60}
	infFracs := []float64{0.1, 0.25, 0.4}
	var samples []desSample
	for _, n := range sizes {
		for pt := 0; pt < pointsPer; pt++ {
			s := xrand.NewStream(opt.Seed + uint64(n*100+pt))
			visitors := make([]des.Visitor, n)
			subs := 1 + n/divisors[pt%len(divisors)]
			infFrac := infFracs[(pt/len(divisors))%len(infFracs)]
			for i := range visitors {
				start := int16(s.Intn(1200))
				inf := 0.0
				if s.Float64() < infFrac {
					inf = 1
				}
				visitors[i] = des.Visitor{
					Person:         int32(i),
					Sub:            int32(s.Intn(subs)),
					Start:          start,
					End:            start + int16(20+s.Intn(300)),
					Infectivity:    inf,
					Susceptibility: float64(s.Intn(2)),
				}
			}
			p := des.Params{Day: uint64(pt), LocKey: uint64(n), Tau: 5e-5}
			var r des.Result
			// Warm up, then time enough repetitions to resolve.
			des.Simulate(visitors, p, &r)
			reps := 1 + 20000/(n+1)
			var elapsed time.Duration
			for {
				r.Reset()
				start := time.Now()
				for rep := 0; rep < reps; rep++ {
					r.Reset()
					des.Simulate(visitors, p, &r)
				}
				elapsed = time.Since(start)
				if elapsed > 2*time.Millisecond || reps > 1<<20 {
					break
				}
				reps *= 4
			}
			samples = append(samples, desSample{
				events:        float64(r.Events),
				interactions:  float64(r.Interactions),
				sumReciprocal: r.SumReciprocal,
				seconds:       elapsed.Seconds() / float64(reps),
			})
		}
	}
	return samples
}

// runFig3 regenerates Figure 3: (a) the static load model fitted against
// measured DES times with its mean relative error (paper: ≈5%); (b) the
// dynamic model fit quality; (c) the location in-degree distribution; (d)
// the static load distribution.
func runFig3(w io.Writer, opt Options) error {
	opt = opt.withDefaults()

	// (a) static model: predicted vs observed.
	samples := measureDES(opt)
	var events, secs []float64
	for _, s := range samples {
		events = append(events, s.events)
		secs = append(secs, s.seconds)
	}
	static, err := loadmodel.FitStatic(events, secs)
	if err != nil {
		return err
	}
	var pred []float64
	for _, e := range events {
		pred = append(pred, static.Load(e))
	}
	errStatic := stats.MeanRelativeError(pred, secs)
	errWeighted := timeWeightedError(pred, secs)
	fmt.Fprintf(w, "Figure 3(a) — static load model (piecewise linear, crossover phi=%.0f events)\n", static.Phi)
	fmt.Fprintf(w, "%10s %14s %14s\n", "events", "observed(s)", "predicted(s)")
	for i := 0; i < len(events); i += max(1, len(events)/10) {
		fmt.Fprintf(w, "%10.0f %14.3e %14.3e\n", events[i], secs[i], pred[i])
	}
	fmt.Fprintf(w, "time-weighted error %.1f%% (paper: ~5%% on LM-level measurements); unweighted per-point %.1f%%\n\n",
		errWeighted*100, errStatic*100)

	// (b) dynamic model.
	var inter, recip []float64
	for _, s := range samples {
		inter = append(inter, s.interactions)
		recip = append(recip, s.sumReciprocal)
	}
	dyn, err := loadmodel.FitDynamic(events, inter, recip, secs)
	if err != nil {
		return err
	}
	var dynPred []float64
	for i := range samples {
		dynPred = append(dynPred, dyn.Load(events[i], inter[i], recip[i]))
	}
	fmt.Fprintf(w, "Figure 3(b) — dynamic load model Y = %.3g + %.3g*events + %.3g*inter + %.3g*recip\n",
		dyn.C0, dyn.C1, dyn.C2, dyn.C3)
	fmt.Fprintf(w, "R^2 = %.3f, time-weighted error %.1f%% (run-time only; not used for partitioning)\n\n",
		stats.R2(dynPred, secs), timeWeightedError(dynPred, secs)*100)

	// (c, d) distributions for the Table II states.
	states := tableStates(opt.Quick)
	model := loadmodel.Paper()
	fmt.Fprintf(w, "Figure 3(c) — location in-degree CCDF (unique visitors), 1:%d scale\n", opt.AnalysisScale)
	for _, name := range states {
		pop, err := statePop(name, opt.AnalysisScale, opt.Seed)
		if err != nil {
			return err
		}
		degrees := make([]float64, 0, pop.NumLocations())
		for _, d := range pop.UniqueVisitorsPerLocation() {
			degrees = append(degrees, float64(d))
		}
		printCCDFRow(w, name, degrees)
	}
	fmt.Fprintf(w, "\nFigure 3(d) — static load CCDF per location (model units)\n")
	for _, name := range states {
		pop, err := statePop(name, opt.AnalysisScale, opt.Seed)
		if err != nil {
			return err
		}
		counts := pop.VisitCountsPerLocation()
		loads := make([]float64, len(counts))
		for i, c := range counts {
			loads[i] = model.Load(float64(2 * c))
		}
		printCCDFRow(w, name, loads)
	}
	return nil
}

// timeWeightedError is sum(|pred-obs|)/sum(obs): the error of the model on
// aggregate predicted time, the quantity partitioning actually consumes.
// The paper's ~5% figure is measured at LocationManager granularity where
// sub-microsecond locations cannot dominate, which this weighting mirrors.
func timeWeightedError(pred, obs []float64) float64 {
	var num, den float64
	for i := range pred {
		d := pred[i] - obs[i]
		if d < 0 {
			d = -d
		}
		num += d
		den += obs[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// printCCDFRow prints a compact log-spaced CCDF: count of items with value
// >= x for decade thresholds, plus the tail exponent estimate.
func printCCDFRow(w io.Writer, name string, xs []float64) {
	s := stats.Summarize(xs)
	alpha := stats.PowerLawAlpha(xs, s.Mean*4)
	fmt.Fprintf(w, "%-4s n=%-8d mean=%-10.4g max=%-10.4g tail-alpha=%-5.2f ccdf:",
		name, s.N, s.Mean, s.Max, alpha)
	for x := s.Mean; x <= s.Max; x *= 4 {
		count := 0
		for _, v := range xs {
			if v >= x {
				count++
			}
		}
		fmt.Fprintf(w, " >=%.3g:%d", x, count)
	}
	fmt.Fprintln(w)
}
