package machine

import (
	"testing"
	"testing/quick"
)

func TestTorusCoordsRoundTrip(t *testing.T) {
	tor := Torus{X: 3, Y: 4, Z: 5}
	seen := map[[3]int]bool{}
	for n := 0; n < tor.Nodes(); n++ {
		x, y, z := tor.Coords(n)
		if x < 0 || x >= 3 || y < 0 || y >= 4 || z < 0 || z >= 5 {
			t.Fatalf("node %d coords (%d,%d,%d) out of range", n, x, y, z)
		}
		key := [3]int{x, y, z}
		if seen[key] {
			t.Fatalf("duplicate coords for node %d", n)
		}
		seen[key] = true
	}
}

func TestHopDistanceBasics(t *testing.T) {
	tor := Torus{X: 4, Y: 4, Z: 4}
	if d := tor.HopDistance(0, 0); d != 0 {
		t.Fatalf("self distance %d", d)
	}
	if d := tor.HopDistance(0, 1); d != 1 {
		t.Fatalf("neighbor distance %d", d)
	}
	// Wraparound: node 3 in x is one hop from node 0 on a size-4 ring.
	if d := tor.HopDistance(0, 3); d != 1 {
		t.Fatalf("wraparound distance %d, want 1", d)
	}
	// Opposite corner of a 4-ring: 2 hops per dimension.
	opposite := 2 + 2*4 + 2*16
	if d := tor.HopDistance(0, opposite); d != 6 {
		t.Fatalf("far distance %d, want 6", d)
	}
}

func TestHopDistanceProperties(t *testing.T) {
	tor := BlueWatersTorus()
	n := tor.Nodes()
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		dab := tor.HopDistance(a, b)
		// Symmetry, identity, triangle inequality, diameter bound.
		if dab != tor.HopDistance(b, a) {
			return false
		}
		if tor.HopDistance(a, a) != 0 {
			return false
		}
		if dab > tor.HopDistance(a, c)+tor.HopDistance(c, b) {
			return false
		}
		return dab <= 23/2+24/2+24/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanHops(t *testing.T) {
	// Ring of 4: distances from any node are {0,1,2,1}: mean 1. Per
	// dimension of a 4x4x4 torus: mean 3.
	tor := Torus{X: 4, Y: 4, Z: 4}
	if m := tor.MeanHops(); m != 3 {
		t.Fatalf("mean hops %v, want 3", m)
	}
	bw := BlueWatersTorus()
	if m := bw.MeanHops(); m < 10 || m > 20 {
		t.Fatalf("Blue Waters mean hops %v implausible", m)
	}
}

func TestDegenerateTorus(t *testing.T) {
	var z Torus
	if z.Nodes() != 0 {
		t.Fatal("zero torus has nodes")
	}
	if x, y, zz := z.Coords(5); x != 0 || y != 0 || zz != 0 {
		t.Fatal("zero torus coords")
	}
	one := Torus{X: 1, Y: 1, Z: 1}
	if one.HopDistance(0, 0) != 0 || one.MeanHops() != 0 {
		t.Fatal("single-node torus distances")
	}
}

func TestExtraLatencyPriced(t *testing.T) {
	c := BlueWatersXE6()
	quiet := []RankPhase{{Compute: 0.001}}
	far := []RankPhase{{Compute: 0.001, ExtraLatency: 0.5}}
	tq := c.PhaseTime(quiet, CompletionDetection).Network
	tf := c.PhaseTime(far, CompletionDetection).Network
	if tf-tq < 0.49 {
		t.Fatalf("extra latency not priced: %v vs %v", tf, tq)
	}
}
