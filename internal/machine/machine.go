// Package machine prices execution traces on a Cray XE6-like machine
// (NCSA Blue Waters): it is the substitute for the paper's 360K physical
// cores. The engine (or the experiment harness) produces, for each logical
// rank and simulation phase, the compute seconds and message counts; this
// package maps them to simulated wall-clock time per simulated day.
//
// The model captures exactly the effects the paper's optimizations act on:
//
//   - per-message CPU overhead at sender and receiver, reduced by message
//     aggregation (fewer, larger wire messages; Section IV-C) and offloaded
//     to the dedicated communication thread in SMP mode (Section IV-A);
//   - network latency/bandwidth by locality class (intra-node vs
//     inter-node);
//   - synchronization cost per phase: a logarithmic reduction tree, with
//     completion detection needing fewer confirmation rounds than
//     quiescence detection (Section IV-B);
//   - SMP mode's compute-core tax: k processes per node each donate one
//     core to a communication thread.
//
// Constants are calibrated to Gemini-class hardware in order of magnitude;
// the reproduction targets curve *shape* (who flattens where), not
// absolute Blue Waters numbers.
package machine

import "math"

// SyncMode mirrors charm.SyncMode for phase synchronization pricing.
type SyncMode uint8

// Synchronization protocols.
const (
	CompletionDetection SyncMode = iota
	QuiescenceDetection
)

// Config is the machine description plus cost constants (seconds, bytes).
type Config struct {
	// CoresPerNode is the node width (Blue Waters XE6: 32 integer cores).
	CoresPerNode int
	// ProcsPerNode is the SMP process count per node (the paper's k).
	// Ignored unless SMPEnabled.
	ProcsPerNode int
	// SMPEnabled turns on SMP mode: each process donates one core to a
	// dedicated communication thread, which offloads most per-message CPU
	// cost from compute PEs at the price of fewer compute cores per node.
	SMPEnabled bool

	// SendOverhead and RecvOverhead are the compute-thread CPU seconds per
	// wire message when no comm thread helps.
	SendOverhead float64
	RecvOverhead float64
	// CommThreadOffload is the fraction of per-message CPU overhead the
	// communication thread absorbs in SMP mode (0..1).
	CommThreadOffload float64
	// LatencyIntraNode and LatencyInterNode are per-wire-message network
	// latencies by locality. LatencyInterNode is the one-hop base; when a
	// torus geometry is set, callers add PerHopLatency per additional hop
	// via RankPhase.ExtraLatency (see Torus and episim.ModelDayTime).
	LatencyIntraNode float64
	LatencyInterNode float64
	// PerHopLatency is the added latency per Gemini torus hop beyond the
	// first.
	PerHopLatency float64
	// TorusGeometry is the node torus; zero value disables hop pricing.
	TorusGeometry Torus
	// Bandwidth is per-PE off-node bandwidth in bytes/second.
	Bandwidth float64
	// SyncHopLatency is the latency of one hop of the synchronization
	// reduction tree.
	SyncHopLatency float64
	// SoftwareOverheadFactor multiplies per-message CPU costs; 1.0 for the
	// optimized runtime, >1 models the unoptimized first implementation
	// ("RR no-opt": buffering overhead, conditional branches, memory
	// footprint — Section IV reports ~40% total reduction).
	SoftwareOverheadFactor float64
}

// BlueWatersXE6 returns constants of Gemini-interconnect magnitude:
// microsecond-class message overheads and latencies, multi-GB/s links.
func BlueWatersXE6() Config {
	return Config{
		CoresPerNode:           32,
		ProcsPerNode:           4,
		SMPEnabled:             true,
		SendOverhead:           1.1e-6,
		RecvOverhead:           0.9e-6,
		CommThreadOffload:      0.85,
		LatencyIntraNode:       0.6e-6,
		LatencyInterNode:       1.8e-6,
		PerHopLatency:          0.1e-6,
		TorusGeometry:          BlueWatersTorus(),
		Bandwidth:              4.0e9,
		SyncHopLatency:         1.5e-6,
		SoftwareOverheadFactor: 1.0,
	}
}

// ComputePEs returns how many compute PEs a given total core count yields:
// in SMP mode every process donates one core per node to its communication
// thread ("the disadvantage of this approach is that it reduces the number
// of compute threads per node").
func (c Config) ComputePEs(totalCores int) int {
	if !c.SMPEnabled || c.CoresPerNode <= 0 || c.ProcsPerNode <= 0 {
		return totalCores
	}
	nodes := (totalCores + c.CoresPerNode - 1) / c.CoresPerNode
	pes := totalCores - nodes*c.ProcsPerNode
	if pes < 1 {
		pes = 1
	}
	return pes
}

// RankPhase is one rank's workload during one phase.
type RankPhase struct {
	// Compute is the rank's computation in seconds.
	Compute float64
	// WireOutIntra and WireOutInter are aggregated (wire) message counts
	// sent to other PEs in the same node / other nodes.
	WireOutIntra, WireOutInter int64
	// WireInIntra and WireInInter are wire messages received.
	WireInIntra, WireInInter int64
	// BytesOut is the off-node payload volume sent.
	BytesOut int64
	// ExtraLatency is additional network time (seconds) accumulated by the
	// caller, e.g. per-hop torus latency beyond the one-hop base.
	ExtraLatency float64
}

// PhaseCost breaks down the modeled time of one phase.
type PhaseCost struct {
	Compute  float64 // max per-rank compute
	Overhead float64 // max per-rank messaging CPU cost
	Network  float64 // max per-rank latency + serialization
	Sync     float64 // completion/quiescence detection
	Total    float64
}

// PhaseTime prices one bulk-synchronous phase across ranks: the phase ends
// when the slowest rank has computed, paid its messaging overhead, and its
// traffic has drained, plus the synchronization protocol cost.
func (c Config) PhaseTime(ranks []RankPhase, mode SyncMode) PhaseCost {
	var pc PhaseCost
	offload := 0.0
	if c.SMPEnabled {
		offload = c.CommThreadOffload
	}
	soft := c.SoftwareOverheadFactor
	if soft <= 0 {
		soft = 1
	}
	var worst float64
	for i := range ranks {
		r := &ranks[i]
		msgCPU := (c.SendOverhead*float64(r.WireOutIntra+r.WireOutInter) +
			c.RecvOverhead*float64(r.WireInIntra+r.WireInInter)) * soft * (1 - offload)
		net := c.LatencyIntraNode*float64(max(r.WireOutIntra, r.WireInIntra)) +
			c.LatencyInterNode*float64(max(r.WireOutInter, r.WireInInter)) +
			r.ExtraLatency
		if c.Bandwidth > 0 {
			net += float64(r.BytesOut) / c.Bandwidth
		}
		total := r.Compute + msgCPU + net
		if total > worst {
			worst = total
			pc.Compute = r.Compute
			pc.Overhead = msgCPU
			pc.Network = net
		}
	}
	pc.Sync = c.SyncCost(len(ranks), mode)
	pc.Total = worst + pc.Sync
	return pc
}

// SyncCost prices the phase synchronization: a reduction tree of
// ceil(log2(P))+1 hops per confirmation round; completion detection
// confirms produced==consumed in 2 rounds, quiescence detection needs 4
// (global idleness plus re-confirmation across the whole application).
func (c Config) SyncCost(pes int, mode SyncMode) float64 {
	if pes < 1 {
		pes = 1
	}
	rounds := 2.0
	if mode == QuiescenceDetection {
		rounds = 4.0
	}
	hops := math.Ceil(math.Log2(float64(pes))) + 1
	return rounds * hops * c.SyncHopLatency
}

// DayCost aggregates the phases of one simulated day (person phase, sync,
// location phase, sync, state-update/reduction phase).
type DayCost struct {
	Person   PhaseCost
	Location PhaseCost
	Update   PhaseCost
	Total    float64
}

// DayTime prices one full simulation day given per-rank traces for the
// person (visit-sending) phase, the location (DES + infect) phase, and the
// lightweight state-update phase.
func (c Config) DayTime(person, location, update []RankPhase, mode SyncMode) DayCost {
	var d DayCost
	d.Person = c.PhaseTime(person, mode)
	d.Location = c.PhaseTime(location, mode)
	d.Update = c.PhaseTime(update, mode)
	d.Total = d.Person.Total + d.Location.Total + d.Update.Total
	return d
}

// Speedup returns t1/tp.
func Speedup(t1, tp float64) float64 {
	if tp <= 0 {
		return 0
	}
	return t1 / tp
}

// Efficiency returns speedup/p.
func Efficiency(t1, tp float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return Speedup(t1, tp) / float64(p)
}
