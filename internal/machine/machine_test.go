package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputePEs(t *testing.T) {
	c := BlueWatersXE6() // 32 cores/node, 4 procs/node, SMP on
	if got := c.ComputePEs(32); got != 28 {
		t.Fatalf("1 node: %d compute PEs, want 28", got)
	}
	if got := c.ComputePEs(64); got != 56 {
		t.Fatalf("2 nodes: %d, want 56", got)
	}
	c.SMPEnabled = false
	if got := c.ComputePEs(64); got != 64 {
		t.Fatalf("non-SMP: %d, want 64", got)
	}
	c.SMPEnabled = true
	if got := c.ComputePEs(1); got < 1 {
		t.Fatalf("tiny allocation yields %d PEs", got)
	}
}

func TestSyncCostOrdering(t *testing.T) {
	c := BlueWatersXE6()
	if c.SyncCost(1024, QuiescenceDetection) <= c.SyncCost(1024, CompletionDetection) {
		t.Fatal("QD must cost more than CD")
	}
	if c.SyncCost(1<<17, CompletionDetection) <= c.SyncCost(64, CompletionDetection) {
		t.Fatal("sync cost must grow with PE count")
	}
	if c.SyncCost(0, CompletionDetection) <= 0 {
		t.Fatal("degenerate PE count must still cost something")
	}
}

func TestPhaseTimeComputeOnly(t *testing.T) {
	c := BlueWatersXE6()
	ranks := []RankPhase{{Compute: 1.0}, {Compute: 2.5}, {Compute: 0.5}}
	pc := c.PhaseTime(ranks, CompletionDetection)
	if pc.Compute != 2.5 {
		t.Fatalf("compute = %v, want slowest rank 2.5", pc.Compute)
	}
	if pc.Total <= 2.5 {
		t.Fatal("total must include sync")
	}
}

func TestPhaseTimeMessagingCosts(t *testing.T) {
	c := BlueWatersXE6()
	c.SMPEnabled = false // full per-message cost on compute threads
	quiet := []RankPhase{{Compute: 0.001}}
	noisy := []RankPhase{{Compute: 0.001, WireOutInter: 100000, WireInInter: 100000}}
	tq := c.PhaseTime(quiet, CompletionDetection).Total
	tn := c.PhaseTime(noisy, CompletionDetection).Total
	if tn <= tq {
		t.Fatal("messages must cost time")
	}
	// 100k sends (1.1us) + 100k recvs (0.9us) = 0.2s overhead alone.
	if tn < 0.2 {
		t.Fatalf("noisy phase %v too cheap", tn)
	}
}

func TestSMPOffloadReducesOverhead(t *testing.T) {
	smp := BlueWatersXE6()
	noSmp := smp
	noSmp.SMPEnabled = false
	ranks := []RankPhase{{Compute: 0.01, WireOutInter: 50000, WireInInter: 50000}}
	tSMP := smp.PhaseTime(ranks, CompletionDetection).Overhead
	tNo := noSmp.PhaseTime(ranks, CompletionDetection).Overhead
	if tSMP >= tNo {
		t.Fatalf("SMP overhead %v !< non-SMP %v", tSMP, tNo)
	}
	ratio := tNo / tSMP
	want := 1 / (1 - smp.CommThreadOffload)
	if math.Abs(ratio-want)/want > 0.01 {
		t.Fatalf("offload ratio %v, want %v", ratio, want)
	}
}

func TestSoftwareOverheadFactor(t *testing.T) {
	opt := BlueWatersXE6()
	noOpt := opt
	noOpt.SoftwareOverheadFactor = 2.5
	ranks := []RankPhase{{Compute: 0.001, WireOutInter: 10000, WireInInter: 10000}}
	a := opt.PhaseTime(ranks, CompletionDetection).Overhead
	b := noOpt.PhaseTime(ranks, CompletionDetection).Overhead
	if math.Abs(b/a-2.5) > 0.01 {
		t.Fatalf("software factor not applied: %v vs %v", a, b)
	}
}

func TestBandwidthTerm(t *testing.T) {
	c := BlueWatersXE6()
	small := []RankPhase{{Compute: 0.001, BytesOut: 1 << 10}}
	big := []RankPhase{{Compute: 0.001, BytesOut: 1 << 30}}
	ts := c.PhaseTime(small, CompletionDetection).Network
	tb := c.PhaseTime(big, CompletionDetection).Network
	if tb <= ts {
		t.Fatal("bytes must cost network time")
	}
	// 1 GiB at 4 GB/s ≈ 0.27 s.
	if tb < 0.2 || tb > 0.4 {
		t.Fatalf("1GiB serialization = %v, want ≈0.27", tb)
	}
}

func TestDayTime(t *testing.T) {
	c := BlueWatersXE6()
	person := []RankPhase{{Compute: 1}}
	location := []RankPhase{{Compute: 2}}
	update := []RankPhase{{Compute: 0.1}}
	d := c.DayTime(person, location, update, CompletionDetection)
	if d.Total < 3.1 {
		t.Fatalf("day total %v below compute sum", d.Total)
	}
	if d.Total != d.Person.Total+d.Location.Total+d.Update.Total {
		t.Fatal("day total is not the sum of phases")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(100, 10) != 10 {
		t.Fatal("speedup")
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("degenerate speedup")
	}
	if Efficiency(100, 10, 20) != 0.5 {
		t.Fatal("efficiency")
	}
	if Efficiency(1, 1, 0) != 0 {
		t.Fatal("degenerate efficiency")
	}
}

func TestStrongScalingShape(t *testing.T) {
	// A perfectly divisible workload must scale until sync/overhead
	// dominate — the basic sanity of Figure 13's model.
	c := BlueWatersXE6()
	total := 100.0 // seconds of compute
	var prev float64
	for _, p := range []int{1, 4, 16, 64, 256} {
		ranks := make([]RankPhase, p)
		for i := range ranks {
			ranks[i].Compute = total / float64(p)
		}
		tp := c.PhaseTime(ranks, CompletionDetection).Total
		if prev != 0 && tp >= prev {
			t.Fatalf("no scaling at p=%d: %v >= %v", p, tp, prev)
		}
		prev = tp
	}
}

func TestSerialBottleneckFlattens(t *testing.T) {
	// One rank holding l_max of compute bounds scaling: the Section III-B
	// phenomenon the machine model must reproduce.
	c := BlueWatersXE6()
	lmax := 1.0
	times := map[int]float64{}
	for _, p := range []int{16, 256, 4096} {
		ranks := make([]RankPhase, p)
		ranks[0].Compute = lmax
		for i := 1; i < p; i++ {
			ranks[i].Compute = lmax / 100
		}
		times[p] = c.PhaseTime(ranks, CompletionDetection).Total
	}
	if times[4096] < lmax {
		t.Fatal("cannot beat the serial bottleneck")
	}
	if times[4096] < times[256]*0.5 {
		t.Fatal("bottlenecked phase should not keep scaling")
	}
}

func TestPhaseTimeProperty(t *testing.T) {
	c := BlueWatersXE6()
	f := func(comp uint16, out uint16, in uint16) bool {
		r := RankPhase{
			Compute:      float64(comp) / 1000,
			WireOutInter: int64(out),
			WireInInter:  int64(in),
		}
		pc := c.PhaseTime([]RankPhase{r}, CompletionDetection)
		// Total dominates every component and is finite.
		return pc.Total >= pc.Compute && pc.Total >= pc.Sync &&
			!math.IsNaN(pc.Total) && !math.IsInf(pc.Total, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPhase(t *testing.T) {
	c := BlueWatersXE6()
	pc := c.PhaseTime(nil, CompletionDetection)
	if pc.Total != pc.Sync {
		t.Fatal("empty phase should cost only sync")
	}
}
