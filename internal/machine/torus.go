package machine

// Blue Waters' interconnect is a Cray Gemini 3D torus (the XE6 partition
// occupied a 23×24×24 torus of Gemini ASICs). This file adds hop-distance
// pricing: inter-node latency grows with the Manhattan distance on the
// torus, which is what makes *topology-aware rank mapping* matter — ranks
// produced by recursive bisection communicate mostly with near ranks, so a
// contiguous rank→node mapping keeps traffic local on the torus.

// Torus is a 3D torus of nodes.
type Torus struct {
	X, Y, Z int
}

// BlueWatersTorus returns the Gemini torus geometry of the full system.
func BlueWatersTorus() Torus { return Torus{X: 23, Y: 24, Z: 24} }

// Nodes returns the node capacity of the torus.
func (t Torus) Nodes() int { return t.X * t.Y * t.Z }

// Coords maps a node index to torus coordinates (plane-major).
func (t Torus) Coords(node int) (x, y, z int) {
	if t.X <= 0 || t.Y <= 0 || t.Z <= 0 {
		return 0, 0, 0
	}
	node %= t.Nodes()
	if node < 0 {
		node += t.Nodes()
	}
	z = node / (t.X * t.Y)
	rem := node % (t.X * t.Y)
	y = rem / t.X
	x = rem % t.X
	return x, y, z
}

// HopDistance returns the minimal Manhattan hop count between two nodes,
// accounting for wraparound links in each dimension.
func (t Torus) HopDistance(a, b int) int {
	ax, ay, az := t.Coords(a)
	bx, by, bz := t.Coords(b)
	return torusDist(ax, bx, t.X) + torusDist(ay, by, t.Y) + torusDist(az, bz, t.Z)
}

func torusDist(a, b, dim int) int {
	if dim <= 1 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := dim - d; wrap < d {
		return wrap
	}
	return d
}

// MeanHops returns the expected hop distance between two uniformly random
// nodes — the effective distance of a topology-oblivious mapping.
func (t Torus) MeanHops() float64 {
	return meanDim(t.X) + meanDim(t.Y) + meanDim(t.Z)
}

// meanDim is E|a-b| with wraparound for uniform a,b in [0,dim).
func meanDim(dim int) float64 {
	if dim <= 1 {
		return 0
	}
	var sum int
	for d := 0; d < dim; d++ {
		dist := d
		if wrap := dim - d; wrap < dist {
			dist = wrap
		}
		sum += dist
	}
	return float64(sum) / float64(dim)
}
