package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/partition"
	"repro/internal/splitloc"
	"repro/internal/synthpop"
)

func testPopulation(t *testing.T) *synthpop.Population {
	t.Helper()
	pop := synthpop.Generate(synthpop.DefaultConfig("codec-town", 300, 30, 7))
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

func testPlacement(t *testing.T) *Placement {
	pop := testPopulation(t)
	pr := make([]int32, pop.NumPersons())
	lr := make([]int32, pop.NumLocations())
	for i := range pr {
		pr[i] = int32(i % 4)
	}
	for i := range lr {
		lr[i] = int32(i % 4)
	}
	return &Placement{
		Pop:          pop,
		PersonRank:   pr,
		LocationRank: lr,
		Ranks:        4,
		Label:        "RR",
		SplitStats: &splitloc.Stats{
			Threshold: 12.5, NumSplit: 3, NumFragments: 9,
			LocationsPre: 30, LocationsPost: 36,
			MaxLocWeightPre: 99.5, MaxLocWeightPost: 14.25,
			MaxDegreePre: 80, MaxDegreePost: 12, GrowthFrac: 0.2,
		},
		Quality: &partition.Quality{
			K:               4,
			PartWeights:     [][]int64{{10, 20}, {11, 19}, {9, 21}, {10, 20}},
			TotalWeights:    []int64{40, 80},
			MaxOverAvg:      []float64{1.1, 1.05},
			EdgeCut:         123,
			MaxPartCut:      45,
			TotalEdgeWeight: 400,
		},
	}
}

func popsEqual(a, b *synthpop.Population) bool {
	if a.Name != b.Name || len(a.Persons) != len(b.Persons) ||
		len(a.Locations) != len(b.Locations) || len(a.Visits) != len(b.Visits) ||
		len(a.PersonVisitOffsets) != len(b.PersonVisitOffsets) {
		return false
	}
	for i := range a.Persons {
		if a.Persons[i] != b.Persons[i] {
			return false
		}
	}
	for i := range a.Locations {
		if a.Locations[i] != b.Locations[i] {
			return false
		}
	}
	for i := range a.Visits {
		if a.Visits[i] != b.Visits[i] {
			return false
		}
	}
	for i := range a.PersonVisitOffsets {
		if a.PersonVisitOffsets[i] != b.PersonVisitOffsets[i] {
			return false
		}
	}
	return true
}

// TestPopulationRoundTrip: decode(encode(p)) is lossless and re-encoding
// the decoded population is byte-identical — the determinism the
// content-addressed store depends on.
func TestPopulationRoundTrip(t *testing.T) {
	pop := testPopulation(t)
	payload := EncodePopulation(pop)
	got, err := DecodePopulation(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !popsEqual(pop, got) {
		t.Fatal("decoded population differs from original")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded population invalid: %v", err)
	}
	if !bytes.Equal(payload, EncodePopulation(got)) {
		t.Fatal("re-encode of decoded population is not byte-identical")
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	pl := testPlacement(t)
	payload := EncodePlacement(pl)
	got, err := DecodePlacement(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !popsEqual(pl.Pop, got.Pop) {
		t.Fatal("embedded population differs")
	}
	if got.Ranks != pl.Ranks || got.Label != pl.Label {
		t.Fatalf("header fields differ: %d %q", got.Ranks, got.Label)
	}
	for i := range pl.PersonRank {
		if pl.PersonRank[i] != got.PersonRank[i] {
			t.Fatal("person ranks differ")
		}
	}
	for i := range pl.LocationRank {
		if pl.LocationRank[i] != got.LocationRank[i] {
			t.Fatal("location ranks differ")
		}
	}
	if *got.SplitStats != *pl.SplitStats {
		t.Fatalf("split stats differ: %+v vs %+v", got.SplitStats, pl.SplitStats)
	}
	if got.Quality.EdgeCut != pl.Quality.EdgeCut || got.Quality.K != pl.Quality.K ||
		len(got.Quality.PartWeights) != len(pl.Quality.PartWeights) ||
		got.Quality.PartWeights[2][1] != pl.Quality.PartWeights[2][1] {
		t.Fatalf("quality differs: %+v", got.Quality)
	}
	if !bytes.Equal(payload, EncodePlacement(got)) {
		t.Fatal("re-encode of decoded placement is not byte-identical")
	}

	// nil SplitStats/Quality round-trip too (RR placements have neither).
	bare := &Placement{Pop: pl.Pop, PersonRank: pl.PersonRank,
		LocationRank: pl.LocationRank, Ranks: 4, Label: "RR"}
	got2, err := DecodePlacement(EncodePlacement(bare))
	if err != nil {
		t.Fatal(err)
	}
	if got2.SplitStats != nil || got2.Quality != nil {
		t.Fatal("nil stats did not round-trip as nil")
	}
}

// TestEnvelopeRejects: every way a file can be wrong — truncation, bit
// rot, a different format version, the wrong key or kind, trailing
// garbage — must surface as ErrInvalid, never a panic or silent
// mis-decode.
func TestEnvelopeRejects(t *testing.T) {
	pop := testPopulation(t)
	payload := EncodePopulation(pop)
	sealed := Seal(KindPopulation, "k1", payload)

	if got, err := Open(sealed, KindPopulation, "k1"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean open failed: %v", err)
	}
	if !bytes.Equal(sealed, Seal(KindPopulation, "k1", payload)) {
		t.Fatal("sealing identical content twice differs")
	}

	cases := map[string][]byte{
		"truncated header": sealed[:8],
		"truncated body":   sealed[:len(sealed)/2],
		"missing trailer":  sealed[:len(sealed)-3],
		"empty":            {},
	}
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	badMagic := append([]byte(nil), sealed...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	badVersion := append([]byte(nil), sealed...)
	badVersion[4] = 0xEE
	cases["future version"] = badVersion

	for name, data := range cases {
		if _, err := Open(data, KindPopulation, "k1"); !errors.Is(err, ErrInvalid) {
			t.Fatalf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
	if _, err := Open(sealed, KindPlacement, "k1"); !errors.Is(err, ErrInvalid) {
		t.Fatal("kind mismatch must be ErrInvalid")
	}
	if _, err := Open(sealed, KindPopulation, "other"); !errors.Is(err, ErrInvalid) {
		t.Fatal("key mismatch must be ErrInvalid")
	}

	// Decoders on corrupt payloads (past the envelope) degrade to errors.
	if _, err := DecodePopulation(payload[:len(payload)-5]); !errors.Is(err, ErrInvalid) {
		t.Fatalf("truncated payload: %v", err)
	}
	if _, err := DecodePopulation(append(append([]byte(nil), payload...), 1, 2, 3)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing garbage: %v", err)
	}
	if _, err := DecodePlacement(payload); !errors.Is(err, ErrInvalid) {
		t.Fatalf("wrong payload type: %v", err)
	}
}

// TestDecodeRejectsOverflowingCounts: a crafted payload whose element
// count × element size wraps uint64 must fail the bounds check, not
// pass it and panic in makeslice — "never a panic" includes adversarial
// files dropped into a shared cache directory.
func TestDecodeRejectsOverflowingCounts(t *testing.T) {
	for _, count := range []uint64{
		0x4000000000000001,     // ×4 wraps to 4
		0x2000000000000000 + 3, // ×8 wraps to 24
		^uint64(0),             // ×anything wraps
	} {
		e := &enc{}
		e.str("x")
		e.u64(count) // persons count
		e.b = append(e.b, make([]byte, 64)...)
		if _, err := DecodePopulation(e.b); !errors.Is(err, ErrInvalid) {
			t.Fatalf("count %#x: err = %v, want ErrInvalid", count, err)
		}
		// Same wrap through a placement's rank slices.
		e2 := &enc{}
		e2.population(testPopulation(t))
		e2.u64(count) // PersonRank length
		e2.b = append(e2.b, make([]byte, 64)...)
		if _, err := DecodePlacement(e2.b); !errors.Is(err, ErrInvalid) {
			t.Fatalf("placement count %#x: err = %v, want ErrInvalid", count, err)
		}
	}
}

func TestStorePutGet(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(KindPopulation, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	if err := st.Put(KindPopulation, "a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(KindJob, "b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(KindPopulation, "a")
	if err != nil || string(got) != "payload-a" {
		t.Fatalf("get a = %q, %v", got, err)
	}
	if s := st.Stats(); s.Files != 2 || s.Bytes <= 0 {
		t.Fatalf("stats = %+v", s)
	}

	// Overwrite replaces, accounting follows.
	if err := st.Put(KindPopulation, "a", []byte("payload-a-v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, _ = st.Get(KindPopulation, "a")
	if string(got) != "payload-a-v2-longer" {
		t.Fatalf("overwrite: %q", got)
	}
	if s := st.Stats(); s.Files != 2 {
		t.Fatalf("stats after overwrite = %+v", s)
	}

	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Key != "a" || keys[1].Key != "b" || keys[1].Kind != KindJob {
		t.Fatalf("keys = %+v", keys)
	}

	// A second store over the same dir sees the same artifacts (the
	// cross-process persistence this package exists for).
	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Files != 2 {
		t.Fatalf("reopened stats = %+v", s)
	}
	got, err = st2.Get(KindJob, "b")
	if err != nil || string(got) != "payload-b" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}

	st.Delete("a")
	if _, err := st.Get(KindPopulation, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if s := st.Stats(); s.Files != 1 {
		t.Fatalf("stats after delete = %+v", s)
	}
}

// TestStoreCorruptFileIsMissAndRemoved: a damaged artifact reads as
// ErrInvalid and the store deletes it so the next write-through heals.
func TestStoreCorruptFileIsMissAndRemoved(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(KindPlacement, "pl", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	// Truncate the file behind the store's back.
	var path string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == artExt {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no artifact file written")
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(KindPlacement, "pl"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("corrupt get: %v, want ErrInvalid", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file was not removed")
	}
	if _, err := st.Get(KindPlacement, "pl"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after removal: %v, want ErrNotFound", err)
	}
	if err := st.Put(KindPlacement, "pl", []byte("rebuilt")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(KindPlacement, "pl")
	if err != nil || string(got) != "rebuilt" {
		t.Fatalf("heal: %q, %v", got, err)
	}
}
