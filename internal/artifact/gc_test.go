package artifact

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// putAged stores a payload and backdates its mtime so GC order is
// deterministic in the test.
func putAged(t *testing.T, s *Store, key string, payload []byte, age time.Duration) {
	t.Helper()
	if err := s.Put(KindPlacement, key, payload); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.path(key), when, when); err != nil {
		t.Fatal(err)
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	// Four artifacts, oldest first: k0 (4h) ... k3 (1h).
	for i := 0; i < 4; i++ {
		putAged(t, s, fmt.Sprintf("k%d", i), payload, time.Duration(4-i)*time.Hour)
	}
	total := s.Stats().Bytes
	perFile := total / 4

	// Bound to ~2 files: the two oldest must go, the two newest stay.
	files, bytes, err := s.GC(2 * perFile)
	if err != nil {
		t.Fatal(err)
	}
	if files != 2 || bytes != 2*perFile {
		t.Fatalf("GC removed %d files / %d bytes, want 2 / %d", files, bytes, 2*perFile)
	}
	for i, want := range []bool{false, false, true, true} {
		_, err := s.Get(KindPlacement, fmt.Sprintf("k%d", i))
		if got := err == nil; got != want {
			t.Errorf("after GC, k%d present=%v want %v (err=%v)", i, got, want, err)
		}
	}
	st := s.Stats()
	if st.Files != 2 || st.GCFiles != 2 || st.GCBytes != 2*perFile {
		t.Fatalf("stats after GC = %+v, want 2 files, gc 2/%d", st, 2*perFile)
	}
	// Under the bound already: a second pass is a no-op.
	if files, _, _ := s.GC(2 * perFile); files != 0 {
		t.Fatalf("second GC removed %d files, want 0", files)
	}
}

func TestGCKeepsRecentlyReadArtifacts(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Equal-length keys so both artifacts are byte-identical in size and
	// the bound below keeps exactly one of them.
	payload := make([]byte, 1000)
	putAged(t, s, "key-hot", payload, 4*time.Hour)
	putAged(t, s, "key-new", payload, 1*time.Hour)

	// A read refreshes the artifact's access time, so the LRU sweep must
	// now prefer evicting "key-new".
	if _, err := s.Get(KindPlacement, "key-hot"); err != nil {
		t.Fatal(err)
	}
	perFile := s.Stats().Bytes / 2
	if _, _, err := s.GC(perFile); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(KindPlacement, "key-hot"); err != nil {
		t.Fatalf("recently read artifact evicted: %v", err)
	}
	if _, err := s.Get(KindPlacement, "key-new"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU artifact survived GC: %v", err)
	}
}

func TestExpireOlderThan(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, s, "stale", []byte("a"), 48*time.Hour)
	putAged(t, s, "fresh", []byte("b"), time.Minute)

	files, _, err := s.ExpireOlderThan(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 {
		t.Fatalf("expired %d files, want 1", files)
	}
	if _, err := s.Get(KindPlacement, "stale"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale artifact survived TTL: %v", err)
	}
	if _, err := s.Get(KindPlacement, "fresh"); err != nil {
		t.Fatalf("fresh artifact expired: %v", err)
	}
	if st := s.Stats(); st.Files != 1 || st.GCFiles != 1 {
		t.Fatalf("stats after expiry = %+v", st)
	}
	// Zero age disables expiry entirely.
	if files, _, _ := s.ExpireOlderThan(0); files != 0 {
		t.Fatalf("ExpireOlderThan(0) removed %d files, want 0", files)
	}
}
