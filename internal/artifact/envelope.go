// Package artifact is the persistence layer of the sweep system: a
// deterministic binary codec for populations and placements plus a
// content-addressed on-disk store keyed by the same content keys the
// ensemble cache uses in memory.
//
// Every artifact on disk is a sealed envelope:
//
//	magic "EPAR" | version u16 | kind u8 | reserved u8 |
//	keyLen u32 | key | payloadLen u64 | payload | crc64 u64
//
// The envelope carries the artifact's own content key, so a file moved,
// renamed or hash-colliding into the wrong slot fails the key check and
// is treated as a miss, never served as the wrong content. The CRC-64
// trailer covers every preceding byte, so truncation and bit rot are
// also misses — the contract throughout this package is that a reader
// either gets exactly the bytes a writer sealed, or a recognizable
// error it can treat as "rebuild it".
//
// Encoding is deterministic: identical content seals to identical bytes
// (fixed field order, fixed-width little-endian integers, no maps), so
// re-encoding a decoded artifact reproduces the file byte for byte —
// the property the warm-run "byte-identical output" guarantee rests on.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// Version is the envelope format version. Decoders reject any other
// version (treated as a cache miss by callers), so a format change never
// corrupts results — it just rebuilds.
const Version = 1

const envelopeMagic = "EPAR"

// Kind tags what an envelope's payload is.
type Kind uint8

// Artifact kinds.
const (
	KindPopulation Kind = 1
	KindPlacement  Kind = 2
	KindJob        Kind = 3
	// KindProfile holds a pprof capture (CPU or heap) taken by the
	// daemon's burn-rate watchdog; it lives in the result store and is
	// TTL-governed by the same ExpireOlderThan GC as job records.
	KindProfile Kind = 4
)

// ErrInvalid is wrapped by every decode failure — bad magic, unknown
// version, kind or key mismatch, truncation, checksum failure,
// structural garbage. Callers treat any ErrInvalid as a cache miss and
// rebuild; it is never fatal.
var ErrInvalid = errors.New("artifact: invalid")

// ErrNotFound reports that a store has no artifact under a key.
var ErrNotFound = errors.New("artifact: not found")

var crcTable = crc64.MakeTable(crc64.ECMA)

// Seal wraps payload in a versioned, checksummed envelope carrying its
// kind and content key. Identical (kind, key, payload) always seals to
// identical bytes.
func Seal(kind Kind, key string, payload []byte) []byte {
	b := make([]byte, 0, len(envelopeMagic)+16+len(key)+len(payload)+8)
	b = append(b, envelopeMagic...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = append(b, byte(kind), 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
}

// Open validates an envelope against the expected kind and key and
// returns its payload. Every failure wraps ErrInvalid.
func Open(data []byte, kind Kind, key string) ([]byte, error) {
	gotKind, gotKey, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrInvalid, gotKind, kind)
	}
	if gotKey != key {
		return nil, fmt.Errorf("%w: key mismatch (stale or misplaced artifact)", ErrInvalid)
	}
	if len(rest) < 16 {
		return nil, fmt.Errorf("%w: truncated", ErrInvalid)
	}
	payloadLen := binary.LittleEndian.Uint64(rest)
	if payloadLen != uint64(len(rest)-16) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrInvalid, payloadLen, len(rest)-16)
	}
	payload := rest[8 : 8+payloadLen]
	sum := binary.LittleEndian.Uint64(rest[8+payloadLen:])
	if crc64.Checksum(data[:len(data)-8], crcTable) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	return payload, nil
}

// parseHeader reads the fixed envelope prefix (through the key),
// returning the remainder. It is the piece Keys() uses to identify a
// file without verifying its checksum.
func parseHeader(data []byte) (kind Kind, key string, rest []byte, err error) {
	if len(data) < len(envelopeMagic)+8 {
		return 0, "", nil, fmt.Errorf("%w: truncated header", ErrInvalid)
	}
	if string(data[:4]) != envelopeMagic {
		return 0, "", nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return 0, "", nil, fmt.Errorf("%w: version %d, want %d", ErrInvalid, v, Version)
	}
	kind = Kind(data[6])
	keyLen := binary.LittleEndian.Uint32(data[8:])
	if uint64(keyLen) > uint64(len(data)-12) {
		return 0, "", nil, fmt.Errorf("%w: key length %d overruns data", ErrInvalid, keyLen)
	}
	key = string(data[12 : 12+keyLen])
	return kind, key, data[12+keyLen:], nil
}
