package artifact

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/partition"
	"repro/internal/splitloc"
	"repro/internal/synthpop"
)

// Placement is the serializable form of a built data distribution: the
// (possibly split) population it simulates plus the rank assignments and
// provenance. It mirrors the root package's Placement field for field;
// the root package converts between the two, because importing it here
// would be a cycle.
type Placement struct {
	Pop          *synthpop.Population
	PersonRank   []int32
	LocationRank []int32
	Ranks        int
	Label        string
	SplitStats   *splitloc.Stats
	Quality      *partition.Quality
}

// EncodePopulation serializes a population to its deterministic binary
// payload (wrap with Seal before writing to disk).
func EncodePopulation(p *synthpop.Population) []byte {
	e := &enc{b: make([]byte, 0, 64+16*len(p.Visits)+8*len(p.Persons))}
	e.population(p)
	return e.b
}

// DecodePopulation parses an EncodePopulation payload. Structural
// damage wraps ErrInvalid.
func DecodePopulation(payload []byte) (*synthpop.Population, error) {
	d := &dec{b: payload}
	p := d.population()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodePlacement serializes a placement (including its embedded
// population — a split population is private to its placement, so the
// artifact must be self-contained).
func EncodePlacement(pl *Placement) []byte {
	e := &enc{b: make([]byte, 0, 128+16*len(pl.Pop.Visits)+4*(len(pl.PersonRank)+len(pl.LocationRank)))}
	e.population(pl.Pop)
	e.i32s(pl.PersonRank)
	e.i32s(pl.LocationRank)
	e.u32(uint32(pl.Ranks))
	e.str(pl.Label)
	if pl.SplitStats != nil {
		e.u8(1)
		s := pl.SplitStats
		e.f64(s.Threshold)
		e.u64(uint64(s.NumSplit))
		e.u64(uint64(s.NumFragments))
		e.u64(uint64(s.LocationsPre))
		e.u64(uint64(s.LocationsPost))
		e.f64(s.MaxLocWeightPre)
		e.f64(s.MaxLocWeightPost)
		e.u32(uint32(s.MaxDegreePre))
		e.u32(uint32(s.MaxDegreePost))
		e.f64(s.GrowthFrac)
	} else {
		e.u8(0)
	}
	if pl.Quality != nil {
		e.u8(1)
		q := pl.Quality
		e.u32(uint32(q.K))
		e.u32(uint32(len(q.PartWeights)))
		for _, pw := range q.PartWeights {
			e.i64s(pw)
		}
		e.i64s(q.TotalWeights)
		e.f64s(q.MaxOverAvg)
		e.u64(uint64(q.EdgeCut))
		e.u64(uint64(q.MaxPartCut))
		e.u64(uint64(q.TotalEdgeWeight))
	} else {
		e.u8(0)
	}
	return e.b
}

// DecodePlacement parses an EncodePlacement payload.
func DecodePlacement(payload []byte) (*Placement, error) {
	d := &dec{b: payload}
	pl := &Placement{}
	pl.Pop = d.population()
	pl.PersonRank = d.i32s()
	pl.LocationRank = d.i32s()
	pl.Ranks = int(d.u32())
	pl.Label = d.str()
	if d.u8() == 1 {
		s := &splitloc.Stats{}
		s.Threshold = d.f64()
		s.NumSplit = int(d.u64())
		s.NumFragments = int(d.u64())
		s.LocationsPre = int(d.u64())
		s.LocationsPost = int(d.u64())
		s.MaxLocWeightPre = d.f64()
		s.MaxLocWeightPost = d.f64()
		s.MaxDegreePre = int32(d.u32())
		s.MaxDegreePost = int32(d.u32())
		s.GrowthFrac = d.f64()
		pl.SplitStats = s
	}
	if d.u8() == 1 {
		q := &partition.Quality{}
		q.K = int(d.u32())
		// Each part-weight row costs at least its 8-byte length prefix.
		n := int(d.u32())
		if d.err == nil && n >= 0 && uint64(n) <= uint64(d.remaining())/8 {
			q.PartWeights = make([][]int64, n)
			for i := range q.PartWeights {
				q.PartWeights[i] = d.i64s()
			}
		} else if d.err == nil {
			d.fail("part weights count %d overruns payload", n)
		}
		q.TotalWeights = d.i64s()
		q.MaxOverAvg = d.f64s()
		q.EdgeCut = int64(d.u64())
		q.MaxPartCut = int64(d.u64())
		q.TotalEdgeWeight = int64(d.u64())
		pl.Quality = q
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return pl, nil
}

// population encoding: name, persons, locations, visits, offsets, each
// as count-prefixed fixed-width records.
func (e *enc) population(p *synthpop.Population) {
	e.str(p.Name)
	e.u64(uint64(len(p.Persons)))
	for _, pe := range p.Persons {
		e.u8(uint8(pe.Age))
		e.u32(uint32(pe.Home))
	}
	e.u64(uint64(len(p.Locations)))
	for _, l := range p.Locations {
		e.u8(uint8(l.Type))
		e.u32(uint32(l.NumSub))
		e.u32(uint32(l.Weight))
		e.u32(uint32(l.Origin))
		e.u32(uint32(l.SubBase))
	}
	e.u64(uint64(len(p.Visits)))
	for _, v := range p.Visits {
		e.u32(uint32(v.Person))
		e.u32(uint32(v.Loc))
		e.u32(uint32(v.Sub))
		e.u16(uint16(v.Start))
		e.u16(uint16(v.End))
	}
	e.i32s(p.PersonVisitOffsets)
}

func (d *dec) population() *synthpop.Population {
	p := &synthpop.Population{}
	p.Name = d.str()
	if n, ok := d.count(5); ok {
		p.Persons = make([]synthpop.Person, n)
		for i := range p.Persons {
			p.Persons[i].Age = synthpop.AgeGroup(d.u8())
			p.Persons[i].Home = int32(d.u32())
		}
	}
	if n, ok := d.count(17); ok {
		p.Locations = make([]synthpop.Location, n)
		for i := range p.Locations {
			p.Locations[i].Type = synthpop.LocationType(d.u8())
			p.Locations[i].NumSub = int32(d.u32())
			p.Locations[i].Weight = int32(d.u32())
			p.Locations[i].Origin = int32(d.u32())
			p.Locations[i].SubBase = int32(d.u32())
		}
	}
	if n, ok := d.count(16); ok {
		p.Visits = make([]synthpop.Visit, n)
		for i := range p.Visits {
			p.Visits[i].Person = int32(d.u32())
			p.Visits[i].Loc = int32(d.u32())
			p.Visits[i].Sub = int32(d.u32())
			p.Visits[i].Start = int16(d.u16())
			p.Visits[i].End = int16(d.u16())
		}
	}
	p.PersonVisitOffsets = d.i32s()
	return p
}

// enc appends fixed-width little-endian fields to a buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) i32s(s []int32) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}
func (e *enc) i64s(s []int64) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u64(uint64(v))
	}
}
func (e *enc) f64s(s []float64) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.f64(v)
	}
}

// dec reads the same fields back with sticky-error bounds checking:
// the first out-of-range read poisons the decoder, every later read
// returns zero, and finish() reports the failure — so a truncated or
// garbled payload can never panic or allocate absurdly.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrInvalid}, args...)...)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, d.remaining())
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *dec) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}
func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u64 element count and verifies count×elemSize fits in
// the remaining payload before the caller allocates. The division form
// cannot overflow, so an adversarial count near 2^64 fails cleanly
// instead of wrapping past the check into a makeslice panic.
func (d *dec) count(elemSize int) (int, bool) {
	n := d.u64()
	if d.err != nil {
		return 0, false
	}
	if elemSize > 0 && n > uint64(d.remaining())/uint64(elemSize) {
		d.fail("count %d × %d bytes overruns payload", n, elemSize)
		return 0, false
	}
	return int(n), true
}

func (d *dec) str() string {
	n := d.u32()
	s := d.take(int(n))
	if s == nil {
		return ""
	}
	return string(s)
}

func (d *dec) i32s() []int32 {
	n, ok := d.count(4)
	if !ok {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func (d *dec) i64s() []int64 {
	n, ok := d.count(8)
	if !ok {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u64())
	}
	return out
}

func (d *dec) f64s() []float64 {
	n, ok := d.count(8)
	if !ok {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// finish reports the decoder's sticky error, or flags trailing garbage —
// a structurally-valid prefix followed by extra bytes is still not the
// artifact that was sealed.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrInvalid, len(d.b)-d.off)
	}
	return nil
}
