package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/interventions"
)

// testCheckpoint builds a real mid-epidemic checkpoint: a short prefix
// run with a scenario whose first rule has fired, so every field the
// codec carries (sparse sets, effects, rule latches, phase stats) is
// populated with live values rather than zeros.
func testCheckpoint(t *testing.T) *core.Checkpoint {
	t.Helper()
	pop := testPopulation(t)
	m := disease.Default()
	m.Transmissibility = 4e-4
	sc, err := interventions.Parse("when day >= 2 { close school for 3 }\nwhen day >= 99 { close work for 2 }")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{Population: pop, Disease: m, Scenario: sc,
		Days: 12, Seed: 11, InitialInfections: 5, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := eng.RunPrefix(6)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cumulative == 0 || len(cp.Days) != 6 {
		t.Fatalf("fixture checkpoint is degenerate: %d infections, %d days", cp.Cumulative, len(cp.Days))
	}
	if len(cp.RuleFired) != 2 || !cp.RuleFired[0] || cp.RuleFired[1] {
		t.Fatalf("fixture rule latches = %v, want [true false]", cp.RuleFired)
	}
	return cp
}

// TestCheckpointRoundTrip: decode(encode(cp)) is lossless and
// re-encoding the decoded checkpoint is byte-identical — checkpoints are
// content-addressed, so the codec must be deterministic like every other
// artifact kind.
func TestCheckpointRoundTrip(t *testing.T) {
	cp := testCheckpoint(t)
	payload := EncodeCheckpoint(cp)
	got, err := DecodeCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("decoded checkpoint differs from original:\n%+v\nvs\n%+v", got, cp)
	}
	if !bytes.Equal(payload, EncodeCheckpoint(got)) {
		t.Fatal("re-encode of decoded checkpoint is not byte-identical")
	}
}

// TestCheckpointEnvelopeRejects mirrors the placement envelope tests for
// the checkpoint kind: truncation, bit rot, kind and key mismatches all
// surface as ErrInvalid (a miss, so the sweep rebuilds the prefix), and
// corrupt payloads past the envelope degrade to errors, never panics.
func TestCheckpointEnvelopeRejects(t *testing.T) {
	payload := EncodeCheckpoint(testCheckpoint(t))
	sealed := Seal(KindCheckpoint, "ck1", payload)

	if got, err := Open(sealed, KindCheckpoint, "ck1"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean open failed: %v", err)
	}
	cases := map[string][]byte{
		"truncated header": sealed[:8],
		"truncated body":   sealed[:len(sealed)/2],
		"missing trailer":  sealed[:len(sealed)-3],
	}
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	for name, data := range cases {
		if _, err := Open(data, KindCheckpoint, "ck1"); !errors.Is(err, ErrInvalid) {
			t.Fatalf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
	if _, err := Open(sealed, KindPlacement, "ck1"); !errors.Is(err, ErrInvalid) {
		t.Fatal("kind mismatch must be ErrInvalid")
	}
	if _, err := Open(sealed, KindCheckpoint, "other"); !errors.Is(err, ErrInvalid) {
		t.Fatal("key mismatch must be ErrInvalid")
	}

	if _, err := DecodeCheckpoint(payload[:len(payload)-5]); !errors.Is(err, ErrInvalid) {
		t.Fatalf("truncated payload: %v", err)
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), payload...), 9)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing garbage: %v", err)
	}

	// Adversarial counts wrap-check: a huge sparse-set count must fail
	// the bounds check instead of reaching makeslice.
	e := &enc{}
	e.u32(3)
	e.u64(5)
	e.bool(false)
	e.i32s(nil)
	e.i32s(nil)
	e.i32s(nil)
	e.bools(nil)
	e.u32(0xFFFFFFFF) // infectious PM count
	e.b = append(e.b, make([]byte, 64)...)
	if _, err := DecodeCheckpoint(e.b); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overflowing set count: %v, want ErrInvalid", err)
	}
}

// TestCheckpointStoreHeal: a checkpoint artifact truncated on disk reads
// as ErrInvalid, is removed, and the slot heals on the next Put — same
// contract as every other kind, pinned here because checkpoints are the
// largest artifacts the store holds.
func TestCheckpointStoreHeal(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := EncodeCheckpoint(testCheckpoint(t))
	if err := st.Put(KindCheckpoint, "ck", payload); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(KindCheckpoint, "ck")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip through store failed: %v", err)
	}

	var path string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == artExt {
			path = p
		}
		return nil
	})
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(KindCheckpoint, "ck"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("corrupt get: %v, want ErrInvalid", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint was not removed")
	}
	if err := st.Put(KindCheckpoint, "ck", payload); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get(KindCheckpoint, "ck"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("heal failed: %v", err)
	}
}
