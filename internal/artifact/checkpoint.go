package artifact

import (
	"sort"

	"repro/internal/charm"
	"repro/internal/core"
	"repro/internal/interventions"
)

// KindCheckpoint holds a sealed core.Checkpoint — the fork point an
// intervention sweep's branches resume from. Checkpoints live in their
// own store directory with their own TTL, so large fork-point blobs
// never compete with hot placement artifacts under the LRU bound.
const KindCheckpoint Kind = 5

// EncodeCheckpoint serializes a checkpoint to its deterministic binary
// payload (wrap with Seal before writing to disk). Maps are emitted in
// sorted key order and nil-ness of maps and slices is preserved, so a
// decode→encode round trip reproduces the payload byte for byte and a
// restored run's Result marshals identically to a from-scratch run's.
func EncodeCheckpoint(cp *core.Checkpoint) []byte {
	e := &enc{b: make([]byte, 0, 64+14*len(cp.States))}
	e.u32(uint32(cp.Day))
	e.u64(uint64(cp.Cumulative))
	e.bool(cp.EventOn)
	e.i32s(cp.States)
	e.i32s(cp.Treatments)
	e.i32s(cp.DaysLeft)
	e.bools(cp.Infected)
	e.u32(uint32(len(cp.Infectious)))
	for _, set := range cp.Infectious {
		e.i32s(set)
	}
	e.u32(uint32(len(cp.Progressing)))
	for _, set := range cp.Progressing {
		e.i32s(set)
	}
	e.bools(cp.RuleFired)
	e.effects(cp.Effects)
	e.u32(uint32(len(cp.Days)))
	for i := range cp.Days {
		e.dayReport(&cp.Days[i])
	}
	return e.b
}

// DecodeCheckpoint parses an EncodeCheckpoint payload. Structural damage
// wraps ErrInvalid; semantic validation against a concrete engine
// (person counts, state ids, set membership) is core.Restore's job.
func DecodeCheckpoint(payload []byte) (*core.Checkpoint, error) {
	d := &dec{b: payload}
	cp := &core.Checkpoint{}
	cp.Day = int(d.u32())
	cp.Cumulative = int64(d.u64())
	cp.EventOn = d.bool()
	cp.States = d.i32s()
	cp.Treatments = d.i32s()
	cp.DaysLeft = d.i32s()
	cp.Infected = d.bools()
	// Each sparse set costs at least its 8-byte length prefix.
	if n := int(d.u32()); d.err == nil && uint64(n) <= uint64(d.remaining())/8 {
		cp.Infectious = make([][]int32, n)
		for i := range cp.Infectious {
			cp.Infectious[i] = d.i32s()
		}
	} else if d.err == nil {
		d.fail("infectious set count %d overruns payload", n)
	}
	if n := int(d.u32()); d.err == nil && uint64(n) <= uint64(d.remaining())/8 {
		cp.Progressing = make([][]int32, n)
		for i := range cp.Progressing {
			cp.Progressing[i] = d.i32s()
		}
	} else if d.err == nil {
		d.fail("progressing set count %d overruns payload", n)
	}
	cp.RuleFired = d.bools()
	cp.Effects = d.effects()
	if n := int(d.u32()); d.err == nil && uint64(n) <= uint64(d.remaining())/4 {
		cp.Days = make([]core.DayReport, n)
		for i := range cp.Days {
			d.dayReport(&cp.Days[i])
		}
	} else if d.err == nil {
		d.fail("day report count %d overruns payload", n)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return cp, nil
}

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool at offset %d", d.off-1)
		return false
	}
}

// bools encodes a []bool with nil-ness preserved (flag 0 = nil).
func (e *enc) bools(s []bool) {
	if s == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.bool(v)
	}
}

func (d *dec) bools() []bool {
	if d.u8() == 0 {
		return nil
	}
	n, ok := d.count(1)
	if !ok {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.bool()
	}
	return out
}

// i64Map / f64Map encode string-keyed maps in sorted key order with
// nil-ness preserved, so map encoding is deterministic and a decoded
// report marshals to the same JSON (nil → null, empty → {}).
func (e *enc) i64Map(m map[string]int64) {
	if m == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.u64(uint64(m[k]))
	}
}

func (d *dec) i64Map() map[string]int64 {
	if d.u8() == 0 {
		return nil
	}
	n, ok := d.count(12)
	if !ok {
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = int64(d.u64())
	}
	return m
}

func (e *enc) intMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.u64(uint64(int64(m[k])))
	}
}

func (d *dec) intMap(m map[string]int) {
	n, ok := d.count(12)
	if !ok {
		return
	}
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = int(int64(d.u64()))
	}
}

func (e *enc) f64Map(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.f64(m[k])
	}
}

func (d *dec) f64Map(m map[string]float64) {
	n, ok := d.count(12)
	if !ok {
		return
	}
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = d.f64()
	}
}

// effects encodes intervention effects (maps in sorted key order; the
// Effects maps are always allocated, so no nil flags).
func (e *enc) effects(ef *interventions.Effects) {
	e.intMap(ef.ClosedFor)
	e.f64Map(ef.ReduceFrac)
	e.intMap(ef.ReduceFor)
	e.f64(ef.VaccinateNow)
	e.intMap(ef.IsolateFor)
}

func (d *dec) effects() *interventions.Effects {
	ef := interventions.NewEffects()
	d.intMap(ef.ClosedFor)
	d.f64Map(ef.ReduceFrac)
	d.intMap(ef.ReduceFor)
	ef.VaccinateNow = d.f64()
	d.intMap(ef.IsolateFor)
	return ef
}

func (e *enc) dayReport(r *core.DayReport) {
	e.u32(uint32(r.Day))
	e.i64Map(r.Counts)
	e.u64(uint64(r.NewInfections))
	e.phaseStats(&r.PersonPhase)
	e.phaseStats(&r.LocationPhase)
	e.phaseStats(&r.UpdatePhase)
	e.u64(uint64(r.Events))
	e.u64(uint64(r.Interactions))
	e.u64(uint64(r.Trials))
	e.str(r.Kernel)
}

func (d *dec) dayReport(r *core.DayReport) {
	r.Day = int(d.u32())
	r.Counts = d.i64Map()
	r.NewInfections = int64(d.u64())
	d.phaseStats(&r.PersonPhase)
	d.phaseStats(&r.LocationPhase)
	d.phaseStats(&r.UpdatePhase)
	r.Events = int64(d.u64())
	r.Interactions = int64(d.u64())
	r.Trials = int64(d.u64())
	r.Kernel = d.str()
}

func (e *enc) phaseStats(ps *charm.PhaseStats) {
	e.u64(uint64(ps.Messages))
	e.u64(uint64(ps.WireMessages))
	e.u64(uint64(ps.Bytes))
	for _, v := range ps.ByLocality {
		e.u64(uint64(v))
	}
	for _, v := range ps.WireByLocality {
		e.u64(uint64(v))
	}
	e.u32(uint32(ps.SyncRounds))
	e.i64Map(ps.Reductions)
	if ps.PerPE == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u64(uint64(len(ps.PerPE)))
	for i := range ps.PerPE {
		pe := &ps.PerPE[i]
		e.u64(uint64(pe.MsgsIn))
		e.u64(uint64(pe.MsgsOut))
		for _, v := range pe.WireOut {
			e.u64(uint64(v))
		}
		e.u64(uint64(pe.BytesOut))
		e.u64(uint64(pe.Delivered))
	}
}

func (d *dec) phaseStats(ps *charm.PhaseStats) {
	ps.Messages = int64(d.u64())
	ps.WireMessages = int64(d.u64())
	ps.Bytes = int64(d.u64())
	for i := range ps.ByLocality {
		ps.ByLocality[i] = int64(d.u64())
	}
	for i := range ps.WireByLocality {
		ps.WireByLocality[i] = int64(d.u64())
	}
	ps.SyncRounds = int(d.u32())
	ps.Reductions = d.i64Map()
	if d.u8() == 0 {
		return
	}
	n, ok := d.count(64)
	if !ok {
		return
	}
	ps.PerPE = make([]charm.PETraffic, n)
	for i := range ps.PerPE {
		pe := &ps.PerPE[i]
		pe.MsgsIn = int64(d.u64())
		pe.MsgsOut = int64(d.u64())
		for j := range pe.WireOut {
			pe.WireOut[j] = int64(d.u64())
		}
		pe.BytesOut = int64(d.u64())
		pe.Delivered = int64(d.u64())
	}
}
