package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is a content-addressed artifact store rooted at one directory:
// each artifact lives at <dir>/<shard>/<sha256(key)>.art, sealed in the
// versioned, checksummed envelope with its own key recorded inside.
// Writes are atomic (temp file + rename), so a crashed writer leaves no
// half-written artifact — and a half-synced one fails its checksum and
// reads as a miss.
//
// The store is safe for concurrent use by one process; cross-process
// sharing is safe for readers because completed files are immutable
// (rewrites of a key rename over it atomically).
type Store struct {
	dir string

	mu      sync.Mutex
	files   int
	bytes   int64
	gcFiles int64
	gcBytes int64
}

// StoreStats is a point-in-time size snapshot of a store. GCFiles and
// GCBytes count artifacts this process's GC passes removed (LRU sweep or
// TTL expiry).
type StoreStats struct {
	Files   int   `json:"files"`
	Bytes   int64 `json:"bytes"`
	GCFiles int64 `json:"gc_files,omitempty"`
	GCBytes int64 `json:"gc_bytes,omitempty"`
}

const artExt = ".art"

// NewStore opens (creating if needed) a store rooted at dir and scans it
// once for size accounting.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	s := &Store{dir: dir}
	cands, total, err := s.scanFiles()
	if err != nil {
		return nil, err
	}
	s.files = len(cands)
	s.bytes = total
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a content key to its file: two-character shard directory
// plus the full SHA-256, so huge stores don't put every file in one dir.
func (s *Store) path(key string) string {
	sum := hex.EncodeToString(func() []byte { h := sha256.Sum256([]byte(key)); return h[:] }())
	return filepath.Join(s.dir, sum[:2], sum+artExt)
}

// Put seals payload under (kind, key) and writes it atomically,
// replacing any previous artifact for the key.
func (s *Store) Put(kind Kind, key string, payload []byte) error {
	data := Seal(kind, key, payload)
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	var prev int64 = -1
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	s.mu.Lock()
	if prev >= 0 {
		s.bytes += int64(len(data)) - prev
	} else {
		s.files++
		s.bytes += int64(len(data))
	}
	s.mu.Unlock()
	return nil
}

// Get opens the artifact stored under (kind, key) and returns its
// payload. A missing file is ErrNotFound; a corrupt, stale or
// wrong-version file is removed and reported as ErrInvalid — both are
// "miss, rebuild it" to a cache tier, never fatal.
func (s *Store) Get(kind Kind, key string) ([]byte, error) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("artifact: read %s: %w", path, err)
	}
	payload, err := Open(data, kind, key)
	if err != nil {
		s.removeFile(path, int64(len(data)))
		return nil, err
	}
	// Mark the artifact recently used (best-effort): GC evicts by mtime,
	// so a read refreshes the file's place in the LRU order the same way
	// a memory-cache hit moves an entry to the front.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return payload, nil
}

// Has reports whether an artifact file exists under key (existence
// only — no integrity check; a later Get may still miss on corruption).
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Delete removes the artifact under key (no error if absent).
func (s *Store) Delete(key string) {
	path := s.path(key)
	if info, err := os.Stat(path); err == nil {
		s.removeFile(path, info.Size())
	}
}

func (s *Store) removeFile(path string, size int64) {
	if os.Remove(path) == nil {
		s.mu.Lock()
		s.files--
		s.bytes -= size
		s.mu.Unlock()
	}
}

// gcCandidate is one artifact file as the GC scan sees it.
type gcCandidate struct {
	path  string
	size  int64
	mtime time.Time
}

// scanFiles walks the store and returns every artifact file with its
// size and modification time (= last access, since Get touches mtime).
func (s *Store) scanFiles() ([]gcCandidate, int64, error) {
	var out []gcCandidate
	var total int64
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != artExt {
			return err
		}
		info, infoErr := d.Info()
		if infoErr != nil {
			return nil // racing a concurrent delete: skip
		}
		out = append(out, gcCandidate{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("artifact: scan %s: %w", s.dir, err)
	}
	return out, total, nil
}

// gcRemove deletes one candidate and charges the GC counters.
func (s *Store) gcRemove(c gcCandidate) bool {
	if os.Remove(c.path) != nil {
		return false
	}
	s.mu.Lock()
	s.files--
	s.bytes -= c.size
	s.gcFiles++
	s.gcBytes += c.size
	s.mu.Unlock()
	return true
}

// GC prunes the store to at most maxBytes, removing least-recently-
// accessed artifacts first (mtime order; Get refreshes it). A removed
// artifact is not data loss — it reads as a miss and is rebuilt and
// re-stored by the next run that needs it. maxBytes <= 0 is a no-op.
func (s *Store) GC(maxBytes int64) (files int, bytes int64, err error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	cands, total, err := s.scanFiles()
	if err != nil || total <= maxBytes {
		return 0, 0, err
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mtime.Equal(cands[j].mtime) {
			return cands[i].mtime.Before(cands[j].mtime)
		}
		return cands[i].path < cands[j].path
	})
	for _, c := range cands {
		if total <= maxBytes {
			break
		}
		if s.gcRemove(c) {
			total -= c.size
			files++
			bytes += c.size
		}
	}
	return files, bytes, nil
}

// ExpireOlderThan removes every artifact not accessed within age
// (mtime-based TTL: a read refreshes it). age <= 0 is a no-op.
func (s *Store) ExpireOlderThan(age time.Duration) (files int, bytes int64, err error) {
	if age <= 0 {
		return 0, 0, nil
	}
	cands, _, err := s.scanFiles()
	if err != nil {
		return 0, 0, err
	}
	cutoff := time.Now().Add(-age)
	for _, c := range cands {
		if c.mtime.After(cutoff) {
			continue
		}
		if s.gcRemove(c) {
			files++
			bytes += c.size
		}
	}
	return files, bytes, nil
}

// KeyInfo identifies one stored artifact.
type KeyInfo struct {
	Key  string
	Kind Kind
	Size int64
}

// Keys scans the store and returns every artifact's recorded key and
// kind (from the envelope header — checksums are not verified here),
// sorted by key for deterministic iteration. Unreadable or foreign
// files are skipped.
func (s *Store) Keys() ([]KeyInfo, error) {
	var out []KeyInfo
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != artExt {
			return err
		}
		f, openErr := os.Open(path)
		if openErr != nil {
			return nil
		}
		defer f.Close()
		// The fixed prefix is 12 bytes; keys are content-key strings,
		// comfortably under this cap.
		head := make([]byte, 64*1024)
		n, _ := io.ReadFull(f, head)
		kind, key, _, hdrErr := parseHeader(head[:n])
		if hdrErr != nil {
			return nil
		}
		info, infoErr := d.Info()
		if infoErr != nil {
			return nil
		}
		out = append(out, KeyInfo{Key: key, Kind: kind, Size: info.Size()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: scan %s: %w", s.dir, err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Stats snapshots the store's size accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Files: s.files, Bytes: s.bytes, GCFiles: s.gcFiles, GCBytes: s.gcBytes}
}
