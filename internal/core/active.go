package core

import (
	"sort"

	"repro/internal/charm"
	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// Active-set day stepping (Config.Kernel "auto"): instead of
// broadcasting every phase to every manager, the engine walks the
// infectious frontier, marks the locations it can reach through kept
// visits, and targets only the managers owning active work. Because
// every stochastic draw is keyed by content, skipping a person or
// location whose work prices to zero cannot perturb any other draw —
// the trajectory (new infections, state counts, attack rate) stays
// byte-identical to the dense kernel; only the phase statistics reflect
// the reduced message and DES volume.
//
// The byte-identity argument, in full:
//
//   - an infection can only originate at a location visited by at least
//     one effectively infectious person whose visit survived the
//     behavioral filters (the DES requires src.Infectivity > 0);
//   - the frontier walk evaluates exactly those filters with exactly the
//     keyed draws the dense person phase makes, so the marked set is
//     precisely the set of locations where dense could transmit;
//   - every static visitor of a marked location re-evaluates its own
//     schedule through the same shared filter, so marked locations
//     receive exactly the dense kernel's kept-visit multiset, and the
//     per-location DES output is arrival-order-insensitive;
//   - unmarked locations receive nothing and would have produced no
//     infections; and
//   - phase 3 resolves the same infect-message multiset in the same
//     canonical order and progresses the same set of persons (only
//     persons with DaysLeft >= 0 can change state without an exposure).

// keepVisit evaluates the behavioral filters (isolation, closures,
// demand reduction) for one visit, making exactly the keyed draws the
// dense person phase makes. Shared by the dense and active person
// phases, the frontier walk and the event kernel, so the four can never
// disagree about which visits happen.
func (e *Engine) keepVisit(p int32, isolated bool, locID int32, loc *synthpop.Location, day int) bool {
	if loc.Type == synthpop.Home {
		return true
	}
	if isolated {
		return false
	}
	eff := e.effects
	typeName := loc.Type.String()
	if eff.Closed(typeName) {
		return false
	}
	if r := eff.Reduction(typeName); r > 0 {
		if xrand.KeyedFloat64(0x4edc, e.cfg.Seed, uint64(p), uint64(locID), uint64(day)) < r {
			return false
		}
	}
	return true
}

// applyVaccination runs the day's vaccination campaign engine-side: the
// dense kernel applies it inside computeVisits for every person, but the
// active paths only visit active persons, so the campaign moves up
// front. The draw is keyed by (seed, person, day) — identical to the
// dense kernel's, so applying it earlier in the day is byte-equivalent.
func (e *Engine) applyVaccination(day int) {
	vaccinate := e.effects.VaccinateNow
	if vaccinate <= 0 {
		return
	}
	vacID, hasVac := e.model.TreatmentByName("vaccinated")
	if !hasVac {
		return
	}
	for p := range e.health {
		hs := &e.health[p]
		if hs.Treatment != 0 {
			continue
		}
		if xrand.KeyedFloat64(0xacc1, e.cfg.Seed, uint64(p), uint64(day)) < vaccinate {
			hs.Treatment = vacID
		}
	}
}

// ensureActiveState lazily allocates the active-set scratch and the
// inverted static schedule (visit indices grouped by location) on the
// first non-dense day, so purely dense runs pay nothing for it.
func (e *Engine) ensureActiveState() {
	if e.activeLoc != nil {
		return
	}
	nP, nL := e.pop.NumPersons(), e.pop.NumLocations()
	e.activeLoc = make([]bool, nL)
	e.personMark = make([]bool, nP)
	e.activePersons = make([][]int32, len(e.pmHealth))

	counts := make([]int32, nL)
	for i := range e.pop.Visits {
		counts[e.pop.Visits[i].Loc]++
	}
	flat := make([]int32, len(e.pop.Visits))
	e.visitsAtLoc = make([][]int32, nL)
	off := 0
	for l := range e.visitsAtLoc {
		end := off + int(counts[l])
		e.visitsAtLoc[l] = flat[off:off:end]
		off = end
	}
	for i := range e.pop.Visits {
		l := e.pop.Visits[i].Loc
		e.visitsAtLoc[l] = append(e.visitsAtLoc[l], int32(i))
	}
}

// markActive records one location as reachable from the frontier today.
func (e *Engine) markActive(locID int32) {
	if e.activeLoc[locID] {
		return
	}
	e.activeLoc[locID] = true
	e.activeLocList = append(e.activeLocList, locID)
}

// markFrontierLocations walks the effectively infectious frontier and
// marks every location one of its kept visits reaches. In mixing mode a
// marked location activates its whole fragment family, because dense
// replicates infectious visitors across sibling fragments (Figure 6(b)).
func (e *Engine) markFrontierLocations(day int) {
	for pmID := range e.pmHealth {
		for _, p := range e.pmHealth[pmID].infectious {
			hs := &e.health[p]
			if e.model.Infectivity(hs.State, hs.Treatment) <= 0 {
				continue
			}
			isolated := e.effects.Isolated(e.stateNames[hs.State])
			for _, v := range e.pop.PersonVisits(p) {
				loc := &e.pop.Locations[v.Loc]
				if !e.keepVisit(p, isolated, v.Loc, loc, day) {
					continue
				}
				e.markActive(v.Loc)
				if e.cfg.Mixing > 0 {
					for _, frag := range e.fragments[loc.Origin] {
						e.markActive(frag)
					}
				}
			}
		}
	}
}

// clearActiveScratch resets the per-day marks in O(active) time.
func (e *Engine) clearActiveScratch() {
	for _, locID := range e.activeLocList {
		e.activeLoc[locID] = false
	}
	e.activeLocList = e.activeLocList[:0]
	for pmID := range e.activePersons {
		for _, p := range e.activePersons[pmID] {
			e.personMark[p] = false
		}
		e.activePersons[pmID] = e.activePersons[pmID][:0]
	}
}

// runDayActive executes one day of the active-set stepper. Days with an
// empty frontier skip phases 1 and 2 entirely (no location can
// transmit); phase 3 runs only on managers holding buffered infections
// or progressing persons, so a fully quiescent day costs O(managers).
func (e *Engine) runDayActive(day int) DayReport {
	rep := DayReport{Day: day, Kernel: kernelActive}
	e.stepScenario(day)
	e.applyVaccination(day)
	e.ensureActiveState()

	if e.locEvents != nil {
		for i := range e.locEvents {
			e.locEvents[i] = 0
			e.locInteractions[i] = 0
		}
	}

	e.markFrontierLocations(day)
	if len(e.activeLocList) > 0 {
		// Active person set: every static visitor of an active location,
		// deduped and bucketed per PM.
		for _, locID := range e.activeLocList {
			for _, vi := range e.visitsAtLoc[locID] {
				p := e.pop.Visits[vi].Person
				if e.personMark[p] {
					continue
				}
				e.personMark[p] = true
				pmID := e.pmOf[p]
				e.activePersons[pmID] = append(e.activePersons[pmID], p)
			}
		}

		// Phase 1: person phase, targeted at PMs owning active persons.
		for pmID := range e.activePersons {
			ps := e.activePersons[pmID]
			if len(ps) == 0 {
				continue
			}
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
			e.rt.Send(charm.ChareRef{Array: e.pmArr, Index: int32(pmID)}, msgComputeVisitsActive{Day: day})
		}
		rep.PersonPhase = e.rt.Drain()

		// Phase 2: location phase, targeted at LMs owning active locations.
		lmNeeded := make([]bool, e.rt.ArrayLen(e.lmArr))
		for _, locID := range e.activeLocList {
			lmID := e.lmOf[locID]
			if lmNeeded[lmID] {
				continue
			}
			lmNeeded[lmID] = true
			e.rt.Send(charm.ChareRef{Array: e.lmArr, Index: lmID}, msgRunDESActive{Day: day})
		}
		rep.LocationPhase = e.rt.Drain()
		rep.Events = rep.LocationPhase.Reductions["events"]
		rep.Interactions = rep.LocationPhase.Reductions["interactions"]
		rep.Trials = rep.LocationPhase.Reductions["trials"]
	}

	// Phase 3: apply updates, targeted at PMs with buffered infections
	// or progressing persons.
	sent := false
	for pmID := range e.pmHealth {
		if len(e.infectionBuf[pmID]) == 0 && len(e.pmHealth[pmID].progressing) == 0 {
			continue
		}
		e.rt.Send(charm.ChareRef{Array: e.pmArr, Index: int32(pmID)}, msgApplyUpdatesActive{Day: day})
		sent = true
	}
	if sent {
		rep.UpdatePhase = e.rt.Drain()
		rep.NewInfections = rep.UpdatePhase.Reductions["newinfections"]
		e.cumulative += rep.NewInfections
	}
	rep.Counts = e.stateCounts64()

	e.clearActiveScratch()
	e.effects.Tick()
	return rep
}

// computeVisitsActive is the active-set person phase: only this PM's
// active persons evaluate their schedules, and only visits to active
// locations are sent. Vaccination already ran engine-side.
func (pm *personManager) computeVisitsActive(ctx *charm.Ctx, day int) {
	e := pm.eng
	for _, p := range e.activePersons[pm.id] {
		pm.sendVisits(ctx, p, day, e.activeLoc)
	}
}

// applyUpdatesActive is the active-set update phase: the same canonical
// infection resolution as dense, but progression walks only the
// progressing set instead of every person this PM owns. State counts
// come from the incremental counters, so no per-person reduction is
// contributed.
func (pm *personManager) applyUpdatesActive(ctx *charm.Ctx, day int) {
	e := pm.eng
	if n := pm.resolveInfections(day); n > 0 {
		ctx.Contribute("newinfections", n)
	}
	// transitionPerson may swap-remove the person under the cursor; the
	// slot is then re-examined instead of advanced past. Fresh infections
	// were added above, before this walk, so they receive their same-day
	// dwell decrement exactly as the dense kernel's full scan gives them.
	h := &e.pmHealth[pm.id]
	for i := 0; i < len(h.progressing); {
		p := h.progressing[i]
		e.progressPerson(p, day)
		if i < len(h.progressing) && h.progressing[i] == p {
			i++
		}
	}
}
