package core

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/splitloc"
	"repro/internal/synthpop"
)

// testPop builds a small but epidemic-capable population.
func testPop(t testing.TB) *synthpop.Population {
	t.Helper()
	pop := synthpop.Generate(synthpop.DefaultConfig("core-test", 3000, 700, 11))
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

// hotModel returns a disease model with transmissibility high enough that
// a short run infects a meaningful fraction.
func hotModel() *disease.Model {
	m := disease.Default()
	m.Transmissibility = 4e-4
	return m
}

func run(t testing.TB, cfg Config) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEpidemicSpreads(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{
		Population: pop, Disease: hotModel(),
		Days: 40, Seed: 1, InitialInfections: 5, Ranks: 4,
	})
	if res.TotalInfections < 50 {
		t.Fatalf("epidemic did not spread: %d infections", res.TotalInfections)
	}
	if res.AttackRate <= 0 || res.AttackRate > 1 {
		t.Fatalf("attack rate %v out of range", res.AttackRate)
	}
	// Counts must sum to the population every day.
	for _, d := range res.Days {
		var sum int64
		for _, c := range d.Counts {
			sum += c
		}
		if sum != int64(pop.NumPersons()) {
			t.Fatalf("day %d counts sum to %d, want %d", d.Day, sum, pop.NumPersons())
		}
	}
}

func TestEpidemicEventuallyRecovers(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{
		Population: pop, Disease: hotModel(),
		Days: 150, Seed: 3, InitialInfections: 10, Ranks: 2,
	})
	last := res.Days[len(res.Days)-1]
	// After 150 days the infectious compartments must be (nearly) empty.
	active := last.Counts["latent"] + last.Counts["infectious"] +
		last.Counts["symptomatic"] + last.Counts["asymptomatic"]
	if active > int64(pop.NumPersons()/100) {
		t.Fatalf("epidemic still raging after 150 days: %d active", active)
	}
	if last.Counts["recovered"] == 0 {
		t.Fatal("nobody recovered")
	}
}

// epiSignature compresses a result into a comparable trajectory.
func epiSignature(res *Result) []int64 {
	var sig []int64
	for _, d := range res.Days {
		sig = append(sig, d.NewInfections, d.Counts["recovered"], d.Counts["susceptible"])
	}
	return sig
}

func sameSignature(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPartitionInvariance(t *testing.T) {
	// The paper's RR vs GP comparison is only meaningful because the
	// epidemic itself does not depend on data distribution. Verify the
	// trajectory is bit-identical across rank counts, chare factors and
	// arbitrary rank assignments.
	pop := testPop(t)
	base := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 25, Seed: 7, InitialInfections: 5, Ranks: 1})
	sig := epiSignature(base)

	variants := []Config{
		{Ranks: 3},
		{Ranks: 16},
		{Ranks: 4, ChareFactor: 4},
		{Ranks: 4, AggBufferSize: 32},
		{Ranks: 5, SyncMode: charm.QuiescenceDetection},
	}
	// A deliberately lopsided custom distribution.
	personRank := make([]int32, pop.NumPersons())
	locRank := make([]int32, pop.NumLocations())
	for i := range personRank {
		personRank[i] = int32((i * i) % 7)
	}
	for i := range locRank {
		locRank[i] = int32((i / 3) % 7)
	}
	variants = append(variants, Config{Ranks: 7, PersonRank: personRank, LocationRank: locRank})

	for i, v := range variants {
		v.Population = pop
		v.Disease = hotModel()
		v.Days = 25
		v.Seed = 7
		v.InitialInfections = 5
		res := run(t, v)
		if !sameSignature(sig, epiSignature(res)) {
			t.Fatalf("variant %d (%+v ranks=%d) changed the epidemic", i, v.SyncMode, v.Ranks)
		}
	}
}

func TestSplitLocInvariance(t *testing.T) {
	// splitLoc must not change the epidemic: the keyed randomness uses
	// original location ids and sublocations (Section III-C correctness).
	pop := testPop(t)
	split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSplit == 0 {
		t.Skip("no locations heavy enough to split in this population")
	}
	a := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 25, Seed: 9, InitialInfections: 5, Ranks: 4})
	b := run(t, Config{Population: split, Disease: hotModel(),
		Days: 25, Seed: 9, InitialInfections: 5, Ranks: 4})
	if !sameSignature(epiSignature(a), epiSignature(b)) {
		t.Fatal("splitLoc changed the epidemic trajectory")
	}
}

func TestParallelSequentialEquivalence(t *testing.T) {
	pop := testPop(t)
	seq := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 15, Seed: 13, InitialInfections: 5, Ranks: 4})
	par := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 15, Seed: 13, InitialInfections: 5, Ranks: 4, Parallel: true})
	if !sameSignature(epiSignature(seq), epiSignature(par)) {
		t.Fatal("parallel execution changed the epidemic")
	}
	if seq.Days[5].PersonPhase.Messages != par.Days[5].PersonPhase.Messages {
		t.Fatal("message counts differ between modes")
	}
}

func TestAggregationOnlyAffectsWire(t *testing.T) {
	pop := testPop(t)
	off := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 8, Seed: 17, InitialInfections: 5, Ranks: 6})
	on := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 8, Seed: 17, InitialInfections: 5, Ranks: 6, AggBufferSize: 64})
	if !sameSignature(epiSignature(off), epiSignature(on)) {
		t.Fatal("aggregation changed the epidemic")
	}
	d := 4
	if on.Days[d].PersonPhase.WireMessages >= off.Days[d].PersonPhase.WireMessages {
		t.Fatalf("aggregation did not reduce wire messages: %d vs %d",
			on.Days[d].PersonPhase.WireMessages, off.Days[d].PersonPhase.WireMessages)
	}
	if on.Days[d].PersonPhase.Messages != off.Days[d].PersonPhase.Messages {
		t.Fatal("aggregation changed chare-level message count")
	}
}

func TestVisitMessageVolumeMatchesSchedules(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{Population: pop, Disease: disease.Default(),
		Days: 1, Seed: 19, InitialInfections: 1, Ranks: 3})
	got := res.Days[0].PersonPhase.Messages
	if got != int64(pop.NumVisits()) {
		t.Fatalf("day 1 visit messages = %d, want %d (no interventions active)", got, pop.NumVisits())
	}
	if res.Days[0].Events != 2*int64(pop.NumVisits()) {
		t.Fatalf("events = %d, want %d", res.Days[0].Events, 2*pop.NumVisits())
	}
}

func TestSchoolClosureReducesInfections(t *testing.T) {
	pop := testPop(t)
	baseline := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 50, Seed: 21, InitialInfections: 5, Ranks: 2})

	scn, err := interventions.Parse(`
when day >= 3 {
    close school for 45
    close shop for 45
    close other for 45
    reduce work visits by 0.5 for 45
}`)
	if err != nil {
		t.Fatal(err)
	}
	mitigated := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 50, Seed: 21, InitialInfections: 5, Ranks: 2, Scenario: scn})
	if mitigated.TotalInfections >= baseline.TotalInfections {
		t.Fatalf("closures did not help: %d vs %d",
			mitigated.TotalInfections, baseline.TotalInfections)
	}
	// Visit volume must visibly drop.
	if mitigated.Days[10].PersonPhase.Messages >= baseline.Days[10].PersonPhase.Messages {
		t.Fatal("closures did not reduce visit messages")
	}
}

func TestVaccinationReducesInfections(t *testing.T) {
	pop := testPop(t)
	baseline := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 50, Seed: 23, InitialInfections: 5, Ranks: 2})
	scn, err := interventions.Parse("when day >= 2 { vaccinate 0.8 of people }")
	if err != nil {
		t.Fatal(err)
	}
	vax := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 50, Seed: 23, InitialInfections: 5, Ranks: 2, Scenario: scn})
	if vax.TotalInfections >= baseline.TotalInfections {
		t.Fatalf("vaccination did not help: %d vs %d", vax.TotalInfections, baseline.TotalInfections)
	}
}

func TestConfigValidation(t *testing.T) {
	pop := testPop(t)
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil population accepted")
	}
	if _, err := New(Config{Population: pop, PersonRank: make([]int32, 3)}); err == nil {
		t.Fatal("short PersonRank accepted")
	}
	bad := make([]int32, pop.NumPersons())
	bad[0] = 99
	if _, err := New(Config{Population: pop, Ranks: 2, PersonRank: bad}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	badL := make([]int32, pop.NumLocations())
	badL[0] = -1
	if _, err := New(Config{Population: pop, Ranks: 2, LocationRank: badL}); err == nil {
		t.Fatal("negative location rank accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	pop := testPop(t)
	e, err := New(Config{Population: pop})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Days != 120 || e.cfg.Ranks != 1 || e.cfg.ChareFactor != 1 {
		t.Fatalf("defaults wrong: %+v", e.cfg)
	}
	if e.cfg.InitialInfections < 1 {
		t.Fatal("no index cases by default")
	}
}

func TestNewInfectionsMatchCurve(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 30, Seed: 29, InitialInfections: 5, Ranks: 3})
	var curve int64
	for _, n := range res.EpiCurve() {
		curve += n
	}
	// Total = seeded + daily new infections.
	seeded := res.TotalInfections - curve
	if seeded < 1 || seeded > 20 {
		t.Fatalf("implied seeds = %d, want ≈5", seeded)
	}
}

func BenchmarkEngineDay(b *testing.B) {
	pop := synthpop.Generate(synthpop.DefaultConfig("bench", 20000, 5000, 1))
	e, err := New(Config{Population: pop, Disease: hotModel(),
		Days: 1000000, Seed: 1, InitialInfections: 20, Ranks: 8, AggBufferSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runDay(i + 1)
	}
}
