// Package core is the EpiSimdemics engine: the agent-based contagion
// simulation of Section II, executed on the charm runtime. Each simulated
// day runs the paper's algorithm:
//
//  1. PersonManager chares update their persons and send visit messages to
//     LocationManager chares (aggregated, Section IV-C);
//  2. completion detection synchronization;
//  3. LocationManagers replay visits as a sequential DES per location,
//     computing transmissions and sending infect messages back;
//  4. completion detection synchronization;
//  5. PersonManagers apply infections and health-state progressions;
//  6. global state (counts per health state) is reduced.
//
// All stochastic draws are keyed by content (person ids, days, original
// location ids), so the epidemic trajectory is bit-identical across any
// data distribution (RR, GP, with or without splitLoc), any rank count,
// and sequential vs parallel execution — the repository's main
// correctness oracle.
package core

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/des"
	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// Config configures a simulation.
type Config struct {
	Population *synthpop.Population
	Disease    *disease.Model
	// Scenario optionally applies interventions (may be nil).
	Scenario *interventions.Scenario
	Days     int
	Seed     uint64
	// InitialInfections seeds approximately this many index cases on day 0.
	InitialInfections int

	// Ranks is the number of logical PEs (core-modules).
	Ranks int
	// Parallel selects goroutine-per-PE execution instead of the
	// deterministic sequential scheduler.
	Parallel bool
	// Topology is the SMP geometry (zero value = one process/node).
	Topology charm.Topology
	// AggBufferSize enables message aggregation when > 0.
	AggBufferSize int
	// Route2D enables TRAM-style topological routing of aggregated
	// messages (charm.Config.Route2D).
	Route2D  bool
	SyncMode charm.SyncMode
	// ChareFactor over-decomposes: managers per rank per array. Default 1.
	ChareFactor int
	// PersonRank and LocationRank assign each person/location to a rank;
	// nil means round-robin (the paper's RR baseline).
	PersonRank   []int32
	LocationRank []int32
	// Mixing enables the inter-sublocation mixing model (the paper's
	// future work, Section III-C): people in different sublocations of the
	// same location interact with transmission scaled by this factor.
	// When the population was split, infectious visitors are replicated to
	// every fragment of their location ("dividing the susceptibles while
	// replicating the infectious", Figure 6(b)) so that outcomes stay
	// identical to the unsplit population.
	Mixing float64
	// CollectLocationLoads records per-location daily workload counters
	// (events and interactions), the measurement input of dynamic load
	// balancing (Section VII future work). Costs two int64 slices.
	CollectLocationLoads bool

	// Kernel selects the per-day simulation kernel:
	//
	//   - "" or "dense": the paper's day-stepped algorithm, broadcasting
	//     every phase to every manager (the historical behavior).
	//   - "auto": active-set day stepping — phases 1 and 2 touch only the
	//     locations reachable from the infectious frontier and the persons
	//     visiting them, and days with no infectious person skip those
	//     phases entirely. Byte-identical to "dense" (same keyed draws,
	//     same infection multisets); only the phase statistics reflect the
	//     reduced work.
	//   - "event": a Gillespie/FastSIR event-driven kernel while
	//     prevalence is below KernelThreshold (per-person infection
	//     hazards accumulated off the frontier, exponential waiting
	//     times); above the threshold (with hysteresis, so the choice
	//     doesn't flap day to day) it runs the active-set day stepper.
	//     Statistically equivalent to "dense", not byte-identical.
	Kernel string
	// KernelThreshold is the infectious-prevalence fraction below which
	// Kernel "event" uses the Gillespie path (default 0.01). The event
	// kernel re-engages only after prevalence falls below the threshold
	// and disengages once it exceeds 1.5× the threshold.
	KernelThreshold float64
}

// Kernel names accepted by Config.Kernel (the empty string means dense).
const (
	KernelDense = "dense"
	KernelAuto  = "auto"
	KernelEvent = "event"

	// kernelActive labels a day executed by the active-set stepper in
	// DayReport.Kernel; it is not a Config.Kernel value.
	kernelActive = "active"
)

// eventExitFactor is the hysteresis band of the event kernel: it
// disengages only above KernelThreshold×eventExitFactor.
const eventExitFactor = 1.5

// denseSwitchNum/denseSwitchDen bound the active stepper's overhead: when
// more than 1/4 of the population is infectious the frontier walk and
// active-set construction stop paying for themselves, so "auto" runs a
// plain dense day (byte-identical either way).
const (
	denseSwitchNum = 1
	denseSwitchDen = 4
)

// DayReport describes one simulated day.
type DayReport struct {
	Day           int
	Counts        map[string]int64
	NewInfections int64
	// Phase statistics from the runtime (person, location, update).
	PersonPhase   charm.PhaseStats
	LocationPhase charm.PhaseStats
	UpdatePhase   charm.PhaseStats
	// DES workload counters summed over locations (dynamic load inputs).
	Events       int64
	Interactions int64
	Trials       int64
	// Kernel names the kernel that executed this day ("dense", "active"
	// or "event"); empty when the engine runs with the default kernel, so
	// historical JSON output is byte-stable.
	Kernel string `json:"Kernel,omitempty"`
}

// Result is a completed simulation.
type Result struct {
	Days            []DayReport
	TotalInfections int64
	AttackRate      float64
	FinalCounts     map[string]int64
	// KernelDays counts simulated days per executing kernel; nil when the
	// engine ran with the default (unlabeled) dense kernel.
	KernelDays map[string]int64 `json:"KernelDays,omitempty"`
}

// EpiCurve returns the daily new-infection series.
func (r *Result) EpiCurve() []int64 {
	out := make([]int64, len(r.Days))
	for i, d := range r.Days {
		out[i] = d.NewInfections
	}
	return out
}

// personState is the PTTS bookkeeping for one person. Owned exclusively by
// the person's PersonManager.
type personState struct {
	State     disease.StateID
	Treatment disease.TreatmentID
	DaysLeft  int32 // full days remaining in State; <0 means absorbing
	Infected  bool  // ever infected (attack-rate numerator)
}

// Engine executes a configured simulation.
type Engine struct {
	cfg    Config
	pop    *synthpop.Population
	model  *disease.Model
	rt     *charm.Runtime
	pmArr  int32
	lmArr  int32
	health []personState
	// pmOf / lmOf map persons / locations to their managing chares.
	pmOf []int32
	lmOf []int32
	// fragments maps an original location id to all fragment location ids
	// of its family (only entries with >1 fragment; used for infectious
	// replication in mixing mode).
	fragments map[int32][]int32
	// infectionBuf[pm] accumulates infect messages received by PM chares.
	infectionBuf [][]infectMsg
	effects      *interventions.Effects
	// stateNames caches disease state names for reductions.
	stateNames []string
	cumulative int64
	// Per-location measured workload of the current day (only when
	// cfg.CollectLocationLoads). Each location is written by exactly one
	// LM, and LMs on a PE run serially, so no synchronization is needed.
	locEvents       []int64
	locInteractions []int64

	// Incremental health bookkeeping, one slab per PM so parallel update
	// phases mutate disjoint memory: per-state population counts plus the
	// two sparse sets the active and event kernels walk instead of the
	// whole population. The engine-wide position arrays are safe to share
	// because every person belongs to exactly one PM.
	pmHealth []pmHealth
	infPos   []int32 // person → index in its PM's infectious set (-1 = absent)
	progPos  []int32 // person → index in its PM's progressing set (-1 = absent)
	// stateInfectious caches state-level infectiousness per StateID.
	stateInfectious []bool

	// eventOn is the event kernel's hysteresis latch: true while the
	// Gillespie path is engaged.
	eventOn bool

	// Fork-point resumption (see checkpoint.go): a restored or prefixed
	// engine starts Run at startDay+1 and prepends the prefix's reports.
	// stepped guards RunPrefix/Restore against engines that already
	// simulated days through RunDay.
	startDay int
	prefix   []DayReport
	stepped  bool

	// Active-set scratch, allocated lazily on the first non-dense day.
	// visitsAtLoc is the inverted static schedule: visit indices into
	// pop.Visits grouped by location.
	visitsAtLoc   [][]int32
	activeLoc     []bool  // location → active this day (read-only during phases)
	activeLocList []int32 // the marked locations, for O(active) clearing
	activePersons [][]int32
	personMark    []bool
}

// pmHealth is one PersonManager's slab of incremental health bookkeeping.
type pmHealth struct {
	// counts[s] is the number of this PM's persons currently in state s.
	counts []int64
	// infectious holds persons whose *state* is infectious (effective
	// infectivity may still be zeroed by a treatment; callers re-check).
	infectious []int32
	// progressing holds persons with DaysLeft >= 0 — everyone whose
	// health state can still change without a new exposure.
	progressing []int32
}

// visitMsg is one visit message (paper Section II-B step 1): person,
// location, times, plus the sender's effective disease parameters.
type visitMsg struct {
	Person     int32
	Loc        int32
	Sub        int32
	OrigSub    int32 // pre-splitLoc sublocation id (mixing mode keys)
	Start, End int16
	Inf, Sus   float32
}

// WireSize matches a compact binary encoding of the fields.
func (visitMsg) WireSize() int { return 32 }

// infectMsg is one infect message (step 3).
type infectMsg struct {
	Person   int32
	Infector int32
	Minute   int16
}

// WireSize matches a compact binary encoding of the fields.
func (infectMsg) WireSize() int { return 16 }

// control messages broadcast by the driver.
type msgComputeVisits struct{ Day int }
type msgRunDES struct{ Day int }
type msgApplyUpdates struct{ Day int }

// Active-set control messages, sent point-to-point only to managers that
// own active work this day (see runDayActive).
type msgComputeVisitsActive struct{ Day int }
type msgRunDESActive struct{ Day int }
type msgApplyUpdatesActive struct{ Day int }

// New validates the configuration and builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("core: nil population")
	}
	if cfg.Disease == nil {
		cfg.Disease = disease.Default()
	}
	if err := cfg.Disease.Validate(); err != nil {
		return nil, fmt.Errorf("core: disease model: %w", err)
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	if cfg.ChareFactor <= 0 {
		cfg.ChareFactor = 1
	}
	if cfg.InitialInfections <= 0 {
		cfg.InitialInfections = max(1, cfg.Population.NumPersons()/2000)
	}
	switch cfg.Kernel {
	case "", KernelDense, KernelAuto, KernelEvent:
	default:
		return nil, fmt.Errorf("core: unknown kernel %q (want dense, auto or event)", cfg.Kernel)
	}
	if cfg.Kernel == KernelEvent && cfg.Mixing > 0 {
		return nil, fmt.Errorf("core: kernel %q does not support inter-sublocation mixing", KernelEvent)
	}
	if cfg.KernelThreshold < 0 || cfg.KernelThreshold > 1 {
		return nil, fmt.Errorf("core: kernel threshold %g outside [0,1]", cfg.KernelThreshold)
	}
	if cfg.KernelThreshold == 0 {
		cfg.KernelThreshold = 0.01
	}
	nP := cfg.Population.NumPersons()
	nL := cfg.Population.NumLocations()
	if cfg.PersonRank != nil && len(cfg.PersonRank) != nP {
		return nil, fmt.Errorf("core: PersonRank length %d, want %d", len(cfg.PersonRank), nP)
	}
	if cfg.LocationRank != nil && len(cfg.LocationRank) != nL {
		return nil, fmt.Errorf("core: LocationRank length %d, want %d", len(cfg.LocationRank), nL)
	}
	for _, r := range cfg.PersonRank {
		if r < 0 || int(r) >= cfg.Ranks {
			return nil, fmt.Errorf("core: person rank %d outside [0,%d)", r, cfg.Ranks)
		}
	}
	for _, r := range cfg.LocationRank {
		if r < 0 || int(r) >= cfg.Ranks {
			return nil, fmt.Errorf("core: location rank %d outside [0,%d)", r, cfg.Ranks)
		}
	}

	e := &Engine{cfg: cfg, pop: cfg.Population, model: cfg.Disease}
	e.rt = charm.New(charm.Config{
		PEs:           cfg.Ranks,
		Parallel:      cfg.Parallel,
		Topology:      cfg.Topology,
		AggBufferSize: cfg.AggBufferSize,
		Route2D:       cfg.Route2D,
		SyncMode:      cfg.SyncMode,
	})
	e.effects = interventions.NewEffects()
	e.stateNames = make([]string, e.model.NumStates())
	for i := range e.stateNames {
		e.stateNames[i] = e.model.StateName(disease.StateID(i))
	}

	// Health state initialization + index cases.
	e.health = make([]personState, nP)
	entry := e.model.Entry
	for p := range e.health {
		e.health[p] = personState{State: entry, DaysLeft: -1}
	}
	seeded := 0
	for p := 0; p < nP && cfg.InitialInfections > 0; p++ {
		if xrand.KeyedIntn(nP, cfg.Seed, 0x5eed, uint64(p)) < cfg.InitialInfections {
			e.infectPerson(int32(p), 0)
			seeded++
		}
	}
	if seeded == 0 { // guarantee at least one index case
		e.infectPerson(0, 0)
	}

	// Build the two-level chare hierarchy (Figure 1): PMs and LMs.
	numPM := cfg.Ranks * cfg.ChareFactor
	numLM := cfg.Ranks * cfg.ChareFactor
	rankOfPerson := func(p int32) int32 {
		if cfg.PersonRank != nil {
			return cfg.PersonRank[p]
		}
		return p % int32(cfg.Ranks)
	}
	rankOfLocation := func(l int32) int32 {
		if cfg.LocationRank != nil {
			return cfg.LocationRank[l]
		}
		return l % int32(cfg.Ranks)
	}
	// Manager of an object: its rank's managers, spread by object id.
	pmOf := make([]int32, nP)
	personsOfPM := make([][]int32, numPM)
	for p := int32(0); p < int32(nP); p++ {
		pm := rankOfPerson(p)*int32(cfg.ChareFactor) + (p/int32(cfg.Ranks))%int32(cfg.ChareFactor)
		pmOf[p] = pm
		personsOfPM[pm] = append(personsOfPM[pm], p)
	}
	lmOf := make([]int32, nL)
	locsOfLM := make([][]int32, numLM)
	for l := int32(0); l < int32(nL); l++ {
		lm := rankOfLocation(l)*int32(cfg.ChareFactor) + (l/int32(cfg.Ranks))%int32(cfg.ChareFactor)
		lmOf[l] = lm
		locsOfLM[lm] = append(locsOfLM[lm], l)
	}
	e.pmOf = pmOf
	e.lmOf = lmOf
	e.infectionBuf = make([][]infectMsg, numPM)

	// Fragment families for infectious replication in mixing mode.
	if cfg.Mixing > 0 {
		families := make(map[int32][]int32)
		for l := int32(0); l < int32(nL); l++ {
			origin := cfg.Population.Locations[l].Origin
			families[origin] = append(families[origin], l)
		}
		e.fragments = make(map[int32][]int32)
		for origin, ids := range families {
			if len(ids) > 1 {
				e.fragments[origin] = ids
			}
		}
	}

	if cfg.CollectLocationLoads {
		e.locEvents = make([]int64, nL)
		e.locInteractions = make([]int64, nL)
	}

	e.pmArr = e.rt.NewArray(numPM, func(i int32) charm.Chare {
		return &personManager{eng: e, id: i, persons: personsOfPM[i]}
	}, func(i int32) charm.PE { return i / int32(cfg.ChareFactor) })
	e.lmArr = e.rt.NewArray(numLM, func(i int32) charm.Chare {
		return &locationManager{eng: e, id: i, locs: locsOfLM[i],
			pending: make(map[int32][]des.Visitor)}
	}, func(i int32) charm.PE { return i / int32(cfg.ChareFactor) })

	// Incremental health bookkeeping: one scan after seeding (seeding
	// above runs before the PM assignment exists).
	e.stateInfectious = make([]bool, e.model.NumStates())
	for s := range e.stateInfectious {
		e.stateInfectious[s] = e.model.IsInfectious(disease.StateID(s))
	}
	e.pmHealth = make([]pmHealth, numPM)
	for pm := range e.pmHealth {
		e.pmHealth[pm].counts = make([]int64, e.model.NumStates())
	}
	e.infPos = make([]int32, nP)
	e.progPos = make([]int32, nP)
	for p := range e.infPos {
		e.infPos[p] = -1
		e.progPos[p] = -1
	}
	for p := int32(0); p < int32(nP); p++ {
		hs := &e.health[p]
		h := &e.pmHealth[pmOf[p]]
		h.counts[hs.State]++
		if e.stateInfectious[hs.State] {
			sparseAdd(&h.infectious, e.infPos, p)
		}
		if hs.DaysLeft >= 0 {
			sparseAdd(&h.progressing, e.progPos, p)
		}
	}
	// The event kernel starts engaged: seeding regimes are sparse by
	// construction, and the hysteresis latch takes over from day 1.
	e.eventOn = cfg.Kernel == KernelEvent
	return e, nil
}

// sparseAdd inserts p into a swap-removable sparse set (no-op when
// already present).
func sparseAdd(items *[]int32, pos []int32, p int32) {
	if pos[p] >= 0 {
		return
	}
	pos[p] = int32(len(*items))
	*items = append(*items, p)
}

// sparseRemove deletes p by swapping the last element into its slot
// (no-op when absent).
func sparseRemove(items *[]int32, pos []int32, p int32) {
	i := pos[p]
	if i < 0 {
		return
	}
	last := int32(len(*items) - 1)
	q := (*items)[last]
	(*items)[i] = q
	pos[q] = i
	*items = (*items)[:last]
	pos[p] = -1
}

// LocationLoads returns the previous day's per-location measured workload
// (events, interactions). Only valid with Config.CollectLocationLoads; the
// slices are reused across days — copy to retain.
func (e *Engine) LocationLoads() (events, interactions []int64) {
	return e.locEvents, e.locInteractions
}

// LocationRanks returns the current location→rank assignment (a copy).
func (e *Engine) LocationRanks() []int32 {
	out := make([]int32, e.pop.NumLocations())
	for l := range out {
		out[l] = e.rt.PlacementOf(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[l]})
	}
	return out
}

// MigrateLocations re-assigns locations to ranks between days: the
// migration step of measurement-based dynamic load balancing (Section VII
// future work). LMs hold no cross-day state, so migration is a pure
// remapping; by partition invariance it cannot change the epidemic, only
// the load distribution. It returns the number of migrated locations.
func (e *Engine) MigrateLocations(newRank []int32) (int, error) {
	nL := e.pop.NumLocations()
	if len(newRank) != nL {
		return 0, fmt.Errorf("core: MigrateLocations got %d ranks, want %d", len(newRank), nL)
	}
	for _, r := range newRank {
		if r < 0 || int(r) >= e.cfg.Ranks {
			return 0, fmt.Errorf("core: migration rank %d outside [0,%d)", r, e.cfg.Ranks)
		}
	}
	// Rebuild manager membership exactly as New does.
	numLM := e.cfg.Ranks * e.cfg.ChareFactor
	locsOfLM := make([][]int32, numLM)
	migrated := 0
	for l := int32(0); l < int32(nL); l++ {
		lm := newRank[l]*int32(e.cfg.ChareFactor) + (l/int32(e.cfg.Ranks))%int32(e.cfg.ChareFactor)
		if lm != e.lmOf[l] {
			migrated++
		}
		e.lmOf[l] = lm
		locsOfLM[lm] = append(locsOfLM[lm], l)
	}
	for i := 0; i < numLM; i++ {
		lm := e.rt.Chare(charm.ChareRef{Array: e.lmArr, Index: int32(i)}).(*locationManager)
		lm.locs = locsOfLM[i]
	}
	return migrated, nil
}

func (e *Engine) infectPerson(p int32, day int) {
	e.health[p].State = e.model.InfectTarget
	e.health[p].DaysLeft = int32(e.model.SampleDwell(e.model.InfectTarget, uint64(p), uint64(day)))
	e.health[p].Infected = true
	e.cumulative++
}

// transitionPerson moves p to state s with the given dwell, keeping the
// per-PM incremental counters and sparse sets coherent. Every post-New
// state mutation must go through here (or applyInfection), on every
// kernel — the dense path maintains the same bookkeeping so kernels can
// alternate day by day without a rescan.
func (e *Engine) transitionPerson(p int32, s disease.StateID, daysLeft int32) {
	hs := &e.health[p]
	h := &e.pmHealth[e.pmOf[p]]
	old := hs.State
	if old != s {
		h.counts[old]--
		h.counts[s]++
		if e.stateInfectious[old] != e.stateInfectious[s] {
			if e.stateInfectious[s] {
				sparseAdd(&h.infectious, e.infPos, p)
			} else {
				sparseRemove(&h.infectious, e.infPos, p)
			}
		}
	}
	hs.State = s
	hs.DaysLeft = daysLeft
	if daysLeft >= 0 {
		sparseAdd(&h.progressing, e.progPos, p)
	} else {
		sparseRemove(&h.progressing, e.progPos, p)
	}
}

// applyInfection resolves a successful exposure of p on day: the same
// transition applyUpdates has always performed, routed through the
// incremental bookkeeping.
func (e *Engine) applyInfection(p int32, day int) {
	e.transitionPerson(p, e.model.InfectTarget,
		int32(e.model.SampleDwell(e.model.InfectTarget, uint64(p), uint64(day))))
	e.health[p].Infected = true
}

// progressPerson advances p's dwell clock and PTTS transition for one
// day — the shared phase-3 progression step of every kernel.
func (e *Engine) progressPerson(p int32, day int) {
	hs := &e.health[p]
	if hs.DaysLeft > 0 {
		hs.DaysLeft--
	}
	if hs.DaysLeft == 0 {
		next, ok := e.model.NextState(hs.State, hs.Treatment, uint64(p), uint64(day))
		if ok {
			d := e.model.SampleDwell(next, uint64(p), uint64(day))
			nd := int32(d)
			if d > 1<<30 {
				nd = -1 // absorbing
			}
			e.transitionPerson(p, next, nd)
		} else {
			e.transitionPerson(p, hs.State, -1)
		}
	}
}

// RunDay executes a single simulated day (day numbers start at 1) and
// returns its report. It powers step-wise drivers such as dynamic load
// balancing loops; most callers use Run.
func (e *Engine) RunDay(day int) DayReport { return e.runDay(day) }

// Run executes the configured number of days. On an engine positioned at
// a checkpoint boundary (Restore or RunPrefix), it executes only the
// remaining days and prepends the prefix's reports, so the Result is the
// same either way.
func (e *Engine) Run() (*Result, error) {
	res := &Result{}
	if len(e.prefix) > 0 {
		res.Days = append(res.Days, e.prefix...)
	}
	for day := e.startDay + 1; day <= e.cfg.Days; day++ {
		res.Days = append(res.Days, e.runDay(day))
	}
	for _, rep := range res.Days {
		if rep.Kernel != "" {
			if res.KernelDays == nil {
				res.KernelDays = make(map[string]int64)
			}
			res.KernelDays[rep.Kernel]++
		}
	}
	res.TotalInfections = e.cumulative
	if n := e.pop.NumPersons(); n > 0 {
		res.AttackRate = float64(e.cumulative) / float64(n)
	}
	if len(res.Days) > 0 {
		res.FinalCounts = res.Days[len(res.Days)-1].Counts
	}
	return res, nil
}

// runDay dispatches one simulated day to the configured kernel.
func (e *Engine) runDay(day int) DayReport {
	e.stepped = true
	switch e.cfg.Kernel {
	case KernelAuto:
		return e.runDayAuto(day)
	case KernelEvent:
		prevalence := float64(e.infectiousCount()) / float64(max(1, e.pop.NumPersons()))
		if e.eventOn {
			if prevalence > eventExitFactor*e.cfg.KernelThreshold {
				e.eventOn = false
			}
		} else if prevalence < e.cfg.KernelThreshold {
			e.eventOn = true
		}
		if e.eventOn {
			return e.runDayEvent(day)
		}
		return e.runDayAuto(day)
	case KernelDense:
		return e.runDayDense(day, KernelDense)
	default:
		return e.runDayDense(day, "")
	}
}

// runDayAuto runs the active-set stepper, falling back to a plain dense
// day (byte-identical by construction) once the frontier is so large
// that active-set construction stops paying for itself.
func (e *Engine) runDayAuto(day int) DayReport {
	if e.infectiousCount()*denseSwitchDen > int64(e.pop.NumPersons())*denseSwitchNum {
		return e.runDayDense(day, KernelDense)
	}
	return e.runDayActive(day)
}

// infectiousCount is the number of persons in a state-level infectious
// state (the prevalence measure of kernel switching).
func (e *Engine) infectiousCount() int64 {
	var n int64
	for pm := range e.pmHealth {
		n += int64(len(e.pmHealth[pm].infectious))
	}
	return n
}

// stepScenario triggers interventions on the state of the world this
// morning (shared preamble of every kernel).
func (e *Engine) stepScenario(day int) {
	if e.cfg.Scenario == nil {
		return
	}
	env := interventions.Env{
		Day:                day,
		Population:         e.pop.NumPersons(),
		Counts:             e.countStates(),
		CumulativeInfected: int(e.cumulative),
	}
	e.cfg.Scenario.Step(env, e.effects)
}

func (e *Engine) runDayDense(day int, kernel string) DayReport {
	rep := DayReport{Day: day, Kernel: kernel}

	// Interventions trigger on the state of the world this morning.
	e.stepScenario(day)

	// Phase 1: person phase.
	e.rt.Broadcast(e.pmArr, msgComputeVisits{Day: day})
	rep.PersonPhase = e.rt.Drain()

	// Phase 2: location phase.
	if e.locEvents != nil {
		for i := range e.locEvents {
			e.locEvents[i] = 0
			e.locInteractions[i] = 0
		}
	}
	e.rt.Broadcast(e.lmArr, msgRunDES{Day: day})
	rep.LocationPhase = e.rt.Drain()
	rep.Events = rep.LocationPhase.Reductions["events"]
	rep.Interactions = rep.LocationPhase.Reductions["interactions"]
	rep.Trials = rep.LocationPhase.Reductions["trials"]

	// Phase 3: apply updates + global reduction.
	e.rt.Broadcast(e.pmArr, msgApplyUpdates{Day: day})
	rep.UpdatePhase = e.rt.Drain()
	rep.NewInfections = rep.UpdatePhase.Reductions["newinfections"]
	e.cumulative += rep.NewInfections
	rep.Counts = make(map[string]int64, len(e.stateNames))
	for _, name := range e.stateNames {
		rep.Counts[name] = rep.UpdatePhase.Reductions["state:"+name]
	}

	e.effects.Tick()
	return rep
}

// countStates sums the per-PM incremental counters — O(managers ×
// states) instead of the full-population rescan it replaced. Only
// occupied states appear in the map, matching the historical rescan.
func (e *Engine) countStates() map[string]int {
	counts := make(map[string]int, len(e.stateNames))
	for s, name := range e.stateNames {
		var n int64
		for pm := range e.pmHealth {
			n += e.pmHealth[pm].counts[s]
		}
		if n != 0 {
			counts[name] = int(n)
		}
	}
	return counts
}

// stateCounts64 builds the DayReport.Counts map from the incremental
// counters, with an entry for every state (zeros included) exactly as
// the dense path's reduction-derived map has.
func (e *Engine) stateCounts64() map[string]int64 {
	counts := make(map[string]int64, len(e.stateNames))
	for s, name := range e.stateNames {
		var n int64
		for pm := range e.pmHealth {
			n += e.pmHealth[pm].counts[s]
		}
		counts[name] = n
	}
	return counts
}
