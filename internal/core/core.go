// Package core is the EpiSimdemics engine: the agent-based contagion
// simulation of Section II, executed on the charm runtime. Each simulated
// day runs the paper's algorithm:
//
//  1. PersonManager chares update their persons and send visit messages to
//     LocationManager chares (aggregated, Section IV-C);
//  2. completion detection synchronization;
//  3. LocationManagers replay visits as a sequential DES per location,
//     computing transmissions and sending infect messages back;
//  4. completion detection synchronization;
//  5. PersonManagers apply infections and health-state progressions;
//  6. global state (counts per health state) is reduced.
//
// All stochastic draws are keyed by content (person ids, days, original
// location ids), so the epidemic trajectory is bit-identical across any
// data distribution (RR, GP, with or without splitLoc), any rank count,
// and sequential vs parallel execution — the repository's main
// correctness oracle.
package core

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/des"
	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// Config configures a simulation.
type Config struct {
	Population *synthpop.Population
	Disease    *disease.Model
	// Scenario optionally applies interventions (may be nil).
	Scenario *interventions.Scenario
	Days     int
	Seed     uint64
	// InitialInfections seeds approximately this many index cases on day 0.
	InitialInfections int

	// Ranks is the number of logical PEs (core-modules).
	Ranks int
	// Parallel selects goroutine-per-PE execution instead of the
	// deterministic sequential scheduler.
	Parallel bool
	// Topology is the SMP geometry (zero value = one process/node).
	Topology charm.Topology
	// AggBufferSize enables message aggregation when > 0.
	AggBufferSize int
	// Route2D enables TRAM-style topological routing of aggregated
	// messages (charm.Config.Route2D).
	Route2D  bool
	SyncMode charm.SyncMode
	// ChareFactor over-decomposes: managers per rank per array. Default 1.
	ChareFactor int
	// PersonRank and LocationRank assign each person/location to a rank;
	// nil means round-robin (the paper's RR baseline).
	PersonRank   []int32
	LocationRank []int32
	// Mixing enables the inter-sublocation mixing model (the paper's
	// future work, Section III-C): people in different sublocations of the
	// same location interact with transmission scaled by this factor.
	// When the population was split, infectious visitors are replicated to
	// every fragment of their location ("dividing the susceptibles while
	// replicating the infectious", Figure 6(b)) so that outcomes stay
	// identical to the unsplit population.
	Mixing float64
	// CollectLocationLoads records per-location daily workload counters
	// (events and interactions), the measurement input of dynamic load
	// balancing (Section VII future work). Costs two int64 slices.
	CollectLocationLoads bool
}

// DayReport describes one simulated day.
type DayReport struct {
	Day           int
	Counts        map[string]int64
	NewInfections int64
	// Phase statistics from the runtime (person, location, update).
	PersonPhase   charm.PhaseStats
	LocationPhase charm.PhaseStats
	UpdatePhase   charm.PhaseStats
	// DES workload counters summed over locations (dynamic load inputs).
	Events       int64
	Interactions int64
	Trials       int64
}

// Result is a completed simulation.
type Result struct {
	Days            []DayReport
	TotalInfections int64
	AttackRate      float64
	FinalCounts     map[string]int64
}

// EpiCurve returns the daily new-infection series.
func (r *Result) EpiCurve() []int64 {
	out := make([]int64, len(r.Days))
	for i, d := range r.Days {
		out[i] = d.NewInfections
	}
	return out
}

// personState is the PTTS bookkeeping for one person. Owned exclusively by
// the person's PersonManager.
type personState struct {
	State     disease.StateID
	Treatment disease.TreatmentID
	DaysLeft  int32 // full days remaining in State; <0 means absorbing
	Infected  bool  // ever infected (attack-rate numerator)
}

// Engine executes a configured simulation.
type Engine struct {
	cfg    Config
	pop    *synthpop.Population
	model  *disease.Model
	rt     *charm.Runtime
	pmArr  int32
	lmArr  int32
	health []personState
	// pmOf / lmOf map persons / locations to their managing chares.
	pmOf []int32
	lmOf []int32
	// fragments maps an original location id to all fragment location ids
	// of its family (only entries with >1 fragment; used for infectious
	// replication in mixing mode).
	fragments map[int32][]int32
	// infectionBuf[pm] accumulates infect messages received by PM chares.
	infectionBuf [][]infectMsg
	effects      *interventions.Effects
	// stateNames caches disease state names for reductions.
	stateNames []string
	cumulative int64
	// Per-location measured workload of the current day (only when
	// cfg.CollectLocationLoads). Each location is written by exactly one
	// LM, and LMs on a PE run serially, so no synchronization is needed.
	locEvents       []int64
	locInteractions []int64
}

// visitMsg is one visit message (paper Section II-B step 1): person,
// location, times, plus the sender's effective disease parameters.
type visitMsg struct {
	Person     int32
	Loc        int32
	Sub        int32
	OrigSub    int32 // pre-splitLoc sublocation id (mixing mode keys)
	Start, End int16
	Inf, Sus   float32
}

// WireSize matches a compact binary encoding of the fields.
func (visitMsg) WireSize() int { return 32 }

// infectMsg is one infect message (step 3).
type infectMsg struct {
	Person   int32
	Infector int32
	Minute   int16
}

// WireSize matches a compact binary encoding of the fields.
func (infectMsg) WireSize() int { return 16 }

// control messages broadcast by the driver.
type msgComputeVisits struct{ Day int }
type msgRunDES struct{ Day int }
type msgApplyUpdates struct{ Day int }

// New validates the configuration and builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("core: nil population")
	}
	if cfg.Disease == nil {
		cfg.Disease = disease.Default()
	}
	if err := cfg.Disease.Validate(); err != nil {
		return nil, fmt.Errorf("core: disease model: %w", err)
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	if cfg.ChareFactor <= 0 {
		cfg.ChareFactor = 1
	}
	if cfg.InitialInfections <= 0 {
		cfg.InitialInfections = max(1, cfg.Population.NumPersons()/2000)
	}
	nP := cfg.Population.NumPersons()
	nL := cfg.Population.NumLocations()
	if cfg.PersonRank != nil && len(cfg.PersonRank) != nP {
		return nil, fmt.Errorf("core: PersonRank length %d, want %d", len(cfg.PersonRank), nP)
	}
	if cfg.LocationRank != nil && len(cfg.LocationRank) != nL {
		return nil, fmt.Errorf("core: LocationRank length %d, want %d", len(cfg.LocationRank), nL)
	}
	for _, r := range cfg.PersonRank {
		if r < 0 || int(r) >= cfg.Ranks {
			return nil, fmt.Errorf("core: person rank %d outside [0,%d)", r, cfg.Ranks)
		}
	}
	for _, r := range cfg.LocationRank {
		if r < 0 || int(r) >= cfg.Ranks {
			return nil, fmt.Errorf("core: location rank %d outside [0,%d)", r, cfg.Ranks)
		}
	}

	e := &Engine{cfg: cfg, pop: cfg.Population, model: cfg.Disease}
	e.rt = charm.New(charm.Config{
		PEs:           cfg.Ranks,
		Parallel:      cfg.Parallel,
		Topology:      cfg.Topology,
		AggBufferSize: cfg.AggBufferSize,
		Route2D:       cfg.Route2D,
		SyncMode:      cfg.SyncMode,
	})
	e.effects = interventions.NewEffects()
	e.stateNames = make([]string, e.model.NumStates())
	for i := range e.stateNames {
		e.stateNames[i] = e.model.StateName(disease.StateID(i))
	}

	// Health state initialization + index cases.
	e.health = make([]personState, nP)
	entry := e.model.Entry
	for p := range e.health {
		e.health[p] = personState{State: entry, DaysLeft: -1}
	}
	seeded := 0
	for p := 0; p < nP && cfg.InitialInfections > 0; p++ {
		if xrand.KeyedIntn(nP, cfg.Seed, 0x5eed, uint64(p)) < cfg.InitialInfections {
			e.infectPerson(int32(p), 0)
			seeded++
		}
	}
	if seeded == 0 { // guarantee at least one index case
		e.infectPerson(0, 0)
	}

	// Build the two-level chare hierarchy (Figure 1): PMs and LMs.
	numPM := cfg.Ranks * cfg.ChareFactor
	numLM := cfg.Ranks * cfg.ChareFactor
	rankOfPerson := func(p int32) int32 {
		if cfg.PersonRank != nil {
			return cfg.PersonRank[p]
		}
		return p % int32(cfg.Ranks)
	}
	rankOfLocation := func(l int32) int32 {
		if cfg.LocationRank != nil {
			return cfg.LocationRank[l]
		}
		return l % int32(cfg.Ranks)
	}
	// Manager of an object: its rank's managers, spread by object id.
	pmOf := make([]int32, nP)
	personsOfPM := make([][]int32, numPM)
	for p := int32(0); p < int32(nP); p++ {
		pm := rankOfPerson(p)*int32(cfg.ChareFactor) + (p/int32(cfg.Ranks))%int32(cfg.ChareFactor)
		pmOf[p] = pm
		personsOfPM[pm] = append(personsOfPM[pm], p)
	}
	lmOf := make([]int32, nL)
	locsOfLM := make([][]int32, numLM)
	for l := int32(0); l < int32(nL); l++ {
		lm := rankOfLocation(l)*int32(cfg.ChareFactor) + (l/int32(cfg.Ranks))%int32(cfg.ChareFactor)
		lmOf[l] = lm
		locsOfLM[lm] = append(locsOfLM[lm], l)
	}
	e.pmOf = pmOf
	e.lmOf = lmOf
	e.infectionBuf = make([][]infectMsg, numPM)

	// Fragment families for infectious replication in mixing mode.
	if cfg.Mixing > 0 {
		families := make(map[int32][]int32)
		for l := int32(0); l < int32(nL); l++ {
			origin := cfg.Population.Locations[l].Origin
			families[origin] = append(families[origin], l)
		}
		e.fragments = make(map[int32][]int32)
		for origin, ids := range families {
			if len(ids) > 1 {
				e.fragments[origin] = ids
			}
		}
	}

	if cfg.CollectLocationLoads {
		e.locEvents = make([]int64, nL)
		e.locInteractions = make([]int64, nL)
	}

	e.pmArr = e.rt.NewArray(numPM, func(i int32) charm.Chare {
		return &personManager{eng: e, id: i, persons: personsOfPM[i]}
	}, func(i int32) charm.PE { return i / int32(cfg.ChareFactor) })
	e.lmArr = e.rt.NewArray(numLM, func(i int32) charm.Chare {
		return &locationManager{eng: e, id: i, locs: locsOfLM[i],
			pending: make(map[int32][]des.Visitor)}
	}, func(i int32) charm.PE { return i / int32(cfg.ChareFactor) })
	return e, nil
}

// LocationLoads returns the previous day's per-location measured workload
// (events, interactions). Only valid with Config.CollectLocationLoads; the
// slices are reused across days — copy to retain.
func (e *Engine) LocationLoads() (events, interactions []int64) {
	return e.locEvents, e.locInteractions
}

// LocationRanks returns the current location→rank assignment (a copy).
func (e *Engine) LocationRanks() []int32 {
	out := make([]int32, e.pop.NumLocations())
	for l := range out {
		out[l] = e.rt.PlacementOf(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[l]})
	}
	return out
}

// MigrateLocations re-assigns locations to ranks between days: the
// migration step of measurement-based dynamic load balancing (Section VII
// future work). LMs hold no cross-day state, so migration is a pure
// remapping; by partition invariance it cannot change the epidemic, only
// the load distribution. It returns the number of migrated locations.
func (e *Engine) MigrateLocations(newRank []int32) (int, error) {
	nL := e.pop.NumLocations()
	if len(newRank) != nL {
		return 0, fmt.Errorf("core: MigrateLocations got %d ranks, want %d", len(newRank), nL)
	}
	for _, r := range newRank {
		if r < 0 || int(r) >= e.cfg.Ranks {
			return 0, fmt.Errorf("core: migration rank %d outside [0,%d)", r, e.cfg.Ranks)
		}
	}
	// Rebuild manager membership exactly as New does.
	numLM := e.cfg.Ranks * e.cfg.ChareFactor
	locsOfLM := make([][]int32, numLM)
	migrated := 0
	for l := int32(0); l < int32(nL); l++ {
		lm := newRank[l]*int32(e.cfg.ChareFactor) + (l/int32(e.cfg.Ranks))%int32(e.cfg.ChareFactor)
		if lm != e.lmOf[l] {
			migrated++
		}
		e.lmOf[l] = lm
		locsOfLM[lm] = append(locsOfLM[lm], l)
	}
	for i := 0; i < numLM; i++ {
		lm := e.rt.Chare(charm.ChareRef{Array: e.lmArr, Index: int32(i)}).(*locationManager)
		lm.locs = locsOfLM[i]
	}
	return migrated, nil
}

func (e *Engine) infectPerson(p int32, day int) {
	e.health[p].State = e.model.InfectTarget
	e.health[p].DaysLeft = int32(e.model.SampleDwell(e.model.InfectTarget, uint64(p), uint64(day)))
	e.health[p].Infected = true
	e.cumulative++
}

// RunDay executes a single simulated day (day numbers start at 1) and
// returns its report. It powers step-wise drivers such as dynamic load
// balancing loops; most callers use Run.
func (e *Engine) RunDay(day int) DayReport { return e.runDay(day) }

// Run executes the configured number of days.
func (e *Engine) Run() (*Result, error) {
	res := &Result{}
	for day := 1; day <= e.cfg.Days; day++ {
		rep := e.runDay(day)
		res.Days = append(res.Days, rep)
	}
	res.TotalInfections = e.cumulative
	if n := e.pop.NumPersons(); n > 0 {
		res.AttackRate = float64(e.cumulative) / float64(n)
	}
	if len(res.Days) > 0 {
		res.FinalCounts = res.Days[len(res.Days)-1].Counts
	}
	return res, nil
}

func (e *Engine) runDay(day int) DayReport {
	rep := DayReport{Day: day}

	// Interventions trigger on the state of the world this morning.
	if e.cfg.Scenario != nil {
		counts := e.countStates()
		env := interventions.Env{
			Day:                day,
			Population:         e.pop.NumPersons(),
			Counts:             counts,
			CumulativeInfected: int(e.cumulative),
		}
		e.cfg.Scenario.Step(env, e.effects)
	}

	// Phase 1: person phase.
	e.rt.Broadcast(e.pmArr, msgComputeVisits{Day: day})
	rep.PersonPhase = e.rt.Drain()

	// Phase 2: location phase.
	if e.locEvents != nil {
		for i := range e.locEvents {
			e.locEvents[i] = 0
			e.locInteractions[i] = 0
		}
	}
	e.rt.Broadcast(e.lmArr, msgRunDES{Day: day})
	rep.LocationPhase = e.rt.Drain()
	rep.Events = rep.LocationPhase.Reductions["events"]
	rep.Interactions = rep.LocationPhase.Reductions["interactions"]
	rep.Trials = rep.LocationPhase.Reductions["trials"]

	// Phase 3: apply updates + global reduction.
	e.rt.Broadcast(e.pmArr, msgApplyUpdates{Day: day})
	rep.UpdatePhase = e.rt.Drain()
	rep.NewInfections = rep.UpdatePhase.Reductions["newinfections"]
	e.cumulative += rep.NewInfections
	rep.Counts = make(map[string]int64, len(e.stateNames))
	for _, name := range e.stateNames {
		rep.Counts[name] = rep.UpdatePhase.Reductions["state:"+name]
	}

	e.effects.Tick()
	return rep
}

func (e *Engine) countStates() map[string]int {
	counts := make(map[string]int, len(e.stateNames))
	for p := range e.health {
		counts[e.stateNames[e.health[p].State]]++
	}
	return counts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
