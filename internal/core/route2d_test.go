package core

import "testing"

// TestRoute2DInvarianceAndWireReduction: TRAM-style routing must not
// change the epidemic and should reduce wire messages at rank counts where
// per-destination buffers underfill.
func TestRoute2DInvarianceAndWireReduction(t *testing.T) {
	pop := testPop(t)
	// 144 ranks over ~22K visits/day: ≈1.5 messages per rank pair, so
	// direct per-destination buffers underfill badly — the regime TRAM
	// routing is for.
	mk := func(route bool) Config {
		return Config{Population: pop, Disease: hotModel(),
			Days: 10, Seed: 59, InitialInfections: 5,
			Ranks: 144, AggBufferSize: 16, Route2D: route}
	}
	direct := run(t, mk(false))
	routed := run(t, mk(true))
	if !sameSignature(epiSignature(direct), epiSignature(routed)) {
		t.Fatal("2D routing changed the epidemic")
	}
	var wireDirect, wireRouted int64
	for d := range direct.Days {
		wireDirect += direct.Days[d].PersonPhase.WireMessages
		wireRouted += routed.Days[d].PersonPhase.WireMessages
	}
	if wireRouted >= wireDirect {
		t.Fatalf("routing did not reduce person-phase wire messages: %d vs %d",
			wireRouted, wireDirect)
	}
}
