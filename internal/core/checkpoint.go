// Fork-point checkpointing: a Checkpoint captures the engine's complete
// cross-day epidemic state at a day boundary, and Restore loads it into
// a freshly built engine so the remaining days replay exactly as if the
// run had never stopped.
//
// Why this is exact and not approximate: every stochastic draw in the
// engine is a stateless keyed hash (person id, day, location, seed) —
// there are no RNG stream positions to capture — and every day ends with
// the per-day buffers drained (infect messages applied, DES queues
// empty, effects ticked). The complete cross-day state is therefore the
// per-person health records, the cumulative-infection counter, the
// intervention effects and rule latches, the event kernel's hysteresis
// latch, and the per-PM sparse sets. The sparse sets are serialized in
// their exact insertion order, not canonicalized: the event kernel
// accumulates floating-point hazards by walking them, so byte-identical
// resumption requires the walk order to survive the round trip.
package core

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/disease"
	"repro/internal/interventions"
)

// Checkpoint is the engine's complete epidemic state at the end of day
// Day (Day 0 = before the first simulated day). It also carries the
// prefix's DayReports so a resumed Run returns the same full Result a
// from-scratch run would.
type Checkpoint struct {
	// Day is the number of completed days.
	Day int
	// Cumulative is the ever-infected count (attack-rate numerator).
	Cumulative int64
	// EventOn is the event kernel's hysteresis latch.
	EventOn bool

	// Parallel per-person health state (each slice has one entry per
	// person).
	States     []int32
	Treatments []int32
	DaysLeft   []int32
	Infected   []bool

	// Infectious and Progressing are each PM's sparse sets, order
	// verbatim (the event kernel's hazard accumulation walks them).
	Infectious  [][]int32
	Progressing [][]int32

	// RuleFired holds the scenario's one-shot rule latches in rule order
	// (empty for a nil scenario). On restore the flags land on the FIRST
	// len(RuleFired) rules, so a branch scenario that appends rules to
	// the checkpointed base starts with its extra rules unfired.
	RuleFired []bool
	// Effects is a deep copy of the active intervention effects.
	Effects *interventions.Effects

	// Days are the prefix's day reports, so Result.Days of a resumed run
	// is byte-identical to a from-scratch run's.
	Days []DayReport
}

// RunPrefix executes days 1..days on a freshly built engine and returns
// the checkpoint at that day boundary. days may be 0 (checkpoint the
// initial state — a fork at day zero) up to cfg.Days. The engine is left
// positioned at the boundary; calling Run afterwards finishes the
// remaining days (returning the full-run Result), which is exactly the
// from-scratch trajectory.
func (e *Engine) RunPrefix(days int) (*Checkpoint, error) {
	if e.stepped || e.startDay != 0 {
		return nil, fmt.Errorf("core: RunPrefix needs a fresh engine")
	}
	if days < 0 || days > e.cfg.Days {
		return nil, fmt.Errorf("core: prefix of %d days outside [0,%d]", days, e.cfg.Days)
	}
	reports := make([]DayReport, 0, days)
	for day := 1; day <= days; day++ {
		reports = append(reports, e.runDay(day))
	}
	cp := e.snapshot(days, reports)
	// Position the engine at the boundary so a subsequent Run resumes
	// instead of restarting at day 1.
	e.startDay = days
	e.prefix = copyDayReports(reports)
	return cp, nil
}

// Restore loads a checkpoint into a freshly built engine (same
// population, model, ranks and kernel as the engine that produced it; the
// scenario may extend the checkpointed one with additional rules). The
// next Run executes days cp.Day+1..cfg.Days and returns a Result whose
// bytes match an uninterrupted run's.
func (e *Engine) Restore(cp *Checkpoint) error {
	if e.stepped || e.startDay != 0 {
		return fmt.Errorf("core: Restore needs a fresh engine")
	}
	nP := e.pop.NumPersons()
	numPM := len(e.pmHealth)
	if cp.Day < 0 || cp.Day > e.cfg.Days {
		return fmt.Errorf("core: checkpoint day %d outside [0,%d]", cp.Day, e.cfg.Days)
	}
	if len(cp.States) != nP || len(cp.Treatments) != nP || len(cp.DaysLeft) != nP || len(cp.Infected) != nP {
		return fmt.Errorf("core: checkpoint for %d persons, engine has %d", len(cp.States), nP)
	}
	if len(cp.Infectious) != numPM || len(cp.Progressing) != numPM {
		return fmt.Errorf("core: checkpoint for %d managers, engine has %d", len(cp.Infectious), numPM)
	}
	if len(cp.Days) != cp.Day {
		return fmt.Errorf("core: checkpoint carries %d day reports for day %d", len(cp.Days), cp.Day)
	}
	nStates, nTreat := e.model.NumStates(), len(e.model.Treatments)
	for p := 0; p < nP; p++ {
		if s := cp.States[p]; s < 0 || int(s) >= nStates {
			return fmt.Errorf("core: checkpoint person %d in unknown state %d", p, s)
		}
		if t := cp.Treatments[p]; t < 0 || int(t) >= nTreat {
			return fmt.Errorf("core: checkpoint person %d under unknown treatment %d", p, t)
		}
	}
	var scenarioRules int
	if e.cfg.Scenario != nil {
		scenarioRules = len(e.cfg.Scenario.Rules)
	}
	if len(cp.RuleFired) > scenarioRules {
		return fmt.Errorf("core: checkpoint has %d rule latches, scenario has %d rules",
			len(cp.RuleFired), scenarioRules)
	}
	if cp.Effects == nil {
		return fmt.Errorf("core: checkpoint has nil effects")
	}

	// Person state, wholesale (overwriting New's seeding).
	for p := 0; p < nP; p++ {
		e.health[p] = personState{
			State:     disease.StateID(cp.States[p]),
			Treatment: disease.TreatmentID(cp.Treatments[p]),
			DaysLeft:  cp.DaysLeft[p],
			Infected:  cp.Infected[p],
		}
	}
	e.cumulative = cp.Cumulative
	e.eventOn = cp.EventOn

	// Rebuild the per-PM slabs: counts by scan, sparse sets verbatim from
	// the checkpoint (order matters), position indexes from the sets.
	for p := range e.infPos {
		e.infPos[p] = -1
		e.progPos[p] = -1
	}
	for pm := range e.pmHealth {
		h := &e.pmHealth[pm]
		for s := range h.counts {
			h.counts[s] = 0
		}
		h.infectious = append(h.infectious[:0], cp.Infectious[pm]...)
		h.progressing = append(h.progressing[:0], cp.Progressing[pm]...)
		for i, p := range h.infectious {
			if p < 0 || int(p) >= nP || e.pmOf[p] != int32(pm) || e.infPos[p] >= 0 {
				return fmt.Errorf("core: checkpoint infectious set of manager %d corrupt at %d", pm, i)
			}
			e.infPos[p] = int32(i)
		}
		for i, p := range h.progressing {
			if p < 0 || int(p) >= nP || e.pmOf[p] != int32(pm) || e.progPos[p] >= 0 {
				return fmt.Errorf("core: checkpoint progressing set of manager %d corrupt at %d", pm, i)
			}
			e.progPos[p] = int32(i)
		}
	}
	for p := int32(0); p < int32(nP); p++ {
		e.pmHealth[e.pmOf[p]].counts[e.health[p].State]++
	}

	// Intervention state: deep-copied effects, base rules' fired latches.
	e.effects = copyEffects(cp.Effects)
	if e.cfg.Scenario != nil {
		if err := e.cfg.Scenario.SetFiredFlags(cp.RuleFired); err != nil {
			return err
		}
	}

	e.startDay = cp.Day
	e.prefix = copyDayReports(cp.Days)
	return nil
}

// snapshot deep-copies the engine's cross-day state at the end of day.
func (e *Engine) snapshot(day int, reports []DayReport) *Checkpoint {
	nP := e.pop.NumPersons()
	cp := &Checkpoint{
		Day:         day,
		Cumulative:  e.cumulative,
		EventOn:     e.eventOn,
		States:      make([]int32, nP),
		Treatments:  make([]int32, nP),
		DaysLeft:    make([]int32, nP),
		Infected:    make([]bool, nP),
		Infectious:  make([][]int32, len(e.pmHealth)),
		Progressing: make([][]int32, len(e.pmHealth)),
		Effects:     copyEffects(e.effects),
		Days:        copyDayReports(reports),
	}
	for p := 0; p < nP; p++ {
		hs := &e.health[p]
		cp.States[p] = int32(hs.State)
		cp.Treatments[p] = int32(hs.Treatment)
		cp.DaysLeft[p] = hs.DaysLeft
		cp.Infected[p] = hs.Infected
	}
	for pm := range e.pmHealth {
		cp.Infectious[pm] = append([]int32(nil), e.pmHealth[pm].infectious...)
		cp.Progressing[pm] = append([]int32(nil), e.pmHealth[pm].progressing...)
	}
	if e.cfg.Scenario != nil {
		cp.RuleFired = e.cfg.Scenario.FiredFlags()
	}
	return cp
}

// copyEffects deep-copies intervention effects (zero-valued map entries
// included: Tick decrements without deleting, and the restored maps must
// iterate to the same decisions).
func copyEffects(src *interventions.Effects) *interventions.Effects {
	dst := interventions.NewEffects()
	for k, v := range src.ClosedFor {
		dst.ClosedFor[k] = v
	}
	for k, v := range src.ReduceFrac {
		dst.ReduceFrac[k] = v
	}
	for k, v := range src.ReduceFor {
		dst.ReduceFor[k] = v
	}
	for k, v := range src.IsolateFor {
		dst.IsolateFor[k] = v
	}
	dst.VaccinateNow = src.VaccinateNow
	return dst
}

// copyDayReports deep-copies day reports (maps and per-PE slices
// included), so a checkpoint never aliases live engine state.
func copyDayReports(reports []DayReport) []DayReport {
	out := make([]DayReport, len(reports))
	for i, r := range reports {
		out[i] = copyDayReport(r)
	}
	return out
}

func copyDayReport(r DayReport) DayReport {
	r.Counts = copyCounts(r.Counts)
	r.PersonPhase = copyPhaseStats(r.PersonPhase)
	r.LocationPhase = copyPhaseStats(r.LocationPhase)
	r.UpdatePhase = copyPhaseStats(r.UpdatePhase)
	return r
}

func copyCounts(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyPhaseStats(ps charm.PhaseStats) charm.PhaseStats {
	ps.Reductions = copyCounts(ps.Reductions)
	ps.PerPE = append([]charm.PETraffic(nil), ps.PerPE...)
	return ps
}
