package core

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Gillespie/FastSIR event kernel (Config.Kernel "event"): in the sparse
// regime, instead of replaying per-location discrete-event simulations,
// the engine aggregates per-person infection hazards keyed off the
// infected frontier and draws one exponential waiting time per exposed
// susceptible.
//
// The dense DES makes an independent Bernoulli trial per infectious
// contact with escape probability exp(-τ·inf·sus·overlap); independent
// escape probabilities multiply, so the day's total survival is
// exp(-Λ_p) with Λ_p = τ·sus_p·Σ_src inf_src·overlap(src,p). Drawing an
// Exp(Λ_p) waiting time and infecting iff it lands inside the day is
// distribution-identical to the per-contact trials — but it collapses
// each susceptible's day to one uniform draw, so trajectories are
// statistically equivalent to the dense kernel (same attack-rate and
// peak distributions), not byte-identical. The equivalence is enforced
// by a CI-overlap oracle in kernel_test.go.

// srcVisit is one kept visit of an effectively infectious person.
type srcVisit struct {
	person     int32
	sub        int32
	start, end int16
	inf        float64
}

// runDayEvent executes one day of the event kernel. It reuses the
// active-set frontier walk to find the reachable locations, then
// resolves transmission analytically instead of via the DES.
func (e *Engine) runDayEvent(day int) DayReport {
	rep := DayReport{Day: day, Kernel: KernelEvent}
	e.stepScenario(day)
	e.applyVaccination(day)
	e.ensureActiveState()

	if e.locEvents != nil {
		for i := range e.locEvents {
			e.locEvents[i] = 0
			e.locInteractions[i] = 0
		}
	}

	// Collect the frontier's kept visits, grouped by location. This also
	// marks the active locations (event mode refuses Mixing > 0, so no
	// fragment families to expand).
	var srcs map[int32][]srcVisit
	for pmID := range e.pmHealth {
		for _, p := range e.pmHealth[pmID].infectious {
			hs := &e.health[p]
			inf := e.model.Infectivity(hs.State, hs.Treatment)
			if inf <= 0 {
				continue
			}
			isolated := e.effects.Isolated(e.stateNames[hs.State])
			for _, v := range e.pop.PersonVisits(p) {
				loc := &e.pop.Locations[v.Loc]
				if !e.keepVisit(p, isolated, v.Loc, loc, day) {
					continue
				}
				e.markActive(v.Loc)
				if srcs == nil {
					srcs = make(map[int32][]srcVisit)
				}
				srcs[v.Loc] = append(srcs[v.Loc], srcVisit{
					person: v.Person, sub: v.Sub, start: v.Start, end: v.End, inf: inf,
				})
			}
		}
	}

	// Hazard accumulation. Locations are walked in ascending id order and
	// susceptibles in visit order within each, so the floating-point
	// accumulation order — and with it the whole trajectory — is
	// deterministic for a given seed.
	locs := append([]int32(nil), e.activeLocList...)
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	tau := e.model.Transmissibility
	lambda := make(map[int32]float64)
	var persons []int32
	var interactions, trials int64
	for _, locID := range locs {
		sv := srcs[locID]
		for _, vi := range e.visitsAtLoc[locID] {
			v := &e.pop.Visits[vi]
			p := v.Person
			hs := &e.health[p]
			sus := e.model.Susceptibility(hs.State, hs.Treatment)
			if sus <= 0 {
				continue
			}
			isolated := e.effects.Isolated(e.stateNames[hs.State])
			if !e.keepVisit(p, isolated, v.Loc, &e.pop.Locations[v.Loc], day) {
				continue
			}
			var h float64
			for i := range sv {
				s := &sv[i]
				if s.person == p || s.sub != v.Sub {
					continue
				}
				start := v.Start
				if s.start > start {
					start = s.start
				}
				end := v.End
				if s.end < end {
					end = s.end
				}
				if end <= start {
					continue
				}
				h += s.inf * float64(end-start)
				interactions++
			}
			if h > 0 {
				if _, ok := lambda[p]; !ok {
					persons = append(persons, p)
				}
				lambda[p] += tau * sus * h
			}
		}
	}

	// One exponential waiting time per exposed susceptible: infect iff
	// t = -ln(1-u)/Λ lands inside the day, i.e. -log1p(-u) < Λ.
	sort.Slice(persons, func(i, j int) bool { return persons[i] < persons[j] })
	var newInf int64
	for _, p := range persons {
		trials++
		u := xrand.KeyedFloat64(0x6e4a7, e.cfg.Seed, uint64(day), uint64(p))
		if -math.Log1p(-u) < lambda[p] {
			e.applyInfection(p, day)
			newInf++
		}
	}

	// Progression over the progressing sets only, with the same
	// swap-remove-safe walk as the active update phase.
	for pmID := range e.pmHealth {
		h := &e.pmHealth[pmID].progressing
		for i := 0; i < len(*h); {
			p := (*h)[i]
			e.progressPerson(p, day)
			if i < len(*h) && (*h)[i] == p {
				i++
			}
		}
	}

	rep.NewInfections = newInf
	e.cumulative += newInf
	rep.Interactions = interactions
	rep.Trials = trials
	rep.Counts = e.stateCounts64()

	e.clearActiveScratch()
	e.effects.Tick()
	return rep
}
