package core

import (
	"testing"

	"repro/internal/loadbalance"
	"repro/internal/loadmodel"
)

// TestMigrationPreservesEpidemic: migrating locations between ranks
// mid-simulation is invisible to the epidemic (partition invariance), the
// property that makes dynamic load balancing safe.
func TestMigrationPreservesEpidemic(t *testing.T) {
	pop := testPop(t)
	mk := func() Config {
		return Config{Population: pop, Disease: hotModel(),
			Days: 1, Seed: 47, InitialInfections: 5, Ranks: 6}
	}
	// Reference: run 20 days in one engine.
	ref, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	var refSig []int64
	for day := 1; day <= 20; day++ {
		rep := ref.runDay(day)
		refSig = append(refSig, rep.NewInfections, rep.Counts["recovered"])
	}

	// Same run, but shuffle the location distribution every 5 days.
	mig, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	var migSig []int64
	rotate := 0
	for day := 1; day <= 20; day++ {
		if day%5 == 0 {
			rotate++
			newRank := make([]int32, pop.NumLocations())
			for l := range newRank {
				newRank[l] = int32((l + rotate) % 6)
			}
			if _, err := mig.MigrateLocations(newRank); err != nil {
				t.Fatal(err)
			}
		}
		rep := mig.runDay(day)
		migSig = append(migSig, rep.NewInfections, rep.Counts["recovered"])
	}
	if !sameSignature(refSig, migSig) {
		t.Fatal("migration changed the epidemic")
	}
}

// TestMeasurementBasedRebalancing exercises the full Section VII loop:
// measure per-location loads, detect imbalance, migrate with the greedy
// refiner, and verify the measured per-rank balance improves.
func TestMeasurementBasedRebalancing(t *testing.T) {
	pop := testPop(t)
	ranks := 8
	// Deliberately terrible initial distribution: all locations on rank 0,
	// persons spread evenly (so visits still flow from all ranks).
	locRank := make([]int32, pop.NumLocations())
	cfg := Config{Population: pop, Disease: hotModel(),
		Days: 1, Seed: 53, InitialInfections: 5, Ranks: ranks,
		LocationRank: locRank, CollectLocationLoads: true}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.runDay(1)
	events, inter := e.LocationLoads()
	if sumI64(events) == 0 {
		t.Fatal("no measured events")
	}

	// Predict tomorrow's loads and rebalance.
	pred := &loadbalance.Predictor{Dynamic: loadmodel.Dynamic{C1: 1, C2: 0.1}}
	loads := pred.Predict(events, inter, 50)
	d, err := loadbalance.GreedyRefine(e.LocationRanks(), loads, ranks, 1.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.ImbalanceBefore < float64(ranks)-0.1 {
		t.Fatalf("all-on-rank-0 should be maximally imbalanced, got %v", d.ImbalanceBefore)
	}
	if d.ImbalanceAfter > 1.5 {
		t.Fatalf("rebalancing left imbalance %v", d.ImbalanceAfter)
	}
	migrated, err := e.MigrateLocations(d.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("nothing migrated")
	}

	// Next day's measured load distribution over ranks must be balanced.
	e.runDay(2)
	events2, _ := e.LocationLoads()
	perRank := make([]float64, ranks)
	ranksNow := e.LocationRanks()
	for l, ev := range events2 {
		perRank[ranksNow[l]] += float64(ev)
	}
	var maxL, total float64
	for _, l := range perRank {
		total += l
		if l > maxL {
			maxL = l
		}
	}
	imb := maxL / (total / float64(ranks))
	if imb > 2.0 {
		t.Fatalf("post-migration measured imbalance %v", imb)
	}
}

// TestMigrateLocationsValidation covers the error paths.
func TestMigrateLocationsValidation(t *testing.T) {
	pop := testPop(t)
	e, err := New(Config{Population: pop, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MigrateLocations(make([]int32, 3)); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := make([]int32, pop.NumLocations())
	bad[0] = 7
	if _, err := e.MigrateLocations(bad); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func sumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
