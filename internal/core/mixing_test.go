package core

import (
	"testing"

	"repro/internal/splitloc"
)

// TestMixingSplitInvariance is the engine-level oracle for the Figure 6(b)
// future-work model: with inter-sublocation mixing enabled, splitting
// heavy locations (divide the susceptibles) plus runtime replication of
// infectious visitors must reproduce the unsplit epidemic exactly.
func TestMixingSplitInvariance(t *testing.T) {
	pop := testPop(t)
	split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSplit == 0 {
		t.Skip("nothing split")
	}
	mk := func(p Config) Config {
		p.Disease = hotModel()
		p.Days = 20
		p.Seed = 31
		p.InitialInfections = 5
		p.Mixing = 0.3
		return p
	}
	whole := run(t, mk(Config{Population: pop, Ranks: 3}))
	frag := run(t, mk(Config{Population: split, Ranks: 5}))
	if !sameSignature(epiSignature(whole), epiSignature(frag)) {
		t.Fatal("mixing + split + replication changed the epidemic")
	}
}

// TestMixingWithoutReplicationDiffers documents why replication matters:
// simulating the split population with mixing but suppressing replication
// (by clearing location origins so no fragment families are found) loses
// cross-fragment interactions and weakens the epidemic.
func TestMixingWithoutReplicationDiffers(t *testing.T) {
	pop := testPop(t)
	split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSplit == 0 {
		t.Skip("nothing split")
	}
	// Break the family index: give each fragment a unique origin. DES keys
	// change too, so compare infection *totals*: losing cross-fragment
	// pairs must reduce infections for this seed.
	lost := *split
	lost.Locations = append(lost.Locations[:0:0], lost.Locations...)
	for i := range lost.Locations {
		lost.Locations[i].Origin = int32(i)
	}
	mk := func(p Config) Config {
		m := hotModel()
		m.Transmissibility = 5e-5 // mild: differences must stay visible
		p.Disease = m
		p.Days = 25
		p.Seed = 37
		p.InitialInfections = 5
		p.Mixing = 0.5
		return p
	}
	withRepl := run(t, mk(Config{Population: split, Ranks: 3}))
	noRepl := run(t, mk(Config{Population: &lost, Ranks: 3}))
	if noRepl.TotalInfections >= withRepl.TotalInfections {
		t.Fatalf("replication should add cross-fragment infections: %d vs %d",
			noRepl.TotalInfections, withRepl.TotalInfections)
	}
}

func TestMixingIncreasesSpread(t *testing.T) {
	pop := testPop(t)
	mk := func(m float64) Config {
		model := hotModel()
		model.Transmissibility = 4e-5 // sub-saturation
		return Config{Population: pop, Disease: model,
			Days: 25, Seed: 41, InitialInfections: 5, Ranks: 2, Mixing: m}
	}
	off := run(t, mk(0))
	on := run(t, mk(0.5))
	if on.TotalInfections <= off.TotalInfections {
		t.Fatalf("mixing should add infections: %d vs %d",
			on.TotalInfections, off.TotalInfections)
	}
}

func TestMixingPartitionInvariance(t *testing.T) {
	pop := testPop(t)
	mk := func(ranks int) Config {
		return Config{Population: pop, Disease: hotModel(),
			Days: 15, Seed: 43, InitialInfections: 5, Ranks: ranks, Mixing: 0.4}
	}
	a := run(t, mk(1))
	b := run(t, mk(8))
	if !sameSignature(epiSignature(a), epiSignature(b)) {
		t.Fatal("mixing epidemic depends on rank count")
	}
}
