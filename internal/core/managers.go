package core

import (
	"sort"

	"repro/internal/charm"
	"repro/internal/des"
	"repro/internal/xrand"
)

// personManager is a PM chare (Figure 1): it manages a set of person
// objects — their PTTS state, daily schedule decisions and visit messages.
type personManager struct {
	eng     *Engine
	id      int32
	persons []int32
}

func (pm *personManager) Recv(ctx *charm.Ctx, msg charm.Message) {
	switch m := msg.(type) {
	case msgComputeVisits:
		pm.computeVisits(ctx, m.Day)
	case infectMsg:
		pm.eng.infectionBuf[pm.id] = append(pm.eng.infectionBuf[pm.id], m)
	case msgApplyUpdates:
		pm.applyUpdates(ctx, m.Day)
	case msgComputeVisitsActive:
		pm.computeVisitsActive(ctx, m.Day)
	case msgApplyUpdatesActive:
		pm.applyUpdatesActive(ctx, m.Day)
	default:
		panic("core: personManager received unknown message")
	}
}

// computeVisits is phase 1 for this PM's persons: apply vaccination
// orders, evaluate behavioral filters (closures, isolation, demand
// reduction), and send one visit message per kept visit.
func (pm *personManager) computeVisits(ctx *charm.Ctx, day int) {
	e := pm.eng
	eff := e.effects
	vaccinate := eff.VaccinateNow
	vacID, hasVac := e.model.TreatmentByName("vaccinated")

	for _, p := range pm.persons {
		hs := &e.health[p]
		// Vaccination campaign: untreated persons get the treatment with
		// probability VaccinateNow, keyed for partition invariance.
		if vaccinate > 0 && hasVac && hs.Treatment == 0 {
			if xrand.KeyedFloat64(0xacc1, e.cfg.Seed, uint64(p), uint64(day)) < vaccinate {
				hs.Treatment = vacID
			}
		}
		pm.sendVisits(ctx, p, day, nil)
	}
}

// sendVisits evaluates person p's schedule for the day and sends one
// visit message per kept visit — to every location (dense), or only to
// locations marked in active (the active-set path). The behavioral
// filters draw from content-keyed streams, so restricting the send set
// cannot perturb any other draw.
func (pm *personManager) sendVisits(ctx *charm.Ctx, p int32, day int, active []bool) {
	e := pm.eng
	eff := e.effects
	hs := &e.health[p]
	stateName := e.stateNames[hs.State]
	isolated := eff.Isolated(stateName)
	inf := e.model.Infectivity(hs.State, hs.Treatment)
	sus := e.model.Susceptibility(hs.State, hs.Treatment)

	for _, v := range e.pop.PersonVisits(p) {
		loc := &e.pop.Locations[v.Loc]
		if !e.keepVisit(p, isolated, v.Loc, loc, day) {
			continue
		}
		msg := visitMsg{
			Person:  p,
			Loc:     v.Loc,
			Sub:     v.Sub,
			OrigSub: loc.SubBase + v.Sub,
			Start:   v.Start,
			End:     v.End,
			Inf:     float32(inf),
			Sus:     float32(sus),
		}
		if active == nil || active[v.Loc] {
			ctx.Send(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[v.Loc]}, msg)
		}
		// Mixing mode on a split location: replicate the infectious
		// visitor into the sibling fragments so cross-sublocation
		// pairs are still evaluated (Figure 6(b): "divide the
		// susceptibles while replicating the infectious").
		if e.cfg.Mixing > 0 && inf > 0 {
			for _, frag := range e.fragments[loc.Origin] {
				if frag == v.Loc {
					continue
				}
				if active != nil && !active[frag] {
					continue
				}
				rep := msg
				rep.Loc = frag
				rep.Sus = 0 // replicas infect; they are infected at home
				ctx.Send(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[frag]}, rep)
			}
		}
	}
}

// applyUpdates is phase 5/6: resolve buffered infect messages (earliest
// exposure wins), advance dwell clocks and PTTS transitions, and
// contribute the global health-state counts.
func (pm *personManager) applyUpdates(ctx *charm.Ctx, day int) {
	e := pm.eng
	if n := pm.resolveInfections(day); n > 0 {
		ctx.Contribute("newinfections", n)
	}

	// Dwell/transition progression for everyone this PM owns.
	for _, p := range pm.persons {
		e.progressPerson(p, day)
		ctx.Contribute("state:"+e.stateNames[e.health[p].State], 1)
	}
}

// resolveInfections drains this PM's buffered infect messages in
// canonical order and applies the successful exposures, returning the
// new-infection count.
func (pm *personManager) resolveInfections(day int) int64 {
	e := pm.eng
	buf := e.infectionBuf[pm.id]
	e.infectionBuf[pm.id] = nil
	// Canonical resolution order: infections may arrive from many LMs in
	// any order; sort so the outcome is order-independent.
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.Person != b.Person {
			return a.Person < b.Person
		}
		if a.Minute != b.Minute {
			return a.Minute < b.Minute
		}
		return a.Infector < b.Infector
	})
	var newInf int64
	for i := 0; i < len(buf); {
		p := buf[i].Person
		j := i
		for j < len(buf) && buf[j].Person == p {
			j++
		}
		hs := &e.health[p]
		if e.model.Susceptibility(hs.State, hs.Treatment) > 0 {
			e.applyInfection(p, day)
			newInf++
		}
		i = j
	}
	return newInf
}

// locationManager is an LM chare: it buffers inbound visit messages and
// replays them as the per-location DES in phase 2.
type locationManager struct {
	eng     *Engine
	id      int32
	locs    []int32
	pending map[int32][]des.Visitor
}

func (lm *locationManager) Recv(ctx *charm.Ctx, msg charm.Message) {
	switch m := msg.(type) {
	case visitMsg:
		lm.pending[m.Loc] = append(lm.pending[m.Loc], des.Visitor{
			Person:         m.Person,
			Sub:            m.Sub,
			OrigSub:        m.OrigSub,
			Start:          m.Start,
			End:            m.End,
			Infectivity:    float64(m.Inf),
			Susceptibility: float64(m.Sus),
		})
	case msgRunDES:
		lm.runDES(ctx, m.Day)
	case msgRunDESActive:
		lm.runDESActive(ctx, m.Day)
	default:
		panic("core: locationManager received unknown message")
	}
}

func (lm *locationManager) runDES(ctx *charm.Ctx, day int) {
	var events, interactions, trials int64
	var result des.Result
	for _, locID := range lm.locs {
		visitors := lm.pending[locID]
		if len(visitors) == 0 {
			continue
		}
		delete(lm.pending, locID)
		lm.simulateLoc(ctx, &result, locID, visitors, day, &events, &interactions, &trials)
	}
	// Clear any leftovers (visits to locations whose DES did not run are
	// impossible, but a stray map entry would leak across days).
	for k := range lm.pending {
		delete(lm.pending, k)
	}
	lm.contribute(ctx, events, interactions, trials)
}

// runDESActive replays only the locations that received visits. The
// pending map's iteration order is irrelevant: each location's DES is
// independent, infect messages are canonically re-sorted by the
// receiving PM, and the workload counters are sums.
func (lm *locationManager) runDESActive(ctx *charm.Ctx, day int) {
	var events, interactions, trials int64
	var result des.Result
	for locID, visitors := range lm.pending {
		delete(lm.pending, locID)
		if len(visitors) == 0 {
			continue
		}
		lm.simulateLoc(ctx, &result, locID, visitors, day, &events, &interactions, &trials)
	}
	lm.contribute(ctx, events, interactions, trials)
}

// simulateLoc runs one location's per-day DES and forwards the resulting
// infect messages.
func (lm *locationManager) simulateLoc(ctx *charm.Ctx, result *des.Result, locID int32,
	visitors []des.Visitor, day int, events, interactions, trials *int64) {
	e := lm.eng
	loc := &e.pop.Locations[locID]
	result.Reset()
	des.Simulate(visitors, des.Params{
		Day: uint64(day) ^ e.cfg.Seed,
		// Keys use the pre-splitLoc identity so splitting cannot
		// change outcomes.
		LocKey:  uint64(loc.Origin),
		SubBase: loc.SubBase,
		Tau:     e.model.Transmissibility,
		Mixing:  e.cfg.Mixing,
	}, result)
	*events += int64(result.Events)
	*interactions += result.Interactions
	*trials += result.Trials
	if e.locEvents != nil {
		e.locEvents[locID] += int64(result.Events)
		e.locInteractions[locID] += result.Interactions
	}
	for _, inf := range result.Infections {
		ctx.Send(charm.ChareRef{Array: e.pmArr, Index: e.pmOf[inf.Person]}, infectMsg{
			Person:   inf.Person,
			Infector: inf.Infector,
			Minute:   inf.Minute,
		})
	}
}

func (lm *locationManager) contribute(ctx *charm.Ctx, events, interactions, trials int64) {
	if events > 0 {
		ctx.Contribute("events", events)
	}
	if interactions > 0 {
		ctx.Contribute("interactions", interactions)
	}
	if trials > 0 {
		ctx.Contribute("trials", trials)
	}
}
